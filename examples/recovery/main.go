// Recovery walkthrough: the full crash matrix of the paper, narrated.
//
//  1. Client crash (§3.3): committed updates that never left the
//     client's cache are redone from its private log; uncommitted ones
//     are rolled back; other clients keep running throughout.
//  2. Server crash (§3.4): updates that lived only in the server's
//     buffer pool are reconstructed by the clients in parallel, with
//     callback log records preserving cross-client update order.
//  3. Complex crash (§3.5): server and a client crash together.
package main

import (
	"bytes"
	"fmt"
	"log"

	"clientlog"
)

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func val(tag string) []byte {
	b := make([]byte, 16)
	copy(b, tag)
	return b
}

func main() {
	cfg := clientlog.DefaultConfig()
	cluster := clientlog.NewCluster(cfg)
	pages, err := cluster.SeedPages(3, 8, 16)
	check(err)
	alice, err := cluster.AddClient()
	check(err)
	bob, err := cluster.AddClient()
	check(err)

	sharedObj := clientlog.ObjectID{Page: pages[0], Slot: 0}
	aliceObj := clientlog.ObjectID{Page: pages[1], Slot: 0}
	bobObj := clientlog.ObjectID{Page: pages[2], Slot: 0}

	// --- Act 1: client crash -------------------------------------------
	fmt.Println("== Act 1: client crash (§3.3) ==")
	t1, _ := alice.Begin()
	check(t1.Overwrite(aliceObj, val("committed")))
	check(t1.Commit())
	t2, _ := alice.Begin()
	check(t2.Overwrite(aliceObj, val("uncommitted")))
	check(alice.Log().ForceAll()) // the tail survives, the txn does not
	cluster.CrashClient(alice.ID())
	fmt.Println("alice crashed with one committed and one in-flight update")

	// Bob keeps working while alice is down.
	tb, _ := bob.Begin()
	check(tb.Overwrite(bobObj, val("bob-was-here")))
	check(tb.Commit())
	fmt.Println("bob kept committing while alice was down")

	alice, err = cluster.RestartClient(alice.ID())
	check(err)
	ta, _ := alice.Begin()
	got, err := ta.Read(aliceObj)
	check(err)
	_ = ta.Commit()
	if !bytes.Equal(got, val("committed")) {
		log.Fatalf("client recovery wrong: %q", got)
	}
	fmt.Printf("alice recovered locally: committed survives, in-flight rolled back (%q)\n\n", got)

	// --- Act 2: server crash -------------------------------------------
	fmt.Println("== Act 2: server crash (§3.4) ==")
	// Alice then Bob update the SAME object: the callback log record
	// written by Bob preserves the order for server recovery.
	t3, _ := alice.Begin()
	check(t3.Overwrite(sharedObj, val("alice-v1")))
	check(t3.Commit())
	t4, _ := bob.Begin()
	check(t4.Overwrite(sharedObj, val("bob-v2")))
	check(t4.Commit())
	// Both replace the page: its newest state now lives only in the
	// server's buffer pool, which is about to evaporate.
	check(alice.ReplacePage(pages[0]))
	check(bob.ReplacePage(pages[0]))
	cluster.CrashServer()
	fmt.Println("server crashed holding the only merged copy of the shared page")
	check(cluster.RestartServer())
	got, err = cluster.ReadObject(sharedObj)
	check(err)
	if !bytes.Equal(got, val("bob-v2")) {
		log.Fatalf("cross-client order lost: %q", got)
	}
	fmt.Printf("server recovery rebuilt the page from both private logs in order: %q\n\n", got)

	// --- Act 3: complex crash ------------------------------------------
	fmt.Println("== Act 3: complex crash (§3.5) ==")
	t5, _ := alice.Begin()
	check(t5.Overwrite(aliceObj, val("pre-disaster")))
	check(t5.Commit())
	check(alice.ReplacePage(pages[1]))
	cluster.CrashServer(alice.ID())
	fmt.Println("server AND alice crashed together")
	check(cluster.RestartServer())
	_, err = cluster.RestartClient(alice.ID())
	check(err)
	got, err = cluster.ReadObject(aliceObj)
	check(err)
	if !bytes.Equal(got, val("pre-disaster")) {
		log.Fatalf("complex crash lost data: %q", got)
	}
	fmt.Printf("complex crash recovered: %q\n", got)
	fmt.Println("\nall three recovery algorithms exercised; private logs were never merged")
}
