// Banking: accounts are 8-byte counters updated with logical log
// records (redo re-applies the delta, undo subtracts it).  Transfers
// use savepoints for partial rollback, and the invariant — total money
// is conserved — survives aborts, client crashes and a server crash.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"clientlog"
)

const (
	accounts       = 32
	accountsPerPg  = 8
	initialBalance = 1000
	transfers      = 60
)

func main() {
	cfg := clientlog.DefaultConfig()
	cluster := clientlog.NewCluster(cfg)
	nPages := accounts / accountsPerPg
	pages, err := cluster.SeedPages(nPages, accountsPerPg, 8)
	if err != nil {
		log.Fatal(err)
	}
	account := func(i int) clientlog.ObjectID {
		return clientlog.ObjectID{Page: pages[i/accountsPerPg], Slot: uint16(i % accountsPerPg)}
	}

	teller, err := cluster.AddClient()
	if err != nil {
		log.Fatal(err)
	}
	// Open the accounts: zero the seeded bytes, then deposit the
	// opening balance with a logical update.
	open, _ := teller.Begin()
	for i := 0; i < accounts; i++ {
		if err := open.Overwrite(account(i), make([]byte, 8)); err != nil {
			log.Fatal(err)
		}
		if err := open.Add(account(i), initialBalance); err != nil {
			log.Fatal(err)
		}
	}
	if err := open.Commit(); err != nil {
		log.Fatal(err)
	}

	total := func(c *clientlog.Client) int64 {
		txn, err := c.Begin()
		if err != nil {
			log.Fatal(err)
		}
		defer txn.Commit()
		var sum int64
		for i := 0; i < accounts; i++ {
			v, err := txn.ReadCounter(account(i))
			if err != nil {
				log.Fatal(err)
			}
			sum += v
		}
		return sum
	}
	want := int64(accounts * initialBalance)
	fmt.Printf("opened %d accounts, total = %d\n", accounts, total(teller))

	// Random transfers; a third are "fat-fingered" and partially rolled
	// back to a savepoint, a few are aborted outright.
	r := rand.New(rand.NewSource(7))
	aborted, partial := 0, 0
	for t := 0; t < transfers; t++ {
		from, to := r.Intn(accounts), r.Intn(accounts)
		amount := int64(1 + r.Intn(100))
		txn, err := teller.Begin()
		if err != nil {
			log.Fatal(err)
		}
		if err := txn.Add(account(from), -amount); err != nil {
			log.Fatal(err)
		}
		sp := txn.Savepoint()
		// Oops: credit the wrong account, then roll back to the
		// savepoint and do it right (the paper's partial rollback).
		if r.Intn(3) == 0 {
			if err := txn.Add(account((to+1)%accounts), amount); err != nil {
				log.Fatal(err)
			}
			if err := txn.RollbackTo(sp); err != nil {
				log.Fatal(err)
			}
			partial++
		}
		if err := txn.Add(account(to), amount); err != nil {
			log.Fatal(err)
		}
		if r.Intn(10) == 0 {
			if err := txn.Abort(); err != nil {
				log.Fatal(err)
			}
			aborted++
			continue
		}
		if err := txn.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d transfers (%d partial rollbacks, %d aborts), total = %d\n",
		transfers, partial, aborted, total(teller))
	if got := total(teller); got != want {
		log.Fatalf("money not conserved: %d != %d", got, want)
	}

	// Crash the teller's workstation mid-day: local restart recovery.
	cluster.CrashClient(teller.ID())
	teller, err = cluster.RestartClient(teller.ID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("teller crashed and recovered locally, total = %d\n", total(teller))

	// Now the server: its buffer pool evaporates; restart recovery
	// reconstructs the DCT and coordinates redo with the teller.
	cluster.CrashServer()
	if err := cluster.RestartServer(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server crashed and recovered, total = %d\n", total(cluster.Client(teller.ID())))
	if got := total(cluster.Client(teller.ID())); got != want {
		log.Fatalf("money not conserved after crashes: %d != %d", got, want)
	}
	fmt.Println("invariant held through partial rollbacks, aborts, a client crash and a server crash")
}
