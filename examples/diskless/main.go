// Diskless: Section 2's remark made concrete — "clients that do not
// have local disk space can ship their log records to the server."  A
// diskless client's private log lives at the server (still one log per
// client, never merged), which keeps all recovery algorithms working
// but puts a network round trip on the commit path.  This example
// measures that price against a local-disk client doing the same work.
package main

import (
	"fmt"
	"log"

	"clientlog"
)

func main() {
	cfg := clientlog.DefaultConfig()
	cluster := clientlog.NewCluster(cfg)
	pages, err := cluster.SeedPages(2, 16, 32)
	if err != nil {
		log.Fatal(err)
	}
	local, err := cluster.AddClient()
	if err != nil {
		log.Fatal(err)
	}
	diskless, err := cluster.AddDisklessClient()
	if err != nil {
		log.Fatal(err)
	}

	run := func(c *clientlog.Client, slot uint16) uint64 {
		before := cluster.Stats.Messages()
		for i := 0; i < 50; i++ {
			txn, err := c.Begin()
			if err != nil {
				log.Fatal(err)
			}
			obj := clientlog.ObjectID{Page: pages[0], Slot: slot}
			if err := txn.Overwrite(obj, make([]byte, 32)); err != nil {
				log.Fatal(err)
			}
			if err := txn.Commit(); err != nil {
				log.Fatal(err)
			}
		}
		return cluster.Stats.Messages() - before
	}

	mLocal := run(local, 0)
	mDiskless := run(diskless, 1)
	fmt.Printf("50 committed transactions each:\n")
	fmt.Printf("  local-disk client:  %3d messages (commit is a local log force)\n", mLocal)
	fmt.Printf("  diskless client:    %3d messages (commit batches the log to the server)\n", mDiskless)

	// The recovery story is identical: crash the diskless client and
	// recover from the server-hosted log.
	obj := clientlog.ObjectID{Page: pages[1], Slot: 0}
	payload := make([]byte, 32)
	copy(payload, "diskless but durable")
	txn, _ := diskless.Begin()
	if err := txn.Overwrite(obj, payload); err != nil {
		log.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		log.Fatal(err)
	}
	cluster.CrashClient(diskless.ID())
	recovered, err := cluster.RestartClient(diskless.ID())
	if err != nil {
		log.Fatal(err)
	}
	txn2, _ := recovered.Begin()
	got, err := txn2.Read(obj)
	if err != nil {
		log.Fatal(err)
	}
	_ = txn2.Commit()
	fmt.Printf("diskless client crashed and recovered from its server-hosted log: %q\n", got)
}
