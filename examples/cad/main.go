// CAD: the paper's motivating workload.  A drawing is a set of design
// objects packed onto shared pages; several engineers edit different
// objects of the same drawing page at the same time.  With
// fine-granularity locking and page-copy merging nobody waits for the
// page, nothing is forced to disk, and every committed edit survives.
package main

import (
	"fmt"
	"log"
	"sync"

	"clientlog"
)

const (
	engineers      = 4
	objectsPerPage = 16
	editsEach      = 25
	objSize        = 24
)

func main() {
	cfg := clientlog.DefaultConfig()
	cluster := clientlog.NewCluster(cfg)
	// One "drawing": all engineers edit objects of this one page set.
	pages, err := cluster.SeedPages(2, objectsPerPage, objSize)
	if err != nil {
		log.Fatal(err)
	}

	clients := make([]*clientlog.Client, engineers)
	for i := range clients {
		if clients[i], err = cluster.AddClient(); err != nil {
			log.Fatal(err)
		}
	}

	stamp := func(eng, edit int) []byte {
		b := make([]byte, objSize)
		copy(b, fmt.Sprintf("eng%d-edit%02d", eng, edit))
		return b
	}

	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *clientlog.Client) {
			defer wg.Done()
			for edit := 0; edit < editsEach; edit++ {
				txn, err := c.Begin()
				if err != nil {
					log.Fatal(err)
				}
				// Each engineer owns a disjoint set of objects on the
				// SAME pages: object-level X locks never conflict, so the
				// edits proceed fully in parallel.
				for _, pid := range pages {
					obj := clientlog.ObjectID{Page: pid, Slot: uint16(i)}
					if err := txn.Overwrite(obj, stamp(i, edit)); err != nil {
						log.Fatalf("engineer %d: %v", i, err)
					}
				}
				if err := txn.Commit(); err != nil {
					log.Fatalf("engineer %d commit: %v", i, err)
				}
			}
		}(i, c)
	}
	wg.Wait()

	fmt.Printf("%d engineers x %d edits committed\n", engineers, editsEach)
	fmt.Printf("server page merges: %d   callbacks: %d   pages forced to disk: %d\n",
		cluster.Server().Metrics.Merges.Load(),
		cluster.Server().Metrics.CallbacksSent.Load(),
		cluster.Server().Metrics.PageForces.Load())

	// A reviewer (fresh client) reads the final drawing: every
	// engineer's last edit must be there, pulled together by callbacks
	// and the merge procedure.
	reviewer, err := cluster.AddClient()
	if err != nil {
		log.Fatal(err)
	}
	txn, _ := reviewer.Begin()
	for _, pid := range pages {
		for i := 0; i < engineers; i++ {
			obj := clientlog.ObjectID{Page: pid, Slot: uint16(i)}
			got, err := txn.Read(obj)
			if err != nil {
				log.Fatal(err)
			}
			want := stamp(i, editsEach-1)
			if string(got) != string(want) {
				log.Fatalf("drawing corrupted at page %d slot %d: %q", pid, i, got)
			}
		}
	}
	_ = txn.Commit()
	fmt.Println("review passed: all concurrent same-page edits merged correctly")
}
