// Quickstart: a one-client cluster, a transaction, a commit that
// touches nothing but the client's private log, and a crash the client
// recovers from on its own.
package main

import (
	"fmt"
	"log"

	"clientlog"
)

func main() {
	cfg := clientlog.DefaultConfig()
	cluster := clientlog.NewCluster(cfg)

	// Seed a small database: 2 pages x 8 objects x 16 bytes.
	pages, err := cluster.SeedPages(2, 8, 16)
	if err != nil {
		log.Fatal(err)
	}
	client, err := cluster.AddClient()
	if err != nil {
		log.Fatal(err)
	}

	// A transaction runs entirely at the client.
	txn, err := client.Begin()
	if err != nil {
		log.Fatal(err)
	}
	obj := clientlog.ObjectID{Page: pages[0], Slot: 0}
	if err := txn.Overwrite(obj, []byte("hello EDBT 1996!")); err != nil {
		log.Fatal(err)
	}
	msgsBefore := cluster.Stats.Messages()
	if err := txn.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed; messages sent by commit: %d (the paper's claim 1)\n",
		cluster.Stats.Messages()-msgsBefore)

	// Crash the client: cache, lock tables, everything volatile is gone.
	cluster.CrashClient(client.ID())
	fmt.Println("client crashed: cache and lock tables lost, private log survives")

	// Restart recovery happens locally from the private log (§3.3).
	recovered, err := cluster.RestartClient(client.ID())
	if err != nil {
		log.Fatal(err)
	}
	txn2, _ := recovered.Begin()
	got, err := txn2.Read(obj)
	if err != nil {
		log.Fatal(err)
	}
	_ = txn2.Commit()
	fmt.Printf("after local restart recovery the committed value is back: %q\n", got)
}
