package clientlog

import (
	"path/filepath"

	"clientlog/internal/core"
	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/page"
	"clientlog/internal/storage"
	"clientlog/internal/wal"
)

// Core types re-exported as the public API surface.
type (
	// Cluster assembles a server and clients over the in-process
	// transport, with crash/restart orchestration.
	Cluster = core.Cluster
	// Client is a client engine: local transactions, private WAL,
	// local lock manager, local cache, local recovery.
	Client = core.Client
	// Txn is a transaction, executing entirely at its client.
	Txn = core.Txn
	// Config selects page size, pool sizes and the concurrency /
	// logging scheme (the paper's, or one of the related-work
	// baselines).
	Config = core.Config
	// ObjectID names an object: a (page, slot) pair, the unit of
	// fine-granularity locking.
	ObjectID = page.ObjectID
	// PageID names a database page, the unit of transfer and caching.
	PageID = page.ID
	// ClientID identifies a client workstation.
	ClientID = ident.ClientID
)

// Configuration mode constants (see Config).
const (
	// GranAdaptive is the paper's adaptive object/page locking.
	GranAdaptive = core.GranAdaptive
	// GranObject always uses object locks.
	GranObject = core.GranObject
	// GranPage uses page-level locking only (baseline).
	GranPage = core.GranPage
	// LogLocal is the paper's client-based logging.
	LogLocal = core.LogLocal
	// LogShipCommit ships log records to the server at commit
	// (ARIES/CSA-style baseline).
	LogShipCommit = core.LogShipCommit
	// LogShipPages ships dirty pages at commit (Versant-style baseline).
	LogShipPages = core.LogShipPages
	// UpdateMerge reconciles concurrent same-page updates by merging
	// page copies (the paper's approach).
	UpdateMerge = core.UpdateMerge
	// UpdateToken serializes page updates with an update token
	// (update-privilege baseline).
	UpdateToken = core.UpdateToken
)

// Errors surfaced by transaction operations.
var (
	// ErrDeadlock marks the transaction a deadlock victim; abort and
	// retry it.
	ErrDeadlock = lock.ErrDeadlock
	// ErrTimeout reports a lock wait that exceeded Config.LockTimeout.
	ErrTimeout = lock.ErrTimeout
	// ErrTxnDone reports use of a terminated transaction.
	ErrTxnDone = core.ErrTxnDone
	// ErrCrashed reports an operation on a crashed client engine.
	ErrCrashed = core.ErrCrashed
	// ErrPageFull reports that an insert did not fit.
	ErrPageFull = page.ErrPageFull
)

// DefaultConfig returns the paper's scheme with reasonable sizes.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewCluster builds a memory-backed cluster: stable storage and logs
// live in memory but survive simulated crashes, which is what the tests
// and benchmarks use.
func NewCluster(cfg Config) *Cluster { return core.NewCluster(cfg) }

// OpenCluster builds a file-backed cluster under dir: the page store
// lives in dir/pages, the server log in dir/server.log, and each
// AddDurableClient log in dir/client-<n>.log.
func OpenCluster(cfg Config, dir string) (*Cluster, error) {
	store, err := storage.OpenDiskStore(filepath.Join(dir, "pages"), cfg.PageSize)
	if err != nil {
		return nil, err
	}
	slog, err := wal.OpenFileStore(filepath.Join(dir, "server.log"), 0)
	if err != nil {
		return nil, err
	}
	return core.NewClusterWithStores(cfg, store, slog), nil
}

// AddDurableClient joins a client whose private log is a real file
// under dir.
func AddDurableClient(cl *Cluster, dir string, name string) (*Client, error) {
	logStore, err := wal.OpenFileStore(filepath.Join(dir, name+".log"), cl.Config().ClientLogCapacity)
	if err != nil {
		return nil, err
	}
	return cl.AddClientWithLog(logStore)
}
