package clientlog_test

import (
	"bytes"
	"testing"

	"clientlog"
)

func TestPublicAPISmoke(t *testing.T) {
	cfg := clientlog.DefaultConfig()
	cluster := clientlog.NewCluster(cfg)
	pages, err := cluster.SeedPages(2, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	client, err := cluster.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	obj := clientlog.ObjectID{Page: pages[0], Slot: 0}
	txn, err := client.Begin()
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("0123456789abcdef")
	if err := txn.Overwrite(obj, want); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	txn2, _ := client.Begin()
	got, err := txn2.Read(obj)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read back %q err=%v", got, err)
	}
	txn2.Commit()
}

func TestPublicAPIFileBacked(t *testing.T) {
	dir := t.TempDir()
	cfg := clientlog.DefaultConfig()
	cluster, err := clientlog.OpenCluster(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	pages, err := cluster.SeedPages(1, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	client, err := clientlog.AddDurableClient(cluster, dir, "client-1")
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := client.Begin()
	obj := clientlog.ObjectID{Page: pages[0], Slot: 1}
	want := []byte("durable-value!!!")
	if err := txn.Overwrite(obj, want); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := client.FlushCache(); err != nil {
		t.Fatal(err)
	}
	got, err := cluster.ReadObject(obj)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("file-backed read back %q err=%v", got, err)
	}
}

func TestPublicAPICrashRecovery(t *testing.T) {
	cfg := clientlog.DefaultConfig()
	cluster := clientlog.NewCluster(cfg)
	pages, _ := cluster.SeedPages(1, 4, 16)
	client, _ := cluster.AddClient()
	obj := clientlog.ObjectID{Page: pages[0], Slot: 0}

	txn, _ := client.Begin()
	want := []byte("survives a crash")
	if err := txn.Overwrite(obj, want); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	cluster.CrashClient(client.ID())
	recovered, err := cluster.RestartClient(client.ID())
	if err != nil {
		t.Fatal(err)
	}
	txn2, _ := recovered.Begin()
	got, err := txn2.Read(obj)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("after recovery: %q err=%v", got, err)
	}
	txn2.Commit()
}
