// Package fleet splits the page space across N server instances by
// hash partitioning and gives clients a partition router so every
// page-addressed RPC goes to the owning partition.
//
// The design leans on the paper's client-based logging: commit forces
// only the client's private log and never ships data to any server, so
// the server tier is pure lock/fetch/metadata traffic — the shape that
// partitions cleanly.  A cross-partition transaction therefore needs no
// two-phase commit: its durability point is still the single local log
// force, and each involved partition merely carries its share of the
// DCT and replacement-record state (§3.1/§3.2 per partition).
//
// Lock acquisition stays two-phase.  Batched acquisitions extend the
// server's canonical ascending-(page, level, slot) order to ascending
// (partition, page, level, slot): the Router issues per-partition
// sub-batches in ascending partition index, and each partition then
// applies its own canonical order, so overlapping batches from two
// clients cannot deadlock on batch-internal ordering.  Single-lock
// acquisitions issued in transaction order can still deadlock across
// partitions; those cycles are invisible to any one partition's
// waits-for graph and are resolved by the Detector, which unions the
// partition-tagged graphs and kills a victim through the owning GLM.
package fleet

import (
	"clientlog/internal/lock"
	"clientlog/internal/page"
)

// Owner maps a page to its owning partition among n: hash partitioning
// by page ID.  Every component that needs the page→partition map (the
// Router, the storage allocation stride, the simulators' workload
// generators) uses this one function so they can never disagree.
func Owner(pid page.ID, n int) int {
	if n <= 1 {
		return 0
	}
	return int(uint64(pid) % uint64(n))
}

// MergeSnapshots unions per-partition waits-for snapshots into one
// fleet-wide view.  Waiters and edges concatenate in ascending
// partition order (each entry already carries its partition
// provenance); victims likewise.  Client IDs are fleet-global — one
// registry partition assigns them — so a client appearing in two
// partitions' graphs is the same node.
func MergeSnapshots(snaps []lock.WaitsForSnapshot) lock.WaitsForSnapshot {
	var out lock.WaitsForSnapshot
	for _, s := range snaps {
		out.Waiters = append(out.Waiters, s.Waiters...)
		out.Edges = append(out.Edges, s.Edges...)
		out.Victims = append(out.Victims, s.Victims...)
	}
	return out
}
