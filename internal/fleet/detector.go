package fleet

import (
	"sort"
	"sync"
	"time"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/obs"
)

// Member is one partition's view as the Detector needs it: the
// partition id, its live waits-for snapshot (the PR 3 introspection
// edges, partition-tagged), and the kill hook into its GLM.
type Member interface {
	Partition() int
	WaitsFor() lock.WaitsForSnapshot
	// KillWaiter dooms a currently blocked Acquire of the client so it
	// returns ErrDeadlock with the given cycle recorded in the victim
	// history.  It reports false when the client is not waiting there
	// anymore (the cycle resolved itself between snapshot and kill).
	KillWaiter(c ident.ClientID, cycle []ident.ClientID) bool
}

// DetectorMetrics counts distributed deadlock detection events.
type DetectorMetrics struct {
	Sweeps obs.Counter // union-and-search passes
	Cycles obs.Counter // cross-partition cycles found
	Kills  obs.Counter // victims successfully doomed
}

// RegisterObs binds the detector's counters into reg under scope=fleet.
func (d *Detector) RegisterObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	sc := obs.T("scope", "fleet")
	reg.BindCounter(&d.Metrics.Sweeps, "fleet_detector_sweeps_total", sc)
	reg.BindCounter(&d.Metrics.Cycles, "fleet_detector_cycles_total", sc)
	reg.BindCounter(&d.Metrics.Kills, "fleet_detector_kills_total", sc)
}

// Detector is the lightweight distributed deadlock coordinator: it
// periodically unions the partitions' waits-for graphs and kills a
// victim in every cycle that spans more than one partition.  Cycles
// confined to one partition are left alone — the local GLM detects
// those synchronously at edge-insertion time and they cannot persist.
//
// The union is an epoch snapshot, not an atomic cut: edges are
// collected one partition at a time, so a cycle assembled from
// slightly stale views can be a phantom.  Killing a phantom victim
// aborts one transaction that would have proceeded; every caller of
// Acquire already treats ErrDeadlock as retryable, so the cost is one
// retry.  The kill itself is guarded — GLM.KillWaiter refuses unless
// the victim is still blocked — which suppresses most phantoms.
type Detector struct {
	members func() []Member
	Metrics DetectorMetrics

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewDetector builds a detector over a member provider.  members is
// called on every sweep so partition restarts (fresh *Server engines)
// are picked up automatically.
func NewDetector(members func() []Member) *Detector {
	return &Detector{members: members}
}

// Snapshot returns the merged fleet-wide waits-for view (admin
// endpoints and the chaos failure report use it).
func (d *Detector) Snapshot() lock.WaitsForSnapshot {
	ms := d.members()
	snaps := make([]lock.WaitsForSnapshot, 0, len(ms))
	for _, m := range ms {
		snaps = append(snaps, m.WaitsFor())
	}
	return MergeSnapshots(snaps)
}

// edgeInfo is one waiter node of the union graph: who it waits for and
// the partition where it is blocked.
type edgeInfo struct {
	blockers  []ident.ClientID
	partition int
}

// Sweep runs one union-and-search pass and returns the number of
// victims killed.  Safe to call concurrently with the background loop;
// tests call it directly for deterministic resolution.
func (d *Detector) Sweep() int {
	d.Metrics.Sweeps.Inc()
	ms := d.members()
	graph := make(map[ident.ClientID]*edgeInfo)
	for _, m := range ms {
		snap := m.WaitsFor()
		for _, e := range snap.Edges {
			ei := graph[e.Waiter]
			if ei == nil {
				ei = &edgeInfo{partition: e.Partition}
				graph[e.Waiter] = ei
			}
			ei.blockers = append(ei.blockers, e.Blocker)
		}
	}
	// Deterministic iteration order: ascending client id.
	nodes := make([]ident.ClientID, 0, len(graph))
	for c := range graph {
		nodes = append(nodes, c)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	byPart := make(map[int]Member, len(ms))
	for _, m := range ms {
		byPart[m.Partition()] = m
	}
	kills := 0
	killed := make(map[ident.ClientID]bool)
	for _, start := range nodes {
		cycle := findCycle(graph, start)
		if cycle == nil {
			continue
		}
		parts := make(map[int]bool)
		for _, c := range cycle {
			if ei := graph[c]; ei != nil {
				parts[ei.partition] = true
			}
		}
		if len(parts) < 2 {
			continue // partition-local; the GLM's own detection owns it
		}
		d.Metrics.Cycles.Inc()
		victim := pickVictim(cycle, killed)
		if victim == 0 {
			continue // every node of this cycle was already doomed
		}
		ei := graph[victim]
		m := byPart[ei.partition]
		if m != nil && m.KillWaiter(victim, cycle) {
			kills++
			killed[victim] = true
			d.Metrics.Kills.Inc()
			// Drop the victim's edges so overlapping cycles through it
			// count as resolved within this sweep.
			delete(graph, victim)
		}
	}
	return kills
}

// findCycle returns the node sequence of a cycle reachable from start,
// or nil.  The DFS visits blockers in ascending id order so the result
// is deterministic for a given graph.
func findCycle(graph map[ident.ClientID]*edgeInfo, start ident.ClientID) []ident.ClientID {
	seen := make(map[ident.ClientID]bool)
	onPath := make(map[ident.ClientID]bool)
	var path []ident.ClientID
	var found []ident.ClientID
	var dfs func(n ident.ClientID) bool
	dfs = func(n ident.ClientID) bool {
		path = append(path, n)
		onPath[n] = true
		ei := graph[n]
		var blockers []ident.ClientID
		if ei != nil {
			blockers = append(blockers, ei.blockers...)
			sort.Slice(blockers, func(i, j int) bool { return blockers[i] < blockers[j] })
		}
		for _, b := range blockers {
			if onPath[b] {
				// Close the cycle: the suffix of path from b onward.
				for i, c := range path {
					if c == b {
						found = append([]ident.ClientID(nil), path[i:]...)
						return true
					}
				}
			}
			if !seen[b] {
				seen[b] = true
				if dfs(b) {
					return true
				}
			}
		}
		path = path[:len(path)-1]
		delete(onPath, n)
		return false
	}
	seen[start] = true
	if dfs(start) {
		return found
	}
	return nil
}

// pickVictim chooses deterministically among the cycle's members that
// are not already doomed: the highest client id (the youngest client,
// under the monotone registry) loses.
func pickVictim(cycle []ident.ClientID, killed map[ident.ClientID]bool) ident.ClientID {
	var victim ident.ClientID
	for _, c := range cycle {
		if killed[c] {
			continue
		}
		if c > victim {
			victim = c
		}
	}
	return victim
}

// Start launches the background sweep loop with the given cadence.
// Stop terminates it; Start after Stop restarts it.
func (d *Detector) Start(every time.Duration) {
	if every <= 0 {
		every = 20 * time.Millisecond
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stop != nil {
		return // already running
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	stop, done := d.stop, d.done
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				d.Sweep()
			}
		}
	}()
}

// Stop terminates the background loop and waits for it to exit.
func (d *Detector) Stop() {
	d.mu.Lock()
	stop, done := d.stop, d.done
	d.stop, d.done = nil, nil
	d.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
