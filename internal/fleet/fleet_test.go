package fleet

import (
	"reflect"
	"testing"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/msg"
	"clientlog/internal/page"
)

func TestOwnerCoversAndAgrees(t *testing.T) {
	if Owner(42, 1) != 0 || Owner(42, 0) != 0 {
		t.Fatalf("degenerate fleet must own everything at partition 0")
	}
	for n := 2; n <= 5; n++ {
		seen := make(map[int]bool)
		for pid := page.ID(1); pid < 100; pid++ {
			o := Owner(pid, n)
			if o < 0 || o >= n {
				t.Fatalf("Owner(%d, %d) = %d out of range", pid, n, o)
			}
			seen[o] = true
		}
		if len(seen) != n {
			t.Fatalf("n=%d: only %d partitions ever own a page", n, len(seen))
		}
	}
}

// fakePart records the calls one partition's conn receives.  The
// embedded nil msg.Server makes any unrouted call panic loudly.
type fakePart struct {
	msg.Server
	part       int
	lockItems  [][]msg.LockItem
	fetchPages [][]page.ID
	allocs     int
	registers  []msg.RegisterReq
}

func (f *fakePart) LockBatch(req msg.LockBatchReq) (msg.LockBatchReply, error) {
	f.lockItems = append(f.lockItems, req.Items)
	reply := msg.LockBatchReply{
		Grants: make([]msg.LockReply, len(req.Items)),
		Errs:   make([]string, len(req.Items)),
	}
	for i, it := range req.Items {
		reply.Grants[i] = msg.LockReply{Name: it.Name, Mode: it.Mode}
	}
	return reply, nil
}

func (f *fakePart) FetchBatch(req msg.FetchBatchReq) (msg.FetchBatchReply, error) {
	f.fetchPages = append(f.fetchPages, req.Pages)
	reply := msg.FetchBatchReply{
		Images:  make([][]byte, len(req.Pages)),
		DCTPSNs: make([]page.PSN, len(req.Pages)),
		Errs:    make([]string, len(req.Pages)),
	}
	for i, pid := range req.Pages {
		reply.Images[i] = []byte{byte(pid)}
		reply.DCTPSNs[i] = page.PSN(pid) * 10
	}
	return reply, nil
}

func (f *fakePart) Alloc(msg.AllocReq) (msg.FetchReply, error) {
	f.allocs++
	return msg.FetchReply{}, nil
}

func (f *fakePart) Register(req msg.RegisterReq) (msg.RegisterReply, error) {
	f.registers = append(f.registers, req)
	id := req.ID
	if id == 0 {
		id = 7
	}
	return msg.RegisterReply{ID: id, HeldX: []lock.Holding{
		{Name: lock.PageName(page.ID(f.part)), Mode: lock.X},
	}}, nil
}

func newFakeFleet(n int) ([]*fakePart, *Router) {
	parts := make([]*fakePart, n)
	conns := make([]msg.Server, n)
	for i := range parts {
		parts[i] = &fakePart{part: i}
		conns[i] = parts[i]
	}
	return parts, NewRouter(conns)
}

func TestRouterLockBatchSplitsAndReassembles(t *testing.T) {
	parts, r := newFakeFleet(3)
	// Pages 5,3,4,6,9 over 3 partitions: owners 2,0,1,0,0.
	pages := []page.ID{5, 3, 4, 6, 9}
	req := msg.LockBatchReq{Client: 1}
	for _, pid := range pages {
		req.Items = append(req.Items, msg.LockItem{Name: lock.PageName(pid), Mode: lock.X})
	}
	reply, err := r.LockBatch(req)
	if err != nil {
		t.Fatalf("LockBatch: %v", err)
	}
	// Grants come back in request order despite the partition split.
	for i, g := range reply.Grants {
		if g.Name.Page != pages[i] {
			t.Fatalf("grant %d: got page %d, want %d", i, g.Name.Page, pages[i])
		}
	}
	// Each partition saw exactly its owned pages, in request order.
	wantByPart := [][]page.ID{{3, 6, 9}, {4}, {5}}
	for p, fp := range parts {
		if len(fp.lockItems) != 1 {
			t.Fatalf("partition %d: %d sub-batches, want 1", p, len(fp.lockItems))
		}
		var got []page.ID
		for _, it := range fp.lockItems[0] {
			got = append(got, it.Name.Page)
		}
		if !reflect.DeepEqual(got, wantByPart[p]) {
			t.Fatalf("partition %d saw %v, want %v", p, got, wantByPart[p])
		}
	}
}

func TestRouterFetchBatchReassemblesInRequestOrder(t *testing.T) {
	_, r := newFakeFleet(3)
	pages := []page.ID{7, 2, 3, 8}
	reply, err := r.FetchBatch(msg.FetchBatchReq{Client: 1, Pages: pages})
	if err != nil {
		t.Fatalf("FetchBatch: %v", err)
	}
	for i, pid := range pages {
		if len(reply.Images[i]) != 1 || reply.Images[i][0] != byte(pid) {
			t.Fatalf("image %d: got %v, want [%d]", i, reply.Images[i], byte(pid))
		}
		if reply.DCTPSNs[i] != page.PSN(pid)*10 {
			t.Fatalf("psn %d: got %d, want %d", i, reply.DCTPSNs[i], pid*10)
		}
	}
}

func TestRouterAllocRoundRobins(t *testing.T) {
	parts, r := newFakeFleet(3)
	for i := 0; i < 9; i++ {
		if _, err := r.Alloc(msg.AllocReq{Client: 1}); err != nil {
			t.Fatalf("Alloc: %v", err)
		}
	}
	for p, fp := range parts {
		if fp.allocs != 3 {
			t.Fatalf("partition %d got %d allocs, want 3", p, fp.allocs)
		}
	}
}

func TestRouterRegisterFreshAssignsAtHomeThenAnnounces(t *testing.T) {
	parts, r := newFakeFleet(3)
	reply, err := r.Register(msg.RegisterReq{})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if reply.ID != 7 {
		t.Fatalf("assigned id %d, want the home partition's 7", reply.ID)
	}
	if len(parts[0].registers) != 1 || parts[0].registers[0].Recover {
		t.Fatalf("home partition should see the one fresh registration")
	}
	for p := 1; p < 3; p++ {
		regs := parts[p].registers
		if len(regs) != 1 || !regs[0].Recover || regs[0].ID != 7 {
			t.Fatalf("partition %d should see one recovery announce for id 7, got %+v", p, regs)
		}
	}
}

func TestRouterRegisterRecoverMergesHeldLocks(t *testing.T) {
	_, r := newFakeFleet(3)
	reply, err := r.Register(msg.RegisterReq{ID: 7, Recover: true})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if len(reply.HeldX) != 3 {
		t.Fatalf("merged %d retained locks, want one per partition", len(reply.HeldX))
	}
}

// detMember fabricates one partition's waits-for view for the Detector.
type detMember struct {
	part  int
	edges []lock.WaitEdge
	kills []ident.ClientID
}

func (m *detMember) Partition() int { return m.part }
func (m *detMember) WaitsFor() lock.WaitsForSnapshot {
	return lock.WaitsForSnapshot{Edges: m.edges}
}
func (m *detMember) KillWaiter(c ident.ClientID, cycle []ident.ClientID) bool {
	m.kills = append(m.kills, c)
	return true
}

func edge(w, b ident.ClientID, part int) lock.WaitEdge {
	return lock.WaitEdge{Waiter: w, Blocker: b, Partition: part}
}

func detector(ms ...*detMember) *Detector {
	return NewDetector(func() []Member {
		out := make([]Member, len(ms))
		for i, m := range ms {
			out[i] = m
		}
		return out
	})
}

func TestDetectorKillsCrossPartitionCycle(t *testing.T) {
	// c1 blocked on c2 at partition 0; c2 blocked on c1 at partition 1.
	m0 := &detMember{part: 0, edges: []lock.WaitEdge{edge(1, 2, 0)}}
	m1 := &detMember{part: 1, edges: []lock.WaitEdge{edge(2, 1, 1)}}
	d := detector(m0, m1)
	if kills := d.Sweep(); kills != 1 {
		t.Fatalf("Sweep killed %d, want 1", kills)
	}
	// Victim is the highest client id, killed at the partition where it
	// waits (c2 waits at partition 1).
	if len(m1.kills) != 1 || m1.kills[0] != 2 {
		t.Fatalf("partition 1 kills = %v, want [2]", m1.kills)
	}
	if len(m0.kills) != 0 {
		t.Fatalf("partition 0 should not kill, got %v", m0.kills)
	}
	if got := d.Metrics.Cycles.Load(); got != 1 {
		t.Fatalf("cycles metric %d, want 1", got)
	}
}

func TestDetectorIgnoresLocalCycle(t *testing.T) {
	// Both edges of the cycle live at partition 0: the local GLM's own
	// synchronous detection owns it, the fleet detector must not race it.
	m0 := &detMember{part: 0, edges: []lock.WaitEdge{edge(1, 2, 0), edge(2, 1, 0)}}
	m1 := &detMember{part: 1}
	d := detector(m0, m1)
	if kills := d.Sweep(); kills != 0 {
		t.Fatalf("Sweep killed %d on a partition-local cycle, want 0", kills)
	}
	if d.Metrics.Cycles.Load() != 0 {
		t.Fatalf("local cycle must not count as a fleet cycle")
	}
}

func TestDetectorNoCycleNoKill(t *testing.T) {
	// A cross-partition chain without a cycle: c1→c2→c3.
	m0 := &detMember{part: 0, edges: []lock.WaitEdge{edge(1, 2, 0)}}
	m1 := &detMember{part: 1, edges: []lock.WaitEdge{edge(2, 3, 1)}}
	d := detector(m0, m1)
	if kills := d.Sweep(); kills != 0 {
		t.Fatalf("Sweep killed %d on an acyclic graph, want 0", kills)
	}
}

func TestDetectorThreePartitionCycleOneVictim(t *testing.T) {
	// c1@p0 → c2, c2@p1 → c3, c3@p2 → c1: one cycle, one victim (c3).
	m0 := &detMember{part: 0, edges: []lock.WaitEdge{edge(1, 2, 0)}}
	m1 := &detMember{part: 1, edges: []lock.WaitEdge{edge(2, 3, 1)}}
	m2 := &detMember{part: 2, edges: []lock.WaitEdge{edge(3, 1, 2)}}
	d := detector(m0, m1, m2)
	if kills := d.Sweep(); kills != 1 {
		t.Fatalf("Sweep killed %d, want 1", kills)
	}
	if len(m2.kills) != 1 || m2.kills[0] != 3 {
		t.Fatalf("partition 2 kills = %v, want [3]", m2.kills)
	}
}

func TestMergeSnapshotsConcatenatesProvenance(t *testing.T) {
	s0 := lock.WaitsForSnapshot{Edges: []lock.WaitEdge{edge(1, 2, 0)}}
	s1 := lock.WaitsForSnapshot{Edges: []lock.WaitEdge{edge(2, 1, 1)}}
	merged := MergeSnapshots([]lock.WaitsForSnapshot{s0, s1})
	if len(merged.Edges) != 2 {
		t.Fatalf("merged %d edges, want 2", len(merged.Edges))
	}
	if merged.Edges[0].Partition != 0 || merged.Edges[1].Partition != 1 {
		t.Fatalf("partition provenance lost in merge: %+v", merged.Edges)
	}
}
