package fleet

import (
	"sort"
	"sync/atomic"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/msg"
	"clientlog/internal/page"
)

// Router is the client-side partition router: it implements msg.Server
// over one conn per partition (in-process loopback conns or resumable
// netrpc sessions) and forwards every page-addressed call to the owning
// partition.  The client engine is entirely unaware of the fleet — it
// holds a single msg.Server, which happens to be a Router.
//
// Routing table:
//
//   - by page owner: Lock, Unlock, Fetch, Ship, Force, Free, Token,
//     RecoveryFetch
//   - split by owner, ascending partition order: LockBatch, FetchBatch,
//     Reinstall, RecoverQuery, CommitShip (pages)
//   - broadcast, ascending order: Register(Recover), RecoverEnd,
//     Disconnect
//   - home partition (index 0): fresh Register (the fleet-wide client
//     ID registry), LogOp (hosted diskless logs), CommitShip records
//   - round-robin: Alloc (each partition's store allocates only IDs it
//     owns, so the granted page's owner is the allocating partition)
type Router struct {
	parts []msg.Server
	alloc atomic.Uint64
}

// NewRouter builds a router over the per-partition conns, in partition
// order.  A single-conn router degenerates to plain forwarding.
func NewRouter(parts []msg.Server) *Router {
	return &Router{parts: parts}
}

// Partitions returns the fleet size.
func (r *Router) Partitions() int { return len(r.parts) }

// owner maps a page to its owning conn.
func (r *Router) owner(pid page.ID) msg.Server {
	return r.parts[Owner(pid, len(r.parts))]
}

// Register implements msg.Server.  A fresh registration is assigned by
// the home partition — the fleet's client-ID registry — and then
// announced to every other partition with a no-op recovery registration
// so their transports bind the session to the ID.  A recovery
// registration broadcasts in ascending order and merges the retained
// exclusive locks every partition reports (§3.3 per partition).
func (r *Router) Register(req msg.RegisterReq) (msg.RegisterReply, error) {
	if !req.Recover {
		reply, err := r.parts[0].Register(req)
		if err != nil {
			return msg.RegisterReply{}, err
		}
		announce := msg.RegisterReq{ID: reply.ID, Recover: true}
		for i := 1; i < len(r.parts); i++ {
			if _, err := r.parts[i].Register(announce); err != nil {
				return msg.RegisterReply{}, err
			}
		}
		return reply, nil
	}
	var out msg.RegisterReply
	for i, p := range r.parts {
		reply, err := p.Register(req)
		if err != nil {
			return msg.RegisterReply{}, err
		}
		if i == 0 {
			out = reply
		} else {
			out.HeldX = append(out.HeldX, reply.HeldX...)
		}
	}
	return out, nil
}

// Lock implements msg.Server.
func (r *Router) Lock(req msg.LockReq) (msg.LockReply, error) {
	return r.owner(req.Name.Page).Lock(req)
}

// LockBatch implements msg.Server: the batch splits by owning
// partition and the sub-batches are issued in ascending partition
// order — the fleet-wide extension of the server's canonical
// ascending-(page, level, slot) acquisition order, so overlapping
// batches from two clients cannot deadlock on batch-internal ordering.
// Per-item grants and errors are reassembled in request order.
func (r *Router) LockBatch(req msg.LockBatchReq) (msg.LockBatchReply, error) {
	if len(r.parts) == 1 {
		return r.parts[0].LockBatch(req)
	}
	reply := msg.LockBatchReply{
		Grants: make([]msg.LockReply, len(req.Items)),
		Errs:   make([]string, len(req.Items)),
	}
	byPart := make(map[int][]int)
	for i, it := range req.Items {
		p := Owner(it.Name.Page, len(r.parts))
		byPart[p] = append(byPart[p], i)
	}
	order := make([]int, 0, len(byPart))
	for p := range byPart {
		order = append(order, p)
	}
	sort.Ints(order)
	for _, p := range order {
		idx := byPart[p]
		sub := msg.LockBatchReq{Client: req.Client, Trace: req.Trace, Items: make([]msg.LockItem, len(idx))}
		for j, i := range idx {
			sub.Items[j] = req.Items[i]
		}
		subReply, err := r.parts[p].LockBatch(sub)
		if err != nil {
			return msg.LockBatchReply{}, err
		}
		for j, i := range idx {
			reply.Grants[i] = subReply.Grants[j]
			reply.Errs[i] = subReply.Errs[j]
		}
	}
	return reply, nil
}

// Unlock implements msg.Server.
func (r *Router) Unlock(req msg.UnlockReq) error {
	return r.owner(req.Name.Page).Unlock(req)
}

// Fetch implements msg.Server.
func (r *Router) Fetch(req msg.FetchReq) (msg.FetchReply, error) {
	return r.owner(req.Page).Fetch(req)
}

// FetchBatch implements msg.Server: split by owner, ascending
// partition order, results reassembled in request order.
func (r *Router) FetchBatch(req msg.FetchBatchReq) (msg.FetchBatchReply, error) {
	if len(r.parts) == 1 {
		return r.parts[0].FetchBatch(req)
	}
	reply := msg.FetchBatchReply{
		Images:  make([][]byte, len(req.Pages)),
		DCTPSNs: make([]page.PSN, len(req.Pages)),
		Errs:    make([]string, len(req.Pages)),
	}
	byPart := make(map[int][]int)
	for i, pid := range req.Pages {
		p := Owner(pid, len(r.parts))
		byPart[p] = append(byPart[p], i)
	}
	order := make([]int, 0, len(byPart))
	for p := range byPart {
		order = append(order, p)
	}
	sort.Ints(order)
	for _, p := range order {
		idx := byPart[p]
		sub := msg.FetchBatchReq{Client: req.Client, Trace: req.Trace, Pages: make([]page.ID, len(idx))}
		for j, i := range idx {
			sub.Pages[j] = req.Pages[i]
		}
		subReply, err := r.parts[p].FetchBatch(sub)
		if err != nil {
			return msg.FetchBatchReply{}, err
		}
		for j, i := range idx {
			reply.Images[i] = subReply.Images[j]
			reply.DCTPSNs[i] = subReply.DCTPSNs[j]
			reply.Errs[i] = subReply.Errs[j]
		}
	}
	return reply, nil
}

// Ship implements msg.Server.  The shipped image's page ID decides the
// partition; it is parsed from the image header the same way the
// server does.
func (r *Router) Ship(req msg.ShipReq) error {
	p := new(page.Page)
	if err := p.UnmarshalBinary(req.Image); err != nil {
		return err
	}
	return r.owner(p.ID()).Ship(req)
}

// Force implements msg.Server.
func (r *Router) Force(req msg.ForceReq) (msg.ForceReply, error) {
	return r.owner(req.Page).Force(req)
}

// Alloc implements msg.Server: allocations round-robin across
// partitions.  Each partition's store allocates with a (stride, offset)
// rule so it only ever mints page IDs it owns.
func (r *Router) Alloc(req msg.AllocReq) (msg.FetchReply, error) {
	n := r.alloc.Add(1)
	return r.parts[int(n%uint64(len(r.parts)))].Alloc(req)
}

// Free implements msg.Server.
func (r *Router) Free(req msg.FreeReq) error {
	return r.owner(req.Page).Free(req)
}

// CommitShip implements msg.Server (ship-log / ship-pages baselines
// only; the paper's scheme never ships at commit).  Shipped pages
// split by owner; the log records go to the home partition, which
// hosts the shipped-log baselines' server log for this client.
func (r *Router) CommitShip(req msg.CommitShipReq) error {
	if len(r.parts) == 1 {
		return r.parts[0].CommitShip(req)
	}
	byPart := make(map[int][][]byte)
	for _, img := range req.Pages {
		p := new(page.Page)
		if err := p.UnmarshalBinary(img); err != nil {
			return err
		}
		o := Owner(p.ID(), len(r.parts))
		byPart[o] = append(byPart[o], img)
	}
	// Records always land at the home partition, even with no pages.
	order := []int{0}
	for p := range byPart {
		if p != 0 {
			order = append(order, p)
		}
	}
	sort.Ints(order)
	for _, p := range order {
		sub := msg.CommitShipReq{Client: req.Client, Txn: req.Txn, Trace: req.Trace, Pages: byPart[p]}
		if p == 0 {
			sub.Records = req.Records
		}
		if len(sub.Records) == 0 && len(sub.Pages) == 0 {
			continue
		}
		if err := r.parts[p].CommitShip(sub); err != nil {
			return err
		}
	}
	return nil
}

// Token implements msg.Server.
func (r *Router) Token(req msg.TokenReq) (msg.TokenReply, error) {
	return r.owner(req.Page).Token(req)
}

// RecoveryFetch implements msg.Server.
func (r *Router) RecoveryFetch(req msg.RecoveryFetchReq) (msg.FetchReply, error) {
	return r.owner(req.Page).RecoveryFetch(req)
}

// Reinstall implements msg.Server: holdings split by the owning
// partition of each lock name's page, ascending order.
func (r *Router) Reinstall(c ident.ClientID, holds []lock.Holding) error {
	if len(r.parts) == 1 {
		return r.parts[0].Reinstall(c, holds)
	}
	byPart := make(map[int][]lock.Holding)
	for _, h := range holds {
		p := Owner(h.Name.Page, len(r.parts))
		byPart[p] = append(byPart[p], h)
	}
	order := make([]int, 0, len(byPart))
	for p := range byPart {
		order = append(order, p)
	}
	sort.Ints(order)
	for _, p := range order {
		if err := r.parts[p].Reinstall(c, byPart[p]); err != nil {
			return err
		}
	}
	return nil
}

// RecoverQuery implements msg.Server: the recovering client's DPT
// pages split by owner and the DCT rows merge back (row order is
// per-partition ascending; the client indexes rows by page).
func (r *Router) RecoverQuery(c ident.ClientID, pages []page.ID) ([]msg.DCTRow, error) {
	if len(r.parts) == 1 {
		return r.parts[0].RecoverQuery(c, pages)
	}
	byPart := make(map[int][]page.ID)
	for _, pid := range pages {
		p := Owner(pid, len(r.parts))
		byPart[p] = append(byPart[p], pid)
	}
	order := make([]int, 0, len(byPart))
	for p := range byPart {
		order = append(order, p)
	}
	sort.Ints(order)
	var rows []msg.DCTRow
	for _, p := range order {
		sub, err := r.parts[p].RecoverQuery(c, byPart[p])
		if err != nil {
			return nil, err
		}
		rows = append(rows, sub...)
	}
	return rows, nil
}

// LogOp implements msg.Server: hosted (diskless) private logs live at
// the home partition.
func (r *Router) LogOp(req msg.LogReq) (msg.LogReply, error) {
	return r.parts[0].LogOp(req)
}

// RecoverEnd implements msg.Server: broadcast, ascending order — every
// partition gates grants on the recovering client (§3.5) and must hear
// the all-clear.
func (r *Router) RecoverEnd(c ident.ClientID) error {
	for _, p := range r.parts {
		if err := p.RecoverEnd(c); err != nil {
			return err
		}
	}
	return nil
}

// Disconnect implements msg.Server: broadcast, ascending order.
func (r *Router) Disconnect(c ident.ClientID) error {
	for _, p := range r.parts {
		if err := p.Disconnect(c); err != nil {
			return err
		}
	}
	return nil
}
