package lock

import (
	"errors"
	"sync"
	"testing"
	"time"

	"clientlog/internal/ident"
)

// TestFairnessOldestWaiterWins: with a cooperative holder, a younger
// request must not overtake an older one for the same object.
func TestFairnessOldestWaiterWins(t *testing.T) {
	g := NewGLM(nil, 5*time.Second)
	release := make(chan struct{})
	rc := &recordingCallbacker{}
	rc.react = func(cb callback) {
		<-release // the holder yields only when the test says so
		g.Release(cb.holder, cb.obj)
	}
	g.SetCallbacker(rc)

	if _, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: X}); err != nil {
		t.Fatal(err)
	}
	order := make(chan ident.ClientID, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := g.Acquire(Request{Client: cB, Name: obj(1, 0), Mode: X}); err == nil {
			order <- cB
			// Hold briefly then release so the younger waiter finishes.
			time.Sleep(10 * time.Millisecond)
			g.Release(cB, obj(1, 0))
		}
	}()
	time.Sleep(50 * time.Millisecond) // B is registered and older
	go func() {
		defer wg.Done()
		if _, err := g.Acquire(Request{Client: cC, Name: obj(1, 0), Mode: X}); err == nil {
			order <- cC
			g.Release(cC, obj(1, 0))
		}
	}()
	time.Sleep(50 * time.Millisecond) // C is registered and younger
	close(release)                    // A yields
	wg.Wait()
	first := <-order
	if first != cB {
		t.Fatalf("younger request overtook the older waiter: first=%v", first)
	}
	if second := <-order; second != cC {
		t.Fatalf("second grant: %v", second)
	}
}

// TestUpgradeBypassesFairness: an upgrade by the current holder must
// not queue behind waiting requests (it would deadlock against the
// callback waiting for the holder's own transaction).
func TestUpgradeBypassesFairness(t *testing.T) {
	g := NewGLM(&recordingCallbacker{}, 300*time.Millisecond) // no holder reaction
	if _, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: S}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(Request{Client: cB, Name: obj(1, 0), Mode: S}); err != nil {
		t.Fatal(err)
	}
	// C waits for X behind both S holders (no reaction: it will block).
	done := make(chan error, 1)
	go func() {
		_, err := g.Acquire(Request{Client: cC, Name: obj(1, 0), Mode: X})
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	// B releases; A (holder of S) upgrades: fairness must not queue the
	// upgrade behind C's older request.
	g.Release(cB, obj(1, 0))
	gr, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: X, Upgrade: true})
	if err != nil {
		t.Fatalf("upgrade blocked behind waiter: %v", err)
	}
	if gr.Mode != X {
		t.Fatalf("upgrade grant: %+v", gr)
	}
	if err := <-done; !errors.Is(err, ErrTimeout) {
		t.Fatalf("C should have timed out against the upgraded holder: %v", err)
	}
}

// TestFairnessDeadlockDetected: fairness edges participate in deadlock
// detection — a cycle through an older waiter must abort someone
// instead of waiting for two timeouts.
func TestFairnessDeadlockDetected(t *testing.T) {
	g := NewGLM(&recordingCallbacker{}, 5*time.Second)
	// A holds o1; B holds o2.
	if _, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: X}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(Request{Client: cB, Name: obj(2, 0), Mode: X}); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() {
		_, err := g.Acquire(Request{Client: cA, Name: obj(2, 0), Mode: X})
		errs <- err
	}()
	time.Sleep(30 * time.Millisecond)
	go func() {
		_, err := g.Acquire(Request{Client: cB, Name: obj(1, 0), Mode: X})
		errs <- err
	}()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("got %v, want ErrDeadlock", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("deadlock with fairness edges not detected")
	}
}

// TestOverlaps pins down the name-overlap relation fairness uses.
func TestOverlaps(t *testing.T) {
	cases := []struct {
		a, b Name
		want bool
	}{
		{obj(1, 0), obj(1, 0), true},
		{obj(1, 0), obj(1, 1), false},
		{obj(1, 0), obj(2, 0), false},
		{PageName(1), obj(1, 5), true},
		{obj(1, 5), PageName(1), true},
		{PageName(1), PageName(1), true},
		{PageName(1), PageName(2), false},
	}
	for _, c := range cases {
		if got := overlaps(c.a, c.b); got != c.want {
			t.Fatalf("overlaps(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestFairnessNoGhostWaiters: a request that times out must not leave a
// waiting-registry entry behind that blocks future requests.
func TestFairnessNoGhostWaiters(t *testing.T) {
	g := NewGLM(&recordingCallbacker{}, 100*time.Millisecond)
	if _, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: X}); err != nil {
		t.Fatal(err)
	}
	// B times out waiting.
	if _, err := g.Acquire(Request{Client: cB, Name: obj(1, 0), Mode: X}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	// A releases; C must acquire immediately despite B's dead request.
	g.Release(cA, obj(1, 0))
	start := time.Now()
	if _, err := g.Acquire(Request{Client: cC, Name: obj(1, 0), Mode: X}); err != nil {
		t.Fatalf("C after ghost: %v", err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("ghost waiter slowed down C")
	}
}
