package lock

import (
	"errors"
	"testing"
	"time"
)

func TestWaitsForSnapshotShowsWaiter(t *testing.T) {
	g := NewGLM(&recordingCallbacker{}, 2*time.Second)
	if _, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: X}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := g.Acquire(Request{Client: cB, Name: obj(1, 0), Mode: X})
		done <- err
	}()
	// Wait for B to show up in the wait graph.
	deadline := time.Now().Add(time.Second)
	var snap WaitsForSnapshot
	for time.Now().Before(deadline) {
		snap = g.WaitsFor()
		if len(snap.Waiters) == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(snap.Waiters) != 1 || snap.Waiters[0].Client != cB {
		t.Fatalf("waiters = %+v, want cB", snap.Waiters)
	}
	if snap.Waiters[0].Mode != X || snap.Waiters[0].Name != obj(1, 0) {
		t.Fatalf("waiter detail = %+v", snap.Waiters[0])
	}
	if snap.Waiters[0].Age <= 0 {
		t.Fatalf("waiter age = %v, want > 0", snap.Waiters[0].Age)
	}
	if len(snap.Edges) != 1 || snap.Edges[0].Waiter != cB || snap.Edges[0].Blocker != cA {
		t.Fatalf("edges = %+v, want cB->cA", snap.Edges)
	}
	// Unblock B; the graph must drain.
	g.Release(cA, obj(1, 0))
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	snap = g.WaitsFor()
	if len(snap.Waiters) != 0 || len(snap.Edges) != 0 {
		t.Fatalf("graph not drained: %+v", snap)
	}
}

func TestWaitsForRecordsDeadlockVictims(t *testing.T) {
	g := NewGLM(&recordingCallbacker{}, 5*time.Second) // no reaction: holders never yield
	if _, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: X}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(Request{Client: cB, Name: obj(2, 0), Mode: X}); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() {
		_, err := g.Acquire(Request{Client: cA, Name: obj(2, 0), Mode: X})
		errs <- err
	}()
	go func() {
		_, err := g.Acquire(Request{Client: cB, Name: obj(1, 0), Mode: X})
		errs <- err
	}()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("got %v, want ErrDeadlock", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("deadlock not detected")
	}
	snap := g.WaitsFor()
	if len(snap.Victims) != 1 {
		t.Fatalf("victims = %+v, want exactly one", snap.Victims)
	}
	v := snap.Victims[0]
	if v.Client != cA && v.Client != cB {
		t.Fatalf("victim client = %v", v.Client)
	}
	if len(v.Cycle) < 2 {
		t.Fatalf("victim cycle = %v, want the closed wait cycle", v.Cycle)
	}
	if v.At.IsZero() {
		t.Fatal("victim timestamp not set")
	}
	// Release the survivor's grant paths so the test exits cleanly.
	g.Stop()
}
