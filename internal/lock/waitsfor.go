package lock

import (
	"sort"
	"time"

	"clientlog/internal/ident"
)

// maxVictims bounds the deadlock-victim history ring.
const maxVictims = 64

// WaiterInfo describes one currently blocked Acquire.
type WaiterInfo struct {
	Client ident.ClientID
	Name   Name
	Mode   Mode
	// Age is how long the request has been blocked.
	Age time.Duration
	// Partition is the provenance of this entry: the partition id of
	// the GLM that exported it (SetOrigin).  0 for a single server.
	Partition int
}

// WaitEdge is one live edge of the client-level waits-for graph:
// Waiter cannot proceed until Blocker releases (or downgrades).
type WaitEdge struct {
	Waiter  ident.ClientID
	Blocker ident.ClientID
	// Partition is where the waiter is blocked; merged fleet graphs
	// stay unambiguous because every edge names its exporting GLM.
	Partition int
}

// DeadlockVictim records one Acquire aborted with ErrDeadlock.
type DeadlockVictim struct {
	Client ident.ClientID
	Name   Name
	Mode   Mode
	At     time.Time
	// Cycle is the waits-for path that closed the cycle, starting at
	// the victim.
	Cycle []ident.ClientID
	// Partition is the GLM that aborted the victim.  A distributed
	// (cross-partition) cycle records the partition where the victim
	// was blocked when the fleet detector doomed it.
	Partition int
	// Distributed marks victims killed by the fleet's merged-graph
	// detector rather than the GLM's own edge-insertion check.
	Distributed bool
}

// WaitsForSnapshot is a consistent point-in-time view of the GLM's
// lock-wait state: who is blocked on what, the waits-for edges between
// clients, and the recent deadlock victims (newest last).
type WaitsForSnapshot struct {
	Waiters []WaiterInfo
	Edges   []WaitEdge
	Victims []DeadlockVictim
}

// recordVictim appends to the bounded victim history.
func (g *GLM) recordVictim(req Request, cycle []ident.ClientID) {
	g.recordVictimTagged(req, cycle, false)
}

func (g *GLM) recordVictimTagged(req Request, cycle []ident.ClientID, distributed bool) {
	g.graphMu.Lock()
	defer g.graphMu.Unlock()
	g.victims = append(g.victims, DeadlockVictim{
		Client:      req.Client,
		Name:        req.Name,
		Mode:        req.Mode,
		At:          time.Now(),
		Cycle:       cycle,
		Partition:   g.origin,
		Distributed: distributed,
	})
	if len(g.victims) > maxVictims {
		g.victims = g.victims[len(g.victims)-maxVictims:]
	}
}

// WaitsFor snapshots the live lock-wait state for introspection
// (the /waitsfor admin endpoint and the chaos failure report).  Output
// is deterministically ordered.  Shards are visited in ascending order
// holding one shard mutex at a time, then the graph under graphMu, so
// the snapshot never blocks behind more than one shard and never
// deadlocks against Acquire; across shards the view is an epoch
// snapshot rather than a single atomic cut.
func (g *GLM) WaitsFor() WaitsForSnapshot {
	now := time.Now()
	var snap WaitsForSnapshot
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		for wr := range sh.waiting {
			snap.Waiters = append(snap.Waiters, WaiterInfo{
				Client:    wr.client,
				Name:      wr.name,
				Mode:      wr.mode,
				Age:       now.Sub(wr.since),
				Partition: g.origin,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(snap.Waiters, func(i, j int) bool {
		if snap.Waiters[i].Age != snap.Waiters[j].Age {
			return snap.Waiters[i].Age > snap.Waiters[j].Age
		}
		return snap.Waiters[i].Client < snap.Waiters[j].Client
	})
	g.graphMu.Lock()
	defer g.graphMu.Unlock()
	for w, blockers := range g.waits {
		for b := range blockers {
			snap.Edges = append(snap.Edges, WaitEdge{Waiter: w, Blocker: b, Partition: g.origin})
		}
	}
	sort.Slice(snap.Edges, func(i, j int) bool {
		if snap.Edges[i].Waiter != snap.Edges[j].Waiter {
			return snap.Edges[i].Waiter < snap.Edges[j].Waiter
		}
		return snap.Edges[i].Blocker < snap.Edges[j].Blocker
	})
	snap.Victims = append([]DeadlockVictim(nil), g.victims...)
	return snap
}
