package lock

import (
	"time"

	"sync"

	"clientlog/internal/ident"
	"clientlog/internal/page"
)

// LocalResult is the outcome of an LLM acquisition attempt.
type LocalResult int

const (
	// Granted means the lock was granted from the client's cache.
	Granted LocalResult = iota
	// NeedGlobal means the cache does not cover the request; the client
	// must ask the server's GLM and then InstallCached the grant.
	NeedGlobal
)

// LLM is a client's local lock manager.  It caches the locks the GLM
// granted to this client across transaction boundaries
// (inter-transaction lock caching) and grants them to local transactions
// under strict two-phase locking.  It also keeps, per page, the list of
// objects accessed by local transactions, which drives de-escalation
// (§3.2).
type LLM struct {
	mu sync.Mutex
	// cached are the client-level locks granted by the GLM.
	cached map[Name]Mode
	// use records active transactions' lock usage.  Object accesses are
	// recorded under the object name even when covered by a cached page
	// lock; structural page operations are recorded under the page name.
	use map[Name]map[ident.TxnID]Mode
	// accessed remembers, per object, the strongest mode any local
	// transaction ever used it with while the client held covering
	// locks; de-escalation retains object locks for these (the paper's
	// "list of the objects accessed by local transactions", which spans
	// committed transactions under inter-transaction caching).
	accessed map[Name]Mode
	// fences mark names with a pending callback: new conflicting local
	// acquisitions wait until the callback completes.
	fences map[Name]Mode
	// waitsLocal is the transaction-level waits-for graph for local
	// deadlock detection.
	waitsLocal map[ident.TxnID]map[ident.TxnID]bool

	waiters []chan struct{}
	stopped bool
	timeout time.Duration
}

// NewLLM returns an empty local lock manager whose blocking operations
// give up after timeout (0 means a generous default).
func NewLLM(timeout time.Duration) *LLM {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &LLM{
		cached:     make(map[Name]Mode),
		use:        make(map[Name]map[ident.TxnID]Mode),
		accessed:   make(map[Name]Mode),
		fences:     make(map[Name]Mode),
		waitsLocal: make(map[ident.TxnID]map[ident.TxnID]bool),
		timeout:    timeout,
	}
}

func (l *LLM) notifyAll() {
	for _, ch := range l.waiters {
		close(ch)
	}
	l.waiters = nil
}

// wait sleeps until the table changes or the deadline passes.  Called
// with l.mu held; returns with l.mu held.
func (l *LLM) wait(deadline time.Time) error {
	ch := make(chan struct{})
	l.waiters = append(l.waiters, ch)
	l.mu.Unlock()
	timer := time.NewTimer(time.Until(deadline))
	select {
	case <-ch:
		timer.Stop()
		l.mu.Lock()
		return nil
	case <-timer.C:
		l.mu.Lock()
		return ErrTimeout
	}
}

// fenceBlocks reports whether a pending callback on name forbids a new
// local acquisition with the given mode.  A fence in X takes the lock
// away entirely; a fence in S leaves shared access.
func fenceBlocks(fence Mode, mode Mode) bool {
	if fence == X {
		return true
	}
	return mode == X // fence == S keeps S available
}

// AcquireLocal grants name@mode to transaction t from the cache, blocks
// while other local transactions or pending callbacks conflict, or
// reports NeedGlobal when the server must be consulted.
func (l *LLM) AcquireLocal(t ident.TxnID, name Name, mode Mode) (LocalResult, error) {
	deadline := time.Now().Add(l.timeout)
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.stopped {
			return 0, ErrStopped
		}
		// Reentrant: the transaction already holds a sufficient use.
		if Covers(l.use[name][t], mode) {
			return Granted, nil
		}
		// Pending callbacks fence new conflicting acquisitions so the
		// callback cannot be starved.  A transaction that already uses
		// the name (or the covering page) bypasses the fence: the
		// callback must wait for that transaction's end regardless, so
		// letting it upgrade cannot extend the wait — while blocking it
		// would deadlock the callback against its own holder.
		ownUse := l.use[name][t] != None
		if !name.IsPage && l.use[PageName(name.Page)][t] != None {
			ownUse = true
		}
		if !ownUse {
			if f, ok := l.fences[name]; ok && fenceBlocks(f, mode) {
				if err := l.wait(deadline); err != nil {
					return 0, err
				}
				continue
			}
			if !name.IsPage {
				if f, ok := l.fences[PageName(name.Page)]; ok && fenceBlocks(f, mode) {
					if err := l.wait(deadline); err != nil {
						return 0, err
					}
					continue
				}
			}
		}
		// Conflicts with other local transactions (strict 2PL).
		blockers := l.localConflicts(t, name, mode)
		if len(blockers) > 0 {
			l.waitsLocal[t] = blockers
			if l.localCycle(t) {
				delete(l.waitsLocal, t)
				return 0, ErrDeadlock
			}
			err := l.wait(deadline)
			delete(l.waitsLocal, t)
			if err != nil {
				return 0, err
			}
			continue
		}
		// Cache coverage.
		if l.cacheCoversLocked(name, mode) {
			l.recordUse(t, name, mode)
			return Granted, nil
		}
		return NeedGlobal, nil
	}
}

// RecordUse registers a transaction's use of a lock that was just
// installed from a GLM grant (the caller re-ran AcquireLocal, so the
// use may already exist; RecordUse is idempotent).
func (l *LLM) recordUse(t ident.TxnID, name Name, mode Mode) {
	owners := l.use[name]
	if owners == nil {
		owners = make(map[ident.TxnID]Mode)
		l.use[name] = owners
	}
	owners[t] = Max(owners[t], mode)
	if !name.IsPage {
		l.accessed[name] = Max(l.accessed[name], mode)
	}
}

// localConflicts returns the transactions blocking t's request.  Called
// with l.mu held.
func (l *LLM) localConflicts(t ident.TxnID, name Name, mode Mode) map[ident.TxnID]bool {
	blockers := make(map[ident.TxnID]bool)
	scan := func(n Name) {
		for o, m := range l.use[n] {
			if o != t && !Compatible(m, mode) {
				blockers[o] = true
			}
		}
	}
	scan(name)
	if name.IsPage {
		// A page request conflicts with other transactions' object uses
		// on the page.
		for n, owners := range l.use {
			if n.IsPage || n.Page != name.Page {
				continue
			}
			for o, m := range owners {
				if o != t && !Compatible(m, mode) {
					blockers[o] = true
				}
			}
		}
	} else {
		// An object request conflicts with other transactions' page-level
		// uses (structural operations in progress).
		scan(PageName(name.Page))
	}
	if len(blockers) == 0 {
		return nil
	}
	return blockers
}

func (l *LLM) localCycle(t ident.TxnID) bool {
	seen := make(map[ident.TxnID]bool)
	var dfs func(n ident.TxnID) bool
	dfs = func(n ident.TxnID) bool {
		for b := range l.waitsLocal[n] {
			if b == t {
				return true
			}
			if !seen[b] {
				seen[b] = true
				if dfs(b) {
					return true
				}
			}
		}
		return false
	}
	return dfs(t)
}

func (l *LLM) cacheCoversLocked(name Name, mode Mode) bool {
	if Covers(l.cached[name], mode) {
		return true
	}
	if !name.IsPage && Covers(l.cached[PageName(name.Page)], mode) {
		return true
	}
	return false
}

// CachesAny reports whether the client caches any lock on the name (or
// the page covering it); such a request is an upgrade.
func (l *LLM) CachesAny(name Name) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cached[name] != None {
		return true
	}
	return !name.IsPage && l.cached[PageName(name.Page)] != None
}

// CacheCovers reports whether the cached locks cover name@mode.
func (l *LLM) CacheCovers(name Name, mode Mode) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cacheCoversLocked(name, mode)
}

// InstallCached records a lock granted by the GLM.
func (l *LLM) InstallCached(name Name, mode Mode) {
	l.mu.Lock()
	l.cached[name] = Max(l.cached[name], mode)
	l.notifyAll()
	l.mu.Unlock()
}

// CachedMode returns the cached mode for name (None if absent).
func (l *LLM) CachedMode(name Name) Mode {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cached[name]
}

// ReleaseTxn drops every use of a terminated transaction; cached locks
// are retained per inter-transaction caching.
func (l *LLM) ReleaseTxn(t ident.TxnID) {
	l.mu.Lock()
	for n, owners := range l.use {
		if _, ok := owners[t]; ok {
			delete(owners, t)
			if len(owners) == 0 {
				delete(l.use, n)
			}
		}
	}
	delete(l.waitsLocal, t)
	l.notifyAll()
	l.mu.Unlock()
}

// TxnUses returns the names t currently uses with their modes.
func (l *LLM) TxnUses(t ident.TxnID) []Holding {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Holding
	for n, owners := range l.use {
		if m, ok := owners[t]; ok {
			out = append(out, Holding{Name: n, Mode: m})
		}
	}
	return out
}

// UseMode returns the mode transaction t holds on name (None if none).
func (l *LLM) UseMode(t ident.TxnID, name Name) Mode {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.use[name][t]
}

// CachedLocks snapshots the client-level cached locks; server restart
// recovery collects them to rebuild the GLM tables (§3.4).
func (l *LLM) CachedLocks() []Holding {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Holding, 0, len(l.cached))
	for n, m := range l.cached {
		out = append(out, Holding{Name: n, Mode: m})
	}
	return out
}

// SetFence marks a pending callback on name so that new conflicting
// local acquisitions wait for its completion.
func (l *LLM) SetFence(name Name, wanted Mode) {
	l.mu.Lock()
	l.fences[name] = Max(l.fences[name], wanted)
	l.mu.Unlock()
}

// ClearFence removes the fence and wakes blocked acquisitions.
func (l *LLM) ClearFence(name Name) {
	l.mu.Lock()
	delete(l.fences, name)
	l.notifyAll()
	l.mu.Unlock()
}

// WaitObjectFree blocks until no active transaction holds a use on obj
// (or, for wanted==S, no exclusive use) and no structural page use
// covers it; the callback handler then mutates the cache.
func (l *LLM) WaitObjectFree(obj Name, wanted Mode) error {
	deadline := time.Now().Add(l.timeout)
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.stopped {
			return ErrStopped
		}
		if l.objectFreeLocked(obj, wanted) {
			return nil
		}
		if err := l.wait(deadline); err != nil {
			return err
		}
	}
}

func (l *LLM) objectFreeLocked(obj Name, wanted Mode) bool {
	check := func(n Name) bool {
		for _, m := range l.use[n] {
			if !Compatible(m, wanted) {
				return false
			}
		}
		return true
	}
	return check(obj) && check(PageName(obj.Page))
}

// WaitPageQuiesced blocks until no active transaction holds a
// structural (page-name) use on pg; de-escalation then proceeds.
func (l *LLM) WaitPageQuiesced(pg page.ID) error {
	deadline := time.Now().Add(l.timeout)
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.stopped {
			return ErrStopped
		}
		if len(l.use[PageName(pg)]) == 0 {
			return nil
		}
		if err := l.wait(deadline); err != nil {
			return err
		}
	}
}

// AccessedObjects returns the objects on pg that local transactions
// accessed (active or committed, per inter-transaction caching) with
// their strongest modes: the object locks to obtain when de-escalating
// the page lock (§3.2).
func (l *LLM) AccessedObjects(pg page.ID) []ObjLock {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []ObjLock
	for n, m := range l.accessed {
		if n.Page != pg || m == None {
			continue
		}
		out = append(out, ObjLock{Slot: n.Slot, Mode: m})
	}
	return out
}

// DropCached removes a cached lock (callback in exclusive mode).
func (l *LLM) DropCached(name Name) {
	l.mu.Lock()
	delete(l.cached, name)
	if name.IsPage {
		// Access history under the page lock dies with it unless object
		// locks were installed by de-escalation first.
		for n := range l.accessed {
			if n.Page == name.Page {
				if _, held := l.cached[n]; !held {
					delete(l.accessed, n)
				}
			}
		}
	} else {
		delete(l.accessed, name)
	}
	l.notifyAll()
	l.mu.Unlock()
}

// DowngradeCached demotes a cached exclusive lock to shared (callback in
// shared mode).
func (l *LLM) DowngradeCached(name Name) {
	l.mu.Lock()
	if l.cached[name] == X {
		l.cached[name] = S
	}
	if !name.IsPage && l.accessed[name] == X {
		l.accessed[name] = S
	}
	l.notifyAll()
	l.mu.Unlock()
}

// Deescalate replaces the cached page lock with the given object locks.
func (l *LLM) Deescalate(pg page.ID, objs []ObjLock) {
	l.mu.Lock()
	delete(l.cached, PageName(pg))
	for _, ol := range objs {
		n := Name{Page: pg, Slot: ol.Slot}
		l.cached[n] = Max(l.cached[n], ol.Mode)
	}
	l.notifyAll()
	l.mu.Unlock()
}

// CachedObjLocks returns the object locks the cache holds on the page
// (used by de-escalation replies so the GLM never drops a page lock
// without installing the object locks that replace it, even when the
// callback is stale or repeated).
func (l *LLM) CachedObjLocks(pg page.ID) []ObjLock {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []ObjLock
	for n, m := range l.cached {
		if !n.IsPage && n.Page == pg && m != None {
			out = append(out, ObjLock{Slot: n.Slot, Mode: m})
		}
	}
	return out
}

// HoldsAnyOnPage reports whether the cache holds the page lock or any
// object lock on pg; the client drops a page from its buffer only when
// this is false (§3.2 object-level conflict handling).
func (l *LLM) HoldsAnyOnPage(pg page.ID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.cached[PageName(pg)]; ok {
		return true
	}
	for n := range l.cached {
		if !n.IsPage && n.Page == pg {
			return true
		}
	}
	return false
}

// Clear wipes all state (client crash loses lock tables).
func (l *LLM) Clear() {
	l.mu.Lock()
	l.cached = make(map[Name]Mode)
	l.use = make(map[Name]map[ident.TxnID]Mode)
	l.accessed = make(map[Name]Mode)
	l.fences = make(map[Name]Mode)
	l.waitsLocal = make(map[ident.TxnID]map[ident.TxnID]bool)
	l.notifyAll()
	l.mu.Unlock()
}

// Stop aborts all blocked operations.
func (l *LLM) Stop() {
	l.mu.Lock()
	l.stopped = true
	l.notifyAll()
	l.mu.Unlock()
}
