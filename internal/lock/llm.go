package lock

import (
	"sync"
	"sync/atomic"
	"time"

	"clientlog/internal/ident"
	"clientlog/internal/page"
)

// LocalResult is the outcome of an LLM acquisition attempt.
type LocalResult int

const (
	// Granted means the lock was granted from the client's cache.
	Granted LocalResult = iota
	// NeedGlobal means the cache does not cover the request; the client
	// must ask the server's GLM and then InstallCached the grant.
	NeedGlobal
)

// DefaultLLMShards is the shard count NewLLM uses.  A client touches
// far fewer pages than the server, so fewer shards suffice.
const DefaultLLMShards = 8

// llmShard is one independently mutexed slice of a client's lock
// tables: the cached locks, transaction uses, access history and
// callback fences for the pages hashing to it, plus the retry-wakeup
// channels of blocked local acquisitions on those pages.
type llmShard struct {
	mu sync.Mutex
	// cached are the client-level locks granted by the GLM.
	cached map[Name]Mode
	// use records active transactions' lock usage.  Object accesses are
	// recorded under the object name even when covered by a cached page
	// lock; structural page operations are recorded under the page name.
	use map[Name]map[ident.TxnID]Mode
	// accessed remembers, per object, the strongest mode any local
	// transaction ever used it with while the client held covering
	// locks; de-escalation retains object locks for these (the paper's
	// "list of the objects accessed by local transactions", which spans
	// committed transactions under inter-transaction caching).
	accessed map[Name]Mode
	// fences mark names with a pending callback: new conflicting local
	// acquisitions wait until the callback completes.
	fences map[Name]Mode

	waiters []chan struct{}
}

// LLM is a client's local lock manager.  It caches the locks the GLM
// granted to this client across transaction boundaries
// (inter-transaction lock caching) and grants them to local transactions
// under strict two-phase locking.  It also keeps, per page, the list of
// objects accessed by local transactions, which drives de-escalation
// (§3.2).
//
// The tables are sharded by page ID, mirroring the GLM: every conflict
// and coverage rule relates a name only to names on the same page, so
// the hot path touches exactly one shard mutex.  The transaction-level
// waits-for graph spans pages and lives under the graphMu leaf (taken
// while holding one shard mutex, never the reverse).
type LLM struct {
	shards  []llmShard
	stopped atomic.Bool

	// graphMu guards waitsLocal, the transaction-level waits-for graph
	// for local deadlock detection.
	graphMu    sync.Mutex
	waitsLocal map[ident.TxnID]map[ident.TxnID]bool

	timeout time.Duration
}

// NewLLM returns an empty local lock manager whose blocking operations
// give up after timeout (0 means a generous default), with the default
// shard count.
func NewLLM(timeout time.Duration) *LLM {
	return NewLLMSharded(timeout, DefaultLLMShards)
}

// NewLLMSharded is NewLLM with an explicit shard count (1 reproduces
// the old single-mutex behavior; the E12 big-lock baseline uses it).
func NewLLMSharded(timeout time.Duration, shards int) *LLM {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	if shards <= 0 {
		shards = DefaultLLMShards
	}
	l := &LLM{
		shards:     make([]llmShard, shards),
		waitsLocal: make(map[ident.TxnID]map[ident.TxnID]bool),
		timeout:    timeout,
	}
	for i := range l.shards {
		sh := &l.shards[i]
		sh.cached = make(map[Name]Mode)
		sh.use = make(map[Name]map[ident.TxnID]Mode)
		sh.accessed = make(map[Name]Mode)
		sh.fences = make(map[Name]Mode)
	}
	return l
}

// shard maps a page to its shard.
func (l *LLM) shard(p page.ID) *llmShard {
	return &l.shards[int(uint64(p)%uint64(len(l.shards)))]
}

// notifyAll wakes blocked acquisitions on this shard.  Called with
// sh.mu held.
func (sh *llmShard) notifyAll() {
	for _, ch := range sh.waiters {
		close(ch)
	}
	sh.waiters = nil
}

// wait sleeps until the shard's tables change or the deadline passes.
// Called with sh.mu held; returns with sh.mu held.
func (sh *llmShard) wait(deadline time.Time) error {
	ch := make(chan struct{})
	sh.waiters = append(sh.waiters, ch)
	sh.mu.Unlock()
	timer := time.NewTimer(time.Until(deadline))
	select {
	case <-ch:
		timer.Stop()
		sh.mu.Lock()
		return nil
	case <-timer.C:
		sh.mu.Lock()
		return ErrTimeout
	}
}

// fenceBlocks reports whether a pending callback on name forbids a new
// local acquisition with the given mode.  A fence in X takes the lock
// away entirely; a fence in S leaves shared access.
func fenceBlocks(fence Mode, mode Mode) bool {
	if fence == X {
		return true
	}
	return mode == X // fence == S keeps S available
}

// AcquireLocal grants name@mode to transaction t from the cache, blocks
// while other local transactions or pending callbacks conflict, or
// reports NeedGlobal when the server must be consulted.
func (l *LLM) AcquireLocal(t ident.TxnID, name Name, mode Mode) (LocalResult, error) {
	deadline := time.Now().Add(l.timeout)
	sh := l.shard(name.Page)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for {
		if l.stopped.Load() {
			return 0, ErrStopped
		}
		// Reentrant: the transaction already holds a sufficient use.
		if Covers(sh.use[name][t], mode) {
			return Granted, nil
		}
		// Pending callbacks fence new conflicting acquisitions so the
		// callback cannot be starved.  A transaction that already uses
		// the name (or the covering page) bypasses the fence: the
		// callback must wait for that transaction's end regardless, so
		// letting it upgrade cannot extend the wait — while blocking it
		// would deadlock the callback against its own holder.
		ownUse := sh.use[name][t] != None
		if !name.IsPage && sh.use[PageName(name.Page)][t] != None {
			ownUse = true
		}
		if !ownUse {
			if f, ok := sh.fences[name]; ok && fenceBlocks(f, mode) {
				if err := sh.wait(deadline); err != nil {
					return 0, err
				}
				continue
			}
			if !name.IsPage {
				if f, ok := sh.fences[PageName(name.Page)]; ok && fenceBlocks(f, mode) {
					if err := sh.wait(deadline); err != nil {
						return 0, err
					}
					continue
				}
			}
		}
		// Conflicts with other local transactions (strict 2PL).
		blockers := sh.localConflicts(t, name, mode)
		if len(blockers) > 0 {
			if l.setWaitLocalAndCheck(t, blockers) {
				return 0, ErrDeadlock
			}
			err := sh.wait(deadline)
			l.clearWaitLocal(t)
			if err != nil {
				return 0, err
			}
			continue
		}
		// Cache coverage.
		if sh.cacheCovers(name, mode) {
			sh.recordUse(t, name, mode)
			return Granted, nil
		}
		return NeedGlobal, nil
	}
}

// setWaitLocalAndCheck records t's blockers in the cross-shard
// waits-for graph and runs cycle detection; on a cycle the edges are
// removed again and true returned.  graphMu is a leaf under the shard
// mutex, so cycles spanning pages in different shards are still caught.
func (l *LLM) setWaitLocalAndCheck(t ident.TxnID, blockers map[ident.TxnID]bool) bool {
	l.graphMu.Lock()
	defer l.graphMu.Unlock()
	l.waitsLocal[t] = blockers
	if l.localCycleLocked(t) {
		delete(l.waitsLocal, t)
		return true
	}
	return false
}

func (l *LLM) clearWaitLocal(t ident.TxnID) {
	l.graphMu.Lock()
	delete(l.waitsLocal, t)
	l.graphMu.Unlock()
}

// recordUse registers a transaction's use of a lock that was just
// installed from a GLM grant (the caller re-ran AcquireLocal, so the
// use may already exist; recordUse is idempotent).  Called with sh.mu
// held.
func (sh *llmShard) recordUse(t ident.TxnID, name Name, mode Mode) {
	owners := sh.use[name]
	if owners == nil {
		owners = make(map[ident.TxnID]Mode)
		sh.use[name] = owners
	}
	owners[t] = Max(owners[t], mode)
	if !name.IsPage {
		sh.accessed[name] = Max(sh.accessed[name], mode)
	}
}

// localConflicts returns the transactions blocking t's request.  All
// conflicting uses are on the request's page, hence in this shard.
// Called with sh.mu held.
func (sh *llmShard) localConflicts(t ident.TxnID, name Name, mode Mode) map[ident.TxnID]bool {
	blockers := make(map[ident.TxnID]bool)
	scan := func(n Name) {
		for o, m := range sh.use[n] {
			if o != t && !Compatible(m, mode) {
				blockers[o] = true
			}
		}
	}
	scan(name)
	if name.IsPage {
		// A page request conflicts with other transactions' object uses
		// on the page.
		for n, owners := range sh.use {
			if n.IsPage || n.Page != name.Page {
				continue
			}
			for o, m := range owners {
				if o != t && !Compatible(m, mode) {
					blockers[o] = true
				}
			}
		}
	} else {
		// An object request conflicts with other transactions' page-level
		// uses (structural operations in progress).
		scan(PageName(name.Page))
	}
	if len(blockers) == 0 {
		return nil
	}
	return blockers
}

// localCycleLocked walks the transaction waits-for graph from t.
// Called with graphMu held.
func (l *LLM) localCycleLocked(t ident.TxnID) bool {
	seen := make(map[ident.TxnID]bool)
	var dfs func(n ident.TxnID) bool
	dfs = func(n ident.TxnID) bool {
		for b := range l.waitsLocal[n] {
			if b == t {
				return true
			}
			if !seen[b] {
				seen[b] = true
				if dfs(b) {
					return true
				}
			}
		}
		return false
	}
	return dfs(t)
}

// cacheCovers reports whether the cached locks cover name@mode.  Called
// with sh.mu held.
func (sh *llmShard) cacheCovers(name Name, mode Mode) bool {
	if Covers(sh.cached[name], mode) {
		return true
	}
	if !name.IsPage && Covers(sh.cached[PageName(name.Page)], mode) {
		return true
	}
	return false
}

// CachesAny reports whether the client caches any lock on the name (or
// the page covering it); such a request is an upgrade.
func (l *LLM) CachesAny(name Name) bool {
	sh := l.shard(name.Page)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.cached[name] != None {
		return true
	}
	return !name.IsPage && sh.cached[PageName(name.Page)] != None
}

// CacheCovers reports whether the cached locks cover name@mode.
func (l *LLM) CacheCovers(name Name, mode Mode) bool {
	sh := l.shard(name.Page)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.cacheCovers(name, mode)
}

// InstallCached records a lock granted by the GLM.
func (l *LLM) InstallCached(name Name, mode Mode) {
	sh := l.shard(name.Page)
	sh.mu.Lock()
	sh.cached[name] = Max(sh.cached[name], mode)
	sh.notifyAll()
	sh.mu.Unlock()
}

// CachedMode returns the cached mode for name (None if absent).
func (l *LLM) CachedMode(name Name) Mode {
	sh := l.shard(name.Page)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.cached[name]
}

// ReleaseTxn drops every use of a terminated transaction; cached locks
// are retained per inter-transaction caching.  Shards are visited in
// ascending order, one mutex at a time.
func (l *LLM) ReleaseTxn(t ident.TxnID) {
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		for n, owners := range sh.use {
			if _, ok := owners[t]; ok {
				delete(owners, t)
				if len(owners) == 0 {
					delete(sh.use, n)
				}
			}
		}
		sh.notifyAll()
		sh.mu.Unlock()
	}
	l.clearWaitLocal(t)
}

// TxnUses returns the names t currently uses with their modes.
func (l *LLM) TxnUses(t ident.TxnID) []Holding {
	var out []Holding
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		for n, owners := range sh.use {
			if m, ok := owners[t]; ok {
				out = append(out, Holding{Name: n, Mode: m})
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// UseMode returns the mode transaction t holds on name (None if none).
func (l *LLM) UseMode(t ident.TxnID, name Name) Mode {
	sh := l.shard(name.Page)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.use[name][t]
}

// CachedLocks snapshots the client-level cached locks; server restart
// recovery collects them to rebuild the GLM tables (§3.4).
func (l *LLM) CachedLocks() []Holding {
	var out []Holding
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		for n, m := range sh.cached {
			out = append(out, Holding{Name: n, Mode: m})
		}
		sh.mu.Unlock()
	}
	return out
}

// SetFence marks a pending callback on name so that new conflicting
// local acquisitions wait for its completion.
func (l *LLM) SetFence(name Name, wanted Mode) {
	sh := l.shard(name.Page)
	sh.mu.Lock()
	sh.fences[name] = Max(sh.fences[name], wanted)
	sh.mu.Unlock()
}

// ClearFence removes the fence and wakes blocked acquisitions.
func (l *LLM) ClearFence(name Name) {
	sh := l.shard(name.Page)
	sh.mu.Lock()
	delete(sh.fences, name)
	sh.notifyAll()
	sh.mu.Unlock()
}

// WaitObjectFree blocks until no active transaction holds a use on obj
// (or, for wanted==S, no exclusive use) and no structural page use
// covers it; the callback handler then mutates the cache.
func (l *LLM) WaitObjectFree(obj Name, wanted Mode) error {
	deadline := time.Now().Add(l.timeout)
	sh := l.shard(obj.Page)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for {
		if l.stopped.Load() {
			return ErrStopped
		}
		if sh.objectFree(obj, wanted) {
			return nil
		}
		if err := sh.wait(deadline); err != nil {
			return err
		}
	}
}

// objectFree is WaitObjectFree's predicate.  Called with sh.mu held.
func (sh *llmShard) objectFree(obj Name, wanted Mode) bool {
	check := func(n Name) bool {
		for _, m := range sh.use[n] {
			if !Compatible(m, wanted) {
				return false
			}
		}
		return true
	}
	return check(obj) && check(PageName(obj.Page))
}

// WaitPageQuiesced blocks until no active transaction holds a
// structural (page-name) use on pg; de-escalation then proceeds.
func (l *LLM) WaitPageQuiesced(pg page.ID) error {
	deadline := time.Now().Add(l.timeout)
	sh := l.shard(pg)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for {
		if l.stopped.Load() {
			return ErrStopped
		}
		if len(sh.use[PageName(pg)]) == 0 {
			return nil
		}
		if err := sh.wait(deadline); err != nil {
			return err
		}
	}
}

// AccessedObjects returns the objects on pg that local transactions
// accessed (active or committed, per inter-transaction caching) with
// their strongest modes: the object locks to obtain when de-escalating
// the page lock (§3.2).
func (l *LLM) AccessedObjects(pg page.ID) []ObjLock {
	sh := l.shard(pg)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var out []ObjLock
	for n, m := range sh.accessed {
		if n.Page != pg || m == None {
			continue
		}
		out = append(out, ObjLock{Slot: n.Slot, Mode: m})
	}
	return out
}

// DropCached removes a cached lock (callback in exclusive mode).
func (l *LLM) DropCached(name Name) {
	sh := l.shard(name.Page)
	sh.mu.Lock()
	delete(sh.cached, name)
	if name.IsPage {
		// Access history under the page lock dies with it unless object
		// locks were installed by de-escalation first.
		for n := range sh.accessed {
			if n.Page == name.Page {
				if _, held := sh.cached[n]; !held {
					delete(sh.accessed, n)
				}
			}
		}
	} else {
		delete(sh.accessed, name)
	}
	sh.notifyAll()
	sh.mu.Unlock()
}

// DowngradeCached demotes a cached exclusive lock to shared (callback in
// shared mode).
func (l *LLM) DowngradeCached(name Name) {
	sh := l.shard(name.Page)
	sh.mu.Lock()
	if sh.cached[name] == X {
		sh.cached[name] = S
	}
	if !name.IsPage && sh.accessed[name] == X {
		sh.accessed[name] = S
	}
	sh.notifyAll()
	sh.mu.Unlock()
}

// Deescalate replaces the cached page lock with the given object locks.
func (l *LLM) Deescalate(pg page.ID, objs []ObjLock) {
	sh := l.shard(pg)
	sh.mu.Lock()
	delete(sh.cached, PageName(pg))
	for _, ol := range objs {
		n := Name{Page: pg, Slot: ol.Slot}
		sh.cached[n] = Max(sh.cached[n], ol.Mode)
	}
	sh.notifyAll()
	sh.mu.Unlock()
}

// CachedObjLocks returns the object locks the cache holds on the page
// (used by de-escalation replies so the GLM never drops a page lock
// without installing the object locks that replace it, even when the
// callback is stale or repeated).
func (l *LLM) CachedObjLocks(pg page.ID) []ObjLock {
	sh := l.shard(pg)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var out []ObjLock
	for n, m := range sh.cached {
		if !n.IsPage && n.Page == pg && m != None {
			out = append(out, ObjLock{Slot: n.Slot, Mode: m})
		}
	}
	return out
}

// HoldsAnyOnPage reports whether the cache holds the page lock or any
// object lock on pg; the client drops a page from its buffer only when
// this is false (§3.2 object-level conflict handling).
func (l *LLM) HoldsAnyOnPage(pg page.ID) bool {
	sh := l.shard(pg)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.cached[PageName(pg)]; ok {
		return true
	}
	for n := range sh.cached {
		if !n.IsPage && n.Page == pg {
			return true
		}
	}
	return false
}

// Clear wipes all state (client crash loses lock tables).
func (l *LLM) Clear() {
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		sh.cached = make(map[Name]Mode)
		sh.use = make(map[Name]map[ident.TxnID]Mode)
		sh.accessed = make(map[Name]Mode)
		sh.fences = make(map[Name]Mode)
		sh.notifyAll()
		sh.mu.Unlock()
	}
	l.graphMu.Lock()
	l.waitsLocal = make(map[ident.TxnID]map[ident.TxnID]bool)
	l.graphMu.Unlock()
}

// Stop aborts all blocked operations.
func (l *LLM) Stop() {
	l.stopped.Store(true)
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		sh.notifyAll()
		sh.mu.Unlock()
	}
}
