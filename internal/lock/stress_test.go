package lock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clientlog/internal/ident"
	"clientlog/internal/page"
)

// TestGLMConcurrentStress hammers the GLM from many client goroutines
// with a cooperative callbacker and verifies that (a) nothing deadlocks
// permanently, (b) the final table holds no incompatible grants.
func TestGLMConcurrentStress(t *testing.T) {
	g := NewGLM(nil, 2*time.Second)
	rc := &recordingCallbacker{}
	rc.react = func(cb callback) {
		// Cooperative holder: yield after a tiny delay.
		time.Sleep(time.Millisecond)
		if cb.isDeesc {
			g.Deescalate(cb.holder, cb.pg, nil)
		} else if cb.wanted == S {
			g.Downgrade(cb.holder, cb.obj)
		} else {
			g.Release(cb.holder, cb.obj)
		}
	}
	g.SetCallbacker(rc)

	const clients = 8
	var grants, denials atomic.Uint64
	var wg sync.WaitGroup
	for c := 1; c <= clients; c++ {
		wg.Add(1)
		go func(c ident.ClientID) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				name := obj(page.ID(1+i%3), uint16(i%4))
				mode := S
				if i%3 == 0 {
					mode = X
				}
				if _, err := g.Acquire(Request{Client: c, Name: name, Mode: mode}); err != nil {
					denials.Add(1)
					continue
				}
				grants.Add(1)
				if i%5 == 0 {
					g.Release(c, name)
				}
			}
		}(ident.ClientID(c))
	}
	wg.Wait()
	if grants.Load() == 0 {
		t.Fatal("no grants at all")
	}
	// Invariant: no incompatible grants coexist.
	g.forEachPageLocked(func(pid page.ID, pl *pageLocks) {
		for c1, m1 := range pl.page {
			for c2, m2 := range pl.page {
				if c1 != c2 && !Compatible(m1, m2) {
					t.Errorf("page %d: incompatible page locks %v/%v", pid, m1, m2)
				}
			}
		}
		for slot, owners := range pl.objs {
			for c1, m1 := range owners {
				for c2, m2 := range owners {
					if c1 != c2 && !Compatible(m1, m2) {
						t.Errorf("obj %d.%d: incompatible locks", pid, slot)
					}
				}
				for c2, m2 := range pl.page {
					if c1 != c2 && !Compatible(m1, m2) {
						t.Errorf("obj %d.%d vs page lock: incompatible", pid, slot)
					}
				}
			}
		}
	})
	t.Logf("grants=%d denials=%d", grants.Load(), denials.Load())
}

// TestLLMConcurrentStress runs transactions and callbacks against one
// LLM concurrently.
func TestLLMConcurrentStress(t *testing.T) {
	l := NewLLM(2 * time.Second)
	for p := page.ID(1); p <= 2; p++ {
		for s := uint16(0); s < 4; s++ {
			l.InstallCached(Name{Page: p, Slot: s}, X)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 80; i++ {
				txn := ident.MakeTxnID(1, uint32(w*1000+i))
				name := Name{Page: page.ID(1 + i%2), Slot: uint16((w + i) % 4)}
				if res, err := l.AcquireLocal(txn, name, S); err == nil && res == Granted {
					l.ReleaseTxn(txn)
				}
			}
		}(w)
	}
	// Concurrent callbacks taking locks away and reinstalling them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			name := Name{Page: 1, Slot: uint16(i % 4)}
			l.SetFence(name, X)
			if err := l.WaitObjectFree(name, X); err == nil {
				l.DropCached(name)
			}
			l.ClearFence(name)
			l.InstallCached(name, X)
		}
	}()
	wg.Wait()
}
