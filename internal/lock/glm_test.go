package lock

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"clientlog/internal/ident"
	"clientlog/internal/page"
)

// recordingCallbacker records callbacks; optionally it reacts to them
// like a cooperative client would.
type recordingCallbacker struct {
	mu     sync.Mutex
	objCBs []callback
	deescs []callback
	react  func(cb callback)
}

func (r *recordingCallbacker) CallbackObject(holder, requester ident.ClientID, obj Name, wanted Mode) {
	cb := callback{holder: holder, obj: obj, wanted: wanted}
	r.mu.Lock()
	r.objCBs = append(r.objCBs, cb)
	react := r.react
	r.mu.Unlock()
	if react != nil {
		go react(cb)
	}
}

func (r *recordingCallbacker) DeescalatePage(holder, requester ident.ClientID, pg page.ID, wanted Mode) {
	cb := callback{holder: holder, pg: pg, isDeesc: true, wanted: wanted}
	r.mu.Lock()
	r.deescs = append(r.deescs, cb)
	react := r.react
	r.mu.Unlock()
	if react != nil {
		go react(cb)
	}
}

func (r *recordingCallbacker) counts() (obj, deesc int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.objCBs), len(r.deescs)
}

const (
	cA ident.ClientID = 1
	cB ident.ClientID = 2
	cC ident.ClientID = 3
)

func obj(p page.ID, s uint16) Name { return Name{Page: p, Slot: s} }

func TestCompatibilityMatrix(t *testing.T) {
	if !Compatible(S, S) {
		t.Fatal("S/S must be compatible")
	}
	for _, pair := range [][2]Mode{{S, X}, {X, S}, {X, X}} {
		if Compatible(pair[0], pair[1]) {
			t.Fatalf("%v/%v must conflict", pair[0], pair[1])
		}
	}
	if !Covers(X, S) || !Covers(S, S) || Covers(S, X) || Covers(None, S) {
		t.Fatal("Covers is wrong")
	}
}

func TestAdaptiveGrantPageWhenAlone(t *testing.T) {
	g := NewGLM(&recordingCallbacker{}, time.Second)
	gr, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: X, PreferPage: true})
	if err != nil {
		t.Fatal(err)
	}
	if !gr.Name.IsPage || gr.Mode != X {
		t.Fatalf("grant = %+v, want page X", gr)
	}
	if !gr.FirstX {
		t.Fatal("first exclusive grant must report FirstX")
	}
	// A second X request by the same client on the same page is covered.
	gr2, err := g.Acquire(Request{Client: cA, Name: obj(1, 1), Mode: X, PreferPage: true})
	if err != nil {
		t.Fatal(err)
	}
	if gr2.FirstX {
		t.Fatal("covered request must not report FirstX")
	}
}

func TestAdaptiveFallsBackToObjectWhenShared(t *testing.T) {
	g := NewGLM(&recordingCallbacker{}, time.Second)
	if _, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: S}); err != nil {
		t.Fatal(err)
	}
	// B asks for a different object on the same page: page-level grant is
	// impossible (A holds interest), so B gets the object lock.
	gr, err := g.Acquire(Request{Client: cB, Name: obj(1, 1), Mode: X, PreferPage: true})
	if err != nil {
		t.Fatal(err)
	}
	if gr.Name.IsPage {
		t.Fatalf("grant = %+v, want object-level", gr)
	}
	if !gr.FirstX {
		t.Fatal("B's first X on the page must report FirstX")
	}
}

func TestSharedObjectLocksCoexist(t *testing.T) {
	g := NewGLM(&recordingCallbacker{}, time.Second)
	for _, c := range []ident.ClientID{cA, cB, cC} {
		if _, err := g.Acquire(Request{Client: c, Name: obj(1, 0), Mode: S}); err != nil {
			t.Fatalf("client %v: %v", c, err)
		}
	}
	if o, d := (&recordingCallbacker{}).counts(); o != 0 || d != 0 {
		t.Fatal("no callbacks expected")
	}
}

func TestCallbackOnObjectConflict(t *testing.T) {
	rc := &recordingCallbacker{}
	g := NewGLM(nil, 2*time.Second)
	// Cooperative holder: downgrade on S callback, release on X callback.
	rc.react = func(cb callback) {
		if cb.wanted == S {
			g.Downgrade(cb.holder, cb.obj)
		} else {
			g.Release(cb.holder, cb.obj)
		}
	}
	g.SetCallbacker(rc)
	if _, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: X}); err != nil {
		t.Fatal(err)
	}
	// B requests S: A must be called back to downgrade.
	if _, err := g.Acquire(Request{Client: cB, Name: obj(1, 0), Mode: S}); err != nil {
		t.Fatal(err)
	}
	nObj, _ := rc.counts()
	if nObj == 0 {
		t.Fatal("no object callback issued")
	}
	// Now both hold S; C requests X: both are called back to release.
	if _, err := g.Acquire(Request{Client: cC, Name: obj(1, 0), Mode: X}); err != nil {
		t.Fatal(err)
	}
}

func TestDeescalationOnPageConflict(t *testing.T) {
	rc := &recordingCallbacker{}
	g := NewGLM(nil, 2*time.Second)
	rc.react = func(cb callback) {
		if cb.isDeesc {
			// Holder keeps object 0 in X (its transaction accessed it).
			g.Deescalate(cb.holder, cb.pg, []ObjLock{{Slot: 0, Mode: X}})
		} else if cb.wanted == X {
			g.Release(cb.holder, cb.obj)
		} else {
			g.Downgrade(cb.holder, cb.obj)
		}
	}
	g.SetCallbacker(rc)
	// A gets an adaptive page X lock.
	gr, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: X, PreferPage: true})
	if err != nil || !gr.Name.IsPage {
		t.Fatalf("setup grant: %+v err=%v", gr, err)
	}
	// B wants a different object: A de-escalates, B proceeds.
	gr2, err := g.Acquire(Request{Client: cB, Name: obj(1, 1), Mode: X})
	if err != nil {
		t.Fatal(err)
	}
	if gr2.Name.IsPage {
		t.Fatalf("B's grant should be object-level: %+v", gr2)
	}
	_, nDeesc := rc.counts()
	if nDeesc == 0 {
		t.Fatal("no de-escalation callback issued")
	}
	// A's retained object X on slot 0 must still block C there.
	if _, err := g.Acquire(Request{Client: cC, Name: obj(1, 0), Mode: X}); err != nil {
		t.Fatal(err) // react releases it
	}
}

func TestDeadlockDetection(t *testing.T) {
	g := NewGLM(&recordingCallbacker{}, 5*time.Second) // no reaction: holders never yield
	if _, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: X}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(Request{Client: cB, Name: obj(2, 0), Mode: X}); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() {
		_, err := g.Acquire(Request{Client: cA, Name: obj(2, 0), Mode: X})
		errs <- err
	}()
	go func() {
		_, err := g.Acquire(Request{Client: cB, Name: obj(1, 0), Mode: X})
		errs <- err
	}()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("got %v, want ErrDeadlock", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("deadlock not detected")
	}
}

func TestWaitTimeout(t *testing.T) {
	g := NewGLM(&recordingCallbacker{}, 50*time.Millisecond)
	if _, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: X}); err != nil {
		t.Fatal(err)
	}
	_, err := g.Acquire(Request{Client: cB, Name: obj(1, 0), Mode: X})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
}

func TestClientCrashReleasesSharedKeepsExclusive(t *testing.T) {
	rc := &recordingCallbacker{}
	g := NewGLM(rc, 100*time.Millisecond)
	if _, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: S}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(Request{Client: cA, Name: obj(1, 1), Mode: X}); err != nil {
		t.Fatal(err)
	}
	g.ClientCrashed(cA)
	// The shared lock is gone: B can take slot 0 in X immediately.
	if _, err := g.Acquire(Request{Client: cB, Name: obj(1, 0), Mode: X}); err != nil {
		t.Fatal(err)
	}
	// The exclusive lock is retained and callbacks are queued, so B's
	// request for slot 1 times out without any callback being sent.
	if _, err := g.Acquire(Request{Client: cB, Name: obj(1, 1), Mode: X}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if nObj, _ := rc.counts(); nObj != 0 {
		t.Fatalf("%d callbacks sent to crashed client", nObj)
	}
	// After recovery the queued conflict resolves once the lock is
	// released (recovery finished, transaction rolled back).
	g.ClientRecovered(cA)
	g.Release(cA, obj(1, 1))
	if _, err := g.Acquire(Request{Client: cB, Name: obj(1, 1), Mode: X}); err != nil {
		t.Fatal(err)
	}
}

func TestHeldByAndInstall(t *testing.T) {
	g := NewGLM(&recordingCallbacker{}, time.Second)
	if _, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: X}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(Request{Client: cA, Name: PageName(2), Mode: S}); err != nil {
		t.Fatal(err)
	}
	held := g.HeldBy(cA)
	if len(held) != 2 {
		t.Fatalf("HeldBy = %v", held)
	}
	// Rebuild a fresh GLM from the snapshot (server restart, §3.4).
	g2 := NewGLM(&recordingCallbacker{}, 50*time.Millisecond)
	for _, h := range held {
		g2.Install(cA, h.Name, h.Mode)
	}
	if _, err := g2.Acquire(Request{Client: cB, Name: obj(1, 0), Mode: S}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("installed X lock not enforced: %v", err)
	}
}

func TestUpgradeSharedToExclusive(t *testing.T) {
	rc := &recordingCallbacker{}
	g := NewGLM(nil, 2*time.Second)
	rc.react = func(cb callback) { g.Release(cb.holder, cb.obj) }
	g.SetCallbacker(rc)
	if _, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: S}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(Request{Client: cB, Name: obj(1, 0), Mode: S}); err != nil {
		t.Fatal(err)
	}
	// A upgrades: B gets called back and releases; A must not deadlock on
	// its own shared lock.
	gr, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: X})
	if err != nil {
		t.Fatal(err)
	}
	if !gr.FirstX {
		t.Fatal("upgrade is A's first X on the page")
	}
}

func TestStopAbortsWaiters(t *testing.T) {
	g := NewGLM(&recordingCallbacker{}, 5*time.Second)
	if _, err := g.Acquire(Request{Client: cA, Name: obj(1, 0), Mode: X}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := g.Acquire(Request{Client: cB, Name: obj(1, 0), Mode: X})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	g.Stop()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("got %v, want ErrStopped", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not released by Stop")
	}
}

func TestPropGrantsNeverConflict(t *testing.T) {
	// Whatever the interleaving of acquires/releases, the GLM table must
	// never hold incompatible grants from different clients on the same
	// resource.
	f := func(ops []uint8) bool {
		rc := &recordingCallbacker{}
		g := NewGLM(nil, 10*time.Millisecond)
		rc.react = func(cb callback) {
			if cb.isDeesc {
				g.Deescalate(cb.holder, cb.pg, nil)
			} else if cb.wanted == S {
				g.Downgrade(cb.holder, cb.obj)
			} else {
				g.Release(cb.holder, cb.obj)
			}
		}
		g.SetCallbacker(rc)
		for _, op := range ops {
			c := ident.ClientID(1 + op%3)
			name := obj(page.ID(1+(op>>2)%2), uint16((op>>4)%2))
			mode := S
			if op%2 == 1 {
				mode = X
			}
			if op%7 == 0 {
				g.Release(c, name)
				continue
			}
			g.Acquire(Request{Client: c, Name: name, Mode: mode}) // errors fine
		}
		// Validate the invariant over the final table.
		ok := true
		g.forEachPageLocked(func(_ page.ID, pl *pageLocks) {
			var pageHolders []Mode
			for _, m := range pl.page {
				pageHolders = append(pageHolders, m)
			}
			for i := 0; i < len(pageHolders); i++ {
				for j := i + 1; j < len(pageHolders); j++ {
					if !Compatible(pageHolders[i], pageHolders[j]) {
						ok = false
					}
				}
			}
			for _, owners := range pl.objs {
				var ms []Mode
				for _, m := range owners {
					ms = append(ms, m)
				}
				for i := 0; i < len(ms); i++ {
					for j := i + 1; j < len(ms); j++ {
						if !Compatible(ms[i], ms[j]) {
							ok = false
						}
					}
				}
				// Cross-level: page locks vs other clients' object locks.
				for pc, pm := range pl.page {
					for oc, om := range owners {
						if pc != oc && !Compatible(pm, om) {
							ok = false
						}
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
