package lock

import (
	"errors"
	"testing"
	"time"

	"clientlog/internal/ident"
)

var (
	t1 = ident.MakeTxnID(1, 1)
	t2 = ident.MakeTxnID(1, 2)
)

func TestLLMCacheMissThenInstall(t *testing.T) {
	l := NewLLM(time.Second)
	res, err := l.AcquireLocal(t1, obj(1, 0), X)
	if err != nil || res != NeedGlobal {
		t.Fatalf("cold cache: res=%v err=%v", res, err)
	}
	l.InstallCached(obj(1, 0), X)
	res, err = l.AcquireLocal(t1, obj(1, 0), X)
	if err != nil || res != Granted {
		t.Fatalf("after install: res=%v err=%v", res, err)
	}
	if l.UseMode(t1, obj(1, 0)) != X {
		t.Fatal("use not recorded")
	}
}

func TestLLMPageLockCoversObjects(t *testing.T) {
	l := NewLLM(time.Second)
	l.InstallCached(PageName(1), X)
	for slot := uint16(0); slot < 3; slot++ {
		res, err := l.AcquireLocal(t1, obj(1, slot), X)
		if err != nil || res != Granted {
			t.Fatalf("slot %d: res=%v err=%v", slot, res, err)
		}
	}
	// Accessed objects feed de-escalation.
	objs := l.AccessedObjects(1)
	if len(objs) != 3 {
		t.Fatalf("AccessedObjects = %v", objs)
	}
	for _, ol := range objs {
		if ol.Mode != X {
			t.Fatalf("mode %v, want X", ol.Mode)
		}
	}
}

func TestLLMInterTxnCaching(t *testing.T) {
	l := NewLLM(time.Second)
	l.InstallCached(obj(1, 0), X)
	if res, _ := l.AcquireLocal(t1, obj(1, 0), X); res != Granted {
		t.Fatal("t1 not granted")
	}
	l.ReleaseTxn(t1)
	// The cached lock survives the transaction (inter-transaction
	// caching): t2 gets it locally without a server round trip.
	if res, _ := l.AcquireLocal(t2, obj(1, 0), X); res != Granted {
		t.Fatal("lock not retained across transactions")
	}
}

func TestLLMLocalConflictBlocksUntilRelease(t *testing.T) {
	l := NewLLM(2 * time.Second)
	l.InstallCached(obj(1, 0), X)
	if res, _ := l.AcquireLocal(t1, obj(1, 0), X); res != Granted {
		t.Fatal("setup")
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.AcquireLocal(t2, obj(1, 0), X)
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("t2 acquired a lock t1 holds")
	case <-time.After(30 * time.Millisecond):
	}
	l.ReleaseTxn(t1)
	if err := <-done; err != nil {
		t.Fatalf("t2 after release: %v", err)
	}
}

func TestLLMSharedReadersCoexistLocally(t *testing.T) {
	l := NewLLM(time.Second)
	l.InstallCached(obj(1, 0), S)
	if res, _ := l.AcquireLocal(t1, obj(1, 0), S); res != Granted {
		t.Fatal("t1")
	}
	if res, _ := l.AcquireLocal(t2, obj(1, 0), S); res != Granted {
		t.Fatal("t2")
	}
}

func TestLLMLocalDeadlock(t *testing.T) {
	l := NewLLM(5 * time.Second)
	l.InstallCached(obj(1, 0), X)
	l.InstallCached(obj(1, 1), X)
	if res, _ := l.AcquireLocal(t1, obj(1, 0), X); res != Granted {
		t.Fatal("setup t1")
	}
	if res, _ := l.AcquireLocal(t2, obj(1, 1), X); res != Granted {
		t.Fatal("setup t2")
	}
	errs := make(chan error, 2)
	go func() { _, err := l.AcquireLocal(t1, obj(1, 1), X); errs <- err }()
	go func() { _, err := l.AcquireLocal(t2, obj(1, 0), X); errs <- err }()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("got %v, want ErrDeadlock", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("local deadlock not detected")
	}
}

func TestLLMFenceBlocksNewAcquisitions(t *testing.T) {
	l := NewLLM(2 * time.Second)
	l.InstallCached(obj(1, 0), X)
	l.SetFence(obj(1, 0), X)
	done := make(chan struct{})
	go func() {
		// Blocks on the fence; once it clears, the cache was dropped, so
		// the request must go global.
		res, err := l.AcquireLocal(t1, obj(1, 0), X)
		if err != nil || res != NeedGlobal {
			t.Errorf("after fence: res=%v err=%v", res, err)
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("fence did not block")
	case <-time.After(30 * time.Millisecond):
	}
	l.DropCached(obj(1, 0))
	l.ClearFence(obj(1, 0))
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("acquisition stuck after fence cleared")
	}
}

func TestLLMFenceSharedKeepsReaders(t *testing.T) {
	l := NewLLM(time.Second)
	l.InstallCached(obj(1, 0), X)
	l.SetFence(obj(1, 0), S) // downgrade pending: shared access survives
	if res, err := l.AcquireLocal(t1, obj(1, 0), S); err != nil || res != Granted {
		t.Fatalf("S under S-fence: res=%v err=%v", res, err)
	}
}

func TestLLMWaitObjectFree(t *testing.T) {
	l := NewLLM(2 * time.Second)
	l.InstallCached(obj(1, 0), X)
	if res, _ := l.AcquireLocal(t1, obj(1, 0), X); res != Granted {
		t.Fatal("setup")
	}
	done := make(chan error, 1)
	go func() { done <- l.WaitObjectFree(obj(1, 0), X) }()
	select {
	case <-done:
		t.Fatal("object reported free while t1 uses it")
	case <-time.After(30 * time.Millisecond):
	}
	l.ReleaseTxn(t1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestLLMWaitObjectFreeSharedWanted(t *testing.T) {
	l := NewLLM(time.Second)
	l.InstallCached(obj(1, 0), S)
	if res, _ := l.AcquireLocal(t1, obj(1, 0), S); res != Granted {
		t.Fatal("setup")
	}
	// A downgrade callback (wanted S) is satisfiable while readers are
	// active.
	if err := l.WaitObjectFree(obj(1, 0), S); err != nil {
		t.Fatal(err)
	}
}

func TestLLMDeescalate(t *testing.T) {
	l := NewLLM(time.Second)
	l.InstallCached(PageName(1), X)
	if res, _ := l.AcquireLocal(t1, obj(1, 2), X); res != Granted {
		t.Fatal("setup")
	}
	l.ReleaseTxn(t1)
	if err := l.WaitPageQuiesced(1); err != nil {
		t.Fatal(err)
	}
	l.Deescalate(1, []ObjLock{{Slot: 2, Mode: X}})
	if l.CachedMode(PageName(1)) != None {
		t.Fatal("page lock survived de-escalation")
	}
	if l.CachedMode(obj(1, 2)) != X {
		t.Fatal("object lock not installed by de-escalation")
	}
	if !l.HoldsAnyOnPage(1) {
		t.Fatal("HoldsAnyOnPage")
	}
	l.DropCached(obj(1, 2))
	if l.HoldsAnyOnPage(1) {
		t.Fatal("HoldsAnyOnPage after drop")
	}
}

func TestLLMStructuralPageUseBlocksObjects(t *testing.T) {
	l := NewLLM(2 * time.Second)
	l.InstallCached(PageName(1), X)
	// t1 performs a structural operation: page-name use.
	if res, _ := l.AcquireLocal(t1, PageName(1), X); res != Granted {
		t.Fatal("setup")
	}
	done := make(chan error, 1)
	go func() { _, err := l.AcquireLocal(t2, obj(1, 0), S); done <- err }()
	select {
	case <-done:
		t.Fatal("object acquired during structural operation")
	case <-time.After(30 * time.Millisecond):
	}
	l.ReleaseTxn(t1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestLLMClearAndCachedLocks(t *testing.T) {
	l := NewLLM(time.Second)
	l.InstallCached(obj(1, 0), X)
	l.InstallCached(PageName(2), S)
	if got := len(l.CachedLocks()); got != 2 {
		t.Fatalf("CachedLocks = %d entries", got)
	}
	l.Clear()
	if got := len(l.CachedLocks()); got != 0 {
		t.Fatalf("after Clear: %d entries", got)
	}
}
