// Package lock implements the two-tier lock management of the paper:
// a server-side Global Lock Manager (GLM) that grants page- and
// object-level locks to clients, and a client-side Local Lock Manager
// (LLM) that caches those locks across transaction boundaries and grants
// them to local transactions under strict two-phase locking.
//
// Cache consistency follows the callback locking protocol: a conflicting
// request at the GLM triggers callback messages to the holding clients,
// which release or downgrade their cached locks as soon as no local
// transaction uses them.  Page-level conflicts are resolved by
// de-escalation (§3.2): the holder replaces its page lock with object
// locks for the objects its transactions accessed.  Lock granularity is
// adaptive per Carey-Franklin-Zaharioudakis: an object request is
// answered with a page lock when nobody else is interested in the page.
package lock

import (
	"fmt"

	"clientlog/internal/page"
)

// Mode is a lock mode.
type Mode uint8

const (
	// None is the absence of a lock.
	None Mode = iota
	// S is a shared (read) lock.
	S
	// X is an exclusive (write) lock.
	X
)

func (m Mode) String() string {
	switch m {
	case None:
		return "-"
	case S:
		return "S"
	case X:
		return "X"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Compatible reports whether two locks held by different owners may
// coexist.
func Compatible(a, b Mode) bool { return a == S && b == S }

// Covers reports whether holding mode a satisfies a request for mode b.
func Covers(a, b Mode) bool { return a >= b }

// Max returns the stronger of two modes.
func Max(a, b Mode) Mode {
	if a > b {
		return a
	}
	return b
}

// Name identifies a lockable resource: either a whole page or one
// object.  The page lock is the parent of all object locks on the page.
type Name struct {
	Page   page.ID
	Slot   uint16
	IsPage bool
}

// PageName returns the lock name of a whole page.
func PageName(p page.ID) Name { return Name{Page: p, IsPage: true} }

// ObjName returns the lock name of an object.
func ObjName(o page.ObjectID) Name { return Name{Page: o.Page, Slot: o.Slot} }

// Object returns the object a non-page name refers to.
func (n Name) Object() page.ObjectID { return page.ObjectID{Page: n.Page, Slot: n.Slot} }

func (n Name) String() string {
	if n.IsPage {
		return fmt.Sprintf("page(%d)", n.Page)
	}
	return fmt.Sprintf("obj(%d.%d)", n.Page, n.Slot)
}
