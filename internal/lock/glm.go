package lock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"clientlog/internal/ident"
	"clientlog/internal/obs"
	"clientlog/internal/page"
)

// GLMMetrics counts global-lock-manager events: grants split by the
// granted level, acquires that had to wait, deadlock and timeout
// aborts, page de-escalations applied, and the distribution of blocked
// wait times.
type GLMMetrics struct {
	Grants        obs.Counter // total grants
	PageGrants    obs.Counter // grants that came back page-level
	Waits         obs.Counter // acquires that blocked at least once
	Deadlocks     obs.Counter // ErrDeadlock aborts
	Timeouts      obs.Counter // ErrTimeout aborts
	Deescalations obs.Counter // page locks replaced by object locks
	WaitNanos     obs.Histogram
	// MutexWait accumulates nanoseconds callers spent blocked on the
	// shard mutexes themselves (internal contention, as opposed to
	// WaitNanos, which measures protocol-level lock waits).
	MutexWait obs.Counter
}

// RegisterObs binds the GLM's counters into reg as the lock_* families
// under the caller's tags.
func (g *GLM) RegisterObs(reg *obs.Registry, tags ...obs.Tag) {
	if reg == nil {
		return
	}
	reg.BindCounter(&g.Metrics.Grants, "lock_grants_total", tags...)
	reg.BindCounter(&g.Metrics.PageGrants, "lock_page_grants_total", tags...)
	reg.BindCounter(&g.Metrics.Waits, "lock_waits_total", tags...)
	reg.BindCounter(&g.Metrics.Deadlocks, "lock_deadlocks_total", tags...)
	reg.BindCounter(&g.Metrics.Timeouts, "lock_timeouts_total", tags...)
	reg.BindCounter(&g.Metrics.Deescalations, "lock_deescalations_total", tags...)
	reg.BindHistogram(&g.Metrics.WaitNanos, "lock_wait_nanos", tags...)
	reg.BindCounter(&g.Metrics.MutexWait, "mutex_wait_nanos_total", append(tags, obs.T("lock", "glm-shard"))...)
}

// Errors returned by GLM.Acquire.
var (
	// ErrDeadlock reports that granting the request would close a cycle
	// in the (client-level, conservative) waits-for graph; the requester
	// is chosen as the victim and should abort its transaction.
	ErrDeadlock = errors.New("lock: deadlock detected")
	// ErrTimeout reports that the request waited longer than the
	// configured bound.
	ErrTimeout = errors.New("lock: wait timed out")
	// ErrStopped reports that the lock manager was shut down (server
	// crash) while the request waited.
	ErrStopped = errors.New("lock: manager stopped")
)

// Callbacker performs the callback messaging on behalf of the GLM.  The
// server engine implements it; calls are made without any GLM shard
// mutex held and must not block on GLM state (the client's eventual
// replies arrive through Release/Downgrade/Deescalate).
type Callbacker interface {
	// CallbackObject asks holder to give up (wanted==X) or downgrade to
	// shared (wanted==S) its cached lock on obj, on behalf of requester.
	CallbackObject(holder, requester ident.ClientID, obj Name, wanted Mode)
	// DeescalatePage asks holder to replace its cached page lock with
	// object locks for the objects its transactions accessed.
	DeescalatePage(holder, requester ident.ClientID, pg page.ID, wanted Mode)
}

// Request is a lock request presented to the GLM.
type Request struct {
	Client ident.ClientID
	Name   Name
	Mode   Mode
	// PreferPage asks for adaptive granularity: if the whole page is
	// free of other interest, the GLM grants a page lock instead of the
	// requested object lock.
	PreferPage bool
	// Upgrade marks a request by a client that still holds a lock on
	// the name; it bypasses fairness ordering (see msg.LockReq).
	Upgrade bool
}

// Grant reports what the GLM actually granted, which may be a page lock
// when PreferPage was set.
type Grant struct {
	Name Name
	Mode Mode
	// FirstX reports that this grant is the first exclusive lock this
	// client obtains on this page (object or page level); the server
	// engine uses it to insert the DCT entry of §3.2.
	FirstX bool
}

// pageLocks is the per-page lock table.
type pageLocks struct {
	page map[ident.ClientID]Mode            // page-level locks
	objs map[uint16]map[ident.ClientID]Mode // object-level locks
}

func (pl *pageLocks) empty() bool { return len(pl.page) == 0 && len(pl.objs) == 0 }

// DefaultLockShards is the shard count NewGLM uses.  Lock names hash to
// shards by page ID; every conflict, grant and fairness decision is
// page-local (overlaps requires equal pages), so shards never need each
// other's mutexes for the hot path.
const DefaultLockShards = 16

// glmShard is one independently mutexed slice of the lock table: the
// pages hashing to it, the blocked requests targeting those pages, and
// the retry-wakeup channels for them.
type glmShard struct {
	mu      obs.WaitMutex
	pages   map[page.ID]*pageLocks
	waiting map[*waitingReq]struct{}
	waiters []chan struct{}
}

// notifyAll wakes every waiting Acquire on this shard so it re-examines
// the table.  Called with sh.mu held.
func (sh *glmShard) notifyAll() {
	for _, ch := range sh.waiters {
		close(ch)
	}
	sh.waiters = nil
}

func (sh *glmShard) pl(p page.ID) *pageLocks {
	l, ok := sh.pages[p]
	if !ok {
		l = &pageLocks{page: make(map[ident.ClientID]Mode), objs: make(map[uint16]map[ident.ClientID]Mode)}
		sh.pages[p] = l
	}
	return l
}

// GLM is the server's global lock manager.  Locks are granted to
// clients (not transactions) and cached by the clients' LLMs until
// called back.
//
// The lock table is sharded by page ID.  Lock ordering within the GLM:
// a shard mutex is the top; graphMu (waits-for graph, victim ring) and
// crashedMu are leaves that may be taken while holding one shard mutex,
// never the other way around, and never while holding two shard
// mutexes.  Multi-shard operations (ClientCrashed, ReleaseAll,
// AllHoldings, WaitsFor, Stop, DumpState) visit shards one at a time in
// ascending shard-index order and hold at most one shard mutex at any
// moment, so they can never deadlock against each other or Acquire.
type GLM struct {
	shards  []glmShard
	ticket  atomic.Uint64
	stopped atomic.Bool

	// crashedMu guards crashed: clients in the crashed-but-unrecovered
	// window (§3.3).  Read from conflict scans under a shard mutex.
	crashedMu sync.RWMutex
	crashed   map[ident.ClientID]bool

	// graphMu guards the conservative client-level waits-for graph, the
	// deadlock-victim ring, and the doomed set.  The graph is global (a
	// client can wait in one shard on locks whose holders wait in
	// another), which is what lets cycle detection see cross-shard
	// deadlocks.
	graphMu sync.Mutex
	waits   map[ident.ClientID]map[ident.ClientID]int
	victims []DeadlockVictim
	// doomed holds clients sentenced by the fleet's distributed
	// deadlock detector (KillWaiter): their blocked Acquire aborts with
	// ErrDeadlock at the next wakeup, carrying the recorded cycle.
	doomed map[ident.ClientID][]ident.ClientID

	// origin is this GLM's partition id in a fleet (SetOrigin); it tags
	// every exported waits-for edge and victim so merged graphs stay
	// unambiguous.  0 for a single server.
	origin int

	cbMu    sync.RWMutex
	cb      Callbacker
	timeout time.Duration

	// Metrics counts grant/wait/abort events; bind into a registry with
	// RegisterObs.
	Metrics GLMMetrics
}

// waitingReq is one blocked Acquire.
type waitingReq struct {
	ticket uint64
	client ident.ClientID
	name   Name
	mode   Mode
	since  time.Time // when the Acquire arrived, for wait-age reporting
}

// overlaps reports whether two lock names can conflict: same name, or
// one is the page lock covering the other's object.
func overlaps(a, b Name) bool {
	if a.Page != b.Page {
		return false
	}
	if a.IsPage || b.IsPage {
		return true
	}
	return a.Slot == b.Slot
}

// NewGLM returns a global lock manager that uses cb for callback
// messaging and aborts waits after timeout (0 means a generous
// default), with the default shard count.
func NewGLM(cb Callbacker, timeout time.Duration) *GLM {
	return NewGLMSharded(cb, timeout, DefaultLockShards)
}

// NewGLMSharded is NewGLM with an explicit shard count (1 reproduces
// the old single-mutex behavior; the E12 big-lock baseline uses it).
func NewGLMSharded(cb Callbacker, timeout time.Duration, shards int) *GLM {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	if shards <= 0 {
		shards = DefaultLockShards
	}
	g := &GLM{
		shards:  make([]glmShard, shards),
		crashed: make(map[ident.ClientID]bool),
		waits:   make(map[ident.ClientID]map[ident.ClientID]int),
		doomed:  make(map[ident.ClientID][]ident.ClientID),
		cb:      cb,
		timeout: timeout,
	}
	for i := range g.shards {
		g.shards[i].mu.SetWaitCounter(&g.Metrics.MutexWait)
		g.shards[i].pages = make(map[page.ID]*pageLocks)
		g.shards[i].waiting = make(map[*waitingReq]struct{})
	}
	return g
}

// Shards returns the shard count (tests and the E12 report read it).
func (g *GLM) Shards() int { return len(g.shards) }

// SetOrigin records this GLM's partition id; exported waits-for edges,
// waiters and victims carry it as provenance.  Call before serving.
func (g *GLM) SetOrigin(p int) { g.origin = p }

// KillWaiter dooms a currently blocked Acquire of client c: its next
// wakeup aborts with ErrDeadlock, recording cycle in the victim history
// tagged as a distributed deadlock.  The fleet's merged-graph detector
// calls it for cycles no single partition can see.  It reports false
// when c has no live wait edges here — the cycle resolved itself between
// the detector's snapshot and the kill — which suppresses most phantom
// kills from the detector's non-atomic union.
func (g *GLM) KillWaiter(c ident.ClientID, cycle []ident.ClientID) bool {
	g.graphMu.Lock()
	if len(g.waits[c]) == 0 {
		g.graphMu.Unlock()
		return false
	}
	g.doomed[c] = append([]ident.ClientID(nil), cycle...)
	g.graphMu.Unlock()
	// Wake the shards so the doomed waiter re-examines its state; its
	// Acquire loop checks the doom before anything else.
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		sh.notifyAll()
		sh.mu.Unlock()
	}
	return true
}

// takeDoom consumes a pending doom for c, returning the recorded cycle
// (nil if none).  The wait edges are cleared along with it.
func (g *GLM) takeDoom(c ident.ClientID) []ident.ClientID {
	g.graphMu.Lock()
	defer g.graphMu.Unlock()
	cycle, ok := g.doomed[c]
	if !ok {
		return nil
	}
	delete(g.doomed, c)
	delete(g.waits, c)
	if cycle == nil {
		cycle = []ident.ClientID{}
	}
	return cycle
}

// shard maps a page to its shard.
func (g *GLM) shard(p page.ID) *glmShard {
	return &g.shards[int(uint64(p)%uint64(len(g.shards)))]
}

// SetCallbacker installs the callback transport; the server engine calls
// it once during construction (breaking the GLM/server init cycle).
func (g *GLM) SetCallbacker(cb Callbacker) {
	g.cbMu.Lock()
	g.cb = cb
	g.cbMu.Unlock()
}

func (g *GLM) callbacker() Callbacker {
	g.cbMu.RLock()
	defer g.cbMu.RUnlock()
	return g.cb
}

func (g *GLM) isCrashed(c ident.ClientID) bool {
	g.crashedMu.RLock()
	defer g.crashedMu.RUnlock()
	return g.crashed[c]
}

// callback describes one callback message to issue.
type callback struct {
	holder  ident.ClientID
	obj     Name // object callback target
	pg      page.ID
	isDeesc bool
	wanted  Mode
}

// conflicts computes, for a request, the set of blocking clients and the
// callbacks needed to dislodge them.  Called with sh.mu held.
func (g *GLM) conflicts(sh *glmShard, req Request, name Name) (blockers map[ident.ClientID]bool, cbs []callback) {
	pl := sh.pl(name.Page)
	blockers = make(map[ident.ClientID]bool)
	add := func(c ident.ClientID, cb callback) {
		blockers[c] = true
		// Callbacks to crashed clients are queued, not sent: the paper's
		// server "queues any callback requests until the client
		// recovers" (§3.3).
		if !g.isCrashed(c) {
			cbs = append(cbs, cb)
		}
	}
	// Page-level locks of other clients.
	for c, m := range pl.page {
		if c == req.Client {
			continue
		}
		if !Compatible(m, req.Mode) {
			add(c, callback{holder: c, pg: name.Page, isDeesc: true, wanted: req.Mode})
		}
	}
	if name.IsPage {
		// Object-level locks of other clients conflict with a page lock
		// request unless both sides are shared.
		for slot, owners := range pl.objs {
			for c, m := range owners {
				if c == req.Client {
					continue
				}
				if !Compatible(m, req.Mode) {
					add(c, callback{holder: c, obj: Name{Page: name.Page, Slot: slot}, wanted: req.Mode})
				}
			}
		}
		return blockers, cbs
	}
	// Object-level conflicts on the same object.
	for c, m := range pl.objs[name.Slot] {
		if c == req.Client {
			continue
		}
		if !Compatible(m, req.Mode) {
			add(c, callback{holder: c, obj: name, wanted: req.Mode})
		}
	}
	return blockers, cbs
}

// covered reports whether the client already holds a lock that covers
// the request.  Called with sh.mu held.
func (sh *glmShard) covered(c ident.ClientID, name Name, mode Mode) bool {
	pl := sh.pl(name.Page)
	if Covers(pl.page[c], mode) {
		return true
	}
	if !name.IsPage && Covers(pl.objs[name.Slot][c], mode) {
		return true
	}
	return false
}

// grant records the lock.  Called with sh.mu held.
func (sh *glmShard) grant(c ident.ClientID, name Name, mode Mode) Grant {
	pl := sh.pl(name.Page)
	firstX := mode == X && !sh.holdsAnyX(c, name.Page)
	if name.IsPage {
		pl.page[c] = Max(pl.page[c], mode)
	} else {
		owners := pl.objs[name.Slot]
		if owners == nil {
			owners = make(map[ident.ClientID]Mode)
			pl.objs[name.Slot] = owners
		}
		owners[c] = Max(owners[c], mode)
	}
	return Grant{Name: name, Mode: mode, FirstX: firstX}
}

// holdsAnyX reports whether c holds any exclusive lock (page or object
// level) on page p.  Called with sh.mu held.
func (sh *glmShard) holdsAnyX(c ident.ClientID, p page.ID) bool {
	pl := sh.pl(p)
	if pl.page[c] == X {
		return true
	}
	for _, owners := range pl.objs {
		if owners[c] == X {
			return true
		}
	}
	return false
}

// HoldsAnyX reports whether c holds any exclusive lock on page p; the
// server's DCT maintenance consults it when deciding whether an entry
// may be dropped (§3.2).
func (g *GLM) HoldsAnyX(c ident.ClientID, p page.ID) bool {
	sh := g.shard(p)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.holdsAnyX(c, p)
}

// Acquire blocks until the request can be granted, issuing callbacks to
// conflicting holders.  It returns ErrDeadlock when the wait would close
// a cycle, ErrTimeout after the configured bound, and ErrStopped if the
// manager shuts down.
func (g *GLM) Acquire(req Request) (Grant, error) {
	start := time.Now()
	deadline := start.Add(g.timeout)
	sh := g.shard(req.Name.Page)
	wr := &waitingReq{ticket: g.ticket.Add(1), client: req.Client, name: req.Name, mode: req.Mode, since: start}
	registered := false
	sh.mu.Lock()
	defer func() {
		if registered {
			// The acquire blocked at least once; record the end-to-end
			// wait regardless of how it resolved.
			g.Metrics.WaitNanos.ObserveDuration(time.Since(start))
			delete(sh.waiting, wr)
			sh.notifyAll()
		}
		sh.mu.Unlock()
	}()
	// Upgrades (the requester still holds a lock on the name) bypass
	// fairness: the older waiter's callback will dislodge them anyway,
	// and blocking an upgrade behind a waiter deadlocks against itself.
	upgrade := req.Upgrade || sh.holdsOn(req.Client, req.Name)
	for {
		if g.stopped.Load() {
			return Grant{}, ErrStopped
		}
		// A registered waiter may have been sentenced by the fleet's
		// distributed deadlock detector while it slept.
		if registered {
			if cycle := g.takeDoom(req.Client); cycle != nil {
				g.Metrics.Deadlocks.Inc()
				g.recordVictimTagged(req, cycle, true)
				return Grant{}, ErrDeadlock
			}
		}
		// Already covered (e.g. re-acquire during recovery).
		if sh.covered(req.Client, req.Name, req.Mode) {
			g.clearWait(req.Client)
			g.Metrics.Grants.Inc()
			return Grant{Name: req.Name, Mode: req.Mode}, nil
		}
		fair := sh.fairnessBlockers(wr, upgrade)
		// Adaptive granularity: try the whole page first.
		if len(fair) == 0 && req.PreferPage && !req.Name.IsPage {
			pgName := PageName(req.Name.Page)
			if b, _ := g.conflicts(sh, Request{Client: req.Client, Name: pgName, Mode: req.Mode}, pgName); len(b) == 0 {
				if !sh.othersHoldOnPage(req.Client, req.Name.Page) {
					gr := sh.grant(req.Client, pgName, req.Mode)
					g.clearWait(req.Client)
					g.Metrics.Grants.Inc()
					g.Metrics.PageGrants.Inc()
					return gr, nil
				}
			}
		}
		blockers, cbs := g.conflicts(sh, req, req.Name)
		if len(blockers) == 0 && len(fair) == 0 {
			gr := sh.grant(req.Client, req.Name, req.Mode)
			g.clearWait(req.Client)
			g.Metrics.Grants.Inc()
			if gr.Name.IsPage {
				g.Metrics.PageGrants.Inc()
			}
			return gr, nil
		}
		for c := range fair {
			blockers[c] = true
		}
		if !registered {
			registered = true
			sh.waiting[wr] = struct{}{}
			g.Metrics.Waits.Inc()
		}
		// Record the wait and check for deadlock before sleeping.  The
		// graph is global (graphMu is a leaf under the shard mutex), so
		// cycles spanning several shards are still closed and detected
		// by whichever waiter adds the final edge.
		if cycle, ok := g.setWaitAndCheck(req.Client, blockers); ok {
			g.Metrics.Deadlocks.Inc()
			g.recordVictim(req, cycle)
			return Grant{}, ErrDeadlock
		}
		ch := make(chan struct{})
		sh.waiters = append(sh.waiters, ch)
		cb := g.callbacker()
		sh.mu.Unlock()
		// Re-issue the callbacks on every retry: a holder may have
		// re-acquired the lock since the last callback completed (the
		// waiter holds nothing while it waits), and a once-only issue
		// would then starve this request.  The transport layer dedupes
		// identical callbacks that are still in flight.
		for _, c := range cbs {
			if cb != nil {
				if c.isDeesc {
					cb.DeescalatePage(c.holder, req.Client, c.pg, c.wanted)
				} else {
					cb.CallbackObject(c.holder, req.Client, c.obj, c.wanted)
				}
			}
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			sh.mu.Lock()
			g.clearWait(req.Client)
			g.Metrics.Timeouts.Inc()
			return Grant{}, ErrTimeout
		}
		sh.mu.Lock()
	}
}

// holdsOn reports whether the client holds a lock on the name (or the
// page covering it).  Called with sh.mu held.
func (sh *glmShard) holdsOn(c ident.ClientID, name Name) bool {
	pl := sh.pl(name.Page)
	if pl.page[c] != None {
		return true
	}
	if !name.IsPage && pl.objs[name.Slot][c] != None {
		return true
	}
	return false
}

// fairnessBlockers returns the clients whose older waiting requests
// conflict with this one; granting past them would starve them.
// Conflicting requests always target the same page, hence the same
// shard, so the shard-local waiting set is complete.  Called with
// sh.mu held.
func (sh *glmShard) fairnessBlockers(wr *waitingReq, upgrade bool) map[ident.ClientID]bool {
	out := make(map[ident.ClientID]bool)
	if upgrade {
		return out
	}
	for other := range sh.waiting {
		if other.ticket >= wr.ticket || other.client == wr.client {
			continue
		}
		if overlaps(other.name, wr.name) && !Compatible(other.mode, wr.mode) {
			out[other.client] = true
		}
	}
	return out
}

// othersHoldOnPage reports whether any other client holds any lock on
// the page.  Called with sh.mu held.
func (sh *glmShard) othersHoldOnPage(c ident.ClientID, p page.ID) bool {
	pl := sh.pl(p)
	for o := range pl.page {
		if o != c {
			return true
		}
	}
	for _, owners := range pl.objs {
		for o := range owners {
			if o != c {
				return true
			}
		}
	}
	return false
}

// setWaitAndCheck atomically replaces the waiter's blocker set (the
// wait edges are re-derived on every retry so stale edges never linger)
// and runs cycle detection; on a cycle the edges are removed again and
// the closing path returned.
func (g *GLM) setWaitAndCheck(c ident.ClientID, blockers map[ident.ClientID]bool) ([]ident.ClientID, bool) {
	g.graphMu.Lock()
	defer g.graphMu.Unlock()
	w := make(map[ident.ClientID]int, len(blockers))
	for b := range blockers {
		w[b] = 1
	}
	g.waits[c] = w
	if cycle, ok := g.cyclePathLocked(c); ok {
		delete(g.waits, c)
		return cycle, true
	}
	return nil, false
}

func (g *GLM) clearWait(c ident.ClientID) {
	g.graphMu.Lock()
	delete(g.waits, c)
	// A pending doom that lost the race to a grant must not linger and
	// kill an unrelated future wait.
	delete(g.doomed, c)
	g.graphMu.Unlock()
}

// cyclePathLocked reports whether the waits-for graph contains a cycle
// reachable from c, returning the path c → … → c's blocker-of-blocker
// that closes it.  The graph is client-level and therefore
// conservative: two independent transactions on the same client are
// merged into one node, so a detected "deadlock" is occasionally a
// false positive; the victim simply retries.  Called with graphMu held.
func (g *GLM) cyclePathLocked(c ident.ClientID) ([]ident.ClientID, bool) {
	seen := make(map[ident.ClientID]bool)
	var path []ident.ClientID
	var dfs func(n ident.ClientID) bool
	dfs = func(n ident.ClientID) bool {
		path = append(path, n)
		for b := range g.waits[n] {
			if b == c {
				return true
			}
			if !seen[b] {
				seen[b] = true
				if dfs(b) {
					return true
				}
			}
		}
		path = path[:len(path)-1]
		return false
	}
	if dfs(c) {
		return append([]ident.ClientID(nil), path...), true
	}
	return nil, false
}

// forEachPageLocked visits every page's lock table, ascending shard
// order, with the owning shard mutex held during each visit (invariant
// checks in tests use it).
func (g *GLM) forEachPageLocked(f func(page.ID, *pageLocks)) {
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		for pid, pl := range sh.pages {
			f(pid, pl)
		}
		sh.mu.Unlock()
	}
}

// Release removes a client's lock on name.
func (g *GLM) Release(c ident.ClientID, name Name) {
	sh := g.shard(name.Page)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	pl := sh.pl(name.Page)
	if name.IsPage {
		delete(pl.page, c)
	} else if owners := pl.objs[name.Slot]; owners != nil {
		delete(owners, c)
		if len(owners) == 0 {
			delete(pl.objs, name.Slot)
		}
	}
	if pl.empty() {
		delete(sh.pages, name.Page)
	}
	sh.notifyAll()
}

// Downgrade demotes a client's exclusive lock on name to shared
// (callback in shared mode, §2).
func (g *GLM) Downgrade(c ident.ClientID, name Name) {
	sh := g.shard(name.Page)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	pl := sh.pl(name.Page)
	if name.IsPage {
		if pl.page[c] == X {
			pl.page[c] = S
		}
	} else if owners := pl.objs[name.Slot]; owners != nil && owners[c] == X {
		owners[c] = S
	}
	sh.notifyAll()
}

// ObjLock pairs an object slot with a mode; used by de-escalation.
type ObjLock struct {
	Slot uint16
	Mode Mode
}

// Deescalate replaces a client's page lock with the given object locks
// (§3.2 page-level conflict handling).
func (g *GLM) Deescalate(c ident.ClientID, p page.ID, objs []ObjLock) {
	sh := g.shard(p)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	g.Metrics.Deescalations.Inc()
	pl := sh.pl(p)
	delete(pl.page, c)
	for _, ol := range objs {
		owners := pl.objs[ol.Slot]
		if owners == nil {
			owners = make(map[ident.ClientID]Mode)
			pl.objs[ol.Slot] = owners
		}
		owners[c] = Max(owners[c], ol.Mode)
	}
	if pl.empty() {
		delete(sh.pages, p)
	}
	sh.notifyAll()
}

// ClientCrashed implements §3.3: the server releases all shared locks of
// the crashed client, retains its exclusive locks, and queues callbacks
// against them until recovery finishes.  The crashed flag is published
// before the shard sweep so conflict scans suppress callbacks to the
// client from the first moment; shards are visited in ascending order,
// one mutex at a time.
func (g *GLM) ClientCrashed(c ident.ClientID) {
	g.crashedMu.Lock()
	g.crashed[c] = true
	g.crashedMu.Unlock()
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		for p, pl := range sh.pages {
			if pl.page[c] == S {
				delete(pl.page, c)
			}
			for slot, owners := range pl.objs {
				if owners[c] == S {
					delete(owners, c)
					if len(owners) == 0 {
						delete(pl.objs, slot)
					}
				}
			}
			if pl.empty() {
				delete(sh.pages, p)
			}
		}
		sh.notifyAll()
		sh.mu.Unlock()
	}
}

// ClientRecovered marks the client operational again; queued callbacks
// may now be delivered (waiting Acquires retry and re-issue them).
func (g *GLM) ClientRecovered(c ident.ClientID) {
	g.crashedMu.Lock()
	delete(g.crashed, c)
	g.crashedMu.Unlock()
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		sh.notifyAll()
		sh.mu.Unlock()
	}
}

// Crashed reports whether the client is in the crashed-but-unrecovered
// window.
func (g *GLM) Crashed(c ident.ClientID) bool {
	return g.isCrashed(c)
}

// Holding is one (name, mode) pair held by a client.
type Holding struct {
	Name Name
	Mode Mode
}

// HeldBy returns every lock the client holds; restart recovery sends
// the crashed client its retained exclusive locks (§3.3).
func (g *GLM) HeldBy(c ident.ClientID) []Holding {
	var out []Holding
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		for p, pl := range sh.pages {
			if m, ok := pl.page[c]; ok {
				out = append(out, Holding{Name: PageName(p), Mode: m})
			}
			for slot, owners := range pl.objs {
				if m, ok := owners[c]; ok {
					out = append(out, Holding{Name: Name{Page: p, Slot: slot}, Mode: m})
				}
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// AllHoldings returns every client's holdings (crashed clients'
// retained locks included); the chaos harness uses it to check the
// lock-table/DCT consistency invariant after recovery.  Shards are
// snapshotted in ascending order; concurrent mutations in
// already-visited shards are not reflected.
func (g *GLM) AllHoldings() map[ident.ClientID][]Holding {
	out := make(map[ident.ClientID][]Holding)
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		for p, pl := range sh.pages {
			for c, m := range pl.page {
				out[c] = append(out[c], Holding{Name: PageName(p), Mode: m})
			}
			for slot, owners := range pl.objs {
				for c, m := range owners {
					out[c] = append(out[c], Holding{Name: Name{Page: p, Slot: slot}, Mode: m})
				}
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// Install records a holding without conflict checking; server restart
// recovery rebuilds the GLM from the LLM tables the clients report
// (§3.4) and crashed-client recovery re-installs retained X locks.
func (g *GLM) Install(c ident.ClientID, name Name, mode Mode) {
	sh := g.shard(name.Page)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.grant(c, name, mode)
}

// ReleaseAll removes every lock held by the client (used when a client
// disconnects cleanly).
func (g *GLM) ReleaseAll(c ident.ClientID) {
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		for p, pl := range sh.pages {
			delete(pl.page, c)
			for slot, owners := range pl.objs {
				delete(owners, c)
				if len(owners) == 0 {
					delete(pl.objs, slot)
				}
			}
			if pl.empty() {
				delete(sh.pages, p)
			}
		}
		sh.notifyAll()
		sh.mu.Unlock()
	}
}

// Stop aborts all waiting requests (server shutdown/crash).
func (g *GLM) Stop() {
	g.stopped.Store(true)
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		sh.notifyAll()
		sh.mu.Unlock()
	}
}

// DumpState renders the lock table for debugging.
func (g *GLM) DumpState() string {
	out := ""
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		for pid, pl := range sh.pages {
			out += fmt.Sprintf("page %d:\n", pid)
			for c, m := range pl.page {
				out += fmt.Sprintf("  page-lock %v %v\n", c, m)
			}
			for slot, owners := range pl.objs {
				for c, m := range owners {
					out += fmt.Sprintf("  obj %d.%d %v %v\n", pid, slot, c, m)
				}
			}
		}
		for wr := range sh.waiting {
			out += fmt.Sprintf("waitingReq: ticket=%d client=%v name=%v mode=%v\n", wr.ticket, wr.client, wr.name, wr.mode)
		}
		sh.mu.Unlock()
	}
	g.graphMu.Lock()
	for w, bs := range g.waits {
		out += fmt.Sprintf("wait: %v -> %v\n", w, bs)
	}
	g.graphMu.Unlock()
	g.crashedMu.RLock()
	for c := range g.crashed {
		out += fmt.Sprintf("crashed: %v\n", c)
	}
	g.crashedMu.RUnlock()
	return out
}
