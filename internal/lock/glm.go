package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"clientlog/internal/ident"
	"clientlog/internal/obs"
	"clientlog/internal/page"
)

// GLMMetrics counts global-lock-manager events: grants split by the
// granted level, acquires that had to wait, deadlock and timeout
// aborts, page de-escalations applied, and the distribution of blocked
// wait times.
type GLMMetrics struct {
	Grants        obs.Counter // total grants
	PageGrants    obs.Counter // grants that came back page-level
	Waits         obs.Counter // acquires that blocked at least once
	Deadlocks     obs.Counter // ErrDeadlock aborts
	Timeouts      obs.Counter // ErrTimeout aborts
	Deescalations obs.Counter // page locks replaced by object locks
	WaitNanos     obs.Histogram
}

// RegisterObs binds the GLM's counters into reg as the lock_* families
// under the caller's tags.
func (g *GLM) RegisterObs(reg *obs.Registry, tags ...obs.Tag) {
	if reg == nil {
		return
	}
	reg.BindCounter(&g.Metrics.Grants, "lock_grants_total", tags...)
	reg.BindCounter(&g.Metrics.PageGrants, "lock_page_grants_total", tags...)
	reg.BindCounter(&g.Metrics.Waits, "lock_waits_total", tags...)
	reg.BindCounter(&g.Metrics.Deadlocks, "lock_deadlocks_total", tags...)
	reg.BindCounter(&g.Metrics.Timeouts, "lock_timeouts_total", tags...)
	reg.BindCounter(&g.Metrics.Deescalations, "lock_deescalations_total", tags...)
	reg.BindHistogram(&g.Metrics.WaitNanos, "lock_wait_nanos", tags...)
}

// Errors returned by GLM.Acquire.
var (
	// ErrDeadlock reports that granting the request would close a cycle
	// in the (client-level, conservative) waits-for graph; the requester
	// is chosen as the victim and should abort its transaction.
	ErrDeadlock = errors.New("lock: deadlock detected")
	// ErrTimeout reports that the request waited longer than the
	// configured bound.
	ErrTimeout = errors.New("lock: wait timed out")
	// ErrStopped reports that the lock manager was shut down (server
	// crash) while the request waited.
	ErrStopped = errors.New("lock: manager stopped")
)

// Callbacker performs the callback messaging on behalf of the GLM.  The
// server engine implements it; calls are made without the GLM mutex
// held and must not block on GLM state (the client's eventual replies
// arrive through Release/Downgrade/Deescalate).
type Callbacker interface {
	// CallbackObject asks holder to give up (wanted==X) or downgrade to
	// shared (wanted==S) its cached lock on obj, on behalf of requester.
	CallbackObject(holder, requester ident.ClientID, obj Name, wanted Mode)
	// DeescalatePage asks holder to replace its cached page lock with
	// object locks for the objects its transactions accessed.
	DeescalatePage(holder, requester ident.ClientID, pg page.ID, wanted Mode)
}

// Request is a lock request presented to the GLM.
type Request struct {
	Client ident.ClientID
	Name   Name
	Mode   Mode
	// PreferPage asks for adaptive granularity: if the whole page is
	// free of other interest, the GLM grants a page lock instead of the
	// requested object lock.
	PreferPage bool
	// Upgrade marks a request by a client that still holds a lock on
	// the name; it bypasses fairness ordering (see msg.LockReq).
	Upgrade bool
}

// Grant reports what the GLM actually granted, which may be a page lock
// when PreferPage was set.
type Grant struct {
	Name Name
	Mode Mode
	// FirstX reports that this grant is the first exclusive lock this
	// client obtains on this page (object or page level); the server
	// engine uses it to insert the DCT entry of §3.2.
	FirstX bool
}

// pageLocks is the per-page lock table.
type pageLocks struct {
	page map[ident.ClientID]Mode            // page-level locks
	objs map[uint16]map[ident.ClientID]Mode // object-level locks
}

func (pl *pageLocks) empty() bool { return len(pl.page) == 0 && len(pl.objs) == 0 }

// GLM is the server's global lock manager.  Locks are granted to
// clients (not transactions) and cached by the clients' LLMs until
// called back.
type GLM struct {
	mu      sync.Mutex
	pages   map[page.ID]*pageLocks
	crashed map[ident.ClientID]bool
	// waits is the conservative client-level waits-for graph: for each
	// waiting client, the multiset of clients blocking it.
	waits   map[ident.ClientID]map[ident.ClientID]int
	waiters []chan struct{}
	// waiting registers blocked requests with their arrival tickets so
	// newer conflicting requests cannot steal grants from older waiters
	// (callback locking has no queue of its own; without this, a hot
	// holder-requester pair starves everyone else).
	waiting map[*waitingReq]struct{}
	ticket  uint64
	stopped bool

	// victims is a bounded ring of recent deadlock victims (newest
	// last), served by WaitsFor for post-mortem introspection.
	victims []DeadlockVictim

	cb      Callbacker
	timeout time.Duration

	// Metrics counts grant/wait/abort events; bind into a registry with
	// RegisterObs.
	Metrics GLMMetrics
}

// waitingReq is one blocked Acquire.
type waitingReq struct {
	ticket uint64
	client ident.ClientID
	name   Name
	mode   Mode
	since  time.Time // when the Acquire arrived, for wait-age reporting
}

// overlaps reports whether two lock names can conflict: same name, or
// one is the page lock covering the other's object.
func overlaps(a, b Name) bool {
	if a.Page != b.Page {
		return false
	}
	if a.IsPage || b.IsPage {
		return true
	}
	return a.Slot == b.Slot
}

// NewGLM returns a global lock manager that uses cb for callback
// messaging and aborts waits after timeout (0 means a generous default).
func NewGLM(cb Callbacker, timeout time.Duration) *GLM {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &GLM{
		pages:   make(map[page.ID]*pageLocks),
		crashed: make(map[ident.ClientID]bool),
		waits:   make(map[ident.ClientID]map[ident.ClientID]int),
		waiting: make(map[*waitingReq]struct{}),
		cb:      cb,
		timeout: timeout,
	}
}

// SetCallbacker installs the callback transport; the server engine calls
// it once during construction (breaking the GLM/server init cycle).
func (g *GLM) SetCallbacker(cb Callbacker) {
	g.mu.Lock()
	g.cb = cb
	g.mu.Unlock()
}

func (g *GLM) pl(p page.ID) *pageLocks {
	l, ok := g.pages[p]
	if !ok {
		l = &pageLocks{page: make(map[ident.ClientID]Mode), objs: make(map[uint16]map[ident.ClientID]Mode)}
		g.pages[p] = l
	}
	return l
}

// notifyAll wakes every waiting Acquire so it re-examines the table.
// Called with g.mu held.
func (g *GLM) notifyAll() {
	for _, ch := range g.waiters {
		close(ch)
	}
	g.waiters = nil
}

// callback describes one callback message to issue.
type callback struct {
	holder  ident.ClientID
	obj     Name // object callback target
	pg      page.ID
	isDeesc bool
	wanted  Mode
}

// conflicts computes, for a request, the set of blocking clients and the
// callbacks needed to dislodge them.  Called with g.mu held.
func (g *GLM) conflicts(req Request, name Name) (blockers map[ident.ClientID]bool, cbs []callback) {
	pl := g.pl(name.Page)
	blockers = make(map[ident.ClientID]bool)
	add := func(c ident.ClientID, cb callback) {
		blockers[c] = true
		// Callbacks to crashed clients are queued, not sent: the paper's
		// server "queues any callback requests until the client
		// recovers" (§3.3).
		if !g.crashed[c] {
			cbs = append(cbs, cb)
		}
	}
	// Page-level locks of other clients.
	for c, m := range pl.page {
		if c == req.Client {
			continue
		}
		if !Compatible(m, req.Mode) {
			add(c, callback{holder: c, pg: name.Page, isDeesc: true, wanted: req.Mode})
		}
	}
	if name.IsPage {
		// Object-level locks of other clients conflict with a page lock
		// request unless both sides are shared.
		for slot, owners := range pl.objs {
			for c, m := range owners {
				if c == req.Client {
					continue
				}
				if !Compatible(m, req.Mode) {
					add(c, callback{holder: c, obj: Name{Page: name.Page, Slot: slot}, wanted: req.Mode})
				}
			}
		}
		return blockers, cbs
	}
	// Object-level conflicts on the same object.
	for c, m := range pl.objs[name.Slot] {
		if c == req.Client {
			continue
		}
		if !Compatible(m, req.Mode) {
			add(c, callback{holder: c, obj: name, wanted: req.Mode})
		}
	}
	return blockers, cbs
}

// covered reports whether the client already holds a lock that covers
// the request.  Called with g.mu held.
func (g *GLM) covered(c ident.ClientID, name Name, mode Mode) bool {
	pl := g.pl(name.Page)
	if Covers(pl.page[c], mode) {
		return true
	}
	if !name.IsPage && Covers(pl.objs[name.Slot][c], mode) {
		return true
	}
	return false
}

// grant records the lock.  Called with g.mu held.
func (g *GLM) grant(c ident.ClientID, name Name, mode Mode) Grant {
	pl := g.pl(name.Page)
	firstX := mode == X && !g.holdsAnyXLocked(c, name.Page)
	if name.IsPage {
		pl.page[c] = Max(pl.page[c], mode)
	} else {
		owners := pl.objs[name.Slot]
		if owners == nil {
			owners = make(map[ident.ClientID]Mode)
			pl.objs[name.Slot] = owners
		}
		owners[c] = Max(owners[c], mode)
	}
	return Grant{Name: name, Mode: mode, FirstX: firstX}
}

// holdsAnyXLocked reports whether c holds any exclusive lock (page or
// object level) on page p.  Called with g.mu held.
func (g *GLM) holdsAnyXLocked(c ident.ClientID, p page.ID) bool {
	pl := g.pl(p)
	if pl.page[c] == X {
		return true
	}
	for _, owners := range pl.objs {
		if owners[c] == X {
			return true
		}
	}
	return false
}

// HoldsAnyX reports whether c holds any exclusive lock on page p; the
// server's DCT maintenance consults it when deciding whether an entry
// may be dropped (§3.2).
func (g *GLM) HoldsAnyX(c ident.ClientID, p page.ID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.holdsAnyXLocked(c, p)
}

// Acquire blocks until the request can be granted, issuing callbacks to
// conflicting holders.  It returns ErrDeadlock when the wait would close
// a cycle, ErrTimeout after the configured bound, and ErrStopped if the
// manager shuts down.
func (g *GLM) Acquire(req Request) (Grant, error) {
	start := time.Now()
	deadline := start.Add(g.timeout)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ticket++
	wr := &waitingReq{ticket: g.ticket, client: req.Client, name: req.Name, mode: req.Mode, since: start}
	registered := false
	defer func() {
		if registered {
			// The acquire blocked at least once; record the end-to-end
			// wait regardless of how it resolved.
			g.Metrics.WaitNanos.ObserveDuration(time.Since(start))
			delete(g.waiting, wr)
			g.notifyAll()
		}
	}()
	// Upgrades (the requester still holds a lock on the name) bypass
	// fairness: the older waiter's callback will dislodge them anyway,
	// and blocking an upgrade behind a waiter deadlocks against itself.
	upgrade := req.Upgrade || g.holdsOn(req.Client, req.Name)
	for {
		if g.stopped {
			return Grant{}, ErrStopped
		}
		// Already covered (e.g. re-acquire during recovery).
		if g.covered(req.Client, req.Name, req.Mode) {
			g.clearWait(req.Client)
			g.Metrics.Grants.Inc()
			return Grant{Name: req.Name, Mode: req.Mode}, nil
		}
		fair := g.fairnessBlockers(wr, upgrade)
		// Adaptive granularity: try the whole page first.
		if len(fair) == 0 && req.PreferPage && !req.Name.IsPage {
			pgName := PageName(req.Name.Page)
			if b, _ := g.conflicts(Request{Client: req.Client, Name: pgName, Mode: req.Mode}, pgName); len(b) == 0 {
				if !g.othersHoldOnPage(req.Client, req.Name.Page) {
					gr := g.grant(req.Client, pgName, req.Mode)
					g.clearWait(req.Client)
					g.Metrics.Grants.Inc()
					g.Metrics.PageGrants.Inc()
					return gr, nil
				}
			}
		}
		blockers, cbs := g.conflicts(req, req.Name)
		if len(blockers) == 0 && len(fair) == 0 {
			gr := g.grant(req.Client, req.Name, req.Mode)
			g.clearWait(req.Client)
			g.Metrics.Grants.Inc()
			if gr.Name.IsPage {
				g.Metrics.PageGrants.Inc()
			}
			return gr, nil
		}
		for c := range fair {
			blockers[c] = true
		}
		if !registered {
			registered = true
			g.waiting[wr] = struct{}{}
			g.Metrics.Waits.Inc()
		}
		// Record the wait and check for deadlock before sleeping.
		g.setWait(req.Client, blockers)
		if cycle, ok := g.cyclePath(req.Client); ok {
			g.clearWait(req.Client)
			g.Metrics.Deadlocks.Inc()
			g.recordVictim(req, cycle)
			return Grant{}, ErrDeadlock
		}
		ch := make(chan struct{})
		g.waiters = append(g.waiters, ch)
		cb := g.cb
		g.mu.Unlock()
		// Re-issue the callbacks on every retry: a holder may have
		// re-acquired the lock since the last callback completed (the
		// waiter holds nothing while it waits), and a once-only issue
		// would then starve this request.  The transport layer dedupes
		// identical callbacks that are still in flight.
		for _, c := range cbs {
			if cb != nil {
				if c.isDeesc {
					cb.DeescalatePage(c.holder, req.Client, c.pg, c.wanted)
				} else {
					cb.CallbackObject(c.holder, req.Client, c.obj, c.wanted)
				}
			}
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			g.mu.Lock()
			g.clearWait(req.Client)
			g.Metrics.Timeouts.Inc()
			return Grant{}, ErrTimeout
		}
		g.mu.Lock()
	}
}

// holdsOn reports whether the client holds a lock on the name (or the
// page covering it).  Called with g.mu held.
func (g *GLM) holdsOn(c ident.ClientID, name Name) bool {
	pl := g.pl(name.Page)
	if pl.page[c] != None {
		return true
	}
	if !name.IsPage && pl.objs[name.Slot][c] != None {
		return true
	}
	return false
}

// fairnessBlockers returns the clients whose older waiting requests
// conflict with this one; granting past them would starve them.
// Called with g.mu held.
func (g *GLM) fairnessBlockers(wr *waitingReq, upgrade bool) map[ident.ClientID]bool {
	out := make(map[ident.ClientID]bool)
	if upgrade {
		return out
	}
	for other := range g.waiting {
		if other.ticket >= wr.ticket || other.client == wr.client {
			continue
		}
		if overlaps(other.name, wr.name) && !Compatible(other.mode, wr.mode) {
			out[other.client] = true
		}
	}
	return out
}

// othersHoldOnPage reports whether any other client holds any lock on
// the page.  Called with g.mu held.
func (g *GLM) othersHoldOnPage(c ident.ClientID, p page.ID) bool {
	pl := g.pl(p)
	for o := range pl.page {
		if o != c {
			return true
		}
	}
	for _, owners := range pl.objs {
		for o := range owners {
			if o != c {
				return true
			}
		}
	}
	return false
}

// setWait replaces the waiter's current blocker set (the wait edges are
// re-derived on every retry so stale edges never linger).
func (g *GLM) setWait(c ident.ClientID, blockers map[ident.ClientID]bool) {
	w := make(map[ident.ClientID]int, len(blockers))
	for b := range blockers {
		w[b] = 1
	}
	g.waits[c] = w
}

func (g *GLM) clearWait(c ident.ClientID) {
	delete(g.waits, c)
}

// cyclePath reports whether the waits-for graph contains a cycle
// reachable from c, returning the path c → … → c's blocker-of-blocker
// that closes it.  The graph is client-level and therefore
// conservative: two independent transactions on the same client are
// merged into one node, so a detected "deadlock" is occasionally a
// false positive; the victim simply retries.  Called with g.mu held.
func (g *GLM) cyclePath(c ident.ClientID) ([]ident.ClientID, bool) {
	seen := make(map[ident.ClientID]bool)
	var path []ident.ClientID
	var dfs func(n ident.ClientID) bool
	dfs = func(n ident.ClientID) bool {
		path = append(path, n)
		for b := range g.waits[n] {
			if b == c {
				return true
			}
			if !seen[b] {
				seen[b] = true
				if dfs(b) {
					return true
				}
			}
		}
		path = path[:len(path)-1]
		return false
	}
	if dfs(c) {
		return append([]ident.ClientID(nil), path...), true
	}
	return nil, false
}

// Release removes a client's lock on name.
func (g *GLM) Release(c ident.ClientID, name Name) {
	g.mu.Lock()
	defer g.mu.Unlock()
	pl := g.pl(name.Page)
	if name.IsPage {
		delete(pl.page, c)
	} else if owners := pl.objs[name.Slot]; owners != nil {
		delete(owners, c)
		if len(owners) == 0 {
			delete(pl.objs, name.Slot)
		}
	}
	if pl.empty() {
		delete(g.pages, name.Page)
	}
	g.notifyAll()
}

// Downgrade demotes a client's exclusive lock on name to shared
// (callback in shared mode, §2).
func (g *GLM) Downgrade(c ident.ClientID, name Name) {
	g.mu.Lock()
	defer g.mu.Unlock()
	pl := g.pl(name.Page)
	if name.IsPage {
		if pl.page[c] == X {
			pl.page[c] = S
		}
	} else if owners := pl.objs[name.Slot]; owners != nil && owners[c] == X {
		owners[c] = S
	}
	g.notifyAll()
}

// ObjLock pairs an object slot with a mode; used by de-escalation.
type ObjLock struct {
	Slot uint16
	Mode Mode
}

// Deescalate replaces a client's page lock with the given object locks
// (§3.2 page-level conflict handling).
func (g *GLM) Deescalate(c ident.ClientID, p page.ID, objs []ObjLock) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.Metrics.Deescalations.Inc()
	pl := g.pl(p)
	delete(pl.page, c)
	for _, ol := range objs {
		owners := pl.objs[ol.Slot]
		if owners == nil {
			owners = make(map[ident.ClientID]Mode)
			pl.objs[ol.Slot] = owners
		}
		owners[c] = Max(owners[c], ol.Mode)
	}
	if pl.empty() {
		delete(g.pages, p)
	}
	g.notifyAll()
}

// ClientCrashed implements §3.3: the server releases all shared locks of
// the crashed client, retains its exclusive locks, and queues callbacks
// against them until recovery finishes.
func (g *GLM) ClientCrashed(c ident.ClientID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.crashed[c] = true
	for p, pl := range g.pages {
		if pl.page[c] == S {
			delete(pl.page, c)
		}
		for slot, owners := range pl.objs {
			if owners[c] == S {
				delete(owners, c)
				if len(owners) == 0 {
					delete(pl.objs, slot)
				}
			}
		}
		if pl.empty() {
			delete(g.pages, p)
		}
	}
	g.notifyAll()
}

// ClientRecovered marks the client operational again; queued callbacks
// may now be delivered (waiting Acquires retry and re-issue them).
func (g *GLM) ClientRecovered(c ident.ClientID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.crashed, c)
	g.notifyAll()
}

// Crashed reports whether the client is in the crashed-but-unrecovered
// window.
func (g *GLM) Crashed(c ident.ClientID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.crashed[c]
}

// Holding is one (name, mode) pair held by a client.
type Holding struct {
	Name Name
	Mode Mode
}

// HeldBy returns every lock the client holds; restart recovery sends
// the crashed client its retained exclusive locks (§3.3).
func (g *GLM) HeldBy(c ident.ClientID) []Holding {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []Holding
	for p, pl := range g.pages {
		if m, ok := pl.page[c]; ok {
			out = append(out, Holding{Name: PageName(p), Mode: m})
		}
		for slot, owners := range pl.objs {
			if m, ok := owners[c]; ok {
				out = append(out, Holding{Name: Name{Page: p, Slot: slot}, Mode: m})
			}
		}
	}
	return out
}

// AllHoldings returns every client's holdings (crashed clients'
// retained locks included); the chaos harness uses it to check the
// lock-table/DCT consistency invariant after recovery.
func (g *GLM) AllHoldings() map[ident.ClientID][]Holding {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[ident.ClientID][]Holding)
	for p, pl := range g.pages {
		for c, m := range pl.page {
			out[c] = append(out[c], Holding{Name: PageName(p), Mode: m})
		}
		for slot, owners := range pl.objs {
			for c, m := range owners {
				out[c] = append(out[c], Holding{Name: Name{Page: p, Slot: slot}, Mode: m})
			}
		}
	}
	return out
}

// Install records a holding without conflict checking; server restart
// recovery rebuilds the GLM from the LLM tables the clients report
// (§3.4) and crashed-client recovery re-installs retained X locks.
func (g *GLM) Install(c ident.ClientID, name Name, mode Mode) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.grant(c, name, mode)
}

// ReleaseAll removes every lock held by the client (used when a client
// disconnects cleanly).
func (g *GLM) ReleaseAll(c ident.ClientID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for p, pl := range g.pages {
		delete(pl.page, c)
		for slot, owners := range pl.objs {
			delete(owners, c)
			if len(owners) == 0 {
				delete(pl.objs, slot)
			}
		}
		if pl.empty() {
			delete(g.pages, p)
		}
	}
	g.notifyAll()
}

// Stop aborts all waiting requests (server shutdown/crash).
func (g *GLM) Stop() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stopped = true
	g.notifyAll()
}

// DumpState renders the lock table for debugging.
func (g *GLM) DumpState() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := ""
	for pid, pl := range g.pages {
		out += fmt.Sprintf("page %d:\n", pid)
		for c, m := range pl.page {
			out += fmt.Sprintf("  page-lock %v %v\n", c, m)
		}
		for slot, owners := range pl.objs {
			for c, m := range owners {
				out += fmt.Sprintf("  obj %d.%d %v %v\n", pid, slot, c, m)
			}
		}
	}
	for w, bs := range g.waits {
		out += fmt.Sprintf("wait: %v -> %v\n", w, bs)
	}
	for c := range g.crashed {
		out += fmt.Sprintf("crashed: %v\n", c)
	}
	for wr := range g.waiting {
		out += fmt.Sprintf("waitingReq: ticket=%d client=%v name=%v mode=%v\n", wr.ticket, wr.client, wr.name, wr.mode)
	}
	return out
}
