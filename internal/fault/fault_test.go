package fault

import (
	"testing"
	"time"
)

func busyPlan() Plan {
	return Plan{
		DropProb:       0.2,
		DupProb:        0.2,
		ReplayProb:     0.1,
		DelayProb:      0.2,
		MaxDelay:       time.Millisecond,
		DisconnectProb: 0.1,
		PartitionProb:  0.05,
		PartitionLen:   3,
	}
}

func TestInjectorDeterministicPerSeed(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := New(seed, busyPlan())
		b := New(seed, busyPlan())
		for i := 0; i < 500; i++ {
			stream := "c1"
			if i%3 == 0 {
				stream = "c2"
			}
			da, db := a.Next(stream), b.Next(stream)
			if da != db {
				t.Fatalf("seed %d step %d: %+v != %+v", seed, i, da, db)
			}
		}
		sa, sb := a.Schedule(), b.Schedule()
		if len(sa) != len(sb) {
			t.Fatalf("seed %d: schedule lengths differ: %d vs %d", seed, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("seed %d: schedule diverges at %d: %q vs %q", seed, i, sa[i], sb[i])
			}
		}
		if a.Faults() == 0 {
			t.Fatalf("seed %d: no faults injected by a busy plan", seed)
		}
	}
}

func TestInjectorSeedsDiffer(t *testing.T) {
	a, b := New(1, busyPlan()), New(2, busyPlan())
	same := 0
	for i := 0; i < 200; i++ {
		if a.Next("c") == b.Next("c") {
			same++
		}
	}
	if same == 200 {
		t.Fatal("seeds 1 and 2 produced identical decision streams")
	}
}

func TestInjectorPartitionWindow(t *testing.T) {
	in := New(7, Plan{PartitionProb: 1, PartitionLen: 4})
	for i := 0; i < 10; i++ {
		if d := in.Next("c"); !d.DropRequest {
			t.Fatalf("call %d not dropped inside a forced partition", i)
		}
	}
	if in.Faults() != 10 {
		t.Fatalf("faults=%d want 10", in.Faults())
	}
}

func TestInjectorDisabled(t *testing.T) {
	in := New(7, busyPlan())
	in.SetEnabled(false)
	for i := 0; i < 100; i++ {
		if d := in.Next("c"); d.Faulty() {
			t.Fatal("disabled injector injected a fault")
		}
	}
	if in.Faults() != 0 {
		t.Fatalf("faults=%d want 0", in.Faults())
	}
	var nilInj *Injector
	if d := nilInj.Next("c"); d.Faulty() {
		t.Fatal("nil injector injected a fault")
	}
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	in := New(3, Plan{})
	for i := 0; i < 100; i++ {
		if d := in.Next("c"); d.Faulty() {
			t.Fatal("zero plan injected a fault")
		}
	}
}
