// Package fault provides a seeded, deterministic network fault model
// for the transports: message drops, delays, duplicate and stale
// retransmissions, partitions and forced disconnects.  Both transports
// consult an Injector — the loopback wrappers in internal/msg on every
// simulated RPC, the TCP layer in internal/netrpc on every outgoing
// frame — so the same FaultPlan exercises the protocol in-process and
// over real sockets.
//
// Determinism: every decision stream is keyed by a caller-chosen stream
// name (one per client connection), and each stream draws from its own
// PRNG seeded by hash(seed, stream).  As long as each stream issues its
// RPCs sequentially (the chaos runner drives clients one operation at a
// time), the k-th decision on a stream is identical across runs of the
// same seed and plan, so any failing schedule replays exactly from its
// seed.
package fault

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"clientlog/internal/obs"
	"clientlog/internal/trace"
)

// Kind classifies an injected fault (for tracing and schedule replay).
type Kind uint8

const (
	// DropRequest loses the request leg of an RPC: the callee never
	// sees the call.
	DropRequest Kind = iota + 1
	// DropReply loses the reply leg: the callee executed but the caller
	// never hears back, so a retry must not re-execute.
	DropReply
	// Duplicate delivers the request twice (wire-level retransmission).
	Duplicate
	// Replay retransmits the *previous* request of the stream out of
	// order (a stale duplicate overtaking the current message).
	Replay
	// Delay holds the message for a random duration.
	Delay
	// Disconnect kills the connection mid-RPC; the TCP transport tears
	// the socket down, the loopback transport loses the reply.
	Disconnect
	// Partition opens a window during which every message of the
	// stream is dropped.
	Partition
	// Corrupt flips bytes in the reply frame of an RPC: the payload
	// arrives but fails its checksum.  Only frame-based transports
	// (netrpc) can express this; the loopback transport ignores it.
	Corrupt
)

func (k Kind) String() string {
	switch k {
	case DropRequest:
		return "drop-request"
	case DropReply:
		return "drop-reply"
	case Duplicate:
		return "duplicate"
	case Replay:
		return "replay"
	case Delay:
		return "delay"
	case Disconnect:
		return "disconnect"
	case Partition:
		return "partition"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("fault(%d)", uint8(k))
	}
}

// Plan sets the per-RPC fault probabilities.  The zero Plan injects
// nothing.
type Plan struct {
	// DropProb is the chance of losing each leg of an RPC (drawn
	// independently for the request and the reply).
	DropProb float64
	// DupProb is the chance of delivering the request twice.
	DupProb float64
	// ReplayProb is the chance of retransmitting the stream's previous
	// request before the current one.
	ReplayProb float64
	// DelayProb and MaxDelay inject a uniform [0, MaxDelay) pause.
	DelayProb float64
	MaxDelay  time.Duration
	// DisconnectProb is the chance of killing the connection mid-RPC.
	DisconnectProb float64
	// PartitionProb opens a partition window; the next PartitionLen
	// messages of the stream (including retries) are dropped.
	PartitionProb float64
	PartitionLen  int
	// CorruptProb is the chance of corrupting the reply frame of an
	// RPC (bytes flipped on the wire, caught by the frame checksum).
	// Only frame-based transports (netrpc) can express it.
	CorruptProb float64
}

// Enabled reports whether the plan can inject anything at all.
func (p Plan) Enabled() bool {
	return p.DropProb > 0 || p.DupProb > 0 || p.ReplayProb > 0 ||
		p.DelayProb > 0 || p.DisconnectProb > 0 || p.PartitionProb > 0 ||
		p.CorruptProb > 0
}

// DefaultPlan returns a moderate mix of every fault kind, tuned so the
// retry layer (see msg.FaultyServer) always outlasts a partition.
func DefaultPlan() Plan {
	return Plan{
		DropProb:       0.03,
		DupProb:        0.04,
		ReplayProb:     0.02,
		DelayProb:      0.05,
		MaxDelay:       200 * time.Microsecond,
		DisconnectProb: 0.01,
		PartitionProb:  0.004,
		PartitionLen:   5,
	}
}

// Decision is the injector's verdict for one RPC attempt.
type Decision struct {
	DropRequest bool
	DropReply   bool
	Duplicate   bool
	Replay      bool
	Disconnect  bool
	Delay       time.Duration
	// CorruptReply asks the transport to flip bytes in the next reply
	// frame so it fails its checksum (netrpc only).
	CorruptReply bool
}

// Faulty reports whether the decision injects anything.
func (d Decision) Faulty() bool {
	return d.DropRequest || d.DropReply || d.Duplicate || d.Replay ||
		d.Disconnect || d.Delay > 0 || d.CorruptReply
}

// stream is one deterministic decision sequence.
type stream struct {
	r             *rand.Rand
	calls         uint64
	partitionLeft int
}

// Injector hands out fault decisions.  It is safe for concurrent use;
// determinism additionally requires that each stream's decisions are
// requested in a deterministic order (sequential use per stream).
type Injector struct {
	seed    int64
	plan    Plan
	faults  atomic.Uint64
	byKind  [Corrupt + 1]obs.Counter
	enabled atomic.Bool

	mu       sync.Mutex
	streams  map[string]*stream
	schedule []string
	tracer   trace.Recorder
}

// New returns an injector whose decisions derive entirely from seed.
func New(seed int64, plan Plan) *Injector {
	in := &Injector{seed: seed, plan: plan, streams: make(map[string]*stream)}
	in.enabled.Store(true)
	return in
}

// SetTracer emits one trace event per injected fault.
func (in *Injector) SetTracer(tr trace.Recorder) {
	in.mu.Lock()
	in.tracer = tr
	in.mu.Unlock()
}

// SetEnabled pauses (false) or resumes (true) injection; the chaos
// runner disables faults while it quiesces and verifies.
func (in *Injector) SetEnabled(v bool) { in.enabled.Store(v) }

// Faults returns the number of faults injected so far.
func (in *Injector) Faults() uint64 { return in.faults.Load() }

// KindCounts returns the per-kind injected-fault counts (only kinds
// that fired appear).
func (in *Injector) KindCounts() map[Kind]uint64 {
	out := make(map[Kind]uint64)
	for k := Kind(1); k <= Corrupt; k++ {
		if n := in.byKind[k].Load(); n > 0 {
			out[k] = n
		}
	}
	return out
}

// RegisterObs binds the injector's counters into reg: faults_total
// overall plus one faults_total{kind=...} series per fault kind.
func (in *Injector) RegisterObs(reg *obs.Registry, tags ...obs.Tag) {
	if reg == nil {
		return
	}
	for k := Kind(1); k <= Corrupt; k++ {
		kt := append(append([]obs.Tag{}, tags...), obs.T("kind", k.String()))
		reg.BindCounter(&in.byKind[k], "faults_total", kt...)
	}
}

// Schedule returns the injected-fault log ("stream#call kind" lines, in
// injection order): the replayable fingerprint of a run.
func (in *Injector) Schedule() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, len(in.schedule))
	copy(out, in.schedule)
	return out
}

// splitmix64 is the standard 64-bit mixer; it turns the (seed, stream)
// pair into an independent per-stream seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func streamSeed(seed int64, name string) int64 {
	h := uint64(14695981039346656037) // FNV-64a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(splitmix64(h ^ uint64(seed)))
}

func (in *Injector) record(s string, calls uint64, k Kind, det string) {
	in.faults.Add(1)
	if k >= 1 && int(k) < len(in.byKind) {
		in.byKind[k].Inc()
	}
	entry := fmt.Sprintf("%s#%d %s", s, calls, k)
	in.mu.Lock()
	in.schedule = append(in.schedule, entry)
	tr := in.tracer
	in.mu.Unlock()
	if tr != nil {
		tr.Record(trace.FaultInject, 0, 0, entry+det)
	}
}

// Next draws the fault decision for the stream's next RPC attempt.
func (in *Injector) Next(name string) Decision {
	if in == nil || !in.enabled.Load() || !in.plan.Enabled() {
		return Decision{}
	}
	in.mu.Lock()
	s := in.streams[name]
	if s == nil {
		s = &stream{r: rand.New(rand.NewSource(streamSeed(in.seed, name)))}
		in.streams[name] = s
	}
	s.calls++
	calls := s.calls
	if s.partitionLeft > 0 {
		s.partitionLeft--
		in.mu.Unlock()
		in.record(name, calls, Partition, " (window)")
		return Decision{DropRequest: true}
	}
	p := in.plan
	var d Decision
	var kinds []Kind
	if p.PartitionProb > 0 && s.r.Float64() < p.PartitionProb {
		n := p.PartitionLen
		if n < 1 {
			n = 1
		}
		s.partitionLeft = n - 1
		d.DropRequest = true
		kinds = append(kinds, Partition)
	}
	if !d.DropRequest && s.r.Float64() < p.DropProb {
		d.DropRequest = true
		kinds = append(kinds, DropRequest)
	}
	if s.r.Float64() < p.DropProb {
		d.DropReply = true
		kinds = append(kinds, DropReply)
	}
	if s.r.Float64() < p.DupProb {
		d.Duplicate = true
		kinds = append(kinds, Duplicate)
	}
	if s.r.Float64() < p.ReplayProb {
		d.Replay = true
		kinds = append(kinds, Replay)
	}
	if p.DelayProb > 0 && s.r.Float64() < p.DelayProb && p.MaxDelay > 0 {
		d.Delay = time.Duration(s.r.Int63n(int64(p.MaxDelay)))
		kinds = append(kinds, Delay)
	}
	if s.r.Float64() < p.DisconnectProb {
		d.Disconnect = true
		kinds = append(kinds, Disconnect)
	}
	// Drawn only when the plan enables corruption, so existing seeded
	// plans keep their exact decision sequences.
	if p.CorruptProb > 0 && s.r.Float64() < p.CorruptProb {
		d.CorruptReply = true
		kinds = append(kinds, Corrupt)
	}
	in.mu.Unlock()
	for _, k := range kinds {
		in.record(name, calls, k, "")
	}
	return d
}
