// Package repl implements the interactive command language of
// cmd/clcli: a line-oriented front end over a client engine, usable
// both interactively and from scripts.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"clientlog/internal/core"
	"clientlog/internal/page"
	"clientlog/internal/wal"
)

// ErrQuit signals an orderly exit request.
var ErrQuit = fmt.Errorf("quit")

// Session holds the REPL state: the client engine, the open
// transaction, and the last savepoint.
type Session struct {
	Client *core.Client
	// ObjSize pads `write` values to the fixed object size.
	ObjSize int

	txn       *core.Txn
	savepoint wal.LSN
}

// NewSession wraps a client engine.
func NewSession(c *core.Client, objSize int) *Session {
	if objSize <= 0 {
		objSize = 32
	}
	return &Session{Client: c, ObjSize: objSize}
}

// Close aborts any open transaction.
func (s *Session) Close() {
	if s.txn != nil {
		_ = s.txn.Abort()
		s.txn = nil
	}
}

// Run feeds lines from r through Eval, printing results to w, until EOF
// or `quit`.
func (s *Session) Run(r io.Reader, w io.Writer, prompt bool) error {
	sc := bufio.NewScanner(r)
	if prompt {
		fmt.Fprint(w, "> ")
	}
	for sc.Scan() {
		out, err := s.Eval(sc.Text())
		if err == ErrQuit {
			return nil
		}
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
		} else if out != "" {
			fmt.Fprintln(w, out)
		}
		if prompt {
			fmt.Fprint(w, "> ")
		}
	}
	return sc.Err()
}

// Eval executes one command line and returns its output.
func (s *Session) Eval(line string) (string, error) {
	if i := strings.Index(line, "#"); i >= 0 {
		line = line[:i]
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil
	}
	switch fields[0] {
	case "quit", "exit":
		return "", ErrQuit
	case "help":
		return helpText, nil
	case "begin":
		if s.txn != nil {
			return "", fmt.Errorf("transaction already open")
		}
		t, err := s.Client.Begin()
		if err != nil {
			return "", err
		}
		s.txn = t
		return fmt.Sprintf("begun %v", t.ID()), nil
	case "read":
		if err := s.needTxn(); err != nil {
			return "", err
		}
		obj, err := parseObj(fields)
		if err != nil {
			return "", err
		}
		data, err := s.txn.Read(obj)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%q", data), nil
	case "write":
		if err := s.needTxn(); err != nil {
			return "", err
		}
		obj, err := parseObj(fields)
		if err != nil {
			return "", err
		}
		if len(fields) < 4 {
			return "", fmt.Errorf("usage: write <page> <slot> <text>")
		}
		return "", s.txn.Overwrite(obj, pad([]byte(strings.Join(fields[3:], " ")), s.ObjSize))
	case "writeat":
		if err := s.needTxn(); err != nil {
			return "", err
		}
		obj, err := parseObj(fields)
		if err != nil {
			return "", err
		}
		if len(fields) < 5 {
			return "", fmt.Errorf("usage: writeat <page> <slot> <offset> <text>")
		}
		off, err := strconv.Atoi(fields[3])
		if err != nil {
			return "", err
		}
		return "", s.txn.OverwriteAt(obj, off, []byte(strings.Join(fields[4:], " ")))
	case "insert":
		if err := s.needTxn(); err != nil {
			return "", err
		}
		if len(fields) < 3 {
			return "", fmt.Errorf("usage: insert <page> <text>")
		}
		pid, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return "", err
		}
		obj, err := s.txn.Insert(page.ID(pid), []byte(strings.Join(fields[2:], " ")))
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("inserted at %v", obj), nil
	case "delete":
		if err := s.needTxn(); err != nil {
			return "", err
		}
		obj, err := parseObj(fields)
		if err != nil {
			return "", err
		}
		return "", s.txn.Delete(obj)
	case "add":
		if err := s.needTxn(); err != nil {
			return "", err
		}
		obj, err := parseObj(fields)
		if err != nil {
			return "", err
		}
		if len(fields) < 4 {
			return "", fmt.Errorf("usage: add <page> <slot> <delta>")
		}
		delta, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return "", err
		}
		return "", s.txn.Add(obj, delta)
	case "counter":
		if err := s.needTxn(); err != nil {
			return "", err
		}
		obj, err := parseObj(fields)
		if err != nil {
			return "", err
		}
		v, err := s.txn.ReadCounter(obj)
		if err != nil {
			return "", err
		}
		return strconv.FormatInt(v, 10), nil
	case "savepoint":
		if err := s.needTxn(); err != nil {
			return "", err
		}
		s.savepoint = s.txn.Savepoint()
		return fmt.Sprintf("savepoint %v", s.savepoint), nil
	case "rollback":
		if err := s.needTxn(); err != nil {
			return "", err
		}
		return "", s.txn.RollbackTo(s.savepoint)
	case "commit":
		if err := s.needTxn(); err != nil {
			return "", err
		}
		err := s.txn.Commit()
		s.txn = nil
		if err != nil {
			return "", err
		}
		return "committed (private log forced; nothing shipped)", nil
	case "abort":
		if err := s.needTxn(); err != nil {
			return "", err
		}
		err := s.txn.Abort()
		s.txn = nil
		return "aborted", err
	case "alloc":
		if err := s.needTxn(); err != nil {
			return "", err
		}
		pid, err := s.txn.AllocPage()
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("allocated page %d", pid), nil
	case "checkpoint":
		return "", s.Client.Checkpoint()
	case "flush":
		return "", s.Client.FlushCache()
	default:
		return "", fmt.Errorf("unknown command %q (try `help`)", fields[0])
	}
}

func (s *Session) needTxn() error {
	if s.txn == nil {
		return fmt.Errorf("no transaction in progress; use `begin`")
	}
	return nil
}

func parseObj(fields []string) (page.ObjectID, error) {
	if len(fields) < 3 {
		return page.ObjectID{}, fmt.Errorf("usage: %s <page> <slot> ...", fields[0])
	}
	pid, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return page.ObjectID{}, fmt.Errorf("bad page id %q", fields[1])
	}
	slot, err := strconv.ParseUint(fields[2], 10, 16)
	if err != nil {
		return page.ObjectID{}, fmt.Errorf("bad slot %q", fields[2])
	}
	return page.ObjectID{Page: page.ID(pid), Slot: uint16(slot)}, nil
}

func pad(b []byte, n int) []byte {
	if len(b) >= n {
		return b[:n]
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

const helpText = `commands:
  begin                        start a transaction
  read <page> <slot>           read an object
  write <page> <slot> <text>   same-size overwrite (padded to -objsize)
  writeat <page> <slot> <off> <text>  partial overwrite
  insert <page> <text>         create an object (structural)
  delete <page> <slot>         remove an object (structural)
  add <page> <slot> <n>        logical counter increment
  counter <page> <slot>        read an 8-byte counter
  savepoint | rollback         partial rollback support
  commit | abort               end the transaction
  alloc                        allocate a fresh page
  checkpoint                   take a fuzzy checkpoint
  flush                        ship all dirty pages to the server
  quit`
