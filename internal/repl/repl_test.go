package repl

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"clientlog/internal/core"
)

func newSession(t *testing.T) (*Session, *core.Cluster) {
	t.Helper()
	cfg := core.DefaultConfig()
	cl := core.NewCluster(cfg)
	if _, err := cl.SeedPages(2, 8, 32); err != nil {
		t.Fatal(err)
	}
	c, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(c, 32), cl
}

// eval runs a command and fails the test on error.
func eval(t *testing.T, s *Session, line string) string {
	t.Helper()
	out, err := s.Eval(line)
	if err != nil {
		t.Fatalf("%q: %v", line, err)
	}
	return out
}

func TestBasicFlow(t *testing.T) {
	s, _ := newSession(t)
	defer s.Close()
	if out := eval(t, s, "begin"); !strings.Contains(out, "begun") {
		t.Fatalf("begin: %q", out)
	}
	eval(t, s, "write 1 0 hello repl")
	if out := eval(t, s, "read 1 0"); !strings.Contains(out, "hello repl") {
		t.Fatalf("read: %q", out)
	}
	if out := eval(t, s, "commit"); !strings.Contains(out, "committed") {
		t.Fatalf("commit: %q", out)
	}
}

func TestCountersAndSavepoints(t *testing.T) {
	s, _ := newSession(t)
	defer s.Close()
	eval(t, s, "begin")
	eval(t, s, "insert 1 12345678") // 8-byte object on page 1
	// The inserted object landed at slot 8 (first free after seeding).
	eval(t, s, "add 1 8 42")
	if out := eval(t, s, "counter 1 8"); out == "" {
		t.Fatal("counter read empty")
	}
	eval(t, s, "savepoint")
	eval(t, s, "add 1 8 100")
	eval(t, s, "rollback")
	eval(t, s, "commit")
}

func TestErrorsAreFriendly(t *testing.T) {
	s, _ := newSession(t)
	defer s.Close()
	for _, line := range []string{
		"read 1 0",    // no txn
		"write 1 0",   // missing value
		"frobnicate",  // unknown
		"read x y",    // bad numbers
		"commit",      // no txn
		"add 1 0 zap", // bad delta
	} {
		if _, err := s.Eval(line); err == nil {
			t.Fatalf("%q: expected error", line)
		}
	}
	// Errors must not wedge the session.
	eval(t, s, "begin")
	eval(t, s, "commit")
}

func TestCommentsAndBlanks(t *testing.T) {
	s, _ := newSession(t)
	defer s.Close()
	if out := eval(t, s, "   # just a comment"); out != "" {
		t.Fatalf("comment produced output: %q", out)
	}
	if out := eval(t, s, ""); out != "" {
		t.Fatalf("blank line produced output: %q", out)
	}
	eval(t, s, "begin # trailing comment")
	eval(t, s, "abort")
}

func TestRunScript(t *testing.T) {
	s, _ := newSession(t)
	defer s.Close()
	script := strings.Join([]string{
		"begin",
		"write 1 1 scripted value",
		"commit",
		"begin",
		"read 1 1",
		"commit",
		"flush",
		"quit",
		"write 1 1 never reached",
	}, "\n")
	var out bytes.Buffer
	if err := s.Run(strings.NewReader(script), &out, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "scripted value") {
		t.Fatalf("script output: %q", out.String())
	}
	if strings.Contains(out.String(), "never reached") {
		t.Fatal("quit did not stop the script")
	}
}

func TestDoubleBeginRejected(t *testing.T) {
	s, _ := newSession(t)
	defer s.Close()
	eval(t, s, "begin")
	if _, err := s.Eval("begin"); err == nil {
		t.Fatal("double begin accepted")
	}
	eval(t, s, "abort")
}

func TestHelp(t *testing.T) {
	s, _ := newSession(t)
	defer s.Close()
	if out := eval(t, s, "help"); !strings.Contains(out, "begin") {
		t.Fatalf("help output: %q", out)
	}
}

func TestAllocAndStructural(t *testing.T) {
	s, cl := newSession(t)
	defer s.Close()
	eval(t, s, "begin")
	out := eval(t, s, "alloc")
	if !strings.Contains(out, "allocated page") {
		t.Fatalf("alloc: %q", out)
	}
	var pid int
	if _, err := fmt.Sscanf(out, "allocated page %d", &pid); err != nil {
		t.Fatalf("parsing %q: %v", out, err)
	}
	eval(t, s, fmt.Sprintf("insert %d fresh object", pid))
	eval(t, s, fmt.Sprintf("delete %d 0", pid))
	eval(t, s, "commit")
	_ = cl
}
