package wal

import (
	"sync"

	"clientlog/internal/obs"
)

// Log is a log manager: a record codec and WAL bookkeeping layered over
// a Store.  One Log instance backs each client's private log and the
// server's log.
type Log struct {
	mu    sync.Mutex
	store Store

	// Group-commit state: concurrent Force callers elect one leader
	// that flushes the whole appended prefix while the rest wait on
	// flushDone, so K committers pay ~1 device flush between them.
	fmu       sync.Mutex
	flushing  bool
	flushDone chan struct{}

	// Metrics, readable concurrently by the benchmark harness and
	// bindable into an obs.Registry via RegisterObs.
	appendedBytes obs.Counter
	appendedRecs  obs.Counter
	forces        obs.Counter
	coalesced     obs.Counter
}

// RegisterObs binds the log's counters into reg as the wal_* families,
// tagged with the caller's tags (typically scope=server or
// scope=client:<id>).
func (l *Log) RegisterObs(reg *obs.Registry, tags ...obs.Tag) {
	if reg == nil {
		return
	}
	reg.BindCounter(&l.appendedRecs, "wal_appends_total", tags...)
	reg.BindCounter(&l.appendedBytes, "wal_bytes_total", tags...)
	reg.BindCounter(&l.forces, "wal_forces_total", tags...)
	reg.BindCounter(&l.coalesced, "wal_force_coalesced_total", tags...)
}

// NewLog wraps a store in a log manager.
func NewLog(store Store) *Log { return &Log{store: store} }

// Store exposes the underlying store (the simulator uses it to crash
// MemStores and to read live-byte accounting).
func (l *Log) Store() Store { return l.store }

// Append encodes and appends a record, returning its LSN.  The record is
// not durable until Force.
func (l *Log) Append(r Record) (LSN, error) {
	return l.AppendWithHeadroom(r, 0)
}

// AppendWithHeadroom appends like Append but, on stores that track
// capacity, fails with ErrLogFull unless headroom bytes remain free
// after the append.  The client's undo reservation rides on this: every
// forward append leaves room for the CLRs and abort records of the
// active transactions, so rollback can always log.  Stores without the
// capability (and headroom 0) degrade to a plain Append.
func (l *Log) AppendWithHeadroom(r Record, headroom uint64) (LSN, error) {
	payload := Encode(r)
	l.mu.Lock()
	var lsn LSN
	var err error
	if ha, ok := l.store.(HeadroomAppender); ok && headroom > 0 {
		lsn, err = ha.AppendHeadroom(payload, headroom)
	} else {
		lsn, err = l.store.Append(payload)
	}
	l.mu.Unlock()
	if err != nil {
		return NilLSN, err
	}
	l.appendedBytes.Add(uint64(len(payload)) + 8)
	l.appendedRecs.Add(1)
	return lsn, nil
}

// AppendEncoded appends an already-encoded record payload; the server
// uses it to store log records shipped by clients at commit in the
// LogShipCommit baseline without a decode/re-encode round trip.
func (l *Log) AppendEncoded(payload []byte) (LSN, error) {
	l.mu.Lock()
	lsn, err := l.store.Append(payload)
	l.mu.Unlock()
	if err != nil {
		return NilLSN, err
	}
	l.appendedBytes.Add(uint64(len(payload)) + 8)
	l.appendedRecs.Add(1)
	return lsn, nil
}

// AppendAndForce appends a record and forces the log through it; used
// for commit records and the server's replacement records.
func (l *Log) AppendAndForce(r Record) (LSN, error) {
	lsn, err := l.Append(r)
	if err != nil {
		return NilLSN, err
	}
	if err := l.Force(lsn); err != nil {
		return NilLSN, err
	}
	return lsn, nil
}

// Force makes all records up to and including upTo durable.
//
// Concurrent callers group-commit: the first becomes the flush leader
// and flushes everything appended so far; the others wait for that
// flush and re-check durability, so a burst of K committers usually
// pays a single device flush.  A caller whose records the leader's
// flush did not cover (appended after the leader captured the end of
// the log) simply becomes the next leader.
func (l *Log) Force(upTo LSN) error {
	for {
		if upTo < l.store.Durable() {
			return nil
		}
		l.fmu.Lock()
		if l.flushing {
			done := l.flushDone
			l.fmu.Unlock()
			l.coalesced.Add(1)
			<-done
			// The leader's flush may have covered upTo; if it failed or
			// fell short, loop and take the lead ourselves.
			continue
		}
		l.flushing = true
		done := make(chan struct{})
		l.flushDone = done
		l.fmu.Unlock()

		// Flush the whole appended prefix, not just upTo: every waiter
		// whose records landed before this point rides along for free.
		target := l.store.End()
		if target < upTo {
			target = upTo
		}
		l.forces.Add(1)
		err := l.store.Flush(target)
		l.fmu.Lock()
		l.flushing = false
		l.fmu.Unlock()
		close(done)
		return err
	}
}

// ForceAll forces everything appended so far.
func (l *Log) ForceAll() error { return l.Force(l.store.End()) }

// End returns the LSN the next record will receive; the paper's
// "current end of the log" used when seeding DPT RedoLSNs.
func (l *Log) End() LSN { return l.store.End() }

// Durable returns the durability horizon.
func (l *Log) Durable() LSN { return l.store.Durable() }

// Read decodes the record at lsn, also returning the next record's LSN.
func (l *Log) Read(lsn LSN) (Record, LSN, error) {
	payload, next, err := l.store.ReadAt(lsn)
	if err != nil {
		return nil, NilLSN, err
	}
	rec, err := Decode(payload)
	if err != nil {
		return nil, NilLSN, err
	}
	return rec, next, nil
}

// Reclaim releases log space below upTo (the client's min RedoLSN; see
// §3.6).
func (l *Log) Reclaim(upTo LSN) error { return l.store.Reclaim(upTo) }

// Horizon returns the LSN of the earliest record still readable (the
// reclaim horizon); full-log scans start here.
func (l *Log) Horizon() LSN { return l.store.Horizon() }

// Close closes the underlying store.
func (l *Log) Close() error { return l.store.Close() }

// BytesAppended returns the cumulative payload+frame bytes appended.
func (l *Log) BytesAppended() uint64 { return l.appendedBytes.Load() }

// RecordsAppended returns the cumulative number of records appended.
func (l *Log) RecordsAppended() uint64 { return l.appendedRecs.Load() }

// Forces returns the number of Force calls that reached the store.
func (l *Log) Forces() uint64 { return l.forces.Load() }

// ForcesCoalesced returns the number of Force calls absorbed by another
// caller's in-flight flush (the group-commit win).
func (l *Log) ForcesCoalesced() uint64 { return l.coalesced.Load() }

// Scanner iterates over records in LSN order.
type Scanner struct {
	log  *Log
	next LSN
	end  LSN

	lsn LSN
	rec Record
	err error
}

// Scan returns a scanner positioned at from (use firstLSN via
// StartLSN() to scan the whole log) that stops at the current end.
func (l *Log) Scan(from LSN) *Scanner {
	if from == NilLSN {
		from = firstLSN
	}
	return &Scanner{log: l, next: from, end: l.End()}
}

// StartLSN returns the LSN of the first record any log can contain.
func StartLSN() LSN { return firstLSN }

// Next advances to the next record; it returns false at the end of the
// log or on error (check Err).
func (s *Scanner) Next() bool {
	if s.err != nil || s.next >= s.end {
		return false
	}
	rec, next, err := s.log.Read(s.next)
	if err != nil {
		s.err = err
		return false
	}
	s.lsn, s.rec, s.next = s.next, rec, next
	return true
}

// LSN returns the LSN of the current record.
func (s *Scanner) LSN() LSN { return s.lsn }

// Record returns the current record.
func (s *Scanner) Record() Record { return s.rec }

// Err returns the error that stopped the scan, if any.
func (s *Scanner) Err() error { return s.err }
