package wal

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"clientlog/internal/ident"
	"clientlog/internal/page"
)

func testRecords() []Record {
	t1 := ident.MakeTxnID(3, 7)
	return []Record{
		&Update{TxnID: t1, PrevLSN: 16, Page: 9, Slot: 2, PSN: 41,
			Op: OpOverwrite, Before: []byte("old"), After: []byte("new")},
		&Update{TxnID: t1, PrevLSN: 40, Page: 9, Slot: 3, PSN: 42, Op: OpInsert, After: []byte("born")},
		&Update{TxnID: t1, PrevLSN: 60, Page: 9, Slot: 2, PSN: 43,
			Op: OpOverwriteAt, Offset: 7, Before: []byte("pa"), After: []byte("rt")},
		&Update{TxnID: t1, PrevLSN: 80, Page: 9, Slot: 3, PSN: 43, Op: OpDelete, Before: []byte("born")},
		&Logical{TxnID: t1, PrevLSN: 120, Page: 4, Slot: 0, PSN: 5, Delta: -17},
		&CLR{TxnID: t1, PrevLSN: 160, Page: 9, Slot: 2, PSN: 44, Op: OpOverwrite,
			After: []byte("old"), UndoNext: 16},
		&CLR{TxnID: t1, PrevLSN: 200, Page: 4, Slot: 0, PSN: 6, Op: OpLogicalAdd, Delta: 17, UndoNext: NilLSN},
		&Commit{TxnID: t1, PrevLSN: 240},
		&Abort{TxnID: ident.MakeTxnID(3, 8), PrevLSN: 280},
		&Checkpoint{
			Active: []TxnInfo{{ID: t1, FirstLSN: 16, LastLSN: 240}},
			DPT:    []DPTEntry{{Page: 9, RedoLSN: 16}, {Page: 4, RedoLSN: 120}},
		},
		&Checkpoint{}, // empty tables must round-trip too
		&Callback{Object: page.ObjectID{Page: 9, Slot: 2}, Responder: 5, PSN: 77},
		&Replacement{Page: 9, PagePSN: 80, Entries: []ReplEntry{{Client: 3, PSN: 44}, {Client: 5, PSN: 78}}},
		&ServerCheckpoint{DCT: []DCTEntry{{Page: 9, Client: 3, PSN: 44, RedoLSN: 360}}},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, rec := range testRecords() {
		enc := Encode(rec)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", rec.Kind(), err)
		}
		if !reflect.DeepEqual(rec, dec) {
			t.Fatalf("%s: round trip mismatch:\n got %#v\nwant %#v", rec.Kind(), dec, rec)
		}
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	if _, err := Decode([]byte{}); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := Decode([]byte{200}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, rec := range testRecords() {
		enc := Encode(rec)
		for cut := 1; cut < len(enc); cut += 3 {
			if _, err := Decode(enc[:cut]); err == nil {
				t.Fatalf("%s truncated to %d bytes accepted", rec.Kind(), cut)
			}
		}
	}
}

func TestLogAppendScan(t *testing.T) {
	l := NewLog(NewMemStore(0))
	var lsns []LSN
	recs := testRecords()
	for _, r := range recs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(lsns) > 0 && lsn <= lsns[len(lsns)-1] {
			t.Fatalf("LSN not monotone: %v after %v", lsn, lsns[len(lsns)-1])
		}
		lsns = append(lsns, lsn)
	}
	// Random access.
	got, _, err := l.Read(lsns[4])
	if err != nil || got.Kind() != KindLogical {
		t.Fatalf("Read: %v %v", got, err)
	}
	// Full scan.
	sc := l.Scan(NilLSN)
	i := 0
	for sc.Next() {
		if sc.LSN() != lsns[i] {
			t.Fatalf("scan LSN %v, want %v", sc.LSN(), lsns[i])
		}
		if sc.Record().Kind() != recs[i].Kind() {
			t.Fatalf("scan kind %v, want %v", sc.Record().Kind(), recs[i].Kind())
		}
		i++
	}
	if sc.Err() != nil || i != len(recs) {
		t.Fatalf("scan stopped at %d/%d: %v", i, len(recs), sc.Err())
	}
	// Partial scan from the middle.
	sc = l.Scan(lsns[5])
	var n int
	for sc.Next() {
		n++
	}
	if n != len(recs)-5 {
		t.Fatalf("partial scan saw %d records, want %d", n, len(recs)-5)
	}
}

func TestMemStoreCrashLosesUnflushedTail(t *testing.T) {
	st := NewMemStore(0)
	l := NewLog(st)
	a, _ := l.Append(&Commit{TxnID: 1})
	if err := l.Force(a); err != nil {
		t.Fatal(err)
	}
	b, _ := l.Append(&Commit{TxnID: 2})
	st.Crash()
	if _, _, err := l.Read(a); err != nil {
		t.Fatalf("durable record lost: %v", err)
	}
	if _, _, err := l.Read(b); err == nil {
		t.Fatal("unflushed record survived crash")
	}
	// The log must accept appends again at the durable end.
	c, err := l.Append(&Commit{TxnID: 3})
	if err != nil || c != b {
		t.Fatalf("append after crash: lsn=%v err=%v (want %v)", c, err, b)
	}
}

func TestMemStoreCapacityAndReclaim(t *testing.T) {
	st := NewMemStore(256)
	l := NewLog(st)
	var lsns []LSN
	for {
		lsn, err := l.Append(&Update{TxnID: 1, Page: 1, Op: OpOverwrite,
			Before: make([]byte, 16), After: make([]byte, 16)})
		if errors.Is(err, ErrLogFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if len(lsns) < 2 {
		t.Fatalf("only %d records fit", len(lsns))
	}
	if err := l.ForceAll(); err != nil {
		t.Fatal(err)
	}
	// Reclaiming the first half must free space for new appends.
	if err := l.Reclaim(lsns[len(lsns)/2]); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Commit{TxnID: 1}); err != nil {
		t.Fatalf("append after reclaim: %v", err)
	}
	if _, _, err := l.Read(lsns[0]); !errors.Is(err, ErrReclaimed) {
		t.Fatalf("reclaimed read: %v", err)
	}
	if _, _, err := l.Read(lsns[len(lsns)-1]); err != nil {
		t.Fatalf("live read: %v", err)
	}
}

func TestFileStoreRoundTripAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "client.log")
	st, err := OpenFileStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLog(st)
	recs := testRecords()
	var lsns []LSN
	for _, r := range recs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.ForceAll(); err != nil {
		t.Fatal(err)
	}
	end := l.End()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenFileStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.End() != end {
		t.Fatalf("reopened end %v, want %v", st2.End(), end)
	}
	l2 := NewLog(st2)
	sc := l2.Scan(NilLSN)
	i := 0
	for sc.Next() {
		if !reflect.DeepEqual(sc.Record(), recs[i]) {
			t.Fatalf("record %d mismatch after reopen", i)
		}
		i++
	}
	if sc.Err() != nil || i != len(recs) {
		t.Fatalf("reopen scan: %d/%d, err=%v", i, len(recs), sc.Err())
	}
}

func TestFileStoreTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.log")
	st, err := OpenFileStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLog(st)
	a, _ := l.Append(&Commit{TxnID: 1})
	l.Append(&Commit{TxnID: 2})
	if err := l.ForceAll(); err != nil {
		t.Fatal(err)
	}
	nextAfterA := func() LSN {
		_, next, err := l.Read(a)
		if err != nil {
			t.Fatal(err)
		}
		return next
	}()
	st.Close()

	// Corrupt the second record's checksum byte on disk.
	f, err := openRW(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, int64(nextAfterA)+4); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := OpenFileStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.End() != nextAfterA {
		t.Fatalf("end after torn tail %v, want %v", st2.End(), nextAfterA)
	}
}

func TestLogMetrics(t *testing.T) {
	l := NewLog(NewMemStore(0))
	if _, err := l.AppendAndForce(&Commit{TxnID: 1}); err != nil {
		t.Fatal(err)
	}
	if l.RecordsAppended() != 1 || l.BytesAppended() == 0 || l.Forces() != 1 {
		t.Fatalf("metrics: recs=%d bytes=%d forces=%d",
			l.RecordsAppended(), l.BytesAppended(), l.Forces())
	}
}
