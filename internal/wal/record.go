// Package wal implements the write-ahead logs used by both tiers of the
// architecture: the private client logs that hold all transactional log
// records (Section 2 of the paper) and the server log that holds
// replacement records and server checkpoints (Section 3.1).
//
// A log is an append-only sequence of records addressed by log sequence
// numbers (LSNs).  As in the paper, the LSN of a record is its byte
// address in the log, so LSNs are monotonically increasing and a record
// can be fetched in O(1).  The WAL protocol rules — force before an
// updated page leaves the cache, force at commit — are enforced by the
// client and server engines in internal/core.
package wal

import (
	"fmt"

	"clientlog/internal/ident"
	"clientlog/internal/page"
)

// LSN is a log sequence number: the byte address of a record in its log
// file.  NilLSN (zero) means "no record"; real records never start at
// offset zero because every log begins with a preamble frame.
type LSN uint64

// NilLSN is the absent LSN, spelled NULL in the paper's tables.
const NilLSN LSN = 0

func (l LSN) String() string {
	if l == NilLSN {
		return "nil"
	}
	return fmt.Sprintf("@%d", uint64(l))
}

// Kind discriminates log record types.
type Kind uint8

const (
	// KindUpdate is a physical (before/after image) update record.
	KindUpdate Kind = iota + 1
	// KindLogical is a logical update record: the redo/undo actions are
	// operations (add delta), not byte images.  The paper contrasts its
	// support for logical logging with PCA's physical-only logging (§4.2).
	KindLogical
	// KindCLR is a compensation log record written during rollback; it is
	// redo-only and carries the UndoNext pointer of ARIES.
	KindCLR
	// KindCommit terminates a committed transaction.
	KindCommit
	// KindAbort terminates a rolled-back transaction.
	KindAbort
	// KindCheckpoint is a client fuzzy checkpoint: active transaction
	// table plus dirty page table (§3.2).
	KindCheckpoint
	// KindCallback is the callback log record of §3.1, written by the
	// client that triggers a callback for an exclusive lock.
	KindCallback
	// KindReplacement is the server's replacement log record, forced
	// before an updated page is written to disk (§3.1, Property 2).
	KindReplacement
	// KindServerCheckpoint is a server checkpoint carrying the DCT.
	KindServerCheckpoint
)

func (k Kind) String() string {
	switch k {
	case KindUpdate:
		return "update"
	case KindLogical:
		return "logical"
	case KindCLR:
		return "clr"
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	case KindCheckpoint:
		return "checkpoint"
	case KindCallback:
		return "callback"
	case KindReplacement:
		return "replacement"
	case KindServerCheckpoint:
		return "server-checkpoint"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// OpKind identifies the page operation described by an update record.
type OpKind uint8

const (
	// OpOverwrite is the mergeable same-size overwrite of §3.1.
	OpOverwrite OpKind = iota + 1
	// OpInsert creates an object (structural, page X lock required).
	OpInsert
	// OpDelete removes an object (structural).
	OpDelete
	// OpResize changes an object's size (structural, footnote 3).
	OpResize
	// OpLogicalAdd is the redo action of a logical record's CLR.
	OpLogicalAdd
	// OpOverwriteAt is the partial-object mergeable overwrite of §3.1
	// ("updates that simply overwrite parts of objects"); Offset locates
	// the fragment within the object.
	OpOverwriteAt
)

func (o OpKind) String() string {
	switch o {
	case OpOverwrite:
		return "overwrite"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpResize:
		return "resize"
	case OpLogicalAdd:
		return "logical-add"
	case OpOverwriteAt:
		return "overwrite-at"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Structural reports whether the operation alters the page structure and
// therefore required a page level exclusive lock.
func (o OpKind) Structural() bool { return o == OpInsert || o == OpDelete || o == OpResize }

// Record is a log record.  Every record reports its kind; transactional
// records additionally expose their transaction id and the backward
// chain pointer used for rollback.
type Record interface {
	Kind() Kind
	// Txn returns the owning transaction, or ident.NilTxn for
	// non-transactional records (checkpoints, callback and server
	// records).
	Txn() ident.TxnID
	// Prev returns the LSN of the transaction's previous record, or
	// NilLSN at the head of the chain or for non-transactional records.
	Prev() LSN
}

// Update is a physical update record.  PSN is the page sequence number
// the page had just before the update (Section 2), which is the value
// the redo tests of §3.3/§3.4 compare against.
type Update struct {
	TxnID   ident.TxnID
	PrevLSN LSN
	Page    page.ID
	Slot    uint16
	PSN     page.PSN
	Op      OpKind
	Offset  uint32 // fragment offset within the object (OpOverwriteAt)
	Before  []byte // undo image; nil for OpInsert
	After   []byte // redo image; nil for OpDelete
}

func (r *Update) Kind() Kind       { return KindUpdate }
func (r *Update) Txn() ident.TxnID { return r.TxnID }
func (r *Update) Prev() LSN        { return r.PrevLSN }
func (r *Update) Object() page.ObjectID {
	return page.ObjectID{Page: r.Page, Slot: r.Slot}
}

// Logical is a logical update record: the object is interpreted as a
// 64-bit counter and Delta is added to it.  Redo re-adds Delta, undo
// subtracts it (via a CLR whose Op is OpLogicalAdd with -Delta).
type Logical struct {
	TxnID   ident.TxnID
	PrevLSN LSN
	Page    page.ID
	Slot    uint16
	PSN     page.PSN
	Delta   int64
}

func (r *Logical) Kind() Kind       { return KindLogical }
func (r *Logical) Txn() ident.TxnID { return r.TxnID }
func (r *Logical) Prev() LSN        { return r.PrevLSN }
func (r *Logical) Object() page.ObjectID {
	return page.ObjectID{Page: r.Page, Slot: r.Slot}
}

// CLR is an ARIES compensation log record.  It describes the redo action
// that reverses one update and points (UndoNext) at the next record of
// the transaction still to be undone, making rollback restartable.
type CLR struct {
	TxnID    ident.TxnID
	PrevLSN  LSN
	Page     page.ID
	Slot     uint16
	PSN      page.PSN
	Op       OpKind // the compensating action
	Offset   uint32 // fragment offset (OpOverwriteAt)
	After    []byte // image installed by the compensation (if physical)
	Delta    int64  // compensating delta when Op == OpLogicalAdd
	UndoNext LSN
}

func (r *CLR) Kind() Kind       { return KindCLR }
func (r *CLR) Txn() ident.TxnID { return r.TxnID }
func (r *CLR) Prev() LSN        { return r.PrevLSN }
func (r *CLR) Object() page.ObjectID {
	return page.ObjectID{Page: r.Page, Slot: r.Slot}
}

// Commit terminates a committed transaction.  The commit record is
// forced to the private log; no pages or log records travel to the
// server (the paper's key advantage (1)).
type Commit struct {
	TxnID   ident.TxnID
	PrevLSN LSN
}

func (r *Commit) Kind() Kind       { return KindCommit }
func (r *Commit) Txn() ident.TxnID { return r.TxnID }
func (r *Commit) Prev() LSN        { return r.PrevLSN }

// Abort terminates a rolled-back transaction.
type Abort struct {
	TxnID   ident.TxnID
	PrevLSN LSN
}

func (r *Abort) Kind() Kind       { return KindAbort }
func (r *Abort) Txn() ident.TxnID { return r.TxnID }
func (r *Abort) Prev() LSN        { return r.PrevLSN }

// TxnInfo is one active-transaction-table entry in a client checkpoint.
type TxnInfo struct {
	ID       ident.TxnID
	FirstLSN LSN
	LastLSN  LSN
}

// DPTEntry is one dirty page table entry: the page and the LSN of the
// earliest log record that may need to be redone for it (§3.2).
type DPTEntry struct {
	Page    page.ID
	RedoLSN LSN
}

// Checkpoint is a client fuzzy checkpoint record.
type Checkpoint struct {
	Active []TxnInfo
	DPT    []DPTEntry
}

func (r *Checkpoint) Kind() Kind       { return KindCheckpoint }
func (r *Checkpoint) Txn() ident.TxnID { return ident.NilTxn }
func (r *Checkpoint) Prev() LSN        { return NilLSN }

// Callback is the callback log record of §3.1: written by the client
// that triggers a callback for an exclusive lock, it remembers which
// client responded and the PSN the page had when the responder sent it
// to the server.  Server restart recovery uses these records to
// reconstruct the cross-client update order of an object (§3.4).
type Callback struct {
	Object    page.ObjectID
	Responder ident.ClientID
	PSN       page.PSN
}

func (r *Callback) Kind() Kind       { return KindCallback }
func (r *Callback) Txn() ident.TxnID { return ident.NilTxn }
func (r *Callback) Prev() LSN        { return NilLSN }

// ReplEntry is one per-client entry of a replacement record: the PSN the
// server remembers for that client and page (Property 1).
type ReplEntry struct {
	Client ident.ClientID
	PSN    page.PSN
}

// Replacement is the server's replacement log record, forced to the
// server log just before an updated page is written in place to disk.
// Property 2 of §3.1: if the disk PSN of the page equals PagePSN, the
// Entries determine exactly which client updates the disk copy holds.
type Replacement struct {
	Page    page.ID
	PagePSN page.PSN
	Entries []ReplEntry
}

func (r *Replacement) Kind() Kind       { return KindReplacement }
func (r *Replacement) Txn() ident.TxnID { return ident.NilTxn }
func (r *Replacement) Prev() LSN        { return NilLSN }

// DCTEntry is one dirty-client-table entry in a server checkpoint
// (§3.2): page, client, the PSN of the page the last time it was
// received from that client, and the LSN of the first replacement
// record written for the page.
type DCTEntry struct {
	Page    page.ID
	Client  ident.ClientID
	PSN     page.PSN
	RedoLSN LSN
}

// ServerCheckpoint is a server checkpoint record carrying the DCT.
type ServerCheckpoint struct {
	DCT []DCTEntry
}

func (r *ServerCheckpoint) Kind() Kind       { return KindServerCheckpoint }
func (r *ServerCheckpoint) Txn() ident.TxnID { return ident.NilTxn }
func (r *ServerCheckpoint) Prev() LSN        { return NilLSN }
