package wal

import (
	"math/rand"
	"os"
	"reflect"
	"testing"
	"testing/quick"

	"clientlog/internal/ident"
	"clientlog/internal/page"
)

func openRW(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR, 0o644)
}

func randBytes(r *rand.Rand, max int) []byte {
	n := r.Intn(max + 1)
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	r.Read(b)
	return b
}

func randRecord(r *rand.Rand) Record {
	txn := ident.MakeTxnID(ident.ClientID(r.Uint32()), r.Uint32())
	switch r.Intn(9) {
	case 0:
		return &Update{TxnID: txn, PrevLSN: LSN(r.Uint64()), Page: page.ID(r.Uint64()),
			Slot: uint16(r.Uint32()), PSN: page.PSN(r.Uint64()),
			Op: OpKind(1 + r.Intn(4)), Offset: r.Uint32(),
			Before: randBytes(r, 64), After: randBytes(r, 64)}
	case 1:
		return &Logical{TxnID: txn, PrevLSN: LSN(r.Uint64()), Page: page.ID(r.Uint64()),
			Slot: uint16(r.Uint32()), PSN: page.PSN(r.Uint64()), Delta: int64(r.Uint64())}
	case 2:
		return &CLR{TxnID: txn, PrevLSN: LSN(r.Uint64()), Page: page.ID(r.Uint64()),
			Slot: uint16(r.Uint32()), PSN: page.PSN(r.Uint64()),
			Op: OpKind(1 + r.Intn(6)), Offset: r.Uint32(), After: randBytes(r, 64),
			Delta: int64(r.Uint64()), UndoNext: LSN(r.Uint64())}
	case 3:
		return &Commit{TxnID: txn, PrevLSN: LSN(r.Uint64())}
	case 4:
		return &Abort{TxnID: txn, PrevLSN: LSN(r.Uint64())}
	case 5:
		cp := &Checkpoint{}
		for i := 0; i < r.Intn(5); i++ {
			cp.Active = append(cp.Active, TxnInfo{
				ID: txn, FirstLSN: LSN(r.Uint64()), LastLSN: LSN(r.Uint64())})
		}
		for i := 0; i < r.Intn(8); i++ {
			cp.DPT = append(cp.DPT, DPTEntry{Page: page.ID(r.Uint64()), RedoLSN: LSN(r.Uint64())})
		}
		return cp
	case 6:
		return &Callback{
			Object:    page.ObjectID{Page: page.ID(r.Uint64()), Slot: uint16(r.Uint32())},
			Responder: ident.ClientID(r.Uint32()), PSN: page.PSN(r.Uint64())}
	case 7:
		rep := &Replacement{Page: page.ID(r.Uint64()), PagePSN: page.PSN(r.Uint64())}
		for i := 0; i < r.Intn(6); i++ {
			rep.Entries = append(rep.Entries, ReplEntry{
				Client: ident.ClientID(r.Uint32()), PSN: page.PSN(r.Uint64())})
		}
		return rep
	default:
		sc := &ServerCheckpoint{}
		for i := 0; i < r.Intn(6); i++ {
			sc.DCT = append(sc.DCT, DCTEntry{Page: page.ID(r.Uint64()),
				Client: ident.ClientID(r.Uint32()), PSN: page.PSN(r.Uint64()),
				RedoLSN: LSN(r.Uint64())})
		}
		return sc
	}
}

func TestPropCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rec := randRecord(r)
		dec, err := Decode(Encode(rec))
		return err == nil && reflect.DeepEqual(rec, dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropScanSeesEveryAppendedRecord(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := NewLog(NewMemStore(0))
		n := 1 + r.Intn(40)
		var want []Record
		for i := 0; i < n; i++ {
			rec := randRecord(r)
			if _, err := l.Append(rec); err != nil {
				return false
			}
			want = append(want, rec)
		}
		sc := l.Scan(NilLSN)
		i := 0
		for sc.Next() {
			if i >= len(want) || !reflect.DeepEqual(sc.Record(), want[i]) {
				return false
			}
			i++
		}
		return sc.Err() == nil && i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropCrashKeepsDurablePrefix(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := NewMemStore(0)
		l := NewLog(st)
		var lsns []LSN
		var forced LSN
		for i := 0; i < 1+r.Intn(30); i++ {
			lsn, err := l.Append(randRecord(r))
			if err != nil {
				return false
			}
			lsns = append(lsns, lsn)
			if r.Intn(3) == 0 {
				if err := l.Force(lsn); err != nil {
					return false
				}
				forced = lsn
			}
		}
		st.Crash()
		for _, lsn := range lsns {
			_, _, err := l.Read(lsn)
			if lsn <= forced && err != nil {
				return false // durable record lost
			}
			if lsn > forced && err == nil {
				return false // volatile record survived
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
