package wal

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Store is the byte-level log device under a Log.  Records are framed by
// the Log; the store only sees opaque payloads addressed by the LSN of
// their frame.
//
// Two implementations exist: MemStore, whose "disk" survives a simulated
// crash while the unflushed tail is lost (used by tests, benchmarks and
// the simulator), and FileStore, backed by a real file (used by the cmd/
// tools and the examples).
type Store interface {
	// Append stores a payload and returns the LSN assigned to it.
	Append(payload []byte) (LSN, error)
	// Flush makes every record with LSN <= upTo durable.
	Flush(upTo LSN) error
	// Durable returns the LSN boundary below which records survive a
	// crash (exclusive: every record starting before it is durable).
	Durable() LSN
	// End returns the LSN that the next appended record will receive.
	End() LSN
	// ReadAt returns the payload of the record at lsn and the LSN of the
	// following record.
	ReadAt(lsn LSN) (payload []byte, next LSN, err error)
	// Reclaim tells the store that no record before upTo will ever be
	// read again, allowing a bounded (circular) log to reuse the space.
	Reclaim(upTo LSN) error
	// Horizon returns the earliest LSN still readable.
	Horizon() LSN
	// Close releases resources.
	Close() error
}

// Store errors.
var (
	ErrLogFull    = errors.New("wal: log capacity exhausted")
	ErrOutOfRange = errors.New("wal: LSN out of range")
	ErrReclaimed  = errors.New("wal: LSN already reclaimed")
)

// HeadroomAppender is an optional Store capability backing the client's
// undo reservation (§3.6 on bounded logs): the append is refused with
// ErrLogFull unless headroom bytes of capacity remain free after it, so
// a transaction can always log the CLRs and the abort record needed to
// roll itself back even when forward appends are being refused.  Stores
// that do not track capacity simply don't implement it.
type HeadroomAppender interface {
	AppendHeadroom(payload []byte, headroom uint64) (LSN, error)
}

// firstLSN is the LSN of the first real record.  Offset zero is reserved
// so that NilLSN never collides with a record address.
const firstLSN LSN = 16

// MemStore is an in-memory Store with crash semantics: Crash discards
// the records that were appended but never flushed, exactly what losing
// the contents of an OS buffer cache would do.  A non-zero capacity
// bounds the live log span (End - reclaim horizon) to model the bounded
// client log disks of §3.6.
type MemStore struct {
	mu        sync.Mutex
	recs      []memRec // ascending by lsn
	end       LSN
	durable   LSN
	reclaimed LSN
	capacity  uint64 // 0 = unbounded

	// flushLatency is the simulated fsync time (nanoseconds).  The sleep
	// happens outside mu so that what serializes flushes is the caller's
	// locking, not the model: the Log layer's group commit coalesces
	// concurrent forces onto one Flush and therefore one sleep.
	flushLatency atomic.Int64
}

type memRec struct {
	lsn     LSN
	payload []byte
}

// NewMemStore returns an empty in-memory store.  capacity bounds the
// live log span in bytes; zero means unbounded.
func NewMemStore(capacity uint64) *MemStore {
	return &MemStore{end: firstLSN, durable: firstLSN, reclaimed: firstLSN, capacity: capacity}
}

// Append implements Store.
func (m *MemStore) Append(payload []byte) (LSN, error) {
	return m.AppendHeadroom(payload, 0)
}

// AppendHeadroom implements HeadroomAppender.
func (m *MemStore) AppendHeadroom(payload []byte, headroom uint64) (LSN, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sz := uint64(len(payload)) + 8 // frame accounting
	if m.capacity != 0 && uint64(m.end)+sz+headroom-uint64(m.reclaimed) > m.capacity {
		return NilLSN, ErrLogFull
	}
	lsn := m.end
	p := make([]byte, len(payload))
	copy(p, payload)
	m.recs = append(m.recs, memRec{lsn: lsn, payload: p})
	m.end += LSN(sz)
	return lsn, nil
}

// SetFlushLatency makes every subsequent Flush take at least d of wall
// time, modeling the fsync cost of the disk this store stands in for.
func (m *MemStore) SetFlushLatency(d time.Duration) { m.flushLatency.Store(int64(d)) }

// Flush implements Store.
func (m *MemStore) Flush(upTo LSN) error {
	if d := m.flushLatency.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if upTo >= m.end {
		m.durable = m.end
		return nil
	}
	// Durability is frame-aligned: everything up to and including the
	// record containing upTo becomes durable.
	i := m.find(upTo)
	var horizon LSN
	if i < len(m.recs) {
		horizon = m.recs[i].lsn + LSN(len(m.recs[i].payload)) + 8
	} else {
		horizon = m.end
	}
	if horizon > m.durable {
		m.durable = horizon
	}
	return nil
}

// Durable implements Store.
func (m *MemStore) Durable() LSN {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.durable
}

// End implements Store.
func (m *MemStore) End() LSN {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.end
}

// find returns the index of the record whose frame contains lsn, or
// len(recs) when lsn is at or beyond the end.
func (m *MemStore) find(lsn LSN) int {
	return sort.Search(len(m.recs), func(i int) bool {
		return m.recs[i].lsn+LSN(len(m.recs[i].payload))+8 > lsn
	})
}

// ReadAt implements Store.
func (m *MemStore) ReadAt(lsn LSN) ([]byte, LSN, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if lsn < m.reclaimed {
		return nil, NilLSN, ErrReclaimed
	}
	if lsn >= m.end {
		return nil, NilLSN, ErrOutOfRange
	}
	i := m.find(lsn)
	if i >= len(m.recs) || m.recs[i].lsn != lsn {
		return nil, NilLSN, ErrOutOfRange
	}
	r := m.recs[i]
	out := make([]byte, len(r.payload))
	copy(out, r.payload)
	return out, r.lsn + LSN(len(r.payload)) + 8, nil
}

// Reclaim implements Store.
func (m *MemStore) Reclaim(upTo LSN) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if upTo <= m.reclaimed {
		return nil
	}
	if upTo > m.durable {
		upTo = m.durable
	}
	i := m.find(upTo)
	// Only whole records strictly below upTo are dropped.
	j := 0
	for j < i && m.recs[j].lsn+LSN(len(m.recs[j].payload))+8 <= upTo {
		j++
	}
	m.recs = append([]memRec(nil), m.recs[j:]...)
	if j > 0 {
		if len(m.recs) > 0 {
			m.reclaimed = m.recs[0].lsn
		} else {
			m.reclaimed = m.end
		}
	}
	return nil
}

// Horizon implements Store.
func (m *MemStore) Horizon() LSN {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reclaimed
}

// Crash simulates a machine crash: records beyond the durable horizon
// are lost; everything else (the "disk") survives.
func (m *MemStore) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	i := sort.Search(len(m.recs), func(i int) bool { return m.recs[i].lsn >= m.durable })
	m.recs = m.recs[:i]
	m.end = m.durable
}

// Close implements Store.
func (m *MemStore) Close() error { return nil }

// LiveBytes returns the bytes currently occupied between the reclaim
// horizon and the end of the log; the §3.6 log-space manager watches
// this against the capacity.
func (m *MemStore) LiveBytes() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return uint64(m.end - m.reclaimed)
}

// Capacity returns the configured capacity (0 = unbounded).
func (m *MemStore) Capacity() uint64 { return m.capacity }
