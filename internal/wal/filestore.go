package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// FileStore is a Store backed by a real append-only file.  Each record
// is framed as
//
//	len(4) crc32(4) payload
//
// and the frame's byte offset is the record's LSN.  Opening an existing
// file scans forward from the preamble and stops at the first frame with
// a bad length or checksum, which recovers the end of log after a crash
// that tore the final write.
type FileStore struct {
	mu       sync.Mutex
	f        *os.File
	end      LSN
	durable  LSN
	capacity uint64
	reclaim  LSN
}

const fileMagic = "CLOGWAL1"

// OpenFileStore opens (or creates) a log file.  capacity bounds the live
// log span in bytes; zero means unbounded.  Reclaimed space is accounted
// logically; the file itself is append-only (a production deployment
// would segment and delete files, which does not change the protocol
// behaviour this repository studies).
func OpenFileStore(path string, capacity uint64) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &FileStore{f: f, capacity: capacity, reclaim: firstLSN}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		var pre [int(firstLSN)]byte
		copy(pre[:], fileMagic)
		if _, err := f.WriteAt(pre[:], 0); err != nil {
			f.Close()
			return nil, err
		}
		s.end = firstLSN
	} else {
		end, err := scanEnd(f, st.Size())
		if err != nil {
			f.Close()
			return nil, err
		}
		s.end = end
		// Drop any torn tail so future appends start at a clean frame.
		if err := f.Truncate(int64(end)); err != nil {
			f.Close()
			return nil, err
		}
	}
	s.durable = s.end
	return s, nil
}

// scanEnd walks frames from the preamble until the first invalid frame
// and returns the LSN of the log end.
func scanEnd(f *os.File, size int64) (LSN, error) {
	var hdr [int(firstLSN)]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return 0, fmt.Errorf("wal: reading preamble: %w", err)
	}
	if string(hdr[:len(fileMagic)]) != fileMagic {
		return 0, fmt.Errorf("wal: %q is not a log file", f.Name())
	}
	off := int64(firstLSN)
	var fh [8]byte
	for off+8 <= size {
		if _, err := f.ReadAt(fh[:], off); err != nil {
			break
		}
		n := binary.LittleEndian.Uint32(fh[0:])
		crc := binary.LittleEndian.Uint32(fh[4:])
		if n == 0 || off+8+int64(n) > size {
			break
		}
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, off+8); err != nil {
			break
		}
		if crc32.ChecksumIEEE(buf) != crc {
			break
		}
		off += 8 + int64(n)
	}
	return LSN(off), nil
}

// Append implements Store.
func (s *FileStore) Append(payload []byte) (LSN, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sz := uint64(len(payload)) + 8
	if s.capacity != 0 && uint64(s.end)+sz-uint64(s.reclaim) > s.capacity {
		return NilLSN, ErrLogFull
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if _, err := s.f.WriteAt(frame, int64(s.end)); err != nil {
		return NilLSN, err
	}
	lsn := s.end
	s.end += LSN(sz)
	return lsn, nil
}

// Flush implements Store: it fsyncs the file.
func (s *FileStore) Flush(upTo LSN) error {
	s.mu.Lock()
	if upTo <= s.durable {
		s.mu.Unlock()
		return nil
	}
	end := s.end
	s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.mu.Lock()
	if end > s.durable {
		s.durable = end
	}
	s.mu.Unlock()
	return nil
}

// Durable implements Store.
func (s *FileStore) Durable() LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durable
}

// End implements Store.
func (s *FileStore) End() LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// ReadAt implements Store.
func (s *FileStore) ReadAt(lsn LSN) ([]byte, LSN, error) {
	s.mu.Lock()
	end := s.end
	rec := s.reclaim
	s.mu.Unlock()
	if lsn < rec {
		return nil, NilLSN, ErrReclaimed
	}
	if lsn+8 > end {
		return nil, NilLSN, ErrOutOfRange
	}
	var fh [8]byte
	if _, err := s.f.ReadAt(fh[:], int64(lsn)); err != nil {
		return nil, NilLSN, err
	}
	n := binary.LittleEndian.Uint32(fh[0:])
	crc := binary.LittleEndian.Uint32(fh[4:])
	if LSN(uint64(lsn)+8+uint64(n)) > end {
		return nil, NilLSN, ErrOutOfRange
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(s.f, int64(lsn)+8, int64(n)), buf); err != nil {
		return nil, NilLSN, err
	}
	if crc32.ChecksumIEEE(buf) != crc {
		return nil, NilLSN, fmt.Errorf("wal: bad checksum at %s", lsn)
	}
	return buf, lsn + LSN(8+n), nil
}

// Reclaim implements Store (logical accounting only; see OpenFileStore).
func (s *FileStore) Reclaim(upTo LSN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if upTo > s.durable {
		upTo = s.durable
	}
	if upTo > s.reclaim {
		s.reclaim = upTo
	}
	return nil
}

// Horizon implements Store.
func (s *FileStore) Horizon() LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reclaim
}

// Close implements Store.
func (s *FileStore) Close() error { return s.f.Close() }
