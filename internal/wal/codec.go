package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"clientlog/internal/ident"
	"clientlog/internal/page"
)

// ErrCorrupt reports a record payload that cannot be decoded.
var ErrCorrupt = errors.New("wal: corrupt record")

// Encode serializes a record to the byte payload stored in the log.
// The first byte is the Kind; the rest is kind-specific little-endian
// fields with u32-length-prefixed byte strings.
func Encode(r Record) []byte {
	var w writer
	w.u8(uint8(r.Kind()))
	switch rec := r.(type) {
	case *Update:
		w.u64(uint64(rec.TxnID))
		w.u64(uint64(rec.PrevLSN))
		w.u64(uint64(rec.Page))
		w.u16(rec.Slot)
		w.u64(uint64(rec.PSN))
		w.u8(uint8(rec.Op))
		w.u32(rec.Offset)
		w.bytes(rec.Before)
		w.bytes(rec.After)
	case *Logical:
		w.u64(uint64(rec.TxnID))
		w.u64(uint64(rec.PrevLSN))
		w.u64(uint64(rec.Page))
		w.u16(rec.Slot)
		w.u64(uint64(rec.PSN))
		w.u64(uint64(rec.Delta))
	case *CLR:
		w.u64(uint64(rec.TxnID))
		w.u64(uint64(rec.PrevLSN))
		w.u64(uint64(rec.Page))
		w.u16(rec.Slot)
		w.u64(uint64(rec.PSN))
		w.u8(uint8(rec.Op))
		w.u32(rec.Offset)
		w.bytes(rec.After)
		w.u64(uint64(rec.Delta))
		w.u64(uint64(rec.UndoNext))
	case *Commit:
		w.u64(uint64(rec.TxnID))
		w.u64(uint64(rec.PrevLSN))
	case *Abort:
		w.u64(uint64(rec.TxnID))
		w.u64(uint64(rec.PrevLSN))
	case *Checkpoint:
		w.u32(uint32(len(rec.Active)))
		for _, t := range rec.Active {
			w.u64(uint64(t.ID))
			w.u64(uint64(t.FirstLSN))
			w.u64(uint64(t.LastLSN))
		}
		w.u32(uint32(len(rec.DPT)))
		for _, d := range rec.DPT {
			w.u64(uint64(d.Page))
			w.u64(uint64(d.RedoLSN))
		}
	case *Callback:
		w.u64(uint64(rec.Object.Page))
		w.u16(rec.Object.Slot)
		w.u32(uint32(rec.Responder))
		w.u64(uint64(rec.PSN))
	case *Replacement:
		w.u64(uint64(rec.Page))
		w.u64(uint64(rec.PagePSN))
		w.u32(uint32(len(rec.Entries)))
		for _, e := range rec.Entries {
			w.u32(uint32(e.Client))
			w.u64(uint64(e.PSN))
		}
	case *ServerCheckpoint:
		w.u32(uint32(len(rec.DCT)))
		for _, e := range rec.DCT {
			w.u64(uint64(e.Page))
			w.u32(uint32(e.Client))
			w.u64(uint64(e.PSN))
			w.u64(uint64(e.RedoLSN))
		}
	default:
		panic(fmt.Sprintf("wal.Encode: unknown record type %T", r))
	}
	return w.buf
}

// Decode parses a payload produced by Encode.
func Decode(data []byte) (Record, error) {
	r := reader{buf: data}
	kind := Kind(r.u8())
	switch kind {
	case KindUpdate:
		rec := &Update{
			TxnID:   ident.TxnID(r.u64()),
			PrevLSN: LSN(r.u64()),
			Page:    page.ID(r.u64()),
			Slot:    r.u16(),
			PSN:     page.PSN(r.u64()),
			Op:      OpKind(r.u8()),
		}
		rec.Offset = r.u32()
		rec.Before = r.bytes()
		rec.After = r.bytes()
		return rec, r.err()
	case KindLogical:
		rec := &Logical{
			TxnID:   ident.TxnID(r.u64()),
			PrevLSN: LSN(r.u64()),
			Page:    page.ID(r.u64()),
			Slot:    r.u16(),
			PSN:     page.PSN(r.u64()),
			Delta:   int64(r.u64()),
		}
		return rec, r.err()
	case KindCLR:
		rec := &CLR{
			TxnID:   ident.TxnID(r.u64()),
			PrevLSN: LSN(r.u64()),
			Page:    page.ID(r.u64()),
			Slot:    r.u16(),
			PSN:     page.PSN(r.u64()),
			Op:      OpKind(r.u8()),
		}
		rec.Offset = r.u32()
		rec.After = r.bytes()
		rec.Delta = int64(r.u64())
		rec.UndoNext = LSN(r.u64())
		return rec, r.err()
	case KindCommit:
		rec := &Commit{TxnID: ident.TxnID(r.u64()), PrevLSN: LSN(r.u64())}
		return rec, r.err()
	case KindAbort:
		rec := &Abort{TxnID: ident.TxnID(r.u64()), PrevLSN: LSN(r.u64())}
		return rec, r.err()
	case KindCheckpoint:
		rec := &Checkpoint{}
		n := r.u32()
		if n > uint32(len(data)) {
			return nil, ErrCorrupt
		}
		for i := uint32(0); i < n && r.e == nil; i++ {
			rec.Active = append(rec.Active, TxnInfo{
				ID:       ident.TxnID(r.u64()),
				FirstLSN: LSN(r.u64()),
				LastLSN:  LSN(r.u64()),
			})
		}
		m := r.u32()
		if m > uint32(len(data)) {
			return nil, ErrCorrupt
		}
		for i := uint32(0); i < m && r.e == nil; i++ {
			rec.DPT = append(rec.DPT, DPTEntry{Page: page.ID(r.u64()), RedoLSN: LSN(r.u64())})
		}
		return rec, r.err()
	case KindCallback:
		rec := &Callback{}
		rec.Object.Page = page.ID(r.u64())
		rec.Object.Slot = r.u16()
		rec.Responder = ident.ClientID(r.u32())
		rec.PSN = page.PSN(r.u64())
		return rec, r.err()
	case KindReplacement:
		rec := &Replacement{Page: page.ID(r.u64()), PagePSN: page.PSN(r.u64())}
		n := r.u32()
		if n > uint32(len(data)) {
			return nil, ErrCorrupt
		}
		for i := uint32(0); i < n && r.e == nil; i++ {
			rec.Entries = append(rec.Entries, ReplEntry{
				Client: ident.ClientID(r.u32()),
				PSN:    page.PSN(r.u64()),
			})
		}
		return rec, r.err()
	case KindServerCheckpoint:
		rec := &ServerCheckpoint{}
		n := r.u32()
		if n > uint32(len(data)) {
			return nil, ErrCorrupt
		}
		for i := uint32(0); i < n && r.e == nil; i++ {
			rec.DCT = append(rec.DCT, DCTEntry{
				Page:    page.ID(r.u64()),
				Client:  ident.ClientID(r.u32()),
				PSN:     page.PSN(r.u64()),
				RedoLSN: LSN(r.u64()),
			})
		}
		return rec, r.err()
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
}

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

type reader struct {
	buf []byte
	off int
	e   error
}

func (r *reader) fail() {
	if r.e == nil {
		r.e = ErrCorrupt
	}
}

func (r *reader) u8() uint8 {
	if r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.off+2 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.e != nil || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += n
	return out
}

func (r *reader) err() error { return r.e }
