// Package msg defines the client-server protocol of the system: every
// request and reply exchanged between the two tiers, and the transport
// interfaces the engines in internal/core are written against.
//
// Two transports implement these interfaces: the in-process loopback
// transport in this package (used by tests, the simulator and the
// benchmarks; it injects configurable latency and counts messages and
// bytes, which several experiments report), and the TCP transport in
// internal/netrpc (used by the cmd/ tools).
package msg

import (
	"errors"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/obs/span"
	"clientlog/internal/page"
	"clientlog/internal/wal"
)

// ShipReason says why a client sends a page to the server.
type ShipReason uint8

const (
	// ShipReplace: the dirty page was evicted from the client cache.
	ShipReplace ShipReason = iota + 1
	// ShipCallback: the page travels in response to a callback.
	ShipCallback
	// ShipCommit: commit-time page shipping (Versant-style baseline
	// only; the paper's protocol never ships pages at commit).
	ShipCommit
	// ShipRecovery: a page recovered by a client during server restart
	// recovery (§3.4) returns to the server.
	ShipRecovery
)

// RegisterReq introduces a client to the server.  Recover is set when a
// previously crashed client reconnects to run restart recovery.
type RegisterReq struct {
	// ID is zero for a fresh client (the server assigns one) or the
	// previous id of a recovering client.
	ID      ident.ClientID
	Recover bool
}

// RegisterReply carries the assigned id and, for a recovering client,
// the exclusive locks the server retained on its behalf (§3.3).  After
// a complex crash (§3.5) the server lost its lock tables too and HeldX
// is empty; the client then relies purely on the PSN tests.
type RegisterReply struct {
	ID       ident.ClientID
	PageSize int
	HeldX    []lock.Holding
}

// DCTRow is the client-visible projection of a server DCT entry.
type DCTRow struct {
	Page page.ID
	PSN  page.PSN
}

// LockReq asks the GLM for a lock.  CachedPSN carries the PSN of the
// client's cached copy when it requests an exclusive lock on an object
// of a cached page; per §3.2 the server stores that PSN in the new DCT
// entry (footnote 4).
type LockReq struct {
	Client     ident.ClientID
	Name       lock.Name
	Mode       lock.Mode
	PreferPage bool
	// Upgrade says the client still caches a lock covering Name and is
	// strengthening it; upgrades bypass the GLM's fairness ordering and
	// the server's callback-application barrier (both would deadlock an
	// upgrade against a callback waiting for the upgrader's own
	// transaction).
	Upgrade   bool
	HasCached bool
	CachedPSN page.PSN
	// Trace carries the requester's causal-tracing context so the
	// server can attribute its GLM wait and callback round trips to the
	// originating transaction.  Zero (the common case) costs nothing on
	// the wire.
	Trace span.Context
}

// TraceContext exposes the request's trace context to the transports.
func (r LockReq) TraceContext() span.Context { return r.Trace }

// LockItem is one element of a LockBatchReq: the per-lock fields of a
// LockReq without the client identity and trace context, which are
// shared by the whole batch.
type LockItem struct {
	Name       lock.Name
	Mode       lock.Mode
	PreferPage bool
	Upgrade    bool
	HasCached  bool
	CachedPSN  page.PSN
}

// LockBatchReq acquires several locks in one request/reply exchange.
// The server acquires the items in its own canonical order (ascending
// page, page-level before object-level, then ascending slot) regardless
// of the order sent, so two clients issuing overlapping batches cannot
// deadlock on batch-internal ordering; replies come back in the
// caller's order.  Items fail independently: one deadlocked item does
// not poison the grants before or after it.
type LockBatchReq struct {
	Client ident.ClientID
	Items  []LockItem
	Trace  span.Context
}

// TraceContext exposes the request's trace context to the transports.
func (r LockBatchReq) TraceContext() span.Context { return r.Trace }

// LockBatchReply carries one slot per requested item, in request order.
// Errs[i] is the empty string for a granted item and the error text
// otherwise (use LockErrFromString to restore the typed lock errors);
// the RPC itself only fails on transport errors, so partial grants
// survive — crucial for exactly-once retries, where the reply cache
// must be able to replay a half-successful batch verbatim.
type LockBatchReply struct {
	Grants []LockReply
	Errs   []string
}

// FetchBatchReq fetches several pages in one exchange.
type FetchBatchReq struct {
	Client ident.ClientID
	Pages  []page.ID
	Trace  span.Context
}

// TraceContext exposes the request's trace context to the transports.
func (r FetchBatchReq) TraceContext() span.Context { return r.Trace }

// FetchBatchReply carries one slot per requested page, in request
// order; a failed page has its error text in Errs[i] and a nil image.
type FetchBatchReply struct {
	Images  [][]byte
	DCTPSNs []page.PSN
	Errs    []string
}

// LockErrFromString restores the typed lock errors that travelled as
// strings inside a batch reply, so errors.Is keeps working at the
// client regardless of transport.
func LockErrFromString(s string) error {
	if s == "" {
		return nil
	}
	switch s {
	case lock.ErrDeadlock.Error():
		return lock.ErrDeadlock
	case lock.ErrTimeout.Error():
		return lock.ErrTimeout
	case lock.ErrStopped.Error():
		return lock.ErrStopped
	default:
		return errors.New(s)
	}
}

// CallbackOrigin reports, for an exclusive-lock grant that required a
// callback, which client responded and the PSN the page had when the
// responder sent it to the server.  The requester writes one callback
// log record per origin (§3.1).
type CallbackOrigin struct {
	Object    page.ObjectID
	Responder ident.ClientID
	PSN       page.PSN
}

// LockReply reports the actual grant (possibly page-level under
// adaptive granularity) and any callback origins.
type LockReply struct {
	Name    lock.Name
	Mode    lock.Mode
	Origins []CallbackOrigin
}

// UnlockAction discriminates the lock-downgrade messages a client sends
// when it responds to callbacks or drops cached locks.
type UnlockAction uint8

const (
	// ActionRelease removes the lock.
	ActionRelease UnlockAction = iota + 1
	// ActionDowngrade demotes X to S.
	ActionDowngrade
	// ActionDeescalate replaces a page lock with object locks.
	ActionDeescalate
)

// UnlockReq updates the GLM when the client gives up cached locks.
type UnlockReq struct {
	Client ident.ClientID
	Action UnlockAction
	Name   lock.Name
	// Objs are the object locks that replace the page lock when Action
	// is ActionDeescalate.
	Objs []lock.ObjLock
}

// FetchReq asks for a page.  Recovery is set during client restart
// recovery; the client then installs the DCTPSN from the reply on the
// fetched page (§3.3).  During normal processing the client ignores it.
type FetchReq struct {
	Client   ident.ClientID
	Page     page.ID
	Recovery bool
	Trace    span.Context
}

// TraceContext exposes the request's trace context to the transports.
func (r FetchReq) TraceContext() span.Context { return r.Trace }

// FetchReply carries the page image and the PSN stored in the DCT entry
// for this client and page (NULL/zero when absent).
type FetchReply struct {
	Image  []byte
	DCTPSN page.PSN
}

// ShipReq sends a page image to the server.
type ShipReq struct {
	Client ident.ClientID
	Reason ShipReason
	Image  []byte
	Trace  span.Context
}

// TraceContext exposes the request's trace context to the transports.
func (r ShipReq) TraceContext() span.Context { return r.Trace }

// ForceReq asks the server to force a page to disk; the client's log
// space manager issues it when its private log fills up (§3.6).
type ForceReq struct {
	Client ident.ClientID
	Page   page.ID
	Trace  span.Context
}

// TraceContext exposes the request's trace context to the transports.
func (r ForceReq) TraceContext() span.Context { return r.Trace }

// ForceReply reports the PSN of the copy that reached disk (zero when
// nothing was cached to force).  Flush acknowledgments carry the same
// PSN: a client may only drop its DPT entry when the forced PSN covers
// its latest shipped copy — a late ack for an older force must not.
type ForceReply struct {
	PSN page.PSN
}

// AllocReq asks the server to allocate a fresh page; the reply grants
// the client an exclusive page lock on it.
type AllocReq struct {
	Client ident.ClientID
}

// FreeReq deallocates a page.
type FreeReq struct {
	Client ident.ClientID
	Page   page.ID
}

// CommitShipReq implements the ARIES/CSA-style baseline: the client
// ships its transaction's log records (and optionally its dirty pages,
// Versant-style) to the server at commit and the server forces them to
// its own log.  The paper's protocol never sends this message.
type CommitShipReq struct {
	Client  ident.ClientID
	Txn     ident.TxnID
	Records [][]byte // encoded wal records
	Pages   [][]byte // page images (ShipPagesAtCommit mode)
	Trace   span.Context
}

// TraceContext exposes the request's trace context to the transports.
func (r CommitShipReq) TraceContext() span.Context { return r.Trace }

// TokenReq requests the update token of a page (update-privilege
// baseline, §3.1); the reply carries the page as last seen by the
// previous owner.
type TokenReq struct {
	Client ident.ClientID
	Page   page.ID
	Trace  span.Context
}

// TraceContext exposes the request's trace context to the transports.
func (r TokenReq) TraceContext() span.Context { return r.Trace }

// TokenReply carries the current page image, which travels with the
// token.
type TokenReply struct {
	Image []byte
}

// RecoveryFetchReq is the §3.4 step-3 fetch: while redoing its log a
// recovering client meets a callback record for an object absent from
// its CallBack_P list and must fetch the page as of (CID, PSN).  The
// server forwards the request to CID when CID's recovery has not yet
// progressed past PSN.
type RecoveryFetchReq struct {
	Client ident.ClientID
	Page   page.ID
	CID    ident.ClientID
	PSN    page.PSN
}

// LogOpKind discriminates remote-log operations (diskless clients).
type LogOpKind uint8

const (
	// LogAppend appends a record payload.
	LogAppend LogOpKind = iota + 1
	// LogFlush forces the log through LSN.
	LogFlush
	// LogRead reads the record at LSN.
	LogRead
	// LogEnd queries the next-append LSN.
	LogEnd
	// LogDurable queries the durability horizon.
	LogDurable
	// LogReclaim releases space below LSN.
	LogReclaim
	// LogHorizon queries the earliest readable LSN.
	LogHorizon
	// LogAppendBatch appends several record payloads in one exchange
	// and returns the LSN of the first; the client derives the rest
	// (its hosted log has a single appender, so offsets are
	// deterministic).
	LogAppendBatch
)

// LogReq is one remote-log operation.  Section 2 of the paper: "clients
// that do not have local disk space can ship their log records to the
// server"; the server then hosts that client's private log (still never
// merged with anyone else's).
type LogReq struct {
	Client  ident.ClientID
	Op      LogOpKind
	LSN     wal.LSN
	Payload []byte
	Batch   [][]byte // LogAppendBatch payloads
}

// LogReply answers a LogReq.
type LogReply struct {
	LSN     wal.LSN // assigned/queried LSN
	Next    wal.LSN // LSN following a read record
	Payload []byte  // read payload
}

// Server is the interface clients speak to the server.  Every method is
// one request/reply exchange (two messages) except where noted.
type Server interface {
	Register(RegisterReq) (RegisterReply, error)
	Lock(LockReq) (LockReply, error)
	// LockBatch acquires several locks in one exchange (see
	// LockBatchReq); items fail independently via LockBatchReply.Errs.
	LockBatch(LockBatchReq) (LockBatchReply, error)
	Unlock(UnlockReq) error
	Fetch(FetchReq) (FetchReply, error)
	// FetchBatch fetches several pages in one exchange.
	FetchBatch(FetchBatchReq) (FetchBatchReply, error)
	Ship(ShipReq) error
	Force(ForceReq) (ForceReply, error)
	Alloc(AllocReq) (FetchReply, error)
	Free(FreeReq) error
	CommitShip(CommitShipReq) error
	Token(TokenReq) (TokenReply, error)
	RecoveryFetch(RecoveryFetchReq) (FetchReply, error)
	// Reinstall re-registers locks in the GLM without conflict checks.
	// A client recovering from a complex crash (§3.5) uses it to regain
	// the exclusive locks covering its uncommitted transactions before
	// rolling them back.
	Reinstall(c ident.ClientID, holds []lock.Holding) error
	// RecoverQuery maps a recovering client's DPT pages to the DCT rows
	// that bound its redo work: live DCT entries in the client-crash
	// case, or rows reconstructed from replacement log records and disk
	// PSNs after a complex crash (§3.5).  Pages without a row need no
	// recovery (Property 1).
	RecoverQuery(c ident.ClientID, pages []page.ID) ([]DCTRow, error)
	// LogOp services a diskless client's remote private log.
	LogOp(LogReq) (LogReply, error)
	// RecoverEnd tells the server the client finished restart recovery;
	// queued callbacks may then be delivered.
	RecoverEnd(ident.ClientID) error
	// Disconnect removes a cleanly departing client.
	Disconnect(ident.ClientID) error
}

// CallbackReq asks a client to give up or downgrade a cached object
// lock.
type CallbackReq struct {
	Requester ident.ClientID
	Object    lock.Name
	Wanted    lock.Mode
}

// CallbackReply reports what the client did.  Image is the page copy
// shipped along when the client held the object in X (the server merges
// it and forwards it to the requester); PSN is the page's PSN on that
// copy.
type CallbackReply struct {
	Released   bool
	Downgraded bool
	Image      []byte
	HadPage    bool
}

// DeescReq asks a client to replace its page lock with object locks.
type DeescReq struct {
	Requester ident.ClientID
	Page      page.ID
	Wanted    lock.Mode
}

// DeescReply lists the object locks the client retains; it also ships
// the page if it was dirty under an exclusive page lock.
type DeescReply struct {
	Objs    []lock.ObjLock
	Image   []byte
	HadPage bool
}

// RecoveryInfoReply is a client's answer to the server's restart
// recovery solicitation (§3.4): its DPT, the pages in its cache, and
// its cached locks for GLM reconstruction.
type RecoveryInfoReply struct {
	DPT    []wal.DPTEntry
	Cached []page.ID
	Locks  []lock.Holding
}

// CallbackListReq asks a client (Ci in §3.4) for the CallBack_P list it
// can contribute for page P and recovering client C: the callback log
// records it wrote for objects called back from C, scanned from its DPT
// RedoLSN for P.
type CallbackListReq struct {
	Page   page.ID
	Target ident.ClientID
}

// CallbackListReply returns the (object, PSN) pairs; for repeated
// callbacks of the same object only the most recent PSN is kept.
type CallbackListReply struct {
	Entries []CallbackOrigin
}

// RecoverPageReq tells a client to recover its updates on page P during
// server restart recovery.  Image is the server's best current copy,
// DCTPSN the PSN to install on it, and Callbacks the merged CallBack_P
// list of §3.4.
type RecoverPageReq struct {
	Page      page.ID
	Image     []byte
	DCTPSN    page.PSN
	Callbacks []CallbackOrigin
}

// Client is the interface the server speaks to each connected client.
type Client interface {
	CallbackObject(CallbackReq) (CallbackReply, error)
	DeescalatePage(DeescReq) (DeescReply, error)
	// RecallToken takes the update token (and the page travelling with
	// it) away from its current owner; update-privilege baseline only.
	RecallToken(page.ID) (TokenReply, error)
	// RecoveryShipUpTo implements the forwarding of §3.4 step 3: the
	// client ships its in-recovery copy of the page to the server once
	// it has processed all of its log records for the page whose PSN is
	// below the threshold (or finished the page entirely).
	RecoveryShipUpTo(p page.ID, psn page.PSN) error
	// NotifyFlushed is one-way: the server tells clients that shipped a
	// page that the page reached disk (§3.2 DPT maintenance and §3.6).
	// The PSN identifies the forced copy so late acknowledgments cannot
	// drop DPT entries covering newer ships.
	NotifyFlushed(p page.ID, psn page.PSN)
	// RecoveryInfo, CallbackList, RecoverPage and FetchCached implement
	// the client side of server restart recovery (§3.4).
	RecoveryInfo() (RecoveryInfoReply, error)
	FetchCached(ids []page.ID) ([][]byte, error)
	CallbackList(CallbackListReq) (CallbackListReply, error)
	RecoverPage(RecoverPageReq) error
}
