package msg

import (
	"math/rand"
	"reflect"
	"testing"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/obs/span"
	"clientlog/internal/page"
)

// wireType is the common shape of every hand-rolled codec type.
type wireType interface {
	WireSize() int
	AppendWire(b []byte) []byte
	DecodeWire(d *WireDec)
}

// randBytes returns nil or a non-empty random slice: the encoding does
// not distinguish nil from empty, and decode normalizes to nil, so
// round-trip comparison must never start from a non-nil empty slice.
func randBytes(r *rand.Rand, maxLen int) []byte {
	n := r.Intn(maxLen + 1)
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	r.Read(b)
	return b
}

func randName(r *rand.Rand) lock.Name {
	return lock.Name{
		Page:   page.ID(r.Uint64()),
		Slot:   uint16(r.Uint32()),
		IsPage: r.Intn(2) == 0,
	}
}

func randTrace(r *rand.Rand) span.Context {
	if r.Intn(2) == 0 {
		return span.Context{}
	}
	return span.Context{
		Txn:     ident.TxnID(r.Uint64()),
		Span:    r.Uint64(),
		Sampled: r.Intn(2) == 0,
	}
}

func randOrigins(r *rand.Rand) []CallbackOrigin {
	n := r.Intn(4)
	if n == 0 {
		return nil
	}
	out := make([]CallbackOrigin, n)
	for i := range out {
		out[i] = CallbackOrigin{
			Object:    page.ObjectID{Page: page.ID(r.Uint64()), Slot: uint16(r.Uint32())},
			Responder: ident.ClientID(r.Uint32()),
			PSN:       page.PSN(r.Uint64()),
		}
	}
	return out
}

func randLockReply(r *rand.Rand) LockReply {
	return LockReply{Name: randName(r), Mode: lock.Mode(r.Intn(4)), Origins: randOrigins(r)}
}

// randWire builds one random instance of every codec type per call.
// Slices are nil or non-empty (never non-nil empty) so decoded values
// compare equal under reflect.DeepEqual.
func randWire(r *rand.Rand) []wireType {
	lockBatch := &LockBatchReq{Client: ident.ClientID(r.Uint32()), Trace: randTrace(r)}
	if n := r.Intn(5); n > 0 {
		lockBatch.Items = make([]LockItem, n)
		for i := range lockBatch.Items {
			lockBatch.Items[i] = LockItem{
				Name:       randName(r),
				Mode:       lock.Mode(r.Intn(4)),
				PreferPage: r.Intn(2) == 0,
				Upgrade:    r.Intn(2) == 0,
				HasCached:  r.Intn(2) == 0,
				CachedPSN:  page.PSN(r.Uint64()),
			}
		}
	}
	batchReply := &LockBatchReply{}
	if n := r.Intn(4); n > 0 {
		batchReply.Grants = make([]LockReply, n)
		batchReply.Errs = make([]string, n)
		for i := range batchReply.Grants {
			batchReply.Grants[i] = randLockReply(r)
			if r.Intn(2) == 0 {
				batchReply.Errs[i] = string(randBytes(r, 12))
			}
		}
	}
	fetchBatch := &FetchBatchReq{Client: ident.ClientID(r.Uint32()), Trace: randTrace(r)}
	if n := r.Intn(5); n > 0 {
		fetchBatch.Pages = make([]page.ID, n)
		for i := range fetchBatch.Pages {
			fetchBatch.Pages[i] = page.ID(r.Uint64())
		}
	}
	fetchBatchReply := &FetchBatchReply{}
	if n := r.Intn(4); n > 0 {
		fetchBatchReply.Images = make([][]byte, n)
		fetchBatchReply.DCTPSNs = make([]page.PSN, n)
		fetchBatchReply.Errs = make([]string, n)
		for i := range fetchBatchReply.Images {
			fetchBatchReply.Images[i] = randBytes(r, 64)
			fetchBatchReply.DCTPSNs[i] = page.PSN(r.Uint64())
			if r.Intn(3) == 0 {
				fetchBatchReply.Errs[i] = string(randBytes(r, 8))
			}
		}
	}
	unlock := &UnlockReq{
		Client: ident.ClientID(r.Uint32()),
		Action: UnlockAction(r.Intn(3) + 1),
		Name:   randName(r),
	}
	if n := r.Intn(4); n > 0 {
		unlock.Objs = make([]lock.ObjLock, n)
		for i := range unlock.Objs {
			unlock.Objs[i] = lock.ObjLock{Slot: uint16(r.Uint32()), Mode: lock.Mode(r.Intn(4))}
		}
	}
	commit := &CommitShipReq{
		Client: ident.ClientID(r.Uint32()),
		Txn:    ident.TxnID(r.Uint64()),
		Trace:  randTrace(r),
	}
	if n := r.Intn(4); n > 0 {
		commit.Records = make([][]byte, n)
		for i := range commit.Records {
			commit.Records[i] = randBytes(r, 48)
		}
	}
	if n := r.Intn(3); n > 0 {
		commit.Pages = make([][]byte, n)
		for i := range commit.Pages {
			commit.Pages[i] = randBytes(r, 64)
		}
	}
	lr := randLockReply(r)
	return []wireType{
		&LockReq{
			Client:     ident.ClientID(r.Uint32()),
			Name:       randName(r),
			Mode:       lock.Mode(r.Intn(4)),
			PreferPage: r.Intn(2) == 0,
			Upgrade:    r.Intn(2) == 0,
			HasCached:  r.Intn(2) == 0,
			CachedPSN:  page.PSN(r.Uint64()),
			Trace:      randTrace(r),
		},
		&lr,
		lockBatch,
		batchReply,
		&FetchReq{
			Client:   ident.ClientID(r.Uint32()),
			Page:     page.ID(r.Uint64()),
			Recovery: r.Intn(2) == 0,
			Trace:    randTrace(r),
		},
		&FetchReply{Image: randBytes(r, 128), DCTPSN: page.PSN(r.Uint64())},
		fetchBatch,
		fetchBatchReply,
		unlock,
		&ShipReq{
			Client: ident.ClientID(r.Uint32()),
			Reason: ShipReason(r.Intn(4) + 1),
			Image:  randBytes(r, 128),
			Trace:  randTrace(r),
		},
		&ForceReq{Client: ident.ClientID(r.Uint32()), Page: page.ID(r.Uint64()), Trace: randTrace(r)},
		&ForceReply{PSN: page.PSN(r.Uint64())},
		commit,
	}
}

// TestWireRoundTrip encodes random instances of every codec type and
// decodes them into a zero struct of the same type: values must come
// back identical and WireSize must price the encoding exactly.
func TestWireRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		for _, v := range randWire(r) {
			b := v.AppendWire(nil)
			if len(b) != v.WireSize() {
				t.Fatalf("%T: WireSize=%d but encoded %d bytes", v, v.WireSize(), len(b))
			}
			got := reflect.New(reflect.TypeOf(v).Elem()).Interface().(wireType)
			var d WireDec
			d.Reset(b)
			got.DecodeWire(&d)
			if d.Err() != nil {
				t.Fatalf("%T: decode error: %v", v, d.Err())
			}
			if d.Remaining() != 0 {
				t.Fatalf("%T: %d bytes left after decode", v, d.Remaining())
			}
			if !reflect.DeepEqual(v, got) {
				t.Fatalf("%T round trip mismatch:\n in: %+v\nout: %+v", v, v, got)
			}
		}
	}
}

// TestWireDecodeReusesCapacity decodes twice into the same struct and
// checks the second decode allocates nothing new for its slices.
func TestWireDecodeReusesCapacity(t *testing.T) {
	in := FetchReply{Image: []byte{1, 2, 3, 4}, DCTPSN: 7}
	b := in.AppendWire(nil)
	var out FetchReply
	var d WireDec
	d.Reset(b)
	out.DecodeWire(&d)
	first := &out.Image[0]
	d.Reset(b)
	out.DecodeWire(&d)
	if &out.Image[0] != first {
		t.Fatal("second decode reallocated the image buffer")
	}
	if d.Err() != nil || string(out.Image) != "\x01\x02\x03\x04" || out.DCTPSN != 7 {
		t.Fatalf("reuse decode wrong: err=%v out=%+v", d.Err(), out)
	}
}

// TestWireDecTruncation checks the decoder goes fail-sticky on every
// truncation point rather than panicking or reading stale bytes.
func TestWireDecTruncation(t *testing.T) {
	full := (&LockReq{Client: 3, Name: lock.Name{Page: 9, Slot: 2}, Mode: lock.X}).AppendWire(nil)
	for cut := 0; cut < len(full); cut++ {
		var r LockReq
		var d WireDec
		d.Reset(full[:cut])
		r.DecodeWire(&d)
		if d.Err() == nil {
			t.Fatalf("truncation at %d/%d not detected", cut, len(full))
		}
	}
}

// TestWireDecHostileCount checks an inflated element count is rejected
// before any allocation sized by it.
func TestWireDecHostileCount(t *testing.T) {
	// LockBatchReq header (client + zero trace) then a count claiming
	// 2^31 items with no bytes behind it.
	b := appendU32(nil, 1)
	b = span.Context{}.AppendWire(b)
	b = appendU32(b, 1<<31)
	var r LockBatchReq
	var d WireDec
	d.Reset(b)
	r.DecodeWire(&d)
	if d.Err() == nil {
		t.Fatal("hostile count accepted")
	}
	if r.Items != nil {
		t.Fatalf("hostile count allocated %d items", len(r.Items))
	}
}

// FuzzWireDec throws arbitrary bytes at every decoder: none may panic,
// and any payload a decoder accepts cleanly must re-encode to a payload
// that decodes back to the same value.
func FuzzWireDec(f *testing.F) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 4; iter++ {
		for _, v := range randWire(r) {
			f.Add(v.AppendWire(nil))
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		fresh := func() []wireType {
			return []wireType{
				&LockReq{}, &LockReply{}, &LockBatchReq{}, &LockBatchReply{},
				&FetchReq{}, &FetchReply{}, &FetchBatchReq{}, &FetchBatchReply{},
				&UnlockReq{}, &ShipReq{}, &ForceReq{}, &ForceReply{}, &CommitShipReq{},
			}
		}
		for _, v := range fresh() {
			var d WireDec
			d.Reset(data)
			v.DecodeWire(&d)
			if d.Err() != nil || d.Remaining() != 0 {
				continue
			}
			// Clean decode: the value must survive a second round trip.
			b := v.AppendWire(nil)
			got := reflect.New(reflect.TypeOf(v).Elem()).Interface().(wireType)
			var d2 WireDec
			d2.Reset(b)
			got.DecodeWire(&d2)
			if d2.Err() != nil || d2.Remaining() != 0 {
				t.Fatalf("%T: re-encode of clean decode does not decode: %v", v, d2.Err())
			}
			if !reflect.DeepEqual(v, got) {
				t.Fatalf("%T: re-encoded round trip diverged:\n in: %+v\nout: %+v", v, v, got)
			}
		}
	})
}
