package msg_test

import (
	"errors"
	"testing"

	"clientlog/internal/core"
	"clientlog/internal/fault"
	"clientlog/internal/msg"
)

// countingServer counts executions of the non-idempotent ops the fault
// layer must protect.
type countingServer struct {
	msg.Server // panic on anything not overridden
	ships      int
	appends    int
	lockErrs   int
}

func (s *countingServer) Ship(msg.ShipReq) error { s.ships++; return nil }

func (s *countingServer) LogOp(r msg.LogReq) (msg.LogReply, error) {
	s.appends++
	return msg.LogReply{LSN: 1}, nil
}

func (s *countingServer) Lock(msg.LockReq) (msg.LockReply, error) {
	s.lockErrs++
	return msg.LockReply{}, errors.New("lock: deadlock detected")
}

func hostilePlan() fault.Plan {
	return fault.Plan{
		DropProb:      0.25,
		DupProb:       0.25,
		ReplayProb:    0.15,
		PartitionProb: 0.02,
		PartitionLen:  4,
	}
}

func TestFaultyServerExactlyOnceUnderHostilePlan(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		inner := &countingServer{}
		inj := fault.New(seed, hostilePlan())
		f := msg.NewFaultyServer(inner, inj, core.NewReplyCache(0), "c1", msg.RetryPolicy{
			MaxAttempts: 30, BaseBackoff: 1, MaxBackoff: 10,
		})
		const n = 300
		for i := 0; i < n; i++ {
			if err := f.Ship(msg.ShipReq{}); err != nil {
				t.Fatalf("seed %d ship %d: %v", seed, i, err)
			}
			if _, err := f.LogOp(msg.LogReq{Op: msg.LogAppend}); err != nil {
				t.Fatalf("seed %d append %d: %v", seed, i, err)
			}
		}
		if inner.ships != n || inner.appends != n {
			t.Fatalf("seed %d: ships=%d appends=%d want %d each (faults=%d)",
				seed, inner.ships, inner.appends, n, inj.Faults())
		}
		if inj.Faults() == 0 {
			t.Fatalf("seed %d: hostile plan injected nothing", seed)
		}
	}
}

func TestFaultyServerPropagatesEngineErrors(t *testing.T) {
	inner := &countingServer{}
	inj := fault.New(3, hostilePlan())
	f := msg.NewFaultyServer(inner, inj, core.NewReplyCache(0), "c1", msg.DefaultRetry())
	for i := 0; i < 50; i++ {
		if _, err := f.Lock(msg.LockReq{}); err == nil {
			t.Fatal("engine error swallowed by the fault layer")
		}
	}
	// Each logical Lock must have executed exactly once even though the
	// answer was an error (retries must replay the cached error, not
	// re-run the deadlock).
	if inner.lockErrs != 50 {
		t.Fatalf("lock executed %d times for 50 logical calls", inner.lockErrs)
	}
}

func TestFaultyServerGivesUpEventually(t *testing.T) {
	inner := &countingServer{}
	inj := fault.New(1, fault.Plan{DropProb: 1})
	f := msg.NewFaultyServer(inner, inj, core.NewReplyCache(0), "c1", msg.RetryPolicy{
		MaxAttempts: 4, BaseBackoff: 1, MaxBackoff: 2,
	})
	err := f.Ship(msg.ShipReq{})
	if !errors.Is(err, msg.ErrUnavailable) {
		t.Fatalf("err=%v want ErrUnavailable", err)
	}
	if inner.ships != 0 {
		t.Fatalf("dropped requests still executed %d times", inner.ships)
	}
}
