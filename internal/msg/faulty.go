package msg

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"clientlog/internal/fault"
	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/obs"
	"clientlog/internal/page"
)

// rpcRetries counts retransmissions performed by every faulty conn in
// the process (a retry is process-global behaviour of the simulated
// network, not of one cluster, so the counter is package-level).
var rpcRetries obs.Counter

// Retries returns the total number of RPC retransmissions so far.
func Retries() uint64 { return rpcRetries.Load() }

// RegisterObs binds the package-level transport counters (currently
// the retry count) into reg as msg_rpc_retries_total.
func RegisterObs(reg *obs.Registry, tags ...obs.Tag) {
	if reg == nil {
		return
	}
	reg.BindCounter(&rpcRetries, "msg_rpc_retries_total", tags...)
}

// ErrUnavailable reports that an RPC exhausted its retry budget against
// the simulated network; with a sane plan/retry pairing this only
// happens when the plan is deliberately hostile.
var ErrUnavailable = errors.New("msg: network unavailable (retries exhausted)")

// Deduper executes a request id at most once and replays the cached
// result for retransmissions.  It represents the receiving side of a
// lossy connection; core.ReplyCache implements it.
type Deduper interface {
	Do(seq uint64, exec func() (interface{}, error)) (interface{}, error)
}

// RetryPolicy bounds the transparent retransmission a faulty conn
// performs.  The total attempt budget must outlast the fault plan's
// partition windows (each attempt consumes one window slot).
type RetryPolicy struct {
	MaxAttempts int
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// DefaultRetry pairs with fault.DefaultPlan: 16 attempts ride out a
// 5-message partition with room to spare, and the backoff stays small
// enough for tests.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 16, BaseBackoff: 50 * time.Microsecond, MaxBackoff: 2 * time.Millisecond}
}

func (r RetryPolicy) norm() RetryPolicy {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 16
	}
	if r.BaseBackoff <= 0 {
		r.BaseBackoff = 50 * time.Microsecond
	}
	if r.MaxBackoff < r.BaseBackoff {
		r.MaxBackoff = 100 * r.BaseBackoff
	}
	return r
}

// faultyConn is the shared machinery of FaultyServer and FaultyClient:
// one simulated lossy connection with per-request ids, bounded
// exponential-backoff retransmission, and receiver-side duplicate
// suppression.  Each logical request is executed through the Deduper,
// so drops, duplicates and stale replays never execute twice.
type faultyConn struct {
	inj    *fault.Injector
	dedup  Deduper
	stream string
	retry  RetryPolicy

	seq atomic.Uint64

	mu       sync.Mutex
	lastExec func() (interface{}, error) // previous request, for Replay
}

func (f *faultyConn) call(name string, exec func() (interface{}, error)) (interface{}, error) {
	seq := f.seq.Add(1)
	deduped := func() (interface{}, error) { return f.dedup.Do(seq, exec) }
	f.mu.Lock()
	prev := f.lastExec
	f.lastExec = deduped
	f.mu.Unlock()

	backoff := f.retry.BaseBackoff
	for attempt := 0; attempt < f.retry.MaxAttempts; attempt++ {
		d := f.inj.Next(f.stream)
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
		if d.Replay && prev != nil {
			// A stale retransmission of the previous request overtakes
			// this one; the receiver must recognize and suppress it.
			prev() //nolint:errcheck // the original call already consumed the result
		}
		if d.DropRequest {
			rpcRetries.Inc()
			time.Sleep(backoff)
			backoff = minDur(2*backoff, f.retry.MaxBackoff)
			continue
		}
		body, err := deduped()
		if d.Duplicate {
			// The wire delivered the request twice; the second execution
			// must come from the receiver's reply cache.
			deduped() //nolint:errcheck
		}
		if d.DropReply || d.Disconnect {
			// The receiver executed but the reply is lost (or the
			// connection died under it); retransmit.
			rpcRetries.Inc()
			time.Sleep(backoff)
			backoff = minDur(2*backoff, f.retry.MaxBackoff)
			continue
		}
		return body, err
	}
	return nil, fmt.Errorf("%w: %s (stream %s, %d attempts)", ErrUnavailable, name, f.stream, f.retry.MaxAttempts)
}

// oneway delivers a notification with fault treatment but no retry:
// one-way messages may simply be lost, and the protocol must tolerate
// that (flush notifications are advisory).
func (f *faultyConn) oneway(deliver func()) {
	d := f.inj.Next(f.stream)
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	if d.DropRequest || d.Disconnect {
		return
	}
	deliver()
	if d.Duplicate {
		deliver()
	}
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// FaultyServer wraps a client's conn to the server with the simulated
// lossy network: every RPC runs under the injector's decisions for the
// stream, lost messages are retransmitted with bounded exponential
// backoff, and the server side (dedup) suppresses re-executions.
type FaultyServer struct {
	Inner Server
	conn  faultyConn
}

// NewFaultyServer wraps inner.  dedup is the server-side reply cache
// for this connection (one per client conn; see core.NewReplyCache).
func NewFaultyServer(inner Server, inj *fault.Injector, dedup Deduper, stream string, retry RetryPolicy) *FaultyServer {
	return &FaultyServer{
		Inner: inner,
		conn:  faultyConn{inj: inj, dedup: dedup, stream: stream, retry: retry.norm()},
	}
}

// Register implements Server.
func (f *FaultyServer) Register(r RegisterReq) (RegisterReply, error) {
	body, err := f.conn.call("register", func() (interface{}, error) { return f.Inner.Register(r) })
	if err != nil {
		return RegisterReply{}, err
	}
	return body.(RegisterReply), nil
}

// Lock implements Server.
func (f *FaultyServer) Lock(r LockReq) (LockReply, error) {
	body, err := f.conn.call("lock", func() (interface{}, error) { return f.Inner.Lock(r) })
	if err != nil {
		return LockReply{}, err
	}
	return body.(LockReply), nil
}

// LockBatch implements Server.  The whole batch is one idempotent
// request: a retransmission replays the cached reply — including any
// partial per-item failures — rather than re-acquiring.
func (f *FaultyServer) LockBatch(r LockBatchReq) (LockBatchReply, error) {
	body, err := f.conn.call("lock-batch", func() (interface{}, error) { return f.Inner.LockBatch(r) })
	if err != nil {
		return LockBatchReply{}, err
	}
	return body.(LockBatchReply), nil
}

// Unlock implements Server.
func (f *FaultyServer) Unlock(r UnlockReq) error {
	_, err := f.conn.call("unlock", func() (interface{}, error) { return nil, f.Inner.Unlock(r) })
	return err
}

// Fetch implements Server.
func (f *FaultyServer) Fetch(r FetchReq) (FetchReply, error) {
	body, err := f.conn.call("fetch", func() (interface{}, error) { return f.Inner.Fetch(r) })
	if err != nil {
		return FetchReply{}, err
	}
	return body.(FetchReply), nil
}

// FetchBatch implements Server.
func (f *FaultyServer) FetchBatch(r FetchBatchReq) (FetchBatchReply, error) {
	body, err := f.conn.call("fetch-batch", func() (interface{}, error) { return f.Inner.FetchBatch(r) })
	if err != nil {
		return FetchBatchReply{}, err
	}
	return body.(FetchBatchReply), nil
}

// Ship implements Server.
func (f *FaultyServer) Ship(r ShipReq) error {
	_, err := f.conn.call("ship", func() (interface{}, error) { return nil, f.Inner.Ship(r) })
	return err
}

// Force implements Server.
func (f *FaultyServer) Force(r ForceReq) (ForceReply, error) {
	body, err := f.conn.call("force", func() (interface{}, error) { return f.Inner.Force(r) })
	if err != nil {
		return ForceReply{}, err
	}
	return body.(ForceReply), nil
}

// Alloc implements Server.
func (f *FaultyServer) Alloc(r AllocReq) (FetchReply, error) {
	body, err := f.conn.call("alloc", func() (interface{}, error) { return f.Inner.Alloc(r) })
	if err != nil {
		return FetchReply{}, err
	}
	return body.(FetchReply), nil
}

// Free implements Server.
func (f *FaultyServer) Free(r FreeReq) error {
	_, err := f.conn.call("free", func() (interface{}, error) { return nil, f.Inner.Free(r) })
	return err
}

// CommitShip implements Server.
func (f *FaultyServer) CommitShip(r CommitShipReq) error {
	_, err := f.conn.call("commit-ship", func() (interface{}, error) { return nil, f.Inner.CommitShip(r) })
	return err
}

// Token implements Server.
func (f *FaultyServer) Token(r TokenReq) (TokenReply, error) {
	body, err := f.conn.call("token", func() (interface{}, error) { return f.Inner.Token(r) })
	if err != nil {
		return TokenReply{}, err
	}
	return body.(TokenReply), nil
}

// RecoveryFetch implements Server.
func (f *FaultyServer) RecoveryFetch(r RecoveryFetchReq) (FetchReply, error) {
	body, err := f.conn.call("recovery-fetch", func() (interface{}, error) { return f.Inner.RecoveryFetch(r) })
	if err != nil {
		return FetchReply{}, err
	}
	return body.(FetchReply), nil
}

// Reinstall implements Server.
func (f *FaultyServer) Reinstall(c ident.ClientID, holds []lock.Holding) error {
	_, err := f.conn.call("reinstall", func() (interface{}, error) { return nil, f.Inner.Reinstall(c, holds) })
	return err
}

// RecoverQuery implements Server.
func (f *FaultyServer) RecoverQuery(c ident.ClientID, pages []page.ID) ([]DCTRow, error) {
	body, err := f.conn.call("recover-query", func() (interface{}, error) { return f.Inner.RecoverQuery(c, pages) })
	if err != nil {
		return nil, err
	}
	rows, _ := body.([]DCTRow)
	return rows, nil
}

// LogOp implements Server.
func (f *FaultyServer) LogOp(r LogReq) (LogReply, error) {
	body, err := f.conn.call("log-op", func() (interface{}, error) { return f.Inner.LogOp(r) })
	if err != nil {
		return LogReply{}, err
	}
	return body.(LogReply), nil
}

// RecoverEnd implements Server.
func (f *FaultyServer) RecoverEnd(c ident.ClientID) error {
	_, err := f.conn.call("recover-end", func() (interface{}, error) { return nil, f.Inner.RecoverEnd(c) })
	return err
}

// Disconnect implements Server.
func (f *FaultyServer) Disconnect(c ident.ClientID) error {
	_, err := f.conn.call("disconnect", func() (interface{}, error) { return nil, f.Inner.Disconnect(c) })
	return err
}

// FaultyClient wraps the server's conn to one client with the same
// lossy-network treatment; the dedup cache sits at the client end.
type FaultyClient struct {
	Inner Client
	conn  faultyConn
}

// NewFaultyClient wraps inner (see NewFaultyServer).
func NewFaultyClient(inner Client, inj *fault.Injector, dedup Deduper, stream string, retry RetryPolicy) *FaultyClient {
	return &FaultyClient{
		Inner: inner,
		conn:  faultyConn{inj: inj, dedup: dedup, stream: stream, retry: retry.norm()},
	}
}

// CallbackObject implements Client.
func (f *FaultyClient) CallbackObject(r CallbackReq) (CallbackReply, error) {
	body, err := f.conn.call("cb-object", func() (interface{}, error) { return f.Inner.CallbackObject(r) })
	if err != nil {
		return CallbackReply{}, err
	}
	return body.(CallbackReply), nil
}

// DeescalatePage implements Client.
func (f *FaultyClient) DeescalatePage(r DeescReq) (DeescReply, error) {
	body, err := f.conn.call("cb-deescalate", func() (interface{}, error) { return f.Inner.DeescalatePage(r) })
	if err != nil {
		return DeescReply{}, err
	}
	return body.(DeescReply), nil
}

// RecallToken implements Client.
func (f *FaultyClient) RecallToken(p page.ID) (TokenReply, error) {
	body, err := f.conn.call("recall-token", func() (interface{}, error) { return f.Inner.RecallToken(p) })
	if err != nil {
		return TokenReply{}, err
	}
	return body.(TokenReply), nil
}

// RecoveryShipUpTo implements Client.
func (f *FaultyClient) RecoveryShipUpTo(p page.ID, psn page.PSN) error {
	_, err := f.conn.call("recovery-ship-up-to", func() (interface{}, error) { return nil, f.Inner.RecoveryShipUpTo(p, psn) })
	return err
}

// NotifyFlushed implements Client.  One-way: it may be lost or
// duplicated outright; §3.2's DPT maintenance tolerates both.
func (f *FaultyClient) NotifyFlushed(p page.ID, psn page.PSN) {
	f.conn.oneway(func() { f.Inner.NotifyFlushed(p, psn) })
}

// RecoveryInfo implements Client.
func (f *FaultyClient) RecoveryInfo() (RecoveryInfoReply, error) {
	body, err := f.conn.call("recovery-info", func() (interface{}, error) { return f.Inner.RecoveryInfo() })
	if err != nil {
		return RecoveryInfoReply{}, err
	}
	return body.(RecoveryInfoReply), nil
}

// FetchCached implements Client.
func (f *FaultyClient) FetchCached(ids []page.ID) ([][]byte, error) {
	body, err := f.conn.call("fetch-cached", func() (interface{}, error) { return f.Inner.FetchCached(ids) })
	if err != nil {
		return nil, err
	}
	images, _ := body.([][]byte)
	return images, nil
}

// CallbackList implements Client.
func (f *FaultyClient) CallbackList(r CallbackListReq) (CallbackListReply, error) {
	body, err := f.conn.call("callback-list", func() (interface{}, error) { return f.Inner.CallbackList(r) })
	if err != nil {
		return CallbackListReply{}, err
	}
	return body.(CallbackListReply), nil
}

// RecoverPage implements Client.
func (f *FaultyClient) RecoverPage(r RecoverPageReq) error {
	_, err := f.conn.call("recover-page", func() (interface{}, error) { return nil, f.Inner.RecoverPage(r) })
	return err
}
