package msg

import (
	"sync"
	"time"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/obs"
	"clientlog/internal/page"
)

// Stats counts protocol traffic.  The loopback transport updates it; the
// experiments in EXPERIMENTS.md report messages and bytes per commit for
// the different schemes (the paper argues its protocol sends strictly
// fewer synchronization messages than the update-token approach and no
// commit-time shipments at all).
//
// Stats is a façade over an obs.Registry: every count lives in the
// msg_messages_total{msg=...} and msg_bytes_total{msg=...} series, so
// /metrics and Stats report from the same source.  The per-call-type
// counter handles are cached here so the hot path is two sharded
// counter adds, not a registry lookup.
type Stats struct {
	reg *obs.Registry

	mu     sync.RWMutex
	series map[string]*statsPair
}

// statsPair holds one call type's counter handles.
type statsPair struct {
	msgs  *obs.Counter
	bytes *obs.Counter
}

// NewStats returns zeroed counters backed by a private registry.
func NewStats() *Stats { return NewStatsIn(obs.NewRegistry()) }

// NewStatsIn returns counters that live in reg, so the same numbers
// surface on the registry's /metrics exposition.
func NewStatsIn(reg *obs.Registry) *Stats {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Stats{reg: reg, series: make(map[string]*statsPair)}
}

func (s *Stats) pair(name string) *statsPair {
	s.mu.RLock()
	p := s.series[name]
	s.mu.RUnlock()
	if p != nil {
		return p
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p = s.series[name]; p == nil {
		p = &statsPair{
			msgs:  s.reg.Counter("msg_messages_total", obs.T("msg", name)),
			bytes: s.reg.Counter("msg_bytes_total", obs.T("msg", name)),
		}
		s.series[name] = p
	}
	return p
}

func (s *Stats) add(name string, msgs int, bytes int) {
	if s == nil {
		return
	}
	p := s.pair(name)
	p.msgs.Add(uint64(msgs))
	p.bytes.Add(uint64(bytes))
}

// Messages returns the total message count (requests and replies).
func (s *Stats) Messages() uint64 {
	return s.reg.TotalCounter("msg_messages_total")
}

// Bytes returns the approximate total bytes on the wire.
func (s *Stats) Bytes() uint64 {
	return s.reg.TotalCounter("msg_bytes_total")
}

// ByName returns a copy of the per-call-type message counts.
func (s *Stats) ByName() map[string]uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]uint64, len(s.series))
	for k, p := range s.series {
		out[k] = p.msgs.Load()
	}
	return out
}

// msgOverhead approximates the framing + fixed-field bytes of one
// message.
const msgOverhead = 64

func imagesLen(images [][]byte) int {
	n := 0
	for _, im := range images {
		n += len(im)
	}
	return n
}

// LoopbackServer wraps a Server, charging each call with transport
// latency and recording traffic.  A zero Latency makes calls direct.
type LoopbackServer struct {
	Inner   Server
	Latency time.Duration // one-way; an RPC costs twice this
	Stats   *Stats
}

func (l *LoopbackServer) rpc(name string, payload int) {
	if l.Latency > 0 {
		time.Sleep(2 * l.Latency)
	}
	l.Stats.add(name, 2, 2*msgOverhead+payload)
}

// Register implements Server.
func (l *LoopbackServer) Register(r RegisterReq) (RegisterReply, error) {
	l.rpc("register", 0)
	return l.Inner.Register(r)
}

// Lock implements Server.
func (l *LoopbackServer) Lock(r LockReq) (LockReply, error) {
	l.rpc("lock", 16)
	return l.Inner.Lock(r)
}

// LockBatch implements Server.  One exchange regardless of item count:
// the whole point of the batch variant is to pay the round trip once.
func (l *LoopbackServer) LockBatch(r LockBatchReq) (LockBatchReply, error) {
	l.rpc("lock-batch", 16*len(r.Items))
	return l.Inner.LockBatch(r)
}

// Unlock implements Server.
func (l *LoopbackServer) Unlock(r UnlockReq) error {
	l.rpc("unlock", 8*len(r.Objs))
	return l.Inner.Unlock(r)
}

// Fetch implements Server.
func (l *LoopbackServer) Fetch(r FetchReq) (FetchReply, error) {
	reply, err := l.Inner.Fetch(r)
	l.rpc("fetch", len(reply.Image))
	return reply, err
}

// FetchBatch implements Server.
func (l *LoopbackServer) FetchBatch(r FetchBatchReq) (FetchBatchReply, error) {
	reply, err := l.Inner.FetchBatch(r)
	l.rpc("fetch-batch", imagesLen(reply.Images))
	return reply, err
}

// Ship implements Server.
func (l *LoopbackServer) Ship(r ShipReq) error {
	l.rpc("ship", len(r.Image))
	return l.Inner.Ship(r)
}

// Force implements Server.
func (l *LoopbackServer) Force(r ForceReq) (ForceReply, error) {
	l.rpc("force", 0)
	return l.Inner.Force(r)
}

// Alloc implements Server.
func (l *LoopbackServer) Alloc(r AllocReq) (FetchReply, error) {
	reply, err := l.Inner.Alloc(r)
	l.rpc("alloc", len(reply.Image))
	return reply, err
}

// Free implements Server.
func (l *LoopbackServer) Free(r FreeReq) error {
	l.rpc("free", 0)
	return l.Inner.Free(r)
}

// CommitShip implements Server.
func (l *LoopbackServer) CommitShip(r CommitShipReq) error {
	l.rpc("commit-ship", imagesLen(r.Records)+imagesLen(r.Pages))
	return l.Inner.CommitShip(r)
}

// Token implements Server.
func (l *LoopbackServer) Token(r TokenReq) (TokenReply, error) {
	reply, err := l.Inner.Token(r)
	l.rpc("token", len(reply.Image))
	return reply, err
}

// RecoveryFetch implements Server.
func (l *LoopbackServer) RecoveryFetch(r RecoveryFetchReq) (FetchReply, error) {
	reply, err := l.Inner.RecoveryFetch(r)
	l.rpc("recovery-fetch", len(reply.Image))
	return reply, err
}

// LogOp implements Server.
func (l *LoopbackServer) LogOp(r LogReq) (LogReply, error) {
	reply, err := l.Inner.LogOp(r)
	l.rpc("log-op", len(r.Payload)+len(reply.Payload))
	return reply, err
}

// Reinstall implements Server.
func (l *LoopbackServer) Reinstall(c ident.ClientID, holds []lock.Holding) error {
	l.rpc("reinstall", 16*len(holds))
	return l.Inner.Reinstall(c, holds)
}

// RecoverQuery implements Server.
func (l *LoopbackServer) RecoverQuery(c ident.ClientID, pages []page.ID) ([]DCTRow, error) {
	rows, err := l.Inner.RecoverQuery(c, pages)
	l.rpc("recover-query", 8*len(pages)+16*len(rows))
	return rows, err
}

// RecoverEnd implements Server.
func (l *LoopbackServer) RecoverEnd(c ident.ClientID) error {
	l.rpc("recover-end", 0)
	return l.Inner.RecoverEnd(c)
}

// Disconnect implements Server.
func (l *LoopbackServer) Disconnect(c ident.ClientID) error {
	l.rpc("disconnect", 0)
	return l.Inner.Disconnect(c)
}

// LoopbackClient wraps a Client (the server's view of one client) with
// the same latency/accounting treatment.
type LoopbackClient struct {
	Inner   Client
	Latency time.Duration
	Stats   *Stats
}

func (l *LoopbackClient) rpc(name string, payload int) {
	if l.Latency > 0 {
		time.Sleep(2 * l.Latency)
	}
	l.Stats.add(name, 2, 2*msgOverhead+payload)
}

// CallbackObject implements Client.
func (l *LoopbackClient) CallbackObject(r CallbackReq) (CallbackReply, error) {
	reply, err := l.Inner.CallbackObject(r)
	l.rpc("cb-object", len(reply.Image))
	return reply, err
}

// DeescalatePage implements Client.
func (l *LoopbackClient) DeescalatePage(r DeescReq) (DeescReply, error) {
	reply, err := l.Inner.DeescalatePage(r)
	l.rpc("cb-deescalate", len(reply.Image)+8*len(reply.Objs))
	return reply, err
}

// RecallToken implements Client.
func (l *LoopbackClient) RecallToken(p page.ID) (TokenReply, error) {
	reply, err := l.Inner.RecallToken(p)
	l.rpc("recall-token", len(reply.Image))
	return reply, err
}

// RecoveryShipUpTo implements Client.
func (l *LoopbackClient) RecoveryShipUpTo(p page.ID, psn page.PSN) error {
	l.rpc("recovery-ship-up-to", 0)
	return l.Inner.RecoveryShipUpTo(p, psn)
}

// NotifyFlushed implements Client (one-way: one message).
func (l *LoopbackClient) NotifyFlushed(p page.ID, psn page.PSN) {
	if l.Latency > 0 {
		time.Sleep(l.Latency)
	}
	l.Stats.add("notify-flushed", 1, msgOverhead)
	l.Inner.NotifyFlushed(p, psn)
}

// RecoveryInfo implements Client.
func (l *LoopbackClient) RecoveryInfo() (RecoveryInfoReply, error) {
	reply, err := l.Inner.RecoveryInfo()
	l.rpc("recovery-info", 16*(len(reply.DPT)+len(reply.Cached)+len(reply.Locks)))
	return reply, err
}

// FetchCached implements Client.
func (l *LoopbackClient) FetchCached(ids []page.ID) ([][]byte, error) {
	images, err := l.Inner.FetchCached(ids)
	l.rpc("fetch-cached", imagesLen(images))
	return images, err
}

// CallbackList implements Client.
func (l *LoopbackClient) CallbackList(r CallbackListReq) (CallbackListReply, error) {
	reply, err := l.Inner.CallbackList(r)
	l.rpc("callback-list", 24*len(reply.Entries))
	return reply, err
}

// RecoverPage implements Client.
func (l *LoopbackClient) RecoverPage(r RecoverPageReq) error {
	l.rpc("recover-page", len(r.Image)+24*len(r.Callbacks))
	return l.Inner.RecoverPage(r)
}
