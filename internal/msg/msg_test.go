package msg

import (
	"errors"
	"sync"
	"testing"
	"time"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/page"
)

// fakeServer counts calls and returns canned replies.
type fakeServer struct {
	mu    sync.Mutex
	calls map[string]int
}

func newFakeServer() *fakeServer { return &fakeServer{calls: make(map[string]int)} }

func (f *fakeServer) hit(name string) {
	f.mu.Lock()
	f.calls[name]++
	f.mu.Unlock()
}

func (f *fakeServer) Register(RegisterReq) (RegisterReply, error) {
	f.hit("register")
	return RegisterReply{ID: 1}, nil
}
func (f *fakeServer) Lock(LockReq) (LockReply, error) { f.hit("lock"); return LockReply{}, nil }
func (f *fakeServer) LockBatch(r LockBatchReq) (LockBatchReply, error) {
	f.hit("lock-batch")
	return LockBatchReply{Grants: make([]LockReply, len(r.Items)), Errs: make([]string, len(r.Items))}, nil
}
func (f *fakeServer) Unlock(UnlockReq) error { f.hit("unlock"); return nil }
func (f *fakeServer) Fetch(FetchReq) (FetchReply, error) {
	f.hit("fetch")
	return FetchReply{Image: make([]byte, 128)}, nil
}
func (f *fakeServer) FetchBatch(r FetchBatchReq) (FetchBatchReply, error) {
	f.hit("fetch-batch")
	return FetchBatchReply{
		Images:  make([][]byte, len(r.Pages)),
		DCTPSNs: make([]page.PSN, len(r.Pages)),
		Errs:    make([]string, len(r.Pages)),
	}, nil
}
func (f *fakeServer) Ship(ShipReq) error { f.hit("ship"); return nil }
func (f *fakeServer) Force(ForceReq) (ForceReply, error) {
	f.hit("force")
	return ForceReply{}, nil
}
func (f *fakeServer) Alloc(AllocReq) (FetchReply, error) {
	f.hit("alloc")
	return FetchReply{}, nil
}
func (f *fakeServer) Free(FreeReq) error             { f.hit("free"); return nil }
func (f *fakeServer) CommitShip(CommitShipReq) error { f.hit("commit-ship"); return nil }
func (f *fakeServer) Token(TokenReq) (TokenReply, error) {
	f.hit("token")
	return TokenReply{}, nil
}
func (f *fakeServer) RecoveryFetch(RecoveryFetchReq) (FetchReply, error) {
	f.hit("recovery-fetch")
	return FetchReply{}, nil
}
func (f *fakeServer) Reinstall(ident.ClientID, []lock.Holding) error {
	f.hit("reinstall")
	return nil
}
func (f *fakeServer) RecoverQuery(ident.ClientID, []page.ID) ([]DCTRow, error) {
	f.hit("recover-query")
	return nil, nil
}
func (f *fakeServer) LogOp(LogReq) (LogReply, error) { f.hit("log-op"); return LogReply{}, nil }
func (f *fakeServer) RecoverEnd(ident.ClientID) error {
	f.hit("recover-end")
	return nil
}
func (f *fakeServer) Disconnect(ident.ClientID) error { f.hit("disconnect"); return nil }

func TestLoopbackServerCountsMessages(t *testing.T) {
	stats := NewStats()
	lb := &LoopbackServer{Inner: newFakeServer(), Stats: stats}
	if _, err := lb.Register(RegisterReq{}); err != nil {
		t.Fatal(err)
	}
	if _, err := lb.Fetch(FetchReq{}); err != nil {
		t.Fatal(err)
	}
	if err := lb.Ship(ShipReq{Image: make([]byte, 256)}); err != nil {
		t.Fatal(err)
	}
	// 3 RPCs = 6 messages.
	if got := stats.Messages(); got != 6 {
		t.Fatalf("messages = %d, want 6", got)
	}
	// Bytes must account for the page images plus per-message overhead.
	if got := stats.Bytes(); got < 128+256 {
		t.Fatalf("bytes = %d, too low", got)
	}
	byName := stats.ByName()
	if byName["fetch"] != 2 || byName["ship"] != 2 || byName["register"] != 2 {
		t.Fatalf("per-call counts: %v", byName)
	}
}

func TestLoopbackLatencyApplied(t *testing.T) {
	stats := NewStats()
	lb := &LoopbackServer{Inner: newFakeServer(), Latency: 5 * time.Millisecond, Stats: stats}
	start := time.Now()
	if _, err := lb.Lock(LockReq{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("RPC took %v, want >= 2x one-way latency", elapsed)
	}
}

func TestLoopbackErrorsPassThrough(t *testing.T) {
	wantErr := errors.New("boom")
	lb := &LoopbackServer{Inner: &failingServer{fakeServer: newFakeServer(), err: wantErr}, Stats: NewStats()}
	if err := lb.Ship(ShipReq{}); !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want passthrough", err)
	}
}

type failingServer struct {
	*fakeServer
	err error
}

func (f *failingServer) Ship(ShipReq) error { return f.err }

func TestStatsNilSafe(t *testing.T) {
	// A nil *Stats must be usable (tools that don't care about metrics).
	var s *Stats
	s.add("x", 1, 1) // must not panic
	lb := &LoopbackServer{Inner: newFakeServer()}
	if _, err := lb.Force(ForceReq{}); err != nil {
		t.Fatal(err)
	}
}
