// Binary wire codec for the hot protocol messages (netrpc
// ProtocolVersion 3).  The lock/fetch/ship/force/commit family crosses
// the wire on every transaction, so these types get hand-rolled
// little-endian encoders in the style of the page and wal packages
// instead of gob: AppendWire appends the encoding to a caller-owned
// buffer, DecodeWire fills a caller-owned struct reusing any slice
// capacity it already has, and WireSize prices the encoding up front so
// the transport can reject oversized frames before allocating.
//
// Layout conventions (all little-endian):
//   - byte slices and strings: u32 length + raw bytes
//   - slices of structs: u32 count + elements
//   - bools: one byte, 0 or 1
//   - lock.Name: page u64 | slot u16 | isPage u8
//   - page.ObjectID: page u64 | slot u16
//   - span.Context: its fixed 17-byte encoding (span.AppendWire)
//
// A decoded zero-length slice comes back nil (the encoding does not
// distinguish nil from empty; nothing in the protocol does either).
// Decoders are fail-sticky: after the first framing violation every
// further read returns zero values and Err() reports ErrWireCorrupt,
// so callers validate once at the end.  Every count is checked against
// the bytes actually remaining before any allocation, so hostile
// lengths cannot balloon memory.
package msg

import (
	"encoding/binary"
	"errors"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/obs/span"
	"clientlog/internal/page"
)

// ErrWireCorrupt reports a binary payload that violates its own
// framing (truncated field, impossible count, trailing garbage).
var ErrWireCorrupt = errors.New("msg: corrupt binary payload")

// WireDec decodes one binary payload.  The zero value is ready after
// Reset; it holds no resources and lives happily on the stack.
type WireDec struct {
	b   []byte
	err error
}

// Reset points the decoder at a new payload and clears any error.
func (d *WireDec) Reset(b []byte) { d.b, d.err = b, nil }

// Err returns the sticky decode error, nil when the payload was clean
// so far.  Callers must also check Remaining() == 0 when the payload is
// supposed to be fully consumed.
func (d *WireDec) Err() error { return d.err }

// Remaining returns the number of undecoded bytes.
func (d *WireDec) Remaining() int { return len(d.b) }

func (d *WireDec) fail() {
	if d.err == nil {
		d.err = ErrWireCorrupt
	}
	d.b = nil
}

// U8 decodes one byte.
func (d *WireDec) U8() uint8 {
	if len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// Bool decodes one byte as a boolean.
func (d *WireDec) Bool() bool { return d.U8() != 0 }

// U16 decodes a little-endian uint16.
func (d *WireDec) U16() uint16 {
	if len(d.b) < 2 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v
}

// U32 decodes a little-endian uint32.
func (d *WireDec) U32() uint32 {
	if len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

// U64 decodes a little-endian uint64.
func (d *WireDec) U64() uint64 {
	if len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

// Count decodes a u32 element count and validates it against the bytes
// remaining (each element encodes to at least one byte), so a corrupt
// count can never drive a large allocation.
func (d *WireDec) Count() int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if int(n) > len(d.b) {
		d.fail()
		return 0
	}
	return int(n)
}

// Bytes decodes a u32-length-prefixed byte slice, reusing dst's
// capacity when it suffices.  Zero length decodes as nil.
func (d *WireDec) Bytes(dst []byte) []byte {
	n := d.Count()
	if d.err != nil || n == 0 {
		return nil
	}
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	copy(dst, d.b[:n])
	d.b = d.b[n:]
	return dst
}

// Str decodes a u32-length-prefixed string.  Zero length decodes as ""
// without allocating.
func (d *WireDec) Str() string {
	n := d.Count()
	if d.err != nil || n == 0 {
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// Trace decodes a span.Context.
func (d *WireDec) Trace() span.Context {
	c, rest, ok := span.DecodeWire(d.b)
	if !ok {
		d.fail()
		return span.Context{}
	}
	d.b = rest
	return c
}

// Name decodes a lock.Name.
func (d *WireDec) Name() lock.Name {
	return lock.Name{Page: page.ID(d.U64()), Slot: d.U16(), IsPage: d.Bool()}
}

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendName(b []byte, n lock.Name) []byte {
	b = appendU64(b, uint64(n.Page))
	b = appendU16(b, n.Slot)
	return appendBool(b, n.IsPage)
}

const nameWireSize = 11

// --- LockReq ---

// WireSize returns the exact encoded size of the request.
func (r *LockReq) WireSize() int { return 4 + nameWireSize + 4 + 8 + span.WireSize }

// AppendWire appends the binary encoding of the request to b.
func (r *LockReq) AppendWire(b []byte) []byte {
	b = appendU32(b, uint32(r.Client))
	b = appendName(b, r.Name)
	b = append(b, uint8(r.Mode))
	b = appendBool(b, r.PreferPage)
	b = appendBool(b, r.Upgrade)
	b = appendBool(b, r.HasCached)
	b = appendU64(b, uint64(r.CachedPSN))
	return r.Trace.AppendWire(b)
}

// DecodeWire fills the request from d, reusing its slice capacity.
func (r *LockReq) DecodeWire(d *WireDec) {
	r.Client = ident.ClientID(d.U32())
	r.Name = d.Name()
	r.Mode = lock.Mode(d.U8())
	r.PreferPage = d.Bool()
	r.Upgrade = d.Bool()
	r.HasCached = d.Bool()
	r.CachedPSN = page.PSN(d.U64())
	r.Trace = d.Trace()
}

// --- LockReply ---

const originWireSize = 10 + 4 + 8

// WireSize returns the exact encoded size of the reply.
func (r *LockReply) WireSize() int {
	return nameWireSize + 1 + 4 + len(r.Origins)*originWireSize
}

// AppendWire appends the binary encoding of the reply to b.
func (r *LockReply) AppendWire(b []byte) []byte {
	b = appendName(b, r.Name)
	b = append(b, uint8(r.Mode))
	b = appendU32(b, uint32(len(r.Origins)))
	for i := range r.Origins {
		o := &r.Origins[i]
		b = appendU64(b, uint64(o.Object.Page))
		b = appendU16(b, o.Object.Slot)
		b = appendU32(b, uint32(o.Responder))
		b = appendU64(b, uint64(o.PSN))
	}
	return b
}

// DecodeWire fills the reply from d, reusing its slice capacity.
func (r *LockReply) DecodeWire(d *WireDec) {
	r.Name = d.Name()
	r.Mode = lock.Mode(d.U8())
	n := d.Count()
	if n == 0 {
		r.Origins = nil
		return
	}
	if cap(r.Origins) < n {
		r.Origins = make([]CallbackOrigin, n)
	}
	r.Origins = r.Origins[:n]
	for i := range r.Origins {
		o := &r.Origins[i]
		o.Object.Page = page.ID(d.U64())
		o.Object.Slot = d.U16()
		o.Responder = ident.ClientID(d.U32())
		o.PSN = page.PSN(d.U64())
	}
}

// --- LockBatchReq ---

const lockItemWireSize = nameWireSize + 4 + 8

// WireSize returns the exact encoded size of the request.
func (r *LockBatchReq) WireSize() int {
	return 4 + span.WireSize + 4 + len(r.Items)*lockItemWireSize
}

// AppendWire appends the binary encoding of the request to b.
func (r *LockBatchReq) AppendWire(b []byte) []byte {
	b = appendU32(b, uint32(r.Client))
	b = r.Trace.AppendWire(b)
	b = appendU32(b, uint32(len(r.Items)))
	for i := range r.Items {
		it := &r.Items[i]
		b = appendName(b, it.Name)
		b = append(b, uint8(it.Mode))
		b = appendBool(b, it.PreferPage)
		b = appendBool(b, it.Upgrade)
		b = appendBool(b, it.HasCached)
		b = appendU64(b, uint64(it.CachedPSN))
	}
	return b
}

// DecodeWire fills the request from d, reusing its slice capacity.
func (r *LockBatchReq) DecodeWire(d *WireDec) {
	r.Client = ident.ClientID(d.U32())
	r.Trace = d.Trace()
	n := d.Count()
	if n == 0 {
		r.Items = nil
		return
	}
	if cap(r.Items) < n {
		r.Items = make([]LockItem, n)
	}
	r.Items = r.Items[:n]
	for i := range r.Items {
		it := &r.Items[i]
		it.Name = d.Name()
		it.Mode = lock.Mode(d.U8())
		it.PreferPage = d.Bool()
		it.Upgrade = d.Bool()
		it.HasCached = d.Bool()
		it.CachedPSN = page.PSN(d.U64())
	}
}

// --- LockBatchReply ---

// WireSize returns the exact encoded size of the reply.
func (r *LockBatchReply) WireSize() int {
	n := 4 + 4
	for i := range r.Grants {
		n += r.Grants[i].WireSize()
	}
	for _, e := range r.Errs {
		n += 4 + len(e)
	}
	return n
}

// AppendWire appends the binary encoding of the reply to b.
func (r *LockBatchReply) AppendWire(b []byte) []byte {
	b = appendU32(b, uint32(len(r.Grants)))
	for i := range r.Grants {
		b = r.Grants[i].AppendWire(b)
	}
	b = appendU32(b, uint32(len(r.Errs)))
	for _, e := range r.Errs {
		b = appendStr(b, e)
	}
	return b
}

// DecodeWire fills the reply from d, reusing its slice capacity.
func (r *LockBatchReply) DecodeWire(d *WireDec) {
	n := d.Count()
	if n == 0 {
		r.Grants = nil
	} else {
		if cap(r.Grants) < n {
			r.Grants = make([]LockReply, n)
		}
		r.Grants = r.Grants[:n]
		for i := range r.Grants {
			r.Grants[i].DecodeWire(d)
		}
	}
	n = d.Count()
	if n == 0 {
		r.Errs = nil
		return
	}
	if cap(r.Errs) < n {
		r.Errs = make([]string, n)
	}
	r.Errs = r.Errs[:n]
	for i := range r.Errs {
		r.Errs[i] = d.Str()
	}
}

// --- FetchReq ---

// WireSize returns the exact encoded size of the request.
func (r *FetchReq) WireSize() int { return 4 + 8 + 1 + span.WireSize }

// AppendWire appends the binary encoding of the request to b.
func (r *FetchReq) AppendWire(b []byte) []byte {
	b = appendU32(b, uint32(r.Client))
	b = appendU64(b, uint64(r.Page))
	b = appendBool(b, r.Recovery)
	return r.Trace.AppendWire(b)
}

// DecodeWire fills the request from d.
func (r *FetchReq) DecodeWire(d *WireDec) {
	r.Client = ident.ClientID(d.U32())
	r.Page = page.ID(d.U64())
	r.Recovery = d.Bool()
	r.Trace = d.Trace()
}

// --- FetchReply ---

// WireSize returns the exact encoded size of the reply.
func (r *FetchReply) WireSize() int { return 4 + len(r.Image) + 8 }

// AppendWire appends the binary encoding of the reply to b.
func (r *FetchReply) AppendWire(b []byte) []byte {
	b = appendBytes(b, r.Image)
	return appendU64(b, uint64(r.DCTPSN))
}

// DecodeWire fills the reply from d, reusing its image capacity.
func (r *FetchReply) DecodeWire(d *WireDec) {
	r.Image = d.Bytes(r.Image)
	r.DCTPSN = page.PSN(d.U64())
}

// --- FetchBatchReq ---

// WireSize returns the exact encoded size of the request.
func (r *FetchBatchReq) WireSize() int {
	return 4 + span.WireSize + 4 + len(r.Pages)*8
}

// AppendWire appends the binary encoding of the request to b.
func (r *FetchBatchReq) AppendWire(b []byte) []byte {
	b = appendU32(b, uint32(r.Client))
	b = r.Trace.AppendWire(b)
	b = appendU32(b, uint32(len(r.Pages)))
	for _, p := range r.Pages {
		b = appendU64(b, uint64(p))
	}
	return b
}

// DecodeWire fills the request from d, reusing its slice capacity.
func (r *FetchBatchReq) DecodeWire(d *WireDec) {
	r.Client = ident.ClientID(d.U32())
	r.Trace = d.Trace()
	n := d.Count()
	if n == 0 {
		r.Pages = nil
		return
	}
	if cap(r.Pages) < n {
		r.Pages = make([]page.ID, n)
	}
	r.Pages = r.Pages[:n]
	for i := range r.Pages {
		r.Pages[i] = page.ID(d.U64())
	}
}

// --- FetchBatchReply ---

// WireSize returns the exact encoded size of the reply.
func (r *FetchBatchReply) WireSize() int {
	n := 4 + 4 + len(r.DCTPSNs)*8 + 4
	for _, img := range r.Images {
		n += 4 + len(img)
	}
	for _, e := range r.Errs {
		n += 4 + len(e)
	}
	return n
}

// AppendWire appends the binary encoding of the reply to b.
func (r *FetchBatchReply) AppendWire(b []byte) []byte {
	b = appendU32(b, uint32(len(r.Images)))
	for _, img := range r.Images {
		b = appendBytes(b, img)
	}
	b = appendU32(b, uint32(len(r.DCTPSNs)))
	for _, p := range r.DCTPSNs {
		b = appendU64(b, uint64(p))
	}
	b = appendU32(b, uint32(len(r.Errs)))
	for _, e := range r.Errs {
		b = appendStr(b, e)
	}
	return b
}

// DecodeWire fills the reply from d, reusing its slice capacity (both
// the outer image list and each image buffer).
func (r *FetchBatchReply) DecodeWire(d *WireDec) {
	n := d.Count()
	if n == 0 {
		r.Images = nil
	} else {
		if cap(r.Images) < n {
			r.Images = make([][]byte, n)
		}
		r.Images = r.Images[:n]
		for i := range r.Images {
			r.Images[i] = d.Bytes(r.Images[i])
		}
	}
	n = d.Count()
	if n == 0 {
		r.DCTPSNs = nil
	} else {
		if cap(r.DCTPSNs) < n {
			r.DCTPSNs = make([]page.PSN, n)
		}
		r.DCTPSNs = r.DCTPSNs[:n]
		for i := range r.DCTPSNs {
			r.DCTPSNs[i] = page.PSN(d.U64())
		}
	}
	n = d.Count()
	if n == 0 {
		r.Errs = nil
		return
	}
	if cap(r.Errs) < n {
		r.Errs = make([]string, n)
	}
	r.Errs = r.Errs[:n]
	for i := range r.Errs {
		r.Errs[i] = d.Str()
	}
}

// --- UnlockReq ---

// WireSize returns the exact encoded size of the request.
func (r *UnlockReq) WireSize() int {
	return 4 + 1 + nameWireSize + 4 + len(r.Objs)*3
}

// AppendWire appends the binary encoding of the request to b.
func (r *UnlockReq) AppendWire(b []byte) []byte {
	b = appendU32(b, uint32(r.Client))
	b = append(b, uint8(r.Action))
	b = appendName(b, r.Name)
	b = appendU32(b, uint32(len(r.Objs)))
	for _, o := range r.Objs {
		b = appendU16(b, o.Slot)
		b = append(b, uint8(o.Mode))
	}
	return b
}

// DecodeWire fills the request from d, reusing its slice capacity.
func (r *UnlockReq) DecodeWire(d *WireDec) {
	r.Client = ident.ClientID(d.U32())
	r.Action = UnlockAction(d.U8())
	r.Name = d.Name()
	n := d.Count()
	if n == 0 {
		r.Objs = nil
		return
	}
	if cap(r.Objs) < n {
		r.Objs = make([]lock.ObjLock, n)
	}
	r.Objs = r.Objs[:n]
	for i := range r.Objs {
		r.Objs[i].Slot = d.U16()
		r.Objs[i].Mode = lock.Mode(d.U8())
	}
}

// --- ShipReq ---

// WireSize returns the exact encoded size of the request.
func (r *ShipReq) WireSize() int { return 4 + 1 + span.WireSize + 4 + len(r.Image) }

// AppendWire appends the binary encoding of the request to b.
func (r *ShipReq) AppendWire(b []byte) []byte {
	b = appendU32(b, uint32(r.Client))
	b = append(b, uint8(r.Reason))
	b = r.Trace.AppendWire(b)
	return appendBytes(b, r.Image)
}

// DecodeWire fills the request from d, reusing its image capacity.
func (r *ShipReq) DecodeWire(d *WireDec) {
	r.Client = ident.ClientID(d.U32())
	r.Reason = ShipReason(d.U8())
	r.Trace = d.Trace()
	r.Image = d.Bytes(r.Image)
}

// --- ForceReq ---

// WireSize returns the exact encoded size of the request.
func (r *ForceReq) WireSize() int { return 4 + 8 + span.WireSize }

// AppendWire appends the binary encoding of the request to b.
func (r *ForceReq) AppendWire(b []byte) []byte {
	b = appendU32(b, uint32(r.Client))
	b = appendU64(b, uint64(r.Page))
	return r.Trace.AppendWire(b)
}

// DecodeWire fills the request from d.
func (r *ForceReq) DecodeWire(d *WireDec) {
	r.Client = ident.ClientID(d.U32())
	r.Page = page.ID(d.U64())
	r.Trace = d.Trace()
}

// --- ForceReply ---

// WireSize returns the exact encoded size of the reply.
func (r *ForceReply) WireSize() int { return 8 }

// AppendWire appends the binary encoding of the reply to b.
func (r *ForceReply) AppendWire(b []byte) []byte { return appendU64(b, uint64(r.PSN)) }

// DecodeWire fills the reply from d.
func (r *ForceReply) DecodeWire(d *WireDec) { r.PSN = page.PSN(d.U64()) }

// --- CommitShipReq ---

// WireSize returns the exact encoded size of the request.
func (r *CommitShipReq) WireSize() int {
	n := 4 + 8 + span.WireSize + 4 + 4
	for _, rec := range r.Records {
		n += 4 + len(rec)
	}
	for _, p := range r.Pages {
		n += 4 + len(p)
	}
	return n
}

// AppendWire appends the binary encoding of the request to b.
func (r *CommitShipReq) AppendWire(b []byte) []byte {
	b = appendU32(b, uint32(r.Client))
	b = appendU64(b, uint64(r.Txn))
	b = r.Trace.AppendWire(b)
	b = appendU32(b, uint32(len(r.Records)))
	for _, rec := range r.Records {
		b = appendBytes(b, rec)
	}
	b = appendU32(b, uint32(len(r.Pages)))
	for _, p := range r.Pages {
		b = appendBytes(b, p)
	}
	return b
}

// DecodeWire fills the request from d, reusing its slice capacity.
func (r *CommitShipReq) DecodeWire(d *WireDec) {
	r.Client = ident.ClientID(d.U32())
	r.Txn = ident.TxnID(d.U64())
	r.Trace = d.Trace()
	n := d.Count()
	if n == 0 {
		r.Records = nil
	} else {
		if cap(r.Records) < n {
			r.Records = make([][]byte, n)
		}
		r.Records = r.Records[:n]
		for i := range r.Records {
			r.Records[i] = d.Bytes(r.Records[i])
		}
	}
	n = d.Count()
	if n == 0 {
		r.Pages = nil
		return
	}
	if cap(r.Pages) < n {
		r.Pages = make([][]byte, n)
	}
	r.Pages = r.Pages[:n]
	for i := range r.Pages {
		r.Pages[i] = d.Bytes(r.Pages[i])
	}
}
