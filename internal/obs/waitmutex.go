package obs

import (
	"sync"
	"time"
)

// WaitMutex is a sync.Mutex that accumulates the time callers spend
// blocked into a Counter (nanoseconds).  The uncontended path is a
// single TryLock, so instrumentation costs nothing when the lock is
// free; only a blocked caller pays for two clock reads.
//
// Several WaitMutexes may share one Counter (e.g. all shards of a
// sharded table report into a single mutex_wait_nanos_total series),
// and a Counter can be bound into a Registry with BindCounter.
type WaitMutex struct {
	mu sync.Mutex
	// wait, when non-nil, receives blocked nanoseconds.  Set it before
	// the mutex is shared (typically at construction).
	wait *Counter
}

// SetWaitCounter directs blocked time into c.  Call before the mutex is
// visible to other goroutines.
func (m *WaitMutex) SetWaitCounter(c *Counter) { m.wait = c }

// Lock locks the mutex, accounting any blocked time.
func (m *WaitMutex) Lock() {
	if m.mu.TryLock() {
		return
	}
	if m.wait == nil {
		m.mu.Lock()
		return
	}
	t0 := time.Now()
	m.mu.Lock()
	m.wait.Add(uint64(time.Since(t0)))
}

// Unlock unlocks the mutex.
func (m *WaitMutex) Unlock() { m.mu.Unlock() }

// WaitRWMutex is the sync.RWMutex analog of WaitMutex: blocked time of
// both readers and writers accumulates into the shared Counter.
type WaitRWMutex struct {
	mu   sync.RWMutex
	wait *Counter
}

// SetWaitCounter directs blocked time into c.  Call before the mutex is
// visible to other goroutines.
func (m *WaitRWMutex) SetWaitCounter(c *Counter) { m.wait = c }

// Lock write-locks the mutex, accounting any blocked time.
func (m *WaitRWMutex) Lock() {
	if m.mu.TryLock() {
		return
	}
	if m.wait == nil {
		m.mu.Lock()
		return
	}
	t0 := time.Now()
	m.mu.Lock()
	m.wait.Add(uint64(time.Since(t0)))
}

// Unlock write-unlocks the mutex.
func (m *WaitRWMutex) Unlock() { m.mu.Unlock() }

// RLock read-locks the mutex, accounting any blocked time.
func (m *WaitRWMutex) RLock() {
	if m.mu.TryRLock() {
		return
	}
	if m.wait == nil {
		m.mu.RLock()
		return
	}
	t0 := time.Now()
	m.mu.RLock()
	m.wait.Add(uint64(time.Since(t0)))
}

// RUnlock read-unlocks the mutex.
func (m *WaitRWMutex) RUnlock() { m.mu.RUnlock() }
