package obs

import (
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines and
// checks that no increment is lost (run under -race in CI).
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("Load() = %d, want %d", got, workers*per)
	}
}

// TestCounterAllocFree proves the fast path allocates nothing.
func TestCounterAllocFree(t *testing.T) {
	var c Counter
	if allocs := testing.AllocsPerRun(1000, func() { c.Add(1) }); allocs != 0 {
		t.Fatalf("Counter.Add allocates %.1f objects per call, want 0", allocs)
	}
	var h Histogram
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(42) }); allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f objects per call, want 0", allocs)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("Load() = %d, want 7", got)
	}
}

// TestHistogramBuckets checks the log₂ bucketing and the summary
// fields.
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	v := h.View()
	if v.Count != 6 {
		t.Fatalf("Count = %d, want 6", v.Count)
	}
	if v.Sum != 1010 {
		t.Fatalf("Sum = %d, want 1010", v.Sum)
	}
	// 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 4 -> bucket 3;
	// 1000 -> bucket 10 ([512,1024)).
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 10: 1}
	for i, n := range v.Buckets {
		if n != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	v := h.View()
	if v.Count != workers*per {
		t.Fatalf("Count = %d, want %d", v.Count, workers*per)
	}
	var bucketSum uint64
	for _, n := range v.Buckets {
		bucketSum += n
	}
	if bucketSum != v.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, v.Count)
	}
}

// TestHistogramQuantile checks quantiles stay within their bucket's
// factor-of-two error bound.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	v := h.View()
	p50 := v.Quantile(0.50)
	if p50 < 256 || p50 > 1024 {
		t.Fatalf("p50 = %d, want within [256,1024] (true median 500)", p50)
	}
	p99 := v.Quantile(0.99)
	if p99 < 512 || p99 > 1024 {
		t.Fatalf("p99 = %d, want within [512,1024] (true p99 990)", p99)
	}
	if q := v.Quantile(0); q > v.Quantile(1) {
		t.Fatalf("q0 %d > q1 %d", q, v.Quantile(1))
	}
	var empty HistView
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestHistViewMergeSub(t *testing.T) {
	var a, b Histogram
	a.Observe(10)
	a.Observe(20)
	b.Observe(30)
	m := a.View().Merge(b.View())
	if m.Count != 3 || m.Sum != 60 {
		t.Fatalf("merge = count %d sum %d, want 3/60", m.Count, m.Sum)
	}
	d := m.Sub(a.View())
	if d.Count != 1 || d.Sum != 30 {
		t.Fatalf("sub = count %d sum %d, want 1/30", d.Count, d.Sum)
	}
}

func TestObserveDurationClampsNegative(t *testing.T) {
	var h Histogram
	h.ObserveDuration(-time.Second)
	v := h.View()
	if v.Count != 1 || v.Sum != 0 || v.Buckets[0] != 1 {
		t.Fatalf("negative duration not clamped to zero: %+v", v)
	}
}

// BenchmarkObsCounter measures the hot-path cost under parallel load
// and proves it allocation-free.
func BenchmarkObsCounter(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkObsHistogram(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var i uint64
		for pb.Next() {
			i++
			h.Observe(i)
		}
	})
}
