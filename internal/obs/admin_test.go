package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"clientlog/internal/trace"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("commits_total", T("scope", "server")).Add(42)
	srv := httptest.NewServer(AdminHandler(AdminOptions{Registry: reg}))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, `commits_total{scope="server"} 42`) {
		t.Fatalf("/metrics missing series: %q", body)
	}
}

func TestAdminHealthz(t *testing.T) {
	healthy := httptest.NewServer(AdminHandler(AdminOptions{}))
	defer healthy.Close()
	if code, body := get(t, healthy, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthy: %d %q", code, body)
	}

	sick := httptest.NewServer(AdminHandler(AdminOptions{
		Health: func() error { return errors.New("dct/lock mismatch") },
	}))
	defer sick.Close()
	if code, body := get(t, sick, "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "dct/lock mismatch") {
		t.Fatalf("unhealthy: %d %q", code, body)
	}
}

func TestAdminEvents(t *testing.T) {
	ring := trace.NewRing(16)
	ring.Record(trace.LockGrant, 1, 7, "S")
	ring.Record(trace.PageShip, 2, 9, "")
	ring.Record(trace.LockGrant, 2, 7, "X")
	srv := httptest.NewServer(AdminHandler(AdminOptions{Events: ring}))
	defer srv.Close()

	decode := func(body string) []map[string]any {
		var out []map[string]any
		dec := json.NewDecoder(strings.NewReader(body))
		for dec.More() {
			var m map[string]any
			if err := dec.Decode(&m); err != nil {
				t.Fatal(err)
			}
			out = append(out, m)
		}
		return out
	}

	_, body := get(t, srv, "/events")
	if n := len(decode(body)); n != 3 {
		t.Fatalf("unfiltered: %d events, want 3", n)
	}

	_, body = get(t, srv, "/events?kind="+trace.LockGrant.String())
	events := decode(body)
	if len(events) != 2 {
		t.Fatalf("kind filter: %d events, want 2", len(events))
	}

	_, body = get(t, srv, "/events?client=c2")
	events = decode(body)
	if len(events) != 2 {
		t.Fatalf("client filter: %d events, want 2", len(events))
	}

	_, body = get(t, srv, "/events?page=7&n=1")
	events = decode(body)
	if len(events) != 1 || events[0]["detail"] != "X" {
		t.Fatalf("page+n filter: %+v", events)
	}
}

func TestAdminPprof(t *testing.T) {
	srv := httptest.NewServer(AdminHandler(AdminOptions{}))
	defer srv.Close()
	if code, _ := get(t, srv, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestStartAdmin(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Inc()
	adm, err := StartAdmin("127.0.0.1:0", AdminOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	resp, err := http.Get("http://" + adm.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up_total 1") {
		t.Fatalf("live endpoint missing metric: %q", body)
	}
}
