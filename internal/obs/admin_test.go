package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"clientlog/internal/trace"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("commits_total", T("scope", "server")).Add(42)
	srv := httptest.NewServer(AdminHandler(AdminOptions{Registry: reg}))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, `commits_total{scope="server"} 42`) {
		t.Fatalf("/metrics missing series: %q", body)
	}
}

func TestAdminHealthz(t *testing.T) {
	healthy := httptest.NewServer(AdminHandler(AdminOptions{}))
	defer healthy.Close()
	if code, body := get(t, healthy, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthy: %d %q", code, body)
	}

	sick := httptest.NewServer(AdminHandler(AdminOptions{
		Health: func() error { return errors.New("dct/lock mismatch") },
	}))
	defer sick.Close()
	if code, body := get(t, sick, "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "dct/lock mismatch") {
		t.Fatalf("unhealthy: %d %q", code, body)
	}
}

func TestAdminEvents(t *testing.T) {
	ring := trace.NewRing(16)
	ring.Record(trace.LockGrant, 1, 7, "S")
	ring.Record(trace.PageShip, 2, 9, "")
	ring.Record(trace.LockGrant, 2, 7, "X")
	srv := httptest.NewServer(AdminHandler(AdminOptions{Events: ring}))
	defer srv.Close()

	decode := func(body string) []map[string]any {
		var out []map[string]any
		dec := json.NewDecoder(strings.NewReader(body))
		for dec.More() {
			var m map[string]any
			if err := dec.Decode(&m); err != nil {
				t.Fatal(err)
			}
			out = append(out, m)
		}
		return out
	}

	_, body := get(t, srv, "/events")
	if n := len(decode(body)); n != 3 {
		t.Fatalf("unfiltered: %d events, want 3", n)
	}

	_, body = get(t, srv, "/events?kind="+trace.LockGrant.String())
	events := decode(body)
	if len(events) != 2 {
		t.Fatalf("kind filter: %d events, want 2", len(events))
	}

	_, body = get(t, srv, "/events?client=c2")
	events = decode(body)
	if len(events) != 2 {
		t.Fatalf("client filter: %d events, want 2", len(events))
	}

	_, body = get(t, srv, "/events?page=7&n=1")
	events = decode(body)
	if len(events) != 1 || events[0]["detail"] != "X" {
		t.Fatalf("page+n filter: %+v", events)
	}
}

// decodeNDJSON parses a newline-delimited JSON body into generic maps.
func decodeNDJSON(t *testing.T, body string) []map[string]any {
	t.Helper()
	var out []map[string]any
	dec := json.NewDecoder(strings.NewReader(body))
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}

func TestAdminEventsCombinedFilters(t *testing.T) {
	ring := trace.NewRing(32)
	// Two lock-grants from c1 on page 7, one from c2 on page 7, plus
	// noise on other kinds/clients/pages.
	ring.Record(trace.LockGrant, 1, 7, "S")
	ring.Record(trace.PageShip, 1, 7, "")
	ring.Record(trace.LockGrant, 2, 7, "X")
	ring.Record(trace.LockGrant, 1, 9, "S")
	ring.Record(trace.LockGrant, 1, 7, "X")
	srv := httptest.NewServer(AdminHandler(AdminOptions{Events: ring}))
	defer srv.Close()

	// All four filters at once: kind+client+page selects the two c1
	// grants on page 7, n=1 keeps the most recent of those.
	_, body := get(t, srv, "/events?kind="+trace.LockGrant.String()+"&client=c1&page=7")
	events := decodeNDJSON(t, body)
	if len(events) != 2 {
		t.Fatalf("kind+client+page: %d events, want 2", len(events))
	}
	_, body = get(t, srv, "/events?kind="+trace.LockGrant.String()+"&client=c1&page=7&n=1")
	events = decodeNDJSON(t, body)
	if len(events) != 1 || events[0]["detail"] != "X" || events[0]["seq"] != float64(5) {
		t.Fatalf("kind+client+page+n: %+v", events)
	}
	// A combination matching nothing returns an empty body, not an error.
	code, body := get(t, srv, "/events?kind="+trace.PageMerge.String()+"&client=c1&page=7")
	if code != http.StatusOK || len(decodeNDJSON(t, body)) != 0 {
		t.Fatalf("empty combination: %d %q", code, body)
	}
}

func TestAdminEventsSincePagination(t *testing.T) {
	ring := trace.NewRing(32)
	ring.Record(trace.LockGrant, 1, 7, "a")
	ring.Record(trace.PageShip, 1, 8, "b")
	srv := httptest.NewServer(AdminHandler(AdminOptions{Events: ring}))
	defer srv.Close()

	// First page: read everything, remember the last seq as the cursor.
	_, body := get(t, srv, "/events")
	events := decodeNDJSON(t, body)
	if len(events) != 2 {
		t.Fatalf("first page: %d events", len(events))
	}
	cursor := uint64(events[len(events)-1]["seq"].(float64))

	// Nothing new: empty page, 200.
	code, body := get(t, srv, fmt.Sprintf("/events?since=%d", cursor))
	if code != http.StatusOK || len(decodeNDJSON(t, body)) != 0 {
		t.Fatalf("empty tail: %d %q", code, body)
	}

	// Two more events arrive; the next page returns exactly those, in
	// order, with contiguous seqs — no skips, no duplicates.
	ring.Record(trace.LockGrant, 2, 7, "c")
	ring.Record(trace.PageMerge, 2, 7, "d")
	_, body = get(t, srv, fmt.Sprintf("/events?since=%d", cursor))
	events = decodeNDJSON(t, body)
	if len(events) != 2 {
		t.Fatalf("second page: %+v", events)
	}
	if events[0]["seq"] != float64(cursor+1) || events[1]["seq"] != float64(cursor+2) {
		t.Fatalf("second page seqs: %+v", events)
	}

	// since composes with the other filters.
	_, body = get(t, srv, fmt.Sprintf("/events?since=%d&kind=%s", cursor, trace.PageMerge))
	events = decodeNDJSON(t, body)
	if len(events) != 1 || events[0]["detail"] != "d" {
		t.Fatalf("since+kind: %+v", events)
	}

	// A malformed cursor is a client error.
	if code, _ := get(t, srv, "/events?since=banana"); code != http.StatusBadRequest {
		t.Fatalf("bad since: status %d", code)
	}
}

func TestAdminExtraHandlers(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Inc()
	srv := httptest.NewServer(AdminHandler(AdminOptions{
		Registry: reg,
		Handlers: map[string]http.Handler{
			"/custom": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				fmt.Fprint(w, "injected")
			}),
		},
	}))
	defer srv.Close()

	if code, body := get(t, srv, "/custom"); code != http.StatusOK || body != "injected" {
		t.Fatalf("/custom: %d %q", code, body)
	}
	// Built-in routes still work alongside injected ones.
	if code, body := get(t, srv, "/metrics"); code != http.StatusOK || !strings.Contains(body, "up_total 1") {
		t.Fatalf("/metrics with extra handlers: %d %q", code, body)
	}
}

func TestAdminPprof(t *testing.T) {
	srv := httptest.NewServer(AdminHandler(AdminOptions{}))
	defer srv.Close()
	if code, _ := get(t, srv, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestStartAdmin(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Inc()
	adm, err := StartAdmin("127.0.0.1:0", AdminOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	resp, err := http.Get("http://" + adm.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up_total 1") {
		t.Fatalf("live endpoint missing metric: %q", body)
	}
}
