package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Tag is one key=value label on a series.  The repo-wide tag scheme:
// scope=server|client:<id> says which engine updates the series,
// scheme=paper|page-lock|token|ship-log|ship-pages labels the
// configuration under test, msg=<call> names a protocol message type,
// and lockmode/level/kind discriminate within a family.
type Tag struct {
	K, V string
}

// T builds a Tag.
func T(k, v string) Tag { return Tag{K: k, V: v} }

type seriesKind uint8

const (
	kindCounter seriesKind = iota + 1
	kindGauge
	kindHist
)

// series is one named+tagged time series.  Counters and histograms keep
// a slice of sources whose values sum on read: a restarted engine binds
// a fresh zero counter to the same series and the series total stays
// monotone across the restart (the old engine's counts remain, the new
// engine's add on top).
type series struct {
	name string // sanitized family name
	tags []Tag  // sorted by key
	kind seriesKind

	counters []*Counter
	gauge    *Gauge
	hists    []*Histogram
}

func (s *series) counterValue() uint64 {
	var t uint64
	for _, c := range s.counters {
		t += c.Load()
	}
	return t
}

func (s *series) histView() HistView {
	var v HistView
	for _, h := range s.hists {
		v = v.Merge(h.View())
	}
	return v
}

// Registry holds tagged metric series.  Registration and snapshotting
// take a lock; the returned Counter/Gauge/Histogram handles are held by
// the instrumentation points, so the hot update paths never touch the
// registry.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series
	order  []string

	pmu     sync.Mutex
	pending []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// sanitizeName maps a metric family name into the Prometheus alphabet
// [a-zA-Z0-9_:].
func sanitizeName(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !(c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
			ok = false
			break
		}
	}
	if ok {
		return name
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func escapeTagValue(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// renderKey builds the canonical series id: name{k="v",...} with tags
// sorted by key, or the bare name when untagged.  Registration happens
// on every fresh cluster (benchmarks build thousands), so this stays a
// single allocation.
func renderKey(name string, tags []Tag) string {
	if len(tags) == 0 {
		return name
	}
	n := len(name) + 2
	for _, t := range tags {
		n += len(t.K) + len(t.V) + 4
	}
	var b strings.Builder
	b.Grow(n)
	b.WriteString(name)
	b.WriteByte('{')
	for i, t := range tags {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeName(t.K))
		b.WriteString(`="`)
		b.WriteString(escapeTagValue(t.V))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// normTags returns tags sorted by key.  The input is a fresh variadic
// slice owned by the registry call, so an already-sorted slice (the
// overwhelmingly common zero- and one-tag cases included) is returned
// as is.
func normTags(tags []Tag) []Tag {
	if len(tags) == 0 {
		return nil
	}
	inOrder := true
	for i := 1; i < len(tags); i++ {
		if tags[i].K < tags[i-1].K {
			inOrder = false
			break
		}
	}
	if inOrder {
		return tags
	}
	out := make([]Tag, len(tags))
	copy(out, tags)
	sort.SliceStable(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}

// get returns the series for (name, tags), creating it with kind k if
// absent.  Called with r.mu held.
func (r *Registry) get(name string, k seriesKind, tags []Tag) *series {
	name = sanitizeName(name)
	tags = normTags(tags)
	key := renderKey(name, tags)
	s := r.series[key]
	if s == nil {
		s = &series{name: name, tags: tags, kind: k}
		r.series[key] = s
		r.order = append(r.order, key)
	}
	return s
}

// Counter returns the counter registered under (name, tags), creating
// one if needed.  Repeated calls return the same counter.
func (r *Registry) Counter(name string, tags ...Tag) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(name, kindCounter, tags)
	if len(s.counters) == 0 {
		s.counters = append(s.counters, &Counter{})
	}
	return s.counters[0]
}

// BindCounter attaches an existing counter to (name, tags).  Binding a
// second counter to the same series sums the sources on read: engines
// that restart bind their fresh metrics to the same series and the
// series stays monotone.
func (r *Registry) BindCounter(c *Counter, name string, tags ...Tag) {
	if c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(name, kindCounter, tags)
	for _, have := range s.counters {
		if have == c {
			return
		}
	}
	s.counters = append(s.counters, c)
}

// Gauge returns the gauge registered under (name, tags), creating one
// if needed.
func (r *Registry) Gauge(name string, tags ...Tag) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(name, kindGauge, tags)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// BindGauge attaches an existing gauge to (name, tags), replacing any
// previous binding (a gauge is an instantaneous value; the latest
// engine owns it).
func (r *Registry) BindGauge(g *Gauge, name string, tags ...Tag) {
	if g == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.get(name, kindGauge, tags).gauge = g
}

// Histogram returns the histogram registered under (name, tags),
// creating one if needed.
func (r *Registry) Histogram(name string, tags ...Tag) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(name, kindHist, tags)
	if len(s.hists) == 0 {
		s.hists = append(s.hists, &Histogram{})
	}
	return s.hists[0]
}

// BindHistogram attaches an existing histogram to (name, tags); like
// BindCounter, multiple sources sum on read.
func (r *Registry) BindHistogram(h *Histogram, name string, tags ...Tag) {
	if h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(name, kindHist, tags)
	for _, have := range s.hists {
		if have == h {
			return
		}
	}
	s.hists = append(s.hists, h)
}

// Lazy defers f — typically a closure over an engine's RegisterObs —
// until the registry is actually read (Snapshot or WritePrometheus).
// Engines come and go constantly in benchmarks and the torture tests;
// deferring the series registration means a run that never scrapes the
// registry never pays for building it.
func (r *Registry) Lazy(f func()) {
	r.pmu.Lock()
	r.pending = append(r.pending, f)
	r.pmu.Unlock()
}

// materialize runs the deferred registrations.  Called without r.mu
// held (the closures take it themselves); loops because a registration
// may enqueue more.
func (r *Registry) materialize() {
	for {
		r.pmu.Lock()
		fs := r.pending
		r.pending = nil
		r.pmu.Unlock()
		if len(fs) == 0 {
			return
		}
		for _, f := range fs {
			f()
		}
	}
}

// TotalCounter sums every counter series of the family directly,
// without materializing a Snapshot.  Read paths that want one number
// (msg.Stats.Messages, the sim harness after every run) use this to
// stay cheap.  It deliberately skips the Lazy registrations: the series
// it serves (the msg_* families) are created eagerly on first use, and
// skipping keeps per-run reads from paying the full engine-bind cost.
func (r *Registry) TotalCounter(family string) uint64 {
	family = sanitizeName(family)
	var t uint64
	r.mu.RLock()
	defer r.mu.RUnlock()
	for key, s := range r.series {
		if s.kind == kindCounter && familyOf(key) == family {
			t += s.counterValue()
		}
	}
	return t
}

// Snapshot is a point-in-time copy of every series, keyed by the
// canonical series id (name{k="v",...}).
type Snapshot struct {
	Counters map[string]uint64
	Gauges   map[string]int64
	Hists    map[string]HistView
}

// Snapshot captures the current value of every series, materializing
// any deferred registrations first.
func (r *Registry) Snapshot() Snapshot {
	r.materialize()
	snap := Snapshot{
		Counters: make(map[string]uint64),
		Gauges:   make(map[string]int64),
		Hists:    make(map[string]HistView),
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for key, s := range r.series {
		switch s.kind {
		case kindCounter:
			snap.Counters[key] = s.counterValue()
		case kindGauge:
			if s.gauge != nil {
				snap.Gauges[key] = s.gauge.Load()
			}
		case kindHist:
			snap.Hists[key] = s.histView()
		}
	}
	return snap
}

// Delta returns the change since prev: counters and histograms
// subtract (series absent from prev count from zero), gauges keep
// their current value.  Experiments bracket a run with two snapshots
// and report the delta.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters: make(map[string]uint64, len(s.Counters)),
		Gauges:   make(map[string]int64, len(s.Gauges)),
		Hists:    make(map[string]HistView, len(s.Hists)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Hists {
		out.Hists[k] = v.Sub(prev.Hists[k])
	}
	return out
}

// familyOf extracts the family name from a series id.
func familyOf(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// Total sums every counter series of the family (e.g.
// Total("msg_messages_total") across all msg= tags).
func (s Snapshot) Total(family string) uint64 {
	family = sanitizeName(family)
	var t uint64
	for k, v := range s.Counters {
		if familyOf(k) == family {
			t += v
		}
	}
	return t
}

// Hist merges every histogram series of the family into one view.
func (s Snapshot) Hist(family string) HistView {
	family = sanitizeName(family)
	var out HistView
	for k, v := range s.Hists {
		if familyOf(k) == family {
			out = out.Merge(v)
		}
	}
	return out
}

// WritePrometheus renders every series in the Prometheus text
// exposition format (version 0.0.4), sorted by series id with one
// TYPE line per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.materialize()
	r.mu.RLock()
	keys := make([]string, len(r.order))
	copy(keys, r.order)
	sort.Strings(keys)
	type row struct {
		key  string
		s    *series
		val  uint64
		gval int64
		hv   HistView
	}
	rows := make([]row, 0, len(keys))
	for _, key := range keys {
		s := r.series[key]
		rw := row{key: key, s: s}
		switch s.kind {
		case kindCounter:
			rw.val = s.counterValue()
		case kindGauge:
			if s.gauge != nil {
				rw.gval = s.gauge.Load()
			}
		case kindHist:
			rw.hv = s.histView()
		}
		rows = append(rows, rw)
	}
	r.mu.RUnlock()

	lastFamily, lastKind := "", seriesKind(0)
	for _, rw := range rows {
		if rw.s.name != lastFamily || rw.s.kind != lastKind {
			lastFamily, lastKind = rw.s.name, rw.s.kind
			t := "counter"
			switch rw.s.kind {
			case kindGauge:
				t = "gauge"
			case kindHist:
				t = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", rw.s.name, t); err != nil {
				return err
			}
		}
		switch rw.s.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", rw.key, rw.val); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", rw.key, rw.gval); err != nil {
				return err
			}
		case kindHist:
			if err := writePromHist(w, rw.s, rw.hv); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHist renders one histogram series: cumulative _bucket lines
// for every non-empty bucket plus +Inf, then _sum and _count.
func writePromHist(w io.Writer, s *series, v HistView) error {
	var cum uint64
	for i, n := range v.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		le := fmt.Sprintf("%d", bucketUpper(i))
		tags := append(append([]Tag{}, s.tags...), T("le", le))
		if _, err := fmt.Fprintf(w, "%s %d\n", renderKey(s.name+"_bucket", normTags(tags)), cum); err != nil {
			return err
		}
	}
	infTags := append(append([]Tag{}, s.tags...), T("le", "+Inf"))
	if _, err := fmt.Fprintf(w, "%s %d\n", renderKey(s.name+"_bucket", normTags(infTags)), v.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", renderKey(s.name+"_sum", s.tags), v.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", renderKey(s.name+"_count", s.tags), v.Count)
	return err
}
