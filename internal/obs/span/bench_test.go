package span

import (
	"testing"

	"clientlog/internal/ident"
)

// BenchmarkTracePerTxnUnpublished measures the per-transaction tracing
// cost on the common path: a trace that is neither head-sampled nor
// slow, so Finish drops it without publishing.  This runs once per
// transaction on every engine, so its allocation count is the tracing
// tax every commit pays.
func BenchmarkTracePerTxnUnpublished(b *testing.B) {
	// SampleEvery beyond b.N so no iteration head-samples; the huge slow
	// cutoff keeps tail sampling off too.
	s := NewStore(Options{SampleEvery: 1 << 30, SlowCutoff: 1 << 62})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := s.Begin(ident.TxnID(i + 1))
		id := t.Start(CatLockWait, "lock")
		_ = t.Context(id)
		t.End(id)
		id = t.Start(CatWALForce, "force")
		t.End(id)
		t.Finish(true)
	}
}

// BenchmarkTracePerTxnPublished is the sampled path for contrast: the
// trace escapes into the store, so its span slice cannot be recycled.
func BenchmarkTracePerTxnPublished(b *testing.B) {
	s := NewStore(Options{SampleEvery: 1, Capacity: 64})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := s.Begin(ident.TxnID(i + 1))
		id := t.Start(CatLockWait, "lock")
		t.End(id)
		t.Finish(true)
	}
}
