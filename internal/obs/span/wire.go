package span

import (
	"encoding/binary"

	"clientlog/internal/ident"
)

// WireSize is the fixed encoded size of a Context on the v3 binary
// wire: txn u64 | span u64 | sampled u8, little-endian like the page
// and wal codecs.
const WireSize = 17

// AppendWire appends the fixed-size binary encoding of c to b.
func (c Context) AppendWire(b []byte) []byte {
	var s byte
	if c.Sampled {
		s = 1
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(c.Txn))
	b = binary.LittleEndian.AppendUint64(b, c.Span)
	return append(b, s)
}

// DecodeWire decodes a Context from the front of b and returns the
// remainder; ok is false when b is too short.
func DecodeWire(b []byte) (c Context, rest []byte, ok bool) {
	if len(b) < WireSize {
		return Context{}, b, false
	}
	c.Txn = ident.TxnID(binary.LittleEndian.Uint64(b))
	c.Span = binary.LittleEndian.Uint64(b[8:])
	c.Sampled = b[16] != 0
	return c, b[WireSize:], true
}
