package span

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"clientlog/internal/obs"
)

// Exclusive decomposes a trace's root interval into exclusive time per
// category: every instant between begin and commit is attributed to the
// deepest span covering it, so the per-category times always sum to
// exactly the root duration (the acceptance property the sim test
// checks).  Children are clamped into their parent's interval; where
// siblings overlap (concurrent callback round trips), the earlier
// sibling wins the overlap, which keeps the partition exact and
// deterministic.
func Exclusive(tr *Trace) (map[Category]int64, int64) {
	ex := make(map[Category]int64, catCount)
	if len(tr.Spans) == 0 {
		return ex, 0
	}
	kids := make(map[uint64][]Span, len(tr.Spans))
	ids := make(map[uint64]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		ids[sp.ID] = true
	}
	root := tr.Spans[0]
	for _, sp := range tr.Spans[1:] {
		parent := sp.Parent
		if !ids[parent] {
			parent = root.ID // orphans (lost parent context) hang off the root
		}
		kids[parent] = append(kids[parent], sp)
	}
	for id := range kids {
		k := kids[id]
		sort.Slice(k, func(i, j int) bool {
			if !k[i].Start.Equal(k[j].Start) {
				return k[i].Start.Before(k[j].Start)
			}
			return k[i].ID < k[j].ID
		})
	}

	var visit func(sp Span, lo, hi time.Time)
	visit = func(sp Span, lo, hi time.Time) {
		if sp.Start.After(lo) {
			lo = sp.Start
		}
		end := sp.End
		if end.Before(sp.Start) {
			end = sp.Start // never-ended span contributes nothing
		}
		if end.Before(hi) {
			hi = end
		}
		if !hi.After(lo) {
			return
		}
		var covered time.Duration
		cursor := lo
		for _, kid := range kids[sp.ID] {
			klo, khi := kid.Start, kid.End
			if klo.Before(cursor) {
				klo = cursor
			}
			if khi.After(hi) {
				khi = hi
			}
			if !khi.After(klo) {
				continue
			}
			visit(kid, klo, khi)
			covered += khi.Sub(klo)
			cursor = khi
		}
		ex[sp.Cat] += int64(hi.Sub(lo) - covered)
	}
	visit(root, root.Start, root.End)
	return ex, int64(root.Duration())
}

// Breakdown is the accumulated critical-path decomposition over a set
// of committed traces: the distribution of total commit-path time and,
// per rollup bucket, the distribution of exclusive time spent there.
type Breakdown struct {
	Total   obs.HistView
	Buckets map[string]obs.HistView
}

// Breakdown snapshots the store's accumulated decomposition.  It
// returns nil when no committed trace has been observed yet.
func (s *Store) Breakdown() *Breakdown {
	if s == nil {
		return nil
	}
	total := s.total.View()
	if total.Count == 0 {
		return nil
	}
	b := &Breakdown{Total: total, Buckets: make(map[string]obs.HistView, len(Buckets))}
	for i, name := range Buckets {
		b.Buckets[name] = s.byBucket[i].View()
	}
	return b
}

// Merge folds another breakdown into this one (per-scheme summaries
// across a parameter sweep) and returns the receiver.  Either side may
// be nil.
func (b *Breakdown) Merge(o *Breakdown) *Breakdown {
	if o == nil {
		return b
	}
	if b == nil {
		cp := &Breakdown{Total: o.Total, Buckets: make(map[string]obs.HistView, len(o.Buckets))}
		for k, v := range o.Buckets {
			cp.Buckets[k] = v
		}
		return cp
	}
	b.Total = b.Total.Merge(o.Total)
	for k, v := range o.Buckets {
		b.Buckets[k] = b.Buckets[k].Merge(v)
	}
	return b
}

// Shares returns, per rollup bucket, that bucket's q-quantile exclusive
// time as a fraction of the q-quantile total.  Because quantiles are
// not additive the fractions need not sum to exactly 1; they answer
// "at the median (or the tail), how much of a commit goes where".
func (b *Breakdown) Shares(q float64) map[string]float64 {
	out := make(map[string]float64, len(Buckets))
	total := b.Total.Quantile(q)
	for _, name := range Buckets {
		if total == 0 {
			out[name] = 0
			continue
		}
		out[name] = float64(b.Buckets[name].Quantile(q)) / float64(total)
	}
	return out
}

// JSONMap renders the breakdown as the lat_breakdown section of the
// bench JSON artifacts.
func (b *Breakdown) JSONMap() map[string]any {
	round := func(m map[string]float64) map[string]float64 {
		for k, v := range m {
			m[k] = float64(int(v*1000+0.5)) / 1000
		}
		return m
	}
	return map[string]any{
		"p50":          round(b.Shares(0.50)),
		"p95":          round(b.Shares(0.95)),
		"total_p50_ns": b.Total.Quantile(0.50),
		"total_p95_ns": b.Total.Quantile(0.95),
		"traces":       b.Total.Count,
	}
}

// String renders a compact one-line summary, e.g.
// "p50 2.1ms [lock-wait 41% wal-force 8% net 33% other 18%] (n=97)".
func (b *Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "p50 %v [", time.Duration(b.Total.Quantile(0.50)))
	shares := b.Shares(0.50)
	for i, name := range Buckets {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s %d%%", name, int(shares[name]*100+0.5))
	}
	fmt.Fprintf(&sb, "] p95 %v (n=%d)", time.Duration(b.Total.Quantile(0.95)), b.Total.Count)
	return sb.String()
}
