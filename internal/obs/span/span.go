// Package span builds per-transaction causal span trees on top of the
// observability subsystem: every transaction carries a trace identified
// by its ident.TxnID, client-side operations (lock acquire, page fetch,
// WAL force, commit shipping) open spans under a begin→commit root, and
// server-side work (GLM queue wait, callback and de-escalation round
// trips) is recorded against a compact trace context that travels
// inside the RPC messages, so a finished trace attributes every slice
// of a commit's latency to the layer that spent it.
//
// Recording is always on when a Store is attached (span buffers are a
// few slice appends per operation), but *retention* is sampled: a trace
// is published into the store if it was head-sampled (1-in-N, decided
// at Begin so the wire context can propagate) or if it turns out slower
// than the slow cutoff (tail sampling — slow traces are exactly the
// ones worth keeping, though without server-side detail unless they
// were also head-sampled).  Published committed traces feed the
// critical-path analyzer (analyze.go), which maintains per-category
// exclusive-time histograms and the lat_breakdown rollup used by
// cmd/bench and the experiment tables.
package span

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clientlog/internal/ident"
	"clientlog/internal/obs"
)

// Category classifies what a span's time was spent on.
type Category uint8

const (
	// CatTxn is the root span, begin→commit; its exclusive time is
	// client-local work not covered by any child (compute, buffer
	// management, WAL appends).
	CatTxn Category = iota
	// CatLockWait covers a client's remote Lock call end to end; with
	// server-side children stitched in, its exclusive time is transport.
	CatLockWait
	// CatGLMQueue is the server-side wait inside GLM.Acquire (queue
	// wait plus waiting out callbacks, which nest as children).
	CatGLMQueue
	// CatCallback is one server→holder callback round trip.
	CatCallback
	// CatDeesc is one server→holder de-escalation round trip.
	CatDeesc
	// CatFetch covers a page fetch (or alloc) from the server.
	CatFetch
	// CatWALForce is the commit-time force of the client's local WAL —
	// the whole commit-path cost the paper's scheme pays.
	CatWALForce
	// CatCommitShip covers the commit-time CommitShip RPC the baseline
	// schemes issue (log shipping / page shipping / token handoff).
	CatCommitShip
	// CatCommitProc is the server-side processing of a CommitShip
	// (installing records and forcing the server log).
	CatCommitProc

	catCount
)

var catNames = [catCount]string{
	"txn", "lock-wait", "glm-queue", "callback", "deescalate",
	"fetch", "wal-force", "commit-ship", "commit-proc",
}

func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return "cat(?)"
}

// Rollup bucket names for the lat_breakdown section: every category
// maps into one of these four shares of commit time.
const (
	BucketLockWait = "lock-wait"
	BucketWALForce = "wal-force"
	BucketNet      = "net"
	BucketOther    = "other"
)

// Buckets lists the rollup buckets in reporting order.
var Buckets = [4]string{BucketLockWait, BucketWALForce, BucketNet, BucketOther}

// Bucket maps a category to its lat_breakdown rollup bucket.  The
// client-observed RPC spans (lock, fetch, commit-ship) roll up as net
// because their server-side children are subtracted as exclusive time;
// what remains is transport.  Server-side lock-manager work is
// lock-wait; local WAL force and the server's commit processing (which
// is the baseline schemes' log force) are wal-force.
func (c Category) Bucket() string {
	switch c {
	case CatGLMQueue, CatCallback, CatDeesc:
		return BucketLockWait
	case CatWALForce, CatCommitProc:
		return BucketWALForce
	case CatLockWait, CatFetch, CatCommitShip:
		return BucketNet
	default:
		return BucketOther
	}
}

func bucketIndex(name string) int {
	for i, b := range Buckets {
		if b == name {
			return i
		}
	}
	return len(Buckets) - 1
}

// Context is the compact trace context that travels on the wire (a
// field in the msg request structs and in the netrpc envelope).  The
// zero value means "not sampled": servers record nothing and the
// context costs nothing to encode.
type Context struct {
	// Txn identifies the originating transaction (and thereby the
	// trace).
	Txn ident.TxnID
	// Span is the client-side span the server-side work nests under.
	Span uint64
	// Sampled is set when the originating trace was head-sampled, i.e.
	// the server should record and stage its side of the work.
	Sampled bool
}

// Span is one timed node of a trace tree.
type Span struct {
	ID     uint64
	Parent uint64 // 0 on the root
	Cat    Category
	Label  string
	Start  time.Time
	End    time.Time
	// Origin names the process the span was recorded on when the trace
	// was stitched across a fleet ("p0", "p1", ...); empty for spans
	// local to the store that published the trace.
	Origin string
}

// Duration returns the span's length (zero if it never ended).
func (s Span) Duration() time.Duration {
	if s.End.Before(s.Start) {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Trace is one published transaction trace.  Spans[0] is the root.
type Trace struct {
	Txn    ident.TxnID
	Commit bool // committed (false: aborted)
	// Partial marks a trace synthesized from staged server-side spans
	// only (the owning client never published — e.g. this process is
	// the server tier of a distributed deployment).
	Partial bool
	Spans   []Span
}

// Total returns the root span's duration.
func (t *Trace) Total() time.Duration {
	if len(t.Spans) == 0 {
		return 0
	}
	return t.Spans[0].Duration()
}

// Default sampling policy: head-sample one transaction in 64 and
// always keep traces slower than 20ms, retaining at most 512 traces.
const (
	DefaultSampleEvery = 64
	DefaultSlowCutoff  = 20 * time.Millisecond
	DefaultCapacity    = 512
)

// Options configures a Store.  Zero fields take the defaults above.
type Options struct {
	// SampleEvery head-samples one transaction in N (1 samples every
	// transaction).
	SampleEvery int
	// SlowCutoff publishes any trace at least this slow even when it
	// was not head-sampled.
	SlowCutoff time.Duration
	// Capacity bounds the number of retained traces (and staged
	// server-side entries); oldest are evicted first.
	Capacity int
}

// Store holds published traces, stages server-side spans until their
// trace publishes, and accumulates the critical-path histograms.  All
// methods are safe for concurrent use and safe on a nil *Store (they
// no-op), so engines thread an optional store without branching.
type Store struct {
	every uint64
	slow  time.Duration
	cap   int

	ctr    atomic.Uint64 // head-sampling counter
	srvIDs atomic.Uint64 // server-side span IDs, offset out of client range

	mu          sync.Mutex
	traces      map[ident.TxnID]*Trace
	order       []ident.TxnID // publish order, for eviction
	staged      map[ident.TxnID][]Span
	stagedOrder []ident.TxnID

	// Exclusive-time attribution, fed on publish of committed traces.
	started   obs.Counter
	published obs.Counter
	total     obs.Histogram               // root (begin→commit) nanos
	byCat     [catCount]obs.Histogram     // per-category exclusive nanos
	byBucket  [len(Buckets)]obs.Histogram // rollup exclusive nanos
}

// NewStore builds a Store with the given sampling policy.
func NewStore(opt Options) *Store {
	if opt.SampleEvery <= 0 {
		opt.SampleEvery = DefaultSampleEvery
	}
	if opt.SlowCutoff <= 0 {
		opt.SlowCutoff = DefaultSlowCutoff
	}
	if opt.Capacity <= 0 {
		opt.Capacity = DefaultCapacity
	}
	s := &Store{
		every:  uint64(opt.SampleEvery),
		slow:   opt.SlowCutoff,
		cap:    opt.Capacity,
		traces: make(map[ident.TxnID]*Trace),
		staged: make(map[ident.TxnID][]Span),
	}
	s.srvIDs.Store(1 << 32) // never collides with per-txn client IDs
	return s
}

// NewDefaultStore builds a Store with the default sampling policy.
func NewDefaultStore() *Store { return NewStore(Options{}) }

// RegisterObs binds the store's trace counters and per-category
// exclusive-time histograms into reg as the span_* families.
func (s *Store) RegisterObs(reg *obs.Registry, tags ...obs.Tag) {
	if s == nil || reg == nil {
		return
	}
	reg.BindCounter(&s.started, "span_traces_started_total", tags...)
	reg.BindCounter(&s.published, "span_traces_published_total", tags...)
	reg.BindHistogram(&s.total, "span_commit_path_nanos", tags...)
	for c := Category(0); c < catCount; c++ {
		reg.BindHistogram(&s.byCat[c], "span_cat_exclusive_nanos",
			append([]obs.Tag{obs.T("cat", c.String())}, tags...)...)
	}
	for i, b := range Buckets {
		reg.BindHistogram(&s.byBucket[i], "span_bucket_exclusive_nanos",
			append([]obs.Tag{obs.T("bucket", b)}, tags...)...)
	}
}

// TxnTrace is the per-transaction span recorder.  It is owned by the
// transaction's goroutine (like the Txn itself) and costs a slice
// append per span; publication happens once, at Finish.  All methods
// are safe on a nil receiver, which is how tracing-off code paths stay
// branch-free.
type TxnTrace struct {
	store   *Store
	txn     ident.TxnID
	sampled bool
	spans   []Span
}

// tracePool recycles TxnTrace recorders.  Tracing runs on every
// transaction but almost none publish (1-in-64 head sample plus the
// rare slow tail), so without recycling every commit pays two heap
// allocations (the recorder and its span buffer) just to throw them
// away at Finish.  A recorder must not be touched after Finish — that
// has always been the contract (the txn is done) and is now load
// bearing.
var tracePool = sync.Pool{New: func() any { return new(TxnTrace) }}

// Begin opens the root span for txn and decides head sampling.
func (s *Store) Begin(txn ident.TxnID) *TxnTrace {
	if s == nil {
		return nil
	}
	s.started.Inc()
	t := tracePool.Get().(*TxnTrace)
	t.store = s
	t.txn = txn
	t.sampled = s.ctr.Add(1)%s.every == 0
	if cap(t.spans) == 0 {
		t.spans = make([]Span, 1, 8)
	} else {
		t.spans = t.spans[:1]
	}
	t.spans[0] = Span{ID: 1, Cat: CatTxn, Start: time.Now()}
	return t
}

// Start opens a child span of the root and returns its ID.
func (t *TxnTrace) Start(cat Category, label string) uint64 {
	if t == nil {
		return 0
	}
	id := uint64(len(t.spans) + 1)
	t.spans = append(t.spans, Span{ID: id, Parent: 1, Cat: cat, Label: label, Start: time.Now()})
	return id
}

// End closes the span returned by Start.
func (t *TxnTrace) End(id uint64) {
	if t == nil || id < 2 || id > uint64(len(t.spans)) {
		return
	}
	t.spans[id-1].End = time.Now()
}

// Context returns the wire context for server-side work nested under
// span id.  It is the zero Context (nothing propagates, nothing is
// recorded remotely) unless the trace was head-sampled.
func (t *TxnTrace) Context(id uint64) Context {
	if t == nil || !t.sampled {
		return Context{}
	}
	return Context{Txn: t.txn, Span: id, Sampled: true}
}

// Sampled reports whether the trace was head-sampled.
func (t *TxnTrace) Sampled() bool { return t != nil && t.sampled }

// Finish closes the root span and publishes the trace if it was
// head-sampled or slower than the store's slow cutoff.  Committed
// traces also feed the critical-path histograms.
func (t *TxnTrace) Finish(committed bool) {
	if t == nil {
		return
	}
	t.spans[0].End = time.Now()
	dur := t.spans[0].Duration()
	if !t.sampled && dur < t.store.slow {
		// Dropped, not published: the span buffer is still private, so
		// the whole recorder goes back to the pool.  Labels are zeroed
		// so a pooled buffer doesn't pin their strings.
		for i := range t.spans {
			t.spans[i] = Span{}
		}
		t.store = nil
		tracePool.Put(t)
		return
	}
	t.store.publish(&Trace{Txn: t.txn, Commit: committed, Spans: t.spans})
	// Published: the span buffer escaped into the store, so only the
	// recorder struct is recycled.
	t.store = nil
	t.spans = nil
	tracePool.Put(t)
}

// ServerSpan is a server-side span handle: started against an incoming
// Context, staged into the store on End, and merged into the client's
// trace when it publishes.  The zero value (unsampled context, or nil
// store) is inert.
type ServerSpan struct {
	store *Store
	span  Span
	txn   ident.TxnID
}

// ServerStart opens a server-side span for the transaction behind ctx.
// It returns an inert handle when ctx is unsampled.
func (s *Store) ServerStart(ctx Context, cat Category, label string) ServerSpan {
	if s == nil || !ctx.Sampled {
		return ServerSpan{}
	}
	return ServerSpan{
		store: s,
		txn:   ctx.Txn,
		span: Span{
			ID:     s.srvIDs.Add(1),
			Parent: ctx.Span,
			Cat:    cat,
			Label:  label,
			Start:  time.Now(),
		},
	}
}

// WithOrigin stamps the span's fleet provenance ("p1") at record time.
// Networked members leave it empty (the stitcher stamps adopted spans),
// but in-process fleets share one store across partitions, so the
// server must name itself for @pN attribution to survive.
func (p ServerSpan) WithOrigin(origin string) ServerSpan {
	if p.store != nil {
		p.span.Origin = origin
	}
	return p
}

// End closes the span and stages it for its trace's publication.
func (p ServerSpan) End() {
	if p.store == nil {
		return
	}
	p.span.End = time.Now()
	p.store.stage(p.txn, p.span)
}

// Context returns the wire context for work nested under this span
// (e.g. callback round trips under the GLM queue-wait span).
func (p ServerSpan) Context() Context {
	if p.store == nil {
		return Context{}
	}
	return Context{Txn: p.txn, Span: p.span.ID, Sampled: true}
}

func (s *Store) stage(txn ident.TxnID, sp Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// A trace that already published gets late spans appended in place
	// (a callback can finish a hair after the commit publishes).
	if tr, ok := s.traces[txn]; ok && !tr.Partial {
		tr.Spans = append(tr.Spans, sp)
		return
	}
	if _, ok := s.staged[txn]; !ok {
		s.stagedOrder = append(s.stagedOrder, txn)
		for len(s.stagedOrder) > s.cap {
			old := s.stagedOrder[0]
			s.stagedOrder = s.stagedOrder[1:]
			delete(s.staged, old)
		}
	}
	s.staged[txn] = append(s.staged[txn], sp)
}

func (s *Store) publish(tr *Trace) {
	s.published.Inc()
	s.mu.Lock()
	if staged, ok := s.staged[tr.Txn]; ok {
		tr.Spans = append(tr.Spans, staged...)
		delete(s.staged, tr.Txn)
	}
	if old, ok := s.traces[tr.Txn]; ok && old.Partial {
		// Upgrade a partial (server-only) entry in place.
		tr.Spans = append(tr.Spans, old.Spans[1:]...)
	} else if !ok {
		s.order = append(s.order, tr.Txn)
		for len(s.order) > s.cap {
			evict := s.order[0]
			s.order = s.order[1:]
			delete(s.traces, evict)
		}
	}
	s.traces[tr.Txn] = tr
	s.mu.Unlock()

	if tr.Commit {
		s.observe(tr)
	}
}

// observe feeds one committed trace through the critical-path analyzer
// into the per-category and rollup histograms.
func (s *Store) observe(tr *Trace) {
	ex, total := Exclusive(tr)
	s.total.Observe(uint64(total))
	var buckets [len(Buckets)]int64
	for c := Category(0); c < catCount; c++ {
		s.byCat[c].Observe(uint64(ex[c]))
		buckets[bucketIndex(c.Bucket())] += ex[c]
	}
	for i := range buckets {
		s.byBucket[i].Observe(uint64(buckets[i]))
	}
}

// Get returns the trace for txn: a published one, or a partial trace
// synthesized from staged server-side spans (how the server tier of a
// distributed deployment answers /trace/<txnid> for transactions whose
// client publishes elsewhere).
func (s *Store) Get(txn ident.TxnID) (*Trace, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if tr, ok := s.traces[txn]; ok {
		return tr, true
	}
	staged, ok := s.staged[txn]
	if !ok || len(staged) == 0 {
		return nil, false
	}
	// Synthesize a root that envelopes the staged spans.
	root := Span{ID: 1, Cat: CatTxn, Start: staged[0].Start, End: staged[0].End}
	for _, sp := range staged {
		if sp.Start.Before(root.Start) {
			root.Start = sp.Start
		}
		if sp.End.After(root.End) {
			root.End = sp.End
		}
	}
	tr := &Trace{Txn: txn, Partial: true, Spans: append([]Span{root}, staged...)}
	return tr, true
}

// Slowest returns up to n published traces ordered by decreasing root
// duration.
func (s *Store) Slowest(n int) []*Trace {
	if s == nil || n <= 0 {
		return nil
	}
	s.mu.Lock()
	out := make([]*Trace, 0, len(s.traces))
	for _, tr := range s.traces {
		if !tr.Partial {
			out = append(out, tr)
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].Total(), out[j].Total()
		if di != dj {
			return di > dj
		}
		return out[i].Txn < out[j].Txn // deterministic tie-break
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Len returns the number of retained traces.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.traces)
}
