package span

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"clientlog/internal/ident"
)

// spanJSON is one node of the rendered trace tree.  Times are offsets
// from the root's start so trees are readable without wall clocks.
type spanJSON struct {
	ID       uint64      `json:"id"`
	Cat      string      `json:"cat"`
	Label    string      `json:"label,omitempty"`
	StartNS  int64       `json:"start_ns"`
	DurNS    int64       `json:"dur_ns"`
	Children []*spanJSON `json:"children,omitempty"`
}

type traceJSON struct {
	Txn         string           `json:"txn"`
	TxnID       uint64           `json:"txn_id"`
	Commit      bool             `json:"commit"`
	Partial     bool             `json:"partial,omitempty"`
	TotalNS     int64            `json:"total_ns"`
	ExclusiveNS map[string]int64 `json:"exclusive_ns"`
	Root        *spanJSON        `json:"root"`
}

func renderTrace(tr *Trace) traceJSON {
	ex, total := Exclusive(tr)
	exNames := make(map[string]int64, len(ex))
	for c, ns := range ex {
		if ns != 0 {
			exNames[c.String()] = ns
		}
	}
	nodes := make(map[uint64]*spanJSON, len(tr.Spans))
	root := tr.Spans[0]
	for _, sp := range tr.Spans {
		nodes[sp.ID] = &spanJSON{
			ID:      sp.ID,
			Cat:     sp.Cat.String(),
			Label:   sp.Label,
			StartNS: sp.Start.Sub(root.Start).Nanoseconds(),
			DurNS:   int64(sp.Duration()),
		}
	}
	for _, sp := range tr.Spans[1:] {
		parent, ok := nodes[sp.Parent]
		if !ok || sp.Parent == sp.ID {
			parent = nodes[root.ID]
		}
		parent.Children = append(parent.Children, nodes[sp.ID])
	}
	for _, n := range nodes {
		sort.Slice(n.Children, func(i, j int) bool {
			if n.Children[i].StartNS != n.Children[j].StartNS {
				return n.Children[i].StartNS < n.Children[j].StartNS
			}
			return n.Children[i].ID < n.Children[j].ID
		})
	}
	return traceJSON{
		Txn:         tr.Txn.String(),
		TxnID:       uint64(tr.Txn),
		Commit:      tr.Commit,
		Partial:     tr.Partial,
		TotalNS:     total,
		ExclusiveNS: exNames,
		Root:        nodes[root.ID],
	}
}

// parseTxnID accepts a raw uint64 ("4294967301") or the c<id>:<seq>
// shorthand printed by ident.TxnID.String ("c1:5").
func parseTxnID(s string) (ident.TxnID, error) {
	if n, err := strconv.ParseUint(s, 10, 64); err == nil {
		return ident.TxnID(n), nil
	}
	rest, ok := strings.CutPrefix(s, "c")
	if !ok {
		return 0, fmt.Errorf("bad txn id %q", s)
	}
	cs, seqs, ok := strings.Cut(rest, ":")
	if !ok {
		return 0, fmt.Errorf("bad txn id %q", s)
	}
	cid, err1 := strconv.ParseUint(cs, 10, 32)
	seq, err2 := strconv.ParseUint(seqs, 10, 32)
	if err1 != nil || err2 != nil {
		return 0, fmt.Errorf("bad txn id %q", s)
	}
	return ident.MakeTxnID(ident.ClientID(cid), uint32(seq)), nil
}

// TraceHandler serves the span store under the /trace/ prefix:
// /trace/<txnid> returns one span tree (txnid as a raw uint64 or the
// "c1:5" shorthand), /trace/slowest?n= lists the slowest retained
// traces.  Missing traces (never sampled, evicted, or unknown) get 404.
func (s *Store) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/trace/")
		w.Header().Set("Content-Type", "application/json")
		if rest == "slowest" || rest == "" {
			n := 10
			if v := r.URL.Query().Get("n"); v != "" {
				if p, err := strconv.Atoi(v); err == nil && p > 0 {
					n = p
				}
			}
			type row struct {
				Txn     string `json:"txn"`
				TxnID   uint64 `json:"txn_id"`
				TotalNS int64  `json:"total_ns"`
				Commit  bool   `json:"commit"`
			}
			rows := []row{}
			for _, tr := range s.Slowest(n) {
				rows = append(rows, row{
					Txn: tr.Txn.String(), TxnID: uint64(tr.Txn),
					TotalNS: int64(tr.Total()), Commit: tr.Commit,
				})
			}
			_ = json.NewEncoder(w).Encode(map[string]any{"n": len(rows), "traces": rows})
			return
		}
		txn, err := parseTxnID(rest)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		tr, ok := s.Get(txn)
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{
				"error": "trace not found (not sampled, evicted, or unknown txn)",
			})
			return
		}
		_ = json.NewEncoder(w).Encode(renderTrace(tr))
	})
}
