package span

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"clientlog/internal/ident"
)

// SpanJSON is one node of the rendered trace tree.  Times are offsets
// from the root's start so trees are readable without wall clocks.
type SpanJSON struct {
	ID       uint64      `json:"id"`
	Cat      string      `json:"cat"`
	Label    string      `json:"label,omitempty"`
	Origin   string      `json:"origin,omitempty"`
	StartNS  int64       `json:"start_ns"`
	DurNS    int64       `json:"dur_ns"`
	Children []*SpanJSON `json:"children,omitempty"`
}

// TraceJSON is the rendered form of one trace: the span tree plus the
// critical-path attribution computed over it — per-category exclusive
// time and the lat_breakdown bucket shares (lock-wait / wal-force /
// net / other as fractions of the root duration).
type TraceJSON struct {
	Txn         string             `json:"txn"`
	TxnID       uint64             `json:"txn_id"`
	Commit      bool               `json:"commit"`
	Partial     bool               `json:"partial,omitempty"`
	TotalNS     int64              `json:"total_ns"`
	ExclusiveNS map[string]int64   `json:"exclusive_ns"`
	BucketNS    map[string]int64   `json:"bucket_ns"`
	Shares      map[string]float64 `json:"shares"`
	// Origins lists the distinct remote processes whose spans the tree
	// contains (empty for a purely local trace, ≥2 entries for a
	// stitched cross-partition commit).
	Origins []string  `json:"origins,omitempty"`
	Root    *SpanJSON `json:"root"`
}

// RenderTrace builds the JSON tree plus critical-path attribution for
// one trace (local or stitched).
func RenderTrace(tr *Trace) TraceJSON {
	ex, total := Exclusive(tr)
	exNames := make(map[string]int64, len(ex))
	bucketNS := make(map[string]int64, len(Buckets))
	shares := make(map[string]float64, len(Buckets))
	for _, b := range Buckets {
		bucketNS[b] = 0
	}
	for c, ns := range ex {
		if ns != 0 {
			exNames[c.String()] = ns
		}
		bucketNS[c.Bucket()] += ns
	}
	for b, ns := range bucketNS {
		if total > 0 {
			shares[b] = float64(ns) / float64(total)
		} else {
			shares[b] = 0
		}
	}
	originSet := map[string]bool{}
	nodes := make(map[uint64]*SpanJSON, len(tr.Spans))
	root := tr.Spans[0]
	for _, sp := range tr.Spans {
		nodes[sp.ID] = &SpanJSON{
			ID:      sp.ID,
			Cat:     sp.Cat.String(),
			Label:   sp.Label,
			Origin:  sp.Origin,
			StartNS: sp.Start.Sub(root.Start).Nanoseconds(),
			DurNS:   int64(sp.Duration()),
		}
		if sp.Origin != "" {
			originSet[sp.Origin] = true
		}
	}
	for _, sp := range tr.Spans[1:] {
		parent, ok := nodes[sp.Parent]
		if !ok || sp.Parent == sp.ID {
			parent = nodes[root.ID]
		}
		parent.Children = append(parent.Children, nodes[sp.ID])
	}
	for _, n := range nodes {
		sort.Slice(n.Children, func(i, j int) bool {
			if n.Children[i].StartNS != n.Children[j].StartNS {
				return n.Children[i].StartNS < n.Children[j].StartNS
			}
			return n.Children[i].ID < n.Children[j].ID
		})
	}
	var origins []string
	for o := range originSet {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	return TraceJSON{
		Txn:         tr.Txn.String(),
		TxnID:       uint64(tr.Txn),
		Commit:      tr.Commit,
		Partial:     tr.Partial,
		TotalNS:     total,
		ExclusiveNS: exNames,
		BucketNS:    bucketNS,
		Shares:      shares,
		Origins:     origins,
		Root:        nodes[root.ID],
	}
}

// ParseTxnID accepts a raw uint64 ("4294967301") or the c<id>:<seq>
// shorthand printed by ident.TxnID.String ("c1:5").
func ParseTxnID(s string) (ident.TxnID, error) {
	if n, err := strconv.ParseUint(s, 10, 64); err == nil {
		return ident.TxnID(n), nil
	}
	rest, ok := strings.CutPrefix(s, "c")
	if !ok {
		return 0, fmt.Errorf("bad txn id %q", s)
	}
	cs, seqs, ok := strings.Cut(rest, ":")
	if !ok {
		return 0, fmt.Errorf("bad txn id %q", s)
	}
	cid, err1 := strconv.ParseUint(cs, 10, 32)
	seq, err2 := strconv.ParseUint(seqs, 10, 32)
	if err1 != nil || err2 != nil {
		return 0, fmt.Errorf("bad txn id %q", s)
	}
	return ident.MakeTxnID(ident.ClientID(cid), uint32(seq)), nil
}

// TraceHandler serves the span store under the /trace/ prefix:
// /trace/<txnid> returns one span tree (txnid as a raw uint64 or the
// "c1:5" shorthand), /trace/slowest?n= lists the slowest retained
// traces.  Missing traces (never sampled, evicted, or unknown) get 404.
func (s *Store) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/trace/")
		w.Header().Set("Content-Type", "application/json")
		if rest == "slowest" || rest == "" {
			n := 10
			if v := r.URL.Query().Get("n"); v != "" {
				if p, err := strconv.Atoi(v); err == nil && p > 0 {
					n = p
				}
			}
			type row struct {
				Txn     string `json:"txn"`
				TxnID   uint64 `json:"txn_id"`
				TotalNS int64  `json:"total_ns"`
				Commit  bool   `json:"commit"`
			}
			rows := []row{}
			for _, tr := range s.Slowest(n) {
				rows = append(rows, row{
					Txn: tr.Txn.String(), TxnID: uint64(tr.Txn),
					TotalNS: int64(tr.Total()), Commit: tr.Commit,
				})
			}
			_ = json.NewEncoder(w).Encode(map[string]any{"n": len(rows), "traces": rows})
			return
		}
		txn, err := ParseTxnID(rest)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		tr, ok := s.Get(txn)
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{
				"error": "trace not found (not sampled, evicted, or unknown txn)",
			})
			return
		}
		_ = json.NewEncoder(w).Encode(RenderTrace(tr))
	})
}
