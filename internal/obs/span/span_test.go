package span

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
)

func txn(c uint32, seq uint32) ident.TxnID {
	return ident.MakeTxnID(ident.ClientID(c), seq)
}

func TestHeadSamplingDecidesRetention(t *testing.T) {
	s := NewStore(Options{SampleEvery: 2})
	// Counter starts at 0: txn 1 is unsampled, txn 2 sampled, 3 unsampled...
	t1 := s.Begin(txn(1, 1))
	t1.Finish(true)
	if _, ok := s.Get(txn(1, 1)); ok {
		t.Fatal("fast unsampled trace must not be retained")
	}
	t2 := s.Begin(txn(1, 2))
	if !t2.Sampled() {
		t.Fatal("second txn should be head-sampled at 1-in-2")
	}
	t2.Finish(true)
	tr, ok := s.Get(txn(1, 2))
	if !ok || !tr.Commit || tr.Partial {
		t.Fatalf("sampled trace missing or wrong: %+v ok=%v", tr, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len=%d, want 1", s.Len())
	}
}

func TestSlowTraceKeptWithoutHeadSample(t *testing.T) {
	s := NewStore(Options{SampleEvery: 1 << 30, SlowCutoff: time.Microsecond})
	tr := s.Begin(txn(1, 1))
	if tr.Sampled() {
		t.Fatal("must not be head-sampled")
	}
	time.Sleep(2 * time.Millisecond)
	tr.Finish(true)
	if _, ok := s.Get(txn(1, 1)); !ok {
		t.Fatal("slow trace must be retained even unsampled")
	}
	// Unsampled traces must not leak a wire context.
	if ctx := tr.Context(1); ctx.Sampled {
		t.Fatal("unsampled trace produced a sampled context")
	}
}

func TestNilStoreAndNilTraceAreInert(t *testing.T) {
	var s *Store
	tr := s.Begin(txn(1, 1))
	if tr != nil {
		t.Fatal("nil store must return nil TxnTrace")
	}
	id := tr.Start(CatFetch, "x")
	tr.End(id)
	if ctx := tr.Context(id); ctx.Sampled {
		t.Fatal("nil trace produced a sampled context")
	}
	tr.Finish(true)
	ss := s.ServerStart(Context{}, CatGLMQueue, "")
	ss.End()
	if s.Breakdown() != nil || s.Len() != 0 || len(s.Slowest(3)) != 0 {
		t.Fatal("nil store must report nothing")
	}
}

func TestServerSpansStitchIntoClientTrace(t *testing.T) {
	s := NewStore(Options{SampleEvery: 1})
	tr := s.Begin(txn(1, 1))
	lockSpan := tr.Start(CatLockWait, "p1.s0")
	// The server sees the wire context and nests its queue wait under
	// the client's lock span; a callback nests under the queue wait.
	srv := s.ServerStart(tr.Context(lockSpan), CatGLMQueue, "p1.s0")
	cb := s.ServerStart(srv.Context(), CatCallback, "p1.s0")
	cb.End()
	srv.End()
	tr.End(lockSpan)
	tr.Finish(true)

	got, ok := s.Get(txn(1, 1))
	if !ok {
		t.Fatal("trace not published")
	}
	byCat := map[Category]Span{}
	for _, sp := range got.Spans {
		byCat[sp.Cat] = sp
	}
	if byCat[CatGLMQueue].Parent != lockSpan {
		t.Fatalf("glm-queue parent=%d, want %d", byCat[CatGLMQueue].Parent, lockSpan)
	}
	if byCat[CatCallback].Parent != byCat[CatGLMQueue].ID {
		t.Fatalf("callback parent=%d, want %d", byCat[CatCallback].Parent, byCat[CatGLMQueue].ID)
	}
}

func TestServerOnlyTraceIsPartial(t *testing.T) {
	s := NewStore(Options{SampleEvery: 1})
	ctx := Context{Txn: txn(7, 3), Span: 2, Sampled: true}
	srv := s.ServerStart(ctx, CatGLMQueue, "q")
	srv.End()
	tr, ok := s.Get(txn(7, 3))
	if !ok || !tr.Partial {
		t.Fatalf("staged-only txn should yield a partial trace, got %+v ok=%v", tr, ok)
	}
}

// mkSpan builds a span over [lo,hi) milliseconds from base.
func mkSpan(base time.Time, id, parent uint64, cat Category, lo, hi int) Span {
	return Span{
		ID: id, Parent: parent, Cat: cat,
		Start: base.Add(time.Duration(lo) * time.Millisecond),
		End:   base.Add(time.Duration(hi) * time.Millisecond),
	}
}

func TestExclusivePartitionsRootExactly(t *testing.T) {
	base := time.Now()
	tr := &Trace{Txn: txn(1, 1), Commit: true, Spans: []Span{
		mkSpan(base, 1, 0, CatTxn, 0, 100),
		mkSpan(base, 2, 1, CatLockWait, 10, 40),
		mkSpan(base, 3, 2, CatGLMQueue, 15, 35), // nested under lock wait
		mkSpan(base, 4, 3, CatCallback, 20, 30), // nested under glm queue
		mkSpan(base, 5, 1, CatFetch, 50, 70),
		mkSpan(base, 6, 1, CatWALForce, 65, 90),    // overlaps fetch: earlier sibling wins
		mkSpan(base, 7, 1, CatCommitShip, 95, 120), // runs past root: clamped
		mkSpan(base, 8, 99, CatDeesc, 96, 97),      // orphan parent: attaches to root
	}}
	ex, total := Exclusive(tr)
	if total != int64(100*time.Millisecond) {
		t.Fatalf("total=%d, want 100ms", total)
	}
	var sum int64
	for _, ns := range ex {
		if ns < 0 {
			t.Fatalf("negative exclusive time: %v", ex)
		}
		sum += ns
	}
	if sum != total {
		t.Fatalf("exclusive times sum to %d, want exactly total %d (%v)", sum, total, ex)
	}
	// Spot-check the attribution: lock-wait is 10-40 minus the nested
	// 15-35 glm-queue interval = 10ms.
	if ex[CatLockWait] != int64(10*time.Millisecond) {
		t.Fatalf("lock-wait exclusive=%v, want 10ms", time.Duration(ex[CatLockWait]))
	}
	if ex[CatCallback] != int64(10*time.Millisecond) {
		t.Fatalf("callback exclusive=%v, want 10ms", time.Duration(ex[CatCallback]))
	}
	// wal-force lost 65-70 to the earlier fetch sibling: 20ms left.
	if ex[CatWALForce] != int64(20*time.Millisecond) {
		t.Fatalf("wal-force exclusive=%v, want 20ms", time.Duration(ex[CatWALForce]))
	}
	// commit-ship clamps at the root's end: 5ms.
	if ex[CatCommitShip] != int64(5*time.Millisecond) {
		t.Fatalf("commit-ship exclusive=%v, want 5ms", time.Duration(ex[CatCommitShip]))
	}
}

func TestBreakdownFromCommittedTraces(t *testing.T) {
	s := NewStore(Options{SampleEvery: 1})
	if s.Breakdown() != nil {
		t.Fatal("empty store must have nil breakdown")
	}
	tr := s.Begin(txn(1, 1))
	id := tr.Start(CatWALForce, "")
	time.Sleep(time.Millisecond)
	tr.End(id)
	tr.Finish(true)
	b := s.Breakdown()
	if b == nil || b.Total.Count != 1 {
		t.Fatalf("breakdown missing after committed trace: %+v", b)
	}
	m := b.JSONMap()
	for _, k := range []string{"p50", "p95", "total_p50_ns", "total_p95_ns", "traces"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("JSONMap missing %q: %v", k, m)
		}
	}
	for _, bucket := range Buckets {
		if _, ok := m["p50"].(map[string]float64)[bucket]; !ok {
			t.Fatalf("p50 shares missing bucket %q", bucket)
		}
	}
	// Merge with nil on either side keeps the data.
	if got := (*Breakdown)(nil).Merge(b); got == nil || got.Total.Count != 1 {
		t.Fatal("nil.Merge(b) lost the data")
	}
	if got := b.Merge(nil); got != b {
		t.Fatal("b.Merge(nil) must return b")
	}
	if got := b.Merge(b); got.Total.Count != 2 {
		t.Fatalf("merged count=%d, want 2", got.Total.Count)
	}
}

func TestStoreEvictsOldestBeyondCapacity(t *testing.T) {
	s := NewStore(Options{SampleEvery: 1, Capacity: 2})
	for i := uint32(1); i <= 3; i++ {
		tr := s.Begin(txn(1, i))
		tr.Finish(true)
	}
	if s.Len() != 2 {
		t.Fatalf("Len=%d, want 2", s.Len())
	}
	if _, ok := s.Get(txn(1, 1)); ok {
		t.Fatal("oldest trace should have been evicted")
	}
	if _, ok := s.Get(txn(1, 3)); !ok {
		t.Fatal("newest trace missing")
	}
}

func TestTraceHandler(t *testing.T) {
	s := NewStore(Options{SampleEvery: 1})
	tr := s.Begin(txn(1, 5))
	id := tr.Start(CatFetch, "fetch")
	tr.End(id)
	tr.Finish(true)
	srv := httptest.NewServer(s.TraceHandler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	code, body := get("/trace/c1:5")
	if code != http.StatusOK {
		t.Fatalf("/trace/c1:5 status %d: %s", code, body)
	}
	var tj struct {
		Txn         string           `json:"txn"`
		TotalNS     int64            `json:"total_ns"`
		ExclusiveNS map[string]int64 `json:"exclusive_ns"`
		Root        struct {
			Cat      string `json:"cat"`
			Children []struct {
				Cat string `json:"cat"`
			} `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal([]byte(body), &tj); err != nil {
		t.Fatalf("bad trace JSON: %v\n%s", err, body)
	}
	if tj.Root.Cat != "txn" || len(tj.Root.Children) != 1 || tj.Root.Children[0].Cat != "fetch" {
		t.Fatalf("unexpected tree: %s", body)
	}
	var exSum int64
	for _, ns := range tj.ExclusiveNS {
		exSum += ns
	}
	if exSum != tj.TotalNS {
		t.Fatalf("exclusive_ns sums to %d, total_ns %d", exSum, tj.TotalNS)
	}

	if code, _ := get("/trace/c9:9"); code != http.StatusNotFound {
		t.Fatalf("missing trace: status %d, want 404", code)
	}
	if code, _ := get("/trace/bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad id: status %d, want 400", code)
	}

	code, body = get("/trace/slowest?n=5")
	if code != http.StatusOK {
		t.Fatalf("/trace/slowest status %d", code)
	}
	var slow struct {
		N      int `json:"n"`
		Traces []struct {
			Txn string `json:"txn"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &slow); err != nil {
		t.Fatal(err)
	}
	if slow.N != 1 || slow.Traces[0].Txn != "txn(c1:5)" {
		t.Fatalf("slowest: %s", body)
	}
}

func TestTraceHandlerEmptyStore(t *testing.T) {
	s := NewStore(Options{})
	srv := httptest.NewServer(s.TraceHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/trace/slowest")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var slow struct {
		N      int   `json:"n"`
		Traces []any `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&slow); err != nil {
		t.Fatal(err)
	}
	if slow.N != 0 || slow.Traces == nil {
		t.Fatalf("empty store slowest must be n=0 with [] traces: %+v", slow)
	}
}

func TestLongestChains(t *testing.T) {
	c := func(n uint32) ident.ClientID { return ident.ClientID(n) }
	edges := []lock.WaitEdge{
		{Waiter: c(1), Blocker: c(2)},
		{Waiter: c(2), Blocker: c(3)},
		{Waiter: c(3), Blocker: c(4)},
		{Waiter: c(5), Blocker: c(4)},
	}
	chains := LongestChains(edges, 10)
	if len(chains) == 0 {
		t.Fatal("no chains")
	}
	want := []ident.ClientID{c(1), c(2), c(3), c(4)}
	got := chains[0]
	if len(got) != len(want) {
		t.Fatalf("longest chain %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("longest chain %v, want %v", got, want)
		}
	}
	// A pure cycle must terminate and still produce a chain.
	cyc := []lock.WaitEdge{{Waiter: c(1), Blocker: c(2)}, {Waiter: c(2), Blocker: c(1)}}
	if chains := LongestChains(cyc, 3); len(chains) == 0 {
		t.Fatal("cycle produced no chain")
	}
}

func TestWaitsForHandler(t *testing.T) {
	empty := fetchWaitsFor(t, lock.WaitsForSnapshot{})
	if empty.Waiters == nil || empty.Edges == nil || empty.Chains == nil || empty.Victims == nil {
		t.Fatalf("empty snapshot must serialize as [] not null: %+v", empty)
	}

	snap := lock.WaitsForSnapshot{
		Waiters: []lock.WaiterInfo{{Client: 2, Name: lock.PageName(7), Mode: lock.X, Age: time.Second}},
		Edges:   []lock.WaitEdge{{Waiter: 2, Blocker: 1}},
		Victims: []lock.DeadlockVictim{{Client: 2, Name: lock.PageName(7), Mode: lock.X, Cycle: []ident.ClientID{2, 1}}},
	}
	got := fetchWaitsFor(t, snap)
	if len(got.Waiters) != 1 || got.Waiters[0].Client != "c2" {
		t.Fatalf("waiters: %+v", got.Waiters)
	}
	if len(got.Chains) != 1 || len(got.Chains[0]) != 2 {
		t.Fatalf("chains: %+v", got.Chains)
	}
	if len(got.Victims) != 1 || len(got.Victims[0].Cycle) != 2 {
		t.Fatalf("victims: %+v", got.Victims)
	}

	// Graphviz rendering.
	srv := httptest.NewServer(WaitsForHandler(func() lock.WaitsForSnapshot { return snap }))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/waitsfor?format=dot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	dot := string(buf[:n])
	if !strings.HasPrefix(dot, "digraph waitsfor") || !strings.Contains(dot, `"c2" -> "c1"`) {
		t.Fatalf("dot output: %s", dot)
	}
}

// fetchWaitsFor serves /waitsfor over a snapshot and decodes the JSON.
func fetchWaitsFor(t *testing.T, snap lock.WaitsForSnapshot) waitsForJSON {
	t.Helper()
	srv := httptest.NewServer(WaitsForHandler(func() lock.WaitsForSnapshot { return snap }))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/waitsfor")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out waitsForJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}
