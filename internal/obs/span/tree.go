package span

import (
	"fmt"
	"strings"
	"time"
)

// TreeString renders a trace as a compact indented tree for terminal
// output — the chaos/crashtest failure dumps print the slowest
// stitched traces this way so a cross-partition post-mortem is
// readable without an HTTP endpoint.  Spans stitched in from fleet
// members carry their @origin.
func TreeString(tr *Trace) string {
	if tr == nil || len(tr.Spans) == 0 {
		return "(empty trace)\n"
	}
	rt := RenderTrace(tr)
	var sb strings.Builder
	state := "commit"
	if !tr.Commit {
		state = "abort"
	}
	if tr.Partial {
		state += " partial"
	}
	fmt.Fprintf(&sb, "trace %s %s total=%v", rt.Txn, state,
		time.Duration(rt.TotalNS).Round(time.Microsecond))
	if len(rt.Origins) > 0 {
		fmt.Fprintf(&sb, " origins=%s", strings.Join(rt.Origins, ","))
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  shares: lock-wait %.0f%% | wal-force %.0f%% | net %.0f%% | other %.0f%%\n",
		rt.Shares[BucketLockWait]*100, rt.Shares[BucketWALForce]*100,
		rt.Shares[BucketNet]*100, rt.Shares[BucketOther]*100)
	var walk func(n *SpanJSON, prefix string, last bool)
	walk = func(n *SpanJSON, prefix string, last bool) {
		branch, childPrefix := "├─ ", prefix+"│  "
		if last {
			branch, childPrefix = "└─ ", prefix+"   "
		}
		line := prefix + branch + n.Cat
		if n.Label != "" {
			line += " " + n.Label
		}
		line += " " + time.Duration(n.DurNS).Round(time.Microsecond).String()
		if n.Origin != "" {
			line += " @" + n.Origin
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
		for i, c := range n.Children {
			walk(c, childPrefix, i == len(n.Children)-1)
		}
	}
	walk(rt.Root, "  ", true)
	return sb.String()
}
