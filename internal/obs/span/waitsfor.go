package span

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
)

// waitsForJSON is the /waitsfor response shape.
type waitsForJSON struct {
	Waiters []waiterJSON `json:"waiters"`
	Edges   []edgeJSON   `json:"edges"`
	// Chains are the longest waits-for paths (each a list of clients,
	// waiter first), longest first.
	Chains  [][]string   `json:"chains"`
	Victims []victimJSON `json:"victims"`
}

type waiterJSON struct {
	Client string `json:"client"`
	Name   string `json:"name"`
	Mode   string `json:"mode"`
	AgeNS  int64  `json:"age_ns"`
	// Partition is the server instance the wait was observed on (always
	// 0 outside a fleet).
	Partition int `json:"partition"`
}

type edgeJSON struct {
	Waiter    string `json:"waiter"`
	Blocker   string `json:"blocker"`
	Partition int    `json:"partition"`
}

type victimJSON struct {
	Client    string   `json:"client"`
	Name      string   `json:"name"`
	Mode      string   `json:"mode"`
	At        string   `json:"at"`
	Cycle     []string `json:"cycle"`
	Partition int      `json:"partition"`
	// Distributed marks victims killed by the fleet detector (the cycle
	// spanned partitions, invisible to any single local graph).
	Distributed bool `json:"distributed"`
}

// LongestChains returns the longest simple paths in the waits-for
// graph (waiter first), longest first, at most max of them.  Chains
// are what turn a pile of edges into a diagnosis: a single chain of
// length five is a convoy, five chains of length one are contention.
func LongestChains(edges []lock.WaitEdge, max int) [][]ident.ClientID {
	next := make(map[ident.ClientID][]ident.ClientID)
	heads := make(map[ident.ClientID]bool)
	hasIncoming := make(map[ident.ClientID]bool)
	for _, e := range edges {
		next[e.Waiter] = append(next[e.Waiter], e.Blocker)
		heads[e.Waiter] = true
		hasIncoming[e.Blocker] = true
	}
	var chains [][]ident.ClientID
	var dfs func(n ident.ClientID, path []ident.ClientID, on map[ident.ClientID]bool)
	dfs = func(n ident.ClientID, path []ident.ClientID, on map[ident.ClientID]bool) {
		extended := false
		for _, b := range next[n] {
			if on[b] {
				continue // cycle: stop extending, the path so far still counts
			}
			extended = true
			on[b] = true
			dfs(b, append(path, b), on)
			delete(on, b)
		}
		if !extended && len(path) > 1 {
			chains = append(chains, append([]ident.ClientID(nil), path...))
		}
	}
	for h := range heads {
		if hasIncoming[h] {
			continue // only start from true heads; interior nodes yield sub-chains
		}
		dfs(h, []ident.ClientID{h}, map[ident.ClientID]bool{h: true})
	}
	if len(chains) == 0 {
		// Every waiter is also blocked (pure cycles): fall back to
		// starting everywhere.
		for h := range heads {
			dfs(h, []ident.ClientID{h}, map[ident.ClientID]bool{h: true})
		}
	}
	sort.Slice(chains, func(i, j int) bool {
		if len(chains[i]) != len(chains[j]) {
			return len(chains[i]) > len(chains[j])
		}
		return chains[i][0] < chains[j][0]
	})
	if max > 0 && len(chains) > max {
		chains = chains[:max]
	}
	return chains
}

// WaitsForDot renders the snapshot as a Graphviz digraph.  In a merged
// fleet snapshot (any entry from a partition other than 0), nodes and
// edges carry their partition of origin so cross-partition cycles are
// visually attributable.
func WaitsForDot(snap lock.WaitsForSnapshot) string {
	fleet := false
	for _, w := range snap.Waiters {
		if w.Partition != 0 {
			fleet = true
		}
	}
	for _, e := range snap.Edges {
		if e.Partition != 0 {
			fleet = true
		}
	}
	var sb strings.Builder
	sb.WriteString("digraph waitsfor {\n  rankdir=LR;\n")
	for _, w := range snap.Waiters {
		label := fmt.Sprintf("%v\\n%v %v (%v)", w.Client, w.Name, w.Mode, w.Age.Truncate(time.Microsecond))
		if fleet {
			label += fmt.Sprintf("\\n@p%d", w.Partition)
		}
		fmt.Fprintf(&sb, "  %q [label=\"%s\"];\n", w.Client.String(), label)
	}
	for _, e := range snap.Edges {
		if fleet {
			fmt.Fprintf(&sb, "  %q -> %q [label=\"p%d\"];\n", e.Waiter.String(), e.Blocker.String(), e.Partition)
		} else {
			fmt.Fprintf(&sb, "  %q -> %q;\n", e.Waiter.String(), e.Blocker.String())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// WaitsForHandler serves /waitsfor from a live snapshot source
// (typically GLM.WaitsFor).  Default output is JSON; ?format=dot
// renders a Graphviz digraph.
func WaitsForHandler(src func() lock.WaitsForSnapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := src()
		if r.URL.Query().Get("format") == "dot" {
			w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
			fmt.Fprint(w, WaitsForDot(snap))
			return
		}
		out := waitsForJSON{
			Waiters: []waiterJSON{},
			Edges:   []edgeJSON{},
			Chains:  [][]string{},
			Victims: []victimJSON{},
		}
		for _, wi := range snap.Waiters {
			out.Waiters = append(out.Waiters, waiterJSON{
				Client: wi.Client.String(), Name: wi.Name.String(),
				Mode: wi.Mode.String(), AgeNS: int64(wi.Age),
				Partition: wi.Partition,
			})
		}
		for _, e := range snap.Edges {
			out.Edges = append(out.Edges, edgeJSON{
				Waiter: e.Waiter.String(), Blocker: e.Blocker.String(),
				Partition: e.Partition,
			})
		}
		for _, chain := range LongestChains(snap.Edges, 5) {
			names := make([]string, len(chain))
			for i, c := range chain {
				names[i] = c.String()
			}
			out.Chains = append(out.Chains, names)
		}
		for _, v := range snap.Victims {
			cycle := make([]string, len(v.Cycle))
			for i, c := range v.Cycle {
				cycle[i] = c.String()
			}
			out.Victims = append(out.Victims, victimJSON{
				Client: v.Client.String(), Name: v.Name.String(), Mode: v.Mode.String(),
				At: v.At.UTC().Format("2006-01-02T15:04:05.000Z"), Cycle: cycle,
				Partition: v.Partition, Distributed: v.Distributed,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
}

// Summary renders a compact multi-line waits-for report for terminal
// output (the chaos failure snapshot).  A merged fleet snapshot (any
// entry from a partition other than 0) carries @pN provenance on every
// line, so a cross-partition deadlock post-mortem names the server
// each wait was observed on.
func Summary(snap lock.WaitsForSnapshot) string {
	fleet := false
	for _, w := range snap.Waiters {
		if w.Partition != 0 {
			fleet = true
		}
	}
	for _, e := range snap.Edges {
		if e.Partition != 0 {
			fleet = true
		}
	}
	for _, v := range snap.Victims {
		if v.Partition != 0 || v.Distributed {
			fleet = true
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "waits-for: %d waiter(s), %d edge(s), %d deadlock victim(s)\n",
		len(snap.Waiters), len(snap.Edges), len(snap.Victims))
	for _, w := range snap.Waiters {
		if fleet {
			fmt.Fprintf(&sb, "  %v waits for %v %v (%v) @p%d\n", w.Client, w.Name, w.Mode, w.Age.Truncate(time.Microsecond), w.Partition)
		} else {
			fmt.Fprintf(&sb, "  %v waits for %v %v (%v)\n", w.Client, w.Name, w.Mode, w.Age.Truncate(time.Microsecond))
		}
	}
	// In a fleet, annotate each edge's partition of origin so chain
	// hops can be cross-referenced back to servers.
	edgePart := make(map[[2]ident.ClientID]int, len(snap.Edges))
	for _, e := range snap.Edges {
		edgePart[[2]ident.ClientID{e.Waiter, e.Blocker}] = e.Partition
	}
	for _, chain := range LongestChains(snap.Edges, 3) {
		parts := make([]string, len(chain))
		for i, c := range chain {
			parts[i] = c.String()
			if fleet && i > 0 {
				parts[i] += fmt.Sprintf("@p%d", edgePart[[2]ident.ClientID{chain[i-1], chain[i]}])
			}
		}
		fmt.Fprintf(&sb, "  chain: %s\n", strings.Join(parts, " -> "))
	}
	n := len(snap.Victims)
	if n > 3 {
		snap.Victims = snap.Victims[n-3:]
	}
	for _, v := range snap.Victims {
		if fleet {
			kind := ""
			if v.Distributed {
				kind = " (distributed)"
			}
			fmt.Fprintf(&sb, "  victim: %v on %v %v @p%d%s\n", v.Client, v.Name, v.Mode, v.Partition, kind)
		} else {
			fmt.Fprintf(&sb, "  victim: %v on %v %v\n", v.Client, v.Name, v.Mode)
		}
	}
	return sb.String()
}
