package fleetobs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"clientlog/internal/fleet"
	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/obs"
	"clientlog/internal/obs/span"
)

// Plane is the fleet-level aggregation endpoint: one handler that
// merges every source's metrics under partition tags, stitches span
// trees across partitions, merges the waits-for graph, and serves the
// rolling rates and anomaly pass of its Monitor.
type Plane struct {
	sources []Source
	mon     *Monitor
	alerts  AlertConfig
}

// NewPlane builds a plane (and its monitor) over sources.
func NewPlane(sources []Source, alerts AlertConfig) *Plane {
	return &Plane{
		sources: sources,
		mon:     NewMonitor(sources, 0),
		alerts:  alerts,
	}
}

// Sources returns the scrape targets.
func (p *Plane) Sources() []Source { return p.sources }

// Monitor returns the rolling-rates layer (drive it with Start or
// Tick).
func (p *Plane) Monitor() *Monitor { return p.mon }

// MergedWaitsFor scrapes and concatenates every source's waits-for
// graph — the networked counterpart of core.Cluster.WaitsFor.
// Unreachable sources contribute nothing (a dead partition has no
// waiters worth blocking the post-mortem on).
func (p *Plane) MergedWaitsFor() lock.WaitsForSnapshot {
	snaps := make([]lock.WaitsForSnapshot, 0, len(p.sources))
	for _, src := range p.sources {
		snap, err := src.WaitsFor()
		if err != nil {
			continue
		}
		snaps = append(snaps, snap)
	}
	return fleet.MergeSnapshots(snaps)
}

// CollectTrace gathers every source's piece of one transaction's trace
// and stitches them: the client-published tree is the base, partition
// sources contribute their staged server spans tagged with @origin.
func (p *Plane) CollectTrace(txn ident.TxnID) (*span.Trace, bool) {
	var base *span.Trace
	var parts []PartTrace
	for _, src := range p.sources {
		tr, ok, err := src.Trace(txn)
		if err != nil || !ok || tr == nil || len(tr.Spans) == 0 {
			continue
		}
		if src.IsClient() && !tr.Partial && base == nil {
			base = tr
			continue
		}
		parts = append(parts, PartTrace{Origin: src.Name(), Trace: tr})
	}
	st := Stitch(base, parts)
	return st, st != nil
}

// slowestHeads merges the slowest-trace listings of the client-side
// sources (they hold the published traces; partitions hold only
// partials, which Slowest excludes by design).
func (p *Plane) slowestHeads(n int) []TraceHead {
	heads := []TraceHead{}
	for _, src := range p.sources {
		if !src.IsClient() {
			continue
		}
		hs, err := src.Slowest(n)
		if err != nil {
			continue
		}
		heads = append(heads, hs...)
	}
	sort.Slice(heads, func(i, j int) bool {
		if heads[i].TotalNS != heads[j].TotalNS {
			return heads[i].TotalNS > heads[j].TotalNS
		}
		return heads[i].TxnID < heads[j].TxnID
	})
	if len(heads) > n {
		heads = heads[:n]
	}
	return heads
}

// SlowestStitched returns the fleet's n slowest published traces, each
// re-stitched across every partition — the self-contained post-mortem
// view the chaos failure dumps print.
func (p *Plane) SlowestStitched(n int) []*span.Trace {
	var out []*span.Trace
	for _, h := range p.slowestHeads(n) {
		if tr, ok := p.CollectTrace(ident.TxnID(h.TxnID)); ok {
			out = append(out, tr)
		}
	}
	return out
}

// merged builds the partition-tagged union of every source's snapshot
// plus the partition="fleet" rollup series.
func (p *Plane) merged() (obs.Snapshot, map[string]map[string]uint64, map[string]uint64) {
	merged := obs.Snapshot{
		Counters: map[string]uint64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]obs.HistView{},
	}
	perSource := make(map[string]map[string]uint64, len(p.sources))
	fleetTotals := map[string]uint64{}
	for _, src := range p.sources {
		snap, err := src.Snapshot()
		if err != nil {
			continue
		}
		name := src.Name()
		fams := map[string]uint64{}
		for k, v := range snap.Counters {
			fam, _ := obs.ParseKey(k)
			fams[fam] += v
			fleetTotals[fam] += v
		}
		perSource[name] = fams
		merged = merged.Merge(snap.WithTags(obs.T("partition", name)))
	}
	for fam, v := range fleetTotals {
		merged.Counters[obs.AddTags(fam, obs.T("partition", "fleet"))] = v
	}
	return merged, perSource, fleetTotals
}

// Handler serves the fleet admin surface:
//
//	/metrics        merged Prometheus text, every series tagged with its
//	                partition of origin plus partition="fleet" rollups
//	/metrics.json   per-source and fleet counter-family totals
//	/trace/<txnid>  the stitched cross-partition span tree
//	/trace/slowest  fleet-wide slowest published traces
//	/waitsfor       the merged waits-for graph (JSON or ?format=dot)
//	/rates          the rolling-window rates
//	/alerts         the anomaly pass over the current rates
//	/healthz        per-source scrape health
func (p *Plane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		merged, _, _ := p.merged()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = merged.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		_, perSource, fleetTotals := p.merged()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"sources": perSource,
			"fleet":   fleetTotals,
		})
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/trace/")
		w.Header().Set("Content-Type", "application/json")
		if rest == "slowest" || rest == "" {
			n := 10
			if v := r.URL.Query().Get("n"); v != "" {
				if q, err := strconv.Atoi(v); err == nil && q > 0 {
					n = q
				}
			}
			heads := p.slowestHeads(n)
			_ = json.NewEncoder(w).Encode(map[string]any{"n": len(heads), "traces": heads})
			return
		}
		txn, err := span.ParseTxnID(rest)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		tr, ok := p.CollectTrace(txn)
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(map[string]string{
				"error": "trace not found on any source (not sampled, evicted, or unknown txn)",
			})
			return
		}
		_ = json.NewEncoder(w).Encode(span.RenderTrace(tr))
	})
	mux.Handle("/waitsfor", span.WaitsForHandler(p.MergedWaitsFor))
	mux.HandleFunc("/rates", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rates, ok := p.mon.Rates()
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "need at least two samples"})
			return
		}
		_ = json.NewEncoder(w).Encode(rates)
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rates, ok := p.mon.Rates()
		if !ok {
			_ = json.NewEncoder(w).Encode(map[string]any{"n": 0, "alerts": []Alert{},
				"note": "need at least two monitor samples"})
			return
		}
		alerts := EvaluateAlerts(rates, p.alerts)
		_ = json.NewEncoder(w).Encode(map[string]any{"n": len(alerts), "alerts": alerts})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		type h struct {
			Source string `json:"source"`
			OK     bool   `json:"ok"`
			Err    string `json:"err,omitempty"`
		}
		out := []h{}
		healthy := true
		for _, src := range p.sources {
			_, err := src.Snapshot()
			e := h{Source: src.Name(), OK: err == nil}
			if err != nil {
				healthy = false
				e.Err = err.Error()
			}
			out = append(out, e)
		}
		if !healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"ok": healthy, "sources": out})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "fleet observability plane\n"+
			"  /metrics /metrics.json /trace/<txnid> /trace/slowest\n"+
			"  /waitsfor /rates /alerts /healthz\n")
	})
	return mux
}
