package fleetobs

import "fmt"

// AlertConfig holds the anomaly thresholds.  Zero fields take the
// defaults below; the defaults are deliberately loose so a healthy
// UNIFORM workload stays quiet.
type AlertConfig struct {
	// SkewFactor fires partition-skew when the busiest partition's
	// share of fleet work exceeds SkewFactor/partitions (default 2.0:
	// twice its fair share).
	SkewFactor float64
	// MinWorkRate is the fleet work rate (grants/s) below which skew is
	// never evaluated — an idle fleet is trivially "skewed" by noise.
	MinWorkRate float64
	// ConvoyShare fires lock-convoy when the p95 lock-wait share of the
	// commit path exceeds it (default 0.5).
	ConvoyShare float64
	// MinCommitRate gates the convoy and deadlock alerts (default 5/s).
	MinCommitRate float64
	// DeadlockShare fires when deadlock kills exceed this fraction of
	// commits (default 0.05).
	DeadlockShare float64
	// LogPressureRate fires §3.6 log-space pressure when reclaim
	// failures plus forced ships exceed this rate (default 0.5/s).
	LogPressureRate float64
}

func (c AlertConfig) withDefaults() AlertConfig {
	if c.SkewFactor <= 0 {
		c.SkewFactor = 2.0
	}
	if c.MinWorkRate <= 0 {
		c.MinWorkRate = 50
	}
	if c.ConvoyShare <= 0 {
		c.ConvoyShare = 0.5
	}
	if c.MinCommitRate <= 0 {
		c.MinCommitRate = 5
	}
	if c.DeadlockShare <= 0 {
		c.DeadlockShare = 0.05
	}
	if c.LogPressureRate <= 0 {
		c.LogPressureRate = 0.5
	}
	return c
}

// Alert is one fired anomaly.
type Alert struct {
	Kind    string  `json:"kind"`
	Value   float64 `json:"value"`
	Limit   float64 `json:"limit"`
	Message string  `json:"message"`
}

// EvaluateAlerts runs the anomaly pass over one rates window:
// partition skew, lock convoys (p95 lock-wait share spikes), §3.6
// log-space pressure, corrupt frames, and deadlock churn.
func EvaluateAlerts(r Rates, cfg AlertConfig) []Alert {
	cfg = cfg.withDefaults()
	alerts := []Alert{}

	// Partition skew: the busiest member holds more than SkewFactor×
	// its fair share of fleet work.
	if n := len(r.Partitions); n >= 2 {
		var fleetWork, maxShare float64
		maxName := ""
		for name, pr := range r.Partitions {
			fleetWork += pr.WorkPerSec
			if pr.Share > maxShare {
				maxShare, maxName = pr.Share, name
			}
		}
		limit := cfg.SkewFactor / float64(n)
		if limit > 1 {
			limit = 1
		}
		if fleetWork >= cfg.MinWorkRate && maxShare > limit {
			alerts = append(alerts, Alert{
				Kind: "partition-skew", Value: maxShare, Limit: limit,
				Message: fmt.Sprintf("partition %s carries %.0f%% of fleet work (fair share %.0f%%, limit %.0f%%)",
					maxName, maxShare*100, 100/float64(n), limit*100),
			})
		}
	}

	// Lock convoy: the p95 commit spends most of its time waiting on
	// locks.
	if r.CommitsPerSec >= cfg.MinCommitRate && r.LockWaitShareP95 > cfg.ConvoyShare {
		alerts = append(alerts, Alert{
			Kind: "lock-convoy", Value: r.LockWaitShareP95, Limit: cfg.ConvoyShare,
			Message: fmt.Sprintf("p95 lock-wait share of the commit path is %.0f%% (limit %.0f%%)",
				r.LockWaitShareP95*100, cfg.ConvoyShare*100),
		})
	}

	// §3.6 log-space pressure: clients are failing to reclaim log space
	// (or force-shipping pages to make room) at a sustained rate.
	if r.LogPressurePerSec > cfg.LogPressureRate {
		alerts = append(alerts, Alert{
			Kind: "log-pressure", Value: r.LogPressurePerSec, Limit: cfg.LogPressureRate,
			Message: fmt.Sprintf("log-space pressure events at %.1f/s (reclaim failures + forced ships, limit %.1f/s)",
				r.LogPressurePerSec, cfg.LogPressureRate),
		})
	}

	// Corrupt frames: any sustained rate is wrong.
	if r.CorruptFramesPerSec > 0 {
		alerts = append(alerts, Alert{
			Kind: "corrupt-frames", Value: r.CorruptFramesPerSec, Limit: 0,
			Message: fmt.Sprintf("corrupt wire frames at %.2f/s", r.CorruptFramesPerSec),
		})
	}

	// Deadlock churn: kills are eating a visible fraction of commits.
	if r.CommitsPerSec >= cfg.MinCommitRate &&
		r.DeadlocksPerSec > cfg.DeadlockShare*r.CommitsPerSec {
		alerts = append(alerts, Alert{
			Kind: "deadlock-rate", Value: r.DeadlocksPerSec, Limit: cfg.DeadlockShare * r.CommitsPerSec,
			Message: fmt.Sprintf("deadlock kills at %.1f/s against %.1f commits/s",
				r.DeadlocksPerSec, r.CommitsPerSec),
		})
	}
	return alerts
}
