package fleetobs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/obs"
	"clientlog/internal/obs/span"
)

// buildTxn records one sampled transaction on a client store plus
// server spans staged on two partition stores, the way a roaming
// commit does over the wire, and returns the txn id.
func buildTxn(t *testing.T, client, p0, p1 *span.Store) ident.TxnID {
	t.Helper()
	txn := ident.TxnID(77)
	tt := client.Begin(txn)
	if !tt.Sampled() {
		t.Fatal("client trace not sampled with SampleEvery=1")
	}
	lockID := tt.Start(span.CatLockWait, "lock pages")
	ctx := tt.Context(lockID)
	s0 := p0.ServerStart(ctx, span.CatLockWait, "queue-wait")
	time.Sleep(time.Millisecond)
	s0.End()
	s1 := p1.ServerStart(ctx, span.CatLockWait, "queue-wait")
	time.Sleep(time.Millisecond)
	s1.End()
	tt.End(lockID)
	tt.Finish(true)
	return txn
}

func testStores(t *testing.T) (client, p0, p1 *span.Store) {
	t.Helper()
	opt := span.Options{SampleEvery: 1}
	return span.NewStore(opt), span.NewStore(opt), span.NewStore(opt)
}

func TestStitchCrossPartition(t *testing.T) {
	client, p0, p1 := testStores(t)
	txn := buildTxn(t, client, p0, p1)

	plane := NewPlane([]Source{
		&LocalSource{SourceName: "client", Client: true, Spans: client},
		&LocalSource{SourceName: "p0", Spans: p0},
		&LocalSource{SourceName: "p1", Spans: p1},
	}, AlertConfig{})

	tr, ok := plane.CollectTrace(txn)
	if !ok {
		t.Fatal("CollectTrace found nothing")
	}
	if tr.Partial {
		t.Fatal("stitched trace with a client base must not be partial")
	}
	r := span.RenderTrace(tr)
	if len(r.Origins) != 2 || r.Origins[0] != "p0" || r.Origins[1] != "p1" {
		t.Fatalf("origins = %v, want [p0 p1]", r.Origins)
	}
	// The two server spans must be fleet-unique and keep their parent
	// links into the client tree.
	ids := map[uint64]bool{}
	var srv int
	for _, sp := range tr.Spans {
		if ids[sp.ID] {
			t.Fatalf("duplicate span id %d after stitch", sp.ID)
		}
		ids[sp.ID] = true
		if sp.Origin != "" {
			srv++
			if sp.Parent == 0 || sp.Parent >= srvBase {
				t.Fatalf("server span parent %d does not point into the client tree", sp.Parent)
			}
			if !ids[sp.Parent] {
				// Parents precede children only per part; check membership
				// at the end instead.
				defer func(p uint64) {
					if !ids[p] {
						t.Errorf("server span parent %d missing from stitched trace", p)
					}
				}(sp.Parent)
			}
		}
	}
	if srv != 2 {
		t.Fatalf("stitched trace has %d server spans, want 2", srv)
	}
	// The tree renderer must attribute the provenance.
	tree := span.TreeString(tr)
	if !strings.Contains(tree, "@p0") || !strings.Contains(tree, "@p1") {
		t.Fatalf("TreeString lacks @partition provenance:\n%s", tree)
	}
}

func TestStitchWithoutClientBase(t *testing.T) {
	client, p0, p1 := testStores(t)
	txn := buildTxn(t, client, p0, p1)

	// Plane that cannot reach the client store: only partial partition
	// views remain.
	plane := NewPlane([]Source{
		&LocalSource{SourceName: "p0", Spans: p0},
		&LocalSource{SourceName: "p1", Spans: p1},
	}, AlertConfig{})
	tr, ok := plane.CollectTrace(txn)
	if !ok {
		t.Fatal("CollectTrace found nothing")
	}
	if !tr.Partial {
		t.Fatal("stitch without a client base must be partial")
	}
	r := span.RenderTrace(tr)
	if len(r.Origins) != 2 {
		t.Fatalf("origins = %v, want two partitions", r.Origins)
	}
	if r.Root == nil || r.Root.ID != 1 {
		t.Fatal("partial stitch must synthesize a root")
	}
}

func TestMonitorSkewAndGobShare(t *testing.T) {
	// Three partition registries with lock-grant counters; p0 is also
	// instrumented with wire-frame version counters.
	regs := make([]*obs.Registry, 3)
	grants := make([]*obs.Counter, 3)
	sources := make([]Source, 0, 3)
	for i := range regs {
		regs[i] = obs.NewRegistry()
		grants[i] = &obs.Counter{}
		regs[i].BindCounter(grants[i], "lock_grants_total")
		sources = append(sources, &LocalSource{
			SourceName: "p" + string(rune('0'+i)), Registry: regs[i],
		})
	}
	var v3, v3gob obs.Counter
	regs[0].BindCounter(&v3, "netrpc_frames_total", obs.T("method", "lock"), obs.T("version", "v3"))
	regs[0].BindCounter(&v3gob, "netrpc_frames_total", obs.T("method", "register"), obs.T("version", "v3gob"))

	mon := NewMonitor(sources, 4)
	mon.Tick()
	if _, ok := mon.Rates(); ok {
		t.Fatal("Rates must report not-ready with one sample")
	}

	// Skewed window: p0 does ~all the work; 3 of its 4 frames escaped
	// to gob.
	grants[0].Add(90000)
	grants[1].Add(500)
	grants[2].Add(500)
	v3.Add(1)
	v3gob.Add(3)
	time.Sleep(2 * time.Millisecond) // non-degenerate window
	mon.Tick()

	r, ok := mon.Rates()
	if !ok {
		t.Fatal("Rates not ready after two samples")
	}
	p0 := r.Partitions["p0"]
	if p0.Share < 0.9 {
		t.Fatalf("p0 share = %.3f, want > 0.9", p0.Share)
	}
	if p0.GobEscapeShare != 0.75 {
		t.Fatalf("p0 gob escape share = %.3f, want 0.75", p0.GobEscapeShare)
	}
	alerts := EvaluateAlerts(r, AlertConfig{})
	if !hasAlert(alerts, "partition-skew") {
		t.Fatalf("skewed window fired no partition-skew alert: %+v", alerts)
	}

	// Uniform window: balanced work must stay quiet.
	for _, g := range grants {
		g.Add(30000)
	}
	time.Sleep(2 * time.Millisecond)
	mon.Tick()
	mon2 := NewMonitor(sources, 4)
	mon2.Tick()
	for _, g := range grants {
		g.Add(30000)
	}
	time.Sleep(2 * time.Millisecond)
	mon2.Tick()
	r2, _ := mon2.Rates()
	if alerts := EvaluateAlerts(r2, AlertConfig{}); len(alerts) != 0 {
		t.Fatalf("uniform window fired alerts: %+v", alerts)
	}
}

func hasAlert(alerts []Alert, kind string) bool {
	for _, a := range alerts {
		if a.Kind == kind {
			return true
		}
	}
	return false
}

func TestEvaluateAlertKinds(t *testing.T) {
	base := Rates{CommitsPerSec: 100}
	cases := []struct {
		name string
		r    Rates
		kind string
	}{
		{"convoy", Rates{CommitsPerSec: 100, LockWaitShareP95: 0.8}, "lock-convoy"},
		{"log-pressure", Rates{LogPressurePerSec: 2}, "log-pressure"},
		{"corrupt", Rates{CorruptFramesPerSec: 0.1}, "corrupt-frames"},
		{"deadlock", Rates{CommitsPerSec: 100, DeadlocksPerSec: 20}, "deadlock-rate"},
	}
	for _, c := range cases {
		if !hasAlert(EvaluateAlerts(c.r, AlertConfig{}), c.kind) {
			t.Errorf("%s: expected %q alert", c.name, c.kind)
		}
	}
	if got := EvaluateAlerts(base, AlertConfig{}); len(got) != 0 {
		t.Errorf("healthy rates fired %+v", got)
	}
}

// TestMemberHTTPRoundTrip drives HTTPSource against MemberHandler the
// way the plane scrapes a real partition's admin server.
func TestMemberHTTPRoundTrip(t *testing.T) {
	client, p0, p1 := testStores(t)
	txn := buildTxn(t, client, p0, p1)

	reg := obs.NewRegistry()
	var c obs.Counter
	reg.BindCounter(&c, "lock_grants_total")
	c.Add(42)
	wf := func() lock.WaitsForSnapshot {
		return lock.WaitsForSnapshot{Edges: []lock.WaitEdge{
			{Waiter: 1, Blocker: 2, Partition: 1},
		}}
	}
	srv := httptest.NewServer(MemberHandler(MemberOptions{Registry: reg, Spans: p0, WaitsFor: wf}))
	defer srv.Close()

	src := &HTTPSource{SourceName: "p0", Base: srv.URL}
	snap, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Total("lock_grants_total") != 42 {
		t.Fatalf("scraped lock_grants_total = %d, want 42", snap.Total("lock_grants_total"))
	}
	tr, ok, err := src.Trace(txn)
	if err != nil || !ok {
		t.Fatalf("Trace: ok=%v err=%v", ok, err)
	}
	if !tr.Partial {
		t.Fatal("partition view of a client-published trace must be partial")
	}
	if _, ok, err := src.Trace(ident.TxnID(424242)); err != nil || ok {
		t.Fatalf("unknown txn: ok=%v err=%v (want false, nil)", ok, err)
	}
	wfSnap, err := src.WaitsFor()
	if err != nil {
		t.Fatal(err)
	}
	if len(wfSnap.Edges) != 1 || wfSnap.Edges[0].Partition != 1 {
		t.Fatalf("waits-for round trip lost the edge: %+v", wfSnap)
	}
	if _, err := src.Slowest(5); err != nil {
		t.Fatal(err)
	}
}

// TestPlaneHandler exercises the fleet endpoints end to end over
// local sources, including the partition-tag sum invariant the CI job
// asserts.
func TestPlaneHandler(t *testing.T) {
	client, p0, p1 := testStores(t)
	txn := buildTxn(t, client, p0, p1)

	reg0, reg1 := obs.NewRegistry(), obs.NewRegistry()
	var g0, g1 obs.Counter
	reg0.BindCounter(&g0, "lock_grants_total")
	reg1.BindCounter(&g1, "lock_grants_total")
	g0.Add(30)
	g1.Add(12)
	wf0 := func() lock.WaitsForSnapshot {
		return lock.WaitsForSnapshot{Edges: []lock.WaitEdge{{Waiter: 1, Blocker: 2}}}
	}
	wf1 := func() lock.WaitsForSnapshot {
		return lock.WaitsForSnapshot{Edges: []lock.WaitEdge{{Waiter: 2, Blocker: 1, Partition: 1}}}
	}

	plane := NewPlane([]Source{
		&LocalSource{SourceName: "client", Client: true, Spans: client},
		&LocalSource{SourceName: "p0", Registry: reg0, Spans: p0, WF: wf0},
		&LocalSource{SourceName: "p1", Registry: reg1, Spans: p1, WF: wf1},
	}, AlertConfig{})
	srv := httptest.NewServer(plane.Handler())
	defer srv.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	// /metrics: partition-tagged series plus the fleet rollup.
	_, body := get("/metrics")
	text := string(body)
	for _, want := range []string{
		`lock_grants_total{partition="p0"} 30`,
		`lock_grants_total{partition="p1"} 12`,
		`lock_grants_total{partition="fleet"} 42`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	// /metrics.json: partition tags sum to fleet totals.
	_, body = get("/metrics.json")
	var mj struct {
		Sources map[string]map[string]uint64 `json:"sources"`
		Fleet   map[string]uint64            `json:"fleet"`
	}
	if err := json.Unmarshal(body, &mj); err != nil {
		t.Fatal(err)
	}
	for fam, total := range mj.Fleet {
		var sum uint64
		for _, fams := range mj.Sources {
			sum += fams[fam]
		}
		if sum != total {
			t.Errorf("family %s: partition sum %d != fleet total %d", fam, sum, total)
		}
	}
	if mj.Fleet["lock_grants_total"] != 42 {
		t.Errorf("fleet lock_grants_total = %d, want 42", mj.Fleet["lock_grants_total"])
	}

	// /trace/<txnid>: the stitched tree with both partitions.
	resp, body := get("/trace/" + txnIDString(txn))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace/<id> status %d: %s", resp.StatusCode, body)
	}
	var tj span.TraceJSON
	if err := json.Unmarshal(body, &tj); err != nil {
		t.Fatal(err)
	}
	if len(tj.Origins) != 2 {
		t.Fatalf("stitched trace origins = %v, want 2 partitions", tj.Origins)
	}
	if tj.Shares == nil || tj.Root == nil {
		t.Fatal("stitched trace lacks shares or root")
	}

	// /trace/slowest lists the published client trace.
	_, body = get("/trace/slowest")
	var sl struct {
		N      int         `json:"n"`
		Traces []TraceHead `json:"traces"`
	}
	if err := json.Unmarshal(body, &sl); err != nil {
		t.Fatal(err)
	}
	if sl.N != 1 || sl.Traces[0].TxnID != uint64(txn) {
		t.Fatalf("/trace/slowest = %+v, want the one published txn", sl)
	}

	// /waitsfor merges both partitions' graphs with @pN provenance.
	_, body = get("/waitsfor")
	var wfj struct {
		Edges []struct {
			Waiter    string `json:"waiter"`
			Blocker   string `json:"blocker"`
			Partition int    `json:"partition"`
		} `json:"edges"`
	}
	if err := json.Unmarshal(body, &wfj); err != nil {
		t.Fatal(err)
	}
	if len(wfj.Edges) != 2 {
		t.Fatalf("/waitsfor edges = %+v, want both partitions' edges", wfj.Edges)
	}
	parts := map[int]bool{}
	for _, e := range wfj.Edges {
		parts[e.Partition] = true
	}
	if !parts[0] || !parts[1] {
		t.Fatalf("/waitsfor edges lost partition provenance: %+v", wfj.Edges)
	}

	// /alerts degrades gracefully before the monitor has samples.
	resp, body = get("/alerts")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/alerts status %d", resp.StatusCode)
	}
	var aj struct {
		N int `json:"n"`
	}
	if err := json.Unmarshal(body, &aj); err != nil {
		t.Fatal(err)
	}
	if aj.N != 0 {
		t.Fatalf("/alerts fired %d alerts on an empty monitor: %s", aj.N, body)
	}

	// /healthz reports every source.
	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", resp.StatusCode, body)
	}
	var hj struct {
		OK bool `json:"ok"`
	}
	if err := json.Unmarshal(body, &hj); err != nil || !hj.OK {
		t.Fatalf("/healthz not ok: %s", body)
	}
}

// txnIDString renders a txn id the way the admin URLs expect.
func txnIDString(txn ident.TxnID) string {
	return strconv.FormatUint(uint64(txn), 10)
}
