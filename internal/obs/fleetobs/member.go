package fleetobs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"clientlog/internal/lock"
	"clientlog/internal/obs"
	"clientlog/internal/obs/span"
)

// MemberOptions configures a member's machine-readable export surface.
// Any field may be nil; the corresponding endpoint serves empty data.
type MemberOptions struct {
	Registry *obs.Registry
	Spans    *span.Store
	WaitsFor func() lock.WaitsForSnapshot
}

// MemberHandler serves a partition member's raw observability state
// under the /fleet/ prefix for the aggregation plane to scrape:
//
//	/fleet/snapshot      the metric registry as an obs.Snapshot
//	/fleet/trace/<txnid> this member's view of one trace (partial for
//	                     transactions whose client publishes elsewhere)
//	/fleet/slowest?n=    slowest published traces, heads only
//	/fleet/waitsfor      the local waits-for graph (raw lock types)
//
// Everything is plain JSON of already-exported types, so HTTPSource on
// the plane side decodes without translation.  Mount it on the member's
// admin server next to the human-facing /metrics and /trace endpoints.
func MemberHandler(opt MemberOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var snap obs.Snapshot
		if opt.Registry != nil {
			snap = opt.Registry.Snapshot()
		}
		_ = json.NewEncoder(w).Encode(snap)
	})
	mux.HandleFunc("/fleet/trace/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rest := strings.TrimPrefix(r.URL.Path, "/fleet/trace/")
		txn, err := span.ParseTxnID(rest)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		var (
			tr *span.Trace
			ok bool
		)
		if opt.Spans != nil {
			tr, ok = opt.Spans.Get(txn)
		}
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "trace not found"})
			return
		}
		_ = json.NewEncoder(w).Encode(tr)
	})
	mux.HandleFunc("/fleet/slowest", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		n := 10
		if v := r.URL.Query().Get("n"); v != "" {
			if p, err := strconv.Atoi(v); err == nil && p > 0 {
				n = p
			}
		}
		heads := []TraceHead{}
		var slow []*span.Trace
		if opt.Spans != nil {
			slow = opt.Spans.Slowest(n)
		}
		for _, tr := range slow {
			heads = append(heads, TraceHead{
				Txn: tr.Txn.String(), TxnID: uint64(tr.Txn),
				TotalNS: int64(tr.Total()), Commit: tr.Commit,
			})
		}
		_ = json.NewEncoder(w).Encode(heads)
	})
	mux.HandleFunc("/fleet/waitsfor", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var snap lock.WaitsForSnapshot
		if opt.WaitsFor != nil {
			snap = opt.WaitsFor()
		}
		_ = json.NewEncoder(w).Encode(snap)
	})
	return mux
}
