package fleetobs

import (
	"sync"
	"time"

	"clientlog/internal/obs"
)

// Metric families the rolling layer reads.  All of them already exist
// on the member registries; the monitor only windows them.
const (
	famCommits       = "client_commits_total"
	famAborts        = "client_aborts_total"
	famDeadlocks     = "lock_deadlocks_total"
	famCorrupt       = "netrpc_corrupt_frames_total"
	famReclaimFail   = "client_log_reclaim_fail_total"
	famForcedShips   = "client_forced_ships_total"
	famLockGrants    = "lock_grants_total"
	famPageGrants    = "lock_page_grants_total"
	famWireFrames    = "netrpc_frames_total"
	famFramesSent    = "netrpc_frames_sent_total"
	famFramesRecv    = "netrpc_frames_recv_total"
	famBucketNanos   = "span_bucket_exclusive_nanos"
	famCommitNanos   = "span_commit_path_nanos"
	bucketLockWait   = "lock-wait"
	defaultWindow    = 16
	defaultHoldScans = 2
)

// sample is one scrape of every source.
type sample struct {
	at    time.Time
	snaps map[string]obs.Snapshot
}

// Monitor maintains a ring of periodic samples over the plane's
// sources and computes live rates from the oldest-to-newest delta.
// Tick is public so tests (and one-shot tools) can drive it
// deterministically instead of running the background loop.
type Monitor struct {
	sources []Source
	window  int

	mu      sync.Mutex
	samples []sample // oldest first

	stopOnce sync.Once
	stopC    chan struct{}
	done     chan struct{}
}

// NewMonitor builds a monitor over sources retaining at most window
// samples (defaultWindow if <= 1).
func NewMonitor(sources []Source, window int) *Monitor {
	if window <= 1 {
		window = defaultWindow
	}
	return &Monitor{
		sources: sources,
		window:  window,
		stopC:   make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Tick scrapes every source once and appends the sample to the ring.
// A source that fails to scrape contributes an empty snapshot for this
// sample (its rates read as zero rather than poisoning the window).
func (m *Monitor) Tick() {
	s := sample{at: time.Now(), snaps: make(map[string]obs.Snapshot, len(m.sources))}
	for _, src := range m.sources {
		snap, err := src.Snapshot()
		if err != nil {
			snap = obs.Snapshot{}
		}
		s.snaps[src.Name()] = snap
	}
	m.mu.Lock()
	m.samples = append(m.samples, s)
	if len(m.samples) > m.window {
		m.samples = m.samples[len(m.samples)-m.window:]
	}
	m.mu.Unlock()
}

// Start runs Tick every interval until Stop.
func (m *Monitor) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer close(m.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-m.stopC:
				return
			case <-t.C:
				m.Tick()
			}
		}
	}()
}

// Stop ends the background loop (idempotent; harmless if Start was
// never called — the done channel just stays open in that case).
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stopC) })
}

// PartitionRates is the per-member slice of the fleet rates.
type PartitionRates struct {
	// WorkPerSec is the member's lock-grant rate (wire-frame rate when
	// the member exposes no lock metrics) — the balance proxy for
	// commit share, since commits themselves are client-side.
	WorkPerSec float64 `json:"work_per_sec"`
	// Share is this member's fraction of the fleet's work rate.
	Share           float64 `json:"share"`
	DeadlocksPerSec float64 `json:"deadlocks_per_sec"`
	// GobEscapeShare is the fraction of the member's v3 wire frames
	// that took the gob escape hatch over the window (v2 frames count
	// as escapes too — they are exactly the traffic "retire v2" would
	// convert).
	GobEscapeShare float64 `json:"gob_escape_share"`
}

// Rates is the rolling-window view the /rates and /alerts endpoints
// serve.
type Rates struct {
	WindowSec           float64                   `json:"window_sec"`
	Samples             int                       `json:"samples"`
	CommitsPerSec       float64                   `json:"commits_per_sec"`
	AbortsPerSec        float64                   `json:"aborts_per_sec"`
	AbortRate           float64                   `json:"abort_rate"`
	DeadlocksPerSec     float64                   `json:"deadlocks_per_sec"`
	CorruptFramesPerSec float64                   `json:"corrupt_frames_per_sec"`
	LogPressurePerSec   float64                   `json:"log_pressure_per_sec"`
	LockWaitShareP95    float64                   `json:"lock_wait_share_p95"`
	Partitions          map[string]PartitionRates `json:"partitions"`
}

// delta sums a counter family across every source at both window ends
// and returns the increase.
func deltaTotal(oldest, newest sample, family string) uint64 {
	var a, b uint64
	for _, s := range oldest.snaps {
		a += s.Total(family)
	}
	for _, s := range newest.snaps {
		b += s.Total(family)
	}
	if b < a {
		return 0
	}
	return b - a
}

// Rates computes the oldest-to-newest rates; ok is false until two
// samples exist.
func (m *Monitor) Rates() (Rates, bool) {
	m.mu.Lock()
	if len(m.samples) < 2 {
		m.mu.Unlock()
		return Rates{}, false
	}
	oldest, newest := m.samples[0], m.samples[len(m.samples)-1]
	m.mu.Unlock()

	sec := newest.at.Sub(oldest.at).Seconds()
	if sec <= 0 {
		sec = 1e-9
	}
	per := func(v uint64) float64 { return float64(v) / sec }

	r := Rates{
		WindowSec:           sec,
		Samples:             len(m.samples),
		CommitsPerSec:       per(deltaTotal(oldest, newest, famCommits)),
		AbortsPerSec:        per(deltaTotal(oldest, newest, famAborts)),
		DeadlocksPerSec:     per(deltaTotal(oldest, newest, famDeadlocks)),
		CorruptFramesPerSec: per(deltaTotal(oldest, newest, famCorrupt)),
		LogPressurePerSec: per(deltaTotal(oldest, newest, famReclaimFail) +
			deltaTotal(oldest, newest, famForcedShips)),
		Partitions: make(map[string]PartitionRates),
	}
	if c := r.CommitsPerSec + r.AbortsPerSec; c > 0 {
		r.AbortRate = r.AbortsPerSec / c
	}

	// p95 lock-wait share of the commit path over the window, from the
	// client-side span histograms (servers never publish, so only
	// client sources feed these).
	var lw, cp obs.HistView
	for name, s := range newest.snaps {
		o := oldest.snaps[name]
		lw = lw.Merge(s.HistWhere(famBucketNanos, obs.T("bucket", bucketLockWait)).
			Sub(o.HistWhere(famBucketNanos, obs.T("bucket", bucketLockWait))))
		cp = cp.Merge(s.Hist(famCommitNanos).Sub(o.Hist(famCommitNanos)))
	}
	if cpP95 := cp.Quantile(0.95); cpP95 > 0 {
		r.LockWaitShareP95 = float64(lw.Quantile(0.95)) / float64(cpP95)
	}

	// Per-partition work rates and shares.
	var fleetWork float64
	for _, src := range m.sources {
		if src.IsClient() {
			continue
		}
		name := src.Name()
		o, n := oldest.snaps[name], newest.snaps[name]
		sub := func(family string) uint64 {
			b, a := n.Total(family), o.Total(family)
			if b < a {
				return 0
			}
			return b - a
		}
		work := sub(famLockGrants) + sub(famPageGrants)
		if work == 0 {
			work = sub(famFramesSent) + sub(famFramesRecv)
		}
		if work == 0 {
			work = sub(famWireFrames)
		}
		pr := PartitionRates{
			WorkPerSec:      per(work),
			DeadlocksPerSec: per(sub(famDeadlocks)),
		}
		subWhere := func(family string, t obs.Tag) uint64 {
			b, a := n.TotalWhere(family, t), o.TotalWhere(family, t)
			if b < a {
				return 0
			}
			return b - a
		}
		frames := sub(famWireFrames)
		if frames > 0 {
			esc := subWhere(famWireFrames, obs.T("version", "v3gob")) +
				subWhere(famWireFrames, obs.T("version", "v2"))
			pr.GobEscapeShare = float64(esc) / float64(frames)
		}
		fleetWork += pr.WorkPerSec
		r.Partitions[name] = pr
	}
	if fleetWork > 0 {
		for name, pr := range r.Partitions {
			pr.Share = pr.WorkPerSec / fleetWork
			r.Partitions[name] = pr
		}
	}
	return r, true
}
