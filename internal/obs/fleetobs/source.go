// Package fleetobs is the fleet aggregation plane: it scrapes every
// partition's observability surface — metric registry, span store,
// waits-for graph — over the admin HTTP layer (or in process), merges
// the results under per-partition tags, stitches cross-partition span
// trees back into the single causal tree the client's span context
// implies, and computes rolling rates plus an anomaly pass (partition
// skew, lock convoys, §3.6 log-space pressure) over the merged view.
//
// The shape mirrors the paper's architecture: clients own their
// commit path (client-based logging), so client-side stores hold the
// published commit traces while each partition holds only the staged
// server-side spans of the transactions that touched it.  One fleet
// endpoint reassembles the pieces.
package fleetobs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/obs"
	"clientlog/internal/obs/span"
)

// TraceHead is one row of a slowest-traces listing.
type TraceHead struct {
	Txn     string `json:"txn"`
	TxnID   uint64 `json:"txn_id"`
	TotalNS int64  `json:"total_ns"`
	Commit  bool   `json:"commit"`
}

// Source is one scrape target of the plane: a partition member or a
// client-side trace publisher.  Implementations must be safe for
// concurrent use.
type Source interface {
	// Name labels the source's series on the merged view ("p0", "p1",
	// "client", ...).
	Name() string
	// IsClient reports whether this source publishes client-side
	// (complete) traces; the stitcher uses such traces as the base tree
	// and partition sources only contribute server spans.
	IsClient() bool
	// Snapshot captures the source's metric registry.
	Snapshot() (obs.Snapshot, error)
	// Trace fetches the source's view of one transaction (published or
	// partial); ok=false when the source holds nothing for it.
	Trace(txn ident.TxnID) (tr *span.Trace, ok bool, err error)
	// Slowest lists the source's slowest published traces.
	Slowest(n int) ([]TraceHead, error)
	// WaitsFor captures the source's waits-for graph.
	WaitsFor() (lock.WaitsForSnapshot, error)
}

// LocalSource adapts in-process components (a registry, a span store,
// a waits-for snapshot function) into a Source.  Any field may be nil.
type LocalSource struct {
	SourceName string
	Client     bool
	Registry   *obs.Registry
	Spans      *span.Store
	WF         func() lock.WaitsForSnapshot
}

func (s *LocalSource) Name() string   { return s.SourceName }
func (s *LocalSource) IsClient() bool { return s.Client }

func (s *LocalSource) Snapshot() (obs.Snapshot, error) {
	if s.Registry == nil {
		return obs.Snapshot{}, nil
	}
	return s.Registry.Snapshot(), nil
}

func (s *LocalSource) Trace(txn ident.TxnID) (*span.Trace, bool, error) {
	if s.Spans == nil {
		return nil, false, nil
	}
	tr, ok := s.Spans.Get(txn)
	return tr, ok, nil
}

func (s *LocalSource) Slowest(n int) ([]TraceHead, error) {
	heads := []TraceHead{}
	if s.Spans == nil {
		return heads, nil
	}
	for _, tr := range s.Spans.Slowest(n) {
		heads = append(heads, TraceHead{
			Txn: tr.Txn.String(), TxnID: uint64(tr.Txn),
			TotalNS: int64(tr.Total()), Commit: tr.Commit,
		})
	}
	return heads, nil
}

func (s *LocalSource) WaitsFor() (lock.WaitsForSnapshot, error) {
	if s.WF == nil {
		return lock.WaitsForSnapshot{}, nil
	}
	return s.WF(), nil
}

// HTTPSource scrapes a member's admin endpoint (the /fleet/* surface
// MemberHandler mounts) over HTTP — the networked counterpart of
// LocalSource for real TCP fleets.
type HTTPSource struct {
	SourceName string
	Client     bool
	// Base is the member's admin base URL, e.g. "http://127.0.0.1:7070".
	Base string
	// HTTP is the client used for scrapes (http.DefaultClient if nil).
	HTTP *http.Client
}

func (s *HTTPSource) Name() string   { return s.SourceName }
func (s *HTTPSource) IsClient() bool { return s.Client }

func (s *HTTPSource) get(path string, out any) error {
	cl := s.HTTP
	if cl == nil {
		cl = &http.Client{Timeout: 5 * time.Second}
	}
	resp, err := cl.Get(s.Base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return errNotFound
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleetobs: %s%s: %s", s.Base, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

var errNotFound = fmt.Errorf("fleetobs: not found")

func (s *HTTPSource) Snapshot() (obs.Snapshot, error) {
	var snap obs.Snapshot
	err := s.get("/fleet/snapshot", &snap)
	return snap, err
}

func (s *HTTPSource) Trace(txn ident.TxnID) (*span.Trace, bool, error) {
	var tr span.Trace
	err := s.get("/fleet/trace/"+strconv.FormatUint(uint64(txn), 10), &tr)
	if err == errNotFound {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return &tr, true, nil
}

func (s *HTTPSource) Slowest(n int) ([]TraceHead, error) {
	var heads []TraceHead
	err := s.get("/fleet/slowest?n="+url.QueryEscape(strconv.Itoa(n)), &heads)
	return heads, err
}

func (s *HTTPSource) WaitsFor() (lock.WaitsForSnapshot, error) {
	var snap lock.WaitsForSnapshot
	err := s.get("/fleet/waitsfor", &snap)
	return snap, err
}
