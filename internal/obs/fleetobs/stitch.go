package fleetobs

import (
	"sort"

	"clientlog/internal/obs/span"
)

// srvBase is the span-ID floor for server-side spans (span.Store
// starts its server IDs at 1<<32, out of the per-transaction client ID
// range).  Spans below it in a member's trace are either client spans
// or the synthetic root of a partial trace; the stitcher takes only
// the server spans from members and renumbers them fleet-uniquely,
// because every member's store starts its counter at the same base.
const srvBase = uint64(1) << 32

// PartTrace is one member's contribution to a stitched trace.
type PartTrace struct {
	Origin string // the member's name ("p0", "p1", ...)
	Trace  *span.Trace
}

// Stitch reassembles one transaction's causal tree from its pieces:
// the client-published base trace (nil when the client's store is
// unreachable or never sampled it) plus each partition's staged server
// spans.  Server spans keep their parent links into the client tree —
// the wire context already carries the client span ID — while links to
// other server spans from the same member are renumbered consistently.
// Each adopted span is stamped with its member's name in Span.Origin,
// which is what renders as the @pN provenance.
func Stitch(base *span.Trace, parts []PartTrace) *span.Trace {
	var out span.Trace
	if base != nil {
		out.Txn = base.Txn
		out.Commit = base.Commit
		out.Partial = base.Partial
		out.Spans = append([]span.Span{}, base.Spans...)
	}
	sorted := append([]PartTrace{}, parts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Origin < sorted[j].Origin })
	next := srvBase
	for _, pt := range sorted {
		if pt.Trace == nil {
			continue
		}
		if out.Txn == 0 {
			out.Txn = pt.Trace.Txn
		}
		idmap := make(map[uint64]uint64)
		for _, sp := range pt.Trace.Spans {
			if sp.ID < srvBase {
				continue
			}
			next++
			idmap[sp.ID] = next
		}
		for _, sp := range pt.Trace.Spans {
			if sp.ID < srvBase {
				continue
			}
			ns := sp
			ns.ID = idmap[sp.ID]
			if sp.Parent >= srvBase {
				if m, ok := idmap[sp.Parent]; ok {
					ns.Parent = m
				}
			}
			ns.Origin = pt.Origin
			out.Spans = append(out.Spans, ns)
		}
	}
	if len(out.Spans) == 0 {
		return nil
	}
	if base == nil {
		// No client base: synthesize a root enveloping the adopted
		// spans, like span.Store.Get does for purely-staged traces.
		root := span.Span{ID: 1, Cat: span.CatTxn, Start: out.Spans[0].Start, End: out.Spans[0].End}
		for _, sp := range out.Spans {
			if sp.Start.Before(root.Start) {
				root.Start = sp.Start
			}
			if sp.End.After(root.End) {
				root.End = sp.End
			}
		}
		out.Partial = true
		out.Spans = append([]span.Span{root}, out.Spans...)
	}
	return &out
}
