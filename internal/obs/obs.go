// Package obs is the observability subsystem: lock-free sharded
// counters, gauges and log₂-bucketed histograms, collected in a tagged
// Registry with cheap snapshot/delta semantics, plus an HTTP admin
// endpoint (admin.go) serving Prometheus text, the trace-ring event
// stream and pprof.
//
// The same registry backs every consumer: the engines in internal/core,
// internal/lock, internal/wal and internal/buffer update counters on
// their hot paths; the sim harness and cmd/bench read experiment
// numbers from snapshots of that registry; cmd/clsrv and cmd/chaos
// expose it live over -admin.  Metric structs embed Counter values
// directly (a zero Counter is ready to use), so engines work unchanged
// whether or not a registry is attached; Registry.BindCounter wires an
// existing counter into a named, tagged series after the fact.
//
// Everything here is stdlib-only and allocation-free on the update
// paths (see BenchmarkObsCounter).
package obs

import (
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// counterShards is the number of independent overflow cells a Counter
// spreads contended updates over; a power of two so the shard pick is a
// mask.  The CAS fast path on the base cell absorbs uncontended
// writers, so two overflow lines suffice, keeping the footprint of the
// counters embedded in every engine's metrics struct small (benchmarks
// build thousands of short-lived clusters, so counter bytes are
// allocation pressure there).
const counterShards = 2

// shard is one cache-line-padded counter cell: 8 bytes of value, 56
// bytes of padding, so adjacent shards never share a 64-byte line and
// concurrent writers do not false-share.
type shard struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing counter safe for concurrent
// use.  Updates are lock-free and allocation-free, and adapt to the
// write pattern the way LongAdder does: Add first tries one CAS on a
// base cell, so a single-writer counter (most counters in this repo —
// per-client metrics, counters guarded by their subsystem's own mutex)
// stays on one hot cache line; only when the CAS loses a race does the
// update spill to a randomly picked padded shard, spreading contended
// writers over independent lines.  The zero value is ready to use.
type Counter struct {
	base   shard
	shards [counterShards]shard
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	v := c.base.v.Load()
	if c.base.v.CompareAndSwap(v, v+n) {
		return
	}
	c.shards[rand.Uint32()&(counterShards-1)].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current total.  Concurrent Adds may or may not be
// included; the sum is exact once writers quiesce.
func (c *Counter) Load() uint64 {
	t := c.base.v.Load()
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// Gauge is a settable instantaneous value.  The zero value is ready to
// use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is one bucket per possible bit length of a uint64 (0..64).
const histBuckets = 65

// Histogram accumulates a distribution in log₂ buckets: value v lands
// in bucket bits.Len64(v), i.e. bucket i covers [2^(i-1), 2^i) with
// bucket 0 reserved for zero.  Updates are three uncontended atomic
// adds; the zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration sample in nanoseconds (negative
// durations clamp to zero).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// View returns a copy of the histogram's current state.
func (h *Histogram) View() HistView {
	var v HistView
	// Read count last: a concurrent Observe between the bucket reads
	// and the count read then under-reports count rather than leaving
	// count > sum-of-buckets, keeping quantile walks in range.
	for i := range h.buckets {
		v.Buckets[i] = h.buckets[i].Load()
	}
	v.Sum = h.sum.Load()
	v.Count = h.count.Load()
	return v
}

// HistView is an immutable histogram snapshot.
type HistView struct {
	Count   uint64
	Sum     uint64
	Buckets [histBuckets]uint64
}

// Merge returns the bucket-wise sum of two views (e.g. the cluster-wide
// commit latency distribution from per-client histograms).
func (v HistView) Merge(o HistView) HistView {
	out := v
	out.Count += o.Count
	out.Sum += o.Sum
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	return out
}

// Sub returns the delta view since prev (counts are monotone, so the
// difference is itself a valid distribution).
func (v HistView) Sub(prev HistView) HistView {
	out := v
	out.Count -= prev.Count
	out.Sum -= prev.Sum
	for i := range out.Buckets {
		out.Buckets[i] -= prev.Buckets[i]
	}
	return out
}

// Mean returns the arithmetic mean of the observed samples.
func (v HistView) Mean() float64 {
	if v.Count == 0 {
		return 0
	}
	return float64(v.Sum) / float64(v.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by walking the
// cumulative bucket counts and interpolating linearly inside the
// bucket the rank lands in.  Log₂ buckets bound the error to a factor
// of two, which is plenty for latency reporting.
func (v HistView) Quantile(q float64) uint64 {
	if v.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(v.Count))
	if rank >= v.Count {
		rank = v.Count - 1
	}
	var cum uint64
	for i, n := range v.Buckets {
		if n == 0 {
			continue
		}
		if rank < cum+n {
			lo, hi := bucketBounds(i)
			frac := float64(rank-cum) / float64(n)
			return lo + uint64(frac*float64(hi-lo))
		}
		cum += n
	}
	return 0
}

// bucketBounds returns the [lo, hi) value range of bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 1
	}
	lo = uint64(1) << (i - 1)
	if i == 64 {
		return lo, ^uint64(0)
	}
	return lo, uint64(1) << i
}

// bucketUpper returns the inclusive upper bound of bucket i, the le=""
// label value in Prometheus output.
func bucketUpper(i int) uint64 {
	_, hi := bucketBounds(i)
	if i == 64 {
		return hi
	}
	return hi - 1
}
