package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"clientlog/internal/trace"
)

// AdminOptions configures the admin endpoint.  Every field is
// optional: a nil Registry serves empty metrics, a nil Events ring an
// empty event stream, a nil Health always-healthy.
type AdminOptions struct {
	// Registry backs /metrics.
	Registry *Registry
	// Events backs /events: the protocol trace ring recorded by the
	// engines.
	Events *trace.Ring
	// Health is consulted by /healthz; a non-nil error turns the
	// response into a 503 carrying the error text.
	Health func() error
	// Handlers mounts extra endpoints on the mux (pattern → handler),
	// e.g. the span package's /trace/ and /waitsfor handlers.  Keeping
	// them injectable avoids an import cycle: this package cannot import
	// its own subpackages.
	Handlers map[string]http.Handler
}

// AdminHandler builds the admin mux:
//
//	/metrics       Prometheus text exposition of the registry
//	/events        filtered tail of the trace ring as JSON lines
//	               (?kind=, ?client=, ?page=, ?n=, ?since= filters)
//	/healthz       200 "ok" or 503 with the health error
//	/debug/pprof/  the standard runtime profiles
//
// plus whatever opt.Handlers mounts.
func AdminHandler(opt AdminOptions) http.Handler {
	mux := http.NewServeMux()
	for pattern, h := range opt.Handlers {
		mux.Handle(pattern, h)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if opt.Registry != nil {
			opt.Registry.WritePrometheus(w) //nolint:errcheck // client went away
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if opt.Events == nil {
			return
		}
		var events []trace.Event
		if s := r.URL.Query().Get("since"); s != "" {
			since, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since", http.StatusBadRequest)
				return
			}
			events = opt.Events.SnapshotSince(since)
		} else {
			events = opt.Events.Snapshot()
		}
		writeEvents(w, r, events)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if opt.Health != nil {
			if err := opt.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// eventJSON is the wire form of one trace event on /events.
type eventJSON struct {
	Seq    uint64 `json:"seq"`
	Kind   string `json:"kind"`
	Client string `json:"client"`
	Page   uint64 `json:"page"`
	Detail string `json:"detail,omitempty"`
}

// writeEvents streams the filtered ring tail as JSON lines.  Filters:
// kind=<kind-string> keeps matching kinds, client=<id> and page=<id>
// keep matching events, n=<count> keeps only the most recent count
// after filtering.  since=<seq> (applied by the caller) keeps events
// with Seq strictly above the cursor; sequence numbers are assigned
// under the ring's lock, so paginating by the last Seq seen never
// skips or duplicates events.
func writeEvents(w http.ResponseWriter, r *http.Request, events []trace.Event) {
	q := r.URL.Query()
	kind := q.Get("kind")
	client := q.Get("client")
	var pageFilter uint64
	if s := q.Get("page"); s != "" {
		pageFilter, _ = strconv.ParseUint(s, 10, 64)
	}
	var out []trace.Event
	for _, e := range events {
		if kind != "" && e.Kind.String() != kind {
			continue
		}
		if client != "" && e.Client.String() != client {
			continue
		}
		if pageFilter != 0 && uint64(e.Page) != pageFilter {
			continue
		}
		out = append(out, e)
	}
	if s := q.Get("n"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(out) {
			out = out[len(out)-n:]
		}
	}
	enc := json.NewEncoder(w)
	for _, e := range out {
		enc.Encode(eventJSON{ //nolint:errcheck // client went away
			Seq:    e.Seq,
			Kind:   e.Kind.String(),
			Client: e.Client.String(),
			Page:   uint64(e.Page),
			Detail: e.Detail,
		})
	}
}

// AdminServer is a running admin endpoint.
type AdminServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartAdmin listens on addr (e.g. ":7071" or ":0") and serves the
// admin mux until Close.
func StartAdmin(addr string, opt AdminOptions) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: AdminHandler(opt), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return &AdminServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (a *AdminServer) Addr() net.Addr { return a.ln.Addr() }

// Close stops the endpoint.
func (a *AdminServer) Close() error { return a.srv.Close() }
