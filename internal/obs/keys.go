package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file is the series-key algebra the fleet aggregation plane
// (internal/obs/fleetobs) runs on: a canonical key like
// name{k="v",...} can be parsed back into (family, tags), re-tagged
// with a partition label, and a whole Snapshot — local or scraped from
// a remote member — can be re-rendered in the Prometheus text format
// without access to the Registry that produced it.

// ParseKey splits a canonical series id back into its family name and
// sorted tag list, undoing renderKey's escaping.  A malformed key is
// returned as an untagged family so callers degrade gracefully.
func ParseKey(key string) (family string, tags []Tag) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, nil
	}
	family = key[:i]
	body := key[i+1:]
	body = strings.TrimSuffix(body, "}")
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			break
		}
		k := body[:eq]
		rest := body[eq+2:]
		var sb strings.Builder
		j := 0
		for j < len(rest) {
			c := rest[j]
			if c == '\\' && j+1 < len(rest) {
				switch rest[j+1] {
				case 'n':
					sb.WriteByte('\n')
				default:
					sb.WriteByte(rest[j+1])
				}
				j += 2
				continue
			}
			if c == '"' {
				break
			}
			sb.WriteByte(c)
			j++
		}
		tags = append(tags, Tag{K: k, V: sb.String()})
		rest = rest[j:]
		if strings.HasPrefix(rest, `",`) {
			body = rest[2:]
		} else {
			body = ""
		}
	}
	return family, tags
}

// TagValue returns the value of tag k in a canonical series id, or ""
// when the key carries no such tag.
func TagValue(key, k string) string {
	_, tags := ParseKey(key)
	for _, t := range tags {
		if t.K == k {
			return t.V
		}
	}
	return ""
}

// AddTags returns the canonical id for key with extra tags merged in;
// an extra tag whose name the key already carries replaces the old
// value (the aggregator owns the partition label even if a member
// already stamped one).
func AddTags(key string, extra ...Tag) string {
	if len(extra) == 0 {
		return key
	}
	family, tags := ParseKey(key)
	for _, e := range extra {
		replaced := false
		for i := range tags {
			if tags[i].K == e.K {
				tags[i].V = e.V
				replaced = true
				break
			}
		}
		if !replaced {
			tags = append(tags, e)
		}
	}
	return renderKey(sanitizeName(family), normTags(tags))
}

// WithTags returns a copy of the snapshot with extra tags merged into
// every series key.  The fleet plane uses it to stamp each member's
// scrape with its partition label before merging.
func (s Snapshot) WithTags(extra ...Tag) Snapshot {
	out := Snapshot{
		Counters: make(map[string]uint64, len(s.Counters)),
		Gauges:   make(map[string]int64, len(s.Gauges)),
		Hists:    make(map[string]HistView, len(s.Hists)),
	}
	for k, v := range s.Counters {
		out.Counters[AddTags(k, extra...)] = v
	}
	for k, v := range s.Gauges {
		out.Gauges[AddTags(k, extra...)] = v
	}
	for k, v := range s.Hists {
		out.Hists[AddTags(k, extra...)] = v
	}
	return out
}

// Merge returns the union of two snapshots: counters and histograms
// sum where keys collide, gauges sum as well (a fleet-level gauge is
// the fleet's total holding, not any one member's).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Counters: make(map[string]uint64, len(s.Counters)+len(o.Counters)),
		Gauges:   make(map[string]int64, len(s.Gauges)+len(o.Gauges)),
		Hists:    make(map[string]HistView, len(s.Hists)+len(o.Hists)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range o.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range o.Gauges {
		out.Gauges[k] += v
	}
	for k, v := range s.Hists {
		out.Hists[k] = v
	}
	for k, v := range o.Hists {
		out.Hists[k] = out.Hists[k].Merge(v)
	}
	return out
}

// TotalWhere sums the family's counter series whose tags include want.
func (s Snapshot) TotalWhere(family string, want Tag) uint64 {
	family = sanitizeName(family)
	var t uint64
	for k, v := range s.Counters {
		if familyOf(k) == family && TagValue(k, want.K) == want.V {
			t += v
		}
	}
	return t
}

// HistWhere merges the family's histogram series whose tags include
// want.
func (s Snapshot) HistWhere(family string, want Tag) HistView {
	family = sanitizeName(family)
	var out HistView
	for k, v := range s.Hists {
		if familyOf(k) == family && TagValue(k, want.K) == want.V {
			out = out.Merge(v)
		}
	}
	return out
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4), sorted by series id with one
// TYPE line per family, mirroring Registry.WritePrometheus for data
// that no longer has a live registry behind it.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	type row struct {
		key    string
		family string
		kind   seriesKind
	}
	rows := make([]row, 0, len(s.Counters)+len(s.Gauges)+len(s.Hists))
	for k := range s.Counters {
		rows = append(rows, row{key: k, family: familyOf(k), kind: kindCounter})
	}
	for k := range s.Gauges {
		rows = append(rows, row{key: k, family: familyOf(k), kind: kindGauge})
	}
	for k := range s.Hists {
		rows = append(rows, row{key: k, family: familyOf(k), kind: kindHist})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	lastFamily, lastKind := "", seriesKind(0)
	for _, rw := range rows {
		if rw.family != lastFamily || rw.kind != lastKind {
			lastFamily, lastKind = rw.family, rw.kind
			t := "counter"
			switch rw.kind {
			case kindGauge:
				t = "gauge"
			case kindHist:
				t = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", rw.family, t); err != nil {
				return err
			}
		}
		switch rw.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", rw.key, s.Counters[rw.key]); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", rw.key, s.Gauges[rw.key]); err != nil {
				return err
			}
		case kindHist:
			family, tags := ParseKey(rw.key)
			if err := writePromHistKey(w, family, tags, s.Hists[rw.key]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistKey renders one histogram series from its parsed
// (family, tags) identity, sharing the bucket layout with
// writePromHist.
func writePromHistKey(w io.Writer, name string, tags []Tag, v HistView) error {
	var cum uint64
	for i, n := range v.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		le := fmt.Sprintf("%d", bucketUpper(i))
		bt := append(append([]Tag{}, tags...), T("le", le))
		if _, err := fmt.Fprintf(w, "%s %d\n", renderKey(name+"_bucket", normTags(bt)), cum); err != nil {
			return err
		}
	}
	infTags := append(append([]Tag{}, tags...), T("le", "+Inf"))
	if _, err := fmt.Fprintf(w, "%s %d\n", renderKey(name+"_bucket", normTags(infTags)), v.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", renderKey(name+"_sum", tags), v.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", renderKey(name+"_count", tags), v.Count)
	return err
}
