package obs

import (
	"strings"
	"testing"
)

func TestRegistryCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", T("scope", "server"))
	b := r.Counter("reqs_total", T("scope", "server"))
	if a != b {
		t.Fatal("same (name, tags) should return the same counter")
	}
	if c := r.Counter("reqs_total", T("scope", "client:c1")); c == a {
		t.Fatal("different tags should return a different counter")
	}
}

func TestRegistryTagOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", T("a", "1"), T("b", "2"))
	b := r.Counter("x_total", T("b", "2"), T("a", "1"))
	if a != b {
		t.Fatal("tag order must not distinguish series")
	}
}

// TestBindCounterSumsAcrossRestarts is the restart-continuity contract:
// a fresh engine binding a zero counter to an existing series must not
// reset the series.
func TestBindCounterSumsAcrossRestarts(t *testing.T) {
	r := NewRegistry()
	var gen1 Counter
	r.BindCounter(&gen1, "commits_total")
	gen1.Add(10)

	var gen2 Counter // the restarted engine's fresh counter
	r.BindCounter(&gen2, "commits_total")
	gen2.Add(5)

	snap := r.Snapshot()
	if got := snap.Counters["commits_total"]; got != 15 {
		t.Fatalf("series = %d, want 15 (sum across generations)", got)
	}

	// Rebinding the same pointer must not double-count.
	r.BindCounter(&gen2, "commits_total")
	if got := r.Snapshot().Counters["commits_total"]; got != 15 {
		t.Fatalf("rebind double-counted: %d, want 15", got)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	h := r.Histogram("lat_nanos")
	g := r.Gauge("depth")

	c.Add(3)
	h.Observe(100)
	g.Set(7)
	before := r.Snapshot()

	c.Add(4)
	h.Observe(200)
	h.Observe(300)
	g.Set(9)
	delta := r.Snapshot().Delta(before)

	if got := delta.Counters["ops_total"]; got != 4 {
		t.Fatalf("counter delta = %d, want 4", got)
	}
	if hv := delta.Hists["lat_nanos"]; hv.Count != 2 || hv.Sum != 500 {
		t.Fatalf("hist delta = count %d sum %d, want 2/500", hv.Count, hv.Sum)
	}
	if got := delta.Gauges["depth"]; got != 9 {
		t.Fatalf("gauge delta keeps current value: %d, want 9", got)
	}
}

func TestSnapshotTotalAndHist(t *testing.T) {
	r := NewRegistry()
	r.Counter("msg_messages_total", T("msg", "lock")).Add(3)
	r.Counter("msg_messages_total", T("msg", "fetch")).Add(2)
	r.Counter("other_total").Add(99)
	snap := r.Snapshot()
	if got := snap.Total("msg_messages_total"); got != 5 {
		t.Fatalf("Total = %d, want 5", got)
	}
	r.Histogram("lat", T("scope", "client:c1")).Observe(8)
	r.Histogram("lat", T("scope", "client:c2")).Observe(16)
	if hv := r.Snapshot().Hist("lat"); hv.Count != 2 || hv.Sum != 24 {
		t.Fatalf("Hist = count %d sum %d, want 2/24", hv.Count, hv.Sum)
	}
}

// TestWritePrometheusGolden pins the exposition format.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", T("scope", "server")).Add(7)
	r.Counter("a_total").Add(3)
	r.Gauge("depth").Set(-2)
	h := r.Histogram("lat_nanos")
	h.Observe(0)
	h.Observe(3) // bucket 2, upper bound 3
	h.Observe(5) // bucket 3, upper bound 7

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE a_total counter
a_total 3
# TYPE b_total counter
b_total{scope="server"} 7
# TYPE depth gauge
depth -2
# TYPE lat_nanos histogram
lat_nanos_bucket{le="0"} 1
lat_nanos_bucket{le="3"} 2
lat_nanos_bucket{le="7"} 3
lat_nanos_bucket{le="+Inf"} 3
lat_nanos_sum 8
lat_nanos_count 3
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSanitizeName(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird.name-1", T("k.x", "v")).Add(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `weird_name_1{k_x="v"} 1`) {
		t.Fatalf("names not sanitized: %q", sb.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			r.Counter("hot_total", T("i", string(rune('a'+i%8)))).Inc()
			r.Snapshot()
		}
	}()
	for i := 0; i < 200; i++ {
		r.Counter("hot_total", T("i", string(rune('a'+i%8)))).Inc()
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if got := r.Snapshot().Total("hot_total"); got != 400 {
		t.Fatalf("Total = %d, want 400", got)
	}
}
