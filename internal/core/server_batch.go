package core

import (
	"sort"

	"clientlog/internal/msg"
	"clientlog/internal/page"
)

// LockBatch implements msg.Server: the batched variant of Lock.  The
// items are acquired in the server's canonical order — ascending page,
// page-level locks before object-level, then ascending slot — so that
// two clients issuing overlapping batches cannot deadlock on
// batch-internal ordering (the same rule every multi-shard operation in
// this codebase follows: take resources in one global order).  Each
// item goes through the exact single-item Lock path, so DCT insertion,
// callback-origin delivery, complex-crash gating and the
// callback-application barrier behave identically to a client issuing
// the RPCs one at a time.
//
// Items fail independently: the reply carries a per-item error string
// and the RPC only errors at the transport level.  That keeps the
// exchange idempotent under exactly-once retry — a retransmitted batch
// replays the cached reply, including its partial grants, instead of
// re-acquiring half the locks.
func (s *Server) LockBatch(req msg.LockBatchReq) (msg.LockBatchReply, error) {
	reply := msg.LockBatchReply{
		Grants: make([]msg.LockReply, len(req.Items)),
		Errs:   make([]string, len(req.Items)),
	}
	order := make([]int, len(req.Items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		na, nb := req.Items[order[a]].Name, req.Items[order[b]].Name
		if na.Page != nb.Page {
			return na.Page < nb.Page
		}
		if na.IsPage != nb.IsPage {
			return na.IsPage // page-level before object-level
		}
		return na.Slot < nb.Slot
	})
	for _, i := range order {
		it := req.Items[i]
		grant, err := s.Lock(msg.LockReq{
			Client:     req.Client,
			Name:       it.Name,
			Mode:       it.Mode,
			PreferPage: it.PreferPage,
			Upgrade:    it.Upgrade,
			HasCached:  it.HasCached,
			CachedPSN:  it.CachedPSN,
			Trace:      req.Trace,
		})
		if err != nil {
			reply.Errs[i] = err.Error()
			continue
		}
		reply.Grants[i] = grant
	}
	return reply, nil
}

// FetchBatch implements msg.Server: the batched variant of Fetch.
// Pages are read in request order, each under its own page-state shard;
// failures are per-page.
func (s *Server) FetchBatch(req msg.FetchBatchReq) (msg.FetchBatchReply, error) {
	reply := msg.FetchBatchReply{
		Images:  make([][]byte, len(req.Pages)),
		DCTPSNs: make([]page.PSN, len(req.Pages)),
		Errs:    make([]string, len(req.Pages)),
	}
	for i, pid := range req.Pages {
		sh := s.shardOf(pid)
		sh.mu.Lock()
		one, err := s.fetchShard(sh, req.Client, pid)
		sh.mu.Unlock()
		if err != nil {
			reply.Errs[i] = err.Error()
			continue
		}
		reply.Images[i] = one.Image
		reply.DCTPSNs[i] = one.DCTPSN
	}
	s.evict()
	return reply, nil
}
