package core

import (
	"bytes"
	"testing"

	"clientlog/internal/page"
)

func TestRepeatedClientCrashes(t *testing.T) {
	// Recovery must be idempotent: crash, recover, crash again before
	// any new work, recover again — the committed state is unchanged.
	cl, ids, cs := seededCluster(t, testConfig(), 2, 1)
	a := cs[0]
	obj := page.ObjectID{Page: ids[0], Slot: 0}
	txn, _ := a.Begin()
	if err := txn.Overwrite(obj, val('1')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		cl.CrashClient(cs[0].ID())
		if _, err := cl.RestartClient(cs[0].ID()); err != nil {
			t.Fatalf("restart %d: %v", i, err)
		}
	}
	rec := cl.Client(cs[0].ID())
	txn2, _ := rec.Begin()
	got, err := txn2.Read(obj)
	if err != nil || !bytes.Equal(got, val('1')) {
		t.Fatalf("after repeated crashes: %q err=%v", got, err)
	}
	txn2.Commit()
}

func TestRepeatedServerCrashes(t *testing.T) {
	cl, ids, cs := seededCluster(t, testConfig(), 2, 2)
	a := cs[0]
	obj := page.ObjectID{Page: ids[0], Slot: 1}
	txn, _ := a.Begin()
	if err := txn.Overwrite(obj, val('2')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.ReplacePage(ids[0]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		cl.CrashServer()
		if err := cl.RestartServer(); err != nil {
			t.Fatalf("server restart %d: %v", i, err)
		}
	}
	got, err := cl.ReadObject(obj)
	if err != nil || !bytes.Equal(got, val('2')) {
		t.Fatalf("after repeated server crashes: %q err=%v", got, err)
	}
}

func TestCrashAgainBetweenUpdates(t *testing.T) {
	// Interleave work and crashes: value progression must always follow
	// the committed order.
	cl, ids, cs := seededCluster(t, testConfig(), 1, 1)
	id := cs[0].ID()
	obj := page.ObjectID{Page: ids[0], Slot: 2}
	for round := byte(0); round < 5; round++ {
		c := cl.Client(id)
		txn, _ := c.Begin()
		if err := txn.Overwrite(obj, val('a'+round)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		if round%2 == 0 {
			cl.CrashClient(id)
			if _, err := cl.RestartClient(id); err != nil {
				t.Fatal(err)
			}
		} else {
			cl.CrashServer()
			if err := cl.RestartServer(); err != nil {
				t.Fatal(err)
			}
		}
	}
	c := cl.Client(id)
	txn, _ := c.Begin()
	got, err := txn.Read(obj)
	if err != nil || !bytes.Equal(got, val('a'+4)) {
		t.Fatalf("final: %q err=%v", got, err)
	}
	txn.Commit()
}

func TestComplexCrashThenClientCrash(t *testing.T) {
	// §3.5 then §3.3 back to back: a client that just finished complex
	// crash recovery crashes again on its own.
	cl, ids, cs := seededCluster(t, testConfig(), 1, 2)
	a, b := cs[0], cs[1]
	obj := page.ObjectID{Page: ids[0], Slot: 3}
	txn, _ := a.Begin()
	if err := txn.Overwrite(obj, val('X')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	cl.CrashServer(a.ID())
	if err := cl.RestartServer(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RestartClient(a.ID()); err != nil {
		t.Fatal(err)
	}
	cl.CrashClient(a.ID())
	if _, err := cl.RestartClient(a.ID()); err != nil {
		t.Fatal(err)
	}
	tb, _ := b.Begin()
	got, err := tb.Read(obj)
	if err != nil || !bytes.Equal(got, val('X')) {
		t.Fatalf("after complex+client crash: %q err=%v", got, err)
	}
	tb.Commit()
}
