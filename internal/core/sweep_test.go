package core

import (
	"fmt"
	"testing"
)

func TestCrashScenarioSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	for seed := int64(100); seed < 140; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("s%d", seed), func(t *testing.T) {
			crashScenario(t, seed, 120, true)
		})
	}
}
