package core

import (
	"bytes"
	"testing"

	"clientlog/internal/lock"
	"clientlog/internal/page"
)

func TestDeescalationRetainsCommittedObjectLocks(t *testing.T) {
	// A gets an adaptive page X lock, commits updates to two objects,
	// then B forces a de-escalation by touching a third object.  A must
	// retain object X locks for the objects it accessed (inter-
	// transaction caching), so its next update to them is message-free.
	cl, ids, cs := seededCluster(t, testConfig(), 1, 2)
	a, b := cs[0], cs[1]
	pid := ids[0]

	ta, _ := a.Begin()
	if err := ta.Overwrite(page.ObjectID{Page: pid, Slot: 0}, val('a')); err != nil {
		t.Fatal(err)
	}
	if err := ta.Overwrite(page.ObjectID{Page: pid, Slot: 1}, val('a')); err != nil {
		t.Fatal(err)
	}
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	if a.LLM().CachedMode(lock.PageName(pid)) != lock.X {
		t.Fatal("adaptive grant did not give A a page lock")
	}
	// B updates slot 5: page conflict, A de-escalates.
	tb, _ := b.Begin()
	if err := tb.Overwrite(page.ObjectID{Page: pid, Slot: 5}, val('b')); err != nil {
		t.Fatal(err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	if a.LLM().CachedMode(lock.PageName(pid)) != lock.None {
		t.Fatal("A's page lock survived the de-escalation")
	}
	for slot := uint16(0); slot < 2; slot++ {
		if got := a.LLM().CachedMode(lock.ObjName(page.ObjectID{Page: pid, Slot: slot})); got != lock.X {
			t.Fatalf("A lost object lock on slot %d after de-escalation: %v", slot, got)
		}
	}
	// A's next update to its retained objects costs zero messages.
	before := cl.Stats.Messages()
	ta2, _ := a.Begin()
	if err := ta2.Overwrite(page.ObjectID{Page: pid, Slot: 0}, val('A')); err != nil {
		t.Fatal(err)
	}
	if err := ta2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := cl.Stats.Messages(); got != before {
		t.Fatalf("retained-lock update sent %d messages", got-before)
	}
}

func TestCallbackRecordWrittenPerOrigin(t *testing.T) {
	// When B takes over two objects A holds X, B must write one callback
	// log record per called-back object (§3.1).
	_, ids, cs := seededCluster(t, testConfig(), 1, 2)
	a, b := cs[0], cs[1]
	pid := ids[0]
	ta, _ := a.Begin()
	for slot := uint16(0); slot < 2; slot++ {
		if err := ta.Overwrite(page.ObjectID{Page: pid, Slot: slot}, val('a')); err != nil {
			t.Fatal(err)
		}
	}
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	tb, _ := b.Begin()
	for slot := uint16(0); slot < 2; slot++ {
		if err := tb.Overwrite(page.ObjectID{Page: pid, Slot: slot}, val('b')); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := b.Metrics.CallbackRecords.Load(); got < 2 {
		t.Fatalf("callback records written = %d, want >= 2", got)
	}
}

func TestSharedReadersAcrossClients(t *testing.T) {
	// Three clients reading the same object must coexist on S locks with
	// no further synchronization after the first reads.
	cl, ids, cs := seededCluster(t, testConfig(), 1, 3)
	obj := page.ObjectID{Page: ids[0], Slot: 0}
	want, _ := cl.ReadObject(obj)
	for _, c := range cs {
		txn, _ := c.Begin()
		got, err := txn.Read(obj)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%v: %q err=%v", c.ID(), got, err)
		}
		txn.Commit()
	}
	// Second round: everything is cached, zero messages.
	before := cl.Stats.Messages()
	for _, c := range cs {
		txn, _ := c.Begin()
		if _, err := txn.Read(obj); err != nil {
			t.Fatal(err)
		}
		txn.Commit()
	}
	if got := cl.Stats.Messages(); got != before {
		t.Fatalf("warm shared reads sent %d messages", got-before)
	}
	if cl.Server().Metrics.CallbacksSent.Load() != 0 {
		t.Fatal("S/S sharing triggered callbacks")
	}
}

func TestDowngradeNotReleaseOnSharedCallback(t *testing.T) {
	// §2: "exclusive locks that are called back in shared mode are
	// demoted to shared" — after a reader takes over, the writer keeps
	// an S lock and can still read locally.
	cl, ids, cs := seededCluster(t, testConfig(), 1, 2)
	a, b := cs[0], cs[1]
	obj := page.ObjectID{Page: ids[0], Slot: 3}
	ta, _ := a.Begin()
	if err := ta.Overwrite(obj, val('w')); err != nil {
		t.Fatal(err)
	}
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	tb, _ := b.Begin()
	if _, err := tb.Read(obj); err != nil {
		t.Fatal(err)
	}
	tb.Commit()
	// A's lock must be S now (downgraded, not dropped): local reads are
	// free, and the GLM agrees.
	name := lock.ObjName(obj)
	mode := a.LLM().CachedMode(name)
	pageMode := a.LLM().CachedMode(lock.PageName(obj.Page))
	if mode != lock.S && pageMode != lock.S {
		t.Fatalf("A's lock after shared callback: obj=%v page=%v, want S", mode, pageMode)
	}
	before := cl.Stats.Messages()
	ta2, _ := a.Begin()
	if _, err := ta2.Read(obj); err != nil {
		t.Fatal(err)
	}
	ta2.Commit()
	if got := cl.Stats.Messages(); got != before {
		t.Fatal("A's post-downgrade read was not local")
	}
}
