package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"clientlog/internal/page"
)

// retryPressure runs fn as one transaction, retrying when §3.6 log
// pressure aborts it (ErrNoLogSpace is the engine saying "abort and
// retry": the undo reservation guarantees the rollback itself can
// log).  Any other error, or more than limit retries, fails the test.
func retryPressure(t *testing.T, limit int, fn func() error) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		err := fn()
		if err == nil {
			return
		}
		if !errors.Is(err, ErrNoLogSpace) {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if attempt >= limit {
			t.Fatalf("still no log space after %d retries: %v", attempt, err)
		}
	}
}

// TestBoundedLogTwoClientsWithCallbacks drives two clients over a tiny
// private log so that callback log records, checkpoints and the §3.6
// force-page protocol all contend for log space.
func TestBoundedLogTwoClientsWithCallbacks(t *testing.T) {
	cfg := testConfig()
	cfg.ClientLogCapacity = 8 * 1024
	cl := NewCluster(cfg)
	ids, err := cl.SeedPages(8, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	// Alternate ownership of the same objects so callbacks (and their
	// log records) flow constantly while the log wraps.
	for round := 0; round < 120; round++ {
		c := a
		if round%2 == 1 {
			c = b
		}
		retryPressure(t, 20, func() error {
			txn, err := c.Begin()
			if err != nil {
				return err
			}
			for op := 0; op < 4; op++ {
				obj := page.ObjectID{Page: ids[(round+op)%len(ids)], Slot: uint16(op)}
				if err := txn.Overwrite(obj, make([]byte, 32)); err != nil {
					if aerr := txn.Abort(); aerr != nil {
						t.Fatalf("abort must always have reserved log space: %v", aerr)
					}
					return err
				}
			}
			if err := txn.Commit(); err != nil {
				if aerr := txn.Abort(); aerr != nil {
					t.Fatalf("abort must always have reserved log space: %v", aerr)
				}
				return err
			}
			return nil
		})
		if round%30 == 29 {
			if err := c.Checkpoint(); err != nil {
				t.Fatalf("round %d checkpoint: %v", round, err)
			}
		}
	}
	if a.Metrics.ForceRequests.Load()+b.Metrics.ForceRequests.Load() == 0 {
		t.Fatal("bounded logs never triggered §3.6 forces")
	}
}

// pressureVal derives the deterministic 16-byte value a given commit
// round writes to a given slot; the reference model and the database
// must agree on it.
func pressureVal(round, slot int) []byte {
	v := make([]byte, 16)
	binary.LittleEndian.PutUint64(v, uint64(round)*1_000_003+uint64(slot))
	return v
}

// TestLogSpacePressureCommittedSurvivesCrash is the §3.6 durability
// property test: under sustained log-space pressure — a private log so
// small that freeLogSpace runs mid-transaction throughout — every
// committed update survives a client crash and §3.3 restart recovery,
// even though the log records that produced it may long since have been
// reclaimed and the page copies live who-knows-where between client
// cache, server pool and server disk.
func TestLogSpacePressureCommittedSurvivesCrash(t *testing.T) {
	cfg := testConfig()
	cfg.ClientLogCapacity = 4 * 1024
	cl := NewCluster(cfg)
	ids, err := cl.SeedPages(8, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}

	// model holds the value each object had after the last COMMITTED
	// transaction that wrote it; aborted rounds must leave no trace.
	model := make(map[page.ObjectID][]byte)

	verify := func(tag string) {
		t.Helper()
		txn, err := c.Begin()
		if err != nil {
			t.Fatalf("%s: begin verify: %v", tag, err)
		}
		for obj, want := range model {
			got, err := txn.Read(obj)
			if err != nil {
				t.Fatalf("%s: read %v: %v", tag, obj, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: %v = %x, committed %x", tag, obj, got, want)
			}
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("%s: verify commit: %v", tag, err)
		}
	}

	const rounds = 90
	for round := 0; round < rounds; round++ {
		objs := make([]page.ObjectID, 4)
		for op := range objs {
			objs[op] = page.ObjectID{
				Page: ids[(round*7+op*3)%len(ids)],
				Slot: uint16((round + op) % 8),
			}
		}
		retryPressure(t, 30, func() error {
			txn, err := c.Begin()
			if err != nil {
				return err
			}
			for op, obj := range objs {
				if err := txn.Overwrite(obj, pressureVal(round, op)); err != nil {
					if aerr := txn.Abort(); aerr != nil {
						t.Fatalf("abort must always have reserved log space: %v", aerr)
					}
					return err
				}
			}
			if err := txn.Commit(); err != nil {
				if aerr := txn.Abort(); aerr != nil {
					t.Fatalf("abort must always have reserved log space: %v", aerr)
				}
				return err
			}
			return nil
		})
		// The transaction committed: fold it into the reference model.
		for op, obj := range objs {
			model[obj] = pressureVal(round, op)
		}
		// Periodically crash mid-stream and recover; every committed
		// update must still be there.
		if round%30 == 17 {
			cl.CrashClient(c.ID())
			c, err = cl.RestartClient(c.ID())
			if err != nil {
				t.Fatalf("round %d: restart: %v", round, err)
			}
			verify("after crash-recovery")
		}
	}
	verify("final")

	if c.Metrics.LogReclaims.Load() == 0 {
		t.Fatal("4KiB log over 90 txns but freeLogSpace never ran")
	}
	if c.Metrics.LogFullEvents.Load() == 0 {
		t.Fatal("pressure run never filled the log")
	}
}

// TestLogSpacePinnedTxnSurfacesError pins the log with a transaction
// whose own records exceed the capacity: §3.6 has nothing to reclaim
// below the transaction's first LSN, so the engine must return
// ErrNoLogSpace — never lose an update silently — and the abort that
// follows must succeed on the very space the undo reservation held
// back, leaving the database exactly as before the transaction.
func TestLogSpacePinnedTxnSurfacesError(t *testing.T) {
	cfg := testConfig()
	cfg.ClientLogCapacity = 2 * 1024
	cl := NewCluster(cfg)
	ids, err := cl.SeedPages(4, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot the seeded values the oversized transaction will clobber.
	before := make(map[page.ObjectID][]byte)
	snap, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4*8; i++ {
		obj := page.ObjectID{Page: ids[i/8], Slot: uint16(i % 8)}
		v, err := snap.Read(obj)
		if err != nil {
			t.Fatal(err)
		}
		before[obj] = v
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}

	// One transaction tries to write far more than the log can hold.
	txn, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	for i := 0; i < 64; i++ {
		obj := page.ObjectID{Page: ids[i%4], Slot: uint16(i % 8)}
		if err := txn.Overwrite(obj, pressureVal(999, i)); err != nil {
			gotErr = err
			break
		}
	}
	if gotErr == nil {
		t.Fatal("64 updates fit a 2KiB log: the capacity check is not enforced")
	}
	if !errors.Is(gotErr, ErrNoLogSpace) {
		t.Fatalf("oversized txn failed with %v, want ErrNoLogSpace", gotErr)
	}
	if c.Metrics.LogReclaimFails.Load() == 0 {
		t.Fatal("ErrNoLogSpace surfaced but the reclaim-fail counter never moved")
	}
	// The abort must succeed: its CLRs and abort record spend the undo
	// reservation every forward append left free.
	if err := txn.Abort(); err != nil {
		t.Fatalf("abort of the pinned txn must always have log space: %v", err)
	}

	// No silent loss, no partial application: everything reads as before.
	check, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for obj, want := range before {
		got, err := check.Read(obj)
		if err != nil {
			t.Fatalf("read %v after abort: %v", obj, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%v = %x after aborted txn, want the pre-txn %x", obj, got, want)
		}
	}
	if err := check.Commit(); err != nil {
		t.Fatal(err)
	}

	// And the client is not wedged: a reasonable transaction commits.
	retryPressure(t, 10, func() error {
		small, err := c.Begin()
		if err != nil {
			return err
		}
		obj := page.ObjectID{Page: ids[0], Slot: 0}
		if err := small.Overwrite(obj, pressureVal(1000, 0)); err != nil {
			_ = small.Abort()
			return err
		}
		if err := small.Commit(); err != nil {
			_ = small.Abort()
			return err
		}
		return nil
	})
}
