package core

import (
	"testing"

	"clientlog/internal/page"
)

// TestBoundedLogTwoClientsWithCallbacks drives two clients over a tiny
// private log so that callback log records, checkpoints and the §3.6
// force-page protocol all contend for log space.
func TestBoundedLogTwoClientsWithCallbacks(t *testing.T) {
	cfg := testConfig()
	cfg.ClientLogCapacity = 8 * 1024
	cl := NewCluster(cfg)
	ids, err := cl.SeedPages(8, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	// Alternate ownership of the same objects so callbacks (and their
	// log records) flow constantly while the log wraps.
	for round := 0; round < 120; round++ {
		c := a
		if round%2 == 1 {
			c = b
		}
		txn, _ := c.Begin()
		for op := 0; op < 4; op++ {
			obj := page.ObjectID{Page: ids[(round+op)%len(ids)], Slot: uint16(op)}
			if err := txn.Overwrite(obj, make([]byte, 32)); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("round %d commit: %v", round, err)
		}
		if round%30 == 29 {
			if err := c.Checkpoint(); err != nil {
				t.Fatalf("round %d checkpoint: %v", round, err)
			}
		}
	}
	if a.Metrics.ForceRequests.Load()+b.Metrics.ForceRequests.Load() == 0 {
		t.Fatal("bounded logs never triggered §3.6 forces")
	}
}
