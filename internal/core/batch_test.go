package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"clientlog/internal/fault"
	"clientlog/internal/msg"
	"clientlog/internal/page"
)

// TestReadManyCoalesces verifies the batched read path returns the same
// values as per-object reads while collapsing the lock and fetch
// traffic into one RPC each.
func TestReadManyCoalesces(t *testing.T) {
	cl, ids, cs := seededCluster(t, testConfig(), 4, 1)
	c := cs[0]

	var objs []page.ObjectID
	for _, pid := range ids {
		objs = append(objs, page.ObjectID{Page: pid, Slot: 1}, page.ObjectID{Page: pid, Slot: 5})
	}
	want := make([][]byte, len(objs))
	for i, obj := range objs {
		v, err := cl.ReadObject(obj)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}

	before := cl.Stats.ByName()
	txn, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	got, err := txn.ReadMany(objs)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := range objs {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("obj %d: got %q want %q", i, got[i], want[i])
		}
	}

	after := cl.Stats.ByName()
	delta := func(name string) uint64 { return after[name] - before[name] }
	if delta("lock-batch") == 0 {
		t.Fatal("ReadMany issued no lock-batch RPC")
	}
	if delta("fetch-batch") == 0 {
		t.Fatal("ReadMany issued no fetch-batch RPC")
	}
	if n := delta("lock"); n != 0 {
		t.Fatalf("ReadMany fell back to %d single-lock RPCs", n)
	}
	if n := delta("fetch"); n != 0 {
		t.Fatalf("ReadMany fell back to %d single-fetch RPCs", n)
	}
}

// TestReadManyCoherence checks a batched read observes another client's
// committed update: the stale cached copy must be refreshed through the
// batch fetch path, not served as-is.
func TestReadManyCoherence(t *testing.T) {
	_, ids, cs := seededCluster(t, testConfig(), 2, 2)
	a, b := cs[0], cs[1]
	objs := []page.ObjectID{
		{Page: ids[0], Slot: 2},
		{Page: ids[1], Slot: 3},
	}

	// A caches the pages and their locks.
	ta, _ := a.Begin()
	if _, err := ta.ReadMany(objs); err != nil {
		t.Fatal(err)
	}
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}

	// B updates both objects (callbacks revoke A's cached locks).
	tb, _ := b.Begin()
	for _, obj := range objs {
		if err := tb.Overwrite(obj, val('Z')); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}

	// A's next batched read must see Z on both pages.
	ta2, _ := a.Begin()
	got, err := ta2.ReadMany(objs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ta2.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := range objs {
		if !bytes.Equal(got[i], val('Z')) {
			t.Fatalf("obj %d: stale read %q after remote commit", i, got[i])
		}
	}
}

// TestBatchRPCsDuplicateRetries drives the batched RPCs through the
// fault-injecting transport with heavy duplication and replay, so the
// server-side ReplyCache must dedupe concurrent duplicate retries of
// LockBatch/FetchBatch for the workload to stay serializable.  Run with
// -race to check the dedupe path itself.
func TestBatchRPCsDuplicateRetries(t *testing.T) {
	cfg := testConfig()
	cl := NewCluster(cfg)
	inj := fault.New(7, fault.Plan{DupProb: 0.3, ReplayProb: 0.2})
	cl.WrapConns(func(part, n int, conn msg.Server) msg.Server {
		return msg.NewFaultyServer(conn, inj, NewReplyCache(0),
			fmt.Sprintf("c%d->srv", n), msg.DefaultRetry())
	}, nil)

	ids, err := cl.SeedPages(4, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	const nClients = 3
	clients := make([]*Client, nClients)
	for i := range clients {
		if clients[i], err = cl.AddClient(); err != nil {
			t.Fatal(err)
		}
	}

	objs := make([]page.ObjectID, 0, len(ids))
	for _, pid := range ids {
		objs = append(objs, page.ObjectID{Page: pid, Slot: 0})
	}
	var wg sync.WaitGroup
	errc := make(chan error, nClients)
	for ci, c := range clients {
		wg.Add(1)
		go func(ci int, c *Client) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				txn, err := c.Begin()
				if err != nil {
					errc <- err
					return
				}
				if _, err := txn.ReadMany(objs); err != nil {
					txn.Abort()
					continue // deadlock/timeout under churn is legal
				}
				obj := objs[(ci+round)%len(objs)]
				if err := txn.Overwrite(obj, val(byte('a'+ci))); err != nil {
					txn.Abort()
					continue
				}
				if err := txn.Commit(); err != nil {
					errc <- err
					return
				}
			}
		}(ci, c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if err := cl.Server().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReadManyPartialError pins down batch error semantics: when one
// item in the batch cannot be granted, ReadMany fails with that item's
// typed lock error while the other grants stand.
func TestReadManyPartialError(t *testing.T) {
	cfg := testConfig()
	cfg.LockTimeout = 250 * time.Millisecond
	_, ids, cs := seededCluster(t, cfg, 2, 2)
	a, b := cs[0], cs[1]

	blocked := page.ObjectID{Page: ids[1], Slot: 4}
	free := page.ObjectID{Page: ids[0], Slot: 4}

	// A pins blocked under an uncommitted X lock.
	ta, _ := a.Begin()
	if err := ta.Overwrite(blocked, val('X')); err != nil {
		t.Fatal(err)
	}

	tb, _ := b.Begin()
	if _, err := tb.ReadMany([]page.ObjectID{free, blocked}); err == nil {
		t.Fatal("ReadMany succeeded against an exclusively held object")
	}
	tb.Abort()
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}

	// After A commits, the same batch goes through.
	tb2, _ := b.Begin()
	got, err := tb2.ReadMany([]page.ObjectID{free, blocked})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[1], val('X')) {
		t.Fatalf("post-commit batch read %q, want %q", got[1], val('X'))
	}
	if err := tb2.Commit(); err != nil {
		t.Fatal(err)
	}
}
