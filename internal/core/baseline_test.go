package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"clientlog/internal/page"
)

func TestPageLockingModeStillCorrect(t *testing.T) {
	// GranPage is the authors' earlier page-locking system [20]: two
	// clients updating different objects of the same page serialize on
	// the page lock, but the outcome must match.
	cfg := testConfig()
	cfg.Granularity = GranPage
	cl, ids, cs := seededCluster(t, cfg, 1, 2)
	a, b := cs[0], cs[1]
	oa := page.ObjectID{Page: ids[0], Slot: 0}
	ob := page.ObjectID{Page: ids[0], Slot: 1}

	var wg sync.WaitGroup
	run := func(c *Client, obj page.ObjectID, tag byte) {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			txn, _ := c.Begin()
			if err := txn.Overwrite(obj, val(tag)); err != nil {
				txn.Abort()
				t.Errorf("overwrite: %v", err)
				return
			}
			if err := txn.Commit(); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
		}
	}
	wg.Add(2)
	go run(a, oa, 'a')
	go run(b, ob, 'b')
	wg.Wait()

	fresh, _ := cl.AddClient()
	txn, _ := fresh.Begin()
	ga, _ := txn.Read(oa)
	gb, _ := txn.Read(ob)
	if !bytes.Equal(ga, val('a')) || !bytes.Equal(gb, val('b')) {
		t.Fatalf("page-lock mode lost updates: %q %q", ga, gb)
	}
	txn.Commit()
}

func TestPageLockModeNeverGrantsObjectLocks(t *testing.T) {
	cfg := testConfig()
	cfg.Granularity = GranPage
	_, ids, cs := seededCluster(t, cfg, 1, 1)
	c := cs[0]
	txn, _ := c.Begin()
	if err := txn.Overwrite(page.ObjectID{Page: ids[0], Slot: 0}, val('p')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, h := range c.LLM().CachedLocks() {
		if !h.Name.IsPage {
			t.Fatalf("object lock %v cached in page-lock mode", h.Name)
		}
	}
}

func TestTokenModeSerializesPageUpdates(t *testing.T) {
	cfg := testConfig()
	cfg.Update = UpdateToken
	cl, ids, cs := seededCluster(t, cfg, 1, 2)
	a, b := cs[0], cs[1]
	oa := page.ObjectID{Page: ids[0], Slot: 0}
	ob := page.ObjectID{Page: ids[0], Slot: 1}

	for i := 0; i < 4; i++ {
		ta, _ := a.Begin()
		if err := ta.Overwrite(oa, val(byte('a'+i))); err != nil {
			t.Fatal(err)
		}
		if err := ta.Commit(); err != nil {
			t.Fatal(err)
		}
		tb, _ := b.Begin()
		if err := tb.Overwrite(ob, val(byte('A'+i))); err != nil {
			t.Fatal(err)
		}
		if err := tb.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if cl.Server().Metrics.TokenTransfers.Load() == 0 {
		t.Fatal("token never migrated despite alternating updaters")
	}
	fresh, _ := cl.AddClient()
	txn, _ := fresh.Begin()
	ga, _ := txn.Read(oa)
	gb, _ := txn.Read(ob)
	if !bytes.Equal(ga, val('d')) || !bytes.Equal(gb, val('D')) {
		t.Fatalf("token mode final values: %q %q", ga, gb)
	}
	txn.Commit()
}

func TestShipLogAtCommitReachesServerLog(t *testing.T) {
	cfg := testConfig()
	cfg.Logging = LogShipCommit
	cl, ids, cs := seededCluster(t, cfg, 1, 1)
	c := cs[0]
	base := cl.Server().Log().RecordsAppended()
	txn, _ := c.Begin()
	if err := txn.Overwrite(page.ObjectID{Page: ids[0], Slot: 0}, val('L')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := cl.Server().Log().RecordsAppended(); got <= base {
		t.Fatalf("server log unchanged (%d) after ship-at-commit", got)
	}
	// The private log must NOT have been forced at commit (durability
	// comes from the server log in this baseline).
	if c.Log().Forces() != 0 {
		t.Fatalf("private log forced %d times in ship mode", c.Log().Forces())
	}
}

func TestShipPagesAtCommitServerSeesDataImmediately(t *testing.T) {
	cfg := testConfig()
	cfg.Logging = LogShipPages
	cl, ids, cs := seededCluster(t, cfg, 1, 1)
	c := cs[0]
	obj := page.ObjectID{Page: ids[0], Slot: 3}
	txn, _ := c.Begin()
	if err := txn.Overwrite(obj, val('V')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// No callback, no replacement: the commit itself shipped the page.
	got, err := cl.ReadObject(obj)
	if err != nil || !bytes.Equal(got, val('V')) {
		t.Fatalf("server copy after page-ship commit: %q err=%v", got, err)
	}
}

func TestShipModeRollbackStillLocal(t *testing.T) {
	cfg := testConfig()
	cfg.Logging = LogShipCommit
	cl, ids, cs := seededCluster(t, cfg, 1, 1)
	c := cs[0]
	obj := page.ObjectID{Page: ids[0], Slot: 1}
	orig, _ := cl.ReadObject(obj)

	txn, _ := c.Begin()
	if err := txn.Overwrite(obj, val('W')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}
	txn2, _ := c.Begin()
	got, err := txn2.Read(obj)
	if err != nil || !bytes.Equal(got, orig) {
		t.Fatalf("ship-mode abort: %q want %q err=%v", got, orig, err)
	}
	txn2.Commit()
}

func TestPaperModeCommitSendsNoMessages(t *testing.T) {
	// The headline advantage (1): commit is a purely local operation.
	cl, ids, cs := seededCluster(t, testConfig(), 1, 1)
	c := cs[0]
	txn, _ := c.Begin()
	if err := txn.Overwrite(page.ObjectID{Page: ids[0], Slot: 0}, val('N')); err != nil {
		t.Fatal(err)
	}
	before := cl.Stats.Messages()
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if after := cl.Stats.Messages(); after != before {
		t.Fatalf("commit sent %d messages; the paper's commit sends none", after-before)
	}
}

func TestLatencyInjection(t *testing.T) {
	cfg := testConfig()
	cfg.Latency = 2 * time.Millisecond
	_, ids, cs := seededCluster(t, cfg, 1, 1)
	c := cs[0]
	start := time.Now()
	txn, _ := c.Begin()
	if _, err := txn.Read(page.ObjectID{Page: ids[0], Slot: 0}); err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	// At least one lock RPC + one fetch RPC = 4 one-way messages = 8ms.
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
}
