package core

import (
	"testing"

	"clientlog/internal/page"
	"clientlog/internal/trace"
)

func TestTraceCallbackFlow(t *testing.T) {
	// The traced protocol sequence of a write-write takeover must show:
	// callback to the holder, the holder's page ship, the server merge,
	// in that order.
	cfg := testConfig()
	cl, ids, cs := seededCluster(t, cfg, 1, 2)
	ring := trace.NewRing(256)
	cl.SetTracer(ring)
	a, b := cs[0], cs[1]
	obj := page.ObjectID{Page: ids[0], Slot: 0}

	ta, _ := a.Begin()
	if err := ta.Overwrite(obj, val('a')); err != nil {
		t.Fatal(err)
	}
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	ring.Reset()
	tb, _ := b.Begin()
	if err := tb.Overwrite(obj, val('b')); err != nil {
		t.Fatal(err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}

	events := ring.Snapshot()
	var cbSeq, shipSeq, mergeSeq uint64
	for _, e := range events {
		if e.Page != ids[0] {
			continue
		}
		switch e.Kind {
		case trace.CallbackSent, trace.DeescSent:
			if cbSeq == 0 {
				cbSeq = e.Seq
			}
		case trace.PageShip:
			if shipSeq == 0 && e.Client == a.ID() {
				shipSeq = e.Seq
			}
		case trace.PageMerge:
			if mergeSeq == 0 && e.Client == a.ID() {
				mergeSeq = e.Seq
			}
		}
	}
	if cbSeq == 0 || shipSeq == 0 || mergeSeq == 0 {
		t.Fatalf("missing events: cb=%d ship=%d merge=%d (events: %v)", cbSeq, shipSeq, mergeSeq, events)
	}
	if !(cbSeq < shipSeq && shipSeq < mergeSeq) {
		t.Fatalf("protocol order wrong: cb=%d ship=%d merge=%d", cbSeq, shipSeq, mergeSeq)
	}
}

func TestTraceReplacementBeforeForce(t *testing.T) {
	// WAL at the server: the replacement record must be traced before
	// the in-place page write it covers.
	cfg := testConfig()
	cl, ids, cs := seededCluster(t, cfg, 1, 1)
	ring := trace.NewRing(256)
	cl.SetTracer(ring)
	a := cs[0]
	txn, _ := a.Begin()
	if err := txn.Overwrite(page.ObjectID{Page: ids[0], Slot: 0}, val('x')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.ReplacePage(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Server().FlushAll(); err != nil {
		t.Fatal(err)
	}
	var repSeq, forceSeq uint64
	for _, e := range ring.Snapshot() {
		if e.Page != ids[0] {
			continue
		}
		if e.Kind == trace.Replacement && repSeq == 0 {
			repSeq = e.Seq
		}
		if e.Kind == trace.PageForce && forceSeq == 0 {
			forceSeq = e.Seq
		}
	}
	if repSeq == 0 || forceSeq == 0 {
		t.Fatalf("missing events: rep=%d force=%d", repSeq, forceSeq)
	}
	if repSeq >= forceSeq {
		t.Fatalf("replacement record (%d) did not precede the page write (%d)", repSeq, forceSeq)
	}
}

func TestTraceSurvivesServerRestart(t *testing.T) {
	cfg := testConfig()
	cl, ids, cs := seededCluster(t, cfg, 1, 1)
	ring := trace.NewRing(256)
	cl.SetTracer(ring)
	a := cs[0]
	txn, _ := a.Begin()
	if err := txn.Overwrite(page.ObjectID{Page: ids[0], Slot: 0}, val('r')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	cl.CrashServer()
	if err := cl.RestartServer(); err != nil {
		t.Fatal(err)
	}
	if ring.Count(trace.RecoveryStep, 0) < 2 {
		t.Fatalf("recovery steps not traced through restart: %v", ring.Snapshot())
	}
}
