package core

import (
	"bytes"
	"testing"

	"clientlog/internal/page"
)

func TestServerCheckpointReclaimsLog(t *testing.T) {
	cl, ids, cs := seededCluster(t, testConfig(), 4, 1)
	a := cs[0]
	// Generate replacement records: update, replace, force — repeatedly.
	for round := 0; round < 6; round++ {
		for _, pid := range ids {
			txn, _ := a.Begin()
			if err := txn.Overwrite(page.ObjectID{Page: pid, Slot: uint16(round % 8)}, val(byte(round))); err != nil {
				t.Fatal(err)
			}
			if err := txn.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := a.ReplacePage(pid); err != nil {
				t.Fatal(err)
			}
		}
		if err := cl.Server().FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	before := cl.Server().Log().Horizon()
	if err := cl.Server().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := cl.Server().Log().Horizon()
	if after <= before {
		t.Fatalf("server checkpoint did not reclaim log space: %v -> %v", before, after)
	}
	// The truncated log must still support a full server restart.
	cl.CrashServer()
	if err := cl.RestartServer(); err != nil {
		t.Fatalf("restart after reclaim: %v", err)
	}
	got, err := cl.ReadObject(page.ObjectID{Page: ids[0], Slot: 5})
	if err != nil || !bytes.Equal(got, val(5)) {
		t.Fatalf("data after reclaimed-log restart: %q err=%v", got, err)
	}
}

func TestServerCrashAfterCheckpointUsesCheckpointDCT(t *testing.T) {
	// The §3.4 step-3a scan must start from the checkpointed DCT's
	// minimum RedoLSN, not the beginning of (a possibly reclaimed) log.
	cl, ids, cs := seededCluster(t, testConfig(), 1, 1)
	a := cs[0]
	obj := page.ObjectID{Page: ids[0], Slot: 0}

	t1, _ := a.Begin()
	if err := t1.Overwrite(obj, val('1')); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.ReplacePage(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Server().FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Server().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint work that must be recovered.
	t2, _ := a.Begin()
	if err := t2.Overwrite(obj, val('2')); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.ReplacePage(ids[0]); err != nil {
		t.Fatal(err)
	}
	cl.CrashServer()
	if err := cl.RestartServer(); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadObject(obj)
	if err != nil || !bytes.Equal(got, val('2')) {
		t.Fatalf("post-checkpoint update lost: %q err=%v", got, err)
	}
}

func TestBoundedServerLog(t *testing.T) {
	// With periodic checkpoints, the server's log span stays bounded
	// even under sustained replacement traffic.
	cfg := testConfig()
	cl := NewCluster(cfg)
	ids, err := cl.SeedPages(4, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	pid := ids[0]
	var maxSpan uint64
	for round := 0; round < 30; round++ {
		txn, _ := a.Begin()
		if err := txn.Overwrite(page.ObjectID{Page: pid, Slot: 0}, val(byte(round))); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := a.ReplacePage(pid); err != nil {
			t.Fatal(err)
		}
		if err := cl.Server().FlushAll(); err != nil {
			t.Fatal(err)
		}
		if err := cl.Server().Checkpoint(); err != nil {
			t.Fatal(err)
		}
		span := uint64(cl.Server().Log().End() - cl.Server().Log().Horizon())
		if span > maxSpan {
			maxSpan = span
		}
	}
	// A bounded span: generously, a handful of records, not 30 rounds'
	// worth.
	if maxSpan > 4096 {
		t.Fatalf("server log span grew unbounded: %d bytes", maxSpan)
	}
}
