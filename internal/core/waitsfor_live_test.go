package core

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"clientlog/internal/obs/span"
	"clientlog/internal/page"
	"clientlog/internal/storage"
	"clientlog/internal/wal"
)

// gatedLogStore blocks the first Flush until released, simulating a
// server log device stalled mid-fsync.
type gatedLogStore struct {
	wal.Store
	release chan struct{}
	blocked chan struct{}
	once    sync.Once
}

func (g *gatedLogStore) Flush(upTo wal.LSN) error {
	g.once.Do(func() { close(g.blocked) })
	<-g.release
	return g.Store.Flush(upTo)
}

// TestWaitsForRespondsDuringBlockedCommit pins the point of the
// per-subsystem locking: a commit stalled inside the server (here on a
// slow log force) must not take the introspection or lock paths down
// with it.  Under the old single server mutex, /waitsfor, /healthz and
// every other client froze with the stalled commit.
func TestWaitsForRespondsDuringBlockedCommit(t *testing.T) {
	cfg := testConfig()
	cfg.Logging = LogShipCommit // commits ship records and force the server log
	gated := &gatedLogStore{
		Store:   wal.NewMemStore(0),
		release: make(chan struct{}),
		blocked: make(chan struct{}),
	}
	cl := NewClusterWithStores(cfg, storage.NewMemStore(cfg.PageSize), gated)
	ids, err := cl.SeedPages(4, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}

	// Start a commit and let it wedge inside the server's log force.
	commitDone := make(chan error, 1)
	go func() {
		txn, err := c1.Begin()
		if err != nil {
			commitDone <- err
			return
		}
		if err := txn.Overwrite(page.ObjectID{Page: ids[0], Slot: 0}, val('W')); err != nil {
			commitDone <- err
			return
		}
		commitDone <- txn.Commit()
	}()
	select {
	case <-gated.blocked:
	case err := <-commitDone:
		t.Fatalf("commit finished before reaching the log force: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("commit never reached the server log force")
	}

	// While the commit is wedged: the waits-for introspection endpoint
	// must answer...
	srv := cl.Server()
	probe := make(chan int, 1)
	go func() {
		h := span.WaitsForHandler(srv.GLM().WaitsFor)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/waitsfor", nil))
		probe <- rec.Code
	}()
	select {
	case code := <-probe:
		if code != 200 {
			t.Fatalf("/waitsfor returned %d during blocked commit", code)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("/waitsfor hung while a commit was blocked in the server")
	}

	// ...and so must the data path of an unrelated client on an
	// unrelated page (lock acquisition + fetch).
	readDone := make(chan error, 1)
	go func() {
		txn, err := c2.Begin()
		if err != nil {
			readDone <- err
			return
		}
		_, err = txn.Read(page.ObjectID{Page: ids[3], Slot: 1})
		txn.Abort()
		readDone <- err
	}()
	select {
	case err := <-readDone:
		if err != nil {
			t.Fatalf("unrelated read failed during blocked commit: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("unrelated client blocked behind the stalled commit")
	}

	close(gated.release)
	if err := <-commitDone; err != nil {
		t.Fatalf("commit after release: %v", err)
	}
}
