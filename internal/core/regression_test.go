package core

import (
	"bytes"
	"testing"

	"clientlog/internal/page"
)

// TestStaleFlushAckDoesNotDropDPTEntry is the deterministic regression
// for the torture-sweep finding (DESIGN.md note 8): an acknowledgment
// for an older force must not drop a DPT entry covering a newer ship.
func TestStaleFlushAckDoesNotDropDPTEntry(t *testing.T) {
	_, ids, cs := seededCluster(t, testConfig(), 1, 1)
	a := cs[0]
	pid := ids[0]
	obj := page.ObjectID{Page: pid, Slot: 0}

	// Ship v1 to the server.
	t1, _ := a.Begin()
	if err := t1.Overwrite(obj, val('1')); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.ReplacePage(pid); err != nil {
		t.Fatal(err)
	}
	// Update again (v2) and ship again: the latest shipped copy has a
	// higher PSN.
	t2, _ := a.Begin()
	if err := t2.Overwrite(obj, val('2')); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.ReplacePage(pid); err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	e := a.dpt[pid]
	lastShip := e.lastShipPSN
	a.mu.Unlock()
	// Deliver a STALE acknowledgment (for a force below the last ship):
	// the entry must survive.
	a.NotifyFlushed(pid, lastShip-1)
	a.mu.Lock()
	_, stillThere := a.dpt[pid]
	a.mu.Unlock()
	if !stillThere {
		t.Fatal("stale flush ack dropped the DPT entry")
	}
	// A covering acknowledgment may drop it (nothing re-dirtied since).
	a.NotifyFlushed(pid, lastShip)
	a.mu.Lock()
	_, stillThere = a.dpt[pid]
	a.mu.Unlock()
	if stillThere {
		t.Fatal("covering flush ack did not drop the DPT entry")
	}
}

// TestServerRestartRebuildsDCTForCachedXLocks is the deterministic
// regression for DESIGN.md note 10: a client whose page was fully
// flushed before a server crash still holds a (rebuilt) X lock; its
// post-restart updates under that cached lock must be recoverable after
// a subsequent client crash.
func TestServerRestartRebuildsDCTForCachedXLocks(t *testing.T) {
	cl, ids, cs := seededCluster(t, testConfig(), 1, 2)
	a, b := cs[0], cs[1]
	obj := page.ObjectID{Page: ids[0], Slot: 0}

	// A writes, ships, and the server forces: A's DPT entry is dropped
	// (everything durable) but A retains its cached X lock.
	t1, _ := a.Begin()
	if err := t1.Overwrite(obj, val('1')); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.ReplacePage(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Server().FlushAll(); err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	_, hasEntry := a.dpt[ids[0]]
	a.mu.Unlock()
	if hasEntry {
		t.Fatal("setup: DPT entry not dropped after flush")
	}
	// Server crashes and restarts; A's locks are rebuilt from its LLM.
	cl.CrashServer()
	if err := cl.RestartServer(); err != nil {
		t.Fatal(err)
	}
	// A updates under the rebuilt cached lock (no Lock RPC, so no
	// first-X DCT insertion happens) and commits; then A crashes.
	t2, _ := a.Begin()
	if err := t2.Overwrite(obj, val('2')); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	cl.CrashClient(a.ID())
	if _, err := cl.RestartClient(a.ID()); err != nil {
		t.Fatal(err)
	}
	// The committed post-restart update must have been recovered.
	tb, _ := b.Begin()
	got, err := tb.Read(obj)
	if err != nil || !bytes.Equal(got, val('2')) {
		t.Fatalf("post-restart update lost: %q err=%v", got, err)
	}
	tb.Commit()
}
