package core

import (
	"fmt"
	"sync"

	"clientlog/internal/ident"
	"clientlog/internal/msg"
	"clientlog/internal/wal"
)

// RemoteLogStore is a wal.Store whose records live at the server: the
// paper's Section 2 option for clients without local disk space, which
// "ship their log records to the server".  The log is still private to
// the client — the server hosts one store per diskless client and never
// merges them.
//
// Appends are write-behind: records buffer locally with locally-minted
// LSNs (the hosted log has a single appender, so offsets are
// deterministic) and travel to the server in one batch when the WAL
// protocol forces the log.  Commit therefore costs one round trip —
// the honest price of having no local log disk — instead of one per
// record.
type RemoteLogStore struct {
	srv msg.Server
	id  ident.ClientID

	mu      sync.Mutex
	pending []pendingRec
	end     wal.LSN
	durable wal.LSN // conservative local view of the flushed horizon
	lastRec wal.LSN // last reclaim horizon sent (dedupes no-op RPCs)
	primed  bool    // end initialized from the server
}

type pendingRec struct {
	lsn     wal.LSN
	payload []byte
}

// NewRemoteLogStore builds the client-side proxy.  The id must be the
// client's registered id.
func NewRemoteLogStore(srv msg.Server, id ident.ClientID) *RemoteLogStore {
	return &RemoteLogStore{srv: srv, id: id}
}

func (r *RemoteLogStore) op(req msg.LogReq) (msg.LogReply, error) {
	req.Client = r.id
	return r.srv.LogOp(req)
}

// primeLocked fetches the server's current end once.  Called with r.mu
// held.
func (r *RemoteLogStore) primeLocked() error {
	if r.primed {
		return nil
	}
	reply, err := r.op(msg.LogReq{Op: msg.LogEnd})
	if err != nil {
		return err
	}
	r.end = reply.LSN
	r.durable = reply.LSN // everything hosted so far was flushed by Flush
	r.primed = true
	return nil
}

// Append implements wal.Store: the record buffers locally until the
// next Flush.
func (r *RemoteLogStore) Append(payload []byte) (wal.LSN, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.primeLocked(); err != nil {
		return wal.NilLSN, err
	}
	lsn := r.end
	cp := make([]byte, len(payload))
	copy(cp, payload)
	r.pending = append(r.pending, pendingRec{lsn: lsn, payload: cp})
	r.end += wal.LSN(len(payload) + 8) // mirror the store's framing
	return lsn, nil
}

// Flush implements wal.Store: the buffered batch and the force travel
// in a single request/reply exchange — a diskless commit costs exactly
// one round trip.
func (r *RemoteLogStore) Flush(upTo wal.LSN) error {
	r.mu.Lock()
	batch := r.pending
	r.pending = nil
	end := r.end
	r.mu.Unlock()
	payloads := make([][]byte, len(batch))
	for i, p := range batch {
		payloads[i] = p.payload
	}
	reply, err := r.op(msg.LogReq{Op: msg.LogAppendBatch, Batch: payloads, LSN: end})
	if err != nil {
		return err
	}
	if len(batch) > 0 && reply.LSN != batch[0].lsn {
		return fmt.Errorf("core: remote log diverged: server assigned %v, client predicted %v",
			reply.LSN, batch[0].lsn)
	}
	r.mu.Lock()
	if end > r.durable {
		r.durable = end
	}
	r.mu.Unlock()
	return nil
}

// Durable implements wal.Store: the local (conservative) view; no
// round trip.
func (r *RemoteLogStore) Durable() wal.LSN {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.durable
}

// End implements wal.Store.
func (r *RemoteLogStore) End() wal.LSN {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.primeLocked(); err != nil {
		return wal.NilLSN
	}
	return r.end
}

// ReadAt implements wal.Store: the write-behind buffer is consulted
// before the server (rollback reads records the transaction just
// wrote).
func (r *RemoteLogStore) ReadAt(lsn wal.LSN) ([]byte, wal.LSN, error) {
	r.mu.Lock()
	for _, p := range r.pending {
		if p.lsn == lsn {
			out := make([]byte, len(p.payload))
			copy(out, p.payload)
			next := lsn + wal.LSN(len(p.payload)+8)
			r.mu.Unlock()
			return out, next, nil
		}
	}
	r.mu.Unlock()
	reply, err := r.op(msg.LogReq{Op: msg.LogRead, LSN: lsn})
	if err != nil {
		return nil, wal.NilLSN, err
	}
	return reply.Payload, reply.Next, nil
}

// Reclaim implements wal.Store; unchanged horizons are dropped locally
// so the per-commit bookkeeping costs no round trip.
func (r *RemoteLogStore) Reclaim(upTo wal.LSN) error {
	r.mu.Lock()
	if upTo <= r.lastRec {
		r.mu.Unlock()
		return nil
	}
	r.lastRec = upTo
	r.mu.Unlock()
	_, err := r.op(msg.LogReq{Op: msg.LogReclaim, LSN: upTo})
	return err
}

// Horizon implements wal.Store.
func (r *RemoteLogStore) Horizon() wal.LSN {
	reply, _ := r.op(msg.LogReq{Op: msg.LogHorizon})
	return reply.LSN
}

// DropVolatile discards the write-behind buffer and the cached end
// position (a client crash loses exactly that state; the hosted durable
// prefix is untouched).
func (r *RemoteLogStore) DropVolatile() {
	r.mu.Lock()
	r.pending = nil
	r.primed = false
	r.end = wal.NilLSN
	r.mu.Unlock()
}

// Close implements wal.Store.
func (r *RemoteLogStore) Close() error { return nil }

// remoteLogHost is the server-side home of the diskless clients' logs.
// It survives server restarts the same way stable storage does: the
// cluster owns it and hands it to each server incarnation.  A server
// crash loses the unflushed tails (the appends lived in server memory),
// exactly like a local log disk losing its write cache.
type remoteLogHost struct {
	mu       sync.Mutex
	logs     map[ident.ClientID]*wal.MemStore
	capacity uint64
}

// NewRemoteLogHost builds an empty host; capacity bounds each hosted
// log (0 = unbounded).
func NewRemoteLogHost(capacity uint64) *RemoteLogHost {
	return &RemoteLogHost{inner: &remoteLogHost{logs: make(map[ident.ClientID]*wal.MemStore), capacity: capacity}}
}

// RemoteLogHost is the shareable handle (cluster-owned, server-used).
type RemoteLogHost struct {
	inner *remoteLogHost
}

func (h *RemoteLogHost) store(c ident.ClientID) *wal.MemStore {
	h.inner.mu.Lock()
	defer h.inner.mu.Unlock()
	st, ok := h.inner.logs[c]
	if !ok {
		st = wal.NewMemStore(h.inner.capacity)
		h.inner.logs[c] = st
	}
	return st
}

// Crash drops the unflushed tail of every hosted log (server crash).
func (h *RemoteLogHost) Crash() {
	h.inner.mu.Lock()
	defer h.inner.mu.Unlock()
	for _, st := range h.inner.logs {
		st.Crash()
	}
}

// LogOp implements msg.Server for the remote-log protocol.
func (s *Server) LogOp(req msg.LogReq) (msg.LogReply, error) {
	if s.remoteLogs == nil {
		return msg.LogReply{}, fmt.Errorf("core: server hosts no remote logs")
	}
	st := s.remoteLogs.store(req.Client)
	switch req.Op {
	case msg.LogAppend:
		lsn, err := st.Append(req.Payload)
		return msg.LogReply{LSN: lsn}, err
	case msg.LogAppendBatch:
		var first wal.LSN
		for i, payload := range req.Batch {
			lsn, err := st.Append(payload)
			if err != nil {
				return msg.LogReply{}, err
			}
			if i == 0 {
				first = lsn
			}
		}
		// A non-zero LSN piggybacks the force on the same exchange.
		if req.LSN != wal.NilLSN {
			if err := st.Flush(req.LSN); err != nil {
				return msg.LogReply{LSN: first}, err
			}
		}
		return msg.LogReply{LSN: first}, nil
	case msg.LogFlush:
		return msg.LogReply{}, st.Flush(req.LSN)
	case msg.LogRead:
		payload, next, err := st.ReadAt(req.LSN)
		return msg.LogReply{Payload: payload, Next: next}, err
	case msg.LogEnd:
		return msg.LogReply{LSN: st.End()}, nil
	case msg.LogDurable:
		return msg.LogReply{LSN: st.Durable()}, nil
	case msg.LogReclaim:
		return msg.LogReply{}, st.Reclaim(req.LSN)
	case msg.LogHorizon:
		return msg.LogReply{LSN: st.Horizon()}, nil
	default:
		return msg.LogReply{}, fmt.Errorf("core: unknown log op %d", req.Op)
	}
}

// HostRemoteLogs attaches the remote-log host (set once at
// construction by the cluster or the cmd server).
func (s *Server) HostRemoteLogs(h *RemoteLogHost) { s.remoteLogs = h }
