package core

import (
	"testing"

	"clientlog/internal/page"
)

func TestServerDirtyLimitForcesPages(t *testing.T) {
	cfg := testConfig()
	cfg.ServerDirtyLimit = 2
	cl, ids, cs := seededCluster(t, cfg, 8, 1)
	a := cs[0]
	for _, pid := range ids {
		txn, _ := a.Begin()
		if err := txn.Overwrite(page.ObjectID{Page: pid, Slot: 0}, val('d')); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := a.ReplacePage(pid); err != nil {
			t.Fatal(err)
		}
	}
	if cl.Server().Metrics.PageForces.Load() == 0 {
		t.Fatal("dirty limit never forced a page")
	}
	if cl.Server().Metrics.Replacements.Load() == 0 {
		t.Fatal("forces happened without replacement records")
	}
	// The flush notifications must have advanced the client's DPT: at
	// most the last few pages remain.
	if got := len(a.DPTSnapshot()); got > 4 {
		t.Fatalf("DPT still has %d entries despite background flushing", got)
	}
}

func TestServerDirtyLimitKeepsRecoveryCorrect(t *testing.T) {
	cfg := testConfig()
	cfg.ServerDirtyLimit = 1
	cl, ids, cs := seededCluster(t, cfg, 4, 1)
	a := cs[0]
	for round := 0; round < 12; round++ {
		pid := ids[round%len(ids)]
		txn, _ := a.Begin()
		if err := txn.Overwrite(page.ObjectID{Page: pid, Slot: uint16(round % 8)}, val(byte(round))); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		if round%3 == 0 {
			if err := a.ReplacePage(pid); err != nil {
				t.Fatal(err)
			}
		}
	}
	cl.CrashServer()
	if err := cl.RestartServer(); err != nil {
		t.Fatal(err)
	}
	cl.CrashClient(a.ID())
	a2, err := cl.RestartClient(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := a2.Begin()
	got, err := txn.Read(page.ObjectID{Page: ids[11%len(ids)], Slot: uint16(11 % 8)})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 11 {
		t.Fatalf("last committed value lost under dirty-limit flushing: %x", got[:2])
	}
	txn.Commit()
}
