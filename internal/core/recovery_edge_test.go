package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"clientlog/internal/msg"
	"clientlog/internal/page"
	"clientlog/internal/wal"
)

func TestClientCrashRecoveryStructuralOps(t *testing.T) {
	// Inserts, deletes and resizes (non-mergeable, page X locked) must
	// redo correctly from the private log.
	cl, ids, cs := seededCluster(t, testConfig(), 1, 1)
	a := cs[0]
	txn, _ := a.Begin()
	obj, err := txn.Insert(ids[0], []byte("created before crash"))
	if err != nil {
		t.Fatal(err)
	}
	victim := page.ObjectID{Page: ids[0], Slot: 2}
	if err := txn.Delete(victim); err != nil {
		t.Fatal(err)
	}
	grown := page.ObjectID{Page: ids[0], Slot: 3}
	if err := txn.Resize(grown, []byte("this object grew quite a bit")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	cl.CrashClient(a.ID())
	rec, err := cl.RestartClient(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	txn2, _ := rec.Begin()
	got, err := txn2.Read(obj)
	if err != nil || string(got) != "created before crash" {
		t.Fatalf("insert lost: %q err=%v", got, err)
	}
	if _, err := txn2.Read(victim); err == nil {
		t.Fatal("deleted object resurrected")
	}
	got, err = txn2.Read(grown)
	if err != nil || string(got) != "this object grew quite a bit" {
		t.Fatalf("resize lost: %q err=%v", got, err)
	}
	txn2.Commit()
}

func TestClientCrashRecoveryLogicalRecords(t *testing.T) {
	// Logical (delta) records redo by re-applying the delta; the CLRs of
	// a pre-crash abort redo by applying the inverse delta.
	cl, ids, cs := seededCluster(t, testConfig(), 1, 1)
	a := cs[0]
	ctr := page.ObjectID{Page: ids[0], Slot: 0}
	setup, _ := a.Begin()
	if err := setup.Resize(ctr, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := setup.Add(ctr, 100); err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	// An aborted delta (logical CLR on the log).
	ab, _ := a.Begin()
	if err := ab.Add(ctr, 55); err != nil {
		t.Fatal(err)
	}
	if err := ab.Abort(); err != nil {
		t.Fatal(err)
	}
	// A committed delta after it.
	c2, _ := a.Begin()
	if err := c2.Add(ctr, 7); err != nil {
		t.Fatal(err)
	}
	if err := c2.Commit(); err != nil {
		t.Fatal(err)
	}
	cl.CrashClient(a.ID())
	rec, err := cl.RestartClient(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := rec.Begin()
	v, err := txn.ReadCounter(ctr)
	if err != nil || v != 107 {
		t.Fatalf("counter after logical recovery = %d err=%v, want 107", v, err)
	}
	txn.Commit()
}

func TestOtherClientsRunDuringRecovery(t *testing.T) {
	// §3.3: "Transaction processing on the remaining clients can
	// continue in parallel with the recovery of the crashed client."
	cl, ids, cs := seededCluster(t, testConfig(), 4, 2)
	a, b := cs[0], cs[1]
	// a dirties its own pages, then crashes.
	txn, _ := a.Begin()
	for _, pid := range ids[:2] {
		if err := txn.Overwrite(page.ObjectID{Page: pid, Slot: 0}, val('a')); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	cl.CrashClient(a.ID())

	// b hammers disjoint pages while a recovers.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tb, _ := b.Begin()
			if err := tb.Overwrite(page.ObjectID{Page: ids[3], Slot: 1}, val('b')); err != nil {
				errCh <- err
				return
			}
			if err := tb.Commit(); err != nil {
				errCh <- err
				return
			}
		}
	}()
	if _, err := cl.RestartClient(a.ID()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("b failed during a's recovery: %v", err)
	default:
	}
}

func TestFreeAndReallocatePage(t *testing.T) {
	cl, _, cs := seededCluster(t, testConfig(), 1, 1)
	c := cs[0]
	txn, _ := c.Begin()
	pid, err := txn.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Insert(pid, []byte("ephemeral")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	finalPSN := func() page.PSN {
		c.mu.Lock()
		defer c.mu.Unlock()
		p, _ := c.pool.Get(pid)
		return p.PSN()
	}()
	if err := c.FreePage(pid); err != nil {
		t.Fatal(err)
	}
	// Reallocate: the id comes back with a continued PSN sequence
	// (Mohan-Narang seeding), so stale log records can never apply.
	txn2, _ := c.Begin()
	pid2, err := txn2.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	if pid2 == pid {
		c.mu.Lock()
		p, _ := c.pool.Get(pid2)
		c.mu.Unlock()
		if p.PSN() <= finalPSN {
			t.Fatalf("reincarnated page PSN %d not above %d", p.PSN(), finalPSN)
		}
	}
	if err := txn2.Commit(); err != nil {
		t.Fatal(err)
	}
	_ = cl
}

func TestFileBackedClientLogSurvivesRestart(t *testing.T) {
	// The same crash/recovery flow with a REAL log file: the FileStore
	// re-opened after the "crash" recovers its end and the client redoes
	// from it.
	dir := t.TempDir()
	cfg := testConfig()
	cl := NewCluster(cfg)
	ids, err := cl.SeedPages(1, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	logStore, err := wal.OpenFileStore(dir+"/client.log", 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cl.AddClientWithLog(logStore)
	if err != nil {
		t.Fatal(err)
	}
	obj := page.ObjectID{Page: ids[0], Slot: 0}
	txn, _ := c.Begin()
	if err := txn.Overwrite(obj, val('F')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	id := c.ID()
	// Simulate the process dying: drop the engine, close the file.
	c.Crash()
	cl.Server().ClientCrashed(id)
	logStore.Close()

	reopened, err := wal.OpenFileStore(dir+"/client.log", 0)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverClient(cfg, cl.serverConn(), reopened, id)
	if err != nil {
		t.Fatalf("recovery from reopened file: %v", err)
	}
	// Re-attach so callbacks reach the new engine.
	cl.Server().Attach(id, &msg.LoopbackClient{Inner: rec, Stats: cl.Stats})
	txn2, _ := rec.Begin()
	got, err := txn2.Read(obj)
	if err != nil || !bytes.Equal(got, val('F')) {
		t.Fatalf("after file-backed recovery: %q err=%v", got, err)
	}
	txn2.Commit()
}

func TestLockTimeoutSurfacesAsTypedError(t *testing.T) {
	cfg := testConfig()
	cfg.LockTimeout = 100 * time.Millisecond
	_, ids, cs := seededCluster(t, cfg, 1, 2)
	a, b := cs[0], cs[1]
	obj := page.ObjectID{Page: ids[0], Slot: 0}
	ta, _ := a.Begin()
	if err := ta.Overwrite(obj, val('x')); err != nil {
		t.Fatal(err)
	}
	// b cannot get the lock while a's txn is active; the typed timeout
	// error must surface so callers can retry.
	tb, _ := b.Begin()
	err := tb.Overwrite(obj, val('y'))
	if err == nil {
		t.Fatal("conflicting write succeeded")
	}
	tb.Abort()
	ta.Commit()
}
