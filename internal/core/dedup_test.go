package core

import (
	"errors"
	"sync"
	"testing"
)

func TestReplyCacheExecutesOnce(t *testing.T) {
	rc := NewReplyCache(8)
	calls := 0
	exec := func() (interface{}, error) { calls++; return calls, nil }
	for i := 0; i < 5; i++ {
		body, err := rc.Do(1, exec)
		if err != nil || body.(int) != 1 {
			t.Fatalf("attempt %d: body=%v err=%v", i, body, err)
		}
	}
	if calls != 1 {
		t.Fatalf("exec ran %d times, want 1", calls)
	}
	if got := rc.Suppressed.Load(); got != 4 {
		t.Fatalf("suppressed=%d want 4", got)
	}
}

func TestReplyCacheCachesErrors(t *testing.T) {
	rc := NewReplyCache(8)
	boom := errors.New("boom")
	calls := 0
	exec := func() (interface{}, error) { calls++; return nil, boom }
	for i := 0; i < 3; i++ {
		if _, err := rc.Do(7, exec); !errors.Is(err, boom) {
			t.Fatalf("attempt %d: err=%v", i, err)
		}
	}
	if calls != 1 {
		t.Fatalf("failed exec retried server-side %d times, want 1", calls)
	}
}

func TestReplyCacheCoalescesInflight(t *testing.T) {
	rc := NewReplyCache(8)
	started := make(chan struct{})
	release := make(chan struct{})
	calls := 0
	go rc.Do(3, func() (interface{}, error) {
		calls++
		close(started)
		<-release
		return "done", nil
	})
	<-started
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, err := rc.Do(3, func() (interface{}, error) { calls++; return "dup", nil })
			if err != nil || body != "done" {
				t.Errorf("duplicate got body=%v err=%v", body, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("exec ran %d times, want 1", calls)
	}
}

func TestReplyCacheBoundedEviction(t *testing.T) {
	rc := NewReplyCache(4)
	for seq := uint64(1); seq <= 100; seq++ {
		rc.Do(seq, func() (interface{}, error) { return seq, nil })
	}
	rc.mu.Lock()
	n := len(rc.entries)
	rc.mu.Unlock()
	if n > 4 {
		t.Fatalf("cache holds %d entries, limit 4", n)
	}
}
