package core

import (
	"bytes"
	"math/rand"
	"testing"

	"clientlog/internal/msg"
	"clientlog/internal/page"
	"clientlog/internal/wal"
)

// TestProperty1HoldsUnderRandomTraffic asserts Property 1 of §3.1 after
// every ship in a random single-client schedule: for each (page,
// client) DCT entry, every log record with PSN below the entry's PSN is
// reflected on the server's current copy.
func TestProperty1HoldsUnderRandomTraffic(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cl, ids, cs := seededCluster(t, testConfig(), 3, 1)
	a := cs[0]

	check := func() {
		for _, pid := range ids {
			psn, ok := cl.Server().DCTPSN(pid, a.ID())
			if !ok {
				continue
			}
			// Server's current copy.
			reply, err := cl.Server().Fetch(msg.FetchReq{Page: pid})
			if err != nil {
				t.Fatal(err)
			}
			srv := new(page.Page)
			if err := srv.UnmarshalBinary(reply.Image); err != nil {
				t.Fatal(err)
			}
			// For each slot, the latest full-overwrite below the DCT PSN
			// must match the server copy (unless a later record below the
			// PSN touched it again — latestBelow handles that).
			for slot, want := range latestBelow(t, a, pid, psn) {
				got, okR := srv.Read(slot)
				if !okR || !bytes.Equal(got, want) {
					t.Fatalf("Property 1 violated: page %d slot %d server=%q log=%q (dctPSN=%d)",
						pid, slot, got, want, psn)
				}
			}
		}
	}

	for round := 0; round < 60; round++ {
		txn, _ := a.Begin()
		for op := 0; op < 1+r.Intn(3); op++ {
			obj := page.ObjectID{Page: ids[r.Intn(len(ids))], Slot: uint16(r.Intn(8))}
			v := make([]byte, 16)
			r.Read(v)
			if err := txn.Overwrite(obj, v); err != nil {
				t.Fatal(err)
			}
		}
		if r.Intn(5) == 0 {
			if err := txn.Abort(); err != nil {
				t.Fatal(err)
			}
		} else if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		switch r.Intn(4) {
		case 0:
			if err := a.ReplacePage(ids[r.Intn(len(ids))]); err != nil {
				t.Fatal(err)
			}
			check()
		case 1:
			if err := cl.Server().FlushAll(); err != nil {
				t.Fatal(err)
			}
			check()
		}
	}
}

// TestProperty2HoldsUnderRandomTraffic asserts Property 2 after every
// force: the replacement record whose PSN matches the disk PSN
// determines the client updates on disk.
func TestProperty2HoldsUnderRandomTraffic(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	cl, ids, cs := seededCluster(t, testConfig(), 2, 2)

	check := func() {
		for _, pid := range ids {
			disk, err := cl.Server().Store().Read(pid)
			if err != nil {
				t.Fatal(err)
			}
			var match *wal.Replacement
			sc := cl.Server().Log().Scan(cl.Server().Log().Horizon())
			for sc.Next() {
				if rep, ok := sc.Record().(*wal.Replacement); ok && rep.Page == pid && rep.PagePSN == disk.PSN() {
					match = rep
				}
			}
			if sc.Err() != nil {
				t.Fatal(sc.Err())
			}
			if match == nil {
				continue // never forced (or record reclaimed after advance)
			}
			for _, ent := range match.Entries {
				var c *Client
				for i := range cs {
					if cs[i].ID() == ent.Client {
						c = cl.Client(cs[i].ID())
					}
				}
				if c == nil {
					continue
				}
				for slot, want := range latestBelow(t, c, pid, ent.PSN) {
					got, ok := disk.Read(slot)
					if !ok || !bytes.Equal(got, want) {
						t.Fatalf("Property 2 violated: page %d slot %d disk=%q log=%q (limit=%d)",
							pid, slot, got, want, ent.PSN)
					}
				}
			}
		}
	}

	for round := 0; round < 50; round++ {
		ci := r.Intn(2)
		c := cl.Client(cs[ci].ID())
		txn, _ := c.Begin()
		// Each client writes its own slot parity: no lock conflicts, pure
		// same-page concurrency.
		obj := page.ObjectID{Page: ids[r.Intn(len(ids))], Slot: uint16(2*r.Intn(4) + ci)}
		v := make([]byte, 16)
		r.Read(v)
		if err := txn.Overwrite(obj, v); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		if r.Intn(3) == 0 {
			if err := c.ReplacePage(obj.Page); err != nil {
				t.Fatal(err)
			}
			if err := cl.Server().FlushAll(); err != nil {
				t.Fatal(err)
			}
			check()
		}
	}
}
