package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/msg"
	"clientlog/internal/obs/span"
	"clientlog/internal/page"
	"clientlog/internal/wal"
)

// ErrTxnDone reports use of a committed or aborted transaction.
var ErrTxnDone = errors.New("core: transaction already terminated")

// ErrNotCounter reports a logical Add on an object that is not an
// 8-byte counter.
var ErrNotCounter = errors.New("core: object is not an 8-byte counter")

// Txn is a transaction executing entirely at its client (Section 2 of
// the paper: transactions never migrate).  A Txn is not safe for
// concurrent use; run concurrent transactions, not concurrent calls on
// one transaction.
type Txn struct {
	c    *Client
	st   *txnState
	done bool
}

// Begin starts a transaction.
func (c *Client) Begin() (*Txn, error) {
	if err := c.checkAlive(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.nextSeq++
	st := &txnState{id: ident.MakeTxnID(c.id, c.nextSeq), dirtyPages: make(map[page.ID]bool)}
	st.tr = c.cfg.Spans.Begin(st.id)
	c.txns[st.id] = st
	c.mu.Unlock()
	return &Txn{c: c, st: st}, nil
}

// ID returns the transaction id.
func (t *Txn) ID() ident.TxnID { return t.st.id }

func (t *Txn) check() error {
	if t.done {
		return ErrTxnDone
	}
	return t.c.checkAlive()
}

// Read returns the object's current value under a shared lock.
func (t *Txn) Read(obj page.ObjectID) ([]byte, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	if err := t.c.acquire(t.st, lock.ObjName(obj), lock.S); err != nil {
		return nil, err
	}
	var out []byte
	err := t.c.withPage(t.st.tr, obj.Page, func(p *page.Page) error {
		data, ok := p.Read(obj.Slot)
		if !ok {
			return page.ErrBadSlot
		}
		out = data
		return nil
	})
	return out, err
}

// record appends a transactional log record, maintains the chain, and
// does the ship-at-commit buffering for the baseline modes.  Called
// with c.mu held (from inside withPage).
func (t *Txn) record(rec wal.Record, pid page.ID) (wal.LSN, error) {
	// Grow the undo reservation with the record: the append must leave
	// room for every active transaction's rollback plus the CLR this
	// record may later require (and, on the first record, the abort
	// record itself).
	undo := uint64(len(wal.Encode(rec))) + 8 + clrSlack
	headroom := t.c.undoReserveLocked(nil) + undo
	if t.st.firstLSN == wal.NilLSN {
		headroom += abortRecCost
	}
	lsn, err := t.c.appendLocked(rec, headroom)
	if err != nil {
		return wal.NilLSN, err
	}
	if t.st.firstLSN == wal.NilLSN {
		t.st.firstLSN = lsn
		t.st.undoNeed += abortRecCost
	}
	t.st.undoNeed += undo
	t.st.lastLSN = lsn
	if t.c.cfg.Logging != LogLocal {
		t.st.buffered = append(t.st.buffered, wal.Encode(rec))
	}
	t.st.dirtyPages[pid] = true
	t.c.pool.MarkDirty(pid)
	if e, ok := t.c.dpt[pid]; ok {
		e.dirtySinceShip = true
	} else {
		// Defensive: an update without a DPT entry means noteExclusive
		// was bypassed; keep recoverability anyway.
		t.c.dpt[pid] = &dptEntry{redoLSN: lsn, dirtySinceShip: true}
	}
	return lsn, nil
}

// mutate acquires the lock, the update token if the baseline demands
// it, and runs the page mutation + logging under the client mutex.
func (t *Txn) mutate(name lock.Name, fn func(p *page.Page) error) error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.c.acquire(t.st, name, lock.X); err != nil {
		return err
	}
	for {
		if t.c.cfg.Update == UpdateToken {
			if err := t.c.ensureToken(t.st.tr, name.Page); err != nil {
				return err
			}
		}
		retry := false
		err := t.c.withPage(t.st.tr, name.Page, func(p *page.Page) error {
			if t.c.cfg.Update == UpdateToken && !t.c.tokens[name.Page] {
				retry = true // token recalled between ensureToken and here
				return nil
			}
			return fn(p)
		})
		if err != nil {
			return err
		}
		if !retry {
			return nil
		}
	}
}

// Overwrite replaces an object's bytes with a same-size value: the
// mergeable update of §3.1, requiring only an object-level exclusive
// lock, so other clients may update other objects on the same page
// concurrently.
func (t *Txn) Overwrite(obj page.ObjectID, data []byte) error {
	return t.mutate(lock.ObjName(obj), func(p *page.Page) error {
		old, before, err := p.Overwrite(obj.Slot, data)
		if err != nil {
			return err
		}
		_, err = t.record(&wal.Update{
			TxnID: t.st.id, PrevLSN: t.st.lastLSN,
			Page: obj.Page, Slot: obj.Slot, PSN: before,
			Op: wal.OpOverwrite, Before: old, After: cloned(data),
		}, obj.Page)
		return err
	})
}

// OverwriteAt replaces part of an object in place — the §3.1 wording is
// "updates that simply overwrite parts of objects residing on the same
// page"; like Overwrite it is mergeable and needs only an object-level
// exclusive lock.
func (t *Txn) OverwriteAt(obj page.ObjectID, off int, frag []byte) error {
	return t.mutate(lock.ObjName(obj), func(p *page.Page) error {
		old, before, err := p.OverwriteAt(obj.Slot, off, frag)
		if err != nil {
			return err
		}
		_, err = t.record(&wal.Update{
			TxnID: t.st.id, PrevLSN: t.st.lastLSN,
			Page: obj.Page, Slot: obj.Slot, PSN: before,
			Op: wal.OpOverwriteAt, Offset: uint32(off),
			Before: old, After: cloned(frag),
		}, obj.Page)
		return err
	})
}

// Add applies a logical update: the object is an 8-byte little-endian
// counter and delta is added to it.  The log record is logical (redo
// re-adds, undo subtracts), demonstrating the paper's support for
// logical as well as physical logging (§4.2).
func (t *Txn) Add(obj page.ObjectID, delta int64) error {
	return t.mutate(lock.ObjName(obj), func(p *page.Page) error {
		cur, ok := p.Read(obj.Slot)
		if !ok {
			return page.ErrBadSlot
		}
		if len(cur) != 8 {
			return ErrNotCounter
		}
		v := int64(binary.LittleEndian.Uint64(cur)) + delta
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		_, before, err := p.Overwrite(obj.Slot, buf[:])
		if err != nil {
			return err
		}
		_, err = t.record(&wal.Logical{
			TxnID: t.st.id, PrevLSN: t.st.lastLSN,
			Page: obj.Page, Slot: obj.Slot, PSN: before, Delta: delta,
		}, obj.Page)
		return err
	})
}

// ReadCounter reads an 8-byte counter object.
func (t *Txn) ReadCounter(obj page.ObjectID) (int64, error) {
	data, err := t.Read(obj)
	if err != nil {
		return 0, err
	}
	if len(data) != 8 {
		return 0, ErrNotCounter
	}
	return int64(binary.LittleEndian.Uint64(data)), nil
}

// Insert creates a new object on the page.  Structural updates are
// non-mergeable (§3.1): a page-level exclusive lock serializes them.
func (t *Txn) Insert(pid page.ID, data []byte) (page.ObjectID, error) {
	var obj page.ObjectID
	err := t.mutate(lock.PageName(pid), func(p *page.Page) error {
		slot, before, err := p.Insert(data)
		if err != nil {
			return err
		}
		obj = page.ObjectID{Page: pid, Slot: slot}
		_, err = t.record(&wal.Update{
			TxnID: t.st.id, PrevLSN: t.st.lastLSN,
			Page: pid, Slot: slot, PSN: before,
			Op: wal.OpInsert, After: cloned(data),
		}, pid)
		return err
	})
	return obj, err
}

// Delete removes an object (structural; page-level exclusive lock).
func (t *Txn) Delete(obj page.ObjectID) error {
	return t.mutate(lock.PageName(obj.Page), func(p *page.Page) error {
		old, before, err := p.Delete(obj.Slot)
		if err != nil {
			return err
		}
		_, err = t.record(&wal.Update{
			TxnID: t.st.id, PrevLSN: t.st.lastLSN,
			Page: obj.Page, Slot: obj.Slot, PSN: before,
			Op: wal.OpDelete, Before: old,
		}, obj.Page)
		return err
	})
}

// Resize replaces an object with a different-size value (structural,
// per the paper's footnote 3).
func (t *Txn) Resize(obj page.ObjectID, data []byte) error {
	return t.mutate(lock.PageName(obj.Page), func(p *page.Page) error {
		old, before, err := p.Resize(obj.Slot, data)
		if err != nil {
			return err
		}
		_, err = t.record(&wal.Update{
			TxnID: t.st.id, PrevLSN: t.st.lastLSN,
			Page: obj.Page, Slot: obj.Slot, PSN: before,
			Op: wal.OpResize, Before: old, After: cloned(data),
		}, obj.Page)
		return err
	})
}

// AllocPage asks the server for a fresh page; the transaction holds an
// exclusive page lock on it.
func (t *Txn) AllocPage() (page.ID, error) {
	if err := t.check(); err != nil {
		return 0, err
	}
	reply, err := t.c.srv.Alloc(msg.AllocReq{Client: t.c.id})
	if err != nil {
		return 0, err
	}
	p := new(page.Page)
	if err := p.UnmarshalBinary(reply.Image); err != nil {
		return 0, err
	}
	t.c.llm.InstallCached(lock.PageName(p.ID()), lock.X)
	if res, err := t.c.llm.AcquireLocal(t.st.id, lock.PageName(p.ID()), lock.X); err != nil || res != lock.Granted {
		return 0, fmt.Errorf("core: page lock on fresh page: res=%v err=%w", res, err)
	}
	t.c.mu.Lock()
	t.c.pool.Put(p, false)
	if _, ok := t.c.dpt[p.ID()]; !ok {
		t.c.dpt[p.ID()] = &dptEntry{redoLSN: t.c.log.End()}
	}
	if t.c.cfg.Update == UpdateToken {
		t.c.tokens[p.ID()] = true
	}
	victims := t.c.collectVictimsLocked()
	t.c.mu.Unlock()
	t.c.shipVictims(victims)
	return p.ID(), nil
}

// Savepoint returns a token for a later partial rollback (§3.2:
// "clients can support the savepoint concept and offer partial
// rollbacks").
func (t *Txn) Savepoint() wal.LSN { return t.st.lastLSN }

// RollbackTo undoes every update performed after the savepoint; the
// transaction remains active.
func (t *Txn) RollbackTo(sp wal.LSN) error {
	if err := t.check(); err != nil {
		return err
	}
	return t.c.undoChain(t.st, sp)
}

// Commit terminates the transaction.  In the paper's mode the only
// durability action is forcing the private log through the commit
// record: no pages, no log records, no messages to the server.  The
// baselines ship their buffered records/pages first.
func (t *Txn) Commit() error {
	if err := t.check(); err != nil {
		return err
	}
	c := t.c
	start := time.Now()
	defer func() { c.Metrics.CommitNanos.ObserveDuration(time.Since(start)) }()
	if c.cfg.Logging != LogLocal {
		req := msg.CommitShipReq{Client: c.id, Txn: t.st.id, Records: t.st.buffered}
		if c.cfg.Logging == LogShipPages {
			c.mu.Lock()
			for pid := range t.st.dirtyPages {
				if p, ok := c.pool.Get(pid); ok {
					if img, err := p.MarshalBinary(); err == nil {
						req.Pages = append(req.Pages, img)
					}
				}
			}
			c.mu.Unlock()
		}
		sp := t.st.tr.Start(span.CatCommitShip, "")
		req.Trace = t.st.tr.Context(sp)
		err := c.srv.CommitShip(req)
		t.st.tr.End(sp)
		if err != nil {
			return err
		}
	}
	c.mu.Lock()
	// The commit record may spend this transaction's own reservation:
	// once it is durable, no undo will ever be needed.
	lsn, err := c.appendLocked(&wal.Commit{TxnID: t.st.id, PrevLSN: t.st.lastLSN}, c.undoReserveLocked(t.st))
	c.mu.Unlock()
	if err != nil {
		return err
	}
	if c.cfg.Logging == LogLocal {
		sp := t.st.tr.Start(span.CatWALForce, "")
		err := c.log.Force(lsn)
		t.st.tr.End(sp)
		if err != nil {
			return err
		}
	}
	t.finish()
	t.st.tr.Finish(true)
	c.Metrics.Commits.Add(1)
	c.mu.Lock()
	c.commitsCk++
	auto := c.cfg.CheckpointEvery > 0 && c.commitsCk >= c.cfg.CheckpointEvery
	c.mu.Unlock()
	if auto {
		return c.Checkpoint()
	}
	return nil
}

// Abort rolls the transaction back completely and terminates it.
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	c := t.c
	if err := c.checkAlive(); err != nil {
		// The crash already wiped the transaction; restart recovery
		// rolls it back.
		t.done = true
		return err
	}
	if err := c.undoChain(t.st, wal.NilLSN); err != nil {
		return err
	}
	// A transaction that never logged has nothing to undo at restart;
	// skip the abort record so failed-before-first-append transactions
	// (common under §3.6 pressure) don't leak bytes from a full log.
	if t.st.firstLSN != wal.NilLSN {
		c.mu.Lock()
		_, err := c.appendLocked(&wal.Abort{TxnID: t.st.id, PrevLSN: t.st.lastLSN}, c.undoReserveLocked(t.st))
		c.mu.Unlock()
		if err != nil {
			return err
		}
	}
	t.finish()
	t.st.tr.Finish(false)
	c.Metrics.Aborts.Add(1)
	return nil
}

// finish releases the transaction's locks (strict 2PL release point;
// the cached client-level locks stay, per inter-transaction caching).
func (t *Txn) finish() {
	t.done = true
	t.c.llm.ReleaseTxn(t.st.id)
	t.c.mu.Lock()
	delete(t.c.txns, t.st.id)
	t.c.reclaimLocked()
	t.c.mu.Unlock()
}

// undoChain walks the transaction's log chain from its last record down
// to (exclusive) upTo, applying inverse operations and writing CLRs.
// It is shared by Abort, RollbackTo and the undo pass of restart
// recovery (§3.3).
func (c *Client) undoChain(st *txnState, upTo wal.LSN) error {
	cur := st.lastLSN
	for cur != wal.NilLSN && cur > upTo {
		rec, _, err := c.log.Read(cur)
		if err != nil {
			return fmt.Errorf("core: undo read %s: %w", cur, err)
		}
		switch r := rec.(type) {
		case *wal.Update:
			if err := c.undoUpdate(st, r); err != nil {
				return err
			}
			cur = r.PrevLSN
		case *wal.Logical:
			if err := c.undoLogical(st, r); err != nil {
				return err
			}
			cur = r.PrevLSN
		case *wal.CLR:
			// Already-compensated prefix: jump over it (ARIES UndoNext).
			cur = r.UndoNext
		default:
			cur = rec.Prev()
		}
	}
	return nil
}

// undoUpdate applies the inverse of one physical update as a fresh
// update and logs a CLR describing the compensation.
func (c *Client) undoUpdate(st *txnState, r *wal.Update) error {
	return c.withPage(st.tr, r.Page, func(p *page.Page) error {
		var (
			before page.PSN
			err    error
			op     wal.OpKind
			after  []byte
		)
		var offset uint32
		switch r.Op {
		case wal.OpOverwrite:
			_, before, err = p.Overwrite(r.Slot, r.Before)
			op, after = wal.OpOverwrite, r.Before
		case wal.OpOverwriteAt:
			_, before, err = p.OverwriteAt(r.Slot, int(r.Offset), r.Before)
			op, after, offset = wal.OpOverwriteAt, r.Before, r.Offset
		case wal.OpInsert:
			_, before, err = p.Delete(r.Slot)
			op = wal.OpDelete
		case wal.OpDelete:
			before, err = p.InsertAt(r.Slot, r.Before)
			op, after = wal.OpInsert, r.Before
		case wal.OpResize:
			_, before, err = p.Resize(r.Slot, r.Before)
			op, after = wal.OpResize, r.Before
		default:
			err = fmt.Errorf("core: cannot undo op %v", r.Op)
		}
		if err != nil {
			return fmt.Errorf("core: undo %v on %v: %w", r.Op, r.Object(), err)
		}
		_, err = c.recordCLR(st, &wal.CLR{
			TxnID: st.id, PrevLSN: st.lastLSN,
			Page: r.Page, Slot: r.Slot, PSN: before,
			Op: op, Offset: offset, After: cloned(after), UndoNext: r.PrevLSN,
		})
		return err
	})
}

// undoLogical subtracts the delta of a logical record and logs a
// logical CLR.
func (c *Client) undoLogical(st *txnState, r *wal.Logical) error {
	return c.withPage(st.tr, r.Page, func(p *page.Page) error {
		cur, ok := p.Read(r.Slot)
		if !ok || len(cur) != 8 {
			return ErrNotCounter
		}
		v := int64(binary.LittleEndian.Uint64(cur)) - r.Delta
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		_, before, err := p.Overwrite(r.Slot, buf[:])
		if err != nil {
			return err
		}
		_, err = c.recordCLR(st, &wal.CLR{
			TxnID: st.id, PrevLSN: st.lastLSN,
			Page: r.Page, Slot: r.Slot, PSN: before,
			Op: wal.OpLogicalAdd, Delta: -r.Delta, UndoNext: r.PrevLSN,
		})
		return err
	})
}

// recordCLR appends a compensation record and maintains the per-page
// bookkeeping.  Called with c.mu held (inside withPage).
func (c *Client) recordCLR(st *txnState, clr *wal.CLR) (wal.LSN, error) {
	// A CLR spends the space its transaction reserved for it; only the
	// other transactions' reservations must stay free.
	lsn, err := c.appendLocked(clr, c.undoReserveLocked(st))
	if err != nil {
		return wal.NilLSN, err
	}
	cost := uint64(len(wal.Encode(clr))) + 8
	if st.undoNeed > cost+abortRecCost {
		st.undoNeed -= cost
	} else {
		st.undoNeed = abortRecCost
	}
	st.lastLSN = lsn
	c.pool.MarkDirty(clr.Page)
	if e, ok := c.dpt[clr.Page]; ok {
		e.dirtySinceShip = true
	} else {
		c.dpt[clr.Page] = &dptEntry{redoLSN: lsn, dirtySinceShip: true}
	}
	return lsn, nil
}

func cloned(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
