package core

import (
	"bytes"
	"testing"

	"clientlog/internal/msg"
	"clientlog/internal/page"
	"clientlog/internal/wal"
)

// latestBelow returns, per slot, the after-image of the client's latest
// full-overwrite action (update or compensation) whose pre-update PSN
// is below limit.
func latestBelow(t *testing.T, c *Client, pid page.ID, limit page.PSN) map[uint16][]byte {
	t.Helper()
	best := make(map[uint16][]byte)
	bestPSN := make(map[uint16]page.PSN)
	consider := func(slot uint16, psn page.PSN, after []byte) {
		if psn < limit && psn >= bestPSN[slot] {
			bestPSN[slot] = psn
			best[slot] = after
		}
	}
	sc := c.Log().Scan(c.Log().Horizon())
	for sc.Next() {
		switch u := sc.Record().(type) {
		case *wal.Update:
			if u.Page == pid && u.Op == wal.OpOverwrite {
				consider(u.Slot, u.PSN, u.After)
			}
		case *wal.CLR:
			if u.Page == pid && u.Op == wal.OpOverwrite {
				consider(u.Slot, u.PSN, u.After)
			}
		}
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	return best
}

func TestProperty1ServerCopyReflectsUpdatesBelowDCTPSN(t *testing.T) {
	// Property 1 (§3.1): updates in a client log record with PSN below
	// the PSN the server remembers for (page, client) are reflected on
	// the server's copy.
	cl, ids, cs := seededCluster(t, testConfig(), 1, 1)
	a := cs[0]
	pid := ids[0]
	for round := 0; round < 6; round++ {
		txn, _ := a.Begin()
		for slot := uint16(0); slot < 4; slot++ {
			if err := txn.Overwrite(page.ObjectID{Page: pid, Slot: slot}, val(byte('a'+round))); err != nil {
				t.Fatal(err)
			}
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		if round == 3 {
			if err := a.ReplacePage(pid); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Force the latest state across (but keep further updates pending).
	if err := a.ReplacePage(pid); err != nil {
		t.Fatal(err)
	}
	dctPSN, ok := cl.Server().DCTPSN(pid, a.ID())
	if !ok {
		t.Fatal("no DCT entry after ship")
	}
	// Fetch the server's copy and compare against the log's assertion.
	serverCopy := func() *page.Page {
		p := new(page.Page)
		reply, err := cl.Server().Fetch(msg.FetchReq{Page: pid})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.UnmarshalBinary(reply.Image); err != nil {
			t.Fatal(err)
		}
		return p
	}()
	for slot, want := range latestBelow(t, a, pid, dctPSN) {
		got, ok := serverCopy.Read(slot)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("Property 1 violated at slot %d: server %q, log says %q", slot, got, want)
		}
	}
}

func TestProperty2ReplacementRecordDescribesDiskState(t *testing.T) {
	// Property 2 (§3.1): when the disk PSN of a page equals the PSN in
	// a replacement log record, that record's per-client PSNs determine
	// exactly which client updates the disk copy holds.
	cl, ids, cs := seededCluster(t, testConfig(), 1, 2)
	a, b := cs[0], cs[1]
	pid := ids[0]
	// Interleave updates by two clients on different objects with
	// multiple forces.
	for round := 0; round < 4; round++ {
		ta, _ := a.Begin()
		if err := ta.Overwrite(page.ObjectID{Page: pid, Slot: 0}, val(byte('a'+round))); err != nil {
			t.Fatal(err)
		}
		if err := ta.Commit(); err != nil {
			t.Fatal(err)
		}
		tb, _ := b.Begin()
		if err := tb.Overwrite(page.ObjectID{Page: pid, Slot: 1}, val(byte('A'+round))); err != nil {
			t.Fatal(err)
		}
		if err := tb.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := a.ReplacePage(pid); err != nil {
			t.Fatal(err)
		}
		if err := b.ReplacePage(pid); err != nil {
			t.Fatal(err)
		}
		if err := cl.Server().FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	// Read the disk copy directly.
	disk, err := cl.Server().Store().Read(pid)
	if err != nil {
		t.Fatal(err)
	}
	// Find the replacement record whose PSN matches the disk PSN.
	var match *wal.Replacement
	sc := cl.Server().Log().Scan(cl.Server().Log().Horizon())
	for sc.Next() {
		if rep, ok := sc.Record().(*wal.Replacement); ok && rep.Page == pid && rep.PagePSN == disk.PSN() {
			match = rep
		}
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if match == nil {
		t.Fatalf("no replacement record matches disk PSN %d", disk.PSN())
	}
	clients := map[byte]*Client{0: a, 1: b}
	for _, ent := range match.Entries {
		var c *Client
		for _, cc := range clients {
			if cc.ID() == ent.Client {
				c = cc
			}
		}
		if c == nil {
			continue
		}
		for slot, want := range latestBelow(t, c, pid, ent.PSN) {
			got, ok := disk.Read(slot)
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("Property 2 violated: disk slot %d = %q, client %v log says %q (limit %d)",
					slot, got, c.ID(), want, ent.PSN)
			}
		}
	}
}
