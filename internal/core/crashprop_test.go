package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"clientlog/internal/ident"
	"clientlog/internal/page"
)

// refState is the sequential reference: the value every object must
// have after replaying the committed transactions in commit order.
type refState map[page.ObjectID][]byte

// crashScenario drives a deterministic random schedule of transactions
// and crashes against the cluster, maintaining the reference state, and
// verifies at the end that every object matches the reference.
//
// This is the repository's strongest correctness artifact: whatever the
// interleaving of client crashes, server crashes and complex crashes,
// the recovered database must equal a sequential replay of exactly the
// committed transactions.
func crashScenario(t *testing.T, seed int64, rounds int, withServerCrashes bool) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	cfg := testConfig()
	const nClients, nPages, slots = 3, 4, 8
	cl, ids, cs := seededCluster(t, cfg, nPages, nClients)

	ref := make(refState)
	for _, pid := range ids {
		for s := 0; s < slots; s++ {
			data := make([]byte, 16)
			for b := range data {
				data[b] = byte(uint64(pid)*31 + uint64(s)*7 + uint64(b))
			}
			ref[page.ObjectID{Page: pid, Slot: uint16(s)}] = data
		}
	}
	alive := make(map[ident.ClientID]bool)
	for _, c := range cs {
		alive[c.ID()] = true
	}
	clientByIdx := func(i int) *Client { return cl.Client(cs[i].ID()) }

	verifyAll := func(tag string) {
		// Read every object through a live client (locks + callbacks pull
		// the freshest committed copies together).
		var reader *Client
		for i := range cs {
			if alive[cs[i].ID()] {
				reader = clientByIdx(i)
				break
			}
		}
		if reader == nil {
			t.Fatalf("%s: no live client to verify with", tag)
		}
		txn, err := reader.Begin()
		if err != nil {
			t.Fatalf("%s: begin: %v", tag, err)
		}
		for obj, want := range ref {
			got, err := txn.Read(obj)
			if err != nil {
				t.Fatalf("%s: read %v: %v", tag, obj, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: object %v = %q, reference %q (seed %d)", tag, obj, got, want, seed)
			}
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("%s: verify commit: %v", tag, err)
		}
	}

	for round := 0; round < rounds; round++ {
		action := r.Intn(100)
		switch {
		case action < 70: // a transaction on a random live client
			idx := r.Intn(nClients)
			if !alive[cs[idx].ID()] {
				continue
			}
			c := clientByIdx(idx)
			txn, err := c.Begin()
			if err != nil {
				t.Fatalf("round %d begin: %v", round, err)
			}
			n := 1 + r.Intn(4)
			pending := make(refState)
			failed := false
			for i := 0; i < n; i++ {
				obj := page.ObjectID{Page: ids[r.Intn(nPages)], Slot: uint16(r.Intn(slots))}
				v := make([]byte, 16)
				r.Read(v)
				if err := txn.Overwrite(obj, v); err != nil {
					// Lock timeouts/deadlocks are legal: abort and move on.
					txn.Abort()
					failed = true
					break
				}
				pending[obj] = v
			}
			if failed {
				continue
			}
			if r.Intn(4) == 0 { // voluntary abort
				if err := txn.Abort(); err != nil {
					t.Fatalf("round %d abort: %v", round, err)
				}
				continue
			}
			if err := txn.Commit(); err != nil {
				t.Fatalf("round %d commit: %v", round, err)
			}
			for obj, v := range pending {
				ref[obj] = v
			}
		case action < 78: // replace a random page from a client cache
			idx := r.Intn(nClients)
			if alive[cs[idx].ID()] {
				if err := clientByIdx(idx).ReplacePage(ids[r.Intn(nPages)]); err != nil {
					t.Fatalf("round %d replace: %v", round, err)
				}
			}
		case action < 83: // checkpoint someone
			idx := r.Intn(nClients)
			if alive[cs[idx].ID()] {
				if err := clientByIdx(idx).Checkpoint(); err != nil {
					t.Fatalf("round %d checkpoint: %v", round, err)
				}
			}
		case action < 93: // client crash + immediate recovery
			idx := r.Intn(nClients)
			id := cs[idx].ID()
			if !alive[id] {
				continue
			}
			cl.CrashClient(id)
			if _, err := cl.RestartClient(id); err != nil {
				t.Fatalf("round %d client restart (seed %d): %v", round, err, seed)
			}
		default: // server crash, possibly complex
			if !withServerCrashes {
				continue
			}
			var down []ident.ClientID
			if r.Intn(2) == 0 { // complex: take one client down too
				down = append(down, cs[r.Intn(nClients)].ID())
			}
			cl.CrashServer(down...)
			if err := cl.RestartServer(); err != nil {
				t.Fatalf("round %d server restart (seed %d): %v", round, seed, err)
			}
			for _, id := range down {
				if _, err := cl.RestartClient(id); err != nil {
					t.Fatalf("round %d complex client restart (seed %d): %v", round, seed, err)
				}
			}
		}
		if round%25 == 24 {
			verifyAll(fmt.Sprintf("round %d", round))
		}
	}
	verifyAll("final")
}

func TestCrashScenarioClientCrashesOnly(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			crashScenario(t, seed, 80, false)
		})
	}
}

func TestCrashScenarioWithServerCrashes(t *testing.T) {
	for seed := int64(10); seed <= 14; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			crashScenario(t, seed, 80, true)
		})
	}
}

func TestCrashScenarioLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	crashScenario(t, 99, 300, true)
}
