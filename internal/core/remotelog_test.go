package core

import (
	"bytes"
	"testing"

	"clientlog/internal/page"
)

func TestDisklessClientCommitAndRecovery(t *testing.T) {
	cfg := testConfig()
	cl := NewCluster(cfg)
	ids, err := cl.SeedPages(2, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cl.AddDisklessClient()
	if err != nil {
		t.Fatal(err)
	}
	obj := page.ObjectID{Page: ids[0], Slot: 0}
	txn, _ := c.Begin()
	if err := txn.Overwrite(obj, val('R')); err != nil {
		t.Fatal(err)
	}
	msgsBefore := cl.Stats.Messages()
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// Unlike the local-disk design, a diskless commit necessarily talks
	// to the server (the log force is a round trip).
	if cl.Stats.Messages() == msgsBefore {
		t.Fatal("diskless commit sent no messages; the remote log is not being used")
	}
	// Crash the client: its cache is gone but the committed record sits
	// in the server-hosted private log, so §3.3 recovery still works.
	cl.CrashClient(c.ID())
	rec, err := cl.RestartClient(c.ID())
	if err != nil {
		t.Fatalf("diskless restart: %v", err)
	}
	txn2, _ := rec.Begin()
	got, err := txn2.Read(obj)
	if err != nil || !bytes.Equal(got, val('R')) {
		t.Fatalf("after diskless recovery: %q err=%v", got, err)
	}
	txn2.Commit()
}

func TestDisklessClientServerCrash(t *testing.T) {
	// The hosted log's durable prefix must survive a server crash; the
	// client's committed update is recoverable afterwards.
	cfg := testConfig()
	cl := NewCluster(cfg)
	ids, err := cl.SeedPages(1, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cl.AddDisklessClient()
	if err != nil {
		t.Fatal(err)
	}
	obj := page.ObjectID{Page: ids[0], Slot: 2}
	txn, _ := c.Begin()
	if err := txn.Overwrite(obj, val('H')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// The page's only fresh copy lives in the client cache; the log's
	// only copy lives (durably) at the server.  Crash both ends of the
	// durability story at once: server down, then client down.
	cl.CrashServer(c.ID())
	if err := cl.RestartServer(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RestartClient(c.ID()); err != nil {
		t.Fatalf("diskless complex restart: %v", err)
	}
	got, err := cl.ReadObject(obj)
	if err != nil || !bytes.Equal(got, val('H')) {
		t.Fatalf("diskless complex crash lost committed data: %q err=%v", got, err)
	}
}

func TestDisklessAndLocalClientsInterleave(t *testing.T) {
	cfg := testConfig()
	cl := NewCluster(cfg)
	ids, err := cl.SeedPages(1, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	local, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	diskless, err := cl.AddDisklessClient()
	if err != nil {
		t.Fatal(err)
	}
	o1 := page.ObjectID{Page: ids[0], Slot: 0}
	o2 := page.ObjectID{Page: ids[0], Slot: 1}
	t1, _ := local.Begin()
	if err := t1.Overwrite(o1, val('L')); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2, _ := diskless.Begin()
	if err := t2.Overwrite(o2, val('D')); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	// Cross-reads pull both copies together via callbacks + merge.
	t3, _ := local.Begin()
	got, err := t3.Read(o2)
	if err != nil || !bytes.Equal(got, val('D')) {
		t.Fatalf("local reads diskless update: %q err=%v", got, err)
	}
	t3.Commit()
	t4, _ := diskless.Begin()
	got, err = t4.Read(o1)
	if err != nil || !bytes.Equal(got, val('L')) {
		t.Fatalf("diskless reads local update: %q err=%v", got, err)
	}
	t4.Commit()
}
