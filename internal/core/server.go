package core

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"clientlog/internal/buffer"
	"clientlog/internal/fleet"
	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/msg"
	"clientlog/internal/obs"
	"clientlog/internal/obs/span"
	"clientlog/internal/page"
	"clientlog/internal/storage"
	"clientlog/internal/trace"
	"clientlog/internal/wal"
)

// ServerMetrics counts server-side protocol events for the experiments.
type ServerMetrics struct {
	Merges         obs.Counter // page-copy merges performed (§2)
	PageForces     obs.Counter // pages written in place to disk
	Replacements   obs.Counter // replacement log records written (§3.1)
	TokenTransfers obs.Counter // update-token migrations (baseline)
	CallbacksSent  obs.Counter // object callbacks issued
	Deescalations  obs.Counter // page de-escalation callbacks issued
	RecoverySteps  obs.Counter // §3.4/§3.5 recovery steps executed
}

// lockWaitMetrics accumulates, per server subsystem lock, the
// nanoseconds callers spent blocked on it (the mutex_wait_nanos_total
// family; see obs.WaitMutex).
type lockWaitMetrics struct {
	registry  obs.Counter
	pageShard obs.Counter
	notify    obs.Counter
	origins   obs.Counter
	inflight  obs.Counter
	complex   obs.Counter
}

// dctKey identifies a DCT entry: one (page, client) pair.
type dctKey struct {
	pg page.ID
	c  ident.ClientID
}

// dctEntry is one dirty-client-table row (§3.2): the PSN the page had
// the last time it was received from the client (or at the first
// exclusive grant), and the LSN of the first replacement log record
// written for the page after the entry appeared.
type dctEntry struct {
	psn     page.PSN
	redoLSN wal.LSN
}

// DefaultPageShards is the server's default page-state shard count.
const DefaultPageShards = 16

// pageShard is one independently mutexed slice of the server's
// per-page state: the DCT rows, flush-notification subscriptions,
// update tokens and recovery markers of the pages hashing to it.  The
// shard mutex also serializes access to those pages' CONTENT: the
// buffer pool hands out shared *page.Page values, so every merge,
// marshal or in-place write of a page happens with its shard mutex
// held.
type pageShard struct {
	mu        obs.WaitMutex
	dct       map[dctKey]*dctEntry
	shippedBy map[page.ID]map[ident.ClientID]bool
	tokens    map[page.ID]ident.ClientID
	// recovering marks (page, client) pairs with an in-flight §3.4 page
	// recovery; recovered marks completed ones.  RecoveryFetch consults
	// both: a pair that was never recovering has all its durable state
	// in the server's copy already.
	recovering map[dctKey]bool
	recovered  map[dctKey]bool
}

// Server is the page server: stable storage, the server buffer pool,
// the global lock manager, the server log (replacement records and
// checkpoints) and the DCT.  It implements msg.Server.
//
// Concurrency is per subsystem instead of one big mutex.  The lock
// hierarchy, in acquisition order (see DESIGN.md §10):
//
//	registry (regMu, RW) → GLM shard(s) in ascending order →
//	page shard (one at a time) → notify queue (notifyMu) → WAL
//
// with originsMu, inflightMu, complexMu, traceMu and stateMu as
// independent leaves.  GLM shard mutexes are never held across calls
// back into the server (callbacks run in fresh goroutines), so
// read-only GLM queries from inside a page-shard section (e.g.
// HoldsAnyX during a force) cannot deadlock.  Multi-page operations
// (Checkpoint, FlushAll, snapshots) visit page shards in ascending
// index order holding at most one shard mutex at any moment.
type Server struct {
	cfg   Config
	glm   *lock.GLM
	store storage.Store
	slog  *wal.Log
	pool  *buffer.Pool

	// regMu guards the client registry; admin and data paths share it
	// only for the brief conn lookups, so /waitsfor and friends never
	// block behind commit processing.
	regMu      obs.WaitRWMutex
	clients    map[ident.ClientID]msg.Client
	nextClient uint32

	// pageShards hold the per-page protocol state, hashed by page ID.
	pageShards []pageShard

	// The notify queue: flush notifications are enqueued while a page
	// shard is held and delivered by a self-terminating drain goroutine,
	// so no shard mutex is ever held across client I/O.
	notifyMu       obs.WaitMutex
	notifyPending  []pendingNotify
	notifyDraining bool
	notifyIdle     chan struct{} // closed when the drain goroutine exits

	// originsMu guards pendingOrigins: per requesting client, the
	// callback origins its next Lock reply must carry so it can write
	// callback log records (§3.1).
	originsMu      obs.WaitMutex
	pendingOrigins map[ident.ClientID][]msg.CallbackOrigin

	// inflightMu guards the dedupe table for concurrent identical
	// callbacks and the Lock requests blocked behind in-flight callback
	// applications (see waitInflightClear).
	inflightMu   obs.WaitMutex
	inflight     map[inflightKey]bool
	inflightWait []chan struct{}

	// complexMu guards complexPending: clients that crashed together
	// with the server and have not finished §3.5 recovery.  While it is
	// nonempty, new GLM grants wait: the rebuilt lock tables cannot
	// contain the crashed clients' exclusive locks (lock tables are
	// volatile, paper claim 7), so granting in that window could hand
	// out pages whose freshest state is still being recovered.
	complexMu      obs.WaitMutex
	complexPending map[ident.ClientID]bool
	complexWait    []chan struct{}

	// stateMu guards restart, the state retained from server restart
	// recovery for §3.5 RecoverQuery answers.
	stateMu sync.Mutex
	restart *restartInfo

	// remoteLogs hosts diskless clients' private logs (Section 2);
	// installed before serving, then read-only.
	remoteLogs *RemoteLogHost

	Metrics  ServerMetrics
	lockWait lockWaitMetrics
	tracer   trace.Recorder
	// spans stages the server's side of sampled transactions (GLM queue
	// waits, callback round trips, commit processing); nil disables it.
	spans *span.Store
	// spanOrigin names this server on recorded spans ("p1") when it is
	// a fleet member, so @pN provenance survives even when the fleet
	// shares one in-process store; empty for a single server.
	spanOrigin string
	// traceMu guards lockTraces: a client with a sampled Lock in flight
	// maps to its GLM queue-wait span, so the callbacks that wait
	// triggers can parent under it.  Best-effort: a client running
	// concurrent transactions keeps only the newest entry.
	traceMu    sync.Mutex
	lockTraces map[ident.ClientID]span.Context
}

// SetTracer installs a protocol-event recorder (default: discard).
// Install it before the server starts handling requests.
func (s *Server) SetTracer(r trace.Recorder) {
	if r == nil {
		r = trace.Nop{}
	}
	s.tracer = r
}

// RegisterObs binds the server's metrics — its own protocol counters,
// per-subsystem mutex-wait counters, plus the server log, buffer pool
// and global lock manager — into reg under scope=server.  Safe to call
// on every restart: the registry sums all engines ever bound to a
// series, so /metrics stays monotone while each engine's own Metrics
// start from zero.  In a fleet (Partitions > 1) every series also
// carries partition=<index>, so sum-on-read rebinding stays monotone
// per partition, not just per process — a restarted partition's fresh
// engine binds to the same partition-tagged series its predecessor
// fed.
func (s *Server) RegisterObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	tags := []obs.Tag{obs.T("scope", "server")}
	if s.cfg.partitions() > 1 {
		tags = append(tags, obs.T("partition", strconv.Itoa(s.cfg.PartitionIndex)))
	}
	bind := func(c *obs.Counter, name string, extra ...obs.Tag) {
		reg.BindCounter(c, name, append(append([]obs.Tag{}, tags...), extra...)...)
	}
	bind(&s.Metrics.Merges, "server_merges_total")
	bind(&s.Metrics.PageForces, "server_page_forces_total")
	bind(&s.Metrics.Replacements, "server_replacements_total")
	bind(&s.Metrics.TokenTransfers, "server_token_transfers_total")
	bind(&s.Metrics.CallbacksSent, "server_callbacks_sent_total")
	bind(&s.Metrics.Deescalations, "server_deescalations_total")
	bind(&s.Metrics.RecoverySteps, "server_recovery_steps_total")
	bind(&s.lockWait.registry, "mutex_wait_nanos_total", obs.T("lock", "registry"))
	bind(&s.lockWait.pageShard, "mutex_wait_nanos_total", obs.T("lock", "page-shard"))
	bind(&s.lockWait.notify, "mutex_wait_nanos_total", obs.T("lock", "notify"))
	bind(&s.lockWait.origins, "mutex_wait_nanos_total", obs.T("lock", "origins"))
	bind(&s.lockWait.inflight, "mutex_wait_nanos_total", obs.T("lock", "inflight"))
	bind(&s.lockWait.complex, "mutex_wait_nanos_total", obs.T("lock", "complex"))
	s.slog.RegisterObs(reg, tags...)
	s.pool.RegisterObs(reg, tags...)
	s.glm.RegisterObs(reg, tags...)
}

type inflightKey struct {
	holder ident.ClientID
	name   lock.Name
	wanted lock.Mode
	deesc  bool
}

// NewServer builds a server engine over existing stable storage and a
// server log (both survive crashes; a restart constructs a fresh Server
// over the same store and log and then runs RecoverServer).
func NewServer(cfg Config, store storage.Store, logStore wal.Store) *Server {
	nShards := cfg.pageShards()
	if nShards <= 0 {
		nShards = DefaultPageShards
	}
	s := &Server{
		cfg:            cfg,
		store:          store,
		slog:           wal.NewLog(logStore),
		pool:           buffer.New(cfg.ServerPool),
		clients:        make(map[ident.ClientID]msg.Client),
		pageShards:     make([]pageShard, nShards),
		pendingOrigins: make(map[ident.ClientID][]msg.CallbackOrigin),
		inflight:       make(map[inflightKey]bool),
		complexPending: make(map[ident.ClientID]bool),
		spans:          cfg.Spans,
		lockTraces:     make(map[ident.ClientID]span.Context),
	}
	if cfg.partitions() > 1 {
		s.spanOrigin = fmt.Sprintf("p%d", cfg.PartitionIndex)
	}
	for i := range s.pageShards {
		sh := &s.pageShards[i]
		sh.mu.SetWaitCounter(&s.lockWait.pageShard)
		sh.dct = make(map[dctKey]*dctEntry)
		sh.shippedBy = make(map[page.ID]map[ident.ClientID]bool)
		sh.tokens = make(map[page.ID]ident.ClientID)
		sh.recovering = make(map[dctKey]bool)
		sh.recovered = make(map[dctKey]bool)
	}
	s.regMu.SetWaitCounter(&s.lockWait.registry)
	s.notifyMu.SetWaitCounter(&s.lockWait.notify)
	s.originsMu.SetWaitCounter(&s.lockWait.origins)
	s.inflightMu.SetWaitCounter(&s.lockWait.inflight)
	s.complexMu.SetWaitCounter(&s.lockWait.complex)
	s.glm = lock.NewGLMSharded(nil, cfg.LockTimeout, cfg.lockShards())
	s.glm.SetOrigin(cfg.PartitionIndex)
	s.glm.SetCallbacker(serverCallbacker{s})
	s.tracer = trace.Nop{}
	return s
}

// owns reports whether this server instance owns the page under the
// fleet's hash partitioning (always true for a single server).  Routed
// traffic only ever carries owned pages; recovery filters client
// reports with it because clients report fleet-wide state.
func (s *Server) owns(pid page.ID) bool {
	return fleet.Owner(pid, s.cfg.partitions()) == s.cfg.PartitionIndex
}

// Partition returns this instance's partition id (fleet.Member).
func (s *Server) Partition() int { return s.cfg.PartitionIndex }

// WaitsFor exposes the GLM's waits-for snapshot, partition-tagged
// (fleet.Member and the admin /waitsfor endpoint).
func (s *Server) WaitsFor() lock.WaitsForSnapshot { return s.glm.WaitsFor() }

// KillWaiter forwards a distributed-deadlock kill to the GLM
// (fleet.Member).
func (s *Server) KillWaiter(c ident.ClientID, cycle []ident.ClientID) bool {
	return s.glm.KillWaiter(c, cycle)
}

// shardOf maps a page to its page-state shard.
func (s *Server) shardOf(pid page.ID) *pageShard {
	return &s.pageShards[int(uint64(pid)%uint64(len(s.pageShards)))]
}

// GLM exposes the global lock manager (tests and recovery use it).
func (s *Server) GLM() *lock.GLM { return s.glm }

// Log exposes the server log (experiments read its byte counters).
func (s *Server) Log() *wal.Log { return s.slog }

// Store exposes stable storage (experiments read its I/O counters).
func (s *Server) Store() storage.Store { return s.store }

// Attach connects a client conn under the given id; the transport layer
// calls it right after Register.
func (s *Server) Attach(id ident.ClientID, conn msg.Client) {
	s.regMu.Lock()
	s.clients[id] = conn
	if uint32(id) >= s.nextClient {
		s.nextClient = uint32(id)
	}
	s.regMu.Unlock()
}

// conn returns the transport handle for a client.
func (s *Server) conn(id ident.ClientID) msg.Client {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	return s.clients[id]
}

// Register implements msg.Server.
func (s *Server) Register(req msg.RegisterReq) (msg.RegisterReply, error) {
	if req.Recover {
		// §3.3: a crashed client reconnects; the server hands it the
		// exclusive locks it retained and the DCT rows that bound the
		// set of pages needing recovery.
		reply := msg.RegisterReply{ID: req.ID, PageSize: s.store.PageSize()}
		for _, h := range s.glm.HeldBy(req.ID) {
			if h.Mode == lock.X {
				reply.HeldX = append(reply.HeldX, h)
			}
		}
		return reply, nil
	}
	s.regMu.Lock()
	s.nextClient++
	id := ident.ClientID(s.nextClient)
	s.regMu.Unlock()
	return msg.RegisterReply{ID: id, PageSize: s.store.PageSize()}, nil
}

// Lock implements msg.Server: the GLM acquisition, DCT insertion on
// first exclusive grant (§3.2), and delivery of callback origins.
func (s *Server) Lock(req msg.LockReq) (msg.LockReply, error) {
	// Hold new grants while clients that crashed together with the
	// server are still recovering (§3.5): the rebuilt GLM cannot know
	// their exclusive locks, so granting now could expose state their
	// recovery is about to supersede.
	s.waitComplexRecovered(req.Client)
	// Barrier against the callback-application race: if a callback
	// response from this client is still being applied to the GLM, a
	// fresh (non-upgrade) grant for the same resource could be clobbered
	// by the in-flight release.  Wait for the application to finish.
	if !req.Upgrade {
		s.waitInflightClear(req.Client, req.Name)
	}
	sp := s.spans.ServerStart(req.Trace, span.CatGLMQueue, req.Name.String()).WithOrigin(s.spanOrigin)
	if ctx := sp.Context(); ctx.Sampled {
		s.traceMu.Lock()
		s.lockTraces[req.Client] = ctx
		s.traceMu.Unlock()
		defer func() {
			s.traceMu.Lock()
			delete(s.lockTraces, req.Client)
			s.traceMu.Unlock()
		}()
	}
	grant, err := s.glm.Acquire(lock.Request{
		Client:     req.Client,
		Name:       req.Name,
		Mode:       req.Mode,
		PreferPage: req.PreferPage,
		Upgrade:    req.Upgrade,
	})
	sp.End()
	if err != nil {
		return msg.LockReply{}, err
	}
	if grant.FirstX {
		sh := s.shardOf(grant.Name.Page)
		sh.mu.Lock()
		key := dctKey{pg: grant.Name.Page, c: req.Client}
		if _, ok := sh.dct[key]; !ok {
			psn := page.PSN(0)
			if req.HasCached {
				psn = req.CachedPSN
			} else {
				psn = s.currentPSN(sh, grant.Name.Page)
			}
			sh.dct[key] = &dctEntry{psn: psn, redoLSN: wal.NilLSN}
		}
		delete(sh.recovered, key)
		sh.mu.Unlock()
	}
	s.originsMu.Lock()
	origins := s.pendingOrigins[req.Client]
	delete(s.pendingOrigins, req.Client)
	s.originsMu.Unlock()
	s.tracer.Record(trace.LockGrant, req.Client, grant.Name.Page,
		fmt.Sprintf("grant %v %v", grant.Name, grant.Mode))
	return msg.LockReply{Name: grant.Name, Mode: grant.Mode, Origins: origins}, nil
}

// currentPSN returns the PSN of the server's current copy of the page,
// reading it from disk into the pool if necessary.  Called with the
// page's shard mutex held.
func (s *Server) currentPSN(sh *pageShard, pid page.ID) page.PSN {
	if p, ok := s.pool.Get(pid); ok {
		return p.PSN()
	}
	p, err := s.store.Read(pid)
	if err != nil {
		return 0
	}
	s.pool.Put(p, false)
	return p.PSN()
}

// Unlock implements msg.Server.
func (s *Server) Unlock(req msg.UnlockReq) error {
	switch req.Action {
	case msg.ActionRelease:
		s.glm.Release(req.Client, req.Name)
	case msg.ActionDowngrade:
		s.glm.Downgrade(req.Client, req.Name)
	case msg.ActionDeescalate:
		s.glm.Deescalate(req.Client, req.Name.Page, req.Objs)
	default:
		return fmt.Errorf("core: unknown unlock action %d", req.Action)
	}
	return nil
}

// Fetch implements msg.Server: it returns the server's current copy and
// the DCT PSN for this client (§3.2: sent along with every page; the
// client ignores it during normal processing and installs it during
// restart recovery).
func (s *Server) Fetch(req msg.FetchReq) (msg.FetchReply, error) {
	sh := s.shardOf(req.Page)
	sh.mu.Lock()
	reply, err := s.fetchShard(sh, req.Client, req.Page)
	sh.mu.Unlock()
	s.evict()
	return reply, err
}

// fetchShard builds a FetchReply for (client, page).  Called with
// sh.mu held; the caller runs s.evict() after releasing the shard.
func (s *Server) fetchShard(sh *pageShard, c ident.ClientID, pid page.ID) (msg.FetchReply, error) {
	p, ok := s.pool.Get(pid)
	if !ok {
		read, err := s.store.Read(pid)
		if err != nil {
			return msg.FetchReply{}, err
		}
		s.pool.Put(read, false)
		p = read
	}
	img, err := p.MarshalBinary()
	if err != nil {
		return msg.FetchReply{}, err
	}
	var psn page.PSN
	if e, ok := sh.dct[dctKey{pg: pid, c: c}]; ok {
		psn = e.psn
	}
	return msg.FetchReply{Image: img, DCTPSN: psn}, nil
}

// Ship implements msg.Server: the §2 merge procedure plus DCT and
// flush-notification bookkeeping.
func (s *Server) Ship(req msg.ShipReq) error {
	incoming := new(page.Page)
	if err := incoming.UnmarshalBinary(req.Image); err != nil {
		return err
	}
	sh := s.shardOf(incoming.ID())
	sh.mu.Lock()
	err := s.receiveShard(sh, req.Client, incoming, req.Reason)
	sh.mu.Unlock()
	s.evict()
	s.enforceDirtyLimit()
	// Ship returns only after queued flush notifications are delivered
	// (the client's §3.6 DPT/log-space bookkeeping keys off them); the
	// drain goroutine does the delivery, so no shard mutex is held
	// across client I/O.
	s.notifyBarrier()
	return err
}

// enforceDirtyLimit plays background disk writer: while the pool holds
// more dirty pages than the configured limit, dirty pages are forced to
// disk.  Runs without holding any shard mutex; each force takes its
// page's shard.
func (s *Server) enforceDirtyLimit() {
	if s.cfg.ServerDirtyLimit <= 0 {
		return
	}
	dirty := s.pool.DirtyIDs()
	for len(dirty) > s.cfg.ServerDirtyLimit {
		pid := dirty[0]
		dirty = dirty[1:]
		sh := s.shardOf(pid)
		sh.mu.Lock()
		_, err := s.forcePageShard(sh, pid)
		sh.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// receiveShard merges a page received from a client into the pool and
// updates the DCT entry for (page, client) with the PSN present on the
// received copy (§3.1, §3.2).  Called with sh.mu held.
func (s *Server) receiveShard(sh *pageShard, c ident.ClientID, incoming *page.Page, reason msg.ShipReason) error {
	pid := incoming.ID()
	key := dctKey{pg: pid, c: c}
	if e, ok := sh.dct[key]; ok {
		if incoming.PSN() > e.psn {
			e.psn = incoming.PSN()
		}
	} else {
		sh.dct[key] = &dctEntry{psn: incoming.PSN(), redoLSN: wal.NilLSN}
	}
	s.tracer.Record(trace.PageShip, c, pid, fmt.Sprintf("reason=%d psn=%d", reason, incoming.PSN()))
	cur, ok := s.pool.Get(pid)
	if !ok {
		// §2: read the disk version first, then merge.
		read, err := s.store.Read(pid)
		if err != nil {
			return err
		}
		cur = read
	}
	merged := page.Merge(cur, incoming)
	s.Metrics.Merges.Add(1)
	s.tracer.Record(trace.PageMerge, c, pid, fmt.Sprintf("psn=%d", merged.PSN()))
	s.pool.Put(merged, true)
	if reason == msg.ShipReplace {
		set := sh.shippedBy[pid]
		if set == nil {
			set = make(map[ident.ClientID]bool)
			sh.shippedBy[pid] = set
		}
		set[c] = true
	}
	if reason == msg.ShipRecovery {
		s.markRecovered(sh, pid, c)
	}
	return nil
}

// pendingNotify is one queued flush notification; the drain goroutine
// resolves the client id to a conn at delivery time so no shard mutex
// is ever held across client I/O.
type pendingNotify struct {
	client ident.ClientID
	pid    page.ID
	psn    page.PSN
}

// evict brings the pool back under capacity, forcing dirty victims to
// disk (steal policy).  It runs without holding any shard mutex:
// victims are peeked first, then removed under their own shard so a
// concurrent merge cannot update a copy already on its way to disk.
func (s *Server) evict() {
	for s.pool.NeedsEviction() {
		pid, ok := s.pool.EvictCandidate()
		if !ok {
			return // everything pinned; let the pool run over capacity
		}
		sh := s.shardOf(pid)
		sh.mu.Lock()
		victim, dirty, removed := s.pool.Remove(pid)
		if removed && dirty {
			s.forceImageShard(sh, victim)
		}
		sh.mu.Unlock()
		if !removed {
			// Lost the race (re-gotten or pinned meanwhile); try the next
			// candidate rather than spinning on this one.
			return
		}
	}
}

// forcePageShard forces the current copy of pid to disk.  Called with
// sh.mu held.
func (s *Server) forcePageShard(sh *pageShard, pid page.ID) (page.PSN, error) {
	p, ok := s.pool.Get(pid)
	if !ok {
		// Nothing cached: the disk version is current.
		psn := s.currentPSN(sh, pid)
		s.queueNotifyShard(sh, pid, psn)
		return psn, nil
	}
	if !s.pool.IsDirty(pid) {
		s.queueNotifyShard(sh, pid, p.PSN())
		return p.PSN(), nil
	}
	if err := s.forceImageShard(sh, p); err != nil {
		return 0, err
	}
	s.pool.Clean(pid)
	return p.PSN(), nil
}

// forceImageShard writes the replacement log record (§3.1) and then the
// page in place.  Called with sh.mu held (the page hashes to sh).
func (s *Server) forceImageShard(sh *pageShard, p *page.Page) error {
	pid := p.ID()
	rec := &wal.Replacement{Page: pid, PagePSN: p.PSN()}
	for k, e := range sh.dct {
		if k.pg == pid {
			rec.Entries = append(rec.Entries, wal.ReplEntry{Client: k.c, PSN: e.psn})
		}
	}
	lsn, err := s.slog.AppendAndForce(rec)
	if err != nil {
		return err
	}
	s.Metrics.Replacements.Add(1)
	s.tracer.Record(trace.Replacement, 0, pid, fmt.Sprintf("psn=%d entries=%d", p.PSN(), len(rec.Entries)))
	if err := s.store.Write(p); err != nil {
		return err
	}
	s.Metrics.PageForces.Add(1)
	s.tracer.Record(trace.PageForce, 0, pid, "")
	// §3.2 assigns the first replacement record's LSN to a NULL RedoLSN;
	// we additionally advance it on every force.  Property 2 only ever
	// needs the replacement record whose PSN matches the page's disk PSN
	// — the most recent force — so earlier records for this page are
	// obsolete and keeping RedoLSN at the newest one lets the server
	// checkpoint reclaim its log (the server-side analog of §3.6).
	// Entries whose client holds no exclusive locks on the page are
	// dropped now that the page is on disk.  (HoldsAnyX takes a GLM
	// shard mutex under this page shard; safe because the GLM never
	// holds its mutexes across calls into the server.)
	for k, e := range sh.dct {
		if k.pg != pid {
			continue
		}
		e.redoLSN = lsn
		if !s.glm.HoldsAnyX(k.c, pid) {
			delete(sh.dct, k)
		}
	}
	s.queueNotifyShard(sh, pid, p.PSN())
	return nil
}

// queueNotifyShard queues flush notifications for the clients that
// shipped the page since the last force.  Called with sh.mu held;
// notifyMu nests below the shard mutex, and delivery happens on the
// drain goroutine.
func (s *Server) queueNotifyShard(sh *pageShard, pid page.ID, psn page.PSN) {
	set := sh.shippedBy[pid]
	if len(set) == 0 {
		return
	}
	delete(sh.shippedBy, pid)
	s.notifyMu.Lock()
	for c := range set {
		s.notifyPending = append(s.notifyPending, pendingNotify{client: c, pid: pid, psn: psn})
	}
	if !s.notifyDraining {
		s.notifyDraining = true
		s.notifyIdle = make(chan struct{})
		go s.drainNotify()
	}
	s.notifyMu.Unlock()
}

// drainNotify delivers queued flush notifications until the queue is
// empty, then exits (a later enqueue spawns a fresh drainer).
func (s *Server) drainNotify() {
	for {
		s.notifyMu.Lock()
		if len(s.notifyPending) == 0 {
			s.notifyDraining = false
			close(s.notifyIdle)
			s.notifyMu.Unlock()
			return
		}
		batch := s.notifyPending
		s.notifyPending = nil
		s.notifyMu.Unlock()
		for _, n := range batch {
			if conn := s.conn(n.client); conn != nil {
				conn.NotifyFlushed(n.pid, n.psn)
			}
		}
	}
}

// notifyBarrier blocks until every queued flush notification has been
// delivered.  Force and FlushAll use it so the client's §3.6 log-space
// bookkeeping has advanced by the time the reply arrives (NotifyFlushed
// is lossy by contract, but the synchronous paths stay deterministic).
func (s *Server) notifyBarrier() {
	for {
		s.notifyMu.Lock()
		if !s.notifyDraining && len(s.notifyPending) == 0 {
			s.notifyMu.Unlock()
			return
		}
		ch := s.notifyIdle
		s.notifyMu.Unlock()
		<-ch
	}
}

// Force implements msg.Server: §3.6 — a client out of log space asks
// the server to force a page so its min RedoLSN can advance.  The reply
// carries the forced copy's PSN so the caller knows which of its ships
// the force covered.
func (s *Server) Force(req msg.ForceReq) (msg.ForceReply, error) {
	sh := s.shardOf(req.Page)
	sh.mu.Lock()
	psn, err := s.forcePageShard(sh, req.Page)
	sh.mu.Unlock()
	s.notifyBarrier()
	return msg.ForceReply{PSN: psn}, err
}

// Alloc implements msg.Server: allocates a page, grants the client an
// exclusive page lock on it, and inserts the DCT entry (first X grant).
// The DCT entry is inserted before the lock so the "X held ⇒ DCT entry"
// invariant never has a visible gap.
func (s *Server) Alloc(req msg.AllocReq) (msg.FetchReply, error) {
	p, err := s.store.Allocate()
	if err != nil {
		return msg.FetchReply{}, err
	}
	sh := s.shardOf(p.ID())
	sh.mu.Lock()
	s.pool.Put(p, false)
	sh.dct[dctKey{pg: p.ID(), c: req.Client}] = &dctEntry{psn: p.PSN(), redoLSN: wal.NilLSN}
	img, merr := p.MarshalBinary()
	sh.mu.Unlock()
	if merr != nil {
		return msg.FetchReply{}, merr
	}
	s.glm.Install(req.Client, lock.PageName(p.ID()), lock.X)
	s.evict()
	return msg.FetchReply{Image: img, DCTPSN: p.PSN()}, nil
}

// Free implements msg.Server.  Before deallocating, the page's PSN on
// disk is raised to the highest PSN the server knows about (pool copy,
// DCT entries, the client-supplied view), so the Mohan-Narang seed of a
// future reincarnation stays above every log record ever written for
// the dead incarnation.
func (s *Server) Free(req msg.FreeReq) error {
	sh := s.shardOf(req.Page)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	best := s.currentPSN(sh, req.Page)
	for k, e := range sh.dct {
		if k.pg == req.Page && e.psn > best {
			best = e.psn
		}
	}
	if p, ok := s.pool.Get(req.Page); ok {
		if p.PSN() < best {
			p.SetPSN(best)
		}
		if err := s.store.Write(p); err != nil {
			return err
		}
	} else if disk, err := s.store.Read(req.Page); err == nil && disk.PSN() < best {
		disk.SetPSN(best)
		if err := s.store.Write(disk); err != nil {
			return err
		}
	}
	s.pool.Drop(req.Page)
	for k := range sh.dct {
		if k.pg == req.Page {
			delete(sh.dct, k)
		}
	}
	delete(sh.shippedBy, req.Page)
	delete(sh.tokens, req.Page)
	return s.store.Free(req.Page)
}

// CommitShip implements msg.Server (ARIES/CSA- and Versant-style
// baselines): the shipped log records are appended to the server log
// and forced; shipped pages are merged.
func (s *Server) CommitShip(req msg.CommitShipReq) error {
	sp := s.spans.ServerStart(req.Trace, span.CatCommitProc, "").WithOrigin(s.spanOrigin)
	defer sp.End()
	for _, raw := range req.Records {
		if _, err := s.slog.AppendEncoded(raw); err != nil {
			return err
		}
	}
	if err := s.slog.ForceAll(); err != nil {
		return err
	}
	for _, img := range req.Pages {
		p := new(page.Page)
		if err := p.UnmarshalBinary(img); err != nil {
			return err
		}
		sh := s.shardOf(p.ID())
		sh.mu.Lock()
		err := s.receiveShard(sh, req.Client, p, msg.ShipCommit)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	s.evict()
	return nil
}

// Token implements msg.Server (update-privilege baseline): the token
// migrates to the requester; the page travels with it, recalled from
// the previous owner if necessary.
func (s *Server) Token(req msg.TokenReq) (msg.TokenReply, error) {
	sh := s.shardOf(req.Page)
	sh.mu.Lock()
	owner, owned := sh.tokens[req.Page]
	sh.mu.Unlock()
	if owned && owner != req.Client {
		conn := s.conn(owner)
		if conn != nil {
			reply, err := conn.RecallToken(req.Page)
			if err != nil {
				return msg.TokenReply{}, err
			}
			if len(reply.Image) > 0 {
				p := new(page.Page)
				if err := p.UnmarshalBinary(reply.Image); err != nil {
					return msg.TokenReply{}, err
				}
				sh.mu.Lock()
				err := s.receiveShard(sh, owner, p, msg.ShipCallback)
				sh.mu.Unlock()
				if err != nil {
					return msg.TokenReply{}, err
				}
			}
		}
		s.Metrics.TokenTransfers.Add(1)
	}
	sh.mu.Lock()
	sh.tokens[req.Page] = req.Client
	reply, err := s.fetchShard(sh, req.Client, req.Page)
	sh.mu.Unlock()
	if err != nil {
		return msg.TokenReply{}, err
	}
	return msg.TokenReply{Image: reply.Image}, nil
}

// RecoverEnd implements msg.Server: the client finished §3.3 restart
// recovery.
func (s *Server) RecoverEnd(c ident.ClientID) error {
	s.glm.ClientRecovered(c)
	s.complexMu.Lock()
	if s.complexPending[c] {
		delete(s.complexPending, c)
		for _, ch := range s.complexWait {
			close(ch)
		}
		s.complexWait = nil
	}
	s.complexMu.Unlock()
	return nil
}

// waitComplexRecovered blocks new grants until every client that
// crashed with the server has recovered (or the configured lock
// timeout passes — an operator who never restarts a crashed client
// must SurrogateRecover it instead).  Recovering clients themselves
// are not blocked.
func (s *Server) waitComplexRecovered(requester ident.ClientID) {
	deadline := time.Now().Add(s.cfg.LockTimeout)
	s.complexMu.Lock()
	for {
		if len(s.complexPending) == 0 || s.complexPending[requester] {
			s.complexMu.Unlock()
			return
		}
		ch := make(chan struct{})
		s.complexWait = append(s.complexWait, ch)
		s.complexMu.Unlock()
		select {
		case <-ch:
		case <-time.After(time.Until(deadline)):
			return
		}
		s.complexMu.Lock()
	}
}

// Disconnect implements msg.Server: a cleanly departing client (it must
// have shipped its dirty pages first) gives up all its locks.
func (s *Server) Disconnect(c ident.ClientID) error {
	s.glm.ReleaseAll(c)
	s.regMu.Lock()
	delete(s.clients, c)
	s.regMu.Unlock()
	s.originsMu.Lock()
	delete(s.pendingOrigins, c)
	s.originsMu.Unlock()
	return nil
}

// ClientCrashed implements the §3.3 server-side reaction: shared locks
// of the crashed client are released, exclusive locks retained, and
// callbacks against them queued until the client recovers.
func (s *Server) ClientCrashed(c ident.ClientID) {
	s.glm.ClientCrashed(c)
}

// Checkpoint writes a server checkpoint record carrying the DCT (§3.2)
// and then reclaims the server-log prefix that restart recovery can no
// longer need: everything below the minimum RedoLSN in the DCT (the
// §3.4 scan never starts earlier) and below the checkpoint itself.
func (s *Server) Checkpoint() error {
	rec := &wal.ServerCheckpoint{}
	for i := range s.pageShards {
		sh := &s.pageShards[i]
		sh.mu.Lock()
		for k, e := range sh.dct {
			rec.DCT = append(rec.DCT, wal.DCTEntry{Page: k.pg, Client: k.c, PSN: e.psn, RedoLSN: e.redoLSN})
		}
		sh.mu.Unlock()
	}
	lsn, err := s.slog.AppendAndForce(rec)
	if err != nil {
		return err
	}
	horizon := lsn
	for i := range s.pageShards {
		sh := &s.pageShards[i]
		sh.mu.Lock()
		for _, e := range sh.dct {
			if e.redoLSN != wal.NilLSN && e.redoLSN < horizon {
				horizon = e.redoLSN
			}
		}
		sh.mu.Unlock()
	}
	return s.slog.Reclaim(horizon)
}

// FlushAll forces every dirty page to disk (used by orderly shutdown
// and by tests that want a clean disk state).  All pending flush
// notifications are delivered before it returns.
func (s *Server) FlushAll() error {
	for _, pid := range s.pool.DirtyIDs() {
		sh := s.shardOf(pid)
		sh.mu.Lock()
		_, err := s.forcePageShard(sh, pid)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	s.notifyBarrier()
	return nil
}

// Crash simulates a server crash: the pool, DCT, GLM and token table
// evaporate; stable storage and the server log (its durable prefix)
// survive.  The cluster then constructs a fresh Server over the same
// store/log and runs RecoverServer.
func (s *Server) Crash() {
	s.glm.Stop()
	if ms, ok := s.slog.Store().(*wal.MemStore); ok {
		ms.Crash()
	}
	s.pool.Clear()
}

// DCTSnapshot returns a copy of the DCT (tests assert Properties 1-2
// against it).
func (s *Server) DCTSnapshot() map[dctKey]dctEntry {
	out := make(map[dctKey]dctEntry)
	for i := range s.pageShards {
		sh := &s.pageShards[i]
		sh.mu.Lock()
		for k, e := range sh.dct {
			out[k] = *e
		}
		sh.mu.Unlock()
	}
	return out
}

// MutexWaitNanos returns the cumulative time callers spent blocked on
// the server's subsystem locks (registry, page shards, notify queue and
// the leaf maps) plus the GLM's shard mutexes.  The benchmarks read it
// to attribute throughput differences to lock contention directly.
func (s *Server) MutexWaitNanos() uint64 {
	lw := &s.lockWait
	return lw.registry.Load() + lw.pageShard.Load() + lw.notify.Load() +
		lw.origins.Load() + lw.inflight.Load() + lw.complex.Load() +
		s.glm.Metrics.MutexWait.Load()
}

// PagePSN returns the server's current PSN for the page: the pooled
// copy's when cached, else the disk copy's (0 when the page does not
// exist).  The chaos harness samples it to assert PSN monotonicity.
func (s *Server) PagePSN(pid page.ID) page.PSN {
	sh := s.shardOf(pid)
	sh.mu.Lock()
	if p, ok := s.pool.Get(pid); ok {
		psn := p.PSN()
		sh.mu.Unlock()
		return psn
	}
	sh.mu.Unlock()
	disk, err := s.store.Read(pid)
	if err != nil {
		return 0
	}
	return disk.PSN()
}

// CheckInvariants verifies the cross-table consistency the recovery
// protocol depends on: every exclusive lock (page- or object-level) a
// client holds on a live page has a matching DCT entry — Property 1
// (§3.1/§3.2) is vacuous without it, because the server could not name
// the clients whose updates a page copy might miss.  It returns the
// first violation found.
func (s *Server) CheckInvariants() error {
	holdings := s.glm.AllHoldings()
	for c, holds := range holdings {
		for _, h := range holds {
			if h.Mode != lock.X {
				continue
			}
			sh := s.shardOf(h.Name.Page)
			sh.mu.Lock()
			_, ok := sh.dct[dctKey{pg: h.Name.Page, c: c}]
			sh.mu.Unlock()
			if ok {
				continue
			}
			if _, err := s.store.Read(h.Name.Page); err != nil {
				continue // freed page; locks may outlive it briefly
			}
			return fmt.Errorf("core: invariant violation: client %v holds %v in X but DCT has no (%d,%v) entry",
				c, h.Name, h.Name.Page, c)
		}
	}
	return nil
}

// DCTPSN returns the DCT PSN for (page, client) and whether the entry
// exists.
func (s *Server) DCTPSN(pid page.ID, c ident.ClientID) (page.PSN, bool) {
	sh := s.shardOf(pid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.dct[dctKey{pg: pid, c: c}]
	if !ok {
		return 0, false
	}
	return e.psn, true
}

// serverCallbacker implements lock.Callbacker: it runs the callback
// conversation with the holding client and applies the outcome to the
// GLM and the DCT.
type serverCallbacker struct{ s *Server }

// CallbackObject implements lock.Callbacker.
func (cb serverCallbacker) CallbackObject(holder, requester ident.ClientID, obj lock.Name, wanted lock.Mode) {
	go cb.s.runObjectCallback(holder, requester, obj, wanted)
}

// DeescalatePage implements lock.Callbacker.
func (cb serverCallbacker) DeescalatePage(holder, requester ident.ClientID, pg page.ID, wanted lock.Mode) {
	go cb.s.runDeescalation(holder, requester, pg, wanted)
}

func (s *Server) beginInflight(k inflightKey) bool {
	s.inflightMu.Lock()
	defer s.inflightMu.Unlock()
	if s.inflight[k] {
		return false
	}
	s.inflight[k] = true
	return true
}

func (s *Server) endInflight(k inflightKey) {
	s.inflightMu.Lock()
	delete(s.inflight, k)
	for _, ch := range s.inflightWait {
		close(ch)
	}
	s.inflightWait = nil
	s.inflightMu.Unlock()
}

// inflightTouches reports whether an in-flight callback to client c
// involves the lock name (exact object, or a page-level callback on
// its page).
func inflightTouches(k inflightKey, c ident.ClientID, name lock.Name) bool {
	if k.holder != c || k.name.Page != name.Page {
		return false
	}
	return k.name == name || k.name.IsPage || name.IsPage
}

// waitInflightClear blocks until no in-flight callback to the client
// overlaps the name.
func (s *Server) waitInflightClear(c ident.ClientID, name lock.Name) {
	s.inflightMu.Lock()
	for {
		blocked := false
		for k := range s.inflight {
			if inflightTouches(k, c, name) {
				blocked = true
				break
			}
		}
		if !blocked {
			s.inflightMu.Unlock()
			return
		}
		ch := make(chan struct{})
		s.inflightWait = append(s.inflightWait, ch)
		s.inflightMu.Unlock()
		<-ch
		s.inflightMu.Lock()
	}
}

func (s *Server) lockTrace(requester ident.ClientID) span.Context {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	return s.lockTraces[requester]
}

func (s *Server) runObjectCallback(holder, requester ident.ClientID, obj lock.Name, wanted lock.Mode) {
	k := inflightKey{holder: holder, name: obj, wanted: wanted}
	if !s.beginInflight(k) {
		return
	}
	defer s.endInflight(k)
	conn := s.conn(holder)
	if conn == nil {
		// The holder is gone without crashing (clean disconnect races);
		// release its lock so the requester makes progress.
		s.glm.Release(holder, obj)
		return
	}
	s.Metrics.CallbacksSent.Add(1)
	s.tracer.Record(trace.CallbackSent, holder, obj.Page, fmt.Sprintf("obj=%v wanted=%v for=%v", obj, wanted, requester))
	sp := s.spans.ServerStart(s.lockTrace(requester), span.CatCallback, obj.String()).WithOrigin(s.spanOrigin)
	reply, err := conn.CallbackObject(msg.CallbackReq{Requester: requester, Object: obj, Wanted: wanted})
	sp.End()
	if err != nil {
		return // holder crashed mid-callback; §3.3 handling takes over
	}
	sh := s.shardOf(obj.Page)
	sh.mu.Lock()
	if reply.HadPage {
		incoming := new(page.Page)
		if uerr := incoming.UnmarshalBinary(reply.Image); uerr == nil {
			if rerr := s.receiveShard(sh, holder, incoming, msg.ShipCallback); rerr != nil {
				sh.mu.Unlock()
				return
			}
		}
	}
	// §3.1: the requester of an exclusive lock writes a callback log
	// record containing the responder and the PSN the page had when the
	// responder sent it to the server.  When the responder had no page
	// to ship, its updates were shipped earlier and the DCT remembers
	// their PSN.
	var origin *msg.CallbackOrigin
	if wanted == lock.X {
		psn := page.PSN(0)
		if reply.HadPage {
			if p := new(page.Page); p.UnmarshalBinary(reply.Image) == nil {
				psn = p.PSN()
			}
		} else if e, ok := sh.dct[dctKey{pg: obj.Page, c: holder}]; ok {
			psn = e.psn
		}
		origin = &msg.CallbackOrigin{Object: obj.Object(), Responder: holder, PSN: psn}
	}
	sh.mu.Unlock()
	if origin != nil {
		s.originsMu.Lock()
		s.pendingOrigins[requester] = append(s.pendingOrigins[requester], *origin)
		s.originsMu.Unlock()
	}
	s.evict()
	switch {
	case reply.Released:
		s.glm.Release(holder, obj)
	case reply.Downgraded:
		s.glm.Downgrade(holder, obj)
	}
}

func (s *Server) runDeescalation(holder, requester ident.ClientID, pg page.ID, wanted lock.Mode) {
	k := inflightKey{holder: holder, name: lock.PageName(pg), wanted: wanted, deesc: true}
	if !s.beginInflight(k) {
		return
	}
	defer s.endInflight(k)
	conn := s.conn(holder)
	if conn == nil {
		s.glm.Release(holder, lock.PageName(pg))
		return
	}
	s.Metrics.Deescalations.Add(1)
	s.tracer.Record(trace.DeescSent, holder, pg, fmt.Sprintf("wanted=%v for=%v", wanted, requester))
	sp := s.spans.ServerStart(s.lockTrace(requester), span.CatDeesc, lock.PageName(pg).String()).WithOrigin(s.spanOrigin)
	reply, err := conn.DeescalatePage(msg.DeescReq{Requester: requester, Page: pg, Wanted: wanted})
	sp.End()
	if err != nil {
		return
	}
	if reply.HadPage {
		incoming := new(page.Page)
		if uerr := incoming.UnmarshalBinary(reply.Image); uerr == nil {
			sh := s.shardOf(pg)
			sh.mu.Lock()
			rerr := s.receiveShard(sh, holder, incoming, msg.ShipCallback)
			sh.mu.Unlock()
			if rerr != nil {
				return
			}
			s.evict()
		}
	}
	s.glm.Deescalate(holder, pg, reply.Objs)
}

// DebugInflight renders the in-flight callback table (debug tooling).
func (s *Server) DebugInflight() string {
	s.inflightMu.Lock()
	defer s.inflightMu.Unlock()
	out := ""
	for k := range s.inflight {
		out += fmt.Sprintf("inflight: holder=%v name=%v wanted=%v deesc=%v\n", k.holder, k.name, k.wanted, k.deesc)
	}
	out += fmt.Sprintf("inflightWaiters=%d\n", len(s.inflightWait))
	return out
}

// DebugPage renders the server's view of a page — pool copy, dirty
// flag, per-slot PSNs and the DCT rows (debug tooling).
func (s *Server) DebugPage(pid page.ID) string {
	sh := s.shardOf(pid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := ""
	if p, ok := s.pool.Get(pid); ok {
		out += fmt.Sprintf("server pool: psn=%d dirty=%v slots:", p.PSN(), s.pool.IsDirty(pid))
		for _, sl := range p.UsedSlotIDs() {
			d, _ := p.Read(sl)
			out += fmt.Sprintf(" %d@%d=%x", sl, p.SlotPSN(sl), d[:4])
		}
		out += "\n"
	} else {
		out += "server pool: not cached\n"
	}
	for k, e := range sh.dct {
		if k.pg == pid {
			out += fmt.Sprintf("dct[%v]: psn=%d redo=%v\n", k.c, e.psn, e.redoLSN)
		}
	}
	return out
}
