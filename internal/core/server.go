package core

import (
	"fmt"
	"sync"
	"time"

	"clientlog/internal/buffer"
	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/msg"
	"clientlog/internal/obs"
	"clientlog/internal/obs/span"
	"clientlog/internal/page"
	"clientlog/internal/storage"
	"clientlog/internal/trace"
	"clientlog/internal/wal"
)

// ServerMetrics counts server-side protocol events for the experiments.
type ServerMetrics struct {
	Merges         obs.Counter // page-copy merges performed (§2)
	PageForces     obs.Counter // pages written in place to disk
	Replacements   obs.Counter // replacement log records written (§3.1)
	TokenTransfers obs.Counter // update-token migrations (baseline)
	CallbacksSent  obs.Counter // object callbacks issued
	Deescalations  obs.Counter // page de-escalation callbacks issued
	RecoverySteps  obs.Counter // §3.4/§3.5 recovery steps executed
}

// dctKey identifies a DCT entry: one (page, client) pair.
type dctKey struct {
	pg page.ID
	c  ident.ClientID
}

// dctEntry is one dirty-client-table row (§3.2): the PSN the page had
// the last time it was received from the client (or at the first
// exclusive grant), and the LSN of the first replacement log record
// written for the page after the entry appeared.
type dctEntry struct {
	psn     page.PSN
	redoLSN wal.LSN
}

// Server is the page server: stable storage, the server buffer pool,
// the global lock manager, the server log (replacement records and
// checkpoints) and the DCT.  It implements msg.Server.
type Server struct {
	cfg   Config
	glm   *lock.GLM
	store storage.Store
	slog  *wal.Log
	pool  *buffer.Pool

	mu         sync.Mutex
	dct        map[dctKey]*dctEntry
	clients    map[ident.ClientID]msg.Client
	nextClient uint32
	// shippedBy tracks, per page, the clients that replaced the page to
	// the server since the last force; they get a flush notification so
	// their DPT/log-space bookkeeping advances (§3.2, §3.6).
	shippedBy map[page.ID]map[ident.ClientID]bool
	// tokens maps pages to their update-token owner (baseline mode).
	tokens map[page.ID]ident.ClientID
	// pendingOrigins collects, per requesting client, the callback
	// origins its next Lock reply must carry so it can write callback
	// log records (§3.1).
	pendingOrigins map[ident.ClientID][]msg.CallbackOrigin
	// inflight dedupes concurrent identical callbacks.
	inflight map[inflightKey]bool
	// remoteLogs hosts diskless clients' private logs (Section 2).
	remoteLogs *RemoteLogHost
	// inflightWait holds Lock requests blocked behind in-flight
	// callback applications (see waitInflightClear).
	inflightWait []chan struct{}
	// complexPending counts clients that crashed together with the
	// server and have not finished §3.5 recovery.  While it is nonzero,
	// new GLM grants wait: the rebuilt lock tables cannot contain the
	// crashed clients' exclusive locks (lock tables are volatile, paper
	// claim 7), so granting in that window could hand out pages whose
	// freshest state is still being recovered.
	complexPending map[ident.ClientID]bool
	complexWait    []chan struct{}
	// recovering marks (page, client) pairs with an in-flight §3.4 page
	// recovery; recovered marks completed ones.  RecoveryFetch consults
	// both: a pair that was never recovering has all its durable state
	// in the server's copy already.
	recovering    map[dctKey]bool
	recovered     map[dctKey]bool
	recWaiter     []chan struct{}
	notifyPending []pendingNotify
	restart       *restartInfo
	stopped       bool

	Metrics ServerMetrics
	tracer  trace.Recorder
	// spans stages the server's side of sampled transactions (GLM queue
	// waits, callback round trips, commit processing); nil disables it.
	spans *span.Store
	// lockTraces maps a client with a sampled Lock in flight to its GLM
	// queue-wait span, so the callbacks that wait triggers can parent
	// under it.  Best-effort: a client running concurrent transactions
	// keeps only the newest entry.  Guarded by mu.
	lockTraces map[ident.ClientID]span.Context
}

// SetTracer installs a protocol-event recorder (default: discard).
// Install it before the server starts handling requests.
func (s *Server) SetTracer(r trace.Recorder) {
	if r == nil {
		r = trace.Nop{}
	}
	s.tracer = r
}

// RegisterObs binds the server's metrics — its own protocol counters
// plus the server log, buffer pool and global lock manager — into reg
// under scope=server.  Safe to call on every restart: the registry sums
// all engines ever bound to a series, so /metrics stays monotone while
// each engine's own Metrics start from zero.
func (s *Server) RegisterObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	sc := obs.T("scope", "server")
	reg.BindCounter(&s.Metrics.Merges, "server_merges_total", sc)
	reg.BindCounter(&s.Metrics.PageForces, "server_page_forces_total", sc)
	reg.BindCounter(&s.Metrics.Replacements, "server_replacements_total", sc)
	reg.BindCounter(&s.Metrics.TokenTransfers, "server_token_transfers_total", sc)
	reg.BindCounter(&s.Metrics.CallbacksSent, "server_callbacks_sent_total", sc)
	reg.BindCounter(&s.Metrics.Deescalations, "server_deescalations_total", sc)
	reg.BindCounter(&s.Metrics.RecoverySteps, "server_recovery_steps_total", sc)
	s.slog.RegisterObs(reg, sc)
	s.pool.RegisterObs(reg, sc)
	s.glm.RegisterObs(reg, sc)
}

type inflightKey struct {
	holder ident.ClientID
	name   lock.Name
	wanted lock.Mode
	deesc  bool
}

// NewServer builds a server engine over existing stable storage and a
// server log (both survive crashes; a restart constructs a fresh Server
// over the same store and log and then runs RecoverServer).
func NewServer(cfg Config, store storage.Store, logStore wal.Store) *Server {
	s := &Server{
		cfg:            cfg,
		store:          store,
		slog:           wal.NewLog(logStore),
		pool:           buffer.New(cfg.ServerPool),
		dct:            make(map[dctKey]*dctEntry),
		clients:        make(map[ident.ClientID]msg.Client),
		shippedBy:      make(map[page.ID]map[ident.ClientID]bool),
		tokens:         make(map[page.ID]ident.ClientID),
		pendingOrigins: make(map[ident.ClientID][]msg.CallbackOrigin),
		inflight:       make(map[inflightKey]bool),
		complexPending: make(map[ident.ClientID]bool),
		recovering:     make(map[dctKey]bool),
		recovered:      make(map[dctKey]bool),
		spans:          cfg.Spans,
		lockTraces:     make(map[ident.ClientID]span.Context),
	}
	s.glm = lock.NewGLM(nil, cfg.LockTimeout)
	s.glm.SetCallbacker(serverCallbacker{s})
	s.tracer = trace.Nop{}
	return s
}

// GLM exposes the global lock manager (tests and recovery use it).
func (s *Server) GLM() *lock.GLM { return s.glm }

// Log exposes the server log (experiments read its byte counters).
func (s *Server) Log() *wal.Log { return s.slog }

// Store exposes stable storage (experiments read its I/O counters).
func (s *Server) Store() storage.Store { return s.store }

// Attach connects a client conn under the given id; the transport layer
// calls it right after Register.
func (s *Server) Attach(id ident.ClientID, conn msg.Client) {
	s.mu.Lock()
	s.clients[id] = conn
	if uint32(id) >= s.nextClient {
		s.nextClient = uint32(id)
	}
	s.mu.Unlock()
}

// conn returns the transport handle for a client.
func (s *Server) conn(id ident.ClientID) msg.Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clients[id]
}

// Register implements msg.Server.
func (s *Server) Register(req msg.RegisterReq) (msg.RegisterReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Recover {
		// §3.3: a crashed client reconnects; the server hands it the
		// exclusive locks it retained and the DCT rows that bound the
		// set of pages needing recovery.
		reply := msg.RegisterReply{ID: req.ID, PageSize: s.store.PageSize()}
		for _, h := range s.glm.HeldBy(req.ID) {
			if h.Mode == lock.X {
				reply.HeldX = append(reply.HeldX, h)
			}
		}
		return reply, nil
	}
	s.nextClient++
	return msg.RegisterReply{ID: ident.ClientID(s.nextClient), PageSize: s.store.PageSize()}, nil
}

// Lock implements msg.Server: the GLM acquisition, DCT insertion on
// first exclusive grant (§3.2), and delivery of callback origins.
func (s *Server) Lock(req msg.LockReq) (msg.LockReply, error) {
	// Hold new grants while clients that crashed together with the
	// server are still recovering (§3.5): the rebuilt GLM cannot know
	// their exclusive locks, so granting now could expose state their
	// recovery is about to supersede.
	s.waitComplexRecovered(req.Client)
	// Barrier against the callback-application race: if a callback
	// response from this client is still being applied to the GLM, a
	// fresh (non-upgrade) grant for the same resource could be clobbered
	// by the in-flight release.  Wait for the application to finish.
	if !req.Upgrade {
		s.waitInflightClear(req.Client, req.Name)
	}
	sp := s.spans.ServerStart(req.Trace, span.CatGLMQueue, req.Name.String())
	if ctx := sp.Context(); ctx.Sampled {
		s.mu.Lock()
		s.lockTraces[req.Client] = ctx
		s.mu.Unlock()
		defer func() {
			s.mu.Lock()
			delete(s.lockTraces, req.Client)
			s.mu.Unlock()
		}()
	}
	grant, err := s.glm.Acquire(lock.Request{
		Client:     req.Client,
		Name:       req.Name,
		Mode:       req.Mode,
		PreferPage: req.PreferPage,
		Upgrade:    req.Upgrade,
	})
	sp.End()
	if err != nil {
		return msg.LockReply{}, err
	}
	s.mu.Lock()
	if grant.FirstX {
		key := dctKey{pg: grant.Name.Page, c: req.Client}
		if _, ok := s.dct[key]; !ok {
			psn := page.PSN(0)
			if req.HasCached {
				psn = req.CachedPSN
			} else {
				psn = s.currentPSNLocked(grant.Name.Page)
			}
			s.dct[key] = &dctEntry{psn: psn, redoLSN: wal.NilLSN}
		}
		delete(s.recovered, dctKey{pg: grant.Name.Page, c: req.Client})
	}
	origins := s.pendingOrigins[req.Client]
	delete(s.pendingOrigins, req.Client)
	s.mu.Unlock()
	s.tracer.Record(trace.LockGrant, req.Client, grant.Name.Page,
		fmt.Sprintf("grant %v %v", grant.Name, grant.Mode))
	return msg.LockReply{Name: grant.Name, Mode: grant.Mode, Origins: origins}, nil
}

// currentPSNLocked returns the PSN of the server's current copy of the
// page, reading it from disk into the pool if necessary.  Called with
// s.mu held.
func (s *Server) currentPSNLocked(pid page.ID) page.PSN {
	if p, ok := s.pool.Get(pid); ok {
		return p.PSN()
	}
	p, err := s.store.Read(pid)
	if err != nil {
		return 0
	}
	s.pool.Put(p, false)
	return p.PSN()
}

// Unlock implements msg.Server.
func (s *Server) Unlock(req msg.UnlockReq) error {
	switch req.Action {
	case msg.ActionRelease:
		s.glm.Release(req.Client, req.Name)
	case msg.ActionDowngrade:
		s.glm.Downgrade(req.Client, req.Name)
	case msg.ActionDeescalate:
		s.glm.Deescalate(req.Client, req.Name.Page, req.Objs)
	default:
		return fmt.Errorf("core: unknown unlock action %d", req.Action)
	}
	return nil
}

// Fetch implements msg.Server: it returns the server's current copy and
// the DCT PSN for this client (§3.2: sent along with every page; the
// client ignores it during normal processing and installs it during
// restart recovery).
func (s *Server) Fetch(req msg.FetchReq) (msg.FetchReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fetchLocked(req.Client, req.Page)
}

func (s *Server) fetchLocked(c ident.ClientID, pid page.ID) (msg.FetchReply, error) {
	p, ok := s.pool.Get(pid)
	if !ok {
		read, err := s.store.Read(pid)
		if err != nil {
			return msg.FetchReply{}, err
		}
		s.pool.Put(read, false)
		p = read
		s.evictLocked()
	}
	img, err := p.MarshalBinary()
	if err != nil {
		return msg.FetchReply{}, err
	}
	var psn page.PSN
	if e, ok := s.dct[dctKey{pg: pid, c: c}]; ok {
		psn = e.psn
	}
	return msg.FetchReply{Image: img, DCTPSN: psn}, nil
}

// Ship implements msg.Server: the §2 merge procedure plus DCT and
// flush-notification bookkeeping.
func (s *Server) Ship(req msg.ShipReq) error {
	incoming := new(page.Page)
	if err := incoming.UnmarshalBinary(req.Image); err != nil {
		return err
	}
	s.mu.Lock()
	err := s.receiveLocked(req.Client, incoming, req.Reason)
	s.evictLocked()
	s.enforceDirtyLimitLocked()
	notify := s.drainNotifyLocked()
	s.mu.Unlock()
	sendNotifications(notify)
	return err
}

// enforceDirtyLimitLocked plays background disk writer: while the pool
// holds more dirty pages than the configured limit, the oldest dirty
// pages are forced to disk.  Called with s.mu held.
func (s *Server) enforceDirtyLimitLocked() {
	if s.cfg.ServerDirtyLimit <= 0 {
		return
	}
	dirty := s.pool.DirtyIDs()
	for len(dirty) > s.cfg.ServerDirtyLimit {
		pid := dirty[0]
		dirty = dirty[1:]
		if _, err := s.forcePageLocked(pid); err != nil {
			return
		}
	}
}

// receiveLocked merges a page received from a client into the pool and
// updates the DCT entry for (page, client) with the PSN present on the
// received copy (§3.1, §3.2).  Called with s.mu held.
func (s *Server) receiveLocked(c ident.ClientID, incoming *page.Page, reason msg.ShipReason) error {
	pid := incoming.ID()
	key := dctKey{pg: pid, c: c}
	if e, ok := s.dct[key]; ok {
		if incoming.PSN() > e.psn {
			e.psn = incoming.PSN()
		}
	} else {
		s.dct[key] = &dctEntry{psn: incoming.PSN(), redoLSN: wal.NilLSN}
	}
	s.tracer.Record(trace.PageShip, c, pid, fmt.Sprintf("reason=%d psn=%d", reason, incoming.PSN()))
	cur, ok := s.pool.Get(pid)
	if !ok {
		// §2: read the disk version first, then merge.
		read, err := s.store.Read(pid)
		if err != nil {
			return err
		}
		cur = read
	}
	merged := page.Merge(cur, incoming)
	s.Metrics.Merges.Add(1)
	s.tracer.Record(trace.PageMerge, c, pid, fmt.Sprintf("psn=%d", merged.PSN()))
	s.pool.Put(merged, true)
	if reason == msg.ShipReplace {
		set := s.shippedBy[pid]
		if set == nil {
			set = make(map[ident.ClientID]bool)
			s.shippedBy[pid] = set
		}
		set[c] = true
	}
	if reason == msg.ShipRecovery {
		s.markRecoveredLocked(pid, c)
	}
	s.wakeRecoveryWaitersLocked()
	return nil
}

// pendingNotify pairs a client conn with the page id and forced PSN it
// must be told about.
type pendingNotify struct {
	conn msg.Client
	pid  page.ID
	psn  page.PSN
}

// evictLocked brings the pool back under capacity, forcing dirty
// victims to disk (steal policy).  Called with s.mu held; the returned
// notifications are queued on s.notifyQueue by forcePageLocked.
func (s *Server) evictLocked() {
	for s.pool.NeedsEviction() {
		victim, dirty, err := s.pool.EvictVictim()
		if err != nil {
			return // everything pinned; let the pool run over capacity
		}
		if dirty {
			s.forceImageLocked(victim)
		}
	}
}

// forcePageLocked forces the current copy of pid to disk.  Called with
// s.mu held.
func (s *Server) forcePageLocked(pid page.ID) (page.PSN, error) {
	p, ok := s.pool.Get(pid)
	if !ok {
		// Nothing cached: the disk version is current.
		psn := s.currentPSNLocked(pid)
		s.queueNotifyLocked(pid, psn)
		return psn, nil
	}
	if !s.pool.IsDirty(pid) {
		s.queueNotifyLocked(pid, p.PSN())
		return p.PSN(), nil
	}
	if err := s.forceImageLocked(p); err != nil {
		return 0, err
	}
	s.pool.Clean(pid)
	return p.PSN(), nil
}

// forceImageLocked writes the replacement log record (§3.1) and then
// the page in place.  Called with s.mu held.
func (s *Server) forceImageLocked(p *page.Page) error {
	pid := p.ID()
	rec := &wal.Replacement{Page: pid, PagePSN: p.PSN()}
	for k, e := range s.dct {
		if k.pg == pid {
			rec.Entries = append(rec.Entries, wal.ReplEntry{Client: k.c, PSN: e.psn})
		}
	}
	lsn, err := s.slog.AppendAndForce(rec)
	if err != nil {
		return err
	}
	s.Metrics.Replacements.Add(1)
	s.tracer.Record(trace.Replacement, 0, pid, fmt.Sprintf("psn=%d entries=%d", p.PSN(), len(rec.Entries)))
	if err := s.store.Write(p); err != nil {
		return err
	}
	s.Metrics.PageForces.Add(1)
	s.tracer.Record(trace.PageForce, 0, pid, "")
	// §3.2 assigns the first replacement record's LSN to a NULL RedoLSN;
	// we additionally advance it on every force.  Property 2 only ever
	// needs the replacement record whose PSN matches the page's disk PSN
	// — the most recent force — so earlier records for this page are
	// obsolete and keeping RedoLSN at the newest one lets the server
	// checkpoint reclaim its log (the server-side analog of §3.6).
	// Entries whose client holds no exclusive locks on the page are
	// dropped now that the page is on disk.
	for k, e := range s.dct {
		if k.pg != pid {
			continue
		}
		e.redoLSN = lsn
		if !s.glm.HoldsAnyX(k.c, pid) {
			delete(s.dct, k)
		}
	}
	s.queueNotifyLocked(pid, p.PSN())
	return nil
}

// notifications pending while s.mu is held.
func (s *Server) queueNotifyLocked(pid page.ID, psn page.PSN) {
	set := s.shippedBy[pid]
	if len(set) == 0 {
		return
	}
	delete(s.shippedBy, pid)
	for c := range set {
		if conn := s.clients[c]; conn != nil {
			s.notifyPending = append(s.notifyPending, pendingNotify{conn: conn, pid: pid, psn: psn})
		}
	}
}

func (s *Server) drainNotifyLocked() []pendingNotify {
	out := s.notifyPending
	s.notifyPending = nil
	return out
}

func sendNotifications(notify []pendingNotify) {
	for _, n := range notify {
		n.conn.NotifyFlushed(n.pid, n.psn)
	}
}

// Force implements msg.Server: §3.6 — a client out of log space asks
// the server to force a page so its min RedoLSN can advance.  The reply
// carries the forced copy's PSN so the caller knows which of its ships
// the force covered.
func (s *Server) Force(req msg.ForceReq) (msg.ForceReply, error) {
	s.mu.Lock()
	psn, err := s.forcePageLocked(req.Page)
	notify := s.drainNotifyLocked()
	s.mu.Unlock()
	sendNotifications(notify)
	return msg.ForceReply{PSN: psn}, err
}

// Alloc implements msg.Server: allocates a page, grants the client an
// exclusive page lock on it, and inserts the DCT entry (first X grant).
func (s *Server) Alloc(req msg.AllocReq) (msg.FetchReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, err := s.store.Allocate()
	if err != nil {
		return msg.FetchReply{}, err
	}
	s.pool.Put(p, false)
	s.evictLocked()
	s.glm.Install(req.Client, lock.PageName(p.ID()), lock.X)
	s.dct[dctKey{pg: p.ID(), c: req.Client}] = &dctEntry{psn: p.PSN(), redoLSN: wal.NilLSN}
	img, err := p.MarshalBinary()
	if err != nil {
		return msg.FetchReply{}, err
	}
	return msg.FetchReply{Image: img, DCTPSN: p.PSN()}, nil
}

// Free implements msg.Server.  Before deallocating, the page's PSN on
// disk is raised to the highest PSN the server knows about (pool copy,
// DCT entries, the client-supplied view), so the Mohan-Narang seed of a
// future reincarnation stays above every log record ever written for
// the dead incarnation.
func (s *Server) Free(req msg.FreeReq) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	best := s.currentPSNLocked(req.Page)
	for k, e := range s.dct {
		if k.pg == req.Page && e.psn > best {
			best = e.psn
		}
	}
	if p, ok := s.pool.Get(req.Page); ok {
		if p.PSN() < best {
			p.SetPSN(best)
		}
		if err := s.store.Write(p); err != nil {
			return err
		}
	} else if disk, err := s.store.Read(req.Page); err == nil && disk.PSN() < best {
		disk.SetPSN(best)
		if err := s.store.Write(disk); err != nil {
			return err
		}
	}
	s.pool.Drop(req.Page)
	for k := range s.dct {
		if k.pg == req.Page {
			delete(s.dct, k)
		}
	}
	delete(s.shippedBy, req.Page)
	delete(s.tokens, req.Page)
	return s.store.Free(req.Page)
}

// CommitShip implements msg.Server (ARIES/CSA- and Versant-style
// baselines): the shipped log records are appended to the server log
// and forced; shipped pages are merged.
func (s *Server) CommitShip(req msg.CommitShipReq) error {
	sp := s.spans.ServerStart(req.Trace, span.CatCommitProc, "")
	defer sp.End()
	for _, raw := range req.Records {
		if _, err := s.slog.AppendEncoded(raw); err != nil {
			return err
		}
	}
	if err := s.slog.ForceAll(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, img := range req.Pages {
		p := new(page.Page)
		if err := p.UnmarshalBinary(img); err != nil {
			return err
		}
		if err := s.receiveLocked(req.Client, p, msg.ShipCommit); err != nil {
			return err
		}
	}
	s.evictLocked()
	return nil
}

// Token implements msg.Server (update-privilege baseline): the token
// migrates to the requester; the page travels with it, recalled from
// the previous owner if necessary.
func (s *Server) Token(req msg.TokenReq) (msg.TokenReply, error) {
	s.mu.Lock()
	owner, owned := s.tokens[req.Page]
	s.mu.Unlock()
	if owned && owner != req.Client {
		conn := s.conn(owner)
		if conn != nil {
			reply, err := conn.RecallToken(req.Page)
			if err != nil {
				return msg.TokenReply{}, err
			}
			if len(reply.Image) > 0 {
				p := new(page.Page)
				if err := p.UnmarshalBinary(reply.Image); err != nil {
					return msg.TokenReply{}, err
				}
				s.mu.Lock()
				if err := s.receiveLocked(owner, p, msg.ShipCallback); err != nil {
					s.mu.Unlock()
					return msg.TokenReply{}, err
				}
				s.mu.Unlock()
			}
		}
		s.Metrics.TokenTransfers.Add(1)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tokens[req.Page] = req.Client
	reply, err := s.fetchLocked(req.Client, req.Page)
	if err != nil {
		return msg.TokenReply{}, err
	}
	return msg.TokenReply{Image: reply.Image}, nil
}

// RecoverEnd implements msg.Server: the client finished §3.3 restart
// recovery.
func (s *Server) RecoverEnd(c ident.ClientID) error {
	s.glm.ClientRecovered(c)
	s.mu.Lock()
	if s.complexPending[c] {
		delete(s.complexPending, c)
		for _, ch := range s.complexWait {
			close(ch)
		}
		s.complexWait = nil
	}
	s.mu.Unlock()
	return nil
}

// waitComplexRecovered blocks new grants until every client that
// crashed with the server has recovered (or the configured lock
// timeout passes — an operator who never restarts a crashed client
// must SurrogateRecover it instead).  Recovering clients themselves
// are not blocked.
func (s *Server) waitComplexRecovered(requester ident.ClientID) {
	deadline := time.Now().Add(s.cfg.LockTimeout)
	s.mu.Lock()
	for {
		if len(s.complexPending) == 0 || s.complexPending[requester] {
			s.mu.Unlock()
			return
		}
		ch := make(chan struct{})
		s.complexWait = append(s.complexWait, ch)
		s.mu.Unlock()
		select {
		case <-ch:
		case <-time.After(time.Until(deadline)):
			return
		}
		s.mu.Lock()
	}
}

// Disconnect implements msg.Server: a cleanly departing client (it must
// have shipped its dirty pages first) gives up all its locks.
func (s *Server) Disconnect(c ident.ClientID) error {
	s.glm.ReleaseAll(c)
	s.mu.Lock()
	delete(s.clients, c)
	delete(s.pendingOrigins, c)
	s.mu.Unlock()
	return nil
}

// ClientCrashed implements the §3.3 server-side reaction: shared locks
// of the crashed client are released, exclusive locks retained, and
// callbacks against them queued until the client recovers.
func (s *Server) ClientCrashed(c ident.ClientID) {
	s.glm.ClientCrashed(c)
}

// Checkpoint writes a server checkpoint record carrying the DCT (§3.2)
// and then reclaims the server-log prefix that restart recovery can no
// longer need: everything below the minimum RedoLSN in the DCT (the
// §3.4 scan never starts earlier) and below the checkpoint itself.
func (s *Server) Checkpoint() error {
	s.mu.Lock()
	rec := &wal.ServerCheckpoint{}
	for k, e := range s.dct {
		rec.DCT = append(rec.DCT, wal.DCTEntry{Page: k.pg, Client: k.c, PSN: e.psn, RedoLSN: e.redoLSN})
	}
	s.mu.Unlock()
	lsn, err := s.slog.AppendAndForce(rec)
	if err != nil {
		return err
	}
	horizon := lsn
	s.mu.Lock()
	for _, e := range s.dct {
		if e.redoLSN != wal.NilLSN && e.redoLSN < horizon {
			horizon = e.redoLSN
		}
	}
	s.mu.Unlock()
	return s.slog.Reclaim(horizon)
}

// FlushAll forces every dirty page to disk (used by orderly shutdown
// and by tests that want a clean disk state).
func (s *Server) FlushAll() error {
	s.mu.Lock()
	dirty := s.pool.DirtyIDs()
	for _, pid := range dirty {
		if _, err := s.forcePageLocked(pid); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	notify := s.drainNotifyLocked()
	s.mu.Unlock()
	sendNotifications(notify)
	return nil
}

// Crash simulates a server crash: the pool, DCT, GLM and token table
// evaporate; stable storage and the server log (its durable prefix)
// survive.  The cluster then constructs a fresh Server over the same
// store/log and runs RecoverServer.
func (s *Server) Crash() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.glm.Stop()
	if ms, ok := s.slog.Store().(*wal.MemStore); ok {
		ms.Crash()
	}
	s.pool.Clear()
}

// DCTSnapshot returns a copy of the DCT (tests assert Properties 1-2
// against it).
func (s *Server) DCTSnapshot() map[dctKey]dctEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[dctKey]dctEntry, len(s.dct))
	for k, e := range s.dct {
		out[k] = *e
	}
	return out
}

// PagePSN returns the server's current PSN for the page: the pooled
// copy's when cached, else the disk copy's (0 when the page does not
// exist).  The chaos harness samples it to assert PSN monotonicity.
func (s *Server) PagePSN(pid page.ID) page.PSN {
	s.mu.Lock()
	if p, ok := s.pool.Get(pid); ok {
		psn := p.PSN()
		s.mu.Unlock()
		return psn
	}
	s.mu.Unlock()
	disk, err := s.store.Read(pid)
	if err != nil {
		return 0
	}
	return disk.PSN()
}

// CheckInvariants verifies the cross-table consistency the recovery
// protocol depends on: every exclusive lock (page- or object-level) a
// client holds on a live page has a matching DCT entry — Property 1
// (§3.1/§3.2) is vacuous without it, because the server could not name
// the clients whose updates a page copy might miss.  It returns the
// first violation found.
func (s *Server) CheckInvariants() error {
	holdings := s.glm.AllHoldings()
	s.mu.Lock()
	defer s.mu.Unlock()
	for c, holds := range holdings {
		for _, h := range holds {
			if h.Mode != lock.X {
				continue
			}
			if _, ok := s.dct[dctKey{pg: h.Name.Page, c: c}]; ok {
				continue
			}
			if _, err := s.store.Read(h.Name.Page); err != nil {
				continue // freed page; locks may outlive it briefly
			}
			return fmt.Errorf("core: invariant violation: client %v holds %v in X but DCT has no (%d,%v) entry",
				c, h.Name, h.Name.Page, c)
		}
	}
	return nil
}

// DCTPSN returns the DCT PSN for (page, client) and whether the entry
// exists.
func (s *Server) DCTPSN(pid page.ID, c ident.ClientID) (page.PSN, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.dct[dctKey{pg: pid, c: c}]
	if !ok {
		return 0, false
	}
	return e.psn, true
}

// serverCallbacker implements lock.Callbacker: it runs the callback
// conversation with the holding client and applies the outcome to the
// GLM and the DCT.
type serverCallbacker struct{ s *Server }

// CallbackObject implements lock.Callbacker.
func (cb serverCallbacker) CallbackObject(holder, requester ident.ClientID, obj lock.Name, wanted lock.Mode) {
	go cb.s.runObjectCallback(holder, requester, obj, wanted)
}

// DeescalatePage implements lock.Callbacker.
func (cb serverCallbacker) DeescalatePage(holder, requester ident.ClientID, pg page.ID, wanted lock.Mode) {
	go cb.s.runDeescalation(holder, requester, pg, wanted)
}

func (s *Server) beginInflight(k inflightKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[k] {
		return false
	}
	s.inflight[k] = true
	return true
}

func (s *Server) endInflight(k inflightKey) {
	s.mu.Lock()
	delete(s.inflight, k)
	for _, ch := range s.inflightWait {
		close(ch)
	}
	s.inflightWait = nil
	s.mu.Unlock()
}

// inflightTouches reports whether an in-flight callback to client c
// involves the lock name (exact object, or a page-level callback on
// its page).
func inflightTouches(k inflightKey, c ident.ClientID, name lock.Name) bool {
	if k.holder != c || k.name.Page != name.Page {
		return false
	}
	return k.name == name || k.name.IsPage || name.IsPage
}

// waitInflightClear blocks until no in-flight callback to the client
// overlaps the name.
func (s *Server) waitInflightClear(c ident.ClientID, name lock.Name) {
	s.mu.Lock()
	for {
		blocked := false
		for k := range s.inflight {
			if inflightTouches(k, c, name) {
				blocked = true
				break
			}
		}
		if !blocked {
			s.mu.Unlock()
			return
		}
		ch := make(chan struct{})
		s.inflightWait = append(s.inflightWait, ch)
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
}

func (s *Server) runObjectCallback(holder, requester ident.ClientID, obj lock.Name, wanted lock.Mode) {
	k := inflightKey{holder: holder, name: obj, wanted: wanted}
	if !s.beginInflight(k) {
		return
	}
	defer s.endInflight(k)
	conn := s.conn(holder)
	if conn == nil {
		// The holder is gone without crashing (clean disconnect races);
		// release its lock so the requester makes progress.
		s.glm.Release(holder, obj)
		return
	}
	s.Metrics.CallbacksSent.Add(1)
	s.tracer.Record(trace.CallbackSent, holder, obj.Page, fmt.Sprintf("obj=%v wanted=%v for=%v", obj, wanted, requester))
	s.mu.Lock()
	ctx := s.lockTraces[requester]
	s.mu.Unlock()
	sp := s.spans.ServerStart(ctx, span.CatCallback, obj.String())
	reply, err := conn.CallbackObject(msg.CallbackReq{Requester: requester, Object: obj, Wanted: wanted})
	sp.End()
	if err != nil {
		return // holder crashed mid-callback; §3.3 handling takes over
	}
	s.mu.Lock()
	if reply.HadPage {
		incoming := new(page.Page)
		if uerr := incoming.UnmarshalBinary(reply.Image); uerr == nil {
			if rerr := s.receiveLocked(holder, incoming, msg.ShipCallback); rerr != nil {
				s.mu.Unlock()
				return
			}
		}
	}
	// §3.1: the requester of an exclusive lock writes a callback log
	// record containing the responder and the PSN the page had when the
	// responder sent it to the server.  When the responder had no page
	// to ship, its updates were shipped earlier and the DCT remembers
	// their PSN.
	if wanted == lock.X {
		psn := page.PSN(0)
		if reply.HadPage {
			if p := new(page.Page); p.UnmarshalBinary(reply.Image) == nil {
				psn = p.PSN()
			}
		} else if e, ok := s.dct[dctKey{pg: obj.Page, c: holder}]; ok {
			psn = e.psn
		}
		s.pendingOrigins[requester] = append(s.pendingOrigins[requester],
			msg.CallbackOrigin{Object: obj.Object(), Responder: holder, PSN: psn})
	}
	s.evictLocked()
	notify := s.drainNotifyLocked()
	s.mu.Unlock()
	sendNotifications(notify)
	switch {
	case reply.Released:
		s.glm.Release(holder, obj)
	case reply.Downgraded:
		s.glm.Downgrade(holder, obj)
	}
}

func (s *Server) runDeescalation(holder, requester ident.ClientID, pg page.ID, wanted lock.Mode) {
	k := inflightKey{holder: holder, name: lock.PageName(pg), wanted: wanted, deesc: true}
	if !s.beginInflight(k) {
		return
	}
	defer s.endInflight(k)
	conn := s.conn(holder)
	if conn == nil {
		s.glm.Release(holder, lock.PageName(pg))
		return
	}
	s.Metrics.Deescalations.Add(1)
	s.tracer.Record(trace.DeescSent, holder, pg, fmt.Sprintf("wanted=%v for=%v", wanted, requester))
	s.mu.Lock()
	ctx := s.lockTraces[requester]
	s.mu.Unlock()
	sp := s.spans.ServerStart(ctx, span.CatDeesc, lock.PageName(pg).String())
	reply, err := conn.DeescalatePage(msg.DeescReq{Requester: requester, Page: pg, Wanted: wanted})
	sp.End()
	if err != nil {
		return
	}
	if reply.HadPage {
		incoming := new(page.Page)
		if uerr := incoming.UnmarshalBinary(reply.Image); uerr == nil {
			s.mu.Lock()
			if rerr := s.receiveLocked(holder, incoming, msg.ShipCallback); rerr != nil {
				s.mu.Unlock()
				return
			}
			s.evictLocked()
			notify := s.drainNotifyLocked()
			s.mu.Unlock()
			sendNotifications(notify)
		}
	}
	s.glm.Deescalate(holder, pg, reply.Objs)
}

// DebugInflight renders the in-flight callback table (debug tooling).
func (s *Server) DebugInflight() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := ""
	for k := range s.inflight {
		out += fmt.Sprintf("inflight: holder=%v name=%v wanted=%v deesc=%v\n", k.holder, k.name, k.wanted, k.deesc)
	}
	out += fmt.Sprintf("inflightWaiters=%d\n", len(s.inflightWait))
	return out
}
