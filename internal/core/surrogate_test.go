package core

import (
	"bytes"
	"testing"
	"time"
)

import "clientlog/internal/page"

func TestSurrogateRecoveryReleasesEverything(t *testing.T) {
	// A commits an update that never left its cache and dies for good.
	// A surrogate (here: the test, holding A's log) recovers on A's
	// behalf; afterwards B sees the committed value and can lock the
	// object immediately — no retained X locks linger.
	cfg := testConfig()
	cfg.LockTimeout = 2 * time.Second
	cl, ids, cs := seededCluster(t, cfg, 1, 2)
	a, b := cs[0], cs[1]
	obj := page.ObjectID{Page: ids[0], Slot: 0}

	txn, _ := a.Begin()
	if err := txn.Overwrite(obj, val('S')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	cl.CrashClient(a.ID())
	if err := cl.SurrogateRecover(a.ID()); err != nil {
		t.Fatalf("surrogate recovery: %v", err)
	}
	// The dead client is gone; its committed value is at the server and
	// its locks are released.
	tb, _ := b.Begin()
	got, err := tb.Read(obj)
	if err != nil || !bytes.Equal(got, val('S')) {
		t.Fatalf("value after surrogate recovery: %q err=%v", got, err)
	}
	if err := tb.Overwrite(obj, val('T')); err != nil {
		t.Fatalf("lock not released by surrogate: %v", err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSurrogateRecoveryDiskless(t *testing.T) {
	// For a diskless client the server already holds the log, so anyone
	// with a connection can be the surrogate.
	cfg := testConfig()
	cl := NewCluster(cfg)
	ids, err := cl.SeedPages(1, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	d, err := cl.AddDisklessClient()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	obj := page.ObjectID{Page: ids[0], Slot: 4}
	txn, _ := d.Begin()
	if err := txn.Overwrite(obj, val('D')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	cl.CrashClient(d.ID())
	if err := cl.SurrogateRecover(d.ID()); err != nil {
		t.Fatal(err)
	}
	tb, _ := b.Begin()
	got, err := tb.Read(obj)
	if err != nil || !bytes.Equal(got, val('D')) {
		t.Fatalf("diskless surrogate recovery: %q err=%v", got, err)
	}
	tb.Commit()
}

func TestSurrogateRecoveryRollsBackInFlight(t *testing.T) {
	cfg := testConfig()
	cl, ids, cs := seededCluster(t, cfg, 1, 2)
	a, b := cs[0], cs[1]
	obj := page.ObjectID{Page: ids[0], Slot: 1}
	orig, _ := cl.ReadObject(obj)

	txn, _ := a.Begin()
	if err := txn.Overwrite(obj, val('Z')); err != nil {
		t.Fatal(err)
	}
	if err := a.Log().ForceAll(); err != nil {
		t.Fatal(err)
	}
	cl.CrashClient(a.ID())
	if err := cl.SurrogateRecover(a.ID()); err != nil {
		t.Fatal(err)
	}
	tb, _ := b.Begin()
	got, err := tb.Read(obj)
	if err != nil || !bytes.Equal(got, orig) {
		t.Fatalf("in-flight update survived surrogate recovery: %q want %q", got, orig)
	}
	tb.Commit()
}
