package core

import (
	"errors"
	"fmt"
	"sync"

	"clientlog/internal/buffer"
	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/msg"
	"clientlog/internal/obs"
	"clientlog/internal/obs/span"
	"clientlog/internal/page"
	"clientlog/internal/wal"
)

// ErrCrashed reports an operation on a crashed client engine.
var ErrCrashed = errors.New("core: client crashed")

// ErrNoLogSpace reports that the §3.6 log space manager could not free
// enough private log space to continue.
var ErrNoLogSpace = errors.New("core: private log full and nothing reclaimable")

// ClientMetrics counts client-side events for the experiments.
type ClientMetrics struct {
	Commits         obs.Counter
	Aborts          obs.Counter
	PagesFetched    obs.Counter
	PagesShipped    obs.Counter
	CallbackRecords obs.Counter // callback log records written (§3.1)
	ForceRequests   obs.Counter // §3.6 force-page requests sent
	LogFullEvents   obs.Counter // times the private log filled
	Checkpoints     obs.Counter
	ClientMerges    obs.Counter // client-side page merges (§2)
	LogReclaims     obs.Counter // §3.6 freeLogSpace attempts
	LogReclaimFails obs.Counter // attempts that freed nothing (ErrNoLogSpace)
	ForcedShips     obs.Counter // dirty pages shipped by the §3.6 replace-and-force path

	// CommitNanos is the end-to-end Commit latency distribution.
	CommitNanos obs.Histogram
}

// dptEntry is one dirty page table row (§3.2) plus the §3.6 log-space
// bookkeeping: the end-of-log LSN remembered when the page was last
// shipped, and whether it was re-dirtied since.
type dptEntry struct {
	redoLSN        wal.LSN
	rememberedEnd  wal.LSN
	lastShipPSN    page.PSN // PSN of the copy last sent to the server
	dirtySinceShip bool
}

// txnState tracks one active transaction.
type txnState struct {
	id       ident.TxnID
	firstLSN wal.LSN
	lastLSN  wal.LSN
	// buffered holds encoded log records for the ship-at-commit
	// baselines; dirtyPages the pages to ship in LogShipPages mode.
	buffered   [][]byte
	dirtyPages map[page.ID]bool
	// tr is the transaction's causal span recorder (nil when tracing
	// is off; every method on it tolerates nil).
	tr *span.TxnTrace
	// undoNeed is the transaction's undo reservation on a bounded log:
	// the bytes its CLRs plus an abort record could still require.
	// Forward appends must leave this much capacity free (summed over
	// all active transactions) so rollback can always log.
	undoNeed uint64
}

// Undo reservation sizing: a CLR compensating an update is at most the
// update's encoded size plus the UndoNext field and framing (clrSlack
// over-approximates that), and abortRecCost over-approximates a framed
// Abort record.
const (
	clrSlack     = 32
	abortRecCost = 64
)

// undoReserveLocked sums the undo reservations of every active
// transaction except skip (pass the transaction whose own rollback the
// append being sized belongs to, or nil).  Called with c.mu held.
func (c *Client) undoReserveLocked(skip *txnState) uint64 {
	var sum uint64
	for _, t := range c.txns {
		if t == skip {
			continue
		}
		sum += t.undoNeed
	}
	return sum
}

// Client is a client engine: it runs transactions entirely locally with
// a private write-ahead log, a local cache, a local lock manager, its
// own dirty page table, independent fuzzy checkpoints, local rollback
// and local restart recovery.
type Client struct {
	id  ident.ClientID
	cfg Config
	srv msg.Server
	llm *lock.LLM
	log *wal.Log

	mu        sync.Mutex
	pool      *buffer.Pool
	dpt       map[page.ID]*dptEntry
	txns      map[ident.TxnID]*txnState
	nextSeq   uint32
	tokens    map[page.ID]bool
	lastCkpt  wal.LSN
	commitsCk int // commits since last checkpoint
	crashed   bool

	// rec holds state only used while participating in server restart
	// recovery (§3.4); see client_recovery.go.
	rec recoveryState

	Metrics ClientMetrics
}

// NewClient registers a fresh client with the server.  logStore is the
// client's private log device.
func NewClient(cfg Config, srv msg.Server, logStore wal.Store) (*Client, error) {
	reply, err := srv.Register(msg.RegisterReq{})
	if err != nil {
		return nil, err
	}
	return NewClientWithID(cfg, srv, logStore, reply.ID)
}

// NewClientWithID assembles a client engine for an already-registered
// id.  The diskless path uses it: the remote log device needs the
// registered id before the engine can be built.
func NewClientWithID(cfg Config, srv msg.Server, logStore wal.Store, id ident.ClientID) (*Client, error) {
	c := &Client{
		id:     id,
		cfg:    cfg,
		srv:    srv,
		llm:    lock.NewLLMSharded(cfg.LockTimeout, cfg.lockShards()),
		log:    wal.NewLog(logStore),
		pool:   buffer.New(cfg.ClientPool),
		dpt:    make(map[page.ID]*dptEntry),
		txns:   make(map[ident.TxnID]*txnState),
		tokens: make(map[page.ID]bool),
	}
	return c, nil
}

// RegisterObs binds the client's metrics — its protocol counters, the
// commit-latency histogram, its private log and its cache — into reg
// under scope=client:<id>.  Like Server.RegisterObs, rebinding after a
// restart keeps the registry series monotone.
func (c *Client) RegisterObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	sc := obs.T("scope", "client:"+c.id.String())
	reg.BindCounter(&c.Metrics.Commits, "client_commits_total", sc)
	reg.BindCounter(&c.Metrics.Aborts, "client_aborts_total", sc)
	reg.BindCounter(&c.Metrics.PagesFetched, "client_pages_fetched_total", sc)
	reg.BindCounter(&c.Metrics.PagesShipped, "client_pages_shipped_total", sc)
	reg.BindCounter(&c.Metrics.CallbackRecords, "client_callback_records_total", sc)
	reg.BindCounter(&c.Metrics.ForceRequests, "client_force_requests_total", sc)
	reg.BindCounter(&c.Metrics.LogFullEvents, "client_log_full_total", sc)
	reg.BindCounter(&c.Metrics.Checkpoints, "client_checkpoints_total", sc)
	reg.BindCounter(&c.Metrics.ClientMerges, "client_merges_total", sc)
	reg.BindCounter(&c.Metrics.LogReclaims, "client_log_reclaim_total", sc)
	reg.BindCounter(&c.Metrics.LogReclaimFails, "client_log_reclaim_fail_total", sc)
	reg.BindCounter(&c.Metrics.ForcedShips, "client_forced_ships_total", sc)
	reg.BindHistogram(&c.Metrics.CommitNanos, "client_commit_nanos", sc)
	c.log.RegisterObs(reg, sc)
	c.pool.RegisterObs(reg, sc)
}

// ID returns the server-assigned client id.
func (c *Client) ID() ident.ClientID { return c.id }

// Log exposes the private log (experiments read its counters).
func (c *Client) Log() *wal.Log { return c.log }

// LLM exposes the local lock manager (tests inspect it).
func (c *Client) LLM() *lock.LLM { return c.llm }

// checkAlive returns ErrCrashed once the engine crashed.
func (c *Client) checkAlive() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return nil
}

// acquire obtains name@mode for transaction t, consulting the cache
// first and the server's GLM on a miss.  It writes callback log records
// for the callback origins the grant reports (§3.1) and refreshes the
// cached copy of the page after a global grant (the lock alone does not
// make a stale cached copy current).
func (c *Client) acquire(t *txnState, name lock.Name, mode lock.Mode) error {
	if c.cfg.Granularity == GranPage && !name.IsPage {
		name = lock.PageName(name.Page)
	}
	for {
		res, err := c.llm.AcquireLocal(t.id, name, mode)
		if err != nil {
			return err
		}
		if res == lock.Granted {
			if mode == lock.X {
				c.noteExclusive(name.Page)
			}
			return nil
		}
		req := msg.LockReq{
			Client:     c.id,
			Name:       name,
			Mode:       mode,
			PreferPage: c.cfg.Granularity == GranAdaptive,
			Upgrade:    c.llm.CachesAny(name),
		}
		if mode == lock.X {
			c.mu.Lock()
			if p, ok := c.pool.Get(name.Page); ok {
				req.HasCached, req.CachedPSN = true, p.PSN()
			}
			c.mu.Unlock()
		}
		sp := t.tr.Start(span.CatLockWait, name.String())
		req.Trace = t.tr.Context(sp)
		reply, err := c.srv.Lock(req)
		t.tr.End(sp)
		if err != nil {
			return err
		}
		c.llm.InstallCached(reply.Name, reply.Mode)
		for _, o := range reply.Origins {
			c.mu.Lock()
			_, aerr := c.appendLocked(&wal.Callback{Object: o.Object, Responder: o.Responder, PSN: o.PSN}, c.undoReserveLocked(nil))
			c.mu.Unlock()
			if aerr != nil {
				return aerr
			}
			c.Metrics.CallbackRecords.Add(1)
		}
		// Coherence: a cached copy of the page may be stale for objects
		// this client held no lock on; merge in the server's copy.
		if c.pool.Contains(name.Page) {
			if err := c.refreshPage(t.tr, name.Page); err != nil {
				return err
			}
		}
	}
}

// noteExclusive inserts the DPT entry the first time the client obtains
// an exclusive lock touching the page (§3.2); the current end of the
// log is conservatively used as the RedoLSN.
func (c *Client) noteExclusive(pid page.ID) {
	c.mu.Lock()
	if _, ok := c.dpt[pid]; !ok {
		c.dpt[pid] = &dptEntry{redoLSN: c.log.End()}
	}
	c.mu.Unlock()
}

// refreshPage fetches the server's current copy and merges it into the
// cached one (§2 client merge procedure).
func (c *Client) refreshPage(tr *span.TxnTrace, pid page.ID) error {
	sp := tr.Start(span.CatFetch, "refresh")
	reply, err := c.srv.Fetch(msg.FetchReq{Client: c.id, Page: pid, Trace: tr.Context(sp)})
	tr.End(sp)
	if err != nil {
		return err
	}
	incoming := new(page.Page)
	if err := incoming.UnmarshalBinary(reply.Image); err != nil {
		return err
	}
	c.Metrics.PagesFetched.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	cur, ok := c.pool.Get(pid)
	if !ok {
		c.pool.Put(incoming, false)
		return nil
	}
	merged := page.Merge(cur, incoming)
	c.Metrics.ClientMerges.Add(1)
	c.pool.Put(merged, c.pool.IsDirty(pid))
	return nil
}

// withPage runs fn on the cached page under the client mutex, fetching
// the page from the server first if needed.  tr attributes the fetch
// to the calling transaction's trace (nil outside transactions).
func (c *Client) withPage(tr *span.TxnTrace, pid page.ID, fn func(p *page.Page) error) error {
	for {
		c.mu.Lock()
		if c.crashed {
			c.mu.Unlock()
			return ErrCrashed
		}
		if p, ok := c.pool.Get(pid); ok {
			err := fn(p)
			victims := c.collectVictimsLocked()
			c.mu.Unlock()
			c.shipVictims(victims)
			return err
		}
		c.mu.Unlock()
		if err := c.fetchPage(tr, pid); err != nil {
			return err
		}
	}
}

// fetchPage pulls a page from the server into the cache.
func (c *Client) fetchPage(tr *span.TxnTrace, pid page.ID) error {
	sp := tr.Start(span.CatFetch, "fetch")
	reply, err := c.srv.Fetch(msg.FetchReq{Client: c.id, Page: pid, Trace: tr.Context(sp)})
	tr.End(sp)
	if err != nil {
		return err
	}
	p := new(page.Page)
	if err := p.UnmarshalBinary(reply.Image); err != nil {
		return err
	}
	c.Metrics.PagesFetched.Add(1)
	c.mu.Lock()
	if !c.pool.Contains(pid) {
		c.pool.Put(p, false)
	}
	victims := c.collectVictimsLocked()
	c.mu.Unlock()
	c.shipVictims(victims)
	return nil
}

// shipment is a dirty page on its way to the server.
type shipment struct {
	image  []byte
	reason msg.ShipReason
}

// collectVictimsLocked evicts over-capacity pages, preparing dirty ones
// for shipment: WAL (force the log first), remember the current end of
// the log for the §3.6 RedoLSN advance, and clear the re-dirty flag.
// Called with c.mu held.
func (c *Client) collectVictimsLocked() []shipment {
	var out []shipment
	for c.pool.NeedsEviction() {
		victim, dirty, err := c.pool.EvictVictim()
		if err != nil {
			return out
		}
		if !dirty {
			continue
		}
		sh, err := c.prepareShipLocked(victim)
		if err != nil {
			continue // the page stays lost from cache; recovery covers it
		}
		out = append(out, shipment{image: sh, reason: msg.ShipReplace})
	}
	return out
}

// prepareShipLocked makes a dirty page ready to leave the client: the
// log is forced through its updates (WAL) and the DPT entry remembers
// the current end of the log (§3.6).  Called with c.mu held.
func (c *Client) prepareShipLocked(p *page.Page) ([]byte, error) {
	if err := c.log.ForceAll(); err != nil {
		return nil, err
	}
	img, err := p.MarshalBinary()
	if err != nil {
		return nil, err
	}
	if e, ok := c.dpt[p.ID()]; ok {
		e.rememberedEnd = c.log.End()
		e.lastShipPSN = p.PSN()
		e.dirtySinceShip = false
	}
	return img, nil
}

func (c *Client) shipVictims(victims []shipment) {
	for _, v := range victims {
		if err := c.srv.Ship(msg.ShipReq{Client: c.id, Reason: v.reason, Image: v.image}); err == nil {
			c.Metrics.PagesShipped.Add(1)
		}
	}
}

// appendLocked appends a log record, running the §3.6 log space
// protocol on ErrLogFull.  headroom is the undo reservation the append
// must leave free (zero for records allowed to consume the reserve:
// CLRs and abort records spend the space reserved for them).  Called
// with c.mu held; may briefly release it while talking to the server.
func (c *Client) appendLocked(rec wal.Record, headroom uint64) (wal.LSN, error) {
	for attempt := 0; ; attempt++ {
		lsn, err := c.log.AppendWithHeadroom(rec, headroom)
		if err == nil {
			return lsn, nil
		}
		if !errors.Is(err, wal.ErrLogFull) || attempt > 64 {
			return wal.NilLSN, err
		}
		c.Metrics.LogFullEvents.Add(1)
		before := c.log.Horizon()
		c.mu.Unlock()
		ferr := c.freeLogSpace()
		c.mu.Lock()
		// Callback processing appends on this client concurrently with
		// the transaction, so two freeLogSpace calls can race: ours may
		// report no progress because the other one already reclaimed the
		// space it was after.  As long as the horizon moved while we were
		// out, the verdict is stale — retry the append.
		if ferr != nil && c.log.Horizon() <= before {
			return wal.NilLSN, ferr
		}
	}
}

// freeLogSpace implements §3.6: replace (ship) the page with the
// minimum RedoLSN from the cache, ask the server to force it, advance
// that entry's RedoLSN to the remembered end of the log, and reclaim
// the log prefix below the new minimum.
func (c *Client) freeLogSpace() error {
	c.Metrics.LogReclaims.Add(1)
	c.mu.Lock()
	// All progress verdicts below compare against the horizon as of
	// entry: a concurrent freeLogSpace (callback processing appends on
	// this client too) advancing it counts as progress for us as well.
	horizon0 := c.log.Horizon()
	dpt0 := len(c.dpt)
	var victim page.ID
	var min wal.LSN
	found := false
	for pid, e := range c.dpt {
		if !found || e.redoLSN < min {
			victim, min, found = pid, e.redoLSN, true
		}
	}
	if !found {
		// No dirty pages: the log is pinned by active transactions or
		// the checkpoint.  The prefix below the pin may still be
		// reclaimable — records of aborted transactions are never
		// covered by a commit force, and the store only reuses durable
		// space — so force up to the pin and retry the reclaim before
		// giving up.  A stale checkpoint (restart recovery leaves one
		// behind and nothing else renews it) is rewritten first so the
		// pin travels to the end of the log.
		c.refreshCheckpointLocked()
		target := c.minRedoLocked()
		c.mu.Unlock()
		if target > horizon0 {
			if err := c.log.Force(target); err != nil {
				return err
			}
		}
		c.mu.Lock()
		c.reclaimLocked()
		progress := c.log.Horizon() > horizon0
		c.mu.Unlock()
		if progress {
			return nil
		}
		c.Metrics.LogReclaimFails.Add(1)
		return ErrNoLogSpace
	}
	var ship []byte
	if p, ok := c.pool.Get(victim); ok && c.pool.IsDirty(victim) {
		img, err := c.prepareShipLocked(p)
		if err != nil {
			c.mu.Unlock()
			return err
		}
		ship = img
		c.pool.Clean(victim)
	}
	c.mu.Unlock()

	if ship != nil {
		if err := c.srv.Ship(msg.ShipReq{Client: c.id, Reason: msg.ShipReplace, Image: ship}); err != nil {
			return err
		}
		c.Metrics.PagesShipped.Add(1)
		c.Metrics.ForcedShips.Add(1)
	}
	// Ask the server to force the page (§3.6: "asks the server to force
	// the page to disk", also when the page is not cached locally).
	freply, err := c.srv.Force(msg.ForceReq{Client: c.id, Page: victim})
	if err != nil {
		return err
	}
	c.Metrics.ForceRequests.Add(1)

	c.mu.Lock()
	// The Force reply acknowledges the flush; apply the same transition
	// the asynchronous flush notification would.
	c.applyFlushedLocked(victim, freply.PSN)
	c.refreshCheckpointLocked()
	target := c.minRedoLocked()
	c.mu.Unlock()
	// The reclaim below only reuses durable space; force through the
	// reclaim point first so records no one will ever read again
	// (aborted transactions especially) actually free their bytes.
	if target > c.log.Durable() {
		if err := c.log.Force(target); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.reclaimLocked()
	// Progress is anything that moves the protocol forward, not only an
	// immediate horizon advance: when several DPT entries tie at the
	// minimum RedoLSN, each round retires one of them and the horizon
	// only moves once the last tie is gone — that retirement must count,
	// or the append's retry loop gives up with work still to do.
	ve, vok := c.dpt[victim]
	progress := len(c.dpt) == 0 || len(c.dpt) < dpt0 || !vok || ve.redoLSN > min ||
		c.minRedoLocked() > min || c.log.Horizon() > horizon0
	c.mu.Unlock()
	if !progress {
		c.Metrics.LogReclaimFails.Add(1)
		return ErrNoLogSpace
	}
	return nil
}

// applyFlushedLocked advances the DPT after the server confirmed a
// force whose copy had the given PSN.  The acknowledgment only covers
// this client's latest ship when psn >= the PSN of that shipped copy
// (merging only raises PSNs); a late ack for an older force must
// change nothing, or updates living only in the server's volatile pool
// would lose their DPT entry — and with it their log records' reclaim
// protection and their place in §3.4 server recovery.  Called with
// c.mu held.
func (c *Client) applyFlushedLocked(pid page.ID, psn page.PSN) {
	e, ok := c.dpt[pid]
	if !ok {
		return
	}
	if psn < e.lastShipPSN {
		return // stale acknowledgment
	}
	if !e.dirtySinceShip {
		delete(c.dpt, pid)
		return
	}
	if e.rememberedEnd > e.redoLSN {
		e.redoLSN = e.rememberedEnd
	}
}

// minRedoLocked computes the lowest LSN the private log still needs:
// the minimum DPT RedoLSN, the first LSN of every active transaction
// (undo) and the last checkpoint (restart analysis).  Called with c.mu
// held.
func (c *Client) minRedoLocked() wal.LSN {
	min := c.log.End()
	for _, e := range c.dpt {
		if e.redoLSN < min {
			min = e.redoLSN
		}
	}
	for _, t := range c.txns {
		if t.firstLSN != wal.NilLSN && t.firstLSN < min {
			min = t.firstLSN
		}
	}
	if c.lastCkpt != wal.NilLSN && c.lastCkpt < min {
		min = c.lastCkpt
	}
	return min
}

// reclaimLocked releases reusable log space.  Called with c.mu held.
func (c *Client) reclaimLocked() {
	c.log.Reclaim(c.minRedoLocked())
}

// refreshCheckpointLocked rewrites the fuzzy checkpoint at the current
// end of the log when the old checkpoint record has become the reclaim
// pin: the checkpoint exists for restart analysis, so it can travel —
// rewriting it frees every log byte it was holding down (§3.6).
// Returns true if a new checkpoint record was written.  Called with
// c.mu held.
func (c *Client) refreshCheckpointLocked() bool {
	if c.lastCkpt == wal.NilLSN || c.minRedoLocked() != c.lastCkpt {
		return false
	}
	rec := &wal.Checkpoint{}
	for _, t := range c.txns {
		rec.Active = append(rec.Active, wal.TxnInfo{ID: t.id, FirstLSN: t.firstLSN, LastLSN: t.lastLSN})
	}
	for pid, e := range c.dpt {
		rec.DPT = append(rec.DPT, wal.DPTEntry{Page: pid, RedoLSN: e.redoLSN})
	}
	lsn, err := c.log.AppendWithHeadroom(rec, c.undoReserveLocked(nil))
	if err != nil {
		return false
	}
	c.lastCkpt = lsn
	c.commitsCk = 0
	c.Metrics.Checkpoints.Add(1)
	return true
}

// ensureToken acquires the page's update token (update-privilege
// baseline); the freshest copy of the page travels with it.
func (c *Client) ensureToken(tr *span.TxnTrace, pid page.ID) error {
	c.mu.Lock()
	owned := c.tokens[pid]
	c.mu.Unlock()
	if owned {
		return nil
	}
	sp := tr.Start(span.CatLockWait, "token")
	reply, err := c.srv.Token(msg.TokenReq{Client: c.id, Page: pid, Trace: tr.Context(sp)})
	tr.End(sp)
	if err != nil {
		return err
	}
	incoming := new(page.Page)
	if err := incoming.UnmarshalBinary(reply.Image); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.pool.Get(pid); ok {
		merged := page.Merge(cur, incoming)
		c.pool.Put(merged, c.pool.IsDirty(pid))
	} else {
		c.pool.Put(incoming, false)
	}
	c.tokens[pid] = true
	return nil
}

// ReplacePage deterministically exercises the steal path: the cached
// page is shipped to the server if dirty (honouring the WAL rule) and
// dropped from the cache, exactly as LRU replacement would.
func (c *Client) ReplacePage(pid page.ID) error {
	if err := c.checkAlive(); err != nil {
		return err
	}
	c.mu.Lock()
	p, ok := c.pool.Get(pid)
	if !ok {
		c.mu.Unlock()
		return nil
	}
	var img []byte
	if c.pool.IsDirty(pid) {
		var err error
		img, err = c.prepareShipLocked(p)
		if err != nil {
			c.mu.Unlock()
			return err
		}
	}
	c.pool.Drop(pid)
	c.mu.Unlock()
	if img != nil {
		if err := c.srv.Ship(msg.ShipReq{Client: c.id, Reason: msg.ShipReplace, Image: img}); err != nil {
			return err
		}
		c.Metrics.PagesShipped.Add(1)
	}
	return nil
}

// FreePage deallocates a page: cached locks and buffered state for it
// are dropped and the server frees it in stable storage.  The caller is
// responsible for not freeing pages other clients still use.
func (c *Client) FreePage(pid page.ID) error {
	if err := c.checkAlive(); err != nil {
		return err
	}
	// Ship our copy first so the server frees the page knowing its
	// latest PSN (the reincarnation seed must exceed it).
	c.mu.Lock()
	var img []byte
	if p, ok := c.pool.Get(pid); ok {
		if i, err := c.prepareShipLocked(p); err == nil {
			img = i
		}
	}
	c.pool.Drop(pid)
	delete(c.dpt, pid)
	delete(c.tokens, pid)
	c.mu.Unlock()
	if img != nil {
		if err := c.srv.Ship(msg.ShipReq{Client: c.id, Reason: msg.ShipCallback, Image: img}); err != nil {
			return err
		}
	}
	c.llm.DropCached(lock.PageName(pid))
	if err := c.srv.Free(msg.FreeReq{Client: c.id, Page: pid}); err != nil {
		return err
	}
	return c.srv.Unlock(msg.UnlockReq{Client: c.id, Action: msg.ActionRelease, Name: lock.PageName(pid)})
}

// Checkpoint takes an independent fuzzy checkpoint: the active
// transaction table and the DPT go to the private log; no coordination
// with the server or other clients (paper advantage 6).
func (c *Client) Checkpoint() error {
	if err := c.checkAlive(); err != nil {
		return err
	}
	c.mu.Lock()
	rec := &wal.Checkpoint{}
	for _, t := range c.txns {
		rec.Active = append(rec.Active, wal.TxnInfo{ID: t.id, FirstLSN: t.firstLSN, LastLSN: t.lastLSN})
	}
	for pid, e := range c.dpt {
		rec.DPT = append(rec.DPT, wal.DPTEntry{Page: pid, RedoLSN: e.redoLSN})
	}
	// The checkpoint record is a forward append like any other: it must
	// respect the undo reservation (appendLocked also runs the §3.6
	// retry protocol on a full log).
	lsn, err := c.appendLocked(rec, c.undoReserveLocked(nil))
	c.mu.Unlock()
	if err != nil {
		return err
	}
	if err := c.log.Force(lsn); err != nil {
		return err
	}
	c.mu.Lock()
	c.lastCkpt = lsn
	c.commitsCk = 0
	c.reclaimLocked()
	c.mu.Unlock()
	c.Metrics.Checkpoints.Add(1)
	return nil
}

// FlushCache ships every dirty page to the server (orderly shutdown).
func (c *Client) FlushCache() error {
	if err := c.checkAlive(); err != nil {
		return err
	}
	c.mu.Lock()
	var ships []shipment
	for _, pid := range c.pool.DirtyIDs() {
		p, _ := c.pool.Get(pid)
		img, err := c.prepareShipLocked(p)
		if err != nil {
			c.mu.Unlock()
			return err
		}
		c.pool.Clean(pid)
		ships = append(ships, shipment{image: img, reason: msg.ShipReplace})
	}
	c.mu.Unlock()
	c.shipVictims(ships)
	return nil
}

// Disconnect leaves the cluster cleanly: dirty pages are shipped, every
// page still covered by this client's log is forced to server disk, and
// all locks released.  The forces are what make departure safe: server
// crash recovery (§3.4) replays lost pages from client logs, and a
// departed client's log is no longer available — so nothing on the
// server may depend on it.  The DPT is exactly the set of pages with
// that dependence.
func (c *Client) Disconnect() error {
	if err := c.FlushCache(); err != nil {
		return err
	}
	c.mu.Lock()
	pids := make([]page.ID, 0, len(c.dpt))
	for pid := range c.dpt {
		pids = append(pids, pid)
	}
	c.mu.Unlock()
	for _, pid := range pids {
		freply, err := c.srv.Force(msg.ForceReq{Client: c.id, Page: pid})
		if err != nil {
			return err
		}
		c.Metrics.ForceRequests.Add(1)
		c.mu.Lock()
		c.applyFlushedLocked(pid, freply.PSN)
		c.mu.Unlock()
	}
	return c.srv.Disconnect(c.id)
}

// Crash simulates a client crash: lock tables and cache contents are
// lost (§3.3), as is the unforced tail of the private log.  The server
// must be told separately (Server.ClientCrashed), as a real server
// learns from a broken connection.
func (c *Client) Crash() {
	c.mu.Lock()
	c.crashed = true
	c.pool.Clear()
	c.dpt = make(map[page.ID]*dptEntry)
	c.txns = make(map[ident.TxnID]*txnState)
	c.tokens = make(map[page.ID]bool)
	c.lastCkpt = wal.NilLSN
	c.mu.Unlock()
	c.llm.Clear()
	switch st := c.log.Store().(type) {
	case *wal.MemStore:
		st.Crash()
	case *RemoteLogStore:
		st.DropVolatile()
	}
}

// DPTSnapshot returns the dirty page table (tests and §3.4 recovery).
func (c *Client) DPTSnapshot() []wal.DPTEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wal.DPTEntry, 0, len(c.dpt))
	for pid, e := range c.dpt {
		out = append(out, wal.DPTEntry{Page: pid, RedoLSN: e.redoLSN})
	}
	return out
}

// --- msg.Client handlers (the server talking to us) ---

// CallbackObject implements msg.Client: §3.2 object-level conflict
// handling.  The handler waits until no local transaction uses the
// object in a conflicting mode, ships the page if it holds updates, and
// releases or downgrades the cached lock.
func (c *Client) CallbackObject(req msg.CallbackReq) (msg.CallbackReply, error) {
	if err := c.checkAlive(); err != nil {
		return msg.CallbackReply{}, err
	}
	name := req.Object
	if c.llm.CachedMode(name) == lock.None {
		// Already released (racing callbacks are idempotent).
		return msg.CallbackReply{Released: true}, nil
	}
	c.llm.SetFence(name, req.Wanted)
	defer c.llm.ClearFence(name)
	if err := c.llm.WaitObjectFree(name, req.Wanted); err != nil {
		return msg.CallbackReply{}, err
	}
	var reply msg.CallbackReply
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return msg.CallbackReply{}, ErrCrashed
	}
	pid := name.Page
	if p, ok := c.pool.Get(pid); ok && c.pool.IsDirty(pid) {
		img, err := c.prepareShipLocked(p)
		if err != nil {
			c.mu.Unlock()
			return msg.CallbackReply{}, err
		}
		reply.Image, reply.HadPage = img, true
		c.pool.Clean(pid)
	}
	if req.Wanted == lock.X {
		c.llm.DropCached(name)
		reply.Released = true
		if !c.llm.HoldsAnyOnPage(pid) {
			// §3.2: drop P from the cache if no other locks are held on
			// objects residing on the page.
			c.pool.Drop(pid)
		}
	} else {
		c.llm.DowngradeCached(name)
		reply.Downgraded = true
	}
	c.reclaimTokenLocked(pid)
	c.mu.Unlock()
	return reply, nil
}

// reclaimTokenLocked drops the update token when the page leaves our
// control (token baseline bookkeeping).  Called with c.mu held.
func (c *Client) reclaimTokenLocked(pid page.ID) {
	if c.cfg.Update == UpdateToken && !c.llm.HoldsAnyOnPage(pid) {
		delete(c.tokens, pid)
	}
}

// DeescalatePage implements msg.Client: §3.2 page-level conflict
// handling.  The client waits for structural operations to finish,
// replaces its page lock with object locks for the objects its
// transactions accessed, and ships the page if it holds updates.
func (c *Client) DeescalatePage(req msg.DeescReq) (msg.DeescReply, error) {
	if err := c.checkAlive(); err != nil {
		return msg.DeescReply{}, err
	}
	pgName := lock.PageName(req.Page)
	if c.llm.CachedMode(pgName) == lock.None {
		// Stale or repeated de-escalation: the page lock is already
		// gone here, but the GLM is about to remove its (phantom) page
		// lock entry — it must install the object locks we actually
		// hold, or another client could take objects we still own.
		return msg.DeescReply{Objs: c.llm.CachedObjLocks(req.Page)}, nil
	}
	c.llm.SetFence(pgName, lock.X)
	defer c.llm.ClearFence(pgName)
	if err := c.llm.WaitPageQuiesced(req.Page); err != nil {
		return msg.DeescReply{}, err
	}
	var reply msg.DeescReply
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return msg.DeescReply{}, ErrCrashed
	}
	if p, ok := c.pool.Get(req.Page); ok && c.pool.IsDirty(req.Page) {
		img, err := c.prepareShipLocked(p)
		if err != nil {
			c.mu.Unlock()
			return msg.DeescReply{}, err
		}
		reply.Image, reply.HadPage = img, true
		c.pool.Clean(req.Page)
	}
	// Retain object locks for everything local transactions accessed
	// plus any object locks already cached (from an earlier
	// de-escalation).
	reply.Objs = mergeObjLocks(c.llm.AccessedObjects(req.Page), c.llm.CachedObjLocks(req.Page))
	c.llm.Deescalate(req.Page, reply.Objs)
	c.mu.Unlock()
	return reply, nil
}

// mergeObjLocks unions two object-lock lists, keeping the stronger mode
// per slot.
func mergeObjLocks(a, b []lock.ObjLock) []lock.ObjLock {
	best := make(map[uint16]lock.Mode, len(a)+len(b))
	for _, ol := range a {
		best[ol.Slot] = lock.Max(best[ol.Slot], ol.Mode)
	}
	for _, ol := range b {
		best[ol.Slot] = lock.Max(best[ol.Slot], ol.Mode)
	}
	out := make([]lock.ObjLock, 0, len(best))
	for slot, m := range best {
		out = append(out, lock.ObjLock{Slot: slot, Mode: m})
	}
	return out
}

// RecallToken implements msg.Client (update-privilege baseline): the
// token leaves with the current copy of the page.
func (c *Client) RecallToken(pid page.ID) (msg.TokenReply, error) {
	if err := c.checkAlive(); err != nil {
		return msg.TokenReply{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tokens, pid)
	var reply msg.TokenReply
	if p, ok := c.pool.Get(pid); ok && c.pool.IsDirty(pid) {
		img, err := c.prepareShipLocked(p)
		if err != nil {
			return msg.TokenReply{}, err
		}
		reply.Image = img
		c.pool.Clean(pid)
	}
	return reply, nil
}

// NotifyFlushed implements msg.Client: the server flushed a page this
// client had replaced (§3.2 DPT maintenance, §3.6 RedoLSN advance).
func (c *Client) NotifyFlushed(pid page.ID, psn page.PSN) {
	c.mu.Lock()
	if !c.crashed {
		c.applyFlushedLocked(pid, psn)
		c.reclaimLocked()
	}
	c.mu.Unlock()
}

func (c *Client) String() string { return fmt.Sprintf("client(%s)", c.id) }

// DebugPage renders the cached copy of a page (debug tooling).
func (c *Client) DebugPage(pid page.ID) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pool.Get(pid)
	if !ok {
		return fmt.Sprintf("%v: page %d not cached", c.id, pid)
	}
	out := fmt.Sprintf("%v: page %d psn=%d dirty=%v slots:", c.id, pid, p.PSN(), c.pool.IsDirty(pid))
	for _, s := range p.UsedSlotIDs() {
		d, _ := p.Read(s)
		out += fmt.Sprintf(" %d@%d=%x", s, p.SlotPSN(s), d[:minInt(4, len(d))])
	}
	if e, ok := c.dpt[pid]; ok {
		out += fmt.Sprintf(" [dpt redo=%v shipPSN=%d dirtySince=%v]", e.redoLSN, e.lastShipPSN, e.dirtySinceShip)
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
