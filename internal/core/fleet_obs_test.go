package core

import (
	"testing"

	"clientlog/internal/obs"
	"clientlog/internal/page"
)

// TestFleetRegistryMonotonePerPartition checks the fleet-observability
// contract behind sum-on-read rebinding: after a partition crash and
// restart, every counter series must stay monotone *per partition tag*
// — the restarted engine's fresh zero counters rebind under the same
// partition="i" key, so aggregation planes scraping the registry never
// see a tagged series go backwards.
func TestFleetRegistryMonotonePerPartition(t *testing.T) {
	cl := NewCluster(fleetConfig())
	defer cl.Close()
	ids, err := cl.SeedPages(6, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	workload := func() {
		t.Helper()
		txn, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if err := txn.Overwrite(page.ObjectID{Page: id, Slot: 0}, val('m')); err != nil {
				t.Fatal(err)
			}
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := c.FlushCache(); err != nil {
			t.Fatal(err)
		}
	}
	workload()
	before := cl.Registry().Snapshot()

	// Every partition must publish tagged series (the fleet plane keys
	// its merged view on them).
	seen := map[string]bool{}
	for k := range before.Counters {
		if p := obs.TagValue(k, "partition"); p != "" {
			seen[p] = true
		}
	}
	for _, want := range []string{"0", "1", "2"} {
		if !seen[want] {
			t.Fatalf("no counter series tagged partition=%q (have %v)", want, seen)
		}
	}

	victim := cl.Owner(ids[1])
	cl.CrashPartition(victim)
	if err := cl.RestartPartition(victim); err != nil {
		t.Fatal(err)
	}
	mid := cl.Registry().Snapshot()
	// A second client's writes can't be served from the first client's
	// lock cache, so they force fresh grants on every partition —
	// including the restarted one.
	c2, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	txn2, err := c2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := txn2.Overwrite(page.ObjectID{Page: id, Slot: 0}, val('n')); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn2.Commit(); err != nil {
		t.Fatal(err)
	}
	after := cl.Registry().Snapshot()

	check := func(old, new obs.Snapshot, when string) {
		t.Helper()
		for k, v1 := range old.Counters {
			if obs.TagValue(k, "partition") == "" {
				continue
			}
			if v2 := new.Counters[k]; v2 < v1 {
				t.Errorf("%s: %s went backwards: %d -> %d", when, k, v1, v2)
			}
		}
	}
	check(before, mid, "across restart")
	check(mid, after, "after restart workload")

	// The restarted partition's series must still advance under its
	// original tag: the recovery traffic plus the second workload lands
	// on the fresh engine, summed onto the pre-crash counts.
	victimTag := obs.T("partition", itoa(victim))
	if b, a := before.TotalWhere("lock_grants_total", victimTag),
		after.TotalWhere("lock_grants_total", victimTag); a <= b {
		t.Errorf("partition %d lock_grants_total did not advance across restart: %d -> %d",
			victim, b, a)
	}
}

func itoa(i int) string {
	return string(rune('0' + i))
}
