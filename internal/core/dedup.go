package core

import (
	"sync"
	"sync/atomic"
)

// ReplyCache gives a transport at-most-once execution of client
// requests: the server side of a lossy connection executes each request
// id exactly once and answers retransmissions (retries after a lost
// reply, wire-level duplicates, stale replays) from the cached result.
// Without it, a retried Ship would merge a page twice, a retried remote
// LogAppend would write the record twice, and a retried Alloc would
// leak a page — §3 of the paper assumes the network may lose or
// duplicate messages, so suppression is the server's job.
//
// Both transports use it: the loopback fault wrapper (msg.FaultyServer)
// and the TCP session layer in internal/netrpc.
type ReplyCache struct {
	// Suppressed counts duplicate requests answered from the cache.
	Suppressed atomic.Uint64

	mu      sync.Mutex
	entries map[uint64]*replyEntry
	order   []uint64 // insertion order, for bounded eviction
	limit   int
}

// replyEntry is one request's (eventual) result; done closes when the
// first execution finishes, so a duplicate that arrives while the
// original is still executing waits instead of re-executing.
type replyEntry struct {
	done chan struct{}
	body interface{}
	err  error
}

// NewReplyCache returns a cache remembering about limit completed
// requests (0 picks a default).  The window only needs to cover the
// retry horizon of one connection, not the whole session.
func NewReplyCache(limit int) *ReplyCache {
	if limit <= 0 {
		limit = 1024
	}
	return &ReplyCache{entries: make(map[uint64]*replyEntry), limit: limit}
}

// Do executes exec for the first request with this id and returns the
// cached result (blocking on the in-flight execution if necessary) for
// every later request with the same id.
func (rc *ReplyCache) Do(seq uint64, exec func() (interface{}, error)) (interface{}, error) {
	rc.mu.Lock()
	if e, ok := rc.entries[seq]; ok {
		rc.mu.Unlock()
		<-e.done
		rc.Suppressed.Add(1)
		return e.body, e.err
	}
	e := &replyEntry{done: make(chan struct{})}
	rc.entries[seq] = e
	rc.order = append(rc.order, seq)
	rc.evictLocked()
	rc.mu.Unlock()

	e.body, e.err = exec()
	close(e.done)
	return e.body, e.err
}

// evictLocked drops the oldest *completed* entries beyond the limit;
// in-flight entries are never evicted (a duplicate must find them).
func (rc *ReplyCache) evictLocked() {
	for len(rc.entries) > rc.limit && len(rc.order) > 0 {
		seq := rc.order[0]
		e := rc.entries[seq]
		if e != nil {
			select {
			case <-e.done:
			default:
				return // oldest still executing; stop evicting
			}
			delete(rc.entries, seq)
		}
		rc.order = rc.order[1:]
	}
}
