package core

import (
	"errors"
	"fmt"
	"sync"

	"clientlog/internal/fleet"
	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/msg"
	"clientlog/internal/obs"
	"clientlog/internal/page"
	"clientlog/internal/storage"
	"clientlog/internal/trace"
	"clientlog/internal/wal"
)

// serverHandle lets client-side transports survive a server restart:
// the loopback conns delegate to whatever engine currently backs the
// handle.
type serverHandle struct {
	mu    sync.RWMutex
	inner msg.Server
}

func (h *serverHandle) get() msg.Server {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.inner
}

func (h *serverHandle) set(s msg.Server) {
	h.mu.Lock()
	h.inner = s
	h.mu.Unlock()
}

// Each method delegates to the current engine.
func (h *serverHandle) Register(r msg.RegisterReq) (msg.RegisterReply, error) {
	return h.get().Register(r)
}
func (h *serverHandle) Lock(r msg.LockReq) (msg.LockReply, error) { return h.get().Lock(r) }
func (h *serverHandle) LockBatch(r msg.LockBatchReq) (msg.LockBatchReply, error) {
	return h.get().LockBatch(r)
}
func (h *serverHandle) Unlock(r msg.UnlockReq) error { return h.get().Unlock(r) }
func (h *serverHandle) Fetch(r msg.FetchReq) (msg.FetchReply, error) {
	return h.get().Fetch(r)
}
func (h *serverHandle) FetchBatch(r msg.FetchBatchReq) (msg.FetchBatchReply, error) {
	return h.get().FetchBatch(r)
}
func (h *serverHandle) Ship(r msg.ShipReq) error                     { return h.get().Ship(r) }
func (h *serverHandle) Force(r msg.ForceReq) (msg.ForceReply, error) { return h.get().Force(r) }
func (h *serverHandle) Alloc(r msg.AllocReq) (msg.FetchReply, error) {
	return h.get().Alloc(r)
}
func (h *serverHandle) Free(r msg.FreeReq) error             { return h.get().Free(r) }
func (h *serverHandle) CommitShip(r msg.CommitShipReq) error { return h.get().CommitShip(r) }
func (h *serverHandle) Token(r msg.TokenReq) (msg.TokenReply, error) {
	return h.get().Token(r)
}
func (h *serverHandle) RecoveryFetch(r msg.RecoveryFetchReq) (msg.FetchReply, error) {
	return h.get().RecoveryFetch(r)
}
func (h *serverHandle) Reinstall(c ident.ClientID, holds []lock.Holding) error {
	return h.get().Reinstall(c, holds)
}
func (h *serverHandle) RecoverQuery(c ident.ClientID, pages []page.ID) ([]msg.DCTRow, error) {
	return h.get().RecoverQuery(c, pages)
}
func (h *serverHandle) LogOp(r msg.LogReq) (msg.LogReply, error) { return h.get().LogOp(r) }
func (h *serverHandle) RecoverEnd(c ident.ClientID) error        { return h.get().RecoverEnd(c) }
func (h *serverHandle) Disconnect(c ident.ClientID) error        { return h.get().Disconnect(c) }

// ErrUnknownClient reports an operation addressed to a client id the
// cluster does not track (never joined, or already removed by churn).
var ErrUnknownClient = errors.New("core: unknown client")

// clientSlot tracks one client's engine and durable log device across
// crashes.  opMu serializes whole membership operations (crash,
// restart, remove, surrogate recovery) on this client: churn drives
// them concurrently for the same id, and the loser of a race must see
// the winner's completed state (ErrCrashed, ErrUnknownClient), not a
// half-performed transition.  Cluster.mu still guards the clients map
// and slot field access; opMu is always acquired first and never held
// while taking another slot's opMu.
type clientSlot struct {
	opMu     sync.Mutex
	engine   *Client
	logStore wal.Store
	crashed  bool
}

// slotFor fetches the slot for id, or nil.
func (cl *Cluster) slotFor(id ident.ClientID) *clientSlot {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.clients[id]
}

// stillTracked reports whether slot is still the cluster's entry for
// id (a concurrent RemoveClient/SurrogateRecover may have won).
func (cl *Cluster) stillTracked(id ident.ClientID, slot *clientSlot) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.clients[id] == slot
}

// fleetPart is one server partition: its stable storage, server log
// device and handle are fixed for the cluster's lifetime; the engine is
// replaced on restart (guarded by Cluster.mu).
type fleetPart struct {
	store  storage.Store
	slog   wal.Store
	handle *serverHandle
	server *Server // guarded by Cluster.mu
}

// Cluster assembles a server fleet (one partition by default) and a set
// of clients over the in-process loopback transport, with crash/restart
// orchestration.  It is the substrate of the integration tests, the
// simulator, the benchmarks and the public API.
//
// With cfg.Partitions > 1 the page space is hash-partitioned across
// that many server engines: each client's conn is a fleet.Router over
// one loopback conn per partition, and a fleet.Detector resolves
// cross-partition deadlocks in the background (call Close when done
// with a fleet cluster to stop it).
type Cluster struct {
	cfg   Config
	Stats *msg.Stats
	// Reg is the cluster-wide metrics registry: every engine (including
	// post-restart incarnations) binds its counters here, and Stats is a
	// façade over the msg_* families in it.
	Reg        *obs.Registry
	remoteLogs *RemoteLogHost
	parts      []*fleetPart // immutable slice; .server under mu
	detector   *fleet.Detector

	mu      sync.Mutex
	clients map[ident.ClientID]*clientSlot
	tracer  trace.Recorder

	// wrapServer/wrapClient intercept the loopback conns (fault
	// injection); see WrapConns.
	wrapServer func(part, n int, conn msg.Server) msg.Server
	wrapClient func(id ident.ClientID, conn msg.Client) msg.Client
	connSeq    int
}

// NewCluster builds a memory-backed cluster (the "disks" survive
// simulated crashes).
func NewCluster(cfg Config) *Cluster {
	return NewClusterWithStores(cfg, memPageStore(cfg), memLogStore(cfg, 0))
}

// memPageStore builds the in-memory page store with the configured
// simulated device latency.
func memPageStore(cfg Config) *storage.MemStore {
	st := storage.NewMemStore(cfg.PageSize)
	st.SetLatency(cfg.DiskLatency)
	return st
}

// memLogStore builds an in-memory log device with the configured
// simulated fsync latency.
func memLogStore(cfg Config, capacity uint64) *wal.MemStore {
	st := wal.NewMemStore(capacity)
	st.SetFlushLatency(cfg.FsyncLatency)
	return st
}

// NewClusterIn is NewCluster with the engines bound into an existing
// metrics registry (nil means a private one), so a caller that serves
// /metrics can watch the cluster it is about to run.
func NewClusterIn(cfg Config, reg *obs.Registry) *Cluster {
	return NewClusterWithStoresIn(cfg, memPageStore(cfg), memLogStore(cfg, 0), reg)
}

// NewClusterWithStores builds a cluster over explicit stable storage
// and a server log device (e.g. file-backed, for the cmd tools).
func NewClusterWithStores(cfg Config, store storage.Store, slog wal.Store) *Cluster {
	return NewClusterWithStoresIn(cfg, store, slog, nil)
}

// NewClusterWithStoresIn is NewClusterWithStores with an explicit
// registry (nil means a private one).  The supplied store/slog back
// partition 0; with cfg.Partitions > 1 the remaining fleet members get
// their own memory-backed devices, and every partition's store is
// stride-restricted so it only mints page ids it owns.
func NewClusterWithStoresIn(cfg Config, store storage.Store, slog wal.Store, reg *obs.Registry) *Cluster {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cl := &Cluster{
		cfg:     cfg,
		Reg:     reg,
		Stats:   msg.NewStatsIn(reg),
		clients: make(map[ident.ClientID]*clientSlot),
	}
	cl.remoteLogs = NewRemoteLogHost(cfg.ClientLogCapacity)
	n := cfg.partitions()
	for i := 0; i < n; i++ {
		pst, plog := store, slog
		if i > 0 {
			pst, plog = memPageStore(cfg), memLogStore(cfg, 0)
		}
		if n > 1 {
			if s, ok := pst.(interface{ SetAllocStride(int, int) }); ok {
				s.SetAllocStride(n, i)
			}
		}
		pcfg := cfg
		pcfg.PartitionIndex = i
		part := &fleetPart{store: pst, slog: plog, handle: &serverHandle{}}
		part.server = NewServer(pcfg, pst, plog)
		if i == 0 {
			// The home partition hosts diskless clients' private logs and
			// assigns fleet-wide client ids (fleet.Router routes both).
			part.server.HostRemoteLogs(cl.remoteLogs)
		}
		srv := part.server
		reg.Lazy(func() { srv.RegisterObs(reg) })
		part.handle.set(part.server)
		cl.parts = append(cl.parts, part)
	}
	if n > 1 {
		cl.detector = fleet.NewDetector(cl.fleetMembers)
		cl.detector.RegisterObs(reg)
		cl.detector.Start(0)
	}
	return cl
}

// fleetMembers snapshots the current server engines for the detector.
func (cl *Cluster) fleetMembers() []fleet.Member {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	ms := make([]fleet.Member, 0, len(cl.parts))
	for _, p := range cl.parts {
		ms = append(ms, p.server)
	}
	return ms
}

// Close stops the cluster's background machinery (the fleet's
// distributed deadlock detector).  Engines, stores and clients are
// untouched; single-partition clusters have nothing to stop.
func (cl *Cluster) Close() {
	if cl.detector != nil {
		cl.detector.Stop()
	}
}

// Registry returns the cluster-wide metrics registry.
func (cl *Cluster) Registry() *obs.Registry { return cl.Reg }

// SetTracer installs a protocol-event recorder on the current server
// engines (and future incarnations after RestartServer).
func (cl *Cluster) SetTracer(r trace.Recorder) {
	cl.mu.Lock()
	cl.tracer = r
	servers := make([]*Server, 0, len(cl.parts))
	for _, p := range cl.parts {
		servers = append(servers, p.server)
	}
	cl.mu.Unlock()
	for _, s := range servers {
		s.SetTracer(r)
	}
}

// Server returns the current home-partition (index 0) server engine.
// Single-partition callers see the only server; fleet-aware callers use
// PartServer/Servers.
func (cl *Cluster) Server() *Server { return cl.PartServer(0) }

// PartServer returns partition i's current server engine.
func (cl *Cluster) PartServer(i int) *Server {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.parts[i].server
}

// Servers returns every partition's current server engine, in
// partition order.
func (cl *Cluster) Servers() []*Server {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	out := make([]*Server, 0, len(cl.parts))
	for _, p := range cl.parts {
		out = append(out, p.server)
	}
	return out
}

// Partitions returns the fleet size (1 for a classic single server).
func (cl *Cluster) Partitions() int { return len(cl.parts) }

// Owner returns the partition owning a page.
func (cl *Cluster) Owner(pid page.ID) int { return fleet.Owner(pid, len(cl.parts)) }

// Detector returns the fleet's distributed deadlock detector (nil for
// a single-partition cluster).  Tests call its Sweep directly for
// deterministic resolution.
func (cl *Cluster) Detector() *fleet.Detector { return cl.detector }

// WaitsFor returns the fleet-wide waits-for snapshot: the partitions'
// views merged, every entry tagged with its partition of origin.
func (cl *Cluster) WaitsFor() lock.WaitsForSnapshot {
	servers := cl.Servers()
	snaps := make([]lock.WaitsForSnapshot, 0, len(servers))
	for _, s := range servers {
		snaps = append(snaps, s.WaitsFor())
	}
	return fleet.MergeSnapshots(snaps)
}

// CheckInvariants runs every partition's cross-table consistency check
// and returns the first violation.
func (cl *Cluster) CheckInvariants() error {
	for i, s := range cl.Servers() {
		if err := s.CheckInvariants(); err != nil {
			return fmt.Errorf("partition %d: %w", i, err)
		}
	}
	return nil
}

// Config returns the cluster configuration.
func (cl *Cluster) Config() Config { return cl.cfg }

// WrapConns installs interceptors around every loopback conn built
// from now on: sw around each client's view of each partition server
// (one call per client join/restart and partition; part is the
// partition index, n increases per client conn), cw around the server
// side's view of each client.  The chaos harness uses them to splice
// the fault-injection transports (msg.FaultyServer / msg.FaultyClient)
// into a cluster.  Either may be nil.
func (cl *Cluster) WrapConns(sw func(part, n int, conn msg.Server) msg.Server, cw func(id ident.ClientID, conn msg.Client) msg.Client) {
	cl.mu.Lock()
	cl.wrapServer = sw
	cl.wrapClient = cw
	cl.mu.Unlock()
}

// serverConn builds the client's view of the server tier: a single
// loopback conn for one partition, a fleet.Router over per-partition
// conns otherwise.
func (cl *Cluster) serverConn() msg.Server {
	cl.mu.Lock()
	wrap := cl.wrapServer
	cl.connSeq++
	n := cl.connSeq
	cl.mu.Unlock()
	conns := make([]msg.Server, len(cl.parts))
	for i, part := range cl.parts {
		var conn msg.Server = &msg.LoopbackServer{Inner: part.handle, Latency: cl.cfg.Latency, Stats: cl.Stats}
		if wrap != nil {
			conn = wrap(i, n, conn)
		}
		conns[i] = conn
	}
	if len(conns) == 1 {
		return conns[0]
	}
	return fleet.NewRouter(conns)
}

// clientConn builds the server side's view of a client; in a fleet the
// same conn is attached to every partition.
func (cl *Cluster) clientConn(id ident.ClientID, c *Client) msg.Client {
	var conn msg.Client = &msg.LoopbackClient{Inner: c, Latency: cl.cfg.Latency, Stats: cl.Stats}
	cl.mu.Lock()
	wrap := cl.wrapClient
	cl.mu.Unlock()
	if wrap != nil {
		conn = wrap(id, conn)
	}
	return conn
}

// attachAll attaches a client conn to every partition server.
func (cl *Cluster) attachAll(id ident.ClientID, conn msg.Client) {
	for _, s := range cl.Servers() {
		s.Attach(id, conn)
	}
}

// AddClient joins a new client with a memory-backed private log.
func (cl *Cluster) AddClient() (*Client, error) {
	return cl.AddClientWithLog(memLogStore(cl.cfg, cl.cfg.ClientLogCapacity))
}

// AddDisklessClient joins a client without a local log disk: its
// private log lives at the home partition (Section 2's remote-log
// option) and every append/force is a protocol round trip.
func (cl *Cluster) AddDisklessClient() (*Client, error) {
	srv := cl.serverConn()
	reply, err := srv.Register(msg.RegisterReq{})
	if err != nil {
		return nil, err
	}
	logStore := NewRemoteLogStore(srv, reply.ID)
	c, err := NewClientWithID(cl.cfg, srv, logStore, reply.ID)
	if err != nil {
		return nil, err
	}
	cl.Reg.Lazy(func() { c.RegisterObs(cl.Reg) })
	conn := cl.clientConn(c.ID(), c)
	cl.mu.Lock()
	cl.clients[c.ID()] = &clientSlot{engine: c, logStore: logStore}
	cl.mu.Unlock()
	cl.attachAll(c.ID(), conn)
	return c, nil
}

// AddClientWithLog joins a new client over an explicit log device.
func (cl *Cluster) AddClientWithLog(logStore wal.Store) (*Client, error) {
	c, err := NewClient(cl.cfg, cl.serverConn(), logStore)
	if err != nil {
		return nil, err
	}
	cl.Reg.Lazy(func() { c.RegisterObs(cl.Reg) })
	conn := cl.clientConn(c.ID(), c)
	cl.mu.Lock()
	cl.clients[c.ID()] = &clientSlot{engine: c, logStore: logStore}
	cl.mu.Unlock()
	cl.attachAll(c.ID(), conn)
	return c, nil
}

// Client returns the current engine for a client id.
func (cl *Cluster) Client(id ident.ClientID) *Client {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if slot := cl.clients[id]; slot != nil {
		return slot.engine
	}
	return nil
}

// CrashClient simulates a client crash: the engine loses its volatile
// state and every partition server reacts per §3.3.
func (cl *Cluster) CrashClient(id ident.ClientID) {
	slot := cl.slotFor(id)
	if slot == nil {
		return
	}
	slot.opMu.Lock()
	defer slot.opMu.Unlock()
	if !cl.stillTracked(id, slot) {
		return // departed while we waited
	}
	cl.mu.Lock()
	engine := slot.engine
	slot.crashed = true
	cl.mu.Unlock()
	engine.Crash()
	for _, s := range cl.Servers() {
		s.ClientCrashed(id)
	}
}

// RestartClient runs §3.3 restart recovery for a crashed client and
// returns the fresh engine.
func (cl *Cluster) RestartClient(id ident.ClientID) (*Client, error) {
	slot := cl.slotFor(id)
	if slot == nil {
		return nil, fmt.Errorf("%w %s", ErrUnknownClient, id)
	}
	slot.opMu.Lock()
	defer slot.opMu.Unlock()
	if !cl.stillTracked(id, slot) {
		return nil, fmt.Errorf("%w %s", ErrUnknownClient, id)
	}
	c, err := RecoverClient(cl.cfg, cl.serverConn(), slot.logStore, id)
	if err != nil {
		return nil, err
	}
	cl.Reg.Lazy(func() { c.RegisterObs(cl.Reg) })
	conn := cl.clientConn(id, c)
	cl.attachAll(id, conn)
	cl.mu.Lock()
	slot.engine = c
	slot.crashed = false
	cl.mu.Unlock()
	return c, nil
}

// RemoveClient cleanly departs a client (churn "leave"): the engine
// must be quiescent (no transaction in flight).  The server releases
// the client's locks and forgets it, and the cluster stops tracking the
// slot, so the departed client no longer participates in server restart
// recovery.  Removing a crashed client is an error — crashed clients
// hold retained X locks that only RestartClient or SurrogateRecover may
// release.
func (cl *Cluster) RemoveClient(id ident.ClientID) error {
	slot := cl.slotFor(id)
	if slot == nil {
		return fmt.Errorf("%w %s", ErrUnknownClient, id)
	}
	slot.opMu.Lock()
	defer slot.opMu.Unlock()
	if !cl.stillTracked(id, slot) {
		return fmt.Errorf("%w %s", ErrUnknownClient, id)
	}
	cl.mu.Lock()
	crashed := slot.crashed
	engine := slot.engine
	cl.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	// Orderly shutdown: ship every dirty page, force every page still
	// covered by this client's log, then have the server release the
	// locks and drop the connection.
	if err := engine.Disconnect(); err != nil {
		return err
	}
	// Neutralize the departed engine so a stale handle gets ErrCrashed
	// instead of issuing RPCs as an unregistered client.
	engine.Crash()
	cl.mu.Lock()
	delete(cl.clients, id)
	cl.mu.Unlock()
	return nil
}

// SurrogateRecover recovers a crashed client's updates from its log
// without bringing the client back: the surrogate redoes/undoes per
// §3.3, ships the result, releases the locks and removes the client.
func (cl *Cluster) SurrogateRecover(id ident.ClientID) error {
	slot := cl.slotFor(id)
	if slot == nil {
		return fmt.Errorf("%w %s", ErrUnknownClient, id)
	}
	slot.opMu.Lock()
	defer slot.opMu.Unlock()
	if !cl.stillTracked(id, slot) {
		return fmt.Errorf("%w %s", ErrUnknownClient, id)
	}
	if err := SurrogateRecover(cl.cfg, cl.serverConn(), slot.logStore, id); err != nil {
		return err
	}
	cl.mu.Lock()
	delete(cl.clients, id)
	cl.mu.Unlock()
	return nil
}

// CrashServer simulates a crash of the whole server tier (every
// partition), optionally taking clients down with it (§3.5 complex
// crash).  RestartServer must follow.
func (cl *Cluster) CrashServer(alsoClients ...ident.ClientID) {
	cl.mu.Lock()
	servers := make([]*Server, 0, len(cl.parts))
	for _, p := range cl.parts {
		servers = append(servers, p.server)
	}
	var engines []*Client
	for _, id := range alsoClients {
		if slot := cl.clients[id]; slot != nil {
			slot.crashed = true
			engines = append(engines, slot.engine)
		}
	}
	cl.mu.Unlock()
	for _, s := range servers {
		s.Crash()
	}
	// The hosted remote logs lose their unflushed tails with the server.
	cl.remoteLogs.Crash()
	for _, engine := range engines {
		engine.Crash()
	}
}

// RestartServer reconstructs every partition over its surviving store
// and log and runs §3.4 restart recovery with the operational clients,
// partition by partition in ascending order.  Clients that crashed
// along with the server recover afterwards via RestartClient (§3.5).
func (cl *Cluster) RestartServer() error {
	for i := range cl.parts {
		if err := cl.RestartPartition(i); err != nil {
			return fmt.Errorf("partition %d: %w", i, err)
		}
	}
	return nil
}

// CrashPartition crashes one fleet member; the other partitions and
// the clients keep running.  RestartPartition must follow.  Crashing
// the home partition (0) also loses the hosted remote logs' unflushed
// tails, exactly as a whole-tier crash would.
func (cl *Cluster) CrashPartition(i int) {
	cl.mu.Lock()
	server := cl.parts[i].server
	cl.mu.Unlock()
	server.Crash()
	if i == 0 {
		cl.remoteLogs.Crash()
	}
}

// RestartPartition reconstructs partition i over its surviving store
// and log and runs §3.4 restart recovery against the operational
// clients.  Clients currently crashed are reported as §3.5 complex
// crashes to the new engine; harnesses avoid pairing an independent
// partition crash with a client crash (see DESIGN.md §12) because the
// client-side lock test cannot distinguish which partition's state was
// lost.
func (cl *Cluster) RestartPartition(i int) error {
	pcfg := cl.cfg
	pcfg.PartitionIndex = i
	cl.mu.Lock()
	part := cl.parts[i]
	server := NewServer(pcfg, part.store, part.slog)
	if i == 0 {
		server.HostRemoteLogs(cl.remoteLogs)
	}
	cl.Reg.Lazy(func() { server.RegisterObs(cl.Reg) })
	if cl.tracer != nil {
		server.SetTracer(cl.tracer)
	}
	part.server = server
	type survivor struct {
		id     ident.ClientID
		engine *Client
	}
	var survivors []survivor
	var crashed []ident.ClientID
	for id, slot := range cl.clients {
		if slot.crashed {
			crashed = append(crashed, id)
			continue
		}
		survivors = append(survivors, survivor{id: id, engine: slot.engine})
	}
	cl.mu.Unlock()
	operational := make(map[ident.ClientID]msg.Client)
	for _, sv := range survivors {
		operational[sv.id] = cl.clientConn(sv.id, sv.engine)
	}
	// Reconnect the transports first: the recovery protocol itself makes
	// the clients ship pages back to the new engine.
	part.handle.set(server)
	return server.RecoverServer(operational, crashed)
}

// SeedPages creates n pages with objsPerPage objects of objSize bytes
// directly in stable storage, before any client joins; it returns the
// page ids.  In a fleet the allocations round-robin across the
// partitions' stores (each minting only ids it owns).  The initial
// object bytes are deterministic (pageID/slot-derived) so tests can
// predict them.
func (cl *Cluster) SeedPages(n, objsPerPage, objSize int) ([]page.ID, error) {
	ids := make([]page.ID, 0, n)
	for i := 0; i < n; i++ {
		st := cl.parts[i%len(cl.parts)].store
		p, err := st.Allocate()
		if err != nil {
			return nil, err
		}
		for s := 0; s < objsPerPage; s++ {
			data := make([]byte, objSize)
			for b := range data {
				data[b] = byte(uint64(p.ID())*31 + uint64(s)*7 + uint64(b))
			}
			if _, _, err := p.Insert(data); err != nil {
				return nil, fmt.Errorf("core: seeding page %d: %w", p.ID(), err)
			}
		}
		if err := st.Write(p); err != nil {
			return nil, err
		}
		ids = append(ids, p.ID())
	}
	return ids, nil
}

// ownerPart returns the partition owning a page.
func (cl *Cluster) ownerPart(pid page.ID) *fleetPart {
	return cl.parts[fleet.Owner(pid, len(cl.parts))]
}

// PagePSNs returns the page's PSN on disk and the owning server's
// current (cached-or-disk) PSN.  Disk PSNs only ever advance (in-place
// writes are guarded by replacement records); the chaos harness asserts
// that.
func (cl *Cluster) PagePSNs(pid page.ID) (disk, current page.PSN) {
	part := cl.ownerPart(pid)
	cl.mu.Lock()
	server := part.server
	cl.mu.Unlock()
	if p, err := part.store.Read(pid); err == nil {
		disk = p.PSN()
	}
	return disk, server.PagePSN(pid)
}

// DebugPage renders every tier's view of a page (debug tooling).
func (cl *Cluster) DebugPage(pid page.ID) string {
	part := cl.ownerPart(pid)
	cl.mu.Lock()
	server := part.server
	var clientIDs []ident.ClientID
	for id := range cl.clients {
		clientIDs = append(clientIDs, id)
	}
	cl.mu.Unlock()
	out := server.DebugPage(pid)
	if disk, err := part.store.Read(pid); err == nil {
		out += fmt.Sprintf("disk: psn=%d slots:", disk.PSN())
		for _, sl := range disk.UsedSlotIDs() {
			d, _ := disk.Read(sl)
			out += fmt.Sprintf(" %d@%d=%x", sl, disk.SlotPSN(sl), d[:4])
		}
		out += "\n"
	}
	for _, id := range clientIDs {
		if c := cl.Client(id); c != nil {
			out += c.DebugPage(pid) + "\n"
		}
	}
	return out
}

// ReadObject reads an object's current durable-or-cached state through
// the owning server (test/verification helper; it does not take locks).
func (cl *Cluster) ReadObject(obj page.ObjectID) ([]byte, error) {
	part := cl.ownerPart(obj.Page)
	cl.mu.Lock()
	server := part.server
	cl.mu.Unlock()
	reply, err := server.Fetch(msg.FetchReq{Page: obj.Page})
	if err != nil {
		return nil, err
	}
	p := new(page.Page)
	if err := p.UnmarshalBinary(reply.Image); err != nil {
		return nil, err
	}
	data, ok := p.Read(obj.Slot)
	if !ok {
		return nil, page.ErrBadSlot
	}
	return data, nil
}
