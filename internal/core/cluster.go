package core

import (
	"errors"
	"fmt"
	"sync"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/msg"
	"clientlog/internal/obs"
	"clientlog/internal/page"
	"clientlog/internal/storage"
	"clientlog/internal/trace"
	"clientlog/internal/wal"
)

// serverHandle lets client-side transports survive a server restart:
// the loopback conns delegate to whatever engine currently backs the
// handle.
type serverHandle struct {
	mu    sync.RWMutex
	inner msg.Server
}

func (h *serverHandle) get() msg.Server {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.inner
}

func (h *serverHandle) set(s msg.Server) {
	h.mu.Lock()
	h.inner = s
	h.mu.Unlock()
}

// Each method delegates to the current engine.
func (h *serverHandle) Register(r msg.RegisterReq) (msg.RegisterReply, error) {
	return h.get().Register(r)
}
func (h *serverHandle) Lock(r msg.LockReq) (msg.LockReply, error) { return h.get().Lock(r) }
func (h *serverHandle) LockBatch(r msg.LockBatchReq) (msg.LockBatchReply, error) {
	return h.get().LockBatch(r)
}
func (h *serverHandle) Unlock(r msg.UnlockReq) error { return h.get().Unlock(r) }
func (h *serverHandle) Fetch(r msg.FetchReq) (msg.FetchReply, error) {
	return h.get().Fetch(r)
}
func (h *serverHandle) FetchBatch(r msg.FetchBatchReq) (msg.FetchBatchReply, error) {
	return h.get().FetchBatch(r)
}
func (h *serverHandle) Ship(r msg.ShipReq) error                     { return h.get().Ship(r) }
func (h *serverHandle) Force(r msg.ForceReq) (msg.ForceReply, error) { return h.get().Force(r) }
func (h *serverHandle) Alloc(r msg.AllocReq) (msg.FetchReply, error) {
	return h.get().Alloc(r)
}
func (h *serverHandle) Free(r msg.FreeReq) error             { return h.get().Free(r) }
func (h *serverHandle) CommitShip(r msg.CommitShipReq) error { return h.get().CommitShip(r) }
func (h *serverHandle) Token(r msg.TokenReq) (msg.TokenReply, error) {
	return h.get().Token(r)
}
func (h *serverHandle) RecoveryFetch(r msg.RecoveryFetchReq) (msg.FetchReply, error) {
	return h.get().RecoveryFetch(r)
}
func (h *serverHandle) Reinstall(c ident.ClientID, holds []lock.Holding) error {
	return h.get().Reinstall(c, holds)
}
func (h *serverHandle) RecoverQuery(c ident.ClientID, pages []page.ID) ([]msg.DCTRow, error) {
	return h.get().RecoverQuery(c, pages)
}
func (h *serverHandle) LogOp(r msg.LogReq) (msg.LogReply, error) { return h.get().LogOp(r) }
func (h *serverHandle) RecoverEnd(c ident.ClientID) error        { return h.get().RecoverEnd(c) }
func (h *serverHandle) Disconnect(c ident.ClientID) error        { return h.get().Disconnect(c) }

// ErrUnknownClient reports an operation addressed to a client id the
// cluster does not track (never joined, or already removed by churn).
var ErrUnknownClient = errors.New("core: unknown client")

// clientSlot tracks one client's engine and durable log device across
// crashes.  opMu serializes whole membership operations (crash,
// restart, remove, surrogate recovery) on this client: churn drives
// them concurrently for the same id, and the loser of a race must see
// the winner's completed state (ErrCrashed, ErrUnknownClient), not a
// half-performed transition.  Cluster.mu still guards the clients map
// and slot field access; opMu is always acquired first and never held
// while taking another slot's opMu.
type clientSlot struct {
	opMu     sync.Mutex
	engine   *Client
	logStore wal.Store
	crashed  bool
}

// slotFor fetches the slot for id, or nil.
func (cl *Cluster) slotFor(id ident.ClientID) *clientSlot {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.clients[id]
}

// stillTracked reports whether slot is still the cluster's entry for
// id (a concurrent RemoveClient/SurrogateRecover may have won).
func (cl *Cluster) stillTracked(id ident.ClientID, slot *clientSlot) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.clients[id] == slot
}

// Cluster assembles a server and a set of clients over the in-process
// loopback transport, with crash/restart orchestration.  It is the
// substrate of the integration tests, the simulator, the benchmarks and
// the public API.
type Cluster struct {
	cfg   Config
	Stats *msg.Stats
	// Reg is the cluster-wide metrics registry: every engine (including
	// post-restart incarnations) binds its counters here, and Stats is a
	// façade over the msg_* families in it.
	Reg        *obs.Registry
	store      storage.Store
	slog       wal.Store
	remoteLogs *RemoteLogHost
	handle     *serverHandle

	mu      sync.Mutex
	server  *Server
	clients map[ident.ClientID]*clientSlot
	tracer  trace.Recorder

	// wrapServer/wrapClient intercept the loopback conns (fault
	// injection); see WrapConns.
	wrapServer func(n int, conn msg.Server) msg.Server
	wrapClient func(id ident.ClientID, conn msg.Client) msg.Client
	connSeq    int
}

// NewCluster builds a memory-backed cluster (the "disks" survive
// simulated crashes).
func NewCluster(cfg Config) *Cluster {
	return NewClusterWithStores(cfg, memPageStore(cfg), memLogStore(cfg, 0))
}

// memPageStore builds the in-memory page store with the configured
// simulated device latency.
func memPageStore(cfg Config) *storage.MemStore {
	st := storage.NewMemStore(cfg.PageSize)
	st.SetLatency(cfg.DiskLatency)
	return st
}

// memLogStore builds an in-memory log device with the configured
// simulated fsync latency.
func memLogStore(cfg Config, capacity uint64) *wal.MemStore {
	st := wal.NewMemStore(capacity)
	st.SetFlushLatency(cfg.FsyncLatency)
	return st
}

// NewClusterIn is NewCluster with the engines bound into an existing
// metrics registry (nil means a private one), so a caller that serves
// /metrics can watch the cluster it is about to run.
func NewClusterIn(cfg Config, reg *obs.Registry) *Cluster {
	return NewClusterWithStoresIn(cfg, memPageStore(cfg), memLogStore(cfg, 0), reg)
}

// NewClusterWithStores builds a cluster over explicit stable storage
// and a server log device (e.g. file-backed, for the cmd tools).
func NewClusterWithStores(cfg Config, store storage.Store, slog wal.Store) *Cluster {
	return NewClusterWithStoresIn(cfg, store, slog, nil)
}

// NewClusterWithStoresIn is NewClusterWithStores with an explicit
// registry (nil means a private one).
func NewClusterWithStoresIn(cfg Config, store storage.Store, slog wal.Store, reg *obs.Registry) *Cluster {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cl := &Cluster{
		cfg:     cfg,
		Reg:     reg,
		Stats:   msg.NewStatsIn(reg),
		store:   store,
		slog:    slog,
		handle:  &serverHandle{},
		clients: make(map[ident.ClientID]*clientSlot),
	}
	cl.remoteLogs = NewRemoteLogHost(cfg.ClientLogCapacity)
	cl.server = NewServer(cfg, store, slog)
	cl.server.HostRemoteLogs(cl.remoteLogs)
	srv := cl.server
	reg.Lazy(func() { srv.RegisterObs(reg) })
	cl.handle.set(cl.server)
	return cl
}

// Registry returns the cluster-wide metrics registry.
func (cl *Cluster) Registry() *obs.Registry { return cl.Reg }

// SetTracer installs a protocol-event recorder on the current server
// engine (and future incarnations after RestartServer).
func (cl *Cluster) SetTracer(r trace.Recorder) {
	cl.mu.Lock()
	cl.tracer = r
	server := cl.server
	cl.mu.Unlock()
	server.SetTracer(r)
}

// Server returns the current server engine.
func (cl *Cluster) Server() *Server {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.server
}

// Config returns the cluster configuration.
func (cl *Cluster) Config() Config { return cl.cfg }

// WrapConns installs interceptors around every loopback conn built
// from now on: sw around each client's view of the server (one call per
// client join/restart, n increasing), cw around the server's view of
// each client.  The chaos harness uses them to splice the
// fault-injection transports (msg.FaultyServer / msg.FaultyClient)
// into a cluster.  Either may be nil.
func (cl *Cluster) WrapConns(sw func(n int, conn msg.Server) msg.Server, cw func(id ident.ClientID, conn msg.Client) msg.Client) {
	cl.mu.Lock()
	cl.wrapServer = sw
	cl.wrapClient = cw
	cl.mu.Unlock()
}

// serverConn builds the client's view of the server.
func (cl *Cluster) serverConn() msg.Server {
	var conn msg.Server = &msg.LoopbackServer{Inner: cl.handle, Latency: cl.cfg.Latency, Stats: cl.Stats}
	cl.mu.Lock()
	wrap := cl.wrapServer
	cl.connSeq++
	n := cl.connSeq
	cl.mu.Unlock()
	if wrap != nil {
		conn = wrap(n, conn)
	}
	return conn
}

// clientConn builds the server's view of a client.
func (cl *Cluster) clientConn(id ident.ClientID, c *Client) msg.Client {
	var conn msg.Client = &msg.LoopbackClient{Inner: c, Latency: cl.cfg.Latency, Stats: cl.Stats}
	cl.mu.Lock()
	wrap := cl.wrapClient
	cl.mu.Unlock()
	if wrap != nil {
		conn = wrap(id, conn)
	}
	return conn
}

// AddClient joins a new client with a memory-backed private log.
func (cl *Cluster) AddClient() (*Client, error) {
	return cl.AddClientWithLog(memLogStore(cl.cfg, cl.cfg.ClientLogCapacity))
}

// AddDisklessClient joins a client without a local log disk: its
// private log lives at the server (Section 2's remote-log option) and
// every append/force is a protocol round trip.
func (cl *Cluster) AddDisklessClient() (*Client, error) {
	srv := cl.serverConn()
	reply, err := srv.Register(msg.RegisterReq{})
	if err != nil {
		return nil, err
	}
	logStore := NewRemoteLogStore(srv, reply.ID)
	c, err := NewClientWithID(cl.cfg, srv, logStore, reply.ID)
	if err != nil {
		return nil, err
	}
	cl.Reg.Lazy(func() { c.RegisterObs(cl.Reg) })
	conn := cl.clientConn(c.ID(), c)
	cl.mu.Lock()
	server := cl.server
	cl.clients[c.ID()] = &clientSlot{engine: c, logStore: logStore}
	cl.mu.Unlock()
	server.Attach(c.ID(), conn)
	return c, nil
}

// AddClientWithLog joins a new client over an explicit log device.
func (cl *Cluster) AddClientWithLog(logStore wal.Store) (*Client, error) {
	c, err := NewClient(cl.cfg, cl.serverConn(), logStore)
	if err != nil {
		return nil, err
	}
	cl.Reg.Lazy(func() { c.RegisterObs(cl.Reg) })
	conn := cl.clientConn(c.ID(), c)
	cl.mu.Lock()
	server := cl.server
	cl.clients[c.ID()] = &clientSlot{engine: c, logStore: logStore}
	cl.mu.Unlock()
	server.Attach(c.ID(), conn)
	return c, nil
}

// Client returns the current engine for a client id.
func (cl *Cluster) Client(id ident.ClientID) *Client {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if slot := cl.clients[id]; slot != nil {
		return slot.engine
	}
	return nil
}

// CrashClient simulates a client crash: the engine loses its volatile
// state and the server reacts per §3.3.
func (cl *Cluster) CrashClient(id ident.ClientID) {
	slot := cl.slotFor(id)
	if slot == nil {
		return
	}
	slot.opMu.Lock()
	defer slot.opMu.Unlock()
	if !cl.stillTracked(id, slot) {
		return // departed while we waited
	}
	cl.mu.Lock()
	server := cl.server
	engine := slot.engine
	slot.crashed = true
	cl.mu.Unlock()
	engine.Crash()
	server.ClientCrashed(id)
}

// RestartClient runs §3.3 restart recovery for a crashed client and
// returns the fresh engine.
func (cl *Cluster) RestartClient(id ident.ClientID) (*Client, error) {
	slot := cl.slotFor(id)
	if slot == nil {
		return nil, fmt.Errorf("%w %s", ErrUnknownClient, id)
	}
	slot.opMu.Lock()
	defer slot.opMu.Unlock()
	if !cl.stillTracked(id, slot) {
		return nil, fmt.Errorf("%w %s", ErrUnknownClient, id)
	}
	cl.mu.Lock()
	server := cl.server
	cl.mu.Unlock()
	c, err := RecoverClient(cl.cfg, cl.serverConn(), slot.logStore, id)
	if err != nil {
		return nil, err
	}
	cl.Reg.Lazy(func() { c.RegisterObs(cl.Reg) })
	conn := cl.clientConn(id, c)
	server.Attach(id, conn)
	cl.mu.Lock()
	slot.engine = c
	slot.crashed = false
	cl.mu.Unlock()
	return c, nil
}

// RemoveClient cleanly departs a client (churn "leave"): the engine
// must be quiescent (no transaction in flight).  The server releases
// the client's locks and forgets it, and the cluster stops tracking the
// slot, so the departed client no longer participates in server restart
// recovery.  Removing a crashed client is an error — crashed clients
// hold retained X locks that only RestartClient or SurrogateRecover may
// release.
func (cl *Cluster) RemoveClient(id ident.ClientID) error {
	slot := cl.slotFor(id)
	if slot == nil {
		return fmt.Errorf("%w %s", ErrUnknownClient, id)
	}
	slot.opMu.Lock()
	defer slot.opMu.Unlock()
	if !cl.stillTracked(id, slot) {
		return fmt.Errorf("%w %s", ErrUnknownClient, id)
	}
	cl.mu.Lock()
	crashed := slot.crashed
	engine := slot.engine
	cl.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	// Orderly shutdown: ship every dirty page, force every page still
	// covered by this client's log, then have the server release the
	// locks and drop the connection.
	if err := engine.Disconnect(); err != nil {
		return err
	}
	// Neutralize the departed engine so a stale handle gets ErrCrashed
	// instead of issuing RPCs as an unregistered client.
	engine.Crash()
	cl.mu.Lock()
	delete(cl.clients, id)
	cl.mu.Unlock()
	return nil
}

// SurrogateRecover recovers a crashed client's updates from its log
// without bringing the client back: the surrogate redoes/undoes per
// §3.3, ships the result, releases the locks and removes the client.
func (cl *Cluster) SurrogateRecover(id ident.ClientID) error {
	slot := cl.slotFor(id)
	if slot == nil {
		return fmt.Errorf("%w %s", ErrUnknownClient, id)
	}
	slot.opMu.Lock()
	defer slot.opMu.Unlock()
	if !cl.stillTracked(id, slot) {
		return fmt.Errorf("%w %s", ErrUnknownClient, id)
	}
	if err := SurrogateRecover(cl.cfg, cl.serverConn(), slot.logStore, id); err != nil {
		return err
	}
	cl.mu.Lock()
	delete(cl.clients, id)
	cl.mu.Unlock()
	return nil
}

// CrashServer simulates a server crash, optionally taking clients down
// with it (§3.5 complex crash).  RestartServer must follow.
func (cl *Cluster) CrashServer(alsoClients ...ident.ClientID) {
	cl.mu.Lock()
	server := cl.server
	var engines []*Client
	for _, id := range alsoClients {
		if slot := cl.clients[id]; slot != nil {
			slot.crashed = true
			engines = append(engines, slot.engine)
		}
	}
	cl.mu.Unlock()
	server.Crash()
	// The hosted remote logs lose their unflushed tails with the server.
	cl.remoteLogs.Crash()
	for _, engine := range engines {
		engine.Crash()
	}
}

// RestartServer constructs a fresh server over the surviving store and
// log and runs §3.4 restart recovery with the operational clients.
// Clients that crashed along with the server recover afterwards via
// RestartClient (§3.5).
func (cl *Cluster) RestartServer() error {
	cl.mu.Lock()
	server := NewServer(cl.cfg, cl.store, cl.slog)
	server.HostRemoteLogs(cl.remoteLogs)
	cl.Reg.Lazy(func() { server.RegisterObs(cl.Reg) })
	if cl.tracer != nil {
		server.SetTracer(cl.tracer)
	}
	cl.server = server
	type survivor struct {
		id     ident.ClientID
		engine *Client
	}
	var survivors []survivor
	var crashed []ident.ClientID
	for id, slot := range cl.clients {
		if slot.crashed {
			crashed = append(crashed, id)
			continue
		}
		survivors = append(survivors, survivor{id: id, engine: slot.engine})
	}
	cl.mu.Unlock()
	operational := make(map[ident.ClientID]msg.Client)
	for _, sv := range survivors {
		operational[sv.id] = cl.clientConn(sv.id, sv.engine)
	}
	// Reconnect the transports first: the recovery protocol itself makes
	// the clients ship pages back to the new engine.
	cl.handle.set(server)
	return server.RecoverServer(operational, crashed)
}

// SeedPages creates n pages with objsPerPage objects of objSize bytes
// directly in stable storage, before any client joins; it returns the
// page ids.  The initial object bytes are deterministic
// (pageID/slot-derived) so tests can predict them.
func (cl *Cluster) SeedPages(n, objsPerPage, objSize int) ([]page.ID, error) {
	ids := make([]page.ID, 0, n)
	for i := 0; i < n; i++ {
		p, err := cl.store.Allocate()
		if err != nil {
			return nil, err
		}
		for s := 0; s < objsPerPage; s++ {
			data := make([]byte, objSize)
			for b := range data {
				data[b] = byte(uint64(p.ID())*31 + uint64(s)*7 + uint64(b))
			}
			if _, _, err := p.Insert(data); err != nil {
				return nil, fmt.Errorf("core: seeding page %d: %w", p.ID(), err)
			}
		}
		if err := cl.store.Write(p); err != nil {
			return nil, err
		}
		ids = append(ids, p.ID())
	}
	return ids, nil
}

// PagePSNs returns the page's PSN on disk and the server's current
// (cached-or-disk) PSN.  Disk PSNs only ever advance (in-place writes
// are guarded by replacement records); the chaos harness asserts that.
func (cl *Cluster) PagePSNs(pid page.ID) (disk, current page.PSN) {
	cl.mu.Lock()
	server := cl.server
	cl.mu.Unlock()
	if p, err := cl.store.Read(pid); err == nil {
		disk = p.PSN()
	}
	return disk, server.PagePSN(pid)
}

// DebugPage renders every tier's view of a page (debug tooling).
func (cl *Cluster) DebugPage(pid page.ID) string {
	cl.mu.Lock()
	server := cl.server
	var clientIDs []ident.ClientID
	for id := range cl.clients {
		clientIDs = append(clientIDs, id)
	}
	cl.mu.Unlock()
	out := server.DebugPage(pid)
	if disk, err := cl.store.Read(pid); err == nil {
		out += fmt.Sprintf("disk: psn=%d slots:", disk.PSN())
		for _, sl := range disk.UsedSlotIDs() {
			d, _ := disk.Read(sl)
			out += fmt.Sprintf(" %d@%d=%x", sl, disk.SlotPSN(sl), d[:4])
		}
		out += "\n"
	}
	for _, id := range clientIDs {
		if c := cl.Client(id); c != nil {
			out += c.DebugPage(pid) + "\n"
		}
	}
	return out
}

// ReadObject reads an object's current durable-or-cached state through
// the server (test/verification helper; it does not take locks).
func (cl *Cluster) ReadObject(obj page.ObjectID) ([]byte, error) {
	cl.mu.Lock()
	server := cl.server
	cl.mu.Unlock()
	reply, err := server.Fetch(msg.FetchReq{Page: obj.Page})
	if err != nil {
		return nil, err
	}
	p := new(page.Page)
	if err := p.UnmarshalBinary(reply.Image); err != nil {
		return nil, err
	}
	data, ok := p.Read(obj.Slot)
	if !ok {
		return nil, page.ErrBadSlot
	}
	return data, nil
}
