package core

import (
	"bytes"
	"testing"
	"time"

	"clientlog/internal/page"
)

// --- §3.3: client crash recovery ---

func TestClientCrashCommittedUpdateSurvives(t *testing.T) {
	// A commits an update that never leaves its cache, then crashes.
	// Restart recovery must redo it from the private log and make it
	// visible to the rest of the cluster.
	cl, ids, cs := seededCluster(t, testConfig(), 2, 2)
	a, b := cs[0], cs[1]
	obj := page.ObjectID{Page: ids[0], Slot: 3}

	txn, _ := a.Begin()
	if err := txn.Overwrite(obj, val('K')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	cl.CrashClient(a.ID())

	if _, err := cl.RestartClient(a.ID()); err != nil {
		t.Fatalf("restart: %v", err)
	}
	// B reads the object; the callback pulls the recovered copy.
	tb, _ := b.Begin()
	got, err := tb.Read(obj)
	if err != nil || !bytes.Equal(got, val('K')) {
		t.Fatalf("after client recovery: %q err=%v", got, err)
	}
	tb.Commit()
}

func TestClientCrashActiveTxnRolledBack(t *testing.T) {
	cl, ids, cs := seededCluster(t, testConfig(), 1, 2)
	a, b := cs[0], cs[1]
	obj := page.ObjectID{Page: ids[0], Slot: 2}
	orig, _ := cl.ReadObject(obj)

	// Committed base value, forced log.
	txn, _ := a.Begin()
	if err := txn.Overwrite(obj, val('P')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	_ = orig
	// Uncommitted overwrite; the log tail holding it must be forced so
	// recovery can see (and roll back) the in-flight transaction.
	txn2, _ := a.Begin()
	if err := txn2.Overwrite(obj, val('Q')); err != nil {
		t.Fatal(err)
	}
	if err := a.Log().ForceAll(); err != nil {
		t.Fatal(err)
	}
	cl.CrashClient(a.ID())
	if _, err := cl.RestartClient(a.ID()); err != nil {
		t.Fatal(err)
	}
	tb, _ := b.Begin()
	got, err := tb.Read(obj)
	if err != nil || !bytes.Equal(got, val('P')) {
		t.Fatalf("uncommitted update survived: %q err=%v", got, err)
	}
	tb.Commit()
}

func TestClientCrashUnforcedTailLost(t *testing.T) {
	// An unforced (uncommitted, never-flushed) update simply vanishes
	// with the crash; recovery must not resurrect it and the old value
	// must remain.
	cl, ids, cs := seededCluster(t, testConfig(), 1, 2)
	a, b := cs[0], cs[1]
	obj := page.ObjectID{Page: ids[0], Slot: 1}
	orig, _ := cl.ReadObject(obj)

	txn, _ := a.Begin()
	if err := txn.Overwrite(obj, val('Z')); err != nil {
		t.Fatal(err)
	}
	// No commit, no force: the record is volatile.
	cl.CrashClient(a.ID())
	if _, err := cl.RestartClient(a.ID()); err != nil {
		t.Fatal(err)
	}
	tb, _ := b.Begin()
	got, err := tb.Read(obj)
	if err != nil || !bytes.Equal(got, orig) {
		t.Fatalf("lost-tail update visible: %q want %q err=%v", got, orig, err)
	}
	tb.Commit()
}

func TestClientCrashQueuedCallbacksDrainAfterRecovery(t *testing.T) {
	// While A is down, B's conflicting request is queued (§3.3), then
	// proceeds after A recovers.
	cfg := testConfig()
	cfg.LockTimeout = 10 * time.Second
	cl, ids, cs := seededCluster(t, cfg, 1, 2)
	a, b := cs[0], cs[1]
	obj := page.ObjectID{Page: ids[0], Slot: 0}

	txn, _ := a.Begin()
	if err := txn.Overwrite(obj, val('u')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	cl.CrashClient(a.ID())

	done := make(chan error, 1)
	go func() {
		tb, _ := b.Begin()
		if err := tb.Overwrite(obj, val('v')); err != nil {
			done <- err
			return
		}
		done <- tb.Commit()
	}()
	select {
	case err := <-done:
		t.Fatalf("b proceeded against crashed holder: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	if _, err := cl.RestartClient(a.ID()); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("b after recovery: %v", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("b never unblocked after recovery")
	}
}

func TestClientCrashRecoveryWithCheckpoint(t *testing.T) {
	// Updates before and after a fuzzy checkpoint must both survive.
	cl, ids, cs := seededCluster(t, testConfig(), 2, 1)
	a := cs[0]
	o1 := page.ObjectID{Page: ids[0], Slot: 0}
	o2 := page.ObjectID{Page: ids[1], Slot: 0}

	t1, _ := a.Begin()
	if err := t1.Overwrite(o1, val('1')); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	t2, _ := a.Begin()
	if err := t2.Overwrite(o2, val('2')); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	cl.CrashClient(a.ID())
	a2, err := cl.RestartClient(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := a2.Begin()
	g1, e1 := txn.Read(o1)
	g2, e2 := txn.Read(o2)
	if e1 != nil || e2 != nil || !bytes.Equal(g1, val('1')) || !bytes.Equal(g2, val('2')) {
		t.Fatalf("after ckpt recovery: %q %q (%v %v)", g1, g2, e1, e2)
	}
	txn.Commit()
}

// --- §3.4: server crash recovery ---

func TestServerCrashUpdatesOnlyInServerBuffer(t *testing.T) {
	// The committed update was shipped to the server (replacement) and
	// dropped from the client cache, but never forced to disk.  A server
	// crash loses it; §3.4 recovery reconstructs it from the client's
	// private log.
	cl, ids, cs := seededCluster(t, testConfig(), 2, 1)
	a := cs[0]
	obj := page.ObjectID{Page: ids[0], Slot: 4}

	txn, _ := a.Begin()
	if err := txn.Overwrite(obj, val('S')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.ReplacePage(ids[0]); err != nil {
		t.Fatal(err)
	}
	cl.CrashServer()
	if err := cl.RestartServer(); err != nil {
		t.Fatalf("server restart: %v", err)
	}
	got, err := cl.ReadObject(obj)
	if err != nil || !bytes.Equal(got, val('S')) {
		t.Fatalf("after server recovery: %q err=%v", got, err)
	}
}

func TestServerCrashCachedPagesRefetched(t *testing.T) {
	// The client still caches the dirty page: §3.4 step 4 pulls it
	// instead of running per-page recovery.
	cl, ids, cs := seededCluster(t, testConfig(), 1, 1)
	a := cs[0]
	obj := page.ObjectID{Page: ids[0], Slot: 5}
	txn, _ := a.Begin()
	if err := txn.Overwrite(obj, val('T')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	cl.CrashServer()
	if err := cl.RestartServer(); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadObject(obj)
	if err != nil || !bytes.Equal(got, val('T')) {
		t.Fatalf("after server recovery: %q err=%v", got, err)
	}
	// And the client keeps working against the new server instance.
	txn2, _ := a.Begin()
	if err := txn2.Overwrite(obj, val('U')); err != nil {
		t.Fatal(err)
	}
	if err := txn2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestServerCrashMultiClientSamePageOrderPreserved(t *testing.T) {
	// A updates the object, B takes it over (callback log record) and
	// updates it again; both replace the page; the server crashes before
	// forcing it.  Recovery must end with B's (later) value.
	cl, ids, cs := seededCluster(t, testConfig(), 1, 2)
	a, b := cs[0], cs[1]
	obj := page.ObjectID{Page: ids[0], Slot: 0}
	other := page.ObjectID{Page: ids[0], Slot: 1}

	ta, _ := a.Begin()
	if err := ta.Overwrite(obj, val('A')); err != nil {
		t.Fatal(err)
	}
	// Keep A interested in the page via another object so it retains a
	// lock (and its DPT entry matters).
	if err := ta.Overwrite(other, val('o')); err != nil {
		t.Fatal(err)
	}
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	tb, _ := b.Begin()
	if err := tb.Overwrite(obj, val('B')); err != nil { // callback: A ships
		t.Fatal(err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	if b.Metrics.CallbackRecords.Load() == 0 {
		t.Fatal("no callback log record written for the takeover")
	}
	// Both drop the page so its latest state lives only at the server.
	if err := a.ReplacePage(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := b.ReplacePage(ids[0]); err != nil {
		t.Fatal(err)
	}
	cl.CrashServer()
	if err := cl.RestartServer(); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadObject(obj)
	if err != nil || !bytes.Equal(got, val('B')) {
		t.Fatalf("cross-client order lost: %q err=%v", got, err)
	}
	gotOther, err := cl.ReadObject(other)
	if err != nil || !bytes.Equal(gotOther, val('o')) {
		t.Fatalf("a's other object lost: %q err=%v", gotOther, err)
	}
}

func TestServerCrashParallelPageRecovery(t *testing.T) {
	// Many clients, many pages, disjoint objects: all recoveries run in
	// parallel (§3.4 advantage 3) and every committed value survives.
	cl, ids, cs := seededCluster(t, testConfig(), 4, 4)
	for i, c := range cs {
		txn, _ := c.Begin()
		for _, pid := range ids {
			if err := txn.Overwrite(page.ObjectID{Page: pid, Slot: uint16(i)}, val(byte('a'+i))); err != nil {
				t.Fatalf("client %d: %v", i, err)
			}
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		for _, pid := range ids {
			if err := c.ReplacePage(pid); err != nil {
				t.Fatal(err)
			}
		}
	}
	cl.CrashServer()
	if err := cl.RestartServer(); err != nil {
		t.Fatal(err)
	}
	for i := range cs {
		for _, pid := range ids {
			got, err := cl.ReadObject(page.ObjectID{Page: pid, Slot: uint16(i)})
			if err != nil || !bytes.Equal(got, val(byte('a'+i))) {
				t.Fatalf("page %d slot %d: %q err=%v", pid, i, got, err)
			}
		}
	}
}

func TestServerCrashAfterForceUsesReplacementRecords(t *testing.T) {
	// The page was forced to disk (replacement record written), then
	// updated again by the client; Property 2 must let recovery redo
	// only the post-force updates.
	cl, ids, cs := seededCluster(t, testConfig(), 1, 1)
	a := cs[0]
	obj := page.ObjectID{Page: ids[0], Slot: 2}

	t1, _ := a.Begin()
	if err := t1.Overwrite(obj, val('1')); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.ReplacePage(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Server().FlushAll(); err != nil { // forces + replacement record
		t.Fatal(err)
	}
	t2, _ := a.Begin()
	if err := t2.Overwrite(obj, val('2')); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.ReplacePage(ids[0]); err != nil {
		t.Fatal(err)
	}
	cl.CrashServer()
	if err := cl.RestartServer(); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadObject(obj)
	if err != nil || !bytes.Equal(got, val('2')) {
		t.Fatalf("post-force update lost: %q err=%v", got, err)
	}
	if cl.Server().Metrics.Replacements.Load() == 0 && cl.Server().Log().RecordsAppended() == 0 {
		t.Fatal("no replacement records were ever written")
	}
}

// --- §3.5: complex crashes ---

func TestComplexCrashServerAndClient(t *testing.T) {
	cl, ids, cs := seededCluster(t, testConfig(), 2, 2)
	a, b := cs[0], cs[1]
	objA := page.ObjectID{Page: ids[0], Slot: 0}
	objB := page.ObjectID{Page: ids[1], Slot: 0}

	ta, _ := a.Begin()
	if err := ta.Overwrite(objA, val('C')); err != nil {
		t.Fatal(err)
	}
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	tb, _ := b.Begin()
	if err := tb.Overwrite(objB, val('D')); err != nil {
		t.Fatal(err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	// A's page reaches the server buffer only; B keeps its page cached.
	if err := a.ReplacePage(ids[0]); err != nil {
		t.Fatal(err)
	}
	// Server and A crash together.
	cl.CrashServer(a.ID())
	if err := cl.RestartServer(); err != nil {
		t.Fatalf("server restart: %v", err)
	}
	if _, err := cl.RestartClient(a.ID()); err != nil {
		t.Fatalf("client restart: %v", err)
	}
	got, err := cl.ReadObject(objA)
	if err != nil || !bytes.Equal(got, val('C')) {
		t.Fatalf("a's committed update lost in complex crash: %q err=%v", got, err)
	}
	got, err = cl.ReadObject(objB)
	if err != nil || !bytes.Equal(got, val('D')) {
		// B's value may still be only in B's cache; pull it.
		if err := b.FlushCache(); err != nil {
			t.Fatal(err)
		}
		got, err = cl.ReadObject(objB)
		if err != nil || !bytes.Equal(got, val('D')) {
			t.Fatalf("b's committed update lost: %q err=%v", got, err)
		}
	}
}

func TestComplexCrashUncommittedRolledBack(t *testing.T) {
	cl, ids, cs := seededCluster(t, testConfig(), 1, 1)
	a := cs[0]
	obj := page.ObjectID{Page: ids[0], Slot: 3}
	orig, _ := cl.ReadObject(obj)

	txn, _ := a.Begin()
	if err := txn.Overwrite(obj, val('X')); err != nil {
		t.Fatal(err)
	}
	if err := a.Log().ForceAll(); err != nil { // tail survives; txn uncommitted
		t.Fatal(err)
	}
	if err := a.ReplacePage(ids[0]); err != nil { // dirty page at server only
		t.Fatal(err)
	}
	cl.CrashServer(a.ID())
	if err := cl.RestartServer(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RestartClient(a.ID()); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadObject(obj)
	if err != nil || !bytes.Equal(got, orig) {
		t.Fatalf("uncommitted update visible after complex crash: %q want %q err=%v", got, orig, err)
	}
}

func TestComplexCrashAllClientsAndServer(t *testing.T) {
	cl, ids, cs := seededCluster(t, testConfig(), 2, 2)
	a, b := cs[0], cs[1]
	objA := page.ObjectID{Page: ids[0], Slot: 0}
	objB := page.ObjectID{Page: ids[1], Slot: 1}

	ta, _ := a.Begin()
	if err := ta.Overwrite(objA, val('E')); err != nil {
		t.Fatal(err)
	}
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	tb, _ := b.Begin()
	if err := tb.Overwrite(objB, val('F')); err != nil {
		t.Fatal(err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	cl.CrashServer(a.ID(), b.ID())
	if err := cl.RestartServer(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RestartClient(a.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RestartClient(b.ID()); err != nil {
		t.Fatal(err)
	}
	gA, eA := cl.ReadObject(objA)
	gB, eB := cl.ReadObject(objB)
	if eA != nil || !bytes.Equal(gA, val('E')) {
		t.Fatalf("a's update after total crash: %q err=%v", gA, eA)
	}
	if eB != nil || !bytes.Equal(gB, val('F')) {
		t.Fatalf("b's update after total crash: %q err=%v", gB, eB)
	}
}

// --- §3.6: log space management ---

func TestBoundedLogTriggersForceRequests(t *testing.T) {
	cfg := testConfig()
	cfg.ClientLogCapacity = 4 * 1024 // tiny private log
	cl, ids, cs := seededCluster(t, cfg, 4, 1)
	a := cs[0]
	// Enough update volume to wrap the 4KiB log many times.
	for round := 0; round < 50; round++ {
		txn, _ := a.Begin()
		pid := ids[round%len(ids)]
		if err := txn.Overwrite(page.ObjectID{Page: pid, Slot: uint16(round % 8)}, val(byte(round))); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("round %d commit: %v", round, err)
		}
	}
	if a.Metrics.LogFullEvents.Load() == 0 {
		t.Fatal("log never filled; capacity not exercised")
	}
	if a.Metrics.ForceRequests.Load() == 0 {
		t.Fatal("no §3.6 force-page requests issued")
	}
	// Data integrity: last value of each touched slot is correct.
	got, err := cl.ReadObject(page.ObjectID{Page: ids[49%len(ids)], Slot: uint16(49 % 8)})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.FlushCache(); err != nil {
		t.Fatal(err)
	}
	got, err = cl.ReadObject(page.ObjectID{Page: ids[49%len(ids)], Slot: uint16(49 % 8)})
	if err != nil || !bytes.Equal(got, val(49)) {
		t.Fatalf("final value %q err=%v", got, err)
	}
}

func TestBoundedLogCrashRecoveryStillWorks(t *testing.T) {
	// After heavy reuse of a bounded log, a crash must still recover
	// (the reclaim horizon never passes the min RedoLSN).
	cfg := testConfig()
	cfg.ClientLogCapacity = 8 * 1024
	cl, ids, cs := seededCluster(t, cfg, 2, 1)
	a := cs[0]
	for round := 0; round < 40; round++ {
		txn, _ := a.Begin()
		if err := txn.Overwrite(page.ObjectID{Page: ids[round%2], Slot: 0}, val(byte(round))); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	cl.CrashClient(a.ID())
	a2, err := cl.RestartClient(a.ID())
	if err != nil {
		t.Fatalf("restart after log wrap: %v", err)
	}
	// Client recovery leaves the recovered updates dirty in the client
	// cache (nothing ships at recovery end, per the protocol); read
	// through the client.
	txn, _ := a2.Begin()
	got, err := txn.Read(page.ObjectID{Page: ids[39%2], Slot: 0})
	if err != nil || !bytes.Equal(got, val(39)) {
		t.Fatalf("value after bounded-log recovery: %q err=%v", got, err)
	}
	txn.Commit()
}
