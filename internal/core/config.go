// Package core implements the paper's contribution: the client and
// server engines of a page-server DBMS with fine-granularity locking and
// client-based logging.
//
// The Server (server.go, server_recovery.go) hosts the global lock
// manager, the dirty-client table (DCT), the merge procedure, the
// replacement log records of §3.1 and the restart coordination of §3.4
// and §3.5.  The Client (client.go, txn.go, client_recovery.go) runs
// transactions entirely locally: its private write-ahead log receives
// every log record, commit forces only the local log, rollback and
// restart recovery are local (§3.3), checkpoints are independent and
// fuzzy, and log space is managed per §3.6.
//
// The competing designs that the paper's related-work section argues
// against are available as configuration modes of the same engine so
// that the benchmark harness compares them on equal substrate: page
// level locking, update-token serialization, and shipping log records
// or whole pages to the server at commit (ARIES/CSA- and
// Versant-style).
package core

import (
	"time"

	"clientlog/internal/obs/span"
)

// Granularity selects the locking granularity.
type Granularity int

const (
	// GranAdaptive is the paper's default: object-level locks with
	// adaptive page-level grants and de-escalation on conflict.
	GranAdaptive Granularity = iota
	// GranObject always uses object-level locks.
	GranObject
	// GranPage uses page-level locks only (the authors' earlier
	// page-locking system [20]; baseline for E1).
	GranPage
)

func (g Granularity) String() string {
	switch g {
	case GranAdaptive:
		return "adaptive"
	case GranObject:
		return "object"
	case GranPage:
		return "page"
	default:
		return "granularity(?)"
	}
}

// LoggingMode selects where log records go.
type LoggingMode int

const (
	// LogLocal is the paper's client-based logging: all records stay in
	// the client's private log; nothing is shipped at commit.
	LogLocal LoggingMode = iota
	// LogShipCommit ships the transaction's log records to the server at
	// commit, which forces them to the server log (ARIES/CSA-style
	// baseline for E3/E4).
	LogShipCommit
	// LogShipPages ships the transaction's log records and its dirty
	// pages at commit (Versant-style baseline for E3).
	LogShipPages
)

func (m LoggingMode) String() string {
	switch m {
	case LogLocal:
		return "client-local"
	case LogShipCommit:
		return "ship-log-at-commit"
	case LogShipPages:
		return "ship-pages-at-commit"
	default:
		return "logging(?)"
	}
}

// UpdateMode selects how concurrent updates to one page are reconciled.
type UpdateMode int

const (
	// UpdateMerge is the paper's approach: multiple clients update
	// different objects of a page concurrently and copies are merged.
	UpdateMerge UpdateMode = iota
	// UpdateToken serializes page updates with an update token
	// (update-privilege baseline of §3.1, per Mohan-Narang).
	UpdateToken
)

func (m UpdateMode) String() string {
	if m == UpdateToken {
		return "token"
	}
	return "merge"
}

// Config parameterizes a cluster.
type Config struct {
	// PageSize is the database page size in bytes.
	PageSize int
	// ServerPool and ClientPool are buffer capacities in pages.
	ServerPool int
	ClientPool int
	// Granularity, Logging and Update select the scheme (defaults are
	// the paper's).
	Granularity Granularity
	Logging     LoggingMode
	Update      UpdateMode
	// LockTimeout bounds lock waits.
	LockTimeout time.Duration
	// ClientLogCapacity bounds each private log in bytes (0 =
	// unbounded); §3.6 log space management engages when it fills.
	ClientLogCapacity uint64
	// Latency is the simulated one-way network latency applied by the
	// loopback transport.
	Latency time.Duration
	// DiskLatency is the simulated per-I/O time of the memory-backed
	// page store (0 = instantaneous).  The device itself is concurrent;
	// the knob exists so lock-scaling experiments see realistic I/O time
	// under the server's locks.
	DiskLatency time.Duration
	// FsyncLatency is the simulated fsync time of the memory-backed
	// server and client log devices (0 = instantaneous).  Group commit
	// coalesces concurrent forces onto one such sleep.
	FsyncLatency time.Duration
	// CheckpointEvery takes a fuzzy client checkpoint after that many
	// commits (0 disables automatic checkpoints).
	CheckpointEvery int
	// ServerDirtyLimit bounds the server pool's dirty page count: when
	// a page receipt pushes the count past the limit, the server forces
	// the least-recently-used dirty page (replacement record + in-place
	// write) like a background disk writer would.  0 disables the limit
	// (pages are forced only on pool pressure or explicit §3.6
	// requests).
	ServerDirtyLimit int
	// Spans, when non-nil, enables per-transaction causal tracing:
	// clients open a span tree per transaction, propagate the trace
	// context on their RPCs, and the server stages its side of the work
	// (GLM waits, callback round trips) into the same store.  nil (the
	// default) disables tracing entirely.
	Spans *span.Store
	// BigLock collapses every sharded lock structure (GLM/LLM lock
	// tables, the server's page-state shards) to a single shard,
	// reproducing the pre-sharding serialization.  It exists for one
	// release as the E12 baseline and will then be removed.
	BigLock bool
	// LockShards overrides the GLM/LLM lock-table shard count (0 = the
	// lock package defaults); ignored when BigLock is set.
	LockShards int
	// PageShards overrides the server's page-state shard count (0 = the
	// server default); ignored when BigLock is set.
	PageShards int
	// Partitions is the fleet size: the page space is hash-partitioned
	// across this many server instances and clients route each
	// page-addressed RPC to the owning partition.  0 or 1 means the
	// classic single server.
	Partitions int
	// PartitionIndex is this server instance's partition id in a fleet
	// of Partitions servers; it scopes the instance to the pages it owns
	// and tags its waits-for exports.  Only meaningful on the server
	// side (cmd/clsrv -partition i/N; core.Cluster sets it internally).
	PartitionIndex int
}

// partitions resolves the fleet size (always >= 1).
func (c Config) partitions() int {
	if c.Partitions <= 1 {
		return 1
	}
	return c.Partitions
}

// lockShards resolves the GLM/LLM shard count for this configuration.
func (c Config) lockShards() int {
	if c.BigLock {
		return 1
	}
	return c.LockShards // 0 = package default
}

// pageShards resolves the server page-state shard count.
func (c Config) pageShards() int {
	if c.BigLock {
		return 1
	}
	return c.PageShards // 0 = server default
}

// SchemeName labels the configuration's locking/logging/update scheme
// for tables and metric tags.
func (c Config) SchemeName() string {
	switch {
	case c.Update == UpdateToken:
		return "token"
	case c.Granularity == GranPage:
		return "page-lock"
	case c.Logging == LogShipCommit:
		return "ship-log"
	case c.Logging == LogShipPages:
		return "ship-pages"
	default:
		return "paper"
	}
}

// DefaultConfig returns the paper's scheme with test-friendly sizes.
func DefaultConfig() Config {
	return Config{
		PageSize:    4096,
		ServerPool:  256,
		ClientPool:  64,
		Granularity: GranAdaptive,
		Logging:     LogLocal,
		Update:      UpdateMerge,
		LockTimeout: 10 * time.Second,
	}
}
