package core

import (
	"fmt"
	"sort"

	"clientlog/internal/lock"
	"clientlog/internal/msg"
	"clientlog/internal/obs/span"
	"clientlog/internal/page"
	"clientlog/internal/wal"
)

// ReadMany reads several objects under shared locks, coalescing the
// server round trips: every global lock acquisition the batch needs
// travels in one LockBatch request, and every page image in one
// FetchBatch, instead of one RPC per object.  Semantically it is
// exactly a sequence of Read calls — same locks, same callback log
// records, same coherence refreshes — so a deadlock or timeout on any
// object aborts the whole call with that object's error.
func (t *Txn) ReadMany(objs []page.ObjectID) ([][]byte, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	if len(objs) == 0 {
		return nil, nil
	}
	if err := t.c.acquireBatch(t.st, objs, lock.S); err != nil {
		return nil, err
	}
	// Prefetch the distinct missing pages in one exchange; withPage
	// below then runs entirely against the cache.
	var missing []page.ID
	seen := make(map[page.ID]bool)
	for _, obj := range objs {
		if !seen[obj.Page] && !t.c.pool.Contains(obj.Page) {
			seen[obj.Page] = true
			missing = append(missing, obj.Page)
		}
	}
	if len(missing) > 0 {
		if err := t.c.fetchPages(t.st.tr, missing); err != nil {
			return nil, err
		}
	}
	out := make([][]byte, len(objs))
	for i, obj := range objs {
		i, obj := i, obj
		err := t.c.withPage(t.st.tr, obj.Page, func(p *page.Page) error {
			data, ok := p.Read(obj.Slot)
			if !ok {
				return page.ErrBadSlot
			}
			out[i] = data
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// acquireBatch is the batched analog of acquire: one LLM pass finds the
// names that need a global lock, one LockBatch acquires them, and the
// loop repeats until the LLM grants everything locally (a callback may
// snatch a cached lock away between rounds, exactly as in acquire).
func (c *Client) acquireBatch(t *txnState, objs []page.ObjectID, mode lock.Mode) error {
	names := make([]lock.Name, len(objs))
	for i, o := range objs {
		n := lock.ObjName(o)
		if c.cfg.Granularity == GranPage {
			n = lock.PageName(n.Page)
		}
		names[i] = n
	}
	for {
		var pending []lock.Name
		seen := make(map[lock.Name]bool)
		for _, n := range names {
			res, err := c.llm.AcquireLocal(t.id, n, mode)
			if err != nil {
				return err
			}
			if res == lock.Granted {
				if mode == lock.X {
					c.noteExclusive(n.Page)
				}
				continue
			}
			if !seen[n] {
				seen[n] = true
				pending = append(pending, n)
			}
		}
		if len(pending) == 0 {
			return nil
		}
		items := make([]msg.LockItem, len(pending))
		for i, n := range pending {
			items[i] = msg.LockItem{
				Name:       n,
				Mode:       mode,
				PreferPage: c.cfg.Granularity == GranAdaptive,
				Upgrade:    c.llm.CachesAny(n),
			}
			if mode == lock.X {
				c.mu.Lock()
				if p, ok := c.pool.Get(n.Page); ok {
					items[i].HasCached, items[i].CachedPSN = true, p.PSN()
				}
				c.mu.Unlock()
			}
		}
		sp := t.tr.Start(span.CatLockWait, fmt.Sprintf("batch(%d)", len(items)))
		req := msg.LockBatchReq{Client: c.id, Items: items, Trace: t.tr.Context(sp)}
		reply, err := c.srv.LockBatch(req)
		t.tr.End(sp)
		if err != nil {
			return err
		}
		if len(reply.Grants) != len(items) || len(reply.Errs) != len(items) {
			return fmt.Errorf("core: lock batch reply shape: %d grants, %d errs for %d items",
				len(reply.Grants), len(reply.Errs), len(items))
		}
		var firstErr error
		var refresh []page.ID
		seenPg := make(map[page.ID]bool)
		for i := range items {
			if e := msg.LockErrFromString(reply.Errs[i]); e != nil {
				// Grants before and after the failed item stand (the
				// client caches them; strict 2PL releases at txn end), but
				// the batch as a whole fails with the first error.
				if firstErr == nil {
					firstErr = e
				}
				continue
			}
			g := reply.Grants[i]
			c.llm.InstallCached(g.Name, g.Mode)
			for _, o := range g.Origins {
				c.mu.Lock()
				_, aerr := c.appendLocked(&wal.Callback{Object: o.Object, Responder: o.Responder, PSN: o.PSN}, c.undoReserveLocked(nil))
				c.mu.Unlock()
				if aerr != nil {
					return aerr
				}
				c.Metrics.CallbackRecords.Add(1)
			}
			// Coherence, as in acquire: a cached copy may be stale for
			// objects this client held no lock on.
			if !seenPg[g.Name.Page] && c.pool.Contains(g.Name.Page) {
				seenPg[g.Name.Page] = true
				refresh = append(refresh, g.Name.Page)
			}
		}
		if len(refresh) > 0 {
			if err := c.fetchPages(t.tr, refresh); err != nil {
				return err
			}
		}
		if firstErr != nil {
			return firstErr
		}
	}
}

// fetchPages pulls several pages in one FetchBatch exchange, merging
// each into the cache exactly as refreshPage does (§2 client merge);
// pages absent from the cache are installed directly.
func (c *Client) fetchPages(tr *span.TxnTrace, pids []page.ID) error {
	sort.Slice(pids, func(a, b int) bool { return pids[a] < pids[b] })
	sp := tr.Start(span.CatFetch, fmt.Sprintf("fetch-batch(%d)", len(pids)))
	reply, err := c.srv.FetchBatch(msg.FetchBatchReq{Client: c.id, Pages: pids, Trace: tr.Context(sp)})
	tr.End(sp)
	if err != nil {
		return err
	}
	if len(reply.Images) != len(pids) || len(reply.Errs) != len(pids) {
		return fmt.Errorf("core: fetch batch reply shape: %d images, %d errs for %d pages",
			len(reply.Images), len(reply.Errs), len(pids))
	}
	for i, pid := range pids {
		if reply.Errs[i] != "" {
			return fmt.Errorf("core: fetch page %d: %s", pid, reply.Errs[i])
		}
		incoming := new(page.Page)
		if err := incoming.UnmarshalBinary(reply.Images[i]); err != nil {
			return err
		}
		c.Metrics.PagesFetched.Add(1)
		c.mu.Lock()
		if cur, ok := c.pool.Get(pid); ok {
			merged := page.Merge(cur, incoming)
			c.Metrics.ClientMerges.Add(1)
			c.pool.Put(merged, c.pool.IsDirty(pid))
		} else {
			c.pool.Put(incoming, false)
		}
		victims := c.collectVictimsLocked()
		c.mu.Unlock()
		c.shipVictims(victims)
	}
	return nil
}
