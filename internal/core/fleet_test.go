package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"clientlog/internal/lock"
	"clientlog/internal/page"
)

// fleetConfig returns a small 3-partition configuration.
func fleetConfig() Config {
	cfg := testConfig()
	cfg.Partitions = 3
	return cfg
}

// TestFleetSeedSpansPartitions checks that seeding round-robins page
// ownership across the fleet and every partition's store mints only ids
// it owns.
func TestFleetSeedSpansPartitions(t *testing.T) {
	cl := NewCluster(fleetConfig())
	defer cl.Close()
	ids, err := cl.SeedPages(9, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	owners := make(map[int]int)
	for i, id := range ids {
		owners[cl.Owner(id)]++
		if want := i % 3; cl.Owner(id) != want {
			t.Fatalf("page %d (seed %d): owner %d, want %d", id, i, cl.Owner(id), want)
		}
	}
	for p := 0; p < 3; p++ {
		if owners[p] != 3 {
			t.Fatalf("partition %d owns %d of 9 seeded pages", p, owners[p])
		}
	}
}

// TestFleetCrossPartitionCommit commits one transaction spanning all
// three partitions and reads the values back through each owner.
func TestFleetCrossPartitionCommit(t *testing.T) {
	cl := NewCluster(fleetConfig())
	defer cl.Close()
	ids, err := cl.SeedPages(3, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	txn, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if err := txn.Overwrite(page.ObjectID{Page: id, Slot: 0}, val(byte('A'+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// Flush so every partition's server copy reflects the commit, then
	// read back through the owners.
	if err := c.FlushCache(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		got, err := cl.ReadObject(page.ObjectID{Page: id, Slot: 0})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val(byte('A'+i))) {
			t.Fatalf("page %d (partition %d): got %q", id, cl.Owner(id), got)
		}
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetAllocRoundRobin checks that transaction-driven page
// allocation spreads fresh pages over the fleet, each minted by its
// owning partition's store.
func TestFleetAllocRoundRobin(t *testing.T) {
	cl := NewCluster(fleetConfig())
	defer cl.Close()
	c, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	txn, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	owners := make(map[int]bool)
	for i := 0; i < 6; i++ {
		pid, err := txn.AllocPage()
		if err != nil {
			t.Fatal(err)
		}
		owners[cl.Owner(pid)] = true
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(owners) != 3 {
		t.Fatalf("6 allocations landed on %d partitions, want 3", len(owners))
	}
}

// TestFleetPartitionCrashRestart crashes a single partition after a
// cross-partition commit; restart recovery with the operational client
// must restore the crashed partition's share of the data while the
// other partitions keep serving theirs.
func TestFleetPartitionCrashRestart(t *testing.T) {
	cl := NewCluster(fleetConfig())
	defer cl.Close()
	ids, err := cl.SeedPages(3, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := c.Begin()
	for i, id := range ids {
		if err := txn.Overwrite(page.ObjectID{Page: id, Slot: 1}, val(byte('a'+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	victim := cl.Owner(ids[1])
	cl.CrashPartition(victim)
	if err := cl.RestartPartition(victim); err != nil {
		t.Fatal(err)
	}

	// The client (still operational, holding its committed state) keeps
	// transacting across the whole fleet, including the recovered
	// partition.
	txn2, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		got, err := txn2.Read(page.ObjectID{Page: id, Slot: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 16 {
			t.Fatalf("page %d: bad read %q", id, got)
		}
		if err := txn2.Overwrite(page.ObjectID{Page: id, Slot: 1}, val('z')); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushCache(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		got, err := cl.ReadObject(page.ObjectID{Page: id, Slot: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val('z')) {
			t.Fatalf("page %d after partition restart: got %q", id, got)
		}
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetDistributedDeadlock builds a two-client cycle that spans two
// partitions — each partition's local waits-for graph holds only one
// edge, so only the fleet detector's merged graph can see the cycle —
// and checks that a victim dies with ErrDeadlock, the victim record is
// tagged Distributed with partition provenance, and the survivor
// commits.
func TestFleetDistributedDeadlock(t *testing.T) {
	cfg := fleetConfig()
	cfg.LockTimeout = 30 * time.Second // only the detector may resolve this
	cl := NewCluster(cfg)
	defer cl.Close()
	ids, err := cl.SeedPages(3, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	objA := page.ObjectID{Page: ids[0], Slot: 0} // partition 0
	objB := page.ObjectID{Page: ids[1], Slot: 0} // partition 1

	c1, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}

	t1, _ := c1.Begin()
	t2, _ := c2.Begin()
	if err := t1.Overwrite(objA, val('1')); err != nil {
		t.Fatal(err)
	}
	if err := t2.Overwrite(objB, val('2')); err != nil {
		t.Fatal(err)
	}

	type result struct {
		txn *Txn
		err error
	}
	results := make(chan result, 2)
	go func() { results <- result{t1, t1.Overwrite(objB, val('1'))} }()
	go func() { results <- result{t2, t2.Overwrite(objA, val('2'))} }()

	// Sweep the detector until someone dies (the background sweeper
	// would get there too; driving it keeps the test fast).  The
	// survivor stays blocked until the victim aborts, so only one result
	// can arrive here.
	var first result
	deadline := time.After(20 * time.Second)
sweep:
	for {
		select {
		case first = <-results:
			break sweep
		case <-deadline:
			t.Fatal("distributed deadlock never resolved")
		case <-time.After(5 * time.Millisecond):
			cl.Detector().Sweep()
		}
	}
	if !errors.Is(first.err, lock.ErrDeadlock) {
		t.Fatalf("victim error = %v, want ErrDeadlock", first.err)
	}
	if err := first.txn.Abort(); err != nil {
		t.Fatal(err)
	}
	// The abort releases the victim's locks; the survivor's blocked
	// acquisition now completes and its transaction commits.
	second := <-results
	if second.err != nil {
		t.Fatalf("survivor acquisition failed: %v", second.err)
	}
	if err := second.txn.Commit(); err != nil {
		t.Fatalf("survivor commit after victim abort: %v", err)
	}

	snap := cl.WaitsFor()
	foundDist := false
	for _, v := range snap.Victims {
		if v.Distributed {
			foundDist = true
			if len(v.Cycle) < 2 {
				t.Fatalf("distributed victim cycle too short: %v", v.Cycle)
			}
		}
	}
	if !foundDist {
		t.Fatalf("no Distributed victim in merged snapshot: %+v", snap.Victims)
	}
	if n := cl.Detector().Metrics.Kills.Load(); n < 1 {
		t.Fatalf("detector kill counter = %d", n)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetCrossPartitionCommitSurvivesPartitionCrash is the property
// test from the issue: commit a cross-partition transaction, crash one
// involved partition before the client ships anything, restart it, and
// check every committed value (including the crashed partition's share)
// is readable fleet-wide.
func TestFleetCrossPartitionCommitSurvivesPartitionCrash(t *testing.T) {
	for victim := 0; victim < 3; victim++ {
		cl := NewCluster(fleetConfig())
		ids, err := cl.SeedPages(6, 8, 16)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cl.AddClient()
		if err != nil {
			t.Fatal(err)
		}
		txn, _ := c.Begin()
		for i, id := range ids {
			if err := txn.Overwrite(page.ObjectID{Page: id, Slot: 2}, val(byte('A'+i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}

		// Commit forced only the client's private log (the paper's
		// §2 durability point); the victim partition's volatile state dies
		// now, before any page was shipped.
		cl.CrashPartition(victim)
		if err := cl.RestartPartition(victim); err != nil {
			t.Fatalf("victim %d: %v", victim, err)
		}
		if err := c.FlushCache(); err != nil {
			t.Fatalf("victim %d: %v", victim, err)
		}
		for i, id := range ids {
			got, err := cl.ReadObject(page.ObjectID{Page: id, Slot: 2})
			if err != nil {
				t.Fatalf("victim %d page %d: %v", victim, id, err)
			}
			if !bytes.Equal(got, val(byte('A'+i))) {
				t.Fatalf("victim %d page %d (owner %d): lost committed value, got %q",
					victim, id, cl.Owner(id), got)
			}
		}
		if err := cl.CheckInvariants(); err != nil {
			t.Fatalf("victim %d: %v", victim, err)
		}
		cl.Close()
	}
}
