package core

import (
	"fmt"
	"sync"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/msg"
	"clientlog/internal/page"
	"clientlog/internal/trace"
	"clientlog/internal/wal"
)

// restartInfo is the state the server retains from its own restart
// recovery so that clients crashed at the same time (§3.5 complex
// crash) can later be answered by RecoverQuery.
type restartInfo struct {
	diskPSN map[page.ID]page.PSN
	logDCT  map[dctKey]page.PSN
	crashed map[ident.ClientID]bool
}

// dctInsertIfAbsent inserts a NULL DCT row for key unless one exists.
func (s *Server) dctInsertIfAbsent(key dctKey) {
	sh := s.shardOf(key.pg)
	sh.mu.Lock()
	if _, ok := sh.dct[key]; !ok {
		sh.dct[key] = &dctEntry{psn: 0, redoLSN: wal.NilLSN}
	}
	sh.mu.Unlock()
}

// RecoverServer runs the §3.4 server restart recovery on a freshly
// constructed Server over the surviving stable storage and server log.
//
//	operational: conns of the clients that survived the crash
//	crashed:     ids of clients that crashed together with the server
//	             (§3.5); they run RecoverClient afterwards
//
// The steps follow the paper: (a) determine the pages requiring
// recovery, (b) identify the involved clients, (c) reconstruct the DCT,
// (d) coordinate the per-page recovery among the involved clients —
// which proceeds in parallel across clients and pages (advantage 3).
func (s *Server) RecoverServer(operational map[ident.ClientID]msg.Client, crashed []ident.ClientID) error {
	for id, conn := range operational {
		s.Attach(id, conn)
	}
	s.Metrics.RecoverySteps.Inc()
	s.tracer.Record(trace.RecoveryStep, 0, 0,
		fmt.Sprintf("server restart: %d operational, %d crashed", len(operational), len(crashed)))
	ri := &restartInfo{
		diskPSN: make(map[page.ID]page.PSN),
		logDCT:  make(map[dctKey]page.PSN),
		crashed: make(map[ident.ClientID]bool),
	}
	s.complexMu.Lock()
	for _, c := range crashed {
		ri.crashed[c] = true
		s.complexPending[c] = true
	}
	s.complexMu.Unlock()
	for _, c := range crashed {
		s.glm.ClientCrashed(c)
	}

	// Solicit each operational client's DPT, cache list and LLM table;
	// the GLM is rebuilt from the latter.  Clients report fleet-wide
	// state (their caches span every partition), so a fleet member keeps
	// only the pages it owns — the rest are another partition's problem.
	infos := make(map[ident.ClientID]msg.RecoveryInfoReply)
	for id, conn := range operational {
		info, err := conn.RecoveryInfo()
		if err != nil {
			return fmt.Errorf("core: recovery info from %s: %w", id, err)
		}
		infos[id] = info
		for _, h := range info.Locks {
			if !s.owns(h.Name.Page) {
				continue
			}
			s.glm.Install(id, h.Name, h.Mode)
		}
	}

	// (a)+(b): candidates are pages with a DPT entry at some client that
	// does not cache the page; those (page, client) pairs are involved.
	type involvedKey struct {
		pid page.ID
		c   ident.ClientID
	}
	cached := make(map[ident.ClientID]map[page.ID]bool)
	for id, info := range infos {
		set := make(map[page.ID]bool, len(info.Cached))
		for _, pid := range info.Cached {
			set[pid] = true
		}
		cached[id] = set
	}
	var involved []involvedKey
	candidate := make(map[page.ID]bool)
	for id, info := range infos {
		for _, de := range info.DPT {
			if !s.owns(de.Page) {
				continue
			}
			if !cached[id][de.Page] {
				involved = append(involved, involvedKey{pid: de.Page, c: id})
				candidate[de.Page] = true
			}
		}
	}

	// (c) DCT reconstruction, steps 1-4 of §3.4.  Recovery runs before
	// the server serves requests, so per-shard locking here is about
	// memory ordering, not contention.
	//
	// Step 1: <PID, CID, NULL, NULL> for every page in an operational
	// client's DPT.
	for id, info := range infos {
		for _, de := range info.DPT {
			if !s.owns(de.Page) {
				continue
			}
			s.dctInsertIfAbsent(dctKey{pg: de.Page, c: id})
		}
	}
	// Invariant restoration (beyond the paper's step 1): a client may
	// hold a rebuilt exclusive lock on a page whose updates were all
	// flushed (no DPT entry).  Normal processing maintains "X held ⇒
	// DCT entry exists" — Lock() only inserts on the FIRST exclusive
	// grant — so reconstruct entries for every reported X lock too, or
	// the client's post-restart updates under the cached lock would be
	// invisible to its next crash recovery (found by the randomized
	// torture sweep, seed 1173).
	for id, info := range infos {
		for _, h := range info.Locks {
			if h.Mode != lock.X || !s.owns(h.Name.Page) {
				continue
			}
			s.dctInsertIfAbsent(dctKey{pg: h.Name.Page, c: id})
		}
	}
	// Step 2: read the candidate pages from disk and remember their
	// PSNs.
	for pid := range candidate {
		p, err := s.store.Read(pid)
		if err != nil {
			return fmt.Errorf("core: reading candidate page %d: %w", pid, err)
		}
		ri.diskPSN[pid] = p.PSN()
		sh := s.shardOf(pid)
		sh.mu.Lock()
		s.pool.Put(p, false)
		sh.mu.Unlock()
	}

	// Step 3a: the DCT stored in the last complete server checkpoint
	// gives the scan start.
	scanFrom := s.slog.Horizon()
	{
		var lastCkpt *wal.ServerCheckpoint
		sc := s.slog.Scan(s.slog.Horizon())
		for sc.Next() {
			if cp, ok := sc.Record().(*wal.ServerCheckpoint); ok {
				lastCkpt = cp
			}
		}
		if sc.Err() != nil {
			return fmt.Errorf("core: server checkpoint scan: %w", sc.Err())
		}
		if lastCkpt != nil && len(lastCkpt.DCT) > 0 {
			min := wal.LSN(0)
			found := false
			for _, e := range lastCkpt.DCT {
				if e.RedoLSN == wal.NilLSN {
					continue
				}
				if !found || e.RedoLSN < min {
					min, found = e.RedoLSN, true
				}
			}
			if found {
				scanFrom = min
			}
		}
	}
	// Step 3b: scan replacement records; each record touches only its
	// page's shard.
	sc := s.slog.Scan(scanFrom)
	for sc.Next() {
		rep, ok := sc.Record().(*wal.Replacement)
		if !ok {
			continue
		}
		lsn := sc.LSN()
		sh := s.shardOf(rep.Page)
		sh.mu.Lock()
		anyEntry := false
		for k, e := range sh.dct {
			if k.pg != rep.Page {
				continue
			}
			anyEntry = true
			if e.redoLSN == wal.NilLSN {
				e.redoLSN = lsn // step 3b(i)
			}
		}
		// Step 3b(ii): the record matching the disk PSN pins down which
		// client updates the disk copy holds (Property 2).
		if disk, isCand := ri.diskPSN[rep.Page]; isCand && rep.PagePSN == disk {
			for _, ent := range rep.Entries {
				ri.logDCT[dctKey{pg: rep.Page, c: ent.Client}] = ent.PSN
				if anyEntry {
					if e, ok := sh.dct[dctKey{pg: rep.Page, c: ent.Client}]; ok {
						e.psn = ent.PSN
					}
				}
			}
		}
		sh.mu.Unlock()
	}
	if sc.Err() != nil {
		return fmt.Errorf("core: replacement scan: %w", sc.Err())
	}

	// Pages in constructed DCT entries with still-NULL PSNs that are NOT
	// candidates get the disk PSN fallback at RecoverQuery time; for
	// candidate pages the §3.4 per-page recovery below fills them in.

	// Step 4: pull the cached copies of DPT pages from the operational
	// clients and merge them (updates the DCT PSNs through the ship
	// path).
	for id, conn := range operational {
		var want []page.ID
		for _, de := range infos[id].DPT {
			if s.owns(de.Page) && cached[id][de.Page] {
				want = append(want, de.Page)
			}
		}
		if len(want) == 0 {
			continue
		}
		images, err := conn.FetchCached(want)
		if err != nil {
			return fmt.Errorf("core: fetching cached pages from %s: %w", id, err)
		}
		for _, img := range images {
			p := new(page.Page)
			if uerr := p.UnmarshalBinary(img); uerr != nil {
				return uerr
			}
			sh := s.shardOf(p.ID())
			sh.mu.Lock()
			rerr := s.receiveShard(sh, id, p, msg.ShipCallback)
			sh.mu.Unlock()
			if rerr != nil {
				return rerr
			}
		}
		s.evict()
	}

	// (d) Per-page coordination: build the merged CallBack_P list for
	// each involved (page, client) pair and let the clients recover in
	// parallel.
	for _, ik := range involved {
		sh := s.shardOf(ik.pid)
		sh.mu.Lock()
		sh.recovering[dctKey{pg: ik.pid, c: ik.c}] = true
		sh.mu.Unlock()
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(involved))
	for _, ik := range involved {
		cbList, err := s.collectCallbacks(operational, cached, ik.pid, ik.c)
		if err != nil {
			return err
		}
		sh := s.shardOf(ik.pid)
		sh.mu.Lock()
		reply, ferr := s.fetchShard(sh, ik.c, ik.pid)
		var psn page.PSN
		if e, ok := sh.dct[dctKey{pg: ik.pid, c: ik.c}]; ok {
			psn = e.psn
		}
		sh.mu.Unlock()
		if psn == 0 {
			// No matching replacement entry: the disk PSN bounds what is
			// durable (see DESIGN.md on the NULL-PSN fallback).
			psn = ri.diskPSN[ik.pid]
		}
		if ferr != nil {
			return ferr
		}
		conn := operational[ik.c]
		req := msg.RecoverPageReq{Page: ik.pid, Image: reply.Image, DCTPSN: psn, Callbacks: cbList}
		wg.Add(1)
		go func(conn msg.Client, req msg.RecoverPageReq) {
			defer wg.Done()
			if err := conn.RecoverPage(req); err != nil {
				errs <- err
			}
		}(conn, req)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return fmt.Errorf("core: page recovery: %w", err)
		}
	}
	s.Metrics.RecoverySteps.Inc()
	s.tracer.Record(trace.RecoveryStep, 0, 0,
		fmt.Sprintf("server restart complete: %d page recoveries", len(involved)))

	s.stateMu.Lock()
	s.restart = ri
	s.stateMu.Unlock()
	// A fresh checkpoint shortens the next restart.
	return s.Checkpoint()
}

// collectCallbacks gathers the CallBack_P lists of §3.4 step 1 from
// every operational client that caches the page, merging entries for
// the same object by keeping the maximum PSN (step 2).
func (s *Server) collectCallbacks(operational map[ident.ClientID]msg.Client,
	cached map[ident.ClientID]map[page.ID]bool, pid page.ID, target ident.ClientID) ([]msg.CallbackOrigin, error) {
	best := make(map[page.ObjectID]msg.CallbackOrigin)
	for id, conn := range operational {
		if id == target {
			continue
		}
		if !cached[id][pid] {
			continue // §3.4: "each client Ci that has P in its cache"
		}
		reply, err := conn.CallbackList(msg.CallbackListReq{Page: pid, Target: target})
		if err != nil {
			return nil, fmt.Errorf("core: callback list from %s: %w", id, err)
		}
		for _, e := range reply.Entries {
			if cur, ok := best[e.Object]; !ok || e.PSN > cur.PSN {
				best[e.Object] = e
			}
		}
	}
	out := make([]msg.CallbackOrigin, 0, len(best))
	for _, e := range best {
		out = append(out, e)
	}
	return out, nil
}

// Reinstall implements msg.Server (§3.5): a client recovering from a
// complex crash regains the exclusive locks covering its uncommitted
// transactions.
func (s *Server) Reinstall(c ident.ClientID, holds []lock.Holding) error {
	for _, h := range holds {
		s.glm.Install(c, h.Name, h.Mode)
	}
	return nil
}

// RecoverQuery implements msg.Server: map a recovering client's DPT
// pages to the DCT rows bounding its redo pass.  Live DCT entries win;
// after a complex crash the rows are reconstructed from the replacement
// log records (Property 2) with the disk PSN as the fallback for pages
// that were never forced since the entry appeared.
func (s *Server) RecoverQuery(c ident.ClientID, pages []page.ID) ([]msg.DCTRow, error) {
	s.stateMu.Lock()
	restart := s.restart
	s.stateMu.Unlock()
	var rows []msg.DCTRow
	for _, pid := range pages {
		sh := s.shardOf(pid)
		sh.mu.Lock()
		e, live := sh.dct[dctKey{pg: pid, c: c}]
		var psn page.PSN
		if live {
			psn = e.psn
		}
		sh.mu.Unlock()
		if live && psn != 0 {
			rows = append(rows, msg.DCTRow{Page: pid, PSN: psn})
			continue
		}
		if restart != nil && restart.crashed[c] {
			if psn, ok := restart.logDCT[dctKey{pg: pid, c: c}]; ok {
				// A replacement record matching the crash-time disk PSN
				// names this client: its PSN is the true Property 1
				// threshold.
				rows = append(rows, msg.DCTRow{Page: pid, PSN: psn})
				continue
			}
			// No per-client record survives.  The disk PSN is NOT a safe
			// threshold here: it is inflated by other clients' merges and
			// forces, while this client's unshipped updates carry PSNs
			// minted against an older copy — a threshold above them would
			// silently skip committed work (found by the randomized
			// torture sweep).  Redo everything instead: replaying from
			// the beginning is idempotent for this client's objects, and
			// the per-slot PSN merge keeps other clients' newer updates
			// on top of any stale re-application.
			if _, err := s.store.Read(pid); err != nil {
				continue // page gone (freed); nothing to recover
			}
			rows = append(rows, msg.DCTRow{Page: pid, PSN: 0})
			continue
		}
		if live {
			// Live entry with PSN 0 (first-X before any receipt): redo
			// everything for this page.
			rows = append(rows, msg.DCTRow{Page: pid, PSN: psn})
		}
	}
	return rows, nil
}

// RecoveryFetch implements msg.Server: the §3.4 step-3 page handoff
// between two clients recovering the same page in parallel.  The server
// returns its merged copy once CID's recovery has shipped a copy
// covering all its log records below PSN (or finished the page).
func (s *Server) RecoveryFetch(req msg.RecoveryFetchReq) (msg.FetchReply, error) {
	key := dctKey{pg: req.Page, c: req.CID}
	sh := s.shardOf(req.Page)
	sh.mu.Lock()
	e := sh.dct[key]
	satisfied := sh.recovered[key] || !sh.recovering[key] ||
		(e != nil && e.psn >= req.PSN)
	if satisfied {
		reply, err := s.fetchShard(sh, req.Client, req.Page)
		sh.mu.Unlock()
		return reply, err
	}
	sh.mu.Unlock()
	conn := s.conn(req.CID)
	if conn == nil {
		sh.mu.Lock()
		reply, err := s.fetchShard(sh, req.Client, req.Page)
		sh.mu.Unlock()
		return reply, err
	}
	// Block until CID's recovery has processed every record below PSN
	// and shipped its interim copy; the merged server copy then holds
	// everything the requester needs.
	if err := conn.RecoveryShipUpTo(req.Page, req.PSN); err != nil {
		return msg.FetchReply{}, fmt.Errorf("core: recovery handoff of page %d from %s: %w", req.Page, req.CID, err)
	}
	sh.mu.Lock()
	reply, err := s.fetchShard(sh, req.Client, req.Page)
	sh.mu.Unlock()
	return reply, err
}

// markRecovered notes that CID's recovery of the page completed;
// RecoveryFetch callers re-check on their next attempt.  Called with
// sh.mu held (sh is the page's shard).
func (s *Server) markRecovered(sh *pageShard, pid page.ID, c ident.ClientID) {
	sh.recovered[dctKey{pg: pid, c: c}] = true
	delete(sh.recovering, dctKey{pg: pid, c: c})
}
