package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"clientlog/internal/page"
)

// testConfig returns a small, fast configuration.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.PageSize = 1024
	cfg.ServerPool = 64
	cfg.ClientPool = 16
	cfg.LockTimeout = 5 * time.Second
	return cfg
}

// seededCluster builds a cluster with nPages seeded pages (8 objects of
// 16 bytes each) and nClients clients.
func seededCluster(t *testing.T, cfg Config, nPages, nClients int) (*Cluster, []page.ID, []*Client) {
	t.Helper()
	cl := NewCluster(cfg)
	ids, err := cl.SeedPages(nPages, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, nClients)
	for i := range clients {
		c, err := cl.AddClient()
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	return cl, ids, clients
}

func val(tag byte) []byte {
	out := make([]byte, 16)
	for i := range out {
		out[i] = tag
	}
	return out
}

func TestCommitReadBack(t *testing.T) {
	cl, ids, cs := seededCluster(t, testConfig(), 2, 1)
	c := cs[0]
	obj := page.ObjectID{Page: ids[0], Slot: 3}

	txn, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Overwrite(obj, val('A')); err != nil {
		t.Fatal(err)
	}
	got, err := txn.Read(obj)
	if err != nil || !bytes.Equal(got, val('A')) {
		t.Fatalf("read own write: %q err=%v", got, err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// A second transaction on the same client sees it (cache + cached
	// locks, zero server messages for the read).
	txn2, _ := c.Begin()
	got, err = txn2.Read(obj)
	if err != nil || !bytes.Equal(got, val('A')) {
		t.Fatalf("next txn read: %q err=%v", got, err)
	}
	if err := txn2.Commit(); err != nil {
		t.Fatal(err)
	}
	// Commit in the paper's mode ships nothing: the server's copy is
	// still the seeded one until a callback or replacement.
	if n := cl.Server().Metrics.Merges.Load(); n != 0 {
		t.Fatalf("server merged %d pages without any ship", n)
	}
}

func TestCommitForcesPrivateLog(t *testing.T) {
	_, ids, cs := seededCluster(t, testConfig(), 1, 1)
	c := cs[0]
	txn, _ := c.Begin()
	if err := txn.Overwrite(page.ObjectID{Page: ids[0], Slot: 0}, val('B')); err != nil {
		t.Fatal(err)
	}
	durableBefore := c.Log().Durable()
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if c.Log().Durable() <= durableBefore {
		t.Fatal("commit did not force the private log")
	}
}

func TestAbortRestoresValues(t *testing.T) {
	cl, ids, cs := seededCluster(t, testConfig(), 1, 1)
	c := cs[0]
	obj := page.ObjectID{Page: ids[0], Slot: 2}

	before, err := cl.ReadObject(obj)
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := c.Begin()
	if err := txn.Overwrite(obj, val('C')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Overwrite(obj, val('D')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}
	txn2, _ := c.Begin()
	got, err := txn2.Read(obj)
	if err != nil || !bytes.Equal(got, before) {
		t.Fatalf("after abort: %q, want %q (err=%v)", got, before, err)
	}
	txn2.Commit()
}

func TestSavepointPartialRollback(t *testing.T) {
	_, ids, cs := seededCluster(t, testConfig(), 1, 1)
	c := cs[0]
	o1 := page.ObjectID{Page: ids[0], Slot: 0}
	o2 := page.ObjectID{Page: ids[0], Slot: 1}

	txn, _ := c.Begin()
	if err := txn.Overwrite(o1, val('E')); err != nil {
		t.Fatal(err)
	}
	sp := txn.Savepoint()
	if err := txn.Overwrite(o2, val('F')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Overwrite(o1, val('G')); err != nil {
		t.Fatal(err)
	}
	if err := txn.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	g1, _ := txn.Read(o1)
	g2, _ := txn.Read(o2)
	if !bytes.Equal(g1, val('E')) {
		t.Fatalf("o1 after partial rollback: %q, want E's", g1)
	}
	orig2 := make([]byte, 16)
	for b := range orig2 {
		orig2[b] = byte(uint64(ids[0])*31 + 1*7 + uint64(b))
	}
	if !bytes.Equal(g2, orig2) {
		t.Fatalf("o2 after partial rollback: %q, want seed value", g2)
	}
	// The transaction continues and commits the surviving update.
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteResize(t *testing.T) {
	_, ids, cs := seededCluster(t, testConfig(), 1, 1)
	c := cs[0]
	txn, _ := c.Begin()
	obj, err := txn.Insert(ids[0], []byte("created"))
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Resize(obj, []byte("created and grown")); err != nil {
		t.Fatal(err)
	}
	got, _ := txn.Read(obj)
	if string(got) != "created and grown" {
		t.Fatalf("after resize: %q", got)
	}
	if err := txn.Delete(obj); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Read(obj); err == nil {
		t.Fatal("read of deleted object succeeded")
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestStructuralAbortRestoresStructure(t *testing.T) {
	_, ids, cs := seededCluster(t, testConfig(), 1, 1)
	c := cs[0]
	// Delete an existing object and insert a new one, then abort.
	victim := page.ObjectID{Page: ids[0], Slot: 5}
	txn, _ := c.Begin()
	origVal, err := txn.Read(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Delete(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Insert(ids[0], []byte("ghost")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}
	txn2, _ := c.Begin()
	got, err := txn2.Read(victim)
	if err != nil || !bytes.Equal(got, origVal) {
		t.Fatalf("deleted object not restored: %q err=%v", got, err)
	}
	txn2.Commit()
}

func TestLogicalCounter(t *testing.T) {
	_, ids, cs := seededCluster(t, testConfig(), 1, 1)
	c := cs[0]
	// Make slot 0 an 8-byte counter.
	obj := page.ObjectID{Page: ids[0], Slot: 0}
	txn, _ := c.Begin()
	if err := txn.Resize(obj, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Add(obj, 40); err != nil {
		t.Fatal(err)
	}
	if err := txn.Add(obj, 2); err != nil {
		t.Fatal(err)
	}
	v, err := txn.ReadCounter(obj)
	if err != nil || v != 42 {
		t.Fatalf("counter = %d err=%v", v, err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// Logical undo: add then abort.
	txn2, _ := c.Begin()
	if err := txn2.Add(obj, 100); err != nil {
		t.Fatal(err)
	}
	if err := txn2.Abort(); err != nil {
		t.Fatal(err)
	}
	txn3, _ := c.Begin()
	v, err = txn3.ReadCounter(obj)
	if err != nil || v != 42 {
		t.Fatalf("counter after logical undo = %d err=%v", v, err)
	}
	txn3.Commit()
}

func TestConcurrentSamePageDifferentObjects(t *testing.T) {
	// The paper's headline capability: two clients update different
	// objects of the same page concurrently, nothing is forced to disk,
	// and the merge reconciles the copies.
	cl, ids, cs := seededCluster(t, testConfig(), 1, 2)
	a, b := cs[0], cs[1]
	oa := page.ObjectID{Page: ids[0], Slot: 0}
	ob := page.ObjectID{Page: ids[0], Slot: 1}

	ta, _ := a.Begin()
	if err := ta.Overwrite(oa, val('a')); err != nil {
		t.Fatal(err)
	}
	tb, _ := b.Begin()
	if err := tb.Overwrite(ob, val('b')); err != nil {
		t.Fatal(err)
	}
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	// Cross-reads force the copies together via callbacks + merging.
	t2, _ := a.Begin()
	gotB, err := t2.Read(ob)
	if err != nil || !bytes.Equal(gotB, val('b')) {
		t.Fatalf("a reads b's object: %q err=%v", gotB, err)
	}
	t2.Commit()
	t3, _ := b.Begin()
	gotA, err := t3.Read(oa)
	if err != nil || !bytes.Equal(gotA, val('a')) {
		t.Fatalf("b reads a's object: %q err=%v", gotA, err)
	}
	t3.Commit()
	if cl.Server().Metrics.Merges.Load() == 0 {
		t.Fatal("no merges happened; concurrency was serialized unexpectedly")
	}
}

func TestWriteConflictCallback(t *testing.T) {
	// B overwrites an object A also wrote: the callback must ship A's
	// committed update to the server before B proceeds, so B's read
	// sees A's value.
	_, ids, cs := seededCluster(t, testConfig(), 1, 2)
	a, b := cs[0], cs[1]
	obj := page.ObjectID{Page: ids[0], Slot: 4}

	ta, _ := a.Begin()
	if err := ta.Overwrite(obj, val('x')); err != nil {
		t.Fatal(err)
	}
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	tb, _ := b.Begin()
	got, err := tb.Read(obj)
	if err != nil || !bytes.Equal(got, val('x')) {
		t.Fatalf("b sees %q, want x's (err=%v)", got, err)
	}
	if err := tb.Overwrite(obj, val('y')); err != nil {
		t.Fatal(err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	// And back: A must now see B's value.
	ta2, _ := a.Begin()
	got, err = ta2.Read(obj)
	if err != nil || !bytes.Equal(got, val('y')) {
		t.Fatalf("a sees %q, want y's (err=%v)", got, err)
	}
	ta2.Commit()
}

func TestBlockingWriteWriteConflict(t *testing.T) {
	// While A's transaction is active, B's conflicting write must wait
	// for A's commit (strict 2PL through the callback protocol).
	_, ids, cs := seededCluster(t, testConfig(), 1, 2)
	a, b := cs[0], cs[1]
	obj := page.ObjectID{Page: ids[0], Slot: 6}

	ta, _ := a.Begin()
	if err := ta.Overwrite(obj, val('1')); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		tb, _ := b.Begin()
		if err := tb.Overwrite(obj, val('2')); err != nil {
			done <- err
			return
		}
		done <- tb.Commit()
	}()
	select {
	case err := <-done:
		t.Fatalf("b finished while a held the lock: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("b after a's commit: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("b never unblocked")
	}
	// Final state is B's value.
	ta2, _ := a.Begin()
	got, err := ta2.Read(obj)
	if err != nil || !bytes.Equal(got, val('2')) {
		t.Fatalf("final value %q, want 2's (err=%v)", got, err)
	}
	ta2.Commit()
}

func TestManyClientsDisjointObjects(t *testing.T) {
	// Stress: 4 clients, concurrent transactions on disjoint objects of
	// a shared page set; every committed value must be visible at the
	// end.
	cfg := testConfig()
	cl, ids, cs := seededCluster(t, cfg, 4, 4)
	var wg sync.WaitGroup
	errCh := make(chan error, len(cs))
	for i, c := range cs {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				txn, err := c.Begin()
				if err != nil {
					errCh <- err
					return
				}
				for _, pid := range ids {
					obj := page.ObjectID{Page: pid, Slot: uint16(i)}
					if err := txn.Overwrite(obj, val(byte('0'+i))); err != nil {
						errCh <- fmt.Errorf("client %d: %w", i, err)
						txn.Abort()
						return
					}
				}
				if err := txn.Commit(); err != nil {
					errCh <- err
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Verify through a fresh client (forces callbacks of all copies).
	fresh, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := fresh.Begin()
	for _, pid := range ids {
		for i := range cs {
			obj := page.ObjectID{Page: pid, Slot: uint16(i)}
			got, err := txn.Read(obj)
			if err != nil || !bytes.Equal(got, val(byte('0'+i))) {
				t.Fatalf("page %d slot %d: %q err=%v", pid, i, got, err)
			}
		}
	}
	txn.Commit()
}

func TestDeadlockVictimCanRetry(t *testing.T) {
	cfg := testConfig()
	cfg.LockTimeout = 2 * time.Second
	_, ids, cs := seededCluster(t, cfg, 2, 2)
	a, b := cs[0], cs[1]
	o1 := page.ObjectID{Page: ids[0], Slot: 0}
	o2 := page.ObjectID{Page: ids[1], Slot: 0}

	var sawVictim bool
	run := func(c *Client, first, second page.ObjectID) error {
		txn, _ := c.Begin()
		if err := txn.Overwrite(first, val('z')); err != nil {
			txn.Abort()
			return err
		}
		if err := txn.Overwrite(second, val('z')); err != nil {
			txn.Abort()
			return err
		}
		return txn.Commit()
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = run(a, o1, o2) }()
	go func() { defer wg.Done(); errs[1] = run(b, o2, o1) }()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			sawVictim = true
		}
	}
	if !sawVictim {
		// Both may have serialized cleanly depending on timing; that is
		// acceptable — but if neither failed, the data must be sane.
		t.Log("no deadlock materialized this run (timing)")
	}
	// The system must still be operational.
	txn, _ := a.Begin()
	if _, err := txn.Read(o1); err != nil {
		t.Fatalf("system wedged after deadlock: %v", err)
	}
	txn.Commit()
}

func TestTxnAfterDoneFails(t *testing.T) {
	_, ids, cs := seededCluster(t, testConfig(), 1, 1)
	txn, _ := cs[0].Begin()
	if err := txn.Overwrite(page.ObjectID{Page: ids[0], Slot: 0}, val('q')); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := txn.Overwrite(page.ObjectID{Page: ids[0], Slot: 0}, val('r')); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("write after commit: %v", err)
	}
	if err := txn.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestCacheEvictionShipsDirtyPages(t *testing.T) {
	cfg := testConfig()
	cfg.ClientPool = 4 // tiny cache forces replacement traffic
	cl, ids, cs := seededCluster(t, cfg, 16, 1)
	c := cs[0]
	for _, pid := range ids {
		txn, _ := c.Begin()
		if err := txn.Overwrite(page.ObjectID{Page: pid, Slot: 0}, val('m')); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Metrics.PagesShipped.Load() == 0 {
		t.Fatal("no replacement shipments despite tiny cache")
	}
	// All committed values must be at the server (via ships) or client.
	for _, pid := range ids {
		got, err := cl.ReadObject(page.ObjectID{Page: pid, Slot: 0})
		if err != nil {
			t.Fatal(err)
		}
		// Pages still cached dirty at the client may not have shipped;
		// flush and re-check those.
		if !bytes.Equal(got, val('m')) {
			if err := c.FlushCache(); err != nil {
				t.Fatal(err)
			}
			got, err = cl.ReadObject(page.ObjectID{Page: pid, Slot: 0})
			if err != nil || !bytes.Equal(got, val('m')) {
				t.Fatalf("page %d: %q err=%v", pid, got, err)
			}
		}
	}
}

func TestAllocAndFreePages(t *testing.T) {
	cl, _, cs := seededCluster(t, testConfig(), 1, 1)
	c := cs[0]
	txn, _ := c.Begin()
	pid, err := txn.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := txn.Insert(pid, []byte("on fresh page"))
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushCache(); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadObject(obj)
	if err != nil || string(got) != "on fresh page" {
		t.Fatalf("alloc'd page content: %q err=%v", got, err)
	}
}
