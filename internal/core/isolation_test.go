package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"clientlog/internal/lock"
	"clientlog/internal/page"
)

func TestUncommittedDataNeverVisible(t *testing.T) {
	// Strict 2PL through the callback protocol: B can never observe A's
	// uncommitted bytes — its read blocks until A resolves.
	cfg := testConfig()
	cfg.LockTimeout = 300 * time.Millisecond
	cl, ids, cs := seededCluster(t, cfg, 1, 2)
	a, b := cs[0], cs[1]
	obj := page.ObjectID{Page: ids[0], Slot: 0}
	orig, _ := cl.ReadObject(obj)

	ta, _ := a.Begin()
	if err := ta.Overwrite(obj, val('U')); err != nil {
		t.Fatal(err)
	}
	// B's read must NOT succeed while A is in flight.
	tb, _ := b.Begin()
	if data, err := tb.Read(obj); err == nil {
		t.Fatalf("read of uncommitted data succeeded: %q", data)
	} else if !errors.Is(err, lock.ErrTimeout) && !errors.Is(err, lock.ErrDeadlock) {
		t.Fatalf("unexpected error kind: %v", err)
	}
	tb.Abort()
	// A aborts; B now sees the original value.  The release can race
	// B's re-request under a heavily loaded scheduler (the 300ms lock
	// timeout above is deliberately tight), so time out and retry
	// instead of failing on the first ErrTimeout.
	if err := ta.Abort(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		tb2, _ := b.Begin()
		got, err := tb2.Read(obj)
		if err == nil {
			if !bytes.Equal(got, orig) {
				t.Fatalf("after abort: %q want %q", got, orig)
			}
			tb2.Commit()
			break
		}
		tb2.Abort()
		if !errors.Is(err, lock.ErrTimeout) || time.Now().After(deadline) {
			t.Fatalf("after abort: err=%v", err)
		}
	}
}

func TestReadersBlockWriter(t *testing.T) {
	cfg := testConfig()
	cfg.LockTimeout = 5 * time.Second
	_, ids, cs := seededCluster(t, cfg, 1, 2)
	a, b := cs[0], cs[1]
	obj := page.ObjectID{Page: ids[0], Slot: 1}
	ta, _ := a.Begin()
	if _, err := ta.Read(obj); err != nil {
		t.Fatal(err)
	}
	// b's write blocks while a's reader is active; a's commit releases
	// it through the callback protocol (the retained cached S lock does
	// NOT keep blocking it).
	done := make(chan error, 1)
	go func() {
		tb, _ := b.Begin()
		if err := tb.Overwrite(obj, val('W')); err != nil {
			done <- err
			return
		}
		done <- tb.Commit()
	}()
	select {
	case err := <-done:
		t.Fatalf("write finished while reader active: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after reader commit: %v", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("writer never unblocked after reader commit")
	}
}

func TestTokenModeSurvivesServerCrash(t *testing.T) {
	// The token table is volatile server state; a crash must not corrupt
	// data (locks still serialize, merges still reconcile).
	cfg := testConfig()
	cfg.Update = UpdateToken
	cl, ids, cs := seededCluster(t, cfg, 1, 2)
	a, b := cs[0], cs[1]
	oa := page.ObjectID{Page: ids[0], Slot: 0}
	ob := page.ObjectID{Page: ids[0], Slot: 1}
	ta, _ := a.Begin()
	if err := ta.Overwrite(oa, val('1')); err != nil {
		t.Fatal(err)
	}
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	cl.CrashServer()
	if err := cl.RestartServer(); err != nil {
		t.Fatal(err)
	}
	// Both clients update after the crash; token table was rebuilt
	// lazily.
	ta2, _ := a.Begin()
	if err := ta2.Overwrite(oa, val('2')); err != nil {
		t.Fatal(err)
	}
	if err := ta2.Commit(); err != nil {
		t.Fatal(err)
	}
	tb, _ := b.Begin()
	if err := tb.Overwrite(ob, val('3')); err != nil {
		t.Fatal(err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	fresh, _ := cl.AddClient()
	txn, _ := fresh.Begin()
	g1, _ := txn.Read(oa)
	g2, _ := txn.Read(ob)
	if !bytes.Equal(g1, val('2')) || !bytes.Equal(g2, val('3')) {
		t.Fatalf("token-mode post-crash values: %q %q", g1, g2)
	}
	txn.Commit()
}

func TestShipLogModeManyClients(t *testing.T) {
	cfg := testConfig()
	cfg.Logging = LogShipCommit
	cl, ids, cs := seededCluster(t, cfg, 2, 3)
	for i, c := range cs {
		txn, _ := c.Begin()
		for _, pid := range ids {
			if err := txn.Overwrite(page.ObjectID{Page: pid, Slot: uint16(i)}, val(byte('0'+i))); err != nil {
				t.Fatalf("client %d: %v", i, err)
			}
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Server log now carries every client's records.
	if cl.Server().Log().RecordsAppended() < uint64(len(cs)*len(ids)) {
		t.Fatalf("server log records: %d", cl.Server().Log().RecordsAppended())
	}
	fresh, _ := cl.AddClient()
	txn, _ := fresh.Begin()
	for i := range cs {
		for _, pid := range ids {
			got, err := txn.Read(page.ObjectID{Page: pid, Slot: uint16(i)})
			if err != nil || !bytes.Equal(got, val(byte('0'+i))) {
				t.Fatalf("page %d slot %d: %q err=%v", pid, i, got, err)
			}
		}
	}
	txn.Commit()
}
