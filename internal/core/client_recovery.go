package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"clientlog/internal/buffer"
	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/msg"
	"clientlog/internal/page"
	"clientlog/internal/wal"
)

// recoveryState tracks the client's participation in server restart
// recovery (§3.4): per-page progress so that RecoveryShipUpTo (the
// step-3 forwarding) can ship interim copies at the right moment.
type recoveryState struct {
	mu      sync.Mutex
	pages   map[page.ID]*pageRecovery
	waiters []chan struct{}
}

type pageRecovery struct {
	active bool
	curPSN page.PSN
	done   bool
	// page is the in-progress copy being recovered; RecoveryShipUpTo
	// marshals it under the recoveryState mutex while RecoverPage
	// mutates it under the same mutex.
	page *page.Page
}

func (r *recoveryState) init() {
	r.mu.Lock()
	if r.pages == nil {
		r.pages = make(map[page.ID]*pageRecovery)
	}
	r.mu.Unlock()
}

func (r *recoveryState) notifyAll() {
	for _, ch := range r.waiters {
		close(ch)
	}
	r.waiters = nil
}

// begin marks a page recovery in progress on the given working copy.
func (r *recoveryState) begin(pid page.ID, p *page.Page) {
	r.init()
	r.mu.Lock()
	r.pages[pid] = &pageRecovery{active: true, page: p}
	r.notifyAll()
	r.mu.Unlock()
}

// mutate runs fn on the in-progress copy under the recovery mutex and
// publishes the resulting PSN as progress.
func (r *recoveryState) mutate(pid page.ID, fn func(p *page.Page) (*page.Page, error)) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	pr := r.pages[pid]
	np, err := fn(pr.page)
	if err != nil {
		return err
	}
	pr.page = np
	if np.PSN() > pr.curPSN {
		pr.curPSN = np.PSN()
	}
	r.notifyAll()
	return nil
}

// snapshot marshals the in-progress copy (nil when no recovery is
// active for the page).
func (r *recoveryState) snapshot(pid page.ID) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	pr := r.pages[pid]
	if pr == nil || pr.page == nil {
		return nil
	}
	img, err := pr.page.MarshalBinary()
	if err != nil {
		return nil
	}
	return img
}

// progress records the page's PSN after an applied record.
func (r *recoveryState) progress(pid page.ID, psn page.PSN) {
	r.mu.Lock()
	if pr := r.pages[pid]; pr != nil && psn > pr.curPSN {
		pr.curPSN = psn
		r.notifyAll()
	}
	r.mu.Unlock()
}

// finish marks the page recovered.
func (r *recoveryState) finish(pid page.ID) {
	r.mu.Lock()
	if pr := r.pages[pid]; pr != nil {
		pr.done = true
	} else {
		if r.pages == nil {
			r.pages = make(map[page.ID]*pageRecovery)
		}
		r.pages[pid] = &pageRecovery{done: true}
	}
	r.notifyAll()
	r.mu.Unlock()
}

// waitReached blocks until the page's recovery has processed every log
// record with PSN below psn (or finished), giving up at the deadline so
// mutual waits can never wedge the cluster (the slot-PSN merge ordering
// still yields the correct final state).
func (r *recoveryState) waitReached(pid page.ID, psn page.PSN, deadline time.Time) {
	r.init()
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for {
		r.mu.Lock()
		pr := r.pages[pid]
		if pr == nil || pr.done || !pr.active || pr.curPSN >= psn {
			r.mu.Unlock()
			return
		}
		ch := make(chan struct{})
		r.waiters = append(r.waiters, ch)
		r.mu.Unlock()
		select {
		case <-ch:
		case <-timer.C:
			return
		}
	}
}

// SurrogateRecover performs §3.3 restart recovery on behalf of a
// crashed client that is not coming back — the paper's Section 2
// remark that "restart recovery for a crashed client may be performed
// by the server or any other client that has access to the log of this
// client".  Whoever holds the log (the server for a diskless client, an
// operator mounting the dead workstation's disk) runs the standard
// recovery, then ships every recovered page and releases the dead
// client's locks, leaving the cluster clean.
func SurrogateRecover(cfg Config, srv msg.Server, logStore wal.Store, id ident.ClientID) error {
	c, err := RecoverClient(cfg, srv, logStore, id)
	if err != nil {
		return err
	}
	// Disconnect ships the dirty (recovered) pages and releases all
	// locks.
	return c.Disconnect()
}

// DebugLogf, when set, receives recovery diagnostics (tests only).
var DebugLogf func(format string, args ...interface{})

func dbg(format string, args ...interface{}) {
	if DebugLogf != nil {
		DebugLogf(format, args...)
	}
}

// RecoverClient reconnects a crashed client and runs §3.3 restart
// recovery over its private log: reinstall retained exclusive locks,
// ARIES analysis, the PSN-guarded redo pass, and rollback of the
// transactions that were active at the crash.  Transaction processing
// on other clients continues in parallel throughout.
func RecoverClient(cfg Config, srv msg.Server, logStore wal.Store, id ident.ClientID) (*Client, error) {
	reply, err := srv.Register(msg.RegisterReq{ID: id, Recover: true})
	if err != nil {
		return nil, err
	}
	c := &Client{
		id:     id,
		cfg:    cfg,
		srv:    srv,
		llm:    lock.NewLLMSharded(cfg.LockTimeout, cfg.lockShards()),
		log:    wal.NewLog(logStore),
		pool:   buffer.New(cfg.ClientPool),
		dpt:    make(map[page.ID]*dptEntry),
		txns:   make(map[ident.TxnID]*txnState),
		tokens: make(map[page.ID]bool),
	}
	// §3.3: "the crashed client installs in its lock tables the
	// exclusive locks it held before the failure."  After a complex
	// crash (§3.5) the server lost its lock tables too and the list is
	// empty; the PSN tests alone then guard the redo pass.
	for _, h := range reply.HeldX {
		c.llm.InstallCached(h.Name, h.Mode)
	}
	if err := c.restartRecovery(len(reply.HeldX) > 0); err != nil {
		return nil, err
	}
	if err := srv.RecoverEnd(id); err != nil {
		return nil, err
	}
	return c, nil
}

// analysis scans the log from the last complete checkpoint, rebuilding
// the DPT and the active transaction table.
func (c *Client) analysis() (att map[ident.TxnID]*txnState, err error) {
	// Locate the last complete checkpoint.
	var ckptLSN wal.LSN
	var ckpt *wal.Checkpoint
	sc := c.log.Scan(c.log.Horizon())
	for sc.Next() {
		if cp, ok := sc.Record().(*wal.Checkpoint); ok {
			ckptLSN, ckpt = sc.LSN(), cp
		}
	}
	if sc.Err() != nil {
		return nil, fmt.Errorf("core: analysis checkpoint scan: %w", sc.Err())
	}
	att = make(map[ident.TxnID]*txnState)
	start := c.log.Horizon()
	if ckpt != nil {
		start = ckptLSN
		for _, ti := range ckpt.Active {
			att[ti.ID] = &txnState{id: ti.ID, firstLSN: ti.FirstLSN, lastLSN: ti.LastLSN, dirtyPages: map[page.ID]bool{}}
		}
		horizon := c.log.Horizon()
		for _, de := range ckpt.DPT {
			redo := de.RedoLSN
			// A checkpointed RedoLSN can predate the reclaim horizon:
			// flush notifications advanced the live entry after the
			// checkpoint and §3.6 reclaimed the prefix.  The reclaimed
			// records are durable on disk (that is what allowed the
			// reclaim), so clamping to the horizon is safe — and the
			// Property 1 PSN test would skip them anyway.
			if redo < horizon {
				redo = horizon
			}
			c.dpt[de.Page] = &dptEntry{redoLSN: redo, dirtySinceShip: true}
		}
		c.lastCkpt = ckptLSN
	}
	sc = c.log.Scan(start)
	for sc.Next() {
		lsn, rec := sc.LSN(), sc.Record()
		switch r := rec.(type) {
		case *wal.Update, *wal.Logical, *wal.CLR:
			tid := rec.Txn()
			st := att[tid]
			if st == nil {
				st = &txnState{id: tid, firstLSN: lsn, dirtyPages: map[page.ID]bool{}}
				att[tid] = st
			}
			st.lastLSN = lsn
			var pid page.ID
			switch rr := r.(type) {
			case *wal.Update:
				pid = rr.Page
			case *wal.Logical:
				pid = rr.Page
			case *wal.CLR:
				pid = rr.Page
			}
			if _, ok := c.dpt[pid]; !ok {
				c.dpt[pid] = &dptEntry{redoLSN: lsn, dirtySinceShip: true}
			}
		case *wal.Commit:
			delete(att, r.TxnID)
		case *wal.Abort:
			delete(att, r.TxnID)
		}
	}
	if sc.Err() != nil {
		return nil, fmt.Errorf("core: analysis scan: %w", sc.Err())
	}
	return att, nil
}

// restartRecovery runs the §3.3 algorithm.  haveLocks says whether the
// server still had this client's lock tables (plain client crash); the
// redo pass then additionally requires the object to be exclusively
// locked, as the paper specifies.  After a complex crash the PSN tests
// alone decide (they subsume the lock test; see DESIGN.md).
func (c *Client) restartRecovery(haveLocks bool) error {
	att, err := c.analysis()
	if err != nil {
		return err
	}
	// Ask the server which of the DPT pages have DCT rows and with what
	// PSNs; pages without a row have all their updates on the
	// server/disk already (Property 1) and are filtered out.
	pages := make([]page.ID, 0, len(c.dpt))
	for pid := range c.dpt {
		pages = append(pages, pid)
	}
	rows, err := c.srv.RecoverQuery(c.id, pages)
	if err != nil {
		return err
	}
	dctPSNs := make(map[page.ID]page.PSN, len(rows))
	for _, row := range rows {
		dctPSNs[row.Page] = row.PSN
	}
	dbg("%v recovery: dpt=%v rows=%v haveLocks=%v", c.id, pages, dctPSNs, haveLocks)
	for pid := range c.dpt {
		if _, ok := dctPSNs[pid]; !ok {
			dbg("%v recovery: drop page %d from DPT (no DCT row)", c.id, pid)
			delete(c.dpt, pid)
		}
	}
	// Redo pass from the minimum RedoLSN.
	if len(c.dpt) > 0 {
		minRedo := c.log.End()
		for _, e := range c.dpt {
			if e.redoLSN < minRedo {
				minRedo = e.redoLSN
			}
		}
		fetched := make(map[page.ID]bool)
		sc := c.log.Scan(minRedo)
		for sc.Next() {
			lsn, rec := sc.LSN(), sc.Record()
			pid, obj, ok := recTarget(rec)
			if !ok {
				continue // callback records are not processed here (§3.3)
			}
			e, inDPT := c.dpt[pid]
			if !inDPT || e.redoLSN > lsn {
				continue
			}
			if !fetched[pid] {
				// First touch: fetch from the server, which sends along
				// the PSN stored in its DCT entry for this client (§3.3).
				psn, ferr := c.recoveryFetch(pid, dctPSNs[pid])
				if ferr != nil {
					return ferr
				}
				// The DCT PSN is the paper's redo threshold: records
				// whose pre-update PSN is below it are already reflected
				// on the server's copy (Property 1).  We keep it as a
				// side threshold rather than installing it on the page:
				// the server image's PSN is merge-inflated, and lowering
				// it would make post-recovery updates mint slot PSNs
				// below ones already on the image, breaking the
				// cross-copy merge ordering.
				dctPSNs[pid] = psn
				fetched[pid] = true
			}
			// The record is applied only when the object is exclusively
			// locked by this client and the record's PSN is >= the DCT
			// threshold (§3.3).  Without surviving lock tables (§3.5)
			// the PSN test alone decides.
			if haveLocks && !c.llm.CacheCovers(lock.ObjName(obj), lock.X) {
				dbg("%v recovery: skip %s obj=%v psn=%d (no X lock)", c.id, rec.Kind(), obj, recPSN(rec))
				continue
			}
			if recPSN(rec) < dctPSNs[pid] {
				dbg("%v recovery: skip %s obj=%v psn=%d < threshold %d", c.id, rec.Kind(), obj, recPSN(rec), dctPSNs[pid])
				continue // already on the server's copy (Property 1)
			}
			dbg("%v recovery: redo %s obj=%v psn=%d", c.id, rec.Kind(), obj, recPSN(rec))
			c.mu.Lock()
			if p, okp := c.pool.Get(pid); okp {
				if err := redoApply(p, rec); err != nil {
					c.mu.Unlock()
					return fmt.Errorf("core: redo %s at %s: %w", rec.Kind(), lsn, err)
				}
				c.pool.MarkDirty(pid)
				c.dpt[pid].dirtySinceShip = true
			}
			c.mu.Unlock()
		}
		if sc.Err() != nil {
			return fmt.Errorf("core: redo scan: %w", sc.Err())
		}
	}
	// After a complex crash the GLM lost this client's locks: regain
	// exclusive locks on the objects its uncommitted transactions
	// touched before rolling them back, and ship every recovered page
	// afterwards so the server's copies are current despite the lost
	// lock-based coherence.
	if !haveLocks && len(att) > 0 {
		var holds []lock.Holding
		seen := make(map[lock.Name]bool)
		for _, st := range att {
			cur := st.lastLSN
			for cur != wal.NilLSN {
				rec, _, rerr := c.log.Read(cur)
				if rerr != nil {
					break
				}
				if pid, obj, ok := recTarget(rec); ok {
					name := lock.ObjName(obj)
					if rec.(interface{ Kind() wal.Kind }).Kind() == wal.KindUpdate {
						if u := rec.(*wal.Update); u.Op.Structural() {
							name = lock.PageName(pid)
						}
					}
					if !seen[name] {
						seen[name] = true
						holds = append(holds, lock.Holding{Name: name, Mode: lock.X})
					}
				}
				if clr, isCLR := rec.(*wal.CLR); isCLR {
					cur = clr.UndoNext
				} else {
					cur = rec.Prev()
				}
			}
		}
		if len(holds) > 0 {
			if err := c.srv.Reinstall(c.id, holds); err != nil {
				return err
			}
			for _, h := range holds {
				c.llm.InstallCached(h.Name, h.Mode)
			}
		}
	}
	// Undo pass: roll back the transactions active at the crash.
	for _, st := range att {
		c.mu.Lock()
		c.txns[st.id] = st
		c.mu.Unlock()
		if err := c.undoChain(st, wal.NilLSN); err != nil {
			return fmt.Errorf("core: restart undo %s: %w", st.id, err)
		}
		c.mu.Lock()
		_, aerr := c.appendLocked(&wal.Abort{TxnID: st.id, PrevLSN: st.lastLSN}, c.undoReserveLocked(st))
		delete(c.txns, st.id)
		c.mu.Unlock()
		if aerr != nil {
			return aerr
		}
		c.llm.ReleaseTxn(st.id)
	}
	if err := c.log.ForceAll(); err != nil {
		return err
	}
	if !haveLocks {
		// Complex crash: without retained locks, coherence for the
		// recovered updates comes from shipping them to the server now.
		// The shipped pages are also dropped from the cache: other
		// crashed clients recover in parallel and our copies may be
		// stale for their objects; the next access re-fetches.
		c.mu.Lock()
		var ships []shipment
		for _, pid := range c.pool.DirtyIDs() {
			if p, ok := c.pool.Get(pid); ok {
				if img, perr := c.prepareShipLocked(p); perr == nil {
					ships = append(ships, shipment{image: img, reason: msg.ShipRecovery})
				}
			}
		}
		for _, pid := range c.pool.IDs() {
			c.pool.Drop(pid)
		}
		c.mu.Unlock()
		c.shipVictims(ships)
	}
	return c.Checkpoint()
}

// recoveryFetch pulls a page during restart recovery and returns the
// redo threshold for it: the PSN the server's DCT remembers for this
// client (sent along with the page per §3.3), falling back to the
// RecoverQuery row.
func (c *Client) recoveryFetch(pid page.ID, dctPSN page.PSN) (page.PSN, error) {
	reply, err := c.srv.Fetch(msg.FetchReq{Client: c.id, Page: pid, Recovery: true})
	if err != nil {
		return 0, err
	}
	p := new(page.Page)
	if err := p.UnmarshalBinary(reply.Image); err != nil {
		return 0, err
	}
	psn := reply.DCTPSN
	if psn == 0 {
		psn = dctPSN
	}
	c.Metrics.PagesFetched.Add(1)
	c.mu.Lock()
	c.pool.Put(p, false)
	victims := c.collectVictimsLocked()
	c.mu.Unlock()
	c.shipVictims(victims)
	return psn, nil
}

// recTarget extracts the page and object a redoable record refers to;
// ok is false for non-redoable records (commit, checkpoint, callback).
func recTarget(rec wal.Record) (page.ID, page.ObjectID, bool) {
	switch r := rec.(type) {
	case *wal.Update:
		return r.Page, r.Object(), true
	case *wal.Logical:
		return r.Page, r.Object(), true
	case *wal.CLR:
		return r.Page, r.Object(), true
	}
	return 0, page.ObjectID{}, false
}

// recPSN returns the pre-update PSN stored in a redoable record.
func recPSN(rec wal.Record) page.PSN {
	switch r := rec.(type) {
	case *wal.Update:
		return r.PSN
	case *wal.Logical:
		return r.PSN
	case *wal.CLR:
		return r.PSN
	}
	return 0
}

// redoApply reproduces a logged update on the page, advancing the page
// PSN to recPSN+1.
func redoApply(p *page.Page, rec wal.Record) error {
	switch r := rec.(type) {
	case *wal.Update:
		switch r.Op {
		case wal.OpOverwrite:
			return p.RedoOverwrite(r.Slot, r.After, r.PSN)
		case wal.OpOverwriteAt:
			return p.RedoOverwriteAt(r.Slot, int(r.Offset), r.After, r.PSN)
		case wal.OpInsert:
			return p.RedoInsert(r.Slot, r.After, r.PSN)
		case wal.OpDelete:
			return p.RedoDelete(r.Slot, r.PSN)
		case wal.OpResize:
			return p.RedoResize(r.Slot, r.After, r.PSN)
		}
		return fmt.Errorf("core: redo of op %v", r.Op)
	case *wal.Logical:
		return redoLogical(p, r.Slot, r.Delta, r.PSN)
	case *wal.CLR:
		switch r.Op {
		case wal.OpOverwrite:
			return p.RedoOverwrite(r.Slot, r.After, r.PSN)
		case wal.OpOverwriteAt:
			return p.RedoOverwriteAt(r.Slot, int(r.Offset), r.After, r.PSN)
		case wal.OpInsert:
			return p.RedoInsert(r.Slot, r.After, r.PSN)
		case wal.OpDelete:
			return p.RedoDelete(r.Slot, r.PSN)
		case wal.OpResize:
			return p.RedoResize(r.Slot, r.After, r.PSN)
		case wal.OpLogicalAdd:
			return redoLogical(p, r.Slot, r.Delta, r.PSN)
		}
		return fmt.Errorf("core: redo of CLR op %v", r.Op)
	}
	return fmt.Errorf("core: redoApply on %v record", rec.Kind())
}

func redoLogical(p *page.Page, slot uint16, delta int64, psn page.PSN) error {
	cur, ok := p.Read(slot)
	if !ok || len(cur) != 8 {
		return ErrNotCounter
	}
	v := int64(binary.LittleEndian.Uint64(cur)) + delta
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	return p.RedoOverwrite(slot, buf[:], psn)
}

// --- §3.4: the client side of server restart recovery ---

// RecoveryInfo implements msg.Client: the server, restarting, asks for
// this client's DPT, cached page list, and LLM table.
func (c *Client) RecoveryInfo() (msg.RecoveryInfoReply, error) {
	if err := c.checkAlive(); err != nil {
		return msg.RecoveryInfoReply{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	reply := msg.RecoveryInfoReply{Cached: c.pool.IDs(), Locks: c.llm.CachedLocks()}
	for pid, e := range c.dpt {
		reply.DPT = append(reply.DPT, wal.DPTEntry{Page: pid, RedoLSN: e.redoLSN})
	}
	return reply, nil
}

// FetchCached implements msg.Client: ship the requested cached pages to
// the restarting server (§3.4 step 4), honouring the WAL rule.
func (c *Client) FetchCached(ids []page.ID) ([][]byte, error) {
	if err := c.checkAlive(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]byte, 0, len(ids))
	for _, pid := range ids {
		p, ok := c.pool.Get(pid)
		if !ok {
			continue
		}
		img, err := c.prepareShipLocked(p)
		if err != nil {
			return nil, err
		}
		c.pool.Clean(pid)
		out = append(out, img)
	}
	return out, nil
}

// CallbackList implements msg.Client: the CallBack_P contribution of
// §3.4 — callback log records this client wrote for objects on the page
// that were called back from the target client, keeping only the most
// recent PSN per object.
func (c *Client) CallbackList(req msg.CallbackListReq) (msg.CallbackListReply, error) {
	if err := c.checkAlive(); err != nil {
		return msg.CallbackListReply{}, err
	}
	c.mu.Lock()
	start := c.log.Horizon()
	if e, ok := c.dpt[req.Page]; ok && e.redoLSN > start {
		start = e.redoLSN
	}
	c.mu.Unlock()
	latest := make(map[page.ObjectID]page.PSN)
	sc := c.log.Scan(start)
	for sc.Next() {
		cb, ok := sc.Record().(*wal.Callback)
		if !ok || cb.Object.Page != req.Page || cb.Responder != req.Target {
			continue
		}
		latest[cb.Object] = cb.PSN // later records overwrite: most recent wins
	}
	if sc.Err() != nil {
		return msg.CallbackListReply{}, sc.Err()
	}
	var reply msg.CallbackListReply
	for obj, psn := range latest {
		reply.Entries = append(reply.Entries, msg.CallbackOrigin{Object: obj, Responder: req.Target, PSN: psn})
	}
	return reply, nil
}

// RecoverPage implements msg.Client: recover this client's updates on
// the page during server restart recovery, following the three rules of
// §3.4, including the step-3 fetch of interleaved remote updates.
func (c *Client) RecoverPage(req msg.RecoverPageReq) error {
	if err := c.checkAlive(); err != nil {
		return err
	}
	p := new(page.Page)
	if err := p.UnmarshalBinary(req.Image); err != nil {
		return err
	}
	// Raise-only: the redo rules of §3.4 compare record PSNs against the
	// CallBack_P list, never against the page PSN, so the DCT PSN must
	// not lower the (merge-inflated) image PSN.
	if p.PSN() < req.DCTPSN {
		p.SetPSN(req.DCTPSN)
	}
	cbPSN := make(map[page.ObjectID]page.PSN, len(req.Callbacks))
	for _, cb := range req.Callbacks {
		cbPSN[cb.Object] = cb.PSN
	}
	c.mu.Lock()
	e, ok := c.dpt[req.Page]
	start := c.log.Horizon()
	if ok && e.redoLSN > start {
		start = e.redoLSN
	}
	c.mu.Unlock()
	c.rec.begin(req.Page, p)
	defer c.rec.finish(req.Page)

	sc := c.log.Scan(start)
	for sc.Next() {
		rec := sc.Record()
		if cb, isCB := rec.(*wal.Callback); isCB {
			if cb.Object.Page != req.Page {
				continue
			}
			// Every record of ours below the callback's PSN has been
			// processed by now: publish the progress before any blocking
			// fetch so parallel recoveries of this page never deadlock.
			c.rec.progress(req.Page, cb.PSN)
			if _, inList := cbPSN[cb.Object]; inList {
				continue // rule 3, first half: skip
			}
			// Rule 3, second half: another client's updates interleave
			// here; fetch the page as of (responder, PSN) and merge.
			reply, err := c.srv.RecoveryFetch(msg.RecoveryFetchReq{
				Client: c.id, Page: req.Page, CID: cb.Responder, PSN: cb.PSN,
			})
			if err != nil {
				return err
			}
			remote := new(page.Page)
			if err := remote.UnmarshalBinary(reply.Image); err != nil {
				return err
			}
			err = c.rec.mutate(req.Page, func(cur *page.Page) (*page.Page, error) {
				return page.Merge(cur, remote), nil
			})
			if err != nil {
				return err
			}
			c.Metrics.ClientMerges.Add(1)
			continue
		}
		pid, obj, redoable := recTarget(rec)
		if !redoable || pid != req.Page {
			continue
		}
		// Scan progress covers skipped records too ("processed all log
		// records containing a PSN value that is less than ...").
		c.rec.progress(req.Page, recPSN(rec)+1)
		if limit, inList := cbPSN[obj]; inList && recPSN(rec) < limit {
			continue // rule 1: a later remote update supersedes this one
		}
		// Rules 1 (PSN >= limit) and 2 (object not in the list): apply.
		kerr := c.rec.mutate(req.Page, func(cur *page.Page) (*page.Page, error) {
			if err := redoApply(cur, rec); err != nil {
				return nil, err
			}
			return cur, nil
		})
		if kerr != nil {
			return fmt.Errorf("core: §3.4 redo %s: %w", rec.Kind(), kerr)
		}
	}
	if sc.Err() != nil {
		return sc.Err()
	}
	// Ship the recovered copy back and DROP it from the cache rather
	// than keeping it: other clients may be recovering their own updates
	// to this page in parallel (§3.4 advantage 3), so this working copy
	// can be stale for their objects — dangerous to serve from under a
	// covering (page-level) lock.  The next access simply re-fetches the
	// server's merged state.
	img := c.rec.snapshot(req.Page)
	if img == nil {
		return fmt.Errorf("core: recovered page %d vanished", req.Page)
	}
	c.mu.Lock()
	c.pool.Drop(req.Page)
	if e, ok := c.dpt[req.Page]; ok {
		e.rememberedEnd = c.log.End()
		e.lastShipPSN = p.PSN()
		e.dirtySinceShip = false
	}
	c.mu.Unlock()
	if err := c.log.ForceAll(); err != nil {
		return err
	}
	if err := c.srv.Ship(msg.ShipReq{Client: c.id, Reason: msg.ShipRecovery, Image: img}); err != nil {
		return err
	}
	c.Metrics.PagesShipped.Add(1)
	return nil
}

// RecoveryShipUpTo implements msg.Client: the §3.4 step-3 forwarding.
// The client ships its current copy of the page once its recovery has
// processed every log record with PSN below the threshold.
func (c *Client) RecoveryShipUpTo(pid page.ID, psn page.PSN) error {
	if err := c.checkAlive(); err != nil {
		return err
	}
	c.rec.waitReached(pid, psn, time.Now().Add(c.cfg.LockTimeout))
	if err := c.log.ForceAll(); err != nil {
		return err
	}
	// Prefer the in-progress recovery copy; fall back to the cache.
	img := c.rec.snapshot(pid)
	if img == nil {
		c.mu.Lock()
		p, ok := c.pool.Get(pid)
		var err error
		if ok {
			img, err = c.prepareShipLocked(p)
		}
		c.mu.Unlock()
		if err != nil {
			return err
		}
	}
	if img == nil {
		return nil // nothing cached: the server's copy is all we had
	}
	// An interim copy: ShipCallback keeps the DCT PSN moving without
	// declaring this page's recovery complete.
	if err := c.srv.Ship(msg.ShipReq{Client: c.id, Reason: msg.ShipCallback, Image: img}); err != nil {
		return err
	}
	c.Metrics.PagesShipped.Add(1)
	return nil
}
