package core

import (
	"bytes"
	"testing"

	"clientlog/internal/page"
)

func TestPartialOverwrite(t *testing.T) {
	_, ids, cs := seededCluster(t, testConfig(), 1, 1)
	c := cs[0]
	obj := page.ObjectID{Page: ids[0], Slot: 0}
	txn, _ := c.Begin()
	base, err := txn.Read(obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.OverwriteAt(obj, 4, []byte("FRAG")); err != nil {
		t.Fatal(err)
	}
	got, _ := txn.Read(obj)
	want := append([]byte{}, base...)
	copy(want[4:], "FRAG")
	if !bytes.Equal(got, want) {
		t.Fatalf("partial overwrite: %q want %q", got, want)
	}
	// Out-of-range fragments are rejected.
	if err := txn.OverwriteAt(obj, len(base)-2, []byte("TOOLONG")); err == nil {
		t.Fatal("overflowing fragment accepted")
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPartialOverwriteUndo(t *testing.T) {
	cl, ids, cs := seededCluster(t, testConfig(), 1, 1)
	c := cs[0]
	obj := page.ObjectID{Page: ids[0], Slot: 1}
	orig, _ := cl.ReadObject(obj)
	txn, _ := c.Begin()
	if err := txn.OverwriteAt(obj, 0, []byte("AB")); err != nil {
		t.Fatal(err)
	}
	if err := txn.OverwriteAt(obj, 8, []byte("CD")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}
	txn2, _ := c.Begin()
	got, err := txn2.Read(obj)
	if err != nil || !bytes.Equal(got, orig) {
		t.Fatalf("after abort: %q want %q", got, orig)
	}
	txn2.Commit()
}

func TestPartialOverwriteCrashRecovery(t *testing.T) {
	cl, ids, cs := seededCluster(t, testConfig(), 1, 1)
	c := cs[0]
	obj := page.ObjectID{Page: ids[0], Slot: 2}
	txn, _ := c.Begin()
	if err := txn.OverwriteAt(obj, 2, []byte("durable frag")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	expected, _ := txn2Read(t, c, obj)
	cl.CrashClient(c.ID())
	rec, err := cl.RestartClient(c.ID())
	if err != nil {
		t.Fatal(err)
	}
	got, err := txn2Read(t, rec, obj)
	if err != nil || !bytes.Equal(got, expected) {
		t.Fatalf("partial overwrite lost in recovery: %q want %q", got, expected)
	}
}

func TestPartialOverwritesMergeAcrossClients(t *testing.T) {
	// Two clients doing partial overwrites on DIFFERENT objects of the
	// same page merge cleanly (same-object partials still serialize via
	// the object X lock).
	cl, ids, cs := seededCluster(t, testConfig(), 1, 2)
	a, b := cs[0], cs[1]
	oa := page.ObjectID{Page: ids[0], Slot: 0}
	ob := page.ObjectID{Page: ids[0], Slot: 1}
	ta, _ := a.Begin()
	if err := ta.OverwriteAt(oa, 0, []byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	tb, _ := b.Begin()
	if err := tb.OverwriteAt(ob, 0, []byte("BBBB")); err != nil {
		t.Fatal(err)
	}
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	fresh, _ := cl.AddClient()
	txn, _ := fresh.Begin()
	ga, _ := txn.Read(oa)
	gb, _ := txn.Read(ob)
	if !bytes.HasPrefix(ga, []byte("AAAA")) || !bytes.HasPrefix(gb, []byte("BBBB")) {
		t.Fatalf("merged partials: %q %q", ga, gb)
	}
	txn.Commit()
}

// txn2Read reads an object in a fresh transaction.
func txn2Read(t *testing.T, c *Client, obj page.ObjectID) ([]byte, error) {
	t.Helper()
	txn, err := c.Begin()
	if err != nil {
		return nil, err
	}
	defer txn.Commit()
	return txn.Read(obj)
}
