//go:build race

package netrpc

// raceEnabled reports that the race detector instruments this build;
// allocation-exactness tests skip themselves under it.
const raceEnabled = true
