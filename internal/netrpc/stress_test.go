package netrpc

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"clientlog/internal/core"
	"clientlog/internal/page"
)

// TestTCPDuplexStress drives many clients doing conflicting work so
// that requests and server-initiated callbacks interleave heavily on
// every connection.
func TestTCPDuplexStress(t *testing.T) {
	cfg := testCfg()
	_, srv, ids := startCluster(t, cfg, 2)
	const n = 6
	const txns = 15
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		c, _ := dialClient(t, cfg, srv.Addr().String())
		wg.Add(1)
		go func(i int, c *core.Client) {
			defer wg.Done()
			for round := 0; round < txns; {
				txn, err := c.Begin()
				if err != nil {
					errCh <- err
					return
				}
				// Disjoint slots on shared pages: heavy callback traffic,
				// no lock conflicts.
				obj := page.ObjectID{Page: ids[round%2], Slot: uint16(i)}
				if err := txn.Overwrite(obj, bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
					txn.Abort()
					errCh <- fmt.Errorf("client %d: %w", i, err)
					return
				}
				if err := txn.Commit(); err != nil {
					errCh <- err
					return
				}
				round++
			}
		}(i, c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Verify through a fresh connection.
	v, _ := dialClient(t, cfg, srv.Addr().String())
	txn, _ := v.Begin()
	for i := 0; i < n; i++ {
		for p := 0; p < 2; p++ {
			got, err := txn.Read(page.ObjectID{Page: ids[p], Slot: uint16(i)})
			if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 16)) {
				t.Fatalf("slot %d page %d: %q err=%v", i, p, got, err)
			}
		}
	}
	txn.Commit()
}
