package netrpc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"clientlog/internal/msg"
)

// ProtocolVersion 3 frame layout (after the 4-byte big-endian frame
// length shared with v2):
//
//	[0:4)   crc32 (IEEE, little-endian) over payload[4:]
//	[4]     type tag (tagGob = whole envelope gob-encoded)
//	[5]     flags: bit0 reply, bit1 error-string present
//	[6:14)  envelope ID (little-endian)
//	[14:22) session sequence number (little-endian)
//	...     error string (u32 length + bytes, only when bit1 set)
//	...     body (tag-specific binary encoding from internal/msg)
//
// The hot request tags double as the method name (a tagLockReq frame IS
// a "lock" call), so hot requests never spell their method on the wire.
// Every message without a tag — registration, recovery, callbacks, the
// hello exchange itself — rides the tagGob escape: the whole envelope
// gob-encoded inside a v3 header, so the CRC and the recoverable
// envelope ID still cover cold traffic.
const (
	v3HeaderSize = 22

	v3FlagReply  = 1 << 0
	v3FlagHasErr = 1 << 1
)

// v3 body type tags.  tagEmpty is valid only on replies: as a request
// body emptyBody would erase the method name (requests derive their
// method from the tag), so empty-bodied requests take the gob escape.
const (
	tagGob = iota
	tagLockReq
	tagLockReply
	tagLockBatchReq
	tagLockBatchReply
	tagFetchReq
	tagFetchReply
	tagFetchBatchReq
	tagFetchBatchReply
	tagUnlockReq
	tagShipReq
	tagForceReq
	tagForceReply
	tagCommitShipReq
	tagEmpty
)

// methodForTag maps a hot request tag back to its method name.
var methodForTag = [tagEmpty + 1]string{
	tagLockReq:       "lock",
	tagLockBatchReq:  "lock-batch",
	tagFetchReq:      "fetch",
	tagFetchBatchReq: "fetch-batch",
	tagUnlockReq:     "unlock",
	tagShipReq:       "ship",
	tagForceReq:      "force",
	tagCommitShipReq: "commit-ship",
}

var (
	errBadCRC    = errors.New("netrpc: frame checksum mismatch")
	errBadHeader = errors.New("netrpc: truncated v3 header")
	errBadBody   = errors.New("netrpc: malformed v3 body")
)

// --- pooled frame buffers ---

// wbuf is one encoded frame travelling from the encoder to the write
// loop.  Pooling the wrapper struct (not the raw slice) keeps Put from
// boxing a fresh interface allocation on every cycle.
type wbuf struct{ b []byte }

// Size classes for pooled frame buffers: most frames are tiny lock and
// ack traffic, page images land in the middle class, batch traffic in
// the large one.  Buffers that outgrow the largest class are dropped on
// put so one pathological frame cannot pin 16 MiB forever.
const (
	bufSmall = 512
	bufMed   = 8 << 10
	bufLarge = 128 << 10
)

var wbufPools = [3]sync.Pool{
	{New: func() interface{} { return &wbuf{b: make([]byte, 0, bufSmall)} }},
	{New: func() interface{} { return &wbuf{b: make([]byte, 0, bufMed)} }},
	{New: func() interface{} { return &wbuf{b: make([]byte, 0, bufLarge)} }},
}

// getBuf returns a pooled buffer whose capacity covers hint where
// possible; oversized requests get a fresh unpooled allocation.
func getBuf(hint int) *wbuf {
	switch {
	case hint <= bufSmall:
		return wbufPools[0].Get().(*wbuf)
	case hint <= bufMed:
		return wbufPools[1].Get().(*wbuf)
	case hint <= bufLarge:
		return wbufPools[2].Get().(*wbuf)
	default:
		return &wbuf{b: make([]byte, 0, hint)}
	}
}

// putBuf recycles a buffer into the class its final capacity fits.
func putBuf(w *wbuf) {
	c := cap(w.b)
	w.b = w.b[:0]
	switch {
	case c <= bufSmall:
		wbufPools[0].Put(w)
	case c <= bufMed:
		wbufPools[1].Put(w)
	case c <= bufLarge:
		wbufPools[2].Put(w)
	}
}

// limitWriter bounds how much an encoder may append to a frame buffer,
// so a pathological payload fails fast instead of materializing a
// 16MiB+ frame that would only be rejected afterwards.
type limitWriter struct {
	w     *wbuf
	limit int
}

func (l *limitWriter) Write(p []byte) (int, error) {
	if len(l.w.b)+len(p) > l.limit {
		return 0, ErrFrameTooLarge
	}
	l.w.b = append(l.w.b, p...)
	return len(p), nil
}

// --- encoding ---

// encodeEnvelopeV2 appends a complete v2 frame (length prefix +
// gob-encoded envelope) to w, bounded at MaxFrame.
func encodeEnvelopeV2(w *wbuf, env *envelope) error {
	w.b = append(w.b, 0, 0, 0, 0)
	start := len(w.b)
	lw := &limitWriter{w: w, limit: start + MaxFrame}
	if err := gob.NewEncoder(lw).Encode(env); err != nil {
		if errors.Is(err, ErrFrameTooLarge) {
			return ErrFrameTooLarge
		}
		return fmt.Errorf("netrpc: encode %s: %w", env.Method, err)
	}
	binary.BigEndian.PutUint32(w.b[start-4:], uint32(len(w.b)-start))
	return nil
}

// v3Tag classifies env for the binary fast path: the type tag and exact
// body size, or ok=false when the envelope must take the gob escape.
func v3Tag(env *envelope) (tag byte, size int, ok bool) {
	switch b := env.Body.(type) {
	case msg.LockReq:
		if !env.Reply && env.Method == "lock" {
			return tagLockReq, b.WireSize(), true
		}
	case msg.LockReply:
		if env.Reply {
			return tagLockReply, b.WireSize(), true
		}
	case msg.LockBatchReq:
		if !env.Reply && env.Method == "lock-batch" {
			return tagLockBatchReq, b.WireSize(), true
		}
	case msg.LockBatchReply:
		if env.Reply {
			return tagLockBatchReply, b.WireSize(), true
		}
	case msg.FetchReq:
		if !env.Reply && env.Method == "fetch" {
			return tagFetchReq, b.WireSize(), true
		}
	case msg.FetchReply:
		if env.Reply {
			return tagFetchReply, b.WireSize(), true
		}
	case msg.FetchBatchReq:
		if !env.Reply && env.Method == "fetch-batch" {
			return tagFetchBatchReq, b.WireSize(), true
		}
	case msg.FetchBatchReply:
		if env.Reply {
			return tagFetchBatchReply, b.WireSize(), true
		}
	case msg.UnlockReq:
		if !env.Reply && env.Method == "unlock" {
			return tagUnlockReq, b.WireSize(), true
		}
	case msg.ShipReq:
		if !env.Reply && env.Method == "ship" {
			return tagShipReq, b.WireSize(), true
		}
	case msg.ForceReq:
		if !env.Reply && env.Method == "force" {
			return tagForceReq, b.WireSize(), true
		}
	case msg.ForceReply:
		if env.Reply {
			return tagForceReply, b.WireSize(), true
		}
	case msg.CommitShipReq:
		if !env.Reply && env.Method == "commit-ship" {
			return tagCommitShipReq, b.WireSize(), true
		}
	case emptyBody:
		if env.Reply {
			return tagEmpty, 0, true
		}
	}
	return 0, 0, false
}

func appendV3Body(b []byte, body interface{}) []byte {
	switch v := body.(type) {
	case msg.LockReq:
		return v.AppendWire(b)
	case msg.LockReply:
		return v.AppendWire(b)
	case msg.LockBatchReq:
		return v.AppendWire(b)
	case msg.LockBatchReply:
		return v.AppendWire(b)
	case msg.FetchReq:
		return v.AppendWire(b)
	case msg.FetchReply:
		return v.AppendWire(b)
	case msg.FetchBatchReq:
		return v.AppendWire(b)
	case msg.FetchBatchReply:
		return v.AppendWire(b)
	case msg.UnlockReq:
		return v.AppendWire(b)
	case msg.ShipReq:
		return v.AppendWire(b)
	case msg.ForceReq:
		return v.AppendWire(b)
	case msg.ForceReply:
		return v.AppendWire(b)
	case msg.CommitShipReq:
		return v.AppendWire(b)
	case emptyBody:
		return b
	}
	return b
}

// encodeEnvelopeV3 appends a complete v3 frame to w.  The binary path
// prices the payload exactly before touching the buffer, so oversized
// frames fail fast with nothing allocated.
func encodeEnvelopeV3(w *wbuf, env *envelope) error {
	tag, bodySize, ok := v3Tag(env)
	if !ok {
		return encodeEnvelopeV3Gob(w, env)
	}
	payload := v3HeaderSize + bodySize
	if env.Err != "" {
		payload += 4 + len(env.Err)
	}
	if payload > MaxFrame {
		return ErrFrameTooLarge
	}
	w.b = binary.BigEndian.AppendUint32(w.b, uint32(payload))
	start := len(w.b)
	w.b = append(w.b, 0, 0, 0, 0) // crc placeholder
	var flags byte
	if env.Reply {
		flags |= v3FlagReply
	}
	if env.Err != "" {
		flags |= v3FlagHasErr
	}
	w.b = append(w.b, tag, flags)
	w.b = binary.LittleEndian.AppendUint64(w.b, env.ID)
	w.b = binary.LittleEndian.AppendUint64(w.b, env.Seq)
	if env.Err != "" {
		w.b = binary.LittleEndian.AppendUint32(w.b, uint32(len(env.Err)))
		w.b = append(w.b, env.Err...)
	}
	w.b = appendV3Body(w.b, env.Body)
	binary.LittleEndian.PutUint32(w.b[start:], crc32.ChecksumIEEE(w.b[start+4:]))
	return nil
}

// encodeEnvelopeV3Gob wraps a gob-encoded envelope in a v3 header (the
// cold-message escape hatch).  The header keeps the real ID and reply
// flag so even a corrupt cold reply can fail its pending call fast.
func encodeEnvelopeV3Gob(w *wbuf, env *envelope) error {
	w.b = append(w.b, 0, 0, 0, 0) // frame length placeholder
	start := len(w.b)
	var flags byte
	if env.Reply {
		flags |= v3FlagReply
	}
	w.b = append(w.b, 0, 0, 0, 0, tagGob, flags)
	w.b = binary.LittleEndian.AppendUint64(w.b, env.ID)
	w.b = binary.LittleEndian.AppendUint64(w.b, env.Seq)
	lw := &limitWriter{w: w, limit: start + MaxFrame}
	if err := gob.NewEncoder(lw).Encode(env); err != nil {
		if errors.Is(err, ErrFrameTooLarge) {
			return ErrFrameTooLarge
		}
		return fmt.Errorf("netrpc: encode %s: %w", env.Method, err)
	}
	binary.BigEndian.PutUint32(w.b[start-4:], uint32(len(w.b)-start))
	binary.LittleEndian.PutUint32(w.b[start:], crc32.ChecksumIEEE(w.b[start+4:]))
	return nil
}

// decodeEnvelopeV2 decodes one v2 (gob) payload.  A partially decoded
// envelope may still have yielded its ID and reply flag before the
// corruption point, so even v2 corruption can fail its pending call.
func decodeEnvelopeV2(payload []byte) (envelope, error) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&env); err != nil {
		return envelope{}, corruptFrameError{err: err, id: env.ID, reply: env.Reply}
	}
	return env, nil
}

// decodeEnvelopeV3 decodes one v3 payload.  Corruption (checksum or
// body framing) comes back as a corruptFrameError carrying the
// best-effort envelope ID so the reader can fail the matching pending
// call instead of letting it hang.
func decodeEnvelopeV3(payload []byte) (envelope, error) {
	var env envelope
	if len(payload) < v3HeaderSize {
		return env, corruptFrameError{err: errBadHeader}
	}
	id := binary.LittleEndian.Uint64(payload[6:14])
	reply := payload[5]&v3FlagReply != 0
	if crc32.ChecksumIEEE(payload[4:]) != binary.LittleEndian.Uint32(payload[:4]) {
		return env, corruptFrameError{err: errBadCRC, id: id, reply: reply}
	}
	tag := payload[4]
	flags := payload[5]
	env.ID = id
	env.Reply = reply
	env.Seq = binary.LittleEndian.Uint64(payload[14:22])
	rest := payload[v3HeaderSize:]
	if flags&v3FlagHasErr != 0 {
		if len(rest) < 4 {
			return env, corruptFrameError{err: errBadBody, id: id, reply: reply}
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if int(n) > len(rest) {
			return env, corruptFrameError{err: errBadBody, id: id, reply: reply}
		}
		env.Err = string(rest[:n])
		rest = rest[n:]
	}
	if tag == tagGob {
		var g envelope
		if err := gob.NewDecoder(bytes.NewReader(rest)).Decode(&g); err != nil {
			return env, corruptFrameError{err: err, id: id, reply: reply}
		}
		return g, nil
	}
	var d msg.WireDec
	d.Reset(rest)
	switch tag {
	case tagLockReq:
		var b msg.LockReq
		b.DecodeWire(&d)
		env.Body = b
	case tagLockReply:
		var b msg.LockReply
		b.DecodeWire(&d)
		env.Body = b
	case tagLockBatchReq:
		var b msg.LockBatchReq
		b.DecodeWire(&d)
		env.Body = b
	case tagLockBatchReply:
		var b msg.LockBatchReply
		b.DecodeWire(&d)
		env.Body = b
	case tagFetchReq:
		var b msg.FetchReq
		b.DecodeWire(&d)
		env.Body = b
	case tagFetchReply:
		var b msg.FetchReply
		b.DecodeWire(&d)
		env.Body = b
	case tagFetchBatchReq:
		var b msg.FetchBatchReq
		b.DecodeWire(&d)
		env.Body = b
	case tagFetchBatchReply:
		var b msg.FetchBatchReply
		b.DecodeWire(&d)
		env.Body = b
	case tagUnlockReq:
		var b msg.UnlockReq
		b.DecodeWire(&d)
		env.Body = b
	case tagShipReq:
		var b msg.ShipReq
		b.DecodeWire(&d)
		env.Body = b
	case tagForceReq:
		var b msg.ForceReq
		b.DecodeWire(&d)
		env.Body = b
	case tagForceReply:
		var b msg.ForceReply
		b.DecodeWire(&d)
		env.Body = b
	case tagCommitShipReq:
		var b msg.CommitShipReq
		b.DecodeWire(&d)
		env.Body = b
	case tagEmpty:
		env.Body = emptyBody{}
	default:
		return env, corruptFrameError{err: errBadBody, id: id, reply: reply}
	}
	if d.Err() != nil || d.Remaining() != 0 {
		return env, corruptFrameError{err: errBadBody, id: id, reply: reply}
	}
	if !env.Reply {
		env.Method = methodForTag[tag]
		if env.Method == "" {
			return env, corruptFrameError{err: errBadBody, id: id, reply: reply}
		}
	}
	if tc, ok := env.Body.(traceCarrier); ok {
		env.Trace = tc.TraceContext()
	}
	return env, nil
}

// negotiateVersion picks the protocol both peers speak; peers predating
// the hello Version field (zero) speak v2.
func negotiateVersion(mine, theirs uint32) uint32 {
	if theirs < 2 {
		theirs = 2
	}
	if theirs < mine {
		return theirs
	}
	return mine
}
