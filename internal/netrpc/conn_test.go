package netrpc

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"clientlog/internal/core"
	"clientlog/internal/fault"
	"clientlog/internal/msg"
	"clientlog/internal/page"
	"clientlog/internal/wal"
)

func pageObj(p page.ID, slot uint16) page.ObjectID {
	return page.ObjectID{Page: p, Slot: slot}
}

// TestConnPendingFailFastOnPeerDeath is the regression test for the
// mid-call hang: RPCs in flight when the peer's TCP connection dies
// must fail promptly with ErrClosed, not block forever waiting for
// replies that will never arrive.
func TestConnPendingFailFastOnPeerDeath(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	rc := newRPCConn(cc, ProtocolVersion)
	rc.setHandler(func(string, uint64, interface{}) (interface{}, error) { return nil, nil })
	go rc.serve()
	peer := <-accepted

	// Five calls in flight against a peer that never answers; timeout
	// zero so only the fail-fast path can unblock them.
	const n = 5
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := rc.call("ship", 0, msg.ShipReq{}, 0)
			errs <- err
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the requests hit the wire
	peer.Close()                      // peer dies mid-call
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("pending call err=%v want ErrClosed", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("pending RPC hung after peer death")
		}
	}
}

// TestConnCallDeadline verifies the per-request deadline: an unanswered
// call returns ErrDeadline without tearing the connection down.
func TestConnCallDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	rc := newRPCConn(cc, ProtocolVersion)
	go rc.serve()
	defer rc.Close()
	peer := <-accepted
	defer peer.Close()

	start := time.Now()
	_, err = rc.call("ship", 0, msg.ShipReq{}, 100*time.Millisecond)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err=%v want ErrDeadline", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("deadline fired after %v", time.Since(start))
	}
	if rc.isClosed() {
		t.Fatal("deadline tore the connection down")
	}
}

// TestTCPReconnectResumesSession kills the transport's connection out
// from under a registered client: the next call must redial, resume the
// session by token, and succeed — with the server never declaring the
// client crashed.
func TestTCPReconnectResumesSession(t *testing.T) {
	cfg := testCfg()
	engine, srv, ids := startCluster(t, cfg, 1)
	c, tr := dialClient(t, cfg, srv.Addr().String())
	obj := pageObj(ids[0], 0)

	txn, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("survives redials")
	if err := txn.Overwrite(obj, want); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		tr.killConn() // connection dies; session token survives
		txn, err := c.Begin()
		if err != nil {
			t.Fatalf("reconnect %d: begin: %v", i, err)
		}
		got, err := txn.Read(obj)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("reconnect %d: read %q err=%v", i, got, err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if engine.GLM().Crashed(c.ID()) {
		t.Fatal("transparent reconnect was declared a crash")
	}
}

// TestTCPSessionExpiresPastGrace waits out the grace window after a
// connection death: the server must declare the crash, and the stale
// transport must fail permanently with ErrSessionExpired instead of
// silently re-registering.
func TestTCPSessionExpiresPastGrace(t *testing.T) {
	cfg := testCfg()
	engine, srv, _ := startCluster(t, cfg, 1)
	c, tr := dialClient(t, cfg, srv.Addr().String())

	tr.killConn()
	deadline := time.Now().Add(2 * time.Second)
	for !engine.GLM().Crashed(c.ID()) {
		if time.Now().After(deadline) {
			t.Fatal("grace expiry never declared the crash")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := tr.Fetch(msg.FetchReq{Page: 1}); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("stale session err=%v want ErrSessionExpired", err)
	}
}

// TestTCPFaultInjectionEndToEnd drives committed transactions through a
// transport under a deterministic fault plan whose disconnect faults
// kill the real TCP connection: every transaction must still commit
// exactly once, via retries and session resumes, with zero crashes
// declared.
func TestTCPFaultInjectionEndToEnd(t *testing.T) {
	cfg := testCfg()
	engine, ln, ids := startEngine(t, cfg, 2)
	srv := ServeGrace(engine, ln, 2*time.Second)
	t.Cleanup(func() { srv.Close() })

	tr, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(11, fault.Plan{
		DropProb:       0.10,
		DupProb:        0.10,
		ReplayProb:     0.05,
		DelayProb:      0.05,
		MaxDelay:       200 * time.Microsecond,
		DisconnectProb: 0.05,
	})
	tr.InjectFaults(inj, "tcp-c1")
	tr.SetRetry(msg.RetryPolicy{MaxAttempts: 30, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond})

	c, err := core.NewClient(cfg, tr, wal.NewMemStore(0))
	if err != nil {
		t.Fatal(err)
	}
	tr.SetLocal(c)
	t.Cleanup(func() { tr.Close() })
	obj := pageObj(ids[0], 1)
	for round := 0; round < 40; round++ {
		txn, err := c.Begin()
		if err != nil {
			t.Fatalf("round %d: begin: %v", round, err)
		}
		val := bytes.Repeat([]byte{byte(round)}, 16)
		if err := txn.Overwrite(obj, val); err != nil {
			t.Fatalf("round %d: overwrite: %v", round, err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("round %d: commit: %v", round, err)
		}
		txn2, _ := c.Begin()
		got, err := txn2.Read(obj)
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("round %d: read back %q err=%v (faults=%d)", round, got, err, inj.Faults())
		}
		txn2.Commit()
	}
	if inj.Faults() == 0 {
		t.Fatal("fault plan injected nothing")
	}
	if engine.GLM().Crashed(c.ID()) {
		t.Fatalf("injected faults escalated to a crash declaration (faults=%d)", inj.Faults())
	}
	t.Logf("faults injected: %d", inj.Faults())
}
