package netrpc

import (
	"fmt"
	"net"
	"sync"

	"clientlog/internal/core"
	"clientlog/internal/ident"
	"clientlog/internal/msg"
	"clientlog/internal/page"
)

// Server exposes a core.Server engine on a TCP listener.
type Server struct {
	engine *core.Server
	ln     net.Listener

	mu    sync.Mutex
	conns map[*rpcConn]bool
	done  chan struct{}
}

// Serve wraps the engine and accepts connections on ln until Close.
func Serve(engine *core.Server, ln net.Listener) *Server {
	s := &Server{engine: engine, ln: ln, conns: make(map[*rpcConn]bool), done: make(chan struct{})}
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and tears down every session.
func (s *Server) Close() error {
	close(s.done)
	err := s.ln.Close()
	s.mu.Lock()
	conns := make([]*rpcConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close() // onClose re-locks s.mu; must not hold it here
	}
	return err
}

func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		rc := newRPCConn(c)
		s.mu.Lock()
		s.conns[rc] = true
		s.mu.Unlock()
		sess := &session{srv: s, conn: rc}
		rc.setHandler(sess.handle)
		rc.onClose = func() {
			s.mu.Lock()
			delete(s.conns, rc)
			s.mu.Unlock()
			sess.disconnected()
		}
		go rc.serve()
	}
}

// session is the server side of one client connection.
type session struct {
	srv  *Server
	conn *rpcConn

	mu sync.Mutex
	id ident.ClientID
}

// disconnected reacts to a dropped connection: an unregistered session
// is ignored; a registered one is treated as a client crash (§3.3).
func (s *session) disconnected() {
	s.mu.Lock()
	id := s.id
	s.mu.Unlock()
	if id != 0 {
		s.srv.engine.ClientCrashed(id)
	}
}

// remoteClient lets the engine talk back to this session's client.
type remoteClient struct{ conn *rpcConn }

func (r remoteClient) CallbackObject(req msg.CallbackReq) (msg.CallbackReply, error) {
	body, err := r.conn.call("cb.object", req)
	if err != nil {
		return msg.CallbackReply{}, err
	}
	return body.(msg.CallbackReply), nil
}

func (r remoteClient) DeescalatePage(req msg.DeescReq) (msg.DeescReply, error) {
	body, err := r.conn.call("cb.deescalate", req)
	if err != nil {
		return msg.DeescReply{}, err
	}
	return body.(msg.DeescReply), nil
}

func (r remoteClient) RecallToken(p page.ID) (msg.TokenReply, error) {
	body, err := r.conn.call("cb.recall-token", pageIDBody{P: p})
	if err != nil {
		return msg.TokenReply{}, err
	}
	return body.(msg.TokenReply), nil
}

func (r remoteClient) RecoveryShipUpTo(p page.ID, psn page.PSN) error {
	_, err := r.conn.call("cb.ship-up-to", shipUpToBody{P: p, PSN: psn})
	return err
}

func (r remoteClient) NotifyFlushed(p page.ID, psn page.PSN) {
	r.conn.notify("cb.flushed", shipUpToBody{P: p, PSN: psn})
}

func (r remoteClient) RecoveryInfo() (msg.RecoveryInfoReply, error) {
	body, err := r.conn.call("cb.recovery-info", emptyBody{})
	if err != nil {
		return msg.RecoveryInfoReply{}, err
	}
	return body.(msg.RecoveryInfoReply), nil
}

func (r remoteClient) FetchCached(ids []page.ID) ([][]byte, error) {
	body, err := r.conn.call("cb.fetch-cached", fetchCachedBody{IDs: ids})
	if err != nil {
		return nil, err
	}
	return body.(imagesBody).Images, nil
}

func (r remoteClient) CallbackList(req msg.CallbackListReq) (msg.CallbackListReply, error) {
	body, err := r.conn.call("cb.callback-list", req)
	if err != nil {
		return msg.CallbackListReply{}, err
	}
	return body.(msg.CallbackListReply), nil
}

func (r remoteClient) RecoverPage(req msg.RecoverPageReq) error {
	_, err := r.conn.call("cb.recover-page", req)
	return err
}

// handle dispatches one client request to the engine.
func (s *session) handle(method string, body interface{}) (interface{}, error) {
	e := s.srv.engine
	switch method {
	case "register":
		req := body.(msg.RegisterReq)
		reply, err := e.Register(req)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.id = reply.ID
		s.mu.Unlock()
		e.Attach(reply.ID, remoteClient{conn: s.conn})
		return reply, nil
	case "lock":
		return e.Lock(body.(msg.LockReq))
	case "unlock":
		return nil, e.Unlock(body.(msg.UnlockReq))
	case "fetch":
		return e.Fetch(body.(msg.FetchReq))
	case "ship":
		return nil, e.Ship(body.(msg.ShipReq))
	case "force":
		return e.Force(body.(msg.ForceReq))
	case "alloc":
		return e.Alloc(body.(msg.AllocReq))
	case "free":
		return nil, e.Free(body.(msg.FreeReq))
	case "commit-ship":
		return nil, e.CommitShip(body.(msg.CommitShipReq))
	case "token":
		return e.Token(body.(msg.TokenReq))
	case "recovery-fetch":
		return e.RecoveryFetch(body.(msg.RecoveryFetchReq))
	case "reinstall":
		b := body.(reinstallBody)
		return nil, e.Reinstall(b.C, b.Holds)
	case "recover-query":
		b := body.(recoverQueryBody)
		rows, err := e.RecoverQuery(b.C, b.Pages)
		if err != nil {
			return nil, err
		}
		return dctRowsBody{Rows: rows}, nil
	case "log-op":
		return e.LogOp(body.(msg.LogReq))
	case "recover-end":
		return nil, e.RecoverEnd(body.(clientIDBody).C)
	case "disconnect":
		return nil, e.Disconnect(body.(clientIDBody).C)
	default:
		return nil, fmt.Errorf("netrpc: unknown method %q", method)
	}
}
