package netrpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"clientlog/internal/core"
	"clientlog/internal/ident"
	"clientlog/internal/msg"
	"clientlog/internal/page"
)

// DefaultGrace is how long a session outlives its connection.  A client
// that reconnects with its token inside the window resumes — same
// identity, same reply cache, no crash declared.  Past it the server
// declares the client crashed (Section 3.3) and the token dies.
const DefaultGrace = 250 * time.Millisecond

// sessionExpiredMsg travels the wire when a resume token is unknown or
// already expired; the client maps it back to ErrSessionExpired.
const sessionExpiredMsg = "netrpc: session expired"

// ErrSessionExpired reports a reconnect whose session the server has
// already declared crashed.  The transport is permanently dead: the
// application must run client crash recovery under a fresh connection.
var ErrSessionExpired = errors.New(sessionExpiredMsg)

// Server exposes a core.Server engine on a TCP listener.
type Server struct {
	engine     *core.Server
	ln         net.Listener
	grace      time.Duration
	maxVersion atomic.Uint32             // protocol-version ceiling for new conns
	wireStats  atomic.Pointer[WireStats] // per-instance accounting; nil = Wire

	mu        sync.Mutex
	conns     map[*rpcConn]bool
	owners    map[*rpcConn]*session
	sessions  map[uint64]*session
	nextToken uint64
	done      chan struct{}
}

// Serve wraps the engine and accepts connections on ln until Close,
// with the default reconnect grace window.
func Serve(engine *core.Server, ln net.Listener) *Server {
	return ServeGrace(engine, ln, DefaultGrace)
}

// ServeGrace is Serve with an explicit reconnect grace window (chaos
// tests stretch it so injected disconnects stay transparent).
func ServeGrace(engine *core.Server, ln net.Listener, grace time.Duration) *Server {
	if grace <= 0 {
		grace = DefaultGrace
	}
	s := &Server{
		engine:   engine,
		ln:       ln,
		grace:    grace,
		conns:    make(map[*rpcConn]bool),
		owners:   make(map[*rpcConn]*session),
		sessions: make(map[uint64]*session),
		done:     make(chan struct{}),
	}
	s.maxVersion.Store(ProtocolVersion)
	go s.acceptLoop()
	return s
}

// SetMaxVersion pins the protocol-version ceiling offered to newly
// accepted connections (interop testing against down-level clients).
// Versions below 2 are clamped to 2.
func (s *Server) SetMaxVersion(v uint32) {
	if v < 2 {
		v = 2
	}
	s.maxVersion.Store(v)
}

// SetWireStats points newly accepted connections at ws instead of the
// process-wide Wire sink, so fleets hosted in one process keep
// per-partition wire accounting.  Existing connections are unaffected.
func (s *Server) SetWireStats(ws *WireStats) { s.wireStats.Store(ws) }

// Addr returns the listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and tears down every session.
func (s *Server) Close() error {
	close(s.done)
	err := s.ln.Close()
	s.mu.Lock()
	conns := make([]*rpcConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	// Kill sessions first so their grace timers don't fire
	// ClientCrashed into an engine that is being shut down too.
	for _, sess := range sessions {
		sess.kill()
	}
	for _, c := range conns {
		c.Close() // onClose re-locks s.mu; must not hold it here
	}
	return err
}

func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		rc := newRPCConn(c, s.maxVersion.Load())
		if ws := s.wireStats.Load(); ws != nil {
			rc.stats = ws
		}
		s.mu.Lock()
		s.conns[rc] = true
		s.mu.Unlock()
		// Until the hello arrives this connection has no session; the
		// pre-session handler accepts nothing else.
		rc.setHandler(func(method string, seq uint64, body interface{}) (interface{}, error) {
			if method != "hello" {
				return nil, fmt.Errorf("netrpc: %s before hello", method)
			}
			return s.handleHello(rc, body)
		})
		rc.onClose = func() { s.connClosed(rc) }
		go rc.serve()
	}
}

// connClosed removes the conn and notifies its owning session, if the
// hello ever completed.
func (s *Server) connClosed(rc *rpcConn) {
	s.mu.Lock()
	delete(s.conns, rc)
	sess := s.owners[rc]
	delete(s.owners, rc)
	s.mu.Unlock()
	if sess != nil {
		sess.disconnected(rc)
	}
}

// handleHello opens a new session (token zero) or resumes one inside
// its grace window.
func (s *Server) handleHello(rc *rpcConn, body interface{}) (interface{}, error) {
	hb, ok := body.(helloBody)
	if !ok {
		return nil, errors.New("netrpc: malformed hello")
	}
	var sess *session
	if hb.Token == 0 {
		sess = &session{srv: s, replies: core.NewReplyCache(0)}
		s.mu.Lock()
		s.nextToken++
		sess.token = s.nextToken
		s.sessions[sess.token] = sess
		s.mu.Unlock()
	} else {
		s.mu.Lock()
		sess = s.sessions[hb.Token]
		s.mu.Unlock()
		if sess == nil {
			return nil, errors.New(sessionExpiredMsg)
		}
		Metrics.Resumes.Inc()
	}
	if !sess.bind(rc) {
		return nil, errors.New(sessionExpiredMsg)
	}
	s.mu.Lock()
	s.owners[rc] = sess
	s.mu.Unlock()
	rc.setHandler(sess.handle)
	// Reply with the version both sides speak; the conn's read loop
	// already negotiated the same value from the hello body, and the
	// dispatch path flips this connection to v3 framing right after
	// this reply goes out in v2.
	return helloReply{Token: sess.token, Version: negotiateVersion(rc.maxVersion, hb.Version)}, nil
}

// session is the server side of one logical client, across however
// many TCP connections it takes.
type session struct {
	srv     *Server
	token   uint64
	replies *core.ReplyCache // client->server duplicate suppression
	cbSeq   atomic.Uint64    // server->client request numbers

	mu    sync.Mutex
	conn  *rpcConn // nil while disconnected
	id    ident.ClientID
	grace *time.Timer
	dead  bool
}

// bind attaches a fresh connection, cancelling any running grace
// timer.  It fails if the session already expired.
func (s *session) bind(rc *rpcConn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return false
	}
	if s.grace != nil {
		s.grace.Stop()
		s.grace = nil
	}
	if s.conn != nil && s.conn != rc {
		// A resume raced the old conn's death: the new conn wins.
		go s.conn.Close()
	}
	s.conn = rc
	return true
}

// disconnected reacts to a dropped connection by arming the grace
// timer; only if no resume lands before it fires is the client
// declared crashed.
func (s *session) disconnected(rc *rpcConn) {
	s.mu.Lock()
	if s.dead || s.conn != rc {
		s.mu.Unlock()
		return
	}
	s.conn = nil
	s.grace = time.AfterFunc(s.srv.grace, s.expire)
	s.mu.Unlock()
}

// expire fires when the grace window closes without a resume: the
// session dies and the engine runs client-crash handling (§3.3).
func (s *session) expire() {
	s.mu.Lock()
	if s.dead || s.conn != nil {
		s.mu.Unlock()
		return
	}
	s.dead = true
	id := s.id
	s.mu.Unlock()
	s.srv.mu.Lock()
	delete(s.srv.sessions, s.token)
	s.srv.mu.Unlock()
	if id != 0 {
		s.srv.engine.ClientCrashed(id)
	}
}

// kill marks the session dead without declaring a client crash; used on
// server shutdown.
func (s *session) kill() {
	s.mu.Lock()
	s.dead = true
	if s.grace != nil {
		s.grace.Stop()
		s.grace = nil
	}
	s.mu.Unlock()
}

// currentConn returns the live conn (nil while disconnected) and
// whether the session is dead.
func (s *session) currentConn() (*rpcConn, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn, s.dead
}

// call issues a server->client callback, riding out connection swaps:
// while the session is inside its grace window the call waits for the
// resumed connection and retransmits under the same sequence number
// (the client's reply cache absorbs duplicates).  It fails once the
// session dies.
func (s *session) call(method string, body interface{}) (interface{}, error) {
	seq := s.cbSeq.Add(1)
	for {
		rc, dead := s.currentConn()
		if dead {
			return nil, ErrClosed
		}
		if rc == nil {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		body2, err := rc.call(method, seq, body, 0)
		if err == nil || isRemote(err) {
			return body2, err
		}
		// Transport failure: the conn died mid-call.  Loop; either a
		// resume rebinds or the grace timer kills the session.
		time.Sleep(2 * time.Millisecond)
	}
}

// notify sends a one-way message if a connection is live; notifications
// are advisory and may be lost across reconnects.
func (s *session) notify(method string, body interface{}) {
	rc, _ := s.currentConn()
	if rc != nil {
		rc.notify(method, body)
	}
}

// remoteClient lets the engine talk back to this session's client.
type remoteClient struct{ sess *session }

func (r remoteClient) CallbackObject(req msg.CallbackReq) (msg.CallbackReply, error) {
	body, err := r.sess.call("cb.object", req)
	if err != nil {
		return msg.CallbackReply{}, err
	}
	return body.(msg.CallbackReply), nil
}

func (r remoteClient) DeescalatePage(req msg.DeescReq) (msg.DeescReply, error) {
	body, err := r.sess.call("cb.deescalate", req)
	if err != nil {
		return msg.DeescReply{}, err
	}
	return body.(msg.DeescReply), nil
}

func (r remoteClient) RecallToken(p page.ID) (msg.TokenReply, error) {
	body, err := r.sess.call("cb.recall-token", pageIDBody{P: p})
	if err != nil {
		return msg.TokenReply{}, err
	}
	return body.(msg.TokenReply), nil
}

func (r remoteClient) RecoveryShipUpTo(p page.ID, psn page.PSN) error {
	_, err := r.sess.call("cb.ship-up-to", shipUpToBody{P: p, PSN: psn})
	return err
}

func (r remoteClient) NotifyFlushed(p page.ID, psn page.PSN) {
	r.sess.notify("cb.flushed", shipUpToBody{P: p, PSN: psn})
}

func (r remoteClient) RecoveryInfo() (msg.RecoveryInfoReply, error) {
	body, err := r.sess.call("cb.recovery-info", emptyBody{})
	if err != nil {
		return msg.RecoveryInfoReply{}, err
	}
	return body.(msg.RecoveryInfoReply), nil
}

func (r remoteClient) FetchCached(ids []page.ID) ([][]byte, error) {
	body, err := r.sess.call("cb.fetch-cached", fetchCachedBody{IDs: ids})
	if err != nil {
		return nil, err
	}
	return body.(imagesBody).Images, nil
}

func (r remoteClient) CallbackList(req msg.CallbackListReq) (msg.CallbackListReply, error) {
	body, err := r.sess.call("cb.callback-list", req)
	if err != nil {
		return msg.CallbackListReply{}, err
	}
	return body.(msg.CallbackListReply), nil
}

func (r remoteClient) RecoverPage(req msg.RecoverPageReq) error {
	_, err := r.sess.call("cb.recover-page", req)
	return err
}

// handle dispatches one client request.  Requests carrying a sequence
// number go through the session's reply cache, so a retransmission of
// an already-executed request returns the cached reply instead of
// executing twice.
func (s *session) handle(method string, seq uint64, body interface{}) (interface{}, error) {
	if seq != 0 {
		return s.replies.Do(seq, func() (interface{}, error) { return s.exec(method, body) })
	}
	return s.exec(method, body)
}

// exec runs one request against the engine.
func (s *session) exec(method string, body interface{}) (interface{}, error) {
	e := s.srv.engine
	switch method {
	case "register":
		req := body.(msg.RegisterReq)
		reply, err := e.Register(req)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.id = reply.ID
		s.mu.Unlock()
		e.Attach(reply.ID, remoteClient{sess: s})
		return reply, nil
	case "lock":
		return e.Lock(body.(msg.LockReq))
	case "lock-batch":
		return e.LockBatch(body.(msg.LockBatchReq))
	case "unlock":
		return nil, e.Unlock(body.(msg.UnlockReq))
	case "fetch":
		return e.Fetch(body.(msg.FetchReq))
	case "fetch-batch":
		return e.FetchBatch(body.(msg.FetchBatchReq))
	case "ship":
		return nil, e.Ship(body.(msg.ShipReq))
	case "force":
		return e.Force(body.(msg.ForceReq))
	case "alloc":
		return e.Alloc(body.(msg.AllocReq))
	case "free":
		return nil, e.Free(body.(msg.FreeReq))
	case "commit-ship":
		return nil, e.CommitShip(body.(msg.CommitShipReq))
	case "token":
		return e.Token(body.(msg.TokenReq))
	case "recovery-fetch":
		return e.RecoveryFetch(body.(msg.RecoveryFetchReq))
	case "reinstall":
		b := body.(reinstallBody)
		return nil, e.Reinstall(b.C, b.Holds)
	case "recover-query":
		b := body.(recoverQueryBody)
		rows, err := e.RecoverQuery(b.C, b.Pages)
		if err != nil {
			return nil, err
		}
		return dctRowsBody{Rows: rows}, nil
	case "log-op":
		return e.LogOp(body.(msg.LogReq))
	case "recover-end":
		return nil, e.RecoverEnd(body.(clientIDBody).C)
	case "disconnect":
		return nil, e.Disconnect(body.(clientIDBody).C)
	default:
		return nil, fmt.Errorf("netrpc: unknown method %q", method)
	}
}
