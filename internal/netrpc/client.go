package netrpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"clientlog/internal/core"
	"clientlog/internal/fault"
	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/msg"
	"clientlog/internal/page"
)

// DefaultCallTimeout bounds one request-reply round trip.  It sits
// well above the engine's lock timeout so that a slow-but-answered
// lock wait is never misread as a dead connection.
const DefaultCallTimeout = 30 * time.Second

// DefaultTCPRetry is the reconnect-and-retry budget for calls over
// TCP: a handful of attempts with millisecond backoff, enough to ride
// out a connection swap without stretching a real outage.
func DefaultTCPRetry() msg.RetryPolicy {
	return msg.RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}
}

// Transport is the client side of a TCP session: it implements
// msg.Server (requests travel to the remote server) and serves the
// server's callbacks against the local msg.Client handler installed
// with SetLocal.
//
// A Transport survives its connection: if the conn dies (or a fault
// plan kills it), the next call redials, resumes the session with its
// token, and retransmits under the original sequence number — the
// server's reply cache makes the retry idempotent.  Only when the
// server has already declared the session crashed does the Transport
// fail permanently with ErrSessionExpired.
type Transport struct {
	addr        string
	retry       msg.RetryPolicy
	callTimeout time.Duration
	maxVersion  uint32

	seq       atomic.Uint64    // session-scoped request numbers
	cbReplies *core.ReplyCache // server->client duplicate suppression

	inj    *fault.Injector
	stream string

	wireStats atomic.Pointer[WireStats] // per-instance accounting; nil = Wire

	local      msg.Client
	localReady chan struct{}
	localOnce  sync.Once

	mu     sync.Mutex
	conn   *rpcConn
	token  uint64
	closed bool
}

// Dial connects to a server started with Serve and opens a session.
func Dial(addr string) (*Transport, error) {
	return DialVersion(addr, ProtocolVersion)
}

// DialVersion is Dial with an explicit protocol-version ceiling, for
// interop with (or testing against) peers pinned below
// ProtocolVersion.  Versions below 2 are clamped to 2.
func DialVersion(addr string, version uint32) (*Transport, error) {
	if version < 2 {
		version = 2
	}
	t := &Transport{
		addr:        addr,
		retry:       DefaultTCPRetry(),
		callTimeout: DefaultCallTimeout,
		maxVersion:  version,
		cbReplies:   core.NewReplyCache(0),
		localReady:  make(chan struct{}),
	}
	if _, err := t.getConn(); err != nil {
		return nil, err
	}
	return t, nil
}

// NegotiatedVersion reports the protocol version agreed with the
// server on the current connection (2 before any hello completes).
func (t *Transport) NegotiatedVersion() uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn == nil {
		return 2
	}
	return t.conn.version()
}

// SetWireStats points future connections (including redials) at ws
// instead of the process-wide Wire accounting sink.
func (t *Transport) SetWireStats(ws *WireStats) { t.wireStats.Store(ws) }

// SetRetry replaces the retry budget (before issuing calls).
func (t *Transport) SetRetry(p msg.RetryPolicy) { t.retry = p }

// SetCallTimeout replaces the per-request deadline (before issuing
// calls).  Zero disables deadlines; a dead connection still fails
// pending calls fast.
func (t *Transport) SetCallTimeout(d time.Duration) { t.callTimeout = d }

// InjectFaults wires a deterministic fault injector into this
// transport: each attempt draws a decision from the named stream, and
// disconnect decisions kill the real TCP connection so retries
// exercise the actual resume path.
func (t *Transport) InjectFaults(inj *fault.Injector, stream string) {
	t.inj = inj
	t.stream = stream
}

// SetLocal installs the local client engine as the handler for
// server-initiated callbacks.  It must be called right after the engine
// is constructed; callbacks arriving earlier wait.
func (t *Transport) SetLocal(local msg.Client) {
	t.local = local
	t.localOnce.Do(func() { close(t.localReady) })
}

// Close drops the session permanently (no reconnect); the server will
// declare the client crashed once the grace window passes.
func (t *Transport) Close() error {
	t.mu.Lock()
	t.closed = true
	conn := t.conn
	t.conn = nil
	t.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	return nil
}

// getConn returns the live connection, redialing and resuming the
// session if the previous one died.
func (t *Transport) getConn() (*rpcConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if t.conn != nil && !t.conn.isClosed() {
		return t.conn, nil
	}
	c, err := net.Dial("tcp", t.addr)
	if err != nil {
		return nil, err
	}
	rc := newRPCConn(c, t.maxVersion)
	if ws := t.wireStats.Load(); ws != nil {
		rc.stats = ws
	}
	rc.setHandler(t.dispatch)
	go rc.serve()
	body, err := rc.call("hello", 0, helloBody{Token: t.token, Version: t.maxVersion}, t.callTimeout)
	if err != nil {
		rc.Close()
		if isRemote(err) {
			if err.Error() == sessionExpiredMsg {
				return nil, ErrSessionExpired
			}
			return nil, err
		}
		return nil, err
	}
	t.token = body.(helloReply).Token
	t.conn = rc
	return rc, nil
}

// killConn force-closes the current connection (fault injection's
// disconnect-mid-RPC) without marking the transport closed.
func (t *Transport) killConn() {
	t.mu.Lock()
	conn := t.conn
	t.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// errInjectedDrop stands in for a request or reply the fault plan ate.
var errInjectedDrop = errors.New("netrpc: injected message drop")

// call runs one logical request with retry: transport failures
// (connection death, deadline, injected faults) redial and retransmit
// under the same sequence number; the peer's reply cache guarantees
// at-most-once execution, so a retried request that did execute gets
// its original answer.  Remote application errors return immediately.
func (t *Transport) call(method string, body interface{}) (interface{}, error) {
	seq := t.seq.Add(1)
	pol := t.retry
	if pol.MaxAttempts <= 0 {
		pol = DefaultTCPRetry()
	}
	var last error
	backoff := pol.BaseBackoff
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
		}
		d := t.inj.Next(t.stream)
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
		if d.Disconnect {
			t.killConn()
		}
		if d.DropRequest {
			last = errInjectedDrop
			continue
		}
		rc, err := t.getConn()
		if err != nil {
			if errors.Is(err, ErrClosed) || errors.Is(err, ErrSessionExpired) {
				return nil, err
			}
			last = err
			continue
		}
		if d.CorruptReply {
			// The next frame this connection reads — normally our reply
			// — arrives with flipped bytes and fails its checksum.
			rc.armCorrupt()
		}
		if d.Duplicate || d.Replay {
			// Retransmit the same seq out of band; the server's reply
			// cache absorbs it.
			go rc.call(method, seq, body, t.callTimeout)
		}
		reply, err := rc.call(method, seq, body, t.callTimeout)
		if err == nil {
			if d.DropReply {
				last = errInjectedDrop
				continue
			}
			return reply, nil
		}
		if isRemote(err) {
			return nil, err
		}
		last = err
	}
	return nil, fmt.Errorf("netrpc: %s after %d attempts: %w (last: %v)",
		method, pol.MaxAttempts, msg.ErrUnavailable, last)
}

// dispatch serves one server-initiated callback, suppressing
// retransmitted duplicates by sequence number.
func (t *Transport) dispatch(method string, seq uint64, body interface{}) (interface{}, error) {
	<-t.localReady
	if seq != 0 {
		return t.cbReplies.Do(seq, func() (interface{}, error) { return t.serveCallback(method, body) })
	}
	return t.serveCallback(method, body)
}

func (t *Transport) serveCallback(method string, body interface{}) (interface{}, error) {
	local := t.local
	switch method {
	case "cb.object":
		return local.CallbackObject(body.(msg.CallbackReq))
	case "cb.deescalate":
		return local.DeescalatePage(body.(msg.DeescReq))
	case "cb.recall-token":
		return local.RecallToken(body.(pageIDBody).P)
	case "cb.ship-up-to":
		b := body.(shipUpToBody)
		return nil, local.RecoveryShipUpTo(b.P, b.PSN)
	case "cb.flushed":
		b := body.(shipUpToBody)
		local.NotifyFlushed(b.P, b.PSN)
		return nil, nil
	case "cb.recovery-info":
		return local.RecoveryInfo()
	case "cb.fetch-cached":
		images, err := local.FetchCached(body.(fetchCachedBody).IDs)
		if err != nil {
			return nil, err
		}
		return imagesBody{Images: images}, nil
	case "cb.callback-list":
		return local.CallbackList(body.(msg.CallbackListReq))
	case "cb.recover-page":
		return nil, local.RecoverPage(body.(msg.RecoverPageReq))
	default:
		return nil, fmt.Errorf("netrpc: unknown callback %q", method)
	}
}

// --- msg.Server implementation ---

// Register implements msg.Server.
func (t *Transport) Register(req msg.RegisterReq) (msg.RegisterReply, error) {
	body, err := t.call("register", req)
	if err != nil {
		return msg.RegisterReply{}, err
	}
	return body.(msg.RegisterReply), nil
}

// Lock implements msg.Server.
func (t *Transport) Lock(req msg.LockReq) (msg.LockReply, error) {
	body, err := t.call("lock", req)
	if err != nil {
		return msg.LockReply{}, mapLockErr(err)
	}
	return body.(msg.LockReply), nil
}

// mapLockErr restores the typed lock errors that string-travelled over
// the wire so errors.Is keeps working at the client.
func mapLockErr(err error) error {
	switch err.Error() {
	case lock.ErrDeadlock.Error():
		return lock.ErrDeadlock
	case lock.ErrTimeout.Error():
		return lock.ErrTimeout
	case lock.ErrStopped.Error():
		return lock.ErrStopped
	default:
		return err
	}
}

// LockBatch implements msg.Server.  Per-item errors travel as strings
// inside the reply (msg.LockErrFromString restores them at the caller);
// only transport failures surface as the RPC error.
func (t *Transport) LockBatch(req msg.LockBatchReq) (msg.LockBatchReply, error) {
	body, err := t.call("lock-batch", req)
	if err != nil {
		return msg.LockBatchReply{}, err
	}
	return body.(msg.LockBatchReply), nil
}

// Unlock implements msg.Server.
func (t *Transport) Unlock(req msg.UnlockReq) error {
	_, err := t.call("unlock", req)
	return err
}

// Fetch implements msg.Server.
func (t *Transport) Fetch(req msg.FetchReq) (msg.FetchReply, error) {
	body, err := t.call("fetch", req)
	if err != nil {
		return msg.FetchReply{}, err
	}
	return body.(msg.FetchReply), nil
}

// FetchBatch implements msg.Server.
func (t *Transport) FetchBatch(req msg.FetchBatchReq) (msg.FetchBatchReply, error) {
	body, err := t.call("fetch-batch", req)
	if err != nil {
		return msg.FetchBatchReply{}, err
	}
	return body.(msg.FetchBatchReply), nil
}

// Ship implements msg.Server.
func (t *Transport) Ship(req msg.ShipReq) error {
	_, err := t.call("ship", req)
	return err
}

// Force implements msg.Server.
func (t *Transport) Force(req msg.ForceReq) (msg.ForceReply, error) {
	body, err := t.call("force", req)
	if err != nil {
		return msg.ForceReply{}, err
	}
	return body.(msg.ForceReply), nil
}

// Alloc implements msg.Server.
func (t *Transport) Alloc(req msg.AllocReq) (msg.FetchReply, error) {
	body, err := t.call("alloc", req)
	if err != nil {
		return msg.FetchReply{}, err
	}
	return body.(msg.FetchReply), nil
}

// Free implements msg.Server.
func (t *Transport) Free(req msg.FreeReq) error {
	_, err := t.call("free", req)
	return err
}

// CommitShip implements msg.Server.
func (t *Transport) CommitShip(req msg.CommitShipReq) error {
	_, err := t.call("commit-ship", req)
	return err
}

// Token implements msg.Server.
func (t *Transport) Token(req msg.TokenReq) (msg.TokenReply, error) {
	body, err := t.call("token", req)
	if err != nil {
		return msg.TokenReply{}, err
	}
	return body.(msg.TokenReply), nil
}

// RecoveryFetch implements msg.Server.
func (t *Transport) RecoveryFetch(req msg.RecoveryFetchReq) (msg.FetchReply, error) {
	body, err := t.call("recovery-fetch", req)
	if err != nil {
		return msg.FetchReply{}, err
	}
	return body.(msg.FetchReply), nil
}

// Reinstall implements msg.Server.
func (t *Transport) Reinstall(c ident.ClientID, holds []lock.Holding) error {
	_, err := t.call("reinstall", reinstallBody{C: c, Holds: holds})
	return err
}

// RecoverQuery implements msg.Server.
func (t *Transport) RecoverQuery(c ident.ClientID, pages []page.ID) ([]msg.DCTRow, error) {
	body, err := t.call("recover-query", recoverQueryBody{C: c, Pages: pages})
	if err != nil {
		return nil, err
	}
	return body.(dctRowsBody).Rows, nil
}

// LogOp implements msg.Server.
func (t *Transport) LogOp(req msg.LogReq) (msg.LogReply, error) {
	body, err := t.call("log-op", req)
	if err != nil {
		return msg.LogReply{}, err
	}
	return body.(msg.LogReply), nil
}

// RecoverEnd implements msg.Server.
func (t *Transport) RecoverEnd(c ident.ClientID) error {
	_, err := t.call("recover-end", clientIDBody{C: c})
	return err
}

// Disconnect implements msg.Server.
func (t *Transport) Disconnect(c ident.ClientID) error {
	_, err := t.call("disconnect", clientIDBody{C: c})
	return err
}
