package netrpc

import (
	"fmt"
	"net"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/msg"
	"clientlog/internal/page"
)

// Transport is the client side of a TCP session: it implements
// msg.Server (requests travel to the remote server) and serves the
// server's callbacks against the local msg.Client handler installed
// with SetLocal.
type Transport struct {
	conn *rpcConn
}

// Dial connects to a server started with Serve.
func Dial(addr string) (*Transport, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &Transport{conn: newRPCConn(c)}
	go t.conn.serve()
	return t, nil
}

// SetLocal installs the local client engine as the handler for
// server-initiated callbacks.  It must be called right after the engine
// is constructed; callbacks arriving earlier wait.
func (t *Transport) SetLocal(local msg.Client) {
	t.conn.setHandler(func(method string, body interface{}) (interface{}, error) {
		switch method {
		case "cb.object":
			return local.CallbackObject(body.(msg.CallbackReq))
		case "cb.deescalate":
			return local.DeescalatePage(body.(msg.DeescReq))
		case "cb.recall-token":
			return local.RecallToken(body.(pageIDBody).P)
		case "cb.ship-up-to":
			b := body.(shipUpToBody)
			return nil, local.RecoveryShipUpTo(b.P, b.PSN)
		case "cb.flushed":
			b := body.(shipUpToBody)
			local.NotifyFlushed(b.P, b.PSN)
			return nil, nil
		case "cb.recovery-info":
			return local.RecoveryInfo()
		case "cb.fetch-cached":
			images, err := local.FetchCached(body.(fetchCachedBody).IDs)
			if err != nil {
				return nil, err
			}
			return imagesBody{Images: images}, nil
		case "cb.callback-list":
			return local.CallbackList(body.(msg.CallbackListReq))
		case "cb.recover-page":
			return nil, local.RecoverPage(body.(msg.RecoverPageReq))
		default:
			return nil, fmt.Errorf("netrpc: unknown callback %q", method)
		}
	})
}

// Close drops the session.
func (t *Transport) Close() error { return t.conn.Close() }

// --- msg.Server implementation ---

// Register implements msg.Server.
func (t *Transport) Register(req msg.RegisterReq) (msg.RegisterReply, error) {
	body, err := t.conn.call("register", req)
	if err != nil {
		return msg.RegisterReply{}, err
	}
	return body.(msg.RegisterReply), nil
}

// Lock implements msg.Server.
func (t *Transport) Lock(req msg.LockReq) (msg.LockReply, error) {
	body, err := t.conn.call("lock", req)
	if err != nil {
		return msg.LockReply{}, mapLockErr(err)
	}
	return body.(msg.LockReply), nil
}

// mapLockErr restores the typed lock errors that string-travelled over
// the wire so errors.Is keeps working at the client.
func mapLockErr(err error) error {
	switch err.Error() {
	case lock.ErrDeadlock.Error():
		return lock.ErrDeadlock
	case lock.ErrTimeout.Error():
		return lock.ErrTimeout
	case lock.ErrStopped.Error():
		return lock.ErrStopped
	default:
		return err
	}
}

// Unlock implements msg.Server.
func (t *Transport) Unlock(req msg.UnlockReq) error {
	_, err := t.conn.call("unlock", req)
	return err
}

// Fetch implements msg.Server.
func (t *Transport) Fetch(req msg.FetchReq) (msg.FetchReply, error) {
	body, err := t.conn.call("fetch", req)
	if err != nil {
		return msg.FetchReply{}, err
	}
	return body.(msg.FetchReply), nil
}

// Ship implements msg.Server.
func (t *Transport) Ship(req msg.ShipReq) error {
	_, err := t.conn.call("ship", req)
	return err
}

// Force implements msg.Server.
func (t *Transport) Force(req msg.ForceReq) (msg.ForceReply, error) {
	body, err := t.conn.call("force", req)
	if err != nil {
		return msg.ForceReply{}, err
	}
	return body.(msg.ForceReply), nil
}

// Alloc implements msg.Server.
func (t *Transport) Alloc(req msg.AllocReq) (msg.FetchReply, error) {
	body, err := t.conn.call("alloc", req)
	if err != nil {
		return msg.FetchReply{}, err
	}
	return body.(msg.FetchReply), nil
}

// Free implements msg.Server.
func (t *Transport) Free(req msg.FreeReq) error {
	_, err := t.conn.call("free", req)
	return err
}

// CommitShip implements msg.Server.
func (t *Transport) CommitShip(req msg.CommitShipReq) error {
	_, err := t.conn.call("commit-ship", req)
	return err
}

// Token implements msg.Server.
func (t *Transport) Token(req msg.TokenReq) (msg.TokenReply, error) {
	body, err := t.conn.call("token", req)
	if err != nil {
		return msg.TokenReply{}, err
	}
	return body.(msg.TokenReply), nil
}

// RecoveryFetch implements msg.Server.
func (t *Transport) RecoveryFetch(req msg.RecoveryFetchReq) (msg.FetchReply, error) {
	body, err := t.conn.call("recovery-fetch", req)
	if err != nil {
		return msg.FetchReply{}, err
	}
	return body.(msg.FetchReply), nil
}

// Reinstall implements msg.Server.
func (t *Transport) Reinstall(c ident.ClientID, holds []lock.Holding) error {
	_, err := t.conn.call("reinstall", reinstallBody{C: c, Holds: holds})
	return err
}

// RecoverQuery implements msg.Server.
func (t *Transport) RecoverQuery(c ident.ClientID, pages []page.ID) ([]msg.DCTRow, error) {
	body, err := t.conn.call("recover-query", recoverQueryBody{C: c, Pages: pages})
	if err != nil {
		return nil, err
	}
	return body.(dctRowsBody).Rows, nil
}

// LogOp implements msg.Server.
func (t *Transport) LogOp(req msg.LogReq) (msg.LogReply, error) {
	body, err := t.conn.call("log-op", req)
	if err != nil {
		return msg.LogReply{}, err
	}
	return body.(msg.LogReply), nil
}

// RecoverEnd implements msg.Server.
func (t *Transport) RecoverEnd(c ident.ClientID) error {
	_, err := t.conn.call("recover-end", clientIDBody{C: c})
	return err
}

// Disconnect implements msg.Server.
func (t *Transport) Disconnect(c ident.ClientID) error {
	_, err := t.conn.call("disconnect", clientIDBody{C: c})
	return err
}
