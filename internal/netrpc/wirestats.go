package netrpc

import (
	"sync/atomic"
	"time"

	"clientlog/internal/obs"
)

// WireStats accounts wire frames per {method, version} so the cost of
// the three codec paths — the v3 binary hot path, the tagGob escape
// hatch, and the v2 gob fallback — is individually measurable.  The
// per-version split is what "retire v2" needs data behind: once the
// v3gob share of frames is known, the remaining gob surface is a
// number, not a guess.
//
// Accounting is off until RegisterObs attaches a registry, so the
// zero-allocation guarantee of the v3 hot path is unchanged when
// nobody is looking.  When enabled, the hot-path bookkeeping is a
// fixed-index array access plus two time.Now() calls — no allocation,
// no map, no lock.
//
// Every connection points at a *WireStats: the process-wide Wire by
// default, or a per-instance one injected with Server.SetWireStats /
// Transport.SetWireStats so multi-partition fleets hosted in one
// process still get per-partition wire accounting.
type WireStats struct {
	enabled atomic.Bool
	// v3 binary frames indexed by type tag; the tag IS the method.
	v3 [tagEmpty + 1]wireEntry
	// gob-escape (v3 header, gob body) and v2 frames indexed by
	// method class.
	v3gob [wireMethodCount]wireEntry
	v2    [wireMethodCount]wireEntry
}

// wireEntry is one {method, version} cell.
type wireEntry struct {
	frames obs.Counter
	bytes  obs.Counter
	encode obs.Histogram // nanos per frame encode
	decode obs.Histogram // nanos per frame decode
}

// Wire is the process-wide default accounting sink.
var Wire = &WireStats{}

// Version labels on the exported series.
const (
	wireVerV2    = "v2"
	wireVerV3    = "v3"
	wireVerV3Gob = "v3gob"
)

// Method classes for gob-encoded traffic (v2 frames and the v3 gob
// escape), where the method is a string rather than a tag.  The list
// is the complete method surface of the protocol; unknown strings land
// in wireMethodOther so cardinality stays bounded no matter what a
// peer sends.
const (
	wireMethodHello = iota
	wireMethodRegister
	wireMethodLock
	wireMethodLockBatch
	wireMethodUnlock
	wireMethodFetch
	wireMethodFetchBatch
	wireMethodShip
	wireMethodForce
	wireMethodAlloc
	wireMethodFree
	wireMethodCommitShip
	wireMethodToken
	wireMethodRecoveryFetch
	wireMethodReinstall
	wireMethodRecoverQuery
	wireMethodLogOp
	wireMethodRecoverEnd
	wireMethodDisconnect
	wireMethodCbObject
	wireMethodCbDeescalate
	wireMethodCbRecallToken
	wireMethodCbShipUpTo
	wireMethodCbFlushed
	wireMethodCbRecoveryInfo
	wireMethodCbFetchCached
	wireMethodCbCallbackList
	wireMethodCbRecoverPage
	wireMethodReply // a reply frame with no recoverable method name
	wireMethodOther
	wireMethodCount
)

var wireMethodNames = [wireMethodCount]string{
	wireMethodHello:          "hello",
	wireMethodRegister:       "register",
	wireMethodLock:           "lock",
	wireMethodLockBatch:      "lock-batch",
	wireMethodUnlock:         "unlock",
	wireMethodFetch:          "fetch",
	wireMethodFetchBatch:     "fetch-batch",
	wireMethodShip:           "ship",
	wireMethodForce:          "force",
	wireMethodAlloc:          "alloc",
	wireMethodFree:           "free",
	wireMethodCommitShip:     "commit-ship",
	wireMethodToken:          "token",
	wireMethodRecoveryFetch:  "recovery-fetch",
	wireMethodReinstall:      "reinstall",
	wireMethodRecoverQuery:   "recover-query",
	wireMethodLogOp:          "log-op",
	wireMethodRecoverEnd:     "recover-end",
	wireMethodDisconnect:     "disconnect",
	wireMethodCbObject:       "cb.object",
	wireMethodCbDeescalate:   "cb.deescalate",
	wireMethodCbRecallToken:  "cb.recall-token",
	wireMethodCbShipUpTo:     "cb.ship-up-to",
	wireMethodCbFlushed:      "cb.flushed",
	wireMethodCbRecoveryInfo: "cb.recovery-info",
	wireMethodCbFetchCached:  "cb.fetch-cached",
	wireMethodCbCallbackList: "cb.callback-list",
	wireMethodCbRecoverPage:  "cb.recover-page",
	wireMethodReply:          "reply",
	wireMethodOther:          "other",
}

func wireMethodIndex(method string, reply bool) int {
	switch method {
	case "hello":
		return wireMethodHello
	case "register":
		return wireMethodRegister
	case "lock":
		return wireMethodLock
	case "lock-batch":
		return wireMethodLockBatch
	case "unlock":
		return wireMethodUnlock
	case "fetch":
		return wireMethodFetch
	case "fetch-batch":
		return wireMethodFetchBatch
	case "ship":
		return wireMethodShip
	case "force":
		return wireMethodForce
	case "alloc":
		return wireMethodAlloc
	case "free":
		return wireMethodFree
	case "commit-ship":
		return wireMethodCommitShip
	case "token":
		return wireMethodToken
	case "recovery-fetch":
		return wireMethodRecoveryFetch
	case "reinstall":
		return wireMethodReinstall
	case "recover-query":
		return wireMethodRecoverQuery
	case "log-op":
		return wireMethodLogOp
	case "recover-end":
		return wireMethodRecoverEnd
	case "disconnect":
		return wireMethodDisconnect
	case "cb.object":
		return wireMethodCbObject
	case "cb.deescalate":
		return wireMethodCbDeescalate
	case "cb.recall-token":
		return wireMethodCbRecallToken
	case "cb.ship-up-to":
		return wireMethodCbShipUpTo
	case "cb.flushed":
		return wireMethodCbFlushed
	case "cb.recovery-info":
		return wireMethodCbRecoveryInfo
	case "cb.fetch-cached":
		return wireMethodCbFetchCached
	case "cb.callback-list":
		return wireMethodCbCallbackList
	case "cb.recover-page":
		return wireMethodCbRecoverPage
	case "":
		if reply {
			return wireMethodReply
		}
		return wireMethodOther
	default:
		return wireMethodOther
	}
}

// wireTagMethod labels a v3 binary frame with the method whose traffic
// it carries: reply tags fold into their request's method so the
// per-method series counts both directions of one RPC.
var wireTagMethod = [tagEmpty + 1]string{
	tagGob:             "gob", // never rendered: tagGob frames go through v3gob
	tagLockReq:         "lock",
	tagLockReply:       "lock",
	tagLockBatchReq:    "lock-batch",
	tagLockBatchReply:  "lock-batch",
	tagFetchReq:        "fetch",
	tagFetchReply:      "fetch",
	tagFetchBatchReq:   "fetch-batch",
	tagFetchBatchReply: "fetch-batch",
	tagUnlockReq:       "unlock",
	tagShipReq:         "ship",
	tagForceReq:        "force",
	tagForceReply:      "force",
	tagCommitShipReq:   "commit-ship",
	tagEmpty:           "reply",
}

// Enabled reports whether accounting is live (a registry is attached).
func (ws *WireStats) Enabled() bool { return ws != nil && ws.enabled.Load() }

// now is time.Now gated on the enabled flag, so the disabled hot path
// pays one atomic load and nothing else.
func (ws *WireStats) now() time.Time {
	if !ws.Enabled() {
		return time.Time{}
	}
	return time.Now()
}

// recordV3 accounts one v3 binary frame.  dir selects the encode or
// decode histogram; t0 is the timestamp ws.now() returned before the
// codec ran (zero when accounting was off at that point).
func (ws *WireStats) recordV3(tag byte, bytes int, t0 time.Time, encode bool) {
	if !ws.Enabled() || t0.IsZero() || int(tag) >= len(ws.v3) {
		return
	}
	e := &ws.v3[tag]
	e.frames.Inc()
	e.bytes.Add(uint64(bytes))
	if encode {
		e.encode.Observe(uint64(time.Since(t0)))
	} else {
		e.decode.Observe(uint64(time.Since(t0)))
	}
}

// recordGob accounts one gob-bodied frame: v2 framing or the v3 gob
// escape, per the v3gob flag.
func (ws *WireStats) recordGob(method string, reply bool, v3gob bool, bytes int, t0 time.Time, encode bool) {
	if !ws.Enabled() || t0.IsZero() {
		return
	}
	var e *wireEntry
	if v3gob {
		e = &ws.v3gob[wireMethodIndex(method, reply)]
	} else {
		e = &ws.v2[wireMethodIndex(method, reply)]
	}
	e.frames.Inc()
	e.bytes.Add(uint64(bytes))
	if encode {
		e.encode.Observe(uint64(time.Since(t0)))
	} else {
		e.decode.Observe(uint64(time.Since(t0)))
	}
}

// RegisterObs binds every {method, version} cell into reg as the
// netrpc_frames_total / netrpc_bytes_total / netrpc_encode_nanos /
// netrpc_decode_nanos families and switches accounting on.  Cells are
// bound eagerly (not lazily on first use) so "partition tags sum to
// fleet totals" holds even for series that stay at zero.
func (ws *WireStats) RegisterObs(reg *obs.Registry, tags ...obs.Tag) {
	if ws == nil || reg == nil {
		return
	}
	bind := func(e *wireEntry, method, version string) {
		t := append(append([]obs.Tag{}, tags...),
			obs.T("method", method), obs.T("version", version))
		reg.BindCounter(&e.frames, "netrpc_frames_total", t...)
		reg.BindCounter(&e.bytes, "netrpc_bytes_total", t...)
		reg.BindHistogram(&e.encode, "netrpc_encode_nanos", t...)
		reg.BindHistogram(&e.decode, "netrpc_decode_nanos", t...)
	}
	for tag := tagGob + 1; tag <= tagEmpty; tag++ {
		bind(&ws.v3[tag], wireTagMethod[tag], wireVerV3)
	}
	for m := 0; m < wireMethodCount; m++ {
		bind(&ws.v3gob[m], wireMethodNames[m], wireVerV3Gob)
		bind(&ws.v2[m], wireMethodNames[m], wireVerV2)
	}
	ws.enabled.Store(true)
}

// RegisterWireObs binds the process-wide Wire stats into reg.
func RegisterWireObs(reg *obs.Registry, tags ...obs.Tag) {
	Wire.RegisterObs(reg, tags...)
}
