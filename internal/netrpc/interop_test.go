package netrpc

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"clientlog/internal/core"
	"clientlog/internal/fault"
	"clientlog/internal/msg"
	"clientlog/internal/wal"
)

// dialClientVersion is dialClient with an explicit protocol ceiling.
func dialClientVersion(t *testing.T, cfg core.Config, addr string, version uint32) (*core.Client, *Transport) {
	t.Helper()
	tr, err := DialVersion(addr, version)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewClient(cfg, tr, wal.NewMemStore(0))
	if err != nil {
		t.Fatal(err)
	}
	tr.SetLocal(c)
	t.Cleanup(func() { tr.Close() })
	return c, tr
}

// TestProtocolInterop pins each side of the connection below
// ProtocolVersion in turn and drives real traffic — commit, read-back,
// and a cross-client callback — over every pairing.  The negotiated
// version must be min(client, server) and the payloads must survive
// regardless of framing.
func TestProtocolInterop(t *testing.T) {
	cases := []struct {
		name           string
		clientV, srvV  uint32
		wantNegotiated uint32
	}{
		{"v3-client_v3-server", ProtocolVersion, ProtocolVersion, 3},
		{"v2-client_v3-server", 2, ProtocolVersion, 2},
		{"v3-client_v2-server", ProtocolVersion, 2, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testCfg()
			_, srv, ids := startCluster(t, cfg, 2)
			srv.SetMaxVersion(tc.srvV)
			a, tra := dialClientVersion(t, cfg, srv.Addr().String(), tc.clientV)
			b, trb := dialClientVersion(t, cfg, srv.Addr().String(), tc.clientV)
			if got := tra.NegotiatedVersion(); got != tc.wantNegotiated {
				t.Fatalf("negotiated %d, want %d", got, tc.wantNegotiated)
			}
			if got := trb.NegotiatedVersion(); got != tc.wantNegotiated {
				t.Fatalf("negotiated %d, want %d", got, tc.wantNegotiated)
			}

			obj := pageObj(ids[0], 1)
			ta, err := a.Begin()
			if err != nil {
				t.Fatal(err)
			}
			want := []byte("interop payload!")
			if err := ta.Overwrite(obj, want); err != nil {
				t.Fatal(err)
			}
			if err := ta.Commit(); err != nil {
				t.Fatal(err)
			}
			// B's read forces a real callback to A across the same framing.
			tb, err := b.Begin()
			if err != nil {
				t.Fatal(err)
			}
			got, err := tb.Read(obj)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("cross-client read %q err=%v", got, err)
			}
			if err := tb.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCorruptReplyFailsFast is the regression test for the silently
// skipped corrupt reply: a reply frame that fails its checksum must
// fail the pending call immediately with ErrCorruptReply (not hang to
// its deadline as before), count into CorruptFrames, and leave the
// connection usable.
func TestCorruptReplyFailsFast(t *testing.T) {
	cfg := testCfg()
	_, srv, ids := startCluster(t, cfg, 1)
	c, tr := dialClient(t, cfg, srv.Addr().String())

	rc, err := tr.getConn()
	if err != nil {
		t.Fatal(err)
	}
	before := Metrics.CorruptFrames.Load()
	rc.armCorrupt()
	start := time.Now()
	_, err = rc.call("fetch", 0, msg.FetchReq{Client: c.ID(), Page: ids[0]}, 10*time.Second)
	if !errors.Is(err, ErrCorruptReply) {
		t.Fatalf("err=%v want ErrCorruptReply", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("corrupt reply took %v to fail (hung toward deadline)", time.Since(start))
	}
	if got := Metrics.CorruptFrames.Load(); got <= before {
		t.Fatalf("CorruptFrames=%d, want > %d", got, before)
	}
	if rc.isClosed() {
		t.Fatal("corrupt frame tore the connection down")
	}
	// The stream is still in sync: the next call on the same connection
	// succeeds.
	body, err := rc.call("fetch", 0, msg.FetchReq{Client: c.ID(), Page: ids[0]}, 10*time.Second)
	if err != nil {
		t.Fatalf("follow-up call after corrupt frame: %v", err)
	}
	if len(body.(msg.FetchReply).Image) != cfg.PageSize {
		t.Fatalf("follow-up reply image %d bytes, want %d", len(body.(msg.FetchReply).Image), cfg.PageSize)
	}
}

// TestTCPCorruptionFaultInjection drives commits through a fault plan
// that corrupts reply frames: every transaction must still commit
// exactly once (retries under the same sequence number hit the reply
// cache), with the corruption visible in the CorruptFrames counter.
func TestTCPCorruptionFaultInjection(t *testing.T) {
	cfg := testCfg()
	engine, ln, ids := startEngine(t, cfg, 2)
	srv := ServeGrace(engine, ln, 2*time.Second)
	t.Cleanup(func() { srv.Close() })

	tr, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(23, fault.Plan{CorruptProb: 0.25})
	tr.InjectFaults(inj, "tcp-corrupt")
	tr.SetRetry(msg.RetryPolicy{MaxAttempts: 30, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond})
	before := Metrics.CorruptFrames.Load()

	c, err := core.NewClient(cfg, tr, wal.NewMemStore(0))
	if err != nil {
		t.Fatal(err)
	}
	tr.SetLocal(c)
	t.Cleanup(func() { tr.Close() })

	obj := pageObj(ids[0], 2)
	for round := 0; round < 30; round++ {
		txn, err := c.Begin()
		if err != nil {
			t.Fatalf("round %d: begin: %v", round, err)
		}
		val := bytes.Repeat([]byte{byte(round + 1)}, 16)
		if err := txn.Overwrite(obj, val); err != nil {
			t.Fatalf("round %d: overwrite: %v", round, err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("round %d: commit: %v", round, err)
		}
		txn2, _ := c.Begin()
		got, err := txn2.Read(obj)
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("round %d: read back %q err=%v", round, got, err)
		}
		txn2.Commit()
		// The engine caches locks and pages, so commits alone stop
		// crossing the wire after the first round; a direct fetch keeps
		// the fault plan drawing against real reply frames.
		if _, err := tr.Fetch(msg.FetchReq{Client: c.ID(), Page: ids[1]}); err != nil {
			t.Fatalf("round %d: fetch under corruption: %v", round, err)
		}
	}
	if inj.Faults() == 0 {
		t.Fatal("fault plan injected nothing")
	}
	if got := Metrics.CorruptFrames.Load(); got <= before {
		t.Fatalf("CorruptFrames=%d, want > %d (faults=%d)", got, before, inj.Faults())
	}
	if engine.GLM().Crashed(c.ID()) {
		t.Fatal("corruption faults escalated to a crash declaration")
	}
}
