package netrpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"clientlog/internal/msg"
)

func TestWireFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := envelope{ID: 7, Seq: 42, Method: "lock", Body: msg.LockReq{}}
	if err := writeFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != 7 || out.Seq != 42 || out.Method != "lock" {
		t.Fatalf("round trip mangled envelope: %+v", out)
	}
	if _, ok := out.Body.(msg.LockReq); !ok {
		t.Fatalf("body type lost: %T", out.Body)
	}
}

func TestWireOversizedFrameRejected(t *testing.T) {
	// Reading: a header claiming more than MaxFrame must be rejected
	// before any payload allocation.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	if _, err := readFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read err=%v want ErrFrameTooLarge", err)
	}
	// Writing: an envelope that encodes past the bound must be refused,
	// leaving nothing harmful on the wire beyond the aborted frame.
	big := envelope{Method: "ship", Body: imagesBody{Images: [][]byte{make([]byte, MaxFrame+1)}}}
	var sink bytes.Buffer
	if err := writeFrame(&sink, &big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write err=%v want ErrFrameTooLarge", err)
	}
}

func TestWireTruncatedFrame(t *testing.T) {
	// Header promises 100 bytes, stream delivers 10 and ends: the reader
	// must report a hard error (connection teardown), not block or
	// fabricate a frame.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.Write(make([]byte, 10))
	_, err := readFrame(&buf)
	if err == nil {
		t.Fatal("truncated frame accepted")
	}
	var corrupt corruptFrameError
	if errors.As(err, &corrupt) {
		t.Fatalf("truncation misreported as skippable corruption: %v", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err=%v want unexpected EOF", err)
	}
	// A truncated header (conn died between frames) is a clean EOF.
	short := bytes.NewBuffer([]byte{0, 0})
	if _, err := readFrame(short); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestWireCorruptPayloadSkipped(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 16)
	buf.Write(hdr[:])
	buf.Write(bytes.Repeat([]byte{0xFF}, 16)) // not a gob stream
	_, err := readFrame(&buf)
	var corrupt corruptFrameError
	if !errors.As(err, &corrupt) {
		t.Fatalf("err=%v want corruptFrameError", err)
	}
	// The framing survived: a valid frame behind the corrupt one still
	// decodes.
	good := envelope{ID: 1, Method: "unlock", Body: msg.UnlockReq{}}
	if err := writeFrame(&buf, &good); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil || out.Method != "unlock" {
		t.Fatalf("frame after corruption: %+v err=%v", out, err)
	}
}

// TestWireCorruptFrameDoesNotWedgeServer pushes a corrupt frame at a
// live server connection and then completes a normal hello on the same
// connection: the server must skip the garbage, not desync or drop the
// session.
func TestWireCorruptFrameDoesNotWedgeServer(t *testing.T) {
	cfg := testCfg()
	_, srv, _ := startCluster(t, cfg, 1)
	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 32)
	c.Write(hdr[:])
	c.Write(bytes.Repeat([]byte{0xAB}, 32))
	// Same connection, now a well-formed hello.
	if err := writeFrame(c, &envelope{ID: 1, Method: "hello", Body: helloBody{}}); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	reply, err := readFrame(c)
	if err != nil {
		t.Fatalf("no reply after corrupt frame: %v", err)
	}
	if reply.Err != "" {
		t.Fatalf("hello rejected: %s", reply.Err)
	}
	if hr, ok := reply.Body.(helloReply); !ok || hr.Token == 0 {
		t.Fatalf("bad hello reply: %+v", reply.Body)
	}
}

// TestWireOversizedFrameFailsConnFast sends an oversized length prefix:
// the server must drop the connection (the prefix cannot be trusted)
// rather than stall, and other connections keep working.
func TestWireOversizedFrameFailsConnFast(t *testing.T) {
	cfg := testCfg()
	_, srv, ids := startCluster(t, cfg, 1)
	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	c.Write(hdr[:])
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := readFrame(c); err == nil {
		t.Fatal("server kept the connection after an oversized frame")
	}
	// The listener is unharmed: a fresh, healthy client still works.
	cl, _ := dialClient(t, cfg, srv.Addr().String())
	txn, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Overwrite(pageObj(ids[0], 0), []byte("still healthy!!!")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}
