package netrpc

import (
	"testing"

	"clientlog/internal/obs"
	"clientlog/internal/page"
)

// TestWireStatsAccounting checks the per-method/per-version frame
// accounting behind the "retire v2" decision: hello must show up as
// v2 (it always travels gob for negotiation), the hot lock/commit
// path as binary v3, with bytes and encode/decode time alongside.
func TestWireStatsAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterWireObs(reg)
	t.Cleanup(func() { Wire.enabled.Store(false) })

	cfg := testCfg()
	_, srv, ids := startCluster(t, cfg, 2)
	c, tr := dialClient(t, cfg, srv.Addr().String())
	if v := tr.NegotiatedVersion(); v != ProtocolVersion {
		t.Fatalf("negotiated v%d, want v%d", v, ProtocolVersion)
	}

	txn, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Overwrite(page.ObjectID{Page: ids[0], Slot: 0}, []byte("wirestats-16byte")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	frames := func(method, version string) uint64 {
		var n uint64
		for k, v := range snap.Counters {
			fam, _ := obs.ParseKey(k)
			if fam == "netrpc_frames_total" &&
				obs.TagValue(k, "method") == method &&
				obs.TagValue(k, "version") == version {
				n += v
			}
		}
		return n
	}

	// Hello negotiates in v2 on both directions.
	if n := frames("hello", "v2"); n == 0 {
		t.Error("no v2 hello frames recorded")
	}
	// The negotiated session moves locks and fetches as binary v3.
	// (Commit itself is a local WAL force — client-based logging — so
	// no commit frame appears for this tiny write.)
	if n := frames("lock", "v3"); n == 0 {
		t.Error("no v3 lock frames recorded")
	}
	if n := frames("fetch", "v3"); n == 0 {
		t.Error("no v3 fetch frames recorded")
	}
	// Register has no binary v3 layout, so it rides the gob escape —
	// exactly the traffic the v3gob label exists to expose.
	if n := frames("register", "v3gob"); n == 0 {
		t.Error("no v3gob register frames recorded")
	}
	// Bytes travel with the frames, and the timing histograms fill in.
	if snap.Total("netrpc_bytes_total") == 0 {
		t.Error("no bytes recorded")
	}
	if v := snap.HistWhere("netrpc_encode_nanos", obs.T("version", "v3")); v.Count == 0 {
		t.Error("no v3 encode timings recorded")
	}
	if v := snap.HistWhere("netrpc_decode_nanos", obs.T("version", "v3")); v.Count == 0 {
		t.Error("no v3 decode timings recorded")
	}
	// Every series carries both tags (nothing leaks untagged).
	for k := range snap.Counters {
		fam, _ := obs.ParseKey(k)
		if fam != "netrpc_frames_total" && fam != "netrpc_bytes_total" {
			continue
		}
		if obs.TagValue(k, "method") == "" || obs.TagValue(k, "version") == "" {
			t.Errorf("series %s lacks method/version tags", k)
		}
	}
}
