package netrpc

import (
	"bytes"
	"testing"
	"time"

	"clientlog/internal/core"
	"clientlog/internal/msg"
	"clientlog/internal/page"
	"clientlog/internal/wal"
)

// TestTCPClientCrashRecovery runs §3.3 end to end over real sockets:
// the client process "dies" (connection drop), reconnects on a fresh
// connection with its old id and private log, and recovers.
func TestTCPClientCrashRecovery(t *testing.T) {
	cfg := testCfg()
	engine, srv, ids := startCluster(t, cfg, 2)
	logStore := wal.NewMemStore(0)

	tr, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewClient(cfg, tr, logStore)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetLocal(c)
	id := c.ID()
	obj := page.ObjectID{Page: ids[0], Slot: 1}
	txn, _ := c.Begin()
	want := []byte("tcp-recoverable!")
	if err := txn.Overwrite(obj, want); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	// Kill the connection; the server notices the crash.
	tr.Close()
	deadline := time.Now().Add(2 * time.Second)
	for !engine.GLM().Crashed(id) {
		if time.Now().After(deadline) {
			t.Fatal("crash not detected")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The engine's volatile state is gone with the process; only the
	// private log survives.  Reconnect and recover.
	tr2, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	// RecoverClient registers with Recover=true; the session must attach
	// under the OLD id for callbacks to find the new connection.
	rec, err := core.RecoverClient(cfg, tr2, logStore, id)
	if err != nil {
		t.Fatalf("recovery over TCP: %v", err)
	}
	tr2.SetLocal(rec)
	txn2, _ := rec.Begin()
	got, err := txn2.Read(obj)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("after TCP recovery: %q err=%v", got, err)
	}
	txn2.Commit()

	// Another client can now take the object over (queued callbacks
	// drain after recovery).
	b, _ := dialClient(t, cfg, srv.Addr().String())
	tb, _ := b.Begin()
	if err := tb.Overwrite(obj, []byte("taken over after")); err != nil {
		t.Fatal(err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPDisklessClient exercises the remote-log protocol over real
// sockets.
func TestTCPDisklessClient(t *testing.T) {
	cfg := testCfg()
	engine, srv, ids := startCluster(t, cfg, 1)
	engine.HostRemoteLogs(core.NewRemoteLogHost(0))

	tr, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	reply, err := tr.Register(msg.RegisterReq{})
	if err != nil {
		t.Fatal(err)
	}
	remote := core.NewRemoteLogStore(tr, reply.ID)
	c, err := core.NewClientWithID(cfg, tr, remote, reply.ID)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetLocal(c)

	obj := page.ObjectID{Page: ids[0], Slot: 0}
	txn, _ := c.Begin()
	want := []byte("diskless-on-tcp!")
	if err := txn.Overwrite(obj, want); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	txn2, _ := c.Begin()
	got, err := txn2.Read(obj)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("diskless read back: %q err=%v", got, err)
	}
	txn2.Commit()
}
