package netrpc

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"clientlog/internal/lock"
	"clientlog/internal/msg"
)

// hotPayload validates a v3 frame payload the way the read loop does
// (header + checksum) and returns the body bytes for a typed decode.
// This is the engine's hot receive path minus the interface boxing that
// decodeEnvelopeV3 pays to fit the generic envelope.
func hotPayload(tb testing.TB, payload []byte) []byte {
	if len(payload) < v3HeaderSize {
		tb.Fatal("short v3 payload")
	}
	if crc32.ChecksumIEEE(payload[4:]) != binary.LittleEndian.Uint32(payload[:4]) {
		tb.Fatal("v3 checksum mismatch")
	}
	if payload[5]&v3FlagHasErr != 0 {
		tb.Fatal("unexpected error flag")
	}
	return payload[v3HeaderSize:]
}

func benchLockEnv() *envelope {
	return &envelope{
		ID:     7,
		Seq:    42,
		Method: "lock",
		Body: msg.LockReq{
			Client:    3,
			Name:      lock.Name{Page: 9, Slot: 4},
			Mode:      lock.X,
			HasCached: true,
			CachedPSN: 77,
		},
	}
}

func benchFetchReplyEnv(imageLen int) *envelope {
	img := make([]byte, imageLen)
	for i := range img {
		img[i] = byte(i)
	}
	return &envelope{ID: 8, Reply: true, Body: msg.FetchReply{Image: img, DCTPSN: 12}}
}

// TestWireHotPathZeroAllocs is the allocation gate for the v3 fast
// path: encoding a hot envelope into a reused frame buffer and decoding
// its body into a reused struct must not allocate at all in steady
// state.  Skipped under the race detector, whose instrumentation
// allocates.
func TestWireHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not exact under -race")
	}
	cases := []struct {
		name string
		env  *envelope
		dec  func(d *msg.WireDec)
	}{
		{
			name: "lock-req",
			env:  benchLockEnv(),
			dec: func() func(*msg.WireDec) {
				var req msg.LockReq
				return func(d *msg.WireDec) { req.DecodeWire(d) }
			}(),
		},
		{
			name: "fetch-reply-4k",
			env:  benchFetchReplyEnv(4096),
			dec: func() func(*msg.WireDec) {
				var rep msg.FetchReply
				return func(d *msg.WireDec) { rep.DecodeWire(d) }
			}(),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := getBuf(bufMed)
			defer putBuf(w)
			var d msg.WireDec
			allocs := testing.AllocsPerRun(1000, func() {
				w.b = w.b[:0]
				if err := encodeEnvelopeV3(w, tc.env); err != nil {
					t.Fatal(err)
				}
				d.Reset(hotPayload(t, w.b[4:]))
				tc.dec(&d)
				if d.Err() != nil || d.Remaining() != 0 {
					t.Fatalf("decode: err=%v rem=%d", d.Err(), d.Remaining())
				}
			})
			if allocs != 0 {
				t.Fatalf("hot wire path allocates %.1f per op, want 0", allocs)
			}
		})
	}
}

// BenchmarkWire compares the v3 binary codec against the v2 gob
// envelope on the hot message shapes.  The V3 variants are the
// allocation gate (allocs/op must stay 0); the Gob variants exist so CI
// can assert the binary path stays faster without depending on absolute
// machine speed.
func BenchmarkWire(b *testing.B) {
	b.Run("lock-req-v3", func(b *testing.B) {
		env := benchLockEnv()
		w := getBuf(bufSmall)
		defer putBuf(w)
		var d msg.WireDec
		var req msg.LockReq
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.b = w.b[:0]
			if err := encodeEnvelopeV3(w, env); err != nil {
				b.Fatal(err)
			}
			d.Reset(hotPayload(b, w.b[4:]))
			req.DecodeWire(&d)
			if d.Err() != nil {
				b.Fatal(d.Err())
			}
		}
	})
	b.Run("lock-req-v2-gob", func(b *testing.B) {
		env := benchLockEnv()
		w := getBuf(bufSmall)
		defer putBuf(w)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.b = w.b[:0]
			if err := encodeEnvelopeV2(w, env); err != nil {
				b.Fatal(err)
			}
			if _, err := decodeEnvelopeV2(w.b[4:]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fetch-reply-8k-v3", func(b *testing.B) {
		env := benchFetchReplyEnv(8192)
		w := getBuf(bufMed)
		defer putBuf(w)
		var d msg.WireDec
		var rep msg.FetchReply
		b.SetBytes(8192)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.b = w.b[:0]
			if err := encodeEnvelopeV3(w, env); err != nil {
				b.Fatal(err)
			}
			d.Reset(hotPayload(b, w.b[4:]))
			rep.DecodeWire(&d)
			if d.Err() != nil {
				b.Fatal(d.Err())
			}
		}
	})
	b.Run("fetch-reply-8k-v2-gob", func(b *testing.B) {
		env := benchFetchReplyEnv(8192)
		w := getBuf(bufMed)
		defer putBuf(w)
		b.SetBytes(8192)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.b = w.b[:0]
			if err := encodeEnvelopeV2(w, env); err != nil {
				b.Fatal(err)
			}
			if _, err := decodeEnvelopeV2(w.b[4:]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("commit-ship-v3", func(b *testing.B) {
		env := &envelope{
			ID:     9,
			Seq:    50,
			Method: "commit-ship",
			Body: msg.CommitShipReq{
				Client:  3,
				Txn:     1 << 33,
				Records: [][]byte{make([]byte, 96), make([]byte, 96), make([]byte, 96)},
			},
		}
		w := getBuf(bufSmall)
		defer putBuf(w)
		var d msg.WireDec
		var req msg.CommitShipReq
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.b = w.b[:0]
			if err := encodeEnvelopeV3(w, env); err != nil {
				b.Fatal(err)
			}
			d.Reset(hotPayload(b, w.b[4:]))
			req.DecodeWire(&d)
			if d.Err() != nil {
				b.Fatal(d.Err())
			}
		}
	})
}
