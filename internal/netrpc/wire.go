// Package netrpc carries the client-server protocol of internal/msg
// over real TCP connections, so the cmd tools can run the system as an
// actual distributed deployment.
//
// One TCP connection per client carries traffic in both directions:
// client requests (lock, fetch, ship, ...) and server-initiated
// callbacks (callback locking, flush notifications, restart recovery).
// Frames are gob-encoded envelopes correlated by request id; gob's
// stream framing delimits messages.
package netrpc

import (
	"encoding/gob"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/msg"
	"clientlog/internal/page"
	"clientlog/internal/wal"
)

// envelope is one wire message: a request (Method set), a reply
// (Reply=true, Err optionally set), or a one-way notification
// (Method set, ID zero).
type envelope struct {
	ID     uint64
	Method string
	Reply  bool
	Err    string
	Body   interface{}
}

// Wrapper bodies for methods whose arguments are not a single struct.
type (
	clientIDBody struct{ C ident.ClientID }
	pageIDBody   struct{ P page.ID }
	shipUpToBody struct {
		P   page.ID
		PSN page.PSN
	}
	fetchCachedBody struct{ IDs []page.ID }
	imagesBody      struct{ Images [][]byte }
	reinstallBody   struct {
		C     ident.ClientID
		Holds []lock.Holding
	}
	recoverQueryBody struct {
		C     ident.ClientID
		Pages []page.ID
	}
	dctRowsBody struct{ Rows []msg.DCTRow }
	emptyBody   struct{}
)

func init() {
	gob.Register(msg.RegisterReq{})
	gob.Register(msg.RegisterReply{})
	gob.Register(msg.LockReq{})
	gob.Register(msg.LockReply{})
	gob.Register(msg.UnlockReq{})
	gob.Register(msg.FetchReq{})
	gob.Register(msg.FetchReply{})
	gob.Register(msg.ShipReq{})
	gob.Register(msg.ForceReq{})
	gob.Register(msg.ForceReply{})
	gob.Register(msg.AllocReq{})
	gob.Register(msg.FreeReq{})
	gob.Register(msg.CommitShipReq{})
	gob.Register(msg.TokenReq{})
	gob.Register(msg.TokenReply{})
	gob.Register(msg.RecoveryFetchReq{})
	gob.Register(msg.CallbackReq{})
	gob.Register(msg.CallbackReply{})
	gob.Register(msg.DeescReq{})
	gob.Register(msg.DeescReply{})
	gob.Register(msg.RecoveryInfoReply{})
	gob.Register(msg.CallbackListReq{})
	gob.Register(msg.CallbackListReply{})
	gob.Register(msg.RecoverPageReq{})
	gob.Register(msg.LogReq{})
	gob.Register(msg.LogReply{})
	gob.Register(clientIDBody{})
	gob.Register(pageIDBody{})
	gob.Register(shipUpToBody{})
	gob.Register(fetchCachedBody{})
	gob.Register(imagesBody{})
	gob.Register(reinstallBody{})
	gob.Register(recoverQueryBody{})
	gob.Register(dctRowsBody{})
	gob.Register(emptyBody{})
	gob.Register(wal.DPTEntry{})
	gob.Register(lock.Holding{})
}
