// Package netrpc carries the client-server protocol of internal/msg
// over real TCP connections, so the cmd tools can run the system as an
// actual distributed deployment.
//
// One TCP connection per client carries traffic in both directions:
// client requests (lock, fetch, ship, ...) and server-initiated
// callbacks (callback locking, flush notifications, restart recovery).
//
// Each frame on the wire is a 4-byte big-endian length followed by a
// payload whose encoding depends on the negotiated protocol version: a
// gob-encoded envelope under v2, or the CRC-framed binary encoding of
// codec.go under v3 (hot message types hand-rolled, everything else
// gob inside the v3 header).  Either way a corrupt payload poisons only
// its own frame: the length prefix still delimits the next one and the
// connection keeps working.  Oversized lengths are rejected before any
// allocation and tear the connection down (the prefix itself cannot be
// trusted), failing pending calls fast instead of wedging them.
//
// Sessions survive connection loss: the first exchange on every
// connection is a hello carrying a session token (zero for a new
// session), and a client that reconnects within the server's grace
// window resumes its session — same identity, same reply cache — so
// retried requests are never re-executed.  Request sequence numbers
// (envelope.Seq) are session-scoped and assigned by the caller, which
// is what makes retransmissions idempotent.
package netrpc

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/msg"
	"clientlog/internal/obs"
	"clientlog/internal/obs/span"
	"clientlog/internal/page"
	"clientlog/internal/wal"
)

// ProtocolVersion is the wire protocol revision announced in the hello
// exchange.  Version 2 added the optional trace-context frame field
// (envelope.Trace) and the Trace fields inside the msg request bodies.
// Version 3 replaces the gob envelope with the hand-rolled CRC-framed
// binary codec of codec.go for the hot message types (gob survives as
// the escape hatch for cold traffic).  The hello always travels in v2
// framing; both sides negotiate min(client, server) and flip to v3
// strictly after the exchange, so v2 peers interoperate transparently
// in both directions.
const ProtocolVersion = 3

// Metrics counts wire traffic and session lifecycle events across every
// connection in the process.
var Metrics struct {
	FramesSent    obs.Counter
	FramesRecv    obs.Counter
	BytesSent     obs.Counter
	BytesRecv     obs.Counter
	Resumes       obs.Counter // sessions resumed within the grace window
	CorruptFrames obs.Counter // frames that failed checksum or decode
}

// RegisterObs binds the package's wire counters into reg as the
// netrpc_* families.
func RegisterObs(reg *obs.Registry, tags ...obs.Tag) {
	if reg == nil {
		return
	}
	reg.BindCounter(&Metrics.FramesSent, "netrpc_frames_sent_total", tags...)
	reg.BindCounter(&Metrics.FramesRecv, "netrpc_frames_recv_total", tags...)
	reg.BindCounter(&Metrics.BytesSent, "netrpc_bytes_sent_total", tags...)
	reg.BindCounter(&Metrics.BytesRecv, "netrpc_bytes_recv_total", tags...)
	reg.BindCounter(&Metrics.Resumes, "netrpc_session_resumes_total", tags...)
	reg.BindCounter(&Metrics.CorruptFrames, "netrpc_corrupt_frames_total", tags...)
}

// MaxFrame bounds a single message on the wire.  A frame length above
// the bound means the stream is garbage (or hostile); the connection is
// torn down rather than resynchronized, because the prefix itself is
// the only framing information.
const MaxFrame = 16 << 20

// ErrFrameTooLarge reports a frame that exceeds MaxFrame, in either
// direction.
var ErrFrameTooLarge = errors.New("netrpc: frame exceeds size limit")

// corruptFrameError marks a frame whose payload failed its checksum or
// decode.  Framing is intact (the length prefix was honored), so the
// reader may skip the frame and continue.  id and reply carry the
// best-effort envelope identity recovered from the frame header, so a
// corrupt reply can fail its pending call immediately instead of
// leaving it to hang until its deadline.
type corruptFrameError struct {
	err   error
	id    uint64
	reply bool
}

func (e corruptFrameError) Error() string { return fmt.Sprintf("netrpc: corrupt frame: %v", e.err) }
func (e corruptFrameError) Unwrap() error { return e.err }

// envelope is one wire message: a request (Method set), a reply
// (Reply=true, Err optionally set), or a one-way notification
// (Method set, ID zero).  ID correlates request and reply within one
// connection; Seq is the session-scoped request number used for
// duplicate suppression and survives reconnects (zero = not
// idempotent-tracked).
type envelope struct {
	ID     uint64
	Seq    uint64
	Method string
	Reply  bool
	Err    string
	Body   interface{}
	// Trace is the optional causal-tracing context of the request
	// (added in ProtocolVersion 2).  It mirrors the context inside the
	// body so transport-level tooling can observe it without decoding
	// bodies; zero (unsampled) costs no wire bytes under gob.
	Trace span.Context

	// corrupt marks a synthetic envelope the reader delivers to a
	// pending call whose real reply frame failed its integrity check.
	// Unexported: it never travels the wire (gob skips it).
	corrupt bool
}

// traceCarrier is implemented by the msg request structs that carry a
// trace context; the connection lifts it into the envelope's frame
// field.
type traceCarrier interface {
	TraceContext() span.Context
}

// writeFrame encodes env as one v2 (gob) length-prefixed frame and
// writes it with a single Write.  The live connections pipeline writes
// through their write loop instead; this synchronous form serves the
// tests that speak the raw protocol against a socket.
func writeFrame(w io.Writer, env *envelope) error {
	wb := getBuf(bufSmall)
	defer putBuf(wb)
	if err := encodeEnvelopeV2(wb, env); err != nil {
		return err
	}
	_, err := w.Write(wb.b)
	if err == nil {
		Metrics.FramesSent.Inc()
		Metrics.BytesSent.Add(uint64(len(wb.b)))
	}
	return err
}

// readFrame reads one length-prefixed v2 frame.  It returns
// ErrFrameTooLarge for an implausible length (caller must drop the
// connection) and a corruptFrameError for an undecodable payload
// (caller may skip the frame).
func readFrame(r io.Reader) (envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return envelope{}, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return envelope{}, err
	}
	Metrics.FramesRecv.Inc()
	Metrics.BytesRecv.Add(uint64(n) + 4)
	return decodeEnvelopeV2(payload)
}

// Wrapper bodies for methods whose arguments are not a single struct.
type (
	clientIDBody struct{ C ident.ClientID }
	pageIDBody   struct{ P page.ID }
	shipUpToBody struct {
		P   page.ID
		PSN page.PSN
	}
	fetchCachedBody struct{ IDs []page.ID }
	imagesBody      struct{ Images [][]byte }
	reinstallBody   struct {
		C     ident.ClientID
		Holds []lock.Holding
	}
	recoverQueryBody struct {
		C     ident.ClientID
		Pages []page.ID
	}
	dctRowsBody struct{ Rows []msg.DCTRow }
	emptyBody   struct{}

	// helloBody opens every connection: Token zero asks for a new
	// session, nonzero resumes one within the grace window.  Version
	// announces the sender's ProtocolVersion (absent/zero from peers
	// predating the field).
	helloBody struct {
		Token   uint64
		Version uint32
	}
	helloReply struct {
		Token   uint64
		Version uint32
	}
)

func init() {
	gob.Register(msg.RegisterReq{})
	gob.Register(msg.RegisterReply{})
	gob.Register(msg.LockReq{})
	gob.Register(msg.LockReply{})
	gob.Register(msg.LockBatchReq{})
	gob.Register(msg.LockBatchReply{})
	gob.Register(msg.FetchBatchReq{})
	gob.Register(msg.FetchBatchReply{})
	gob.Register(msg.UnlockReq{})
	gob.Register(msg.FetchReq{})
	gob.Register(msg.FetchReply{})
	gob.Register(msg.ShipReq{})
	gob.Register(msg.ForceReq{})
	gob.Register(msg.ForceReply{})
	gob.Register(msg.AllocReq{})
	gob.Register(msg.FreeReq{})
	gob.Register(msg.CommitShipReq{})
	gob.Register(msg.TokenReq{})
	gob.Register(msg.TokenReply{})
	gob.Register(msg.RecoveryFetchReq{})
	gob.Register(msg.CallbackReq{})
	gob.Register(msg.CallbackReply{})
	gob.Register(msg.DeescReq{})
	gob.Register(msg.DeescReply{})
	gob.Register(msg.RecoveryInfoReply{})
	gob.Register(msg.CallbackListReq{})
	gob.Register(msg.CallbackListReply{})
	gob.Register(msg.RecoverPageReq{})
	gob.Register(msg.LogReq{})
	gob.Register(msg.LogReply{})
	gob.Register(clientIDBody{})
	gob.Register(pageIDBody{})
	gob.Register(shipUpToBody{})
	gob.Register(fetchCachedBody{})
	gob.Register(imagesBody{})
	gob.Register(reinstallBody{})
	gob.Register(recoverQueryBody{})
	gob.Register(dctRowsBody{})
	gob.Register(emptyBody{})
	gob.Register(helloBody{})
	gob.Register(helloReply{})
	gob.Register(wal.DPTEntry{})
	gob.Register(lock.Holding{})
}
