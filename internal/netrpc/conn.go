package netrpc

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed reports use of a closed RPC connection.
var ErrClosed = errors.New("netrpc: connection closed")

// ErrDeadline reports a request that did not receive its reply within
// the per-request deadline.  It is a transport-level error: the request
// may or may not have executed, so callers retry it under the same
// sequence number and let the peer's reply cache disambiguate.
var ErrDeadline = errors.New("netrpc: request deadline exceeded")

// ErrCorruptReply reports a reply frame that failed its integrity
// check.  Like ErrDeadline it is transport-level: the request executed
// (an answer came back, just unreadable), so callers retransmit under
// the same sequence number and the peer's reply cache returns the
// original answer.
var ErrCorruptReply = errors.New("netrpc: corrupt reply frame")

// remoteError carries an application-level error string returned by the
// peer.  It is the only error kind a call returns that must NOT be
// retried: the request executed and this is its answer.
type remoteError struct{ s string }

func (e remoteError) Error() string { return e.s }

// isRemote reports whether err is the peer's answer rather than a
// transport failure.
func isRemote(err error) bool {
	var re remoteError
	return errors.As(err, &re)
}

// writeTimeout bounds a single frame write; a peer that stops draining
// its socket for this long is dead.
const writeTimeout = 30 * time.Second

// maxCoalesce bounds how many queued frames the write loop folds into
// one writev call.
const maxCoalesce = 32

// sendQueueLen is the outbound frame queue depth; senders block (with
// shutdown wakeup) when the writer falls this far behind.
const sendQueueLen = 256

// handlerFunc serves one incoming request.
type handlerFunc func(method string, seq uint64, body interface{}) (interface{}, error)

// rpcConn is a duplex RPC endpoint over one TCP connection: both sides
// issue requests and serve the peer's.
//
// Writes are pipelined: senders encode into pooled buffers and enqueue;
// a per-connection write loop coalesces whatever is queued into a
// single vectored write.  The first write error marks the connection
// dead — after a short or failed write the byte stream is desynced and
// no further frame may be attempted on it.
//
// Protocol version is per-connection state.  Every connection starts at
// v2 (gob frames): the hello exchange always travels v2, and each
// direction flips to v3 framing at a fixed stream position — the client
// right after the hello reply, the server right after sending it — so
// there is never a frame whose version the receiver must guess.
type rpcConn struct {
	c  net.Conn
	br *bufio.Reader

	maxVersion  uint32        // highest version this side speaks
	negotiated  atomic.Uint32 // version agreed in the hello (0 until then)
	rxV3        atomic.Bool   // decode incoming frames as v3
	txV3        atomic.Bool   // encode outgoing frames as v3
	corruptNext atomic.Bool   // fault hook: corrupt the next incoming frame

	wq    chan *wbuf    // encoded frames awaiting the write loop
	wquit chan struct{} // closed on shutdown; unblocks senders and writer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan envelope
	closed  bool
	onClose func()
	handler handlerFunc

	hset   chan struct{} // closed once a handler is installed
	hsetMu sync.Mutex
	hdone  bool

	rbuf []byte // reusable frame payload buffer (reader goroutine only)

	// stats is the per-{method, version} accounting sink; Wire unless
	// the owning Server/Transport injected its own.  Assigned before
	// serve() starts, read-only afterwards.
	stats *WireStats
}

func newRPCConn(c net.Conn, maxVersion uint32) *rpcConn {
	if maxVersion < 2 {
		maxVersion = 2
	}
	r := &rpcConn{
		c:          c,
		br:         bufio.NewReaderSize(c, 32<<10),
		maxVersion: maxVersion,
		wq:         make(chan *wbuf, sendQueueLen),
		wquit:      make(chan struct{}),
		pending:    make(map[uint64]chan envelope),
		hset:       make(chan struct{}),
		stats:      Wire,
	}
	go r.writeLoop()
	return r
}

// version returns the negotiated protocol version (v2 until the hello
// completes).
func (r *rpcConn) version() uint32 {
	if v := r.negotiated.Load(); v != 0 {
		return v
	}
	return 2
}

// armCorrupt makes the reader flip bytes in the next incoming frame's
// payload before decoding it, simulating wire corruption caught by the
// frame checksum (fault injection only).
func (r *rpcConn) armCorrupt() { r.corruptNext.Store(true) }

// setHandler installs (or replaces) the incoming-request handler;
// requests arriving before the first installation wait.  Replacement
// is what rebinds a resumed session's handler onto a fresh connection.
func (r *rpcConn) setHandler(h handlerFunc) {
	r.mu.Lock()
	r.handler = h
	r.mu.Unlock()
	r.hsetMu.Lock()
	if !r.hdone {
		r.hdone = true
		close(r.hset)
	}
	r.hsetMu.Unlock()
}

func (r *rpcConn) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// readOne reads and decodes the next frame.  The payload buffer is
// reused across frames (decoders copy what they keep).
func (r *rpcConn) readOne() (envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return envelope{}, err
	}
	n := int(uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3]))
	if n > MaxFrame {
		return envelope{}, ErrFrameTooLarge
	}
	if cap(r.rbuf) < n {
		r.rbuf = make([]byte, n)
	}
	payload := r.rbuf[:n]
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return envelope{}, err
	}
	Metrics.FramesRecv.Inc()
	Metrics.BytesRecv.Add(uint64(n) + 4)
	if r.corruptNext.CompareAndSwap(true, false) && n > 0 {
		payload[n/2] ^= 0xA5
		payload[n-1] ^= 0x5A
	}
	t0 := r.stats.now()
	if r.rxV3.Load() {
		env, err := decodeEnvelopeV3(payload)
		if err == nil {
			if len(payload) >= v3HeaderSize && payload[4] != tagGob {
				r.stats.recordV3(payload[4], n+4, t0, false)
			} else {
				r.stats.recordGob(env.Method, env.Reply, true, n+4, t0, false)
			}
		}
		return env, err
	}
	env, err := decodeEnvelopeV2(payload)
	if err == nil {
		r.stats.recordGob(env.Method, env.Reply, false, n+4, t0, false)
	}
	return env, err
}

// negotiate inspects the first frame of the connection — always the
// hello, in v2 — and arms v3 framing when both sides speak it.  The
// receiving direction flips immediately (every later incoming frame is
// past the peer's own flip point); the sending direction flips here on
// the client, but on the server only after the hello reply goes out
// (see dispatch), since that reply must still travel v2.
func (r *rpcConn) negotiate(env *envelope) {
	switch b := env.Body.(type) {
	case helloReply:
		if env.Reply && env.Err == "" {
			v := negotiateVersion(r.maxVersion, b.Version)
			r.negotiated.Store(v)
			if v >= 3 {
				r.rxV3.Store(true)
				r.txV3.Store(true)
			}
		}
	case helloBody:
		if !env.Reply && env.Method == "hello" {
			v := negotiateVersion(r.maxVersion, b.Version)
			r.negotiated.Store(v)
			if v >= 3 {
				r.rxV3.Store(true)
			}
		}
	}
}

// serve runs the read loop until the connection dies.  A corrupt frame
// is counted and — when the envelope ID is recoverable and names a
// pending call — fails that call immediately with ErrCorruptReply
// instead of letting it hang until its deadline.  Framing is
// length-delimited, so the stream stays in sync and the connection
// keeps working; an oversized or short frame tears it down.
func (r *rpcConn) serve() {
	first := true
	for {
		env, err := r.readOne()
		if err != nil {
			var corrupt corruptFrameError
			if errors.As(err, &corrupt) {
				Metrics.CorruptFrames.Inc()
				if corrupt.reply && corrupt.id != 0 {
					r.failPendingCorrupt(corrupt.id)
				}
				continue
			}
			r.shutdown()
			return
		}
		if first {
			first = false
			r.negotiate(&env)
		}
		if env.Reply {
			r.mu.Lock()
			ch := r.pending[env.ID]
			delete(r.pending, env.ID)
			r.mu.Unlock()
			if ch != nil {
				ch <- env
			}
			continue
		}
		go r.dispatch(env)
	}
}

// failPendingCorrupt fails the pending call whose reply frame arrived
// corrupt.  A garbage ID that happens to collide with another pending
// call costs that call one retry — safe, since corrupt-reply failures
// are retried under the same sequence number.
func (r *rpcConn) failPendingCorrupt(id uint64) {
	r.mu.Lock()
	ch := r.pending[id]
	delete(r.pending, id)
	r.mu.Unlock()
	if ch != nil {
		ch <- envelope{ID: id, Reply: true, corrupt: true}
	}
}

func (r *rpcConn) dispatch(env envelope) {
	<-r.hset
	r.mu.Lock()
	h := r.handler
	r.mu.Unlock()
	body, err := h(env.Method, env.Seq, env.Body)
	if env.ID == 0 {
		return // one-way
	}
	reply := envelope{ID: env.ID, Reply: true, Body: body}
	if err != nil {
		reply.Err = err.Error()
	}
	if reply.Body == nil {
		reply.Body = emptyBody{}
	}
	r.send(reply)
	// The server's side of the version flip: the hello reply just
	// encoded (in v2) is the last pre-negotiation frame it sends.
	if env.Method == "hello" && err == nil && r.negotiated.Load() >= 3 {
		r.txV3.Store(true)
	}
}

// send encodes env into a pooled buffer and hands it to the write
// loop.  Encoding errors (oversized frames) surface here; write errors
// surface as connection death failing every pending call.
func (r *rpcConn) send(env envelope) error {
	v3 := r.txV3.Load()
	hint := 256
	tag, binaryV3 := byte(0), false
	if v3 {
		if t, sz, ok := v3Tag(&env); ok {
			hint = 4 + v3HeaderSize + sz
			tag, binaryV3 = t, true
		}
	}
	w := getBuf(hint)
	t0 := r.stats.now()
	var err error
	if v3 {
		err = encodeEnvelopeV3(w, &env)
	} else {
		err = encodeEnvelopeV2(w, &env)
	}
	if err != nil {
		putBuf(w)
		return fmt.Errorf("netrpc: send %s: %w", env.Method, err)
	}
	if binaryV3 {
		r.stats.recordV3(tag, len(w.b), t0, true)
	} else {
		r.stats.recordGob(env.Method, env.Reply, v3, len(w.b), t0, true)
	}
	select {
	case r.wq <- w:
		return nil
	case <-r.wquit:
		putBuf(w)
		return ErrClosed
	}
}

// writeLoop is the connection's only writer: it drains the send queue,
// coalescing queued frames into one vectored write per syscall.  Frame
// and byte accounting reflect what actually reached the socket — under
// a partial write only the fully-written frames count.  The first write
// error (including a short write) shuts the connection down; no further
// frames are attempted on a desynced stream.
func (r *rpcConn) writeLoop() {
	batch := make([]*wbuf, 0, maxCoalesce)
	var bufs net.Buffers
	for {
		select {
		case <-r.wquit:
			r.drainSendQueue()
			return
		case w := <-r.wq:
			batch = append(batch[:0], w)
		coalesce:
			for len(batch) < maxCoalesce {
				select {
				case w2 := <-r.wq:
					batch = append(batch, w2)
				default:
					break coalesce
				}
			}
			bufs = bufs[:0]
			for _, w := range batch {
				bufs = append(bufs, w.b)
			}
			r.c.SetWriteDeadline(time.Now().Add(writeTimeout))
			n, err := bufs.WriteTo(r.c)
			Metrics.BytesSent.Add(uint64(n))
			rem := n
			for _, w := range batch {
				if rem < int64(len(w.b)) {
					break
				}
				rem -= int64(len(w.b))
				Metrics.FramesSent.Inc()
			}
			for _, w := range batch {
				putBuf(w)
			}
			if err != nil {
				r.shutdown()
				r.drainSendQueue()
				return
			}
		}
	}
}

// drainSendQueue recycles frames the write loop will never send.
func (r *rpcConn) drainSendQueue() {
	for {
		select {
		case w := <-r.wq:
			putBuf(w)
		default:
			return
		}
	}
}

// call issues a request and blocks for the reply, at most timeout
// (zero means no deadline; the connection dying still fails the call
// fast).  seq is the caller's session-scoped request number, zero for
// calls outside duplicate tracking.
func (r *rpcConn) call(method string, seq uint64, body interface{}, timeout time.Duration) (interface{}, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	r.nextID++
	id := r.nextID
	ch := make(chan envelope, 1)
	r.pending[id] = ch
	r.mu.Unlock()

	env := envelope{ID: id, Seq: seq, Method: method, Body: body}
	if tc, ok := body.(traceCarrier); ok {
		env.Trace = tc.TraceContext()
	}
	if err := r.send(env); err != nil {
		r.mu.Lock()
		delete(r.pending, id)
		r.mu.Unlock()
		return nil, err
	}
	var timeC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeC = timer.C
	}
	select {
	case env, ok := <-ch:
		if !ok {
			return nil, ErrClosed
		}
		if env.corrupt {
			return nil, fmt.Errorf("%w: %s", ErrCorruptReply, method)
		}
		if env.Err != "" {
			return nil, remoteError{s: env.Err}
		}
		return env.Body, nil
	case <-timeC:
		r.mu.Lock()
		delete(r.pending, id)
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s after %v", ErrDeadline, method, timeout)
	}
}

// notify issues a one-way message.
func (r *rpcConn) notify(method string, body interface{}) {
	r.send(envelope{Method: method, Body: body})
}

// shutdown fails every pending call fast (callers see ErrClosed, they
// do not hang waiting for replies that will never arrive), stops the
// write loop, and runs the close hook once.
func (r *rpcConn) shutdown() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.wquit)
	for id, ch := range r.pending {
		close(ch)
		delete(r.pending, id)
	}
	onClose := r.onClose
	r.mu.Unlock()
	r.c.Close()
	if onClose != nil {
		onClose()
	}
}

// Close tears the connection down.
func (r *rpcConn) Close() error {
	r.shutdown()
	return nil
}
