package netrpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrClosed reports use of a closed RPC connection.
var ErrClosed = errors.New("netrpc: connection closed")

// ErrDeadline reports a request that did not receive its reply within
// the per-request deadline.  It is a transport-level error: the request
// may or may not have executed, so callers retry it under the same
// sequence number and let the peer's reply cache disambiguate.
var ErrDeadline = errors.New("netrpc: request deadline exceeded")

// remoteError carries an application-level error string returned by the
// peer.  It is the only error kind a call returns that must NOT be
// retried: the request executed and this is its answer.
type remoteError struct{ s string }

func (e remoteError) Error() string { return e.s }

// isRemote reports whether err is the peer's answer rather than a
// transport failure.
func isRemote(err error) bool {
	var re remoteError
	return errors.As(err, &re)
}

// writeTimeout bounds a single frame write; a peer that stops draining
// its socket for this long is dead.
const writeTimeout = 30 * time.Second

// handlerFunc serves one incoming request.
type handlerFunc func(method string, seq uint64, body interface{}) (interface{}, error)

// rpcConn is a duplex RPC endpoint over one TCP connection: both sides
// issue requests and serve the peer's.
type rpcConn struct {
	c net.Conn

	wmu sync.Mutex // serializes writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan envelope
	closed  bool
	onClose func()
	handler handlerFunc

	hset   chan struct{} // closed once a handler is installed
	hsetMu sync.Mutex
	hdone  bool
}

func newRPCConn(c net.Conn) *rpcConn {
	return &rpcConn{
		c:       c,
		pending: make(map[uint64]chan envelope),
		hset:    make(chan struct{}),
	}
}

// setHandler installs (or replaces) the incoming-request handler;
// requests arriving before the first installation wait.  Replacement
// is what rebinds a resumed session's handler onto a fresh connection.
func (r *rpcConn) setHandler(h handlerFunc) {
	r.mu.Lock()
	r.handler = h
	r.mu.Unlock()
	r.hsetMu.Lock()
	if !r.hdone {
		r.hdone = true
		close(r.hset)
	}
	r.hsetMu.Unlock()
}

func (r *rpcConn) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// serve runs the read loop until the connection dies.  A corrupt frame
// is skipped (framing is length-delimited, so the stream stays in
// sync); an oversized or short frame tears the connection down.
func (r *rpcConn) serve() {
	for {
		env, err := readFrame(r.c)
		if err != nil {
			var corrupt corruptFrameError
			if errors.As(err, &corrupt) {
				continue
			}
			r.shutdown()
			return
		}
		if env.Reply {
			r.mu.Lock()
			ch := r.pending[env.ID]
			delete(r.pending, env.ID)
			r.mu.Unlock()
			if ch != nil {
				ch <- env
			}
			continue
		}
		go r.dispatch(env)
	}
}

func (r *rpcConn) dispatch(env envelope) {
	<-r.hset
	r.mu.Lock()
	h := r.handler
	r.mu.Unlock()
	body, err := h(env.Method, env.Seq, env.Body)
	if env.ID == 0 {
		return // one-way
	}
	reply := envelope{ID: env.ID, Reply: true, Body: body}
	if err != nil {
		reply.Err = err.Error()
	}
	if reply.Body == nil {
		reply.Body = emptyBody{}
	}
	r.send(reply)
}

func (r *rpcConn) send(env envelope) error {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	r.c.SetWriteDeadline(time.Now().Add(writeTimeout))
	if err := writeFrame(r.c, &env); err != nil {
		r.shutdown()
		return fmt.Errorf("netrpc: send %s: %w", env.Method, err)
	}
	return nil
}

// call issues a request and blocks for the reply, at most timeout
// (zero means no deadline; the connection dying still fails the call
// fast).  seq is the caller's session-scoped request number, zero for
// calls outside duplicate tracking.
func (r *rpcConn) call(method string, seq uint64, body interface{}, timeout time.Duration) (interface{}, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	r.nextID++
	id := r.nextID
	ch := make(chan envelope, 1)
	r.pending[id] = ch
	r.mu.Unlock()

	env := envelope{ID: id, Seq: seq, Method: method, Body: body}
	if tc, ok := body.(traceCarrier); ok {
		env.Trace = tc.TraceContext()
	}
	if err := r.send(env); err != nil {
		r.mu.Lock()
		delete(r.pending, id)
		r.mu.Unlock()
		return nil, err
	}
	var timeC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeC = timer.C
	}
	select {
	case env, ok := <-ch:
		if !ok {
			return nil, ErrClosed
		}
		if env.Err != "" {
			return nil, remoteError{s: env.Err}
		}
		return env.Body, nil
	case <-timeC:
		r.mu.Lock()
		delete(r.pending, id)
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s after %v", ErrDeadline, method, timeout)
	}
}

// notify issues a one-way message.
func (r *rpcConn) notify(method string, body interface{}) {
	r.send(envelope{Method: method, Body: body})
}

// shutdown fails every pending call fast (callers see ErrClosed, they
// do not hang waiting for replies that will never arrive) and runs the
// close hook once.
func (r *rpcConn) shutdown() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	for id, ch := range r.pending {
		close(ch)
		delete(r.pending, id)
	}
	onClose := r.onClose
	r.mu.Unlock()
	r.c.Close()
	if onClose != nil {
		onClose()
	}
}

// Close tears the connection down.
func (r *rpcConn) Close() error {
	r.shutdown()
	return nil
}
