package netrpc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// ErrClosed reports use of a closed RPC connection.
var ErrClosed = errors.New("netrpc: connection closed")

// handlerFunc serves one incoming request.
type handlerFunc func(method string, body interface{}) (interface{}, error)

// rpcConn is a duplex RPC endpoint over one TCP connection: both sides
// issue requests and serve the peer's.
type rpcConn struct {
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder

	wmu sync.Mutex // serializes writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan envelope
	closed  bool
	onClose func()

	handler handlerFunc
	hset    chan struct{} // closed once handler installed
	honce   sync.Once
}

func newRPCConn(c net.Conn) *rpcConn {
	return &rpcConn{
		c:       c,
		enc:     gob.NewEncoder(c),
		dec:     gob.NewDecoder(c),
		pending: make(map[uint64]chan envelope),
		hset:    make(chan struct{}),
	}
}

// setHandler installs the incoming-request handler; requests arriving
// earlier wait for it.
func (r *rpcConn) setHandler(h handlerFunc) {
	r.handler = h
	r.honce.Do(func() { close(r.hset) })
}

// serve runs the read loop until the connection dies.
func (r *rpcConn) serve() {
	for {
		var env envelope
		if err := r.dec.Decode(&env); err != nil {
			r.shutdown()
			return
		}
		if env.Reply {
			r.mu.Lock()
			ch := r.pending[env.ID]
			delete(r.pending, env.ID)
			r.mu.Unlock()
			if ch != nil {
				ch <- env
			}
			continue
		}
		go r.dispatch(env)
	}
}

func (r *rpcConn) dispatch(env envelope) {
	<-r.hset
	body, err := r.handler(env.Method, env.Body)
	if env.ID == 0 {
		return // one-way
	}
	reply := envelope{ID: env.ID, Reply: true, Body: body}
	if err != nil {
		reply.Err = err.Error()
	}
	if reply.Body == nil {
		reply.Body = emptyBody{}
	}
	r.send(reply)
}

func (r *rpcConn) send(env envelope) error {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	if err := r.enc.Encode(&env); err != nil {
		r.shutdown()
		return fmt.Errorf("netrpc: send %s: %w", env.Method, err)
	}
	return nil
}

// call issues a request and blocks for the reply.
func (r *rpcConn) call(method string, body interface{}) (interface{}, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	r.nextID++
	id := r.nextID
	ch := make(chan envelope, 1)
	r.pending[id] = ch
	r.mu.Unlock()

	if err := r.send(envelope{ID: id, Method: method, Body: body}); err != nil {
		r.mu.Lock()
		delete(r.pending, id)
		r.mu.Unlock()
		return nil, err
	}
	env, ok := <-ch
	if !ok {
		return nil, ErrClosed
	}
	if env.Err != "" {
		return nil, errors.New(env.Err)
	}
	return env.Body, nil
}

// notify issues a one-way message.
func (r *rpcConn) notify(method string, body interface{}) {
	r.send(envelope{Method: method, Body: body})
}

func (r *rpcConn) shutdown() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	for id, ch := range r.pending {
		close(ch)
		delete(r.pending, id)
	}
	onClose := r.onClose
	r.mu.Unlock()
	r.c.Close()
	if onClose != nil {
		onClose()
	}
}

// Close tears the connection down.
func (r *rpcConn) Close() error {
	r.shutdown()
	return nil
}
