package netrpc

import (
	"bytes"
	"net"
	"testing"
	"time"

	"clientlog/internal/core"
	"clientlog/internal/msg"
	"clientlog/internal/page"
	"clientlog/internal/storage"
	"clientlog/internal/wal"
)

// startEngine builds a memory-backed engine with seeded pages and a
// listener, without serving yet.
func startEngine(t *testing.T, cfg core.Config, pages int) (*core.Server, net.Listener, []page.ID) {
	t.Helper()
	store := storage.NewMemStore(cfg.PageSize)
	var ids []page.ID
	for i := 0; i < pages; i++ {
		p, err := store.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 8; s++ {
			if _, _, err := p.Insert(make([]byte, 16)); err != nil {
				t.Fatal(err)
			}
		}
		if err := store.Write(p); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID())
	}
	engine := core.NewServer(cfg, store, wal.NewMemStore(0))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return engine, ln, ids
}

// startCluster spins a TCP server over a memory-backed engine and
// returns the engine plus its address.
func startCluster(t *testing.T, cfg core.Config, pages int) (*core.Server, *Server, []page.ID) {
	t.Helper()
	engine, ln, ids := startEngine(t, cfg, pages)
	srv := Serve(engine, ln)
	t.Cleanup(func() { srv.Close() })
	return engine, srv, ids
}

// dialClient connects a core.Client engine over TCP.
func dialClient(t *testing.T, cfg core.Config, addr string) (*core.Client, *Transport) {
	t.Helper()
	tr, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewClient(cfg, tr, wal.NewMemStore(0))
	if err != nil {
		t.Fatal(err)
	}
	tr.SetLocal(c)
	t.Cleanup(func() { tr.Close() })
	return c, tr
}

func testCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.PageSize = 1024
	cfg.LockTimeout = 5 * time.Second
	return cfg
}

func TestTCPCommitAndReadBack(t *testing.T) {
	cfg := testCfg()
	_, srv, ids := startCluster(t, cfg, 2)
	c, _ := dialClient(t, cfg, srv.Addr().String())

	obj := page.ObjectID{Page: ids[0], Slot: 0}
	txn, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("over-the-wire!!!")
	if err := txn.Overwrite(obj, want); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	txn2, _ := c.Begin()
	got, err := txn2.Read(obj)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read back: %q err=%v", got, err)
	}
	txn2.Commit()
}

func TestTCPCallbackBetweenTwoClients(t *testing.T) {
	cfg := testCfg()
	_, srv, ids := startCluster(t, cfg, 1)
	a, _ := dialClient(t, cfg, srv.Addr().String())
	b, _ := dialClient(t, cfg, srv.Addr().String())
	obj := page.ObjectID{Page: ids[0], Slot: 3}

	ta, _ := a.Begin()
	want := []byte("from client A!!!")
	if err := ta.Overwrite(obj, want); err != nil {
		t.Fatal(err)
	}
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	// B's read triggers a real network callback to A.
	tb, _ := b.Begin()
	got, err := tb.Read(obj)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("cross-client read over TCP: %q err=%v", got, err)
	}
	tb.Commit()
}

func TestTCPConcurrentSamePageUpdates(t *testing.T) {
	cfg := testCfg()
	_, srv, ids := startCluster(t, cfg, 1)
	a, _ := dialClient(t, cfg, srv.Addr().String())
	b, _ := dialClient(t, cfg, srv.Addr().String())

	ta, _ := a.Begin()
	if err := ta.Overwrite(page.ObjectID{Page: ids[0], Slot: 0}, []byte("aaaaaaaaaaaaaaaa")); err != nil {
		t.Fatal(err)
	}
	tb, _ := b.Begin()
	if err := tb.Overwrite(page.ObjectID{Page: ids[0], Slot: 1}, []byte("bbbbbbbbbbbbbbbb")); err != nil {
		t.Fatal(err)
	}
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPDisconnectTreatedAsCrash(t *testing.T) {
	cfg := testCfg()
	cfg.LockTimeout = 500 * time.Millisecond
	engine, srv, ids := startCluster(t, cfg, 1)
	a, tra := dialClient(t, cfg, srv.Addr().String())
	b, _ := dialClient(t, cfg, srv.Addr().String())
	obj := page.ObjectID{Page: ids[0], Slot: 0}

	ta, _ := a.Begin()
	if err := ta.Overwrite(obj, []byte("holder goes away")); err != nil {
		t.Fatal(err)
	}
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
	// Drop A's connection without disconnecting cleanly: the server must
	// treat it as a crash and retain A's exclusive lock, so B times out.
	tra.Close()
	deadline := time.Now().Add(2 * time.Second)
	for !engine.GLM().Crashed(a.ID()) {
		if time.Now().After(deadline) {
			t.Fatal("server never noticed the dropped connection")
		}
		time.Sleep(10 * time.Millisecond)
	}
	tb, _ := b.Begin()
	if err := tb.Overwrite(obj, []byte("should time out!")); err == nil {
		t.Fatal("B acquired a lock held by a crashed client")
	}
	tb.Abort()
}

func TestTCPErrorPropagation(t *testing.T) {
	cfg := testCfg()
	_, srv, _ := startCluster(t, cfg, 1)
	tr, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Fetch of an unallocated page must surface the server's error.
	if _, err := tr.Fetch(fetchUnknown()); err == nil {
		t.Fatal("no error for unallocated page")
	}
}

func TestTCPManyClientsWorkload(t *testing.T) {
	cfg := testCfg()
	_, srv, ids := startCluster(t, cfg, 4)
	const n = 4
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		c, _ := dialClient(t, cfg, srv.Addr().String())
		go func(i int, c *core.Client) {
			for round := 0; round < 10; round++ {
				txn, err := c.Begin()
				if err != nil {
					done <- err
					return
				}
				obj := page.ObjectID{Page: ids[round%len(ids)], Slot: uint16(i)}
				if err := txn.Overwrite(obj, bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
					txn.Abort()
					done <- err
					return
				}
				if err := txn.Commit(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i, c)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// fetchUnknown builds a request for a page that does not exist.
func fetchUnknown() msg.FetchReq {
	return msg.FetchReq{Page: 9999}
}
