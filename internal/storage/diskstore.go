package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"clientlog/internal/page"
)

// DiskStore is a file-backed Store.  Page images live in a single data
// file at offset (id-1)*pageSize and are written in place, matching the
// paper's server behaviour.  The allocation map (allocated ids, PSN
// seeds for freed pages, next id) lives in a sidecar meta file that is
// rewritten atomically (write-temp + rename) whenever it changes.
type DiskStore struct {
	mu       sync.Mutex
	dir      string
	pageSize int
	data     *os.File
	alloc    map[page.ID]bool
	seeds    map[page.ID]page.PSN
	nextID   page.ID
	stride   int // fresh ids satisfy id % stride == offset (fleet)
	offset   int

	reads  atomic.Uint64
	writes atomic.Uint64
}

const metaMagic uint32 = 0xC10C_0001

// OpenDiskStore opens (or creates) a page store in dir.
func OpenDiskStore(dir string, pageSize int) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	data, err := os.OpenFile(filepath.Join(dir, "pages.db"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &DiskStore{
		dir:      dir,
		pageSize: pageSize,
		data:     data,
		alloc:    make(map[page.ID]bool),
		seeds:    make(map[page.ID]page.PSN),
		nextID:   1,
	}
	if err := s.loadMeta(); err != nil {
		data.Close()
		return nil, err
	}
	return s, nil
}

func (s *DiskStore) metaPath() string { return filepath.Join(s.dir, "alloc.map") }

func (s *DiskStore) loadMeta() error {
	raw, err := os.ReadFile(s.metaPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(raw) < 24 {
		return fmt.Errorf("storage: meta file too short")
	}
	if binary.LittleEndian.Uint32(raw[0:]) != metaMagic {
		return fmt.Errorf("storage: bad meta magic")
	}
	if crc32.ChecksumIEEE(raw[8:]) != binary.LittleEndian.Uint32(raw[4:]) {
		return fmt.Errorf("storage: meta checksum mismatch")
	}
	s.nextID = page.ID(binary.LittleEndian.Uint64(raw[8:]))
	off := 16
	nAlloc := binary.LittleEndian.Uint32(raw[off:])
	off += 4
	for i := uint32(0); i < nAlloc; i++ {
		s.alloc[page.ID(binary.LittleEndian.Uint64(raw[off:]))] = true
		off += 8
	}
	nSeeds := binary.LittleEndian.Uint32(raw[off:])
	off += 4
	for i := uint32(0); i < nSeeds; i++ {
		id := page.ID(binary.LittleEndian.Uint64(raw[off:]))
		psn := page.PSN(binary.LittleEndian.Uint64(raw[off+8:]))
		s.seeds[id] = psn
		off += 16
	}
	return nil
}

// saveMeta is called with s.mu held.
func (s *DiskStore) saveMeta() error {
	body := binary.LittleEndian.AppendUint64(nil, uint64(s.nextID))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(s.alloc)))
	ids := make([]page.ID, 0, len(s.alloc))
	for id := range s.alloc {
		ids = append(ids, id)
	}
	sortIDs(ids)
	for _, id := range ids {
		body = binary.LittleEndian.AppendUint64(body, uint64(id))
	}
	body = binary.LittleEndian.AppendUint32(body, uint32(len(s.seeds)))
	sids := make([]page.ID, 0, len(s.seeds))
	for id := range s.seeds {
		sids = append(sids, id)
	}
	sortIDs(sids)
	for _, id := range sids {
		body = binary.LittleEndian.AppendUint64(body, uint64(id))
		body = binary.LittleEndian.AppendUint64(body, uint64(s.seeds[id]))
	}
	head := binary.LittleEndian.AppendUint32(nil, metaMagic)
	head = binary.LittleEndian.AppendUint32(head, crc32.ChecksumIEEE(body))
	tmp := s.metaPath() + ".tmp"
	if err := os.WriteFile(tmp, append(head, body...), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.metaPath())
}

// Allocate implements Store.  Freed page ids are reused (smallest
// first) with their Mohan-Narang PSN seeds.
func (s *DiskStore) Allocate() (*page.Page, error) {
	s.mu.Lock()
	var id page.ID
	var seed page.PSN
	if fid, ok := smallestSeed(s.seeds); ok {
		id, seed = fid, s.seeds[fid]
		delete(s.seeds, fid)
	} else {
		id = alignStride(s.nextID, s.stride, s.offset)
		s.nextID = id + 1
	}
	s.alloc[id] = true
	if err := s.saveMeta(); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Unlock()

	p := page.New(id, s.pageSize)
	p.SetPSN(seed)
	if err := s.Write(p); err != nil {
		return nil, err
	}
	return p, nil
}

// SetAllocStride restricts fresh allocations to page ids congruent to
// offset modulo stride (see MemStore.SetAllocStride).  The data file
// stays laid out at offset (id-1)*pageSize; unowned slots are holes.
func (s *DiskStore) SetAllocStride(stride, offset int) {
	s.mu.Lock()
	s.stride, s.offset = stride, offset
	s.mu.Unlock()
}

// Free implements Store.
func (s *DiskStore) Free(id page.ID) error {
	p, err := s.Read(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.alloc, id)
	s.seeds[id] = p.PSN() + 1
	return s.saveMeta()
}

// Read implements Store.
func (s *DiskStore) Read(id page.ID) (*page.Page, error) {
	s.mu.Lock()
	ok := s.alloc[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotAllocated
	}
	buf := make([]byte, s.pageSize)
	if _, err := s.data.ReadAt(buf, int64(id-1)*int64(s.pageSize)); err != nil {
		return nil, err
	}
	s.reads.Add(1)
	p := new(page.Page)
	if err := p.UnmarshalBinary(buf); err != nil {
		return nil, err
	}
	return p, nil
}

// Write implements Store.  The write is synced: the paper's server
// forces its replacement log record first and then writes the page in
// place, counting both as stable.
func (s *DiskStore) Write(p *page.Page) error {
	img, err := p.MarshalBinary()
	if err != nil {
		return err
	}
	if len(img) != s.pageSize {
		return ErrPageSize
	}
	if _, err := s.data.WriteAt(img, int64(p.ID()-1)*int64(s.pageSize)); err != nil {
		return err
	}
	s.writes.Add(1)
	return s.data.Sync()
}

// Allocated implements Store.
func (s *DiskStore) Allocated() []page.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]page.ID, 0, len(s.alloc))
	for id := range s.alloc {
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids
}

// PageSize implements Store.
func (s *DiskStore) PageSize() int { return s.pageSize }

// Stats implements Store.
func (s *DiskStore) Stats() Stats {
	return Stats{Reads: s.reads.Load(), Writes: s.writes.Load()}
}

// Close implements Store.
func (s *DiskStore) Close() error { return s.data.Close() }
