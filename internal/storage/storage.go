// Package storage implements the server's stable storage: a page store
// with in-place page writes and a space allocation map.
//
// Per Section 2 of the paper, the server initializes the PSN value of a
// newly allocated page following Mohan-Narang: the allocation map keeps,
// for every page, the PSN to seed the page with at (re)allocation time.
// When a page is freed the map records the page's final PSN + 1, so a
// later reincarnation of the page continues the PSN sequence and log
// records written against the old incarnation can never be mistaken for
// applicable updates.
package storage

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clientlog/internal/page"
)

// Errors returned by page stores.
var (
	ErrNotAllocated = errors.New("storage: page not allocated")
	ErrPageSize     = errors.New("storage: page image has wrong size")
)

// Stats counts stable-storage traffic; the benchmark harness reads it to
// report server disk I/Os.
type Stats struct {
	Reads  uint64
	Writes uint64
}

// Store is the stable page store.  Implementations must be safe for
// concurrent use.
type Store interface {
	// Allocate creates a new page whose PSN is seeded from the
	// allocation map and writes its initial image durably.
	Allocate() (*page.Page, error)
	// Free deallocates a page, remembering PSN+1 as the seed for a
	// future reincarnation.
	Free(id page.ID) error
	// Read fetches the durable image of an allocated page.
	Read(id page.ID) (*page.Page, error)
	// Write stores a page image in place.
	Write(p *page.Page) error
	// Allocated returns the ids of all allocated pages in ascending
	// order.
	Allocated() []page.ID
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// Stats returns cumulative I/O counters.
	Stats() Stats
	// Close releases resources.
	Close() error
}

// MemStore is an in-memory Store.  Its contents play the role of the
// disk: they survive a simulated server crash (the crash discards the
// server's buffer pool and tables, never the store).
type MemStore struct {
	mu       sync.Mutex
	pageSize int
	pages    map[page.ID][]byte
	seeds    map[page.ID]page.PSN // PSN seeds for freed pages
	nextID   page.ID
	stride   int // fresh ids satisfy id % stride == offset (fleet)
	offset   int

	reads  atomic.Uint64
	writes atomic.Uint64

	// latency is the simulated per-I/O device time (nanoseconds).  The
	// sleep happens outside mu: the device itself is concurrent (command
	// queuing), so any serialization observed above it is the caller's —
	// which is exactly what the lock-scaling experiments measure.
	latency atomic.Int64
}

// NewMemStore returns an empty store with the given page size.
func NewMemStore(pageSize int) *MemStore {
	return &MemStore{
		pageSize: pageSize,
		pages:    make(map[page.ID][]byte),
		seeds:    make(map[page.ID]page.PSN),
		nextID:   1,
	}
}

// Allocate implements Store.  Freed page ids are reused (smallest
// first), which is what makes the Mohan-Narang PSN seeding necessary:
// the reincarnated page continues the PSN sequence of its predecessor.
func (s *MemStore) Allocate() (*page.Page, error) {
	s.mu.Lock()
	var id page.ID
	var seed page.PSN
	if fid, ok := smallestSeed(s.seeds); ok {
		id, seed = fid, s.seeds[fid]
		delete(s.seeds, fid)
	} else {
		id = alignStride(s.nextID, s.stride, s.offset)
		s.nextID = id + 1
	}
	s.mu.Unlock()

	p := page.New(id, s.pageSize)
	p.SetPSN(seed)
	if err := s.Write(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Free implements Store.
func (s *MemStore) Free(id page.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	img, ok := s.pages[id]
	if !ok {
		return ErrNotAllocated
	}
	var p page.Page
	if err := p.UnmarshalBinary(img); err != nil {
		return err
	}
	s.seeds[id] = p.PSN() + 1
	delete(s.pages, id)
	return nil
}

// SetLatency makes every subsequent Read and Write take at least d of
// wall time, modeling the disk the in-memory store stands in for.
func (s *MemStore) SetLatency(d time.Duration) { s.latency.Store(int64(d)) }

func (s *MemStore) simulateIO() {
	if d := s.latency.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// Read implements Store.
func (s *MemStore) Read(id page.ID) (*page.Page, error) {
	s.simulateIO()
	s.mu.Lock()
	img, ok := s.pages[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotAllocated
	}
	s.reads.Add(1)
	p := new(page.Page)
	if err := p.UnmarshalBinary(img); err != nil {
		return nil, err
	}
	return p, nil
}

// Write implements Store.
func (s *MemStore) Write(p *page.Page) error {
	s.simulateIO()
	img, err := p.MarshalBinary()
	if err != nil {
		return err
	}
	if len(img) != s.pageSize {
		return ErrPageSize
	}
	s.writes.Add(1)
	s.mu.Lock()
	s.pages[p.ID()] = img
	s.mu.Unlock()
	return nil
}

// Allocated implements Store.
func (s *MemStore) Allocated() []page.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]page.ID, 0, len(s.pages))
	for id := range s.pages {
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids
}

// PageSize implements Store.
func (s *MemStore) PageSize() int { return s.pageSize }

// Stats implements Store.
func (s *MemStore) Stats() Stats {
	return Stats{Reads: s.reads.Load(), Writes: s.writes.Load()}
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

func sortIDs(ids []page.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// SetAllocStride restricts fresh allocations to page ids congruent to
// offset modulo stride: a fleet partition mints only ids it owns, so a
// page granted by Alloc is always served by the allocating partition.
// Freed-id reuse is unaffected (only owned ids are ever freed here).
func (s *MemStore) SetAllocStride(stride, offset int) {
	s.mu.Lock()
	s.stride, s.offset = stride, offset
	s.mu.Unlock()
}

// alignStride returns the smallest id >= next with id % stride == offset
// (stride <= 1 means no constraint).
func alignStride(next page.ID, stride, offset int) page.ID {
	if stride <= 1 {
		return next
	}
	r := int(uint64(next) % uint64(stride))
	if r == offset {
		return next
	}
	d := offset - r
	if d < 0 {
		d += stride
	}
	return next + page.ID(d)
}

// smallestSeed returns the smallest freed page id awaiting reuse.
func smallestSeed(seeds map[page.ID]page.PSN) (page.ID, bool) {
	var best page.ID
	found := false
	for id := range seeds {
		if !found || id < best {
			best, found = id, true
		}
	}
	return best, found
}
