package storage

import (
	"errors"
	"testing"

	"clientlog/internal/page"
)

// storeFactory builds a fresh store for the shared conformance tests.
type storeFactory func(t *testing.T) Store

func factories() map[string]storeFactory {
	return map[string]storeFactory{
		"mem": func(t *testing.T) Store { return NewMemStore(1024) },
		"disk": func(t *testing.T) Store {
			s, err := OpenDiskStore(t.TempDir(), 1024)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
}

func TestStoreConformance(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			defer s.Close()

			p1, err := s.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			p2, err := s.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if p1.ID() == p2.ID() {
				t.Fatalf("duplicate page id %d", p1.ID())
			}
			if _, _, err := p1.Insert([]byte("payload")); err != nil {
				t.Fatal(err)
			}
			if err := s.Write(p1); err != nil {
				t.Fatal(err)
			}
			got, err := s.Read(p1.ID())
			if err != nil {
				t.Fatal(err)
			}
			if got.PSN() != p1.PSN() || got.UsedSlots() != 1 {
				t.Fatalf("read back psn=%d used=%d", got.PSN(), got.UsedSlots())
			}
			// In-place overwrite.
			if _, _, err := got.Overwrite(0, []byte("PAYLOAD")); err != nil {
				t.Fatal(err)
			}
			if err := s.Write(got); err != nil {
				t.Fatal(err)
			}
			again, err := s.Read(p1.ID())
			if err != nil {
				t.Fatal(err)
			}
			d, _ := again.Read(0)
			if string(d) != "PAYLOAD" {
				t.Fatalf("in-place write lost: %q", d)
			}

			ids := s.Allocated()
			if len(ids) != 2 || ids[0] != p1.ID() || ids[1] != p2.ID() {
				t.Fatalf("Allocated() = %v", ids)
			}
			if _, err := s.Read(999); !errors.Is(err, ErrNotAllocated) {
				t.Fatalf("Read(999): %v", err)
			}
			if st := s.Stats(); st.Reads == 0 || st.Writes == 0 {
				t.Fatalf("stats not counted: %+v", st)
			}
		})
	}
}

func TestPSNSeedOnReallocation(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			defer s.Close()
			p, err := s.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			// Advance the PSN well beyond zero and free the page.
			for i := 0; i < 5; i++ {
				if _, _, err := p.Insert([]byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Write(p); err != nil {
				t.Fatal(err)
			}
			finalPSN := p.PSN()
			if err := s.Free(p.ID()); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Read(p.ID()); !errors.Is(err, ErrNotAllocated) {
				t.Fatalf("read after free: %v", err)
			}
			// A reincarnation of the same id must continue the PSN
			// sequence (Mohan-Narang seeding).
			var reborn *page.Page
			for i := 0; i < 64; i++ {
				q, err := s.Allocate()
				if err != nil {
					t.Fatal(err)
				}
				if q.ID() == p.ID() {
					reborn = q
					break
				}
			}
			if reborn == nil {
				t.Skip("allocator never reused the id (monotone ids)")
			}
			if reborn.PSN() <= finalPSN {
				t.Fatalf("reincarnated PSN %d not above final %d", reborn.PSN(), finalPSN)
			}
		})
	}
}

func TestDiskStoreReopenKeepsState(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, 512)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Insert([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(p); err != nil {
		t.Fatal(err)
	}
	q, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Free(q.ID()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDiskStore(dir, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ids := s2.Allocated()
	if len(ids) != 1 || ids[0] != p.ID() {
		t.Fatalf("Allocated after reopen = %v", ids)
	}
	got, err := s2.Read(p.ID())
	if err != nil {
		t.Fatal(err)
	}
	d, _ := got.Read(0)
	if string(d) != "durable" {
		t.Fatalf("content after reopen: %q", d)
	}
	// The freed page's PSN seed must survive the reopen.
	reborn, err := s2.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if reborn.ID() == q.ID() && reborn.PSN() == 0 {
		t.Fatal("PSN seed lost across reopen")
	}
}
