// Package trace provides lightweight structured tracing of protocol
// events: lock callbacks, page ships and merges, replacement records,
// recovery steps.  Engines record into a Recorder; the default is a
// no-op, tests and the cmd tools install a bounded ring to assert on or
// display protocol sequences.
package trace

import (
	"fmt"
	"sync"

	"clientlog/internal/ident"
	"clientlog/internal/page"
)

// Kind classifies an event.
type Kind int

const (
	// LockGrant: the GLM granted a lock.
	LockGrant Kind = iota + 1
	// CallbackSent: the server asked a client to give up an object lock.
	CallbackSent
	// DeescSent: the server asked a client to de-escalate a page lock.
	DeescSent
	// PageShip: a client sent a page to the server.
	PageShip
	// PageMerge: the server (or a client) merged two copies of a page.
	PageMerge
	// PageForce: the server wrote a page in place (after its
	// replacement record).
	PageForce
	// Replacement: the server forced a replacement log record.
	Replacement
	// FlushNotify: the server told a client its replaced page is on
	// disk.
	FlushNotify
	// RecoveryStep: a restart-recovery milestone.
	RecoveryStep
	// LogSpace: a §3.6 log-space action (log full, force request).
	LogSpace
	// FaultInject: the fault-injection layer dropped, delayed,
	// duplicated or replayed a message (see internal/fault).
	FaultInject
)

func (k Kind) String() string {
	switch k {
	case LockGrant:
		return "lock-grant"
	case CallbackSent:
		return "callback"
	case DeescSent:
		return "deescalate"
	case PageShip:
		return "ship"
	case PageMerge:
		return "merge"
	case PageForce:
		return "force"
	case Replacement:
		return "replacement"
	case FlushNotify:
		return "flush-notify"
	case RecoveryStep:
		return "recovery"
	case LogSpace:
		return "log-space"
	case FaultInject:
		return "fault"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded protocol event.
type Event struct {
	Seq    uint64
	Kind   Kind
	Client ident.ClientID // the client the event concerns (0 = server)
	Page   page.ID        // the page involved (0 = none)
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %s client=%v page=%d %s", e.Seq, e.Kind, e.Client, e.Page, e.Detail)
}

// Recorder receives events.  Implementations must be safe for
// concurrent use.
type Recorder interface {
	Record(kind Kind, client ident.ClientID, pg page.ID, detail string)
}

// Nop discards events.
type Nop struct{}

// Record implements Recorder.
func (Nop) Record(Kind, ident.ClientID, page.ID, string) {}

// Ring is a bounded in-memory Recorder keeping the most recent events.
// Sequence numbers are assigned under the same lock that places the
// event in the buffer, so buffer order and Seq order always agree and
// Seq-based pagination (SnapshotSince, /events?since=) is stable under
// concurrent appends.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
	seq  uint64
}

// NewRing returns a ring holding up to n events.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 1024
	}
	return &Ring{buf: make([]Event, n)}
}

// Record implements Recorder.
func (r *Ring) Record(kind Kind, client ident.ClientID, pg page.ID, detail string) {
	r.mu.Lock()
	r.seq++
	r.buf[r.next] = Event{Seq: r.seq, Kind: kind, Client: client, Page: pg, Detail: detail}
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

// LastSeq returns the sequence number of the most recent event (zero
// when nothing was recorded); pass it back to SnapshotSince to page.
func (r *Ring) LastSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// SnapshotSince returns, in order, the retained events with Seq >
// since.  Events older than the ring's capacity are gone; the caller
// can detect the gap when the first returned Seq is not since+1.
func (r *Ring) SnapshotSince(since uint64) []Event {
	var out []Event
	for _, e := range r.Snapshot() {
		if e.Seq > since {
			out = append(out, e)
		}
	}
	return out
}

// Snapshot returns the recorded events in order.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	// Drop zero events (ring not yet full).
	res := out[:0]
	for _, e := range out {
		if e.Seq != 0 {
			res = append(res, e)
		}
	}
	return res
}

// Count returns how many recorded events match the kind (and page, when
// pg != 0).
func (r *Ring) Count(kind Kind, pg page.ID) int {
	n := 0
	for _, e := range r.Snapshot() {
		if e.Kind == kind && (pg == 0 || e.Page == pg) {
			n++
		}
	}
	return n
}

// Reset clears the ring.
func (r *Ring) Reset() {
	r.mu.Lock()
	for i := range r.buf {
		r.buf[i] = Event{}
	}
	r.next = 0
	r.full = false
	r.mu.Unlock()
}
