package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRingKeepsOrderAndBounds(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(PageShip, 1, 2, "x")
	}
	events := r.Snapshot()
	if len(events) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("events out of order: %v then %v", events[i-1], events[i])
		}
	}
	if events[len(events)-1].Seq != 10 {
		t.Fatalf("last seq %d, want 10", events[len(events)-1].Seq)
	}
}

func TestRingCountAndReset(t *testing.T) {
	r := NewRing(16)
	r.Record(PageShip, 1, 7, "")
	r.Record(PageMerge, 1, 7, "")
	r.Record(PageShip, 2, 8, "")
	if got := r.Count(PageShip, 0); got != 2 {
		t.Fatalf("Count(ship) = %d", got)
	}
	if got := r.Count(PageShip, 7); got != 1 {
		t.Fatalf("Count(ship,7) = %d", got)
	}
	r.Reset()
	if len(r.Snapshot()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestRingSnapshotSince(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		r.Record(PageShip, 1, 2, "x")
	}
	cursor := r.LastSeq()
	if cursor != 3 {
		t.Fatalf("LastSeq = %d, want 3", cursor)
	}
	if got := r.SnapshotSince(cursor); len(got) != 0 {
		t.Fatalf("nothing recorded since cursor, got %d events", len(got))
	}
	r.Record(PageMerge, 1, 2, "y")
	r.Record(PageForce, 1, 2, "z")
	got := r.SnapshotSince(cursor)
	if len(got) != 2 || got[0].Seq != 4 || got[1].Seq != 5 {
		t.Fatalf("SnapshotSince(%d) = %+v, want seqs 4,5", cursor, got)
	}
	// An overrun cursor (events evicted past it) returns the whole tail,
	// and the gap is detectable: first seq > cursor+1.
	for i := 0; i < 10; i++ {
		r.Record(PageShip, 1, 2, "w")
	}
	got = r.SnapshotSince(cursor)
	if len(got) != 4 {
		t.Fatalf("overrun tail = %d events, want ring size 4", len(got))
	}
	if got[0].Seq <= cursor+1 {
		t.Fatalf("overrun not detectable: first seq %d, cursor %d", got[0].Seq, cursor)
	}
	// Seq survives Reset so cursors stay monotone.
	r.Reset()
	r.Record(PageShip, 1, 2, "after")
	if r.LastSeq() != 16 {
		t.Fatalf("seq after reset = %d, want 16 (monotone)", r.LastSeq())
	}
}

func TestRingSeqStableUnderConcurrency(t *testing.T) {
	r := NewRing(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(CallbackSent, 1, 1, "c")
			}
		}()
	}
	wg.Wait()
	events := r.Snapshot()
	if len(events) != 800 {
		t.Fatalf("got %d events", len(events))
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("seq gap or reorder at %d: %d", i, e.Seq)
		}
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(CallbackSent, 1, 1, "c")
			}
		}()
	}
	wg.Wait()
	if len(r.Snapshot()) != 128 {
		t.Fatalf("snapshot len %d", len(r.Snapshot()))
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 3, Kind: Replacement, Client: 0, Page: 9, Detail: "psn=4"}
	s := e.String()
	for _, want := range []string{"#3", "replacement", "page=9", "psn=4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
	var nop Recorder = Nop{}
	nop.Record(PageShip, 1, 1, "") // must not panic
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{LockGrant, CallbackSent, DeescSent, PageShip, PageMerge,
		PageForce, Replacement, FlushNotify, RecoveryStep, LogSpace}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}
