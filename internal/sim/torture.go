package sim

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"clientlog/internal/core"
	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/page"
	"clientlog/internal/trace"
)

// TortureOptions parameterizes a randomized crash-recovery torture run.
type TortureOptions struct {
	Seed          int64
	Rounds        int
	Clients       int
	Pages         int
	Slots         int
	ServerCrashes bool
	// Diskless makes the first client log to a server-hosted remote log
	// (Section 2's diskless option), covering that path in the torture
	// matrix too.
	Diskless bool
}

// DefaultTortureOptions returns a moderate schedule.
func DefaultTortureOptions(seed int64) TortureOptions {
	return TortureOptions{Seed: seed, Rounds: 150, Clients: 3, Pages: 4, Slots: 8, ServerCrashes: true}
}

// TortureStats summarizes what a run exercised.
type TortureStats struct {
	Commits       uint64
	Aborts        uint64
	ClientCrashes int
	ServerCrashes int
	Complex       int
	Verifications int
}

// VerifyEveryRound makes Torture check the reference state after every
// round (debugging aid; quadratic cost).
var VerifyEveryRound = false

// Torture drives a deterministic random schedule of transactions,
// cache replacements, checkpoints and crashes against a cluster while
// maintaining a sequential reference state; it fails if the recovered
// database ever diverges from a replay of exactly the committed
// transactions.  This is the engine behind cmd/crashtest.
func Torture(cfg core.Config, opt TortureOptions) (TortureStats, error) {
	var stats TortureStats
	r := rand.New(rand.NewSource(opt.Seed))
	cl := core.NewCluster(cfg)
	ring := trace.NewRing(8192)
	cl.SetTracer(ring)
	ids, err := cl.SeedPages(opt.Pages, opt.Slots, 16)
	if err != nil {
		return stats, err
	}
	clients := make([]*core.Client, opt.Clients)
	for i := range clients {
		if i == 0 && opt.Diskless {
			clients[i], err = cl.AddDisklessClient()
		} else {
			clients[i], err = cl.AddClient()
		}
		if err != nil {
			return stats, err
		}
	}
	ref := make(map[page.ObjectID][]byte)
	lastWriter := make(map[page.ObjectID]string)
	for _, pid := range ids {
		for s := 0; s < opt.Slots; s++ {
			data := make([]byte, 16)
			for b := range data {
				data[b] = byte(uint64(pid)*31 + uint64(s)*7 + uint64(b))
			}
			ref[page.ObjectID{Page: pid, Slot: uint16(s)}] = data
		}
	}
	verify := func(tag string) error {
		stats.Verifications++
		reader := cl.Client(clients[0].ID())
		txn, err := reader.Begin()
		if err != nil {
			return fmt.Errorf("%s: begin: %w", tag, err)
		}
		defer txn.Commit()
		for obj, want := range ref {
			got, err := txn.Read(obj)
			if err != nil {
				return fmt.Errorf("%s: read %v: %w", tag, obj, err)
			}
			if !bytes.Equal(got, want) {
				hist := ""
				for _, e := range ring.Snapshot() {
					if e.Page == obj.Page || e.Page == 0 {
						hist += e.String() + "\n"
					}
				}
				return fmt.Errorf("%s: object %v diverged (seed %d): got %x want %x writer=%s\n%s\nGLM:\n%s\nhistory:\n%s",
					tag, obj, opt.Seed, got[:4], want[:4], lastWriter[obj],
					cl.DebugPage(obj.Page), cl.Server().GLM().DumpState(), hist)
			}
		}
		return nil
	}
	for round := 0; round < opt.Rounds; round++ {
		ring.Record(trace.RecoveryStep, 0, 0, fmt.Sprintf("=== round %d", round))
		switch action := r.Intn(100); {
		case action < 70:
			c := cl.Client(clients[r.Intn(opt.Clients)].ID())
			txn, err := c.Begin()
			if err != nil {
				return stats, err
			}
			pending := make(map[page.ObjectID][]byte)
			bad := false
			for i := 0; i < 1+r.Intn(4); i++ {
				obj := page.ObjectID{Page: ids[r.Intn(opt.Pages)], Slot: uint16(r.Intn(opt.Slots))}
				v := make([]byte, 16)
				r.Read(v)
				if err := txn.Overwrite(obj, v); err != nil {
					if !errors.Is(err, lock.ErrDeadlock) && !errors.Is(err, lock.ErrTimeout) {
						return stats, err
					}
					txn.Abort()
					stats.Aborts++
					bad = true
					break
				}
				pending[obj] = v
			}
			if bad {
				continue
			}
			if r.Intn(4) == 0 {
				if err := txn.Abort(); err != nil {
					return stats, err
				}
				stats.Aborts++
				continue
			}
			if err := txn.Commit(); err != nil {
				return stats, err
			}
			stats.Commits++
			for obj, v := range pending {
				ref[obj] = v
				lastWriter[obj] = fmt.Sprintf("%v@round%d", c.ID(), round)
				ring.Record(trace.LockGrant, c.ID(), obj.Page,
					fmt.Sprintf("committed obj=%v val=%x", obj, v[:4]))
			}
		case action < 78:
			c := cl.Client(clients[r.Intn(opt.Clients)].ID())
			if err := c.ReplacePage(ids[r.Intn(opt.Pages)]); err != nil {
				return stats, err
			}
		case action < 83:
			c := cl.Client(clients[r.Intn(opt.Clients)].ID())
			if err := c.Checkpoint(); err != nil {
				return stats, err
			}
		case action < 93:
			id := clients[r.Intn(opt.Clients)].ID()
			ring.Record(trace.RecoveryStep, id, 0, "CLIENT CRASH+RESTART")
			cl.CrashClient(id)
			if _, err := cl.RestartClient(id); err != nil {
				return stats, fmt.Errorf("client restart (seed %d): %w", opt.Seed, err)
			}
			stats.ClientCrashes++
		default:
			if !opt.ServerCrashes {
				continue
			}
			var down []ident.ClientID
			if r.Intn(2) == 0 {
				down = append(down, clients[r.Intn(opt.Clients)].ID())
			}
			ring.Record(trace.RecoveryStep, 0, 0, fmt.Sprintf("SERVER CRASH down=%v", down))
			cl.CrashServer(down...)
			if err := cl.RestartServer(); err != nil {
				return stats, fmt.Errorf("server restart (seed %d): %w", opt.Seed, err)
			}
			for _, id := range down {
				if _, err := cl.RestartClient(id); err != nil {
					return stats, fmt.Errorf("complex restart (seed %d): %w", opt.Seed, err)
				}
			}
			stats.ServerCrashes++
			if len(down) > 0 {
				stats.Complex++
			}
		}
		if VerifyEveryRound || round%40 == 39 {
			if err := verify(fmt.Sprintf("round %d", round)); err != nil {
				return stats, err
			}
		}
	}
	return stats, verify("final")
}
