package sim

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"clientlog/internal/core"
	"clientlog/internal/ident"
	"clientlog/internal/lock"
	"clientlog/internal/page"
	"clientlog/internal/trace"
)

// TortureOptions parameterizes a randomized crash-recovery torture run.
type TortureOptions struct {
	Seed          int64
	Rounds        int
	Clients       int
	Pages         int
	Slots         int
	ServerCrashes bool
	// Diskless makes the first client log to a server-hosted remote log
	// (Section 2's diskless option), covering that path in the torture
	// matrix too.
	Diskless bool
	// Churn adds a membership-storm band to the schedule: clients other
	// than the verify reader randomly depart cleanly (RemoveClient) and
	// rejoin as fresh clients, or crash+restart in bursts.
	Churn bool
	// LogSlots, when positive, caps every client's private log at
	// roughly LogSlots records (§3.6 sustained pressure: freeLogSpace
	// and the replace-and-force path fire continuously).  0 leaves the
	// log unbounded.
	LogSlots int
	// Partitions runs the schedule against a hash-partitioned server
	// fleet of that size (0 or 1 = the classic single server).  With a
	// fleet, half the server-crash rounds become partition-scoped: one
	// member crashes and restarts while the rest of the fleet and every
	// client keep running.
	Partitions int
}

// tortureLogSlotBytes approximates one private-log record (update
// record with a 16-byte value plus framing) when translating the
// LogSlots knob into a byte capacity.
const tortureLogSlotBytes = 128

// applyConfig translates the option knobs that live in core.Config.
func (opt TortureOptions) applyConfig(cfg core.Config) core.Config {
	if opt.LogSlots > 0 {
		cfg.ClientLogCapacity = uint64(opt.LogSlots) * tortureLogSlotBytes
	}
	if opt.Partitions > 1 {
		cfg.Partitions = opt.Partitions
	}
	return cfg
}

// DefaultTortureOptions returns a moderate schedule (no churn,
// unbounded private logs — the historical matrix).
func DefaultTortureOptions(seed int64) TortureOptions {
	return TortureOptions{Seed: seed, Rounds: 150, Clients: 3, Pages: 4, Slots: 8, ServerCrashes: true}
}

// TortureStats summarizes what a run exercised.
type TortureStats struct {
	Commits       uint64
	Aborts        uint64
	ClientCrashes int
	ServerCrashes int
	// PartitionCrashes counts partition-scoped crash+restart rounds
	// (single fleet member down, clients stay up; fleet runs only).
	PartitionCrashes int
	Complex          int
	Verifications    int
	// Churn accounting (zero unless TortureOptions.Churn).
	Leaves int
	Joins  int
	// WaitsFor is the fleet-merged waits-for graph captured when a run
	// fails (zero value on success), so cross-partition deadlock
	// post-mortems are self-contained in the failure output.
	WaitsFor lock.WaitsForSnapshot
}

// VerifyEveryRound makes Torture check the reference state after every
// round (debugging aid; quadratic cost).
var VerifyEveryRound = false

// harness drives the randomized crash-recovery schedule against a
// cluster while maintaining a sequential reference state.  Torture owns
// a plain cluster; Chaos reuses the same schedule over fault-injected
// transports.
type harness struct {
	cl      *core.Cluster
	ring    *trace.Ring
	opt     TortureOptions
	r       *rand.Rand
	ids     []page.ID
	clients []ident.ClientID
	ref     map[page.ObjectID][]byte
	writer  map[page.ObjectID]string
	stats   TortureStats

	// PSN watermarks for the monotonicity invariant: disk PSNs never
	// regress; the server's current PSN never regresses between server
	// crashes (a crash may lose unforced pool copies).
	maxDiskPSN map[page.ID]page.PSN
	maxCurPSN  map[page.ID]page.PSN
}

// newHarness seeds the database, joins the clients and builds the
// reference state.  The cluster must be freshly constructed (its conn
// wrappers, if any, installed).
func newHarness(cl *core.Cluster, ring *trace.Ring, opt TortureOptions) (*harness, error) {
	h := &harness{
		cl:         cl,
		ring:       ring,
		opt:        opt,
		r:          rand.New(rand.NewSource(opt.Seed)),
		ref:        make(map[page.ObjectID][]byte),
		writer:     make(map[page.ObjectID]string),
		maxDiskPSN: make(map[page.ID]page.PSN),
		maxCurPSN:  make(map[page.ID]page.PSN),
	}
	cl.SetTracer(ring)
	ids, err := cl.SeedPages(opt.Pages, opt.Slots, 16)
	if err != nil {
		return nil, err
	}
	h.ids = ids
	for i := 0; i < opt.Clients; i++ {
		var c *core.Client
		if i == 0 && opt.Diskless {
			c, err = cl.AddDisklessClient()
		} else {
			c, err = cl.AddClient()
		}
		if err != nil {
			return nil, err
		}
		h.clients = append(h.clients, c.ID())
	}
	for _, pid := range ids {
		for s := 0; s < opt.Slots; s++ {
			data := make([]byte, 16)
			for b := range data {
				data[b] = byte(uint64(pid)*31 + uint64(s)*7 + uint64(b))
			}
			h.ref[page.ObjectID{Page: pid, Slot: uint16(s)}] = data
		}
	}
	return h, nil
}

// checkPSNs asserts the PSN monotonicity invariant and advances the
// watermarks.
func (h *harness) checkPSNs(tag string) error {
	for _, pid := range h.ids {
		disk, cur := h.cl.PagePSNs(pid)
		if disk < h.maxDiskPSN[pid] {
			return fmt.Errorf("%s: page %d disk PSN regressed %d -> %d (seed %d)",
				tag, pid, h.maxDiskPSN[pid], disk, h.opt.Seed)
		}
		if cur < h.maxCurPSN[pid] {
			return fmt.Errorf("%s: page %d server PSN regressed %d -> %d without a server crash (seed %d)",
				tag, pid, h.maxCurPSN[pid], cur, h.opt.Seed)
		}
		h.maxDiskPSN[pid] = disk
		h.maxCurPSN[pid] = cur
	}
	return nil
}

// verify checks every object against the reference state through a real
// reader transaction, then checks the PSN invariant.
func (h *harness) verify(tag string) error {
	h.stats.Verifications++
	reader := h.cl.Client(h.clients[0])
	txn, err := reader.Begin()
	if err != nil {
		return fmt.Errorf("%s: begin: %w", tag, err)
	}
	defer txn.Commit()
	for obj, want := range h.ref {
		got, err := txn.Read(obj)
		if err != nil {
			return fmt.Errorf("%s: read %v: %w", tag, obj, err)
		}
		if !bytes.Equal(got, want) {
			hist := ""
			for _, e := range h.ring.Snapshot() {
				if e.Page == obj.Page || e.Page == 0 {
					hist += e.String() + "\n"
				}
			}
			glms := ""
			for p, s := range h.cl.Servers() {
				glms += fmt.Sprintf("partition %d:\n%s", p, s.GLM().DumpState())
			}
			return fmt.Errorf("%s: object %v diverged (seed %d): got %x want %x writer=%s\n%s\nGLM:\n%s\nhistory:\n%s",
				tag, obj, h.opt.Seed, got[:4], want[:4], h.writer[obj],
				h.cl.DebugPage(obj.Page), glms, hist)
		}
	}
	return h.checkPSNs(tag)
}

// run executes the round schedule.
func (h *harness) run() error {
	opt, r := h.opt, h.r
	for round := 0; round < opt.Rounds; round++ {
		h.ring.Record(trace.RecoveryStep, 0, 0, fmt.Sprintf("=== round %d", round))
		switch action := r.Intn(100); {
		case opt.Churn && opt.Clients > 1 && action < 8:
			// Membership storm.  The verify reader (index 0, also the
			// diskless slot) never churns; everyone else either departs
			// cleanly and rejoins as a fresh client, or crash+restarts
			// in a burst of up to two.
			if r.Intn(2) == 0 {
				idx := 1 + r.Intn(opt.Clients-1)
				id := h.clients[idx]
				h.ring.Record(trace.RecoveryStep, id, 0, "CLIENT LEAVE+REJOIN")
				if err := h.cl.RemoveClient(id); err != nil {
					return fmt.Errorf("churn leave (seed %d): %w", opt.Seed, err)
				}
				h.stats.Leaves++
				c, err := h.cl.AddClient()
				if err != nil {
					return fmt.Errorf("churn rejoin (seed %d): %w", opt.Seed, err)
				}
				h.clients[idx] = c.ID()
				h.stats.Joins++
			} else {
				burst := 1 + r.Intn(2)
				seen := make(map[int]bool)
				var down []int
				for k := 0; k < burst; k++ {
					idx := 1 + r.Intn(opt.Clients-1)
					if seen[idx] {
						continue
					}
					seen[idx] = true
					down = append(down, idx)
					h.ring.Record(trace.RecoveryStep, h.clients[idx], 0, "CHURN BURST CRASH")
					h.cl.CrashClient(h.clients[idx])
				}
				for _, idx := range down {
					if _, err := h.cl.RestartClient(h.clients[idx]); err != nil {
						return fmt.Errorf("churn burst restart (seed %d): %w", opt.Seed, err)
					}
					h.stats.ClientCrashes++
				}
			}
		case action < 70:
			c := h.cl.Client(h.clients[r.Intn(opt.Clients)])
			txn, err := c.Begin()
			if err != nil {
				return err
			}
			pending := make(map[page.ObjectID][]byte)
			bad := false
			for i := 0; i < 1+r.Intn(4); i++ {
				obj := page.ObjectID{Page: h.ids[r.Intn(opt.Pages)], Slot: uint16(r.Intn(opt.Slots))}
				v := make([]byte, 16)
				_, _ = r.Read(v)
				if err := txn.Overwrite(obj, v); err != nil {
					// §3.6 log pressure (LogSlots) surfaces ErrNoLogSpace;
					// like a deadlock it means abort and move on — the undo
					// reservation guarantees the abort itself can log.
					if !errors.Is(err, lock.ErrDeadlock) && !errors.Is(err, lock.ErrTimeout) &&
						!errors.Is(err, core.ErrNoLogSpace) {
						return err
					}
					if aerr := txn.Abort(); aerr != nil {
						return fmt.Errorf("abort after %v (seed %d): %w", err, opt.Seed, aerr)
					}
					h.stats.Aborts++
					bad = true
					break
				}
				pending[obj] = v
			}
			if bad {
				continue
			}
			if r.Intn(4) == 0 {
				if err := txn.Abort(); err != nil {
					return err
				}
				h.stats.Aborts++
				continue
			}
			if err := txn.Commit(); err != nil {
				if !errors.Is(err, core.ErrNoLogSpace) {
					return err
				}
				if aerr := txn.Abort(); aerr != nil {
					return fmt.Errorf("abort after failed commit (seed %d): %w", opt.Seed, aerr)
				}
				h.stats.Aborts++
				continue
			}
			h.stats.Commits++
			for obj, v := range pending {
				h.ref[obj] = v
				h.writer[obj] = fmt.Sprintf("%v@round%d", c.ID(), round)
				h.ring.Record(trace.LockGrant, c.ID(), obj.Page,
					fmt.Sprintf("committed obj=%v val=%x", obj, v[:4]))
			}
		case action < 78:
			c := h.cl.Client(h.clients[r.Intn(opt.Clients)])
			if err := c.ReplacePage(h.ids[r.Intn(opt.Pages)]); err != nil {
				return err
			}
		case action < 83:
			c := h.cl.Client(h.clients[r.Intn(opt.Clients)])
			if err := c.Checkpoint(); err != nil && !errors.Is(err, core.ErrNoLogSpace) {
				return err
			}
		case action < 93:
			id := h.clients[r.Intn(opt.Clients)]
			h.ring.Record(trace.RecoveryStep, id, 0, "CLIENT CRASH+RESTART")
			h.cl.CrashClient(id)
			if _, err := h.cl.RestartClient(id); err != nil {
				return fmt.Errorf("client restart (seed %d): %w", opt.Seed, err)
			}
			h.stats.ClientCrashes++
		default:
			if !opt.ServerCrashes {
				continue
			}
			// In a fleet, half the crash rounds take down a single
			// partition while the rest of the fleet and every client keep
			// running; clients are never crashed alongside an independent
			// partition crash (see DESIGN.md §12).  The extra randomness is
			// drawn only when partitioned, so single-server schedules stay
			// identical per seed.
			if h.cl.Partitions() > 1 && r.Intn(2) == 0 {
				p := r.Intn(h.cl.Partitions())
				h.ring.Record(trace.RecoveryStep, 0, 0, fmt.Sprintf("PARTITION %d CRASH", p))
				h.cl.CrashPartition(p)
				// Only the crashed member's unforced pool copies died.
				for pid := range h.maxCurPSN {
					if h.cl.Owner(pid) == p {
						delete(h.maxCurPSN, pid)
					}
				}
				if err := h.cl.RestartPartition(p); err != nil {
					return fmt.Errorf("partition %d restart (seed %d): %w", p, opt.Seed, err)
				}
				h.stats.PartitionCrashes++
				break
			}
			var down []ident.ClientID
			if r.Intn(2) == 0 {
				down = append(down, h.clients[r.Intn(opt.Clients)])
			}
			h.ring.Record(trace.RecoveryStep, 0, 0, fmt.Sprintf("SERVER CRASH down=%v", down))
			h.cl.CrashServer(down...)
			// Unforced pool copies died with the server; the current-PSN
			// watermark restarts from the surviving disk state.
			for pid := range h.maxCurPSN {
				delete(h.maxCurPSN, pid)
			}
			if err := h.cl.RestartServer(); err != nil {
				return fmt.Errorf("server restart (seed %d): %w", opt.Seed, err)
			}
			for _, id := range down {
				if _, err := h.cl.RestartClient(id); err != nil {
					return fmt.Errorf("complex restart (seed %d): %w", opt.Seed, err)
				}
			}
			h.stats.ServerCrashes++
			if len(down) > 0 {
				h.stats.Complex++
			}
		}
		if VerifyEveryRound || round%40 == 39 {
			if err := h.verify(fmt.Sprintf("round %d", round)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Torture drives a deterministic random schedule of transactions,
// cache replacements, checkpoints and crashes against a cluster while
// maintaining a sequential reference state; it fails if the recovered
// database ever diverges from a replay of exactly the committed
// transactions.  This is the engine behind cmd/crashtest.
func Torture(cfg core.Config, opt TortureOptions) (TortureStats, error) {
	cl := core.NewCluster(opt.applyConfig(cfg))
	defer cl.Close()
	h, err := newHarness(cl, trace.NewRing(8192), opt)
	if err != nil {
		return TortureStats{}, err
	}
	if err := h.run(); err != nil {
		h.stats.WaitsFor = cl.WaitsFor()
		return h.stats, err
	}
	if err := h.verify("final"); err != nil {
		h.stats.WaitsFor = cl.WaitsFor()
		return h.stats, err
	}
	return h.stats, nil
}
