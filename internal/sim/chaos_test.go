package sim

import (
	"fmt"
	"testing"

	"clientlog/internal/core"
)

// TestChaos sweeps 20 distinct seeds; each run must survive a full
// torture schedule under the default fault plan, inject a substantial
// number of faults, and pass the post-quiesce verification (reference
// state, PSN monotonicity, lock-table/DCT consistency) built into
// Chaos.
func TestChaos(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 4
	}
	for base := int64(500); base < int64(500+seeds); base++ {
		s := seed(base)
		t.Run(fmt.Sprintf("s%d", s), func(t *testing.T) {
			t.Parallel()
			opt := DefaultChaosOptions(s)
			opt.Diskless = s%2 == 0
			stats, err := Chaos(core.DefaultConfig(), opt)
			if err != nil {
				t.Fatalf("seed %d: %v", s, err)
			}
			logSeed(t, s)
			if stats.Faults < 100 {
				t.Fatalf("seed %d: only %d faults injected, want >=100", s, stats.Faults)
			}
			if stats.Commits == 0 || stats.Verifications == 0 {
				t.Fatalf("seed %d: degenerate run %+v", s, stats.TortureStats)
			}
			if uint64(len(stats.Schedule)) != stats.Faults {
				t.Fatalf("seed %d: schedule has %d entries, faults=%d",
					s, len(stats.Schedule), stats.Faults)
			}
		})
	}
}

// TestChaosReproducible reruns one seed and demands the identical fault
// schedule: same faults, on the same streams, at the same per-stream
// call numbers, with the same kinds.
func TestChaosReproducible(t *testing.T) {
	s := seed(4242)
	opt := DefaultChaosOptions(s)
	opt.Rounds = 80
	a, err := Chaos(core.DefaultConfig(), opt)
	if err != nil {
		t.Fatalf("first run (seed %d): %v", s, err)
	}
	b, err := Chaos(core.DefaultConfig(), opt)
	if err != nil {
		t.Fatalf("second run (seed %d): %v", s, err)
	}
	if len(a.Schedule) != len(b.Schedule) {
		t.Fatalf("seed %d: schedules differ in length: %d vs %d",
			s, len(a.Schedule), len(b.Schedule))
	}
	for i := range a.Schedule {
		if a.Schedule[i] != b.Schedule[i] {
			t.Fatalf("seed %d: schedules diverge at %d: %q vs %q",
				s, i, a.Schedule[i], b.Schedule[i])
		}
	}
	if a.Commits != b.Commits || a.Aborts != b.Aborts {
		t.Fatalf("seed %d: stats diverge: %+v vs %+v", s, a.TortureStats, b.TortureStats)
	}
}

// TestChaosSuppressesDuplicates checks the other half of the contract:
// under a duplicate-heavy plan the reply caches must actually absorb
// retransmissions rather than double-executing them.
func TestChaosSuppressesDuplicates(t *testing.T) {
	s := seed(77)
	opt := DefaultChaosOptions(s)
	opt.Rounds = 80
	opt.Plan.DupProb = 0.25
	stats, err := Chaos(core.DefaultConfig(), opt)
	if err != nil {
		t.Fatalf("seed %d: %v", s, err)
	}
	if stats.Suppressed == 0 {
		t.Fatalf("seed %d: %d faults but no duplicate was suppressed", s, stats.Faults)
	}
}
