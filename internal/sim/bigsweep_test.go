package sim

import (
	"fmt"
	"testing"

	"clientlog/internal/core"
)

func TestTortureBigSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-config seed sweep")
	}
	for seed := int64(1000); seed < 1100; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("s%d", seed), func(t *testing.T) {
			t.Parallel()
			opt := DefaultTortureOptions(seed)
			opt.Rounds = 120
			opt.Diskless = seed%3 == 0
			cfg := core.DefaultConfig()
			if seed%4 == 0 {
				cfg.ClientLogCapacity = 24 * 1024
			}
			if seed%5 == 0 {
				cfg.ServerDirtyLimit = 2
			}
			if _, err := Torture(cfg, opt); err != nil {
				t.Fatal(err)
			}
		})
	}
}
