package sim

import (
	"strings"
	"testing"

	"clientlog/internal/core"
)

// TestRegistryAgreesWithStats is the acceptance check for the metrics
// façade: the msg_* series in the cluster registry and the legacy
// msg.Stats accessors are two views of the same counters, and the
// client_commits_total family matches the engines' commit counters.
func TestRegistryAgreesWithStats(t *testing.T) {
	cfg := core.DefaultConfig()
	w := DefaultWorkload(HotCold)
	cl := core.NewCluster(cfg)
	ids, err := cl.SeedPages(w.Pages, w.ObjsPerPage, w.ObjSize)
	if err != nil {
		t.Fatal(err)
	}
	var clients []*core.Client
	for i := 0; i < 3; i++ {
		c, err := cl.AddClient()
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	for i, c := range clients {
		gen := NewGen(w, i, len(clients), ids, 7)
		for n := 0; n < 20; n++ {
			if err := RunOne(c, gen); err != nil {
				t.Fatal(err)
			}
		}
	}

	snap := cl.Reg.Snapshot()
	if got, want := snap.Total("msg_messages_total"), cl.Stats.Messages(); got != want {
		t.Fatalf("registry msg_messages_total = %d, Stats.Messages() = %d", got, want)
	}
	if got, want := snap.Total("msg_bytes_total"), cl.Stats.Bytes(); got != want {
		t.Fatalf("registry msg_bytes_total = %d, Stats.Bytes() = %d", got, want)
	}
	var commits uint64
	for _, c := range clients {
		commits += c.Metrics.Commits.Load()
	}
	if commits == 0 {
		t.Fatal("workload committed nothing")
	}
	if got := snap.Total("client_commits_total"); got != commits {
		t.Fatalf("registry client_commits_total = %d, engines say %d", got, commits)
	}
	if hv := snap.Hist("client_commit_nanos"); hv.Count != commits {
		t.Fatalf("commit latency histogram count = %d, want %d", hv.Count, commits)
	}

	// The registry's Prometheus rendering carries the same numbers.
	var sb strings.Builder
	if err := cl.Reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"msg_messages_total", "client_commits_total", "wal_appends_total", "lock_grants_total"} {
		if !strings.Contains(sb.String(), family) {
			t.Fatalf("/metrics output missing %s family", family)
		}
	}
}

// TestRegistrySurvivesRestart checks the monotone-across-restart
// contract end to end: after a client crash+restart the registry series
// keeps the pre-crash counts while the fresh engine starts from zero.
func TestRegistrySurvivesRestart(t *testing.T) {
	cfg := core.DefaultConfig()
	w := DefaultWorkload(Uniform)
	cl := core.NewCluster(cfg)
	ids, err := cl.SeedPages(w.Pages, w.ObjsPerPage, w.ObjSize)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cl.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGen(w, 0, 1, ids, 3)
	for n := 0; n < 10; n++ {
		if err := RunOne(c, gen); err != nil {
			t.Fatal(err)
		}
	}
	before := cl.Reg.Snapshot().Total("client_commits_total")
	if before == 0 {
		t.Fatal("no commits before crash")
	}

	cl.CrashClient(c.ID())
	c2, err := cl.RestartClient(c.ID())
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Metrics.Commits.Load(); got != 0 {
		t.Fatalf("fresh engine commits = %d, want 0", got)
	}
	gen2 := NewGen(w, 0, 1, ids, 4)
	for n := 0; n < 5; n++ {
		if err := RunOne(c2, gen2); err != nil {
			t.Fatal(err)
		}
	}
	after := cl.Reg.Snapshot().Total("client_commits_total")
	want := before + c2.Metrics.Commits.Load()
	if after != want {
		t.Fatalf("post-restart series = %d, want %d (pre-crash %d + new engine %d)",
			after, want, before, c2.Metrics.Commits.Load())
	}
}
